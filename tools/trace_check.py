#!/usr/bin/env python3
"""CI validator for the Chrome-trace JSON exported by the serving stack.

Consumes a trace file written by `seastar_serve --trace-out=...` (or
`Server::DumpTraces`) and optionally the metrics JSON from the same run,
and exits non-zero if the trace violates any structural invariant the
tracer is supposed to guarantee:

  * Well-formedness: a top-level object with "traceEvents" (a list of
    ph="M" metadata and ph="X" complete events carrying name/pid/tid/
    ts/dur and an args block with idx/parent/trace_id) and "traceStats".
  * Span-tree shape: every trace has exactly one root span (parent == -1)
    named "request"; every non-root span's parent index refers to an
    earlier span of the same trace; a child's [ts, ts+dur] interval nests
    inside its parent's, within --nest-slack-us of clock truncation.
  * Retention accounting: the number of distinct traces in the file equals
    retained_anomaly + retained_sampled + retained_tail from traceStats,
    and the per-root "retained_by" labels match those counts bucket by
    bucket. retained <= finished <= started.
  * Anomaly completeness: every root whose flags are not "clean" must be
    retained via the anomaly ring, and — as long as the ring never
    overflowed (anomalies_observed <= anomaly_keep, which the drill
    guarantees by sizing the ring to the submission count) — the file must
    contain exactly anomalies_observed anomalous traces. This is the "a
    shed/expired/degraded request is never lost" guarantee, independent of
    head sampling.
  * Exemplar linkage (with --metrics): every histogram exemplar's trace_id
    must name a trace retained in this file, so the `# {trace_id="..."}`
    a scrape shows on a tail bucket always resolves to an inspectable
    span tree.
  * --expect-trace-id: assert a specific trace (e.g. the one the drill
    printed for its slowest request) made it into the export.

Usage:
  tools/trace_check.py trace.json [--metrics metrics.json] \
      [--expect-trace-id 00c0ffee00c0ffee]
  tools/trace_check.py --self-test

Exit codes: 0 ok, 1 invariant violated, 2 usage or I/O error.
"""

import argparse
import copy
import json
import sys


class Checker:
    def __init__(self):
        self.failures = []
        self.checked = 0

    def expect(self, ok, message):
        self.checked += 1
        if not ok:
            self.failures.append("FAIL " + message)

    def report(self, out=sys.stdout):
        for line in self.failures:
            print(line, file=out)
        verdict = "INVALID" if self.failures else "ok"
        print(f"trace_check: {self.checked} checks, "
              f"{len(self.failures)} failed -> {verdict}", file=out)
        return 1 if self.failures else 0


def group_traces(checker, events):
    """Validates per-event shape and groups X events by trace id."""
    traces = {}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            checker.expect(False, f"{where}: not an object")
            continue
        ph = event.get("ph")
        checker.expect(ph in ("X", "M"), f"{where}: ph={ph!r} not in (X, M)")
        if ph != "X":
            continue
        for field in ("name", "pid", "tid", "ts", "dur", "args"):
            checker.expect(field in event, f"{where}: missing {field!r}")
        args = event.get("args", {})
        for field in ("idx", "parent", "trace_id"):
            checker.expect(field in args, f"{where}: args missing {field!r}")
        checker.expect(event.get("dur", 0) >= 0,
                       f"{where}: negative dur {event.get('dur')}")
        traces.setdefault(args.get("trace_id"), []).append(event)
    return traces


def check_span_tree(checker, trace_id, events, nest_slack_us):
    """One root named "request"; parents precede children and contain them."""
    where = f"trace {trace_id}"
    by_idx = {}
    for event in events:
        idx = event["args"]["idx"]
        checker.expect(idx not in by_idx, f"{where}: duplicate span idx {idx}")
        by_idx[idx] = event
    roots = [e for e in events if e["args"]["parent"] == -1]
    checker.expect(len(roots) == 1,
                   f"{where}: {len(roots)} root spans (want exactly 1)")
    if len(roots) != 1:
        return None
    root = roots[0]
    checker.expect(root["name"] == "request",
                   f"{where}: root span named {root['name']!r}, not 'request'")
    for field in ("request_id", "flags", "sampled", "outcome", "retained_by",
                  "total_ms"):
        checker.expect(field in root["args"],
                       f"{where}: root args missing {field!r}")
    tids = {e["tid"] for e in events}
    checker.expect(len(tids) == 1,
                   f"{where}: spans spread over tids {sorted(tids)}")
    for event in events:
        parent_idx = event["args"]["parent"]
        if parent_idx == -1:
            continue
        idx = event["args"]["idx"]
        parent = by_idx.get(parent_idx)
        checker.expect(parent is not None,
                       f"{where}: span {idx} parent {parent_idx} missing")
        if parent is None:
            continue
        checker.expect(parent_idx < idx,
                       f"{where}: span {idx} parent {parent_idx} not earlier")
        start, end = event["ts"], event["ts"] + event["dur"]
        pstart, pend = parent["ts"], parent["ts"] + parent["dur"]
        checker.expect(
            start >= pstart - nest_slack_us and end <= pend + nest_slack_us,
            f"{where}: span {idx} ({event['name']}) [{start}, {end}]us "
            f"escapes parent {parent_idx} ({parent['name']}) "
            f"[{pstart}, {pend}]us beyond {nest_slack_us}us slack")
    return root


def check_trace(checker, doc, metrics, expect_trace_id, nest_slack_us):
    checker.expect(isinstance(doc, dict), "top level: not a JSON object")
    if not isinstance(doc, dict):
        return
    events = doc.get("traceEvents")
    stats = doc.get("traceStats")
    checker.expect(isinstance(events, list), "traceEvents: missing or not a list")
    checker.expect(isinstance(stats, dict), "traceStats: missing or not an object")
    if not isinstance(events, list) or not isinstance(stats, dict):
        return

    traces = group_traces(checker, events)
    roots = {}
    for trace_id, trace_events in sorted(traces.items(), key=lambda kv: str(kv[0])):
        root = check_span_tree(checker, trace_id, trace_events, nest_slack_us)
        if root is not None:
            roots[trace_id] = root

    # Retention accounting: the file is the reservoir, so the counters in
    # traceStats must describe exactly what is in the file.
    retained = {"anomaly": 0, "sampled": 0, "tail": 0}
    anomalous = 0
    for trace_id, root in roots.items():
        bucket = root["args"]["retained_by"]
        checker.expect(bucket in retained,
                       f"trace {trace_id}: retained_by={bucket!r} unknown")
        if bucket in retained:
            retained[bucket] += 1
        flags = root["args"]["flags"]
        if flags != "clean":
            anomalous += 1
            checker.expect(
                bucket == "anomaly",
                f"trace {trace_id}: flags={flags!r} but retained_by={bucket!r} "
                "(anomalies must be retained by the anomaly ring)")
    for bucket, count in sorted(retained.items()):
        want = stats.get(f"retained_{bucket}", -1)
        checker.expect(count == want,
                       f"traceStats.retained_{bucket}={want} but file holds "
                       f"{count} such traces")
    total_retained = sum(retained.values())
    checker.expect(len(traces) == total_retained,
                   f"{len(traces)} distinct traces in file vs "
                   f"{total_retained} per traceStats")
    checker.expect(
        total_retained <= stats.get("finished", 0) <= stats.get("started", 0),
        f"retained {total_retained} <= finished {stats.get('finished')} <= "
        f"started {stats.get('started')} violated")

    # Anomaly completeness: if the ring never overflowed, every anomalous
    # request observed by the tracer must be in the file.
    observed = stats.get("anomalies_observed", 0)
    if observed <= stats.get("anomaly_keep", 0):
        checker.expect(
            anomalous == observed,
            f"tracer observed {observed} anomalous requests but the file "
            f"holds {anomalous} (ring did not overflow; none may be lost)")

    if expect_trace_id:
        checker.expect(
            expect_trace_id in roots,
            f"expected trace {expect_trace_id} not in file (have "
            f"{len(roots)} traces)")

    if metrics is not None:
        check_exemplars(checker, metrics, roots)


def check_exemplars(checker, metrics, roots):
    """Every exported exemplar must point at a trace retained in the file."""
    histograms = metrics.get("histograms", {})
    checker.expect(isinstance(histograms, dict),
                   "metrics: 'histograms' missing or not an object")
    if not isinstance(histograms, dict):
        return
    seen_any = False
    for name, hist in sorted(histograms.items()):
        for exemplar in hist.get("exemplars", []):
            seen_any = True
            trace_id = exemplar.get("trace_id")
            checker.expect(
                trace_id in roots,
                f"histogram {name}: exemplar trace_id={trace_id} "
                f"(value {exemplar.get('value')}) names no retained trace")
    checker.expect(seen_any,
                   "metrics: no histogram carries exemplars (tail-latency "
                   "attribution lost)")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"trace_check: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def make_span(trace_id, idx, parent, name, ts, dur, tid=7, pid=0, **root_args):
    args = {"idx": idx, "parent": parent, "trace_id": trace_id}
    args.update(root_args)
    return {"name": name, "cat": "serve", "ph": "X", "pid": pid, "tid": tid,
            "ts": ts, "dur": dur, "args": args}


def make_trace(trace_id, tid, flags="clean", retained_by="tail",
               outcome="served", total_ms=5.0):
    return [
        make_span(trace_id, 0, -1, "request", 0, 5000, tid=tid,
                  request_id=tid, flags=flags, sampled=False, outcome=outcome,
                  retained_by=retained_by, total_ms=total_ms),
        make_span(trace_id, 1, 0, "queue", 100, 900, tid=tid),
        make_span(trace_id, 2, 0, "execute", 1000, 3800, tid=tid),
        make_span(trace_id, 3, 2, "attempt", 1010, 3700, tid=tid),
    ]


def self_test(_args):
    """Fabricates traces to prove every check trips when it must."""
    good_doc = {
        "displayTimeUnit": "ms",
        "traceEvents":
            [{"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
              "args": {"name": "tenant:demo"}}]
            + make_trace("aaaa", 7)
            + make_trace("bbbb", 8, flags="shed", retained_by="anomaly",
                         outcome="shed")
            + make_trace("cccc", 9, retained_by="sampled"),
        "traceStats": {
            "started": 10, "finished": 10, "head_sampled": 1,
            "anomalies_observed": 1, "retained_sampled": 1,
            "retained_anomaly": 1, "retained_tail": 1, "evicted": 0,
            "spans_dropped": 0, "pool_misses": 0, "tail_keep": 32,
            "anomaly_keep": 8192, "head_sample_rate": 0.01,
        },
    }
    good_metrics = {"histograms": {
        "seastar_serve_request_latency_ms": {
            "count": 10, "p99": 5.0, "max": 5.0,
            "exemplars": [{"value": 5.0, "trace_id": "aaaa"}],
        },
    }}

    failures = []

    def expect_case(label, doc, want_fail, metrics=None, expect_id=""):
        checker = Checker()
        check_trace(checker, doc, metrics, expect_id, nest_slack_us=2000)
        if bool(checker.failures) != want_fail:
            failures.append(
                f"self-test {label}: expected "
                f"{'failure' if want_fail else 'pass'}, got "
                f"{checker.failures or 'pass'}")

    # 1. A consistent file with matching exemplars passes.
    expect_case("good", good_doc, False, metrics=good_metrics,
                expect_id="bbbb")

    # 2. A child span escaping its parent's interval fails.
    escaped = copy.deepcopy(good_doc)
    escaped["traceEvents"][4]["dur"] = 60000  # queue runs past request end
    expect_case("nesting", escaped, True)

    # 3. A span whose parent index does not exist fails.
    orphan = copy.deepcopy(good_doc)
    orphan["traceEvents"][4]["args"]["parent"] = 42
    expect_case("orphan-parent", orphan, True)

    # 4. Two roots in one trace fail.
    two_roots = copy.deepcopy(good_doc)
    two_roots["traceEvents"][4]["args"]["parent"] = -1
    expect_case("two-roots", two_roots, True)

    # 5. A retained count that disagrees with the file fails.
    drift = copy.deepcopy(good_doc)
    drift["traceStats"]["retained_tail"] = 5
    expect_case("stats-drift", drift, True)

    # 6. An anomalous trace lost from the file fails (ring did not overflow,
    # so observed anomalies must all be present).
    lost = copy.deepcopy(good_doc)
    lost["traceEvents"] = [e for e in lost["traceEvents"]
                           if e["args"].get("trace_id") != "bbbb"]
    lost["traceStats"]["retained_anomaly"] = 0
    expect_case("lost-anomaly", lost, True)

    # 7. An anomalous trace retained outside the anomaly ring fails.
    misfiled = copy.deepcopy(good_doc)
    misfiled["traceEvents"][5]["args"]["retained_by"] = "tail"  # bbbb's root
    misfiled["traceStats"]["retained_tail"] = 2
    misfiled["traceStats"]["retained_anomaly"] = 0
    expect_case("misfiled-anomaly", misfiled, True)

    # 8. An exemplar pointing at an unretained trace fails.
    dangling = copy.deepcopy(good_metrics)
    dangling["histograms"]["seastar_serve_request_latency_ms"][
        "exemplars"][0]["trace_id"] = "dddd"
    expect_case("dangling-exemplar", good_doc, True, metrics=dangling)

    # 9. Metrics with no exemplars at all fail (attribution lost).
    bare = {"histograms": {"seastar_serve_request_latency_ms": {"count": 10}}}
    expect_case("no-exemplars", good_doc, True, metrics=bare)

    # 10. A missing expected trace id fails.
    expect_case("missing-expected-id", good_doc, True, expect_id="ffff")

    # 11. An X event without args.trace_id fails shape validation.
    shapeless = copy.deepcopy(good_doc)
    del shapeless["traceEvents"][4]["args"]["trace_id"]
    expect_case("missing-trace-id", shapeless, True)

    for line in failures:
        print(line, file=sys.stderr)
    print(f"trace_check --self-test: {'FAIL' if failures else 'ok'} "
          f"(11 cases)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?", default="",
                        help="Chrome-trace JSON from --trace-out")
    parser.add_argument("--metrics", default="",
                        help="metrics JSON from the same run; enables the "
                             "exemplar-linkage check")
    parser.add_argument("--expect-trace-id", default="",
                        help="hex trace id that must be present in the file")
    parser.add_argument("--nest-slack-us", type=float, default=2000.0,
                        help="allowed parent/child interval slack in us")
    parser.add_argument("--self-test", action="store_true",
                        help="validate fabricated traces, good and broken")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test(args))
    if not args.trace:
        parser.error("trace file required (or --self-test)")
    checker = Checker()
    metrics = load(args.metrics) if args.metrics else None
    check_trace(checker, load(args.trace), metrics,
                args.expect_trace_id.strip(), args.nest_slack_us)
    sys.exit(checker.report())


if __name__ == "__main__":
    main()
