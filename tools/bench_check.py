#!/usr/bin/env python3
"""CI perf-regression gate over the bench JSON reports.

Compares a fresh BENCH_train_epoch.json / BENCH_serve.json (produced by
./bench_train_epoch and ./bench_serve --out=...) against the committed
baselines in bench/baselines/, and exits non-zero if any gated metric
regressed beyond its tolerance band.

Two kinds of gate:

  * Timing metrics (steady_avg_ms, p50_ms, p99_ms) are noisy on shared CI
    runners, so they get a wide multiplicative band (--timing-tolerance,
    default 3.0x). The band is deliberately loose: it will not catch a 20%
    slowdown, but it *will* catch the order-of-magnitude cliffs that matter
    (a fusion pass silently disabled, a plan recompiled per epoch, an
    accidental O(V*E) loop) while staying quiet across runner jitter.
  * Counting metrics (steady_plan_misses, steady_fresh_mallocs) are
    deterministic properties of the caching machinery, not of the machine,
    so they are gated hard: plan misses must be exactly zero, and fresh
    mallocs may exceed the baseline by at most --malloc-slack (default 5,
    matching the steady-state bound the CI smoke already asserts).

The serve report additionally carries a top-level tracing_overhead_pct
(p50 delta of the traced scenario over the identical untraced one), gated
at an absolute ceiling (--tracing-overhead-max, default 5%): always-on
request tracing is only acceptable while it stays within noise of the
warm path. Negative overhead is runner noise and passes.

Scenarios/runs are matched by identity keys (model+dataset for training,
scenario name for serving). A baseline entry with no fresh counterpart is a
failure (a benchmark silently dropped is itself a regression); a fresh entry
with no baseline is reported but allowed (new coverage should not need a
two-commit dance).

The kernel report (BENCH_kernels.json, from ./bench_kernels_micro
--sweep-out=...) gates the tiled aggregation path: every sweep point must
report bitwise tiled-vs-untiled parity (machine-independent, gated exactly
— a single differing bit means the tiled loops changed results, which the
design forbids), and both timings sit inside the usual band.

The shard report (BENCH_shard.json, from ./bench_shard_scaling) adds a
scaling-floor gate: speedup_at_max_shards must reach --shard-speedup-floor,
a single-shard run must exchange zero halo messages, and every run must
report shard_retries == 0 and shard_fallbacks == 0 — a healthy steady-state
bench that silently retried or demoted itself to the whole-graph
interpreter is a regression, not noise.

Usage:
  tools/bench_check.py --baseline-dir bench/baselines \
      --train BENCH_train_epoch.json --serve BENCH_serve.json \
      --shard BENCH_shard.json --kernels BENCH_kernels.json
  tools/bench_check.py --self-test     # prove the gate trips on regressions

Exit codes: 0 ok, 1 regression detected, 2 usage or I/O error.
"""

import argparse
import copy
import json
import os
import sys

TRAIN_BASELINE = "BENCH_train_epoch.json"
SERVE_BASELINE = "BENCH_serve.json"
SHARD_BASELINE = "BENCH_shard.json"
KERNELS_BASELINE = "BENCH_kernels.json"


class Gate:
    """Accumulates per-metric verdicts and formats the report."""

    def __init__(self):
        self.failures = []
        self.notes = []
        self.checked = 0

    def check(self, where, metric, fresh, baseline, limit, detail):
        self.checked += 1
        if fresh > limit:
            self.failures.append(
                f"FAIL {where} {metric}: {fresh:g} > limit {limit:g} "
                f"(baseline {baseline:g}; {detail})")
        else:
            self.notes.append(
                f"  ok {where} {metric}: {fresh:g} (baseline {baseline:g}, "
                f"limit {limit:g})")

    def missing(self, where):
        self.failures.append(
            f"FAIL {where}: present in baseline but missing from fresh report "
            "(benchmark dropped?)")

    def extra(self, where):
        self.notes.append(f"  new {where}: no baseline yet (not gated)")

    def report(self, out=sys.stdout):
        for line in self.notes:
            print(line, file=out)
        for line in self.failures:
            print(line, file=out)
        verdict = "REGRESSION" if self.failures else "ok"
        print(
            f"bench_check: {self.checked} metrics checked, "
            f"{len(self.failures)} failed -> {verdict}", file=out)
        return 1 if self.failures else 0


def check_train(gate, baseline, fresh, timing_tol, malloc_slack):
    base_runs = {(r["model"], r["dataset"]): r for r in baseline.get("runs", [])}
    fresh_runs = {(r["model"], r["dataset"]): r for r in fresh.get("runs", [])}
    for key, base in sorted(base_runs.items()):
        where = f"train {key[0]}/{key[1]}"
        run = fresh_runs.get(key)
        if run is None:
            gate.missing(where)
            continue
        gate.check(where, "steady_avg_ms", run["steady_avg_ms"],
                   base["steady_avg_ms"], base["steady_avg_ms"] * timing_tol,
                   f"{timing_tol:g}x timing band")
        gate.check(where, "steady_fresh_mallocs", run["steady_fresh_mallocs"],
                   base["steady_fresh_mallocs"],
                   base["steady_fresh_mallocs"] + malloc_slack,
                   f"baseline + {malloc_slack:g} slack")
        first_steady = fresh.get("steady_first_epoch", 0)
        steady_misses = sum(
            e["plan_misses"] for e in run.get("epochs", [])[first_steady:])
        gate.check(where, "steady_plan_misses", steady_misses, 0, 0,
                   "exact: steady epochs must not recompile plans")
    for key in sorted(set(fresh_runs) - set(base_runs)):
        gate.extra(f"train {key[0]}/{key[1]}")


TRACING_OVERHEAD_MAX_PCT = 5.0


def check_serve(gate, baseline, fresh, timing_tol, malloc_slack,
                tracing_overhead_max=TRACING_OVERHEAD_MAX_PCT):
    if "tracing_overhead_pct" in fresh:
        # Absolute ceiling, not baseline-relative: the requirement is "tracing
        # is near-free", which does not loosen just because a past run was
        # also slow. Negative deltas are runner noise; clamp to zero.
        gate.check("serve", "tracing_overhead_pct",
                   max(0.0, fresh["tracing_overhead_pct"]),
                   max(0.0, baseline.get("tracing_overhead_pct", 0.0)),
                   tracing_overhead_max,
                   f"absolute ceiling: traced p50 within "
                   f"{tracing_overhead_max:g}% of clean p50")
    base_scen = {s["name"]: s for s in baseline.get("scenarios", [])}
    fresh_scen = {s["name"]: s for s in fresh.get("scenarios", [])}
    for name, base in sorted(base_scen.items()):
        where = f"serve {name}"
        scen = fresh_scen.get(name)
        if scen is None:
            gate.missing(where)
            continue
        for metric in ("p50_ms", "p99_ms"):
            gate.check(where, metric, scen[metric], base[metric],
                       base[metric] * timing_tol, f"{timing_tol:g}x timing band")
        gate.check(where, "steady_plan_misses", scen["steady_plan_misses"],
                   base["steady_plan_misses"], 0,
                   "exact: warmed serving must not recompile plans")
        gate.check(where, "steady_fresh_mallocs", scen["steady_fresh_mallocs"],
                   base["steady_fresh_mallocs"],
                   base["steady_fresh_mallocs"] + malloc_slack,
                   f"baseline + {malloc_slack:g} slack")
        # The serving accounting identity is machine-independent; a fresh
        # report that violates it is wrong regardless of any baseline.
        outcomes = sum(scen[k] for k in
                       ("served", "degraded", "shed", "expired", "failed"))
        gate.check(where, "accounting_gap",
                   abs(scen["submitted"] - outcomes), 0, 0,
                   f"submitted={scen['submitted']} vs outcome sum={outcomes}")
        check_serve_tenants(gate, where, base, scen, timing_tol)
    for name in sorted(set(fresh_scen) - set(base_scen)):
        gate.extra(f"serve {name}")


def check_serve_tenants(gate, where, base, scen, timing_tol):
    """Per-tenant QoS gates for scenarios that carry a tenants block.

    Two machine-independent exact gates and one banded one:
      * each tenant's accounting identity must hold exactly — the rogue's
        sheds/degradations may never be smeared across the victims;
      * a victim (non-rogue) tenant must not shed or degrade at all: QoS
        isolation means the rogue's pressure stays in the rogue's slice;
      * victim p99 stays inside the timing band of the committed baseline —
        the rogue may be slow, but it must not make its neighbors slow.
    """
    base_tenants = {t["name"]: t for t in base.get("tenants", [])}
    fresh_tenants = {t["name"]: t for t in scen.get("tenants", [])}
    for name, base_t in sorted(base_tenants.items()):
        t_where = f"{where}/{name}"
        tenant = fresh_tenants.get(name)
        if tenant is None:
            gate.missing(t_where)
            continue
        outcomes = sum(tenant[k] for k in
                       ("served", "degraded", "shed", "expired", "failed"))
        gate.check(t_where, "accounting_gap",
                   abs(tenant["submitted"] - outcomes), 0, 0,
                   f"submitted={tenant['submitted']} vs outcome sum={outcomes}")
        if not tenant.get("rogue", False):
            gate.check(t_where, "p99_ms", tenant["p99_ms"], base_t["p99_ms"],
                       base_t["p99_ms"] * timing_tol,
                       f"{timing_tol:g}x victim-latency band")
            gate.check(t_where, "victim_shed", tenant["shed"], 0, 0,
                       "exact: a victim never sheds under a rogue's load")
            gate.check(t_where, "victim_degraded", tenant["degraded"], 0, 0,
                       "exact: a victim never degrades under a rogue's faults")
    for name in sorted(set(fresh_tenants) - set(base_tenants)):
        gate.extra(f"{where}/{name}")


def check_kernels(gate, baseline, fresh, timing_tol, _slack):
    key = lambda s: (s["kernel"], s["skew"], s["feat_dim"])
    base_sweeps = {key(s): s for s in baseline.get("sweeps", [])}
    fresh_sweeps = {key(s): s for s in fresh.get("sweeps", [])}
    for k, base in sorted(base_sweeps.items()):
        where = f"kernels {k[0]}/{k[1]}/d{k[2]}"
        sweep = fresh_sweeps.get(k)
        if sweep is None:
            gate.missing(where)
            continue
        for metric in ("tiled_ms", "untiled_ms"):
            gate.check(where, metric, sweep[metric], base[metric],
                       base[metric] * timing_tol, f"{timing_tol:g}x timing band")
        # Machine-independent: tiled and untiled edge loops share the
        # dispatched SIMD kernels and columns are independent, so any
        # loop partitioning must reproduce the untiled bits exactly. A
        # violation means the tiled path changed arithmetic, not just
        # locality — wrong regardless of any baseline.
        gate.check(where, "tiled_parity_violation",
                   0 if sweep["bitwise_equal"] else 1, 0, 0,
                   f"exact: max_abs_diff={sweep.get('max_abs_diff', '?')}")
    for k in sorted(set(fresh_sweeps) - set(base_sweeps)):
        gate.extra(f"kernels {k[0]}/{k[1]}/d{k[2]}")


def check_shard(gate, baseline, fresh, timing_tol, speedup_floor):
    base_runs = {r["shards"]: r for r in baseline.get("runs", [])}
    fresh_runs = {r["shards"]: r for r in fresh.get("runs", [])}
    for shards, base in sorted(base_runs.items()):
        where = f"shard x{shards}"
        run = fresh_runs.get(shards)
        if run is None:
            gate.missing(where)
            continue
        gate.check(where, "avg_epoch_ms", run["avg_epoch_ms"],
                   base["avg_epoch_ms"], base["avg_epoch_ms"] * timing_tol,
                   f"{timing_tol:g}x timing band")
        if shards == 1:
            # Machine-independent: one shard owns every vertex, so nothing
            # crosses a shard boundary. A nonzero count means the exchange
            # plans grew phantom segments.
            gate.check(where, "halo_messages", run["halo_messages"], 0, 0,
                       "exact: a single shard exchanges no halo")
        # Machine-independent recovery gates: the bench runs a shardable
        # program with no faults armed, so any retry or fallback means the
        # runtime failed (and recovered) on a healthy steady-state path.
        gate.check(where, "shard_retries", run.get("shard_retries", 0), 0, 0,
                   "exact: a healthy run never retries")
        gate.check(where, "shard_fallbacks", run.get("shard_fallbacks", 0), 0, 0,
                   "exact: a healthy run never falls back to whole-graph")
    for shards in sorted(set(fresh_runs) - set(base_runs)):
        gate.extra(f"shard x{shards}")
    # The scaling floor is the point of the sharded runtime: if the best
    # epoch at max shards no longer beats one shard by the floor factor, the
    # cache-locality (or multi-core) win has been lost. Expressed as a
    # shortfall so the limit stays a hard zero. The floor is below the
    # committed baseline's speedup to absorb runner variance; it still trips
    # on "sharding stopped helping" cliffs.
    fresh_speedup = fresh.get("speedup_at_max_shards", 0.0)
    base_speedup = baseline.get("speedup_at_max_shards", 0.0)
    gate.check("shard scaling", "speedup_shortfall",
               max(0.0, speedup_floor - fresh_speedup),
               max(0.0, speedup_floor - base_speedup), 0,
               f"speedup_at_max_shards {fresh_speedup:g}x must reach the "
               f"{speedup_floor:g}x floor")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_check: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def run_gate(args):
    gate = Gate()
    compared = 0
    def shard_checker(g, base, fresh_report, timing_tol, _slack):
        check_shard(g, base, fresh_report, timing_tol, args.shard_speedup_floor)

    def serve_checker(g, base, fresh_report, timing_tol, slack):
        check_serve(g, base, fresh_report, timing_tol, slack,
                    args.tracing_overhead_max)

    pairs = (
        (args.train, os.path.join(args.baseline_dir, TRAIN_BASELINE), check_train),
        (args.serve, os.path.join(args.baseline_dir, SERVE_BASELINE), serve_checker),
        (args.shard, os.path.join(args.baseline_dir, SHARD_BASELINE), shard_checker),
        (args.kernels, os.path.join(args.baseline_dir, KERNELS_BASELINE),
         check_kernels),
    )
    for fresh_path, baseline_path, checker in pairs:
        if not fresh_path:
            continue
        if not os.path.exists(baseline_path):
            print(f"bench_check: no baseline {baseline_path}; skipping "
                  f"{fresh_path} (commit one to arm the gate)")
            continue
        checker(gate, load(baseline_path), load(fresh_path),
                args.timing_tolerance, args.malloc_slack)
        compared += 1
    if compared == 0:
        print("bench_check: nothing compared (pass --train/--serve and commit "
              "baselines)", file=sys.stderr)
        return 2
    return gate.report()


def self_test(args):
    """Fabricates baseline+fresh reports to prove the gate trips when it must
    and stays quiet when it must not. No files are touched."""
    train_base = {
        "bench": "train_epoch", "steady_first_epoch": 3,
        "runs": [{
            "model": "GCN", "dataset": "cora", "steady_avg_ms": 10.0,
            "steady_fresh_mallocs": 1.0,
            "epochs": [{"epoch": i, "plan_misses": 0} for i in range(6)],
        }],
    }
    serve_base = {
        "bench": "serve",
        "scenarios": [{
            "name": "clean", "p50_ms": 2.0, "p99_ms": 8.0,
            "steady_plan_misses": 0, "steady_fresh_mallocs": 0,
            "submitted": 100, "served": 90, "degraded": 4, "shed": 3,
            "expired": 2, "failed": 1,
        }, {
            "name": "multi_tenant", "p50_ms": 3.0, "p99_ms": 10.0,
            "steady_plan_misses": 0, "steady_fresh_mallocs": 0,
            "submitted": 300, "served": 200, "degraded": 80, "shed": 20,
            "expired": 0, "failed": 0,
            "tenants": [
                {"name": "tenant-a", "rogue": False, "submitted": 100,
                 "served": 100, "degraded": 0, "shed": 0, "quota_shed": 0,
                 "expired": 0, "failed": 0, "p50_ms": 2.0, "p99_ms": 6.0},
                {"name": "tenant-b", "rogue": True, "submitted": 100,
                 "served": 0, "degraded": 80, "shed": 20, "quota_shed": 20,
                 "expired": 0, "failed": 0, "p50_ms": 4.0, "p99_ms": 30.0},
                {"name": "tenant-c", "rogue": False, "submitted": 100,
                 "served": 100, "degraded": 0, "shed": 0, "quota_shed": 0,
                 "expired": 0, "failed": 0, "p50_ms": 2.0, "p99_ms": 6.5},
            ],
        }],
    }

    kernels_base = {
        "bench": "kernels", "simd_isa": "avx2", "simd_lanes": 8,
        "sweeps": [
            {"kernel": "copy_sum", "skew": "uniform", "feat_dim": 16,
             "untiled_ms": 2.0, "tiled_ms": 1.5, "bitwise_equal": True,
             "max_abs_diff": 0.0},
            {"kernel": "mul_sum", "skew": "zipf", "feat_dim": 256,
             "untiled_ms": 40.0, "tiled_ms": 32.0, "bitwise_equal": True,
             "max_abs_diff": 0.0},
        ],
    }

    shard_base = {
        "bench": "shard_scaling", "speedup_at_max_shards": 1.8,
        "runs": [
            {"shards": 1, "avg_epoch_ms": 600.0, "halo_messages": 0,
             "shard_retries": 0, "shard_fallbacks": 0, "speedup": 1.0},
            {"shards": 4, "avg_epoch_ms": 330.0, "halo_messages": 24,
             "shard_retries": 0, "shard_fallbacks": 0, "speedup": 1.8},
        ],
    }

    failures = []

    def expect(label, gate_result, want_fail):
        got_fail = bool(gate_result.failures)
        if got_fail != want_fail:
            failures.append(
                f"self-test {label}: expected "
                f"{'failure' if want_fail else 'pass'}, gate said "
                f"{gate_result.failures or 'pass'}")

    # 1. Identical reports pass.
    g = Gate()
    check_train(g, train_base, copy.deepcopy(train_base), 3.0, 5.0)
    check_serve(g, serve_base, copy.deepcopy(serve_base), 3.0, 5.0)
    check_shard(g, shard_base, copy.deepcopy(shard_base), 3.0, 1.2)
    check_kernels(g, kernels_base, copy.deepcopy(kernels_base), 3.0, 5.0)
    expect("identical", g, want_fail=False)

    # 2. Timing just inside the band passes; beyond it fails.
    near = copy.deepcopy(train_base)
    near["runs"][0]["steady_avg_ms"] = 29.0
    g = Gate()
    check_train(g, train_base, near, 3.0, 5.0)
    expect("timing-in-band", g, want_fail=False)

    slow = copy.deepcopy(train_base)
    slow["runs"][0]["steady_avg_ms"] = 31.0
    g = Gate()
    check_train(g, train_base, slow, 3.0, 5.0)
    expect("timing-regressed", g, want_fail=True)

    # 3. A single steady-state plan miss fails, timing unchanged.
    recompiles = copy.deepcopy(train_base)
    recompiles["runs"][0]["epochs"][4]["plan_misses"] = 1
    g = Gate()
    check_train(g, train_base, recompiles, 3.0, 5.0)
    expect("steady-plan-miss", g, want_fail=True)

    # 4. Serving p99 blowup fails.
    spiky = copy.deepcopy(serve_base)
    spiky["scenarios"][0]["p99_ms"] = 100.0
    g = Gate()
    check_serve(g, serve_base, spiky, 3.0, 5.0)
    expect("serve-p99", g, want_fail=True)

    # 5. Broken accounting identity fails even with good timings.
    leaky = copy.deepcopy(serve_base)
    leaky["scenarios"][0]["served"] = 89  # one request vanishes
    g = Gate()
    check_serve(g, serve_base, leaky, 3.0, 5.0)
    expect("serve-identity", g, want_fail=True)

    # 5b. A broken *per-tenant* identity fails even when the global identity
    # still balances (a rogue shed mis-attributed to a victim's slice).
    smeared = copy.deepcopy(serve_base)
    smeared["scenarios"][1]["tenants"][0]["shed"] = 1
    smeared["scenarios"][1]["tenants"][0]["submitted"] = 100  # unchanged
    g = Gate()
    check_serve(g, serve_base, smeared, 3.0, 5.0)
    expect("tenant-identity", g, want_fail=True)

    # 5c. A victim's p99 blowing past the band fails — QoS isolation lost —
    # while the rogue's own p99 is not gated (it may be arbitrarily slow).
    noisy_neighbor = copy.deepcopy(serve_base)
    noisy_neighbor["scenarios"][1]["tenants"][2]["p99_ms"] = 100.0
    g = Gate()
    check_serve(g, serve_base, noisy_neighbor, 3.0, 5.0)
    expect("victim-p99", g, want_fail=True)

    slow_rogue = copy.deepcopy(serve_base)
    slow_rogue["scenarios"][1]["tenants"][1]["p99_ms"] = 500.0
    g = Gate()
    check_serve(g, serve_base, slow_rogue, 3.0, 5.0)
    expect("rogue-p99-ungated", g, want_fail=False)

    # 5d. A victim that shed or degraded at all fails exactly: the rogue's
    # pressure leaked out of its own slice.
    leaked = copy.deepcopy(serve_base)
    leaked["scenarios"][1]["tenants"][2]["shed"] = 2
    leaked["scenarios"][1]["tenants"][2]["served"] = 98
    g = Gate()
    check_serve(g, serve_base, leaked, 3.0, 5.0)
    expect("victim-shed", g, want_fail=True)

    # 5e. A tenant missing from the fresh report fails (dropped coverage).
    shrunk = copy.deepcopy(serve_base)
    del shrunk["scenarios"][1]["tenants"][1]
    g = Gate()
    check_serve(g, serve_base, shrunk, 3.0, 5.0)
    expect("dropped-tenant", g, want_fail=True)

    # 5f. Tracing overhead inside the ceiling passes (negative deltas are
    # runner noise); past the ceiling it fails even with perfect timings.
    cheap_tracing = copy.deepcopy(serve_base)
    cheap_tracing["tracing_overhead_pct"] = -1.3
    g = Gate()
    check_serve(g, serve_base, cheap_tracing, 3.0, 5.0)
    expect("tracing-overhead-in-band", g, want_fail=False)

    costly_tracing = copy.deepcopy(serve_base)
    costly_tracing["tracing_overhead_pct"] = 11.0
    g = Gate()
    check_serve(g, serve_base, costly_tracing, 3.0, 5.0)
    expect("tracing-overhead-regressed", g, want_fail=True)

    # 6. A dropped benchmark fails; a new one passes with a note.
    g = Gate()
    check_serve(g, serve_base, {"scenarios": []}, 3.0, 5.0)
    expect("dropped-scenario", g, want_fail=True)

    grown = copy.deepcopy(serve_base)
    grown["scenarios"].append(dict(serve_base["scenarios"][0], name="burst"))
    g = Gate()
    check_serve(g, serve_base, grown, 3.0, 5.0)
    expect("new-scenario", g, want_fail=False)

    # 7. Shard scaling collapse fails even inside the timing band.
    flat = copy.deepcopy(shard_base)
    flat["speedup_at_max_shards"] = 1.05
    flat["runs"][1]["avg_epoch_ms"] = 570.0
    g = Gate()
    check_shard(g, shard_base, flat, 3.0, 1.2)
    expect("shard-scaling-collapse", g, want_fail=True)

    # 8. Halo traffic on a single shard fails (phantom exchange segments).
    leaky_halo = copy.deepcopy(shard_base)
    leaky_halo["runs"][0]["halo_messages"] = 3
    g = Gate()
    check_shard(g, shard_base, leaky_halo, 3.0, 1.2)
    expect("shard-halo-at-one", g, want_fail=True)

    # 9. A whole-graph fallback in a healthy steady-state run fails exactly —
    # sharding silently degraded to the unsharded interpreter.
    demoted = copy.deepcopy(shard_base)
    demoted["runs"][1]["shard_fallbacks"] = 1
    g = Gate()
    check_shard(g, shard_base, demoted, 3.0, 1.2)
    expect("shard-fallback-in-steady-state", g, want_fail=True)

    # 10. Same for a recovery retry: the run completed, but something threw.
    retried = copy.deepcopy(shard_base)
    retried["runs"][0]["shard_retries"] = 2
    g = Gate()
    check_shard(g, shard_base, retried, 3.0, 1.2)
    expect("shard-retry-in-steady-state", g, want_fail=True)

    # 11. A tiled-parity violation fails exactly, even with perfect timings —
    # the tiled loops are only allowed to change locality, never bits.
    skewed = copy.deepcopy(kernels_base)
    skewed["sweeps"][1]["bitwise_equal"] = False
    skewed["sweeps"][1]["max_abs_diff"] = 3.1e-05
    g = Gate()
    check_kernels(g, kernels_base, skewed, 3.0, 5.0)
    expect("kernel-parity-violation", g, want_fail=True)

    # 12. A tiled-timing cliff fails; a dropped sweep point fails too.
    cliff = copy.deepcopy(kernels_base)
    cliff["sweeps"][0]["tiled_ms"] = 50.0
    g = Gate()
    check_kernels(g, kernels_base, cliff, 3.0, 5.0)
    expect("kernel-tiled-cliff", g, want_fail=True)

    g = Gate()
    check_kernels(g, kernels_base, {"sweeps": kernels_base["sweeps"][:1]},
                  3.0, 5.0)
    expect("kernel-dropped-sweep", g, want_fail=True)

    for line in failures:
        print(line, file=sys.stderr)
    print(f"bench_check --self-test: {'FAIL' if failures else 'ok'} "
          f"(22 cases)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory holding committed baseline reports")
    parser.add_argument("--train", default="",
                        help="fresh BENCH_train_epoch.json to gate")
    parser.add_argument("--serve", default="",
                        help="fresh BENCH_serve.json to gate")
    parser.add_argument("--shard", default="",
                        help="fresh BENCH_shard.json to gate")
    parser.add_argument("--kernels", default="",
                        help="fresh BENCH_kernels.json to gate")
    parser.add_argument("--timing-tolerance", type=float, default=3.0,
                        help="multiplicative band for timing metrics")
    parser.add_argument("--malloc-slack", type=float, default=5.0,
                        help="allowed fresh-malloc increase over baseline")
    parser.add_argument("--tracing-overhead-max", type=float,
                        default=TRACING_OVERHEAD_MAX_PCT,
                        help="max %% p50 overhead of the traced serve "
                             "scenario over the clean one")
    parser.add_argument("--shard-speedup-floor", type=float, default=1.2,
                        help="minimum speedup_at_max_shards in the fresh "
                             "shard report")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate against fabricated regressions")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test(args))
    sys.exit(run_gate(args))


if __name__ == "__main__":
    main()
