#!/usr/bin/env python3
"""Chaos drill for the sharded execution runtime.

Sweeps every shard fault site x hit index x shard count combination through a
real training run (examples/seastar_train --executor=sharded:N --faults=...)
and asserts the failure-handling contract end to end:

  * no deadlock or hang: every run must finish inside --timeout (a worker
    blocked on a dead peer's channel would hang forever);
  * clean unwind + recovery: the driver must exit 0 -- the recovery ladder
    (retry sharded once, then whole-graph fallback) absorbs every injected
    shard fault, so the train loop never sees an error;
  * pool reusability: training continues for the full epoch count after the
    failure, i.e. the shard runtime's persistent pool slices survive a
    cancelled execution;
  * bit-identical recovery: a transient (count=1) fault is consumed by the
    failed attempt, so the sharded retry reruns clean and the final loss and
    accuracy must match the uninjected reference run character for
    character. (Persistent faults demote to the whole-graph interpreter,
    whose S-typed float summation order legitimately differs in the last
    ulp, so those runs assert completion + fallback accounting instead.)
  * consistent accounting: per-run metrics snapshots must show retries
    implying fallbacks for persistent faults, and the sweep as a whole must
    actually fire every site it claims to cover.

Usage (full drill):
  tools/chaos_drill.py --train-bin build/examples/seastar_train

CI smoke (small graph, full site sweep at 2 shards):
  tools/chaos_drill.py --train-bin build/examples/seastar_train \
      --shards 2 --scale 0.1 --epochs 4 --out chaos_drill.json \
      --artifacts-dir chaos_artifacts
"""

import argparse
import json
import os
import subprocess
import sys
import time

SITES = ["shard_send", "shard_recv", "shard_combine", "shard_worker"]
PERSISTENT_COUNT = 1 << 20

RETRIES = "seastar_shard_retries_total"
RECOVERY_FALLBACKS = "seastar_shard_recovery_fallbacks_total"


def parse_args():
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("--train-bin", default="build/examples/seastar_train",
                   help="path to the seastar_train driver")
    p.add_argument("--shards", default="1,2,4",
                   help="comma-separated shard counts to sweep")
    p.add_argument("--sites", default=",".join(SITES),
                   help="comma-separated fault sites to sweep")
    p.add_argument("--hit-indices", default="0,1,3,7",
                   help="comma-separated after= hit indices for transient faults")
    # sage is the default because its backward stays shardable: it is the
    # only stock model whose training loop carries S-typed partial sums
    # through pass 3, so the shard_combine site actually fires. (gcn's
    # backward consumes an out-edge aggregate and demotes to whole-graph.)
    p.add_argument("--model", default="sage")
    p.add_argument("--dataset", default="cora")
    p.add_argument("--epochs", type=int, default=4)
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--timeout", type=float, default=180.0,
                   help="per-run wall clock bound; exceeding it counts as a deadlock")
    p.add_argument("--out", default="chaos_drill.json",
                   help="summary report path")
    p.add_argument("--artifacts-dir", default="chaos_artifacts",
                   help="directory for per-run metrics/events dumps")
    return p.parse_args()


def run_train(args, shards, faults, tag):
    metrics_path = os.path.join(args.artifacts_dir, f"{tag}.metrics.json")
    events_path = os.path.join(args.artifacts_dir, f"{tag}.events.log")
    cmd = [
        args.train_bin,
        f"--model={args.model}",
        f"--dataset={args.dataset}",
        f"--epochs={args.epochs}",
        f"--scale={args.scale}",
        f"--executor=sharded:{shards}",
        "--csv",
        f"--metrics-out={metrics_path}",
        f"--events-out={events_path}",
    ]
    if faults:
        cmd.append(f"--faults={faults}")
    result = {"tag": tag, "shards": shards, "faults": faults, "ok": False,
              "deadlock": False, "returncode": None, "final_loss": None,
              "train_acc": None, "seconds": None, RETRIES: 0,
              RECOVERY_FALLBACKS: 0}
    start = time.monotonic()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=args.timeout)
    except subprocess.TimeoutExpired:
        result["deadlock"] = True
        result["seconds"] = time.monotonic() - start
        return result
    result["seconds"] = time.monotonic() - start
    result["returncode"] = proc.returncode
    if proc.returncode != 0:
        result["stderr_tail"] = proc.stderr.strip().splitlines()[-5:]
        return result
    # The CSV row: model,dataset,backend,epochs,avg_epoch_ms,final_loss,
    # train_acc,peak_mb,oom -- loss/acc compared as printed strings, the
    # drill's observable form of "bit-identical after recovery".
    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    for i, line in enumerate(lines):
        if line.startswith("model,dataset"):
            row = lines[i + 1].split(",")
            result["final_loss"] = row[5]
            result["train_acc"] = row[6]
            break
    if result["final_loss"] is None:
        result["stderr_tail"] = ["no CSV row in driver output"]
        return result
    try:
        with open(metrics_path) as f:
            counters = json.load(f).get("counters", {})
        result[RETRIES] = counters.get(RETRIES, 0)
        result[RECOVERY_FALLBACKS] = counters.get(RECOVERY_FALLBACKS, 0)
    except (OSError, ValueError) as err:
        result["stderr_tail"] = [f"cannot read metrics snapshot: {err}"]
        return result
    result["ok"] = True
    return result


def main():
    args = parse_args()
    os.makedirs(args.artifacts_dir, exist_ok=True)
    shard_counts = [int(s) for s in args.shards.split(",") if s]
    sites = [s for s in args.sites.split(",") if s]
    hit_indices = [int(h) for h in args.hit_indices.split(",") if h != ""]

    cases = []
    failures = []
    fired = {}  # (shards, site) -> True once any injection actually tripped

    def fail(case, why):
        failures.append(f"{case['tag']}: {why}")

    for shards in shard_counts:
        ref = run_train(args, shards, "", f"shard{shards}_reference")
        cases.append(dict(ref, mode="reference"))
        if not ref["ok"]:
            fail(ref, "reference run failed" +
                 (" (timeout)" if ref["deadlock"] else ""))
            continue
        if ref[RETRIES] or ref[RECOVERY_FALLBACKS]:
            fail(ref, "uninjected run counted retries/fallbacks")

        for site in sites:
            for hit in hit_indices:
                tag = f"shard{shards}_{site}_after{hit}"
                case = run_train(args, shards,
                                 f"{site}:after={hit}:count=1", tag)
                case["mode"] = "transient"
                cases.append(case)
                if case["deadlock"]:
                    fail(case, f"hung past {args.timeout:g}s (deadlock)")
                    continue
                if not case["ok"]:
                    fail(case, f"driver exited {case['returncode']}: "
                         f"{case.get('stderr_tail')}")
                    continue
                if case[RECOVERY_FALLBACKS]:
                    fail(case, "count=1 fault must be absorbed by the retry, "
                         "not demote to whole-graph")
                if case[RETRIES]:
                    fired[(shards, site)] = True
                    # The retry reran the consumed fault's attempt clean:
                    # results must match the uninjected run exactly.
                    if (case["final_loss"] != ref["final_loss"] or
                            case["train_acc"] != ref["train_acc"]):
                        fail(case, f"post-recovery loss/acc "
                             f"{case['final_loss']}/{case['train_acc']} != "
                             f"reference {ref['final_loss']}/{ref['train_acc']}")
                else:
                    # Site never reached hit N in this configuration (e.g. no
                    # halo at 1 shard): the run must simply match reference.
                    if case["final_loss"] != ref["final_loss"]:
                        fail(case, "unfired fault changed the final loss")

            tag = f"shard{shards}_{site}_persistent"
            case = run_train(args, shards,
                             f"{site}:after=0:count={PERSISTENT_COUNT}", tag)
            case["mode"] = "persistent"
            cases.append(case)
            if case["deadlock"]:
                fail(case, f"hung past {args.timeout:g}s (deadlock)")
            elif not case["ok"]:
                fail(case, f"driver exited {case['returncode']}: "
                     f"{case.get('stderr_tail')}")
            elif case[RETRIES] and not case[RECOVERY_FALLBACKS]:
                fail(case, "persistent fault retried but never fell back")
            elif case[RETRIES]:
                fired[(shards, site)] = True

    # The sweep must have exercised what it claims: shard_worker fires at
    # every shard count; the exchange sites fire wherever halo exists.
    for shards in shard_counts:
        expected = {"shard_worker"} if shards == 1 else set(sites)
        for site in expected & set(sites):
            if not fired.get((shards, site)):
                failures.append(
                    f"sweep gap: site {site} never fired at {shards} shard(s)")

    report = {
        "drill": "shard_chaos",
        "model": args.model, "dataset": args.dataset,
        "epochs": args.epochs, "scale": args.scale,
        "shard_counts": shard_counts, "sites": sites,
        "hit_indices": hit_indices,
        "cases": cases, "failures": failures,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    ran = len(cases)
    print(f"chaos drill: {ran} runs "
          f"({len([c for c in cases if c['mode'] == 'transient'])} transient, "
          f"{len([c for c in cases if c['mode'] == 'persistent'])} persistent) "
          f"-> {args.out}")
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    if failures:
        print(f"chaos drill: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("chaos drill: ok (no deadlocks, clean unwind, recovery bit-identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
