// Tests for the graph substrate extensions: the §6.3.5 edge-type storage
// study, graph IO, and neighbor sampling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "src/common/rng.h"
#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/graph/sampling.h"
#include "src/graph/type_storage.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Graph SmallHetero(uint64_t seed, int64_t n = 30, int64_t m = 200, int32_t types = 4) {
  Rng rng(seed);
  CooEdges edges = ErdosRenyi(n, m, rng);
  auto edge_types = RandomEdgeTypes(m, types, rng);
  return Graph::FromCoo(n, std::move(edges.src), std::move(edges.dst), std::move(edge_types),
                        types);
}

// ---- Type storage ---------------------------------------------------------------------------------

TEST(TypeStorageTest, RunsCoverAllSlots) {
  Graph g = SmallHetero(1);
  TypeOffsetIndex index = BuildTypeOffsetIndex(g.in_csr());
  ASSERT_EQ(index.run_bounds.size(), static_cast<size_t>(g.num_vertices()) + 1);
  // Reconstruct per-slot types from runs and compare with the flat array.
  const Csr& csr = g.in_csr();
  for (int64_t k = 0; k < g.num_vertices(); ++k) {
    const int64_t slot_end = csr.offsets[static_cast<size_t>(k) + 1];
    for (int64_t run = index.run_bounds[static_cast<size_t>(k)];
         run < index.run_bounds[static_cast<size_t>(k) + 1]; ++run) {
      const int64_t start = index.run_start_slot[static_cast<size_t>(run)];
      const int64_t end = run + 1 < index.run_bounds[static_cast<size_t>(k) + 1]
                              ? index.run_start_slot[static_cast<size_t>(run) + 1]
                              : slot_end;
      for (int64_t slot = start; slot < end; ++slot) {
        EXPECT_EQ(csr.edge_types[static_cast<size_t>(slot)],
                  index.run_type[static_cast<size_t>(run)]);
      }
    }
  }
}

TEST(TypeStorageTest, UniqueTypePairsMatchesBruteForce) {
  Graph g = SmallHetero(2);
  int64_t expected = 0;
  for (int64_t v = 0; v < g.num_vertices(); ++v) {
    std::set<int32_t> types_at_v;
    for (int64_t e = 0; e < g.num_edges(); ++e) {
      if (g.edge_dst()[static_cast<size_t>(e)] == v) {
        types_at_v.insert(g.edge_type()[static_cast<size_t>(e)]);
      }
    }
    expected += static_cast<int64_t>(types_at_v.size());
  }
  EXPECT_EQ(UniqueTypePairs(g.in_csr()), expected);
}

TEST(TypeStorageTest, PaperDecisionHoldsOnHeteroCatalogue) {
  // The paper rejects the compressed format because N_e / N_t < 2 on its
  // datasets; our synthetic stand-ins must reproduce that decision.
  for (const DatasetSpec& spec : HeterogeneousDatasets()) {
    DatasetOptions options;
    options.scale = 0.05;
    Dataset data = MakeDataset(spec, options);
    TypeStorageDecision decision = AnalyzeTypeStorage(data.graph);
    EXPECT_GT(decision.ratio, 0.0) << spec.name;
    EXPECT_LT(decision.ratio, 2.0) << spec.name;  // Paper: 1.385 .. 1.923.
    EXPECT_TRUE(decision.flat_wins) << spec.name;
  }
}

TEST(TypeStorageTest, CompressedWinsWhenRunsAreLong) {
  // A graph where one vertex has many edges of a single type: huge runs,
  // tiny index — the regime where the compressed format would win.
  std::vector<int32_t> src;
  std::vector<int32_t> dst;
  std::vector<int32_t> types;
  for (int i = 0; i < 1000; ++i) {
    src.push_back(1 + (i % 7));
    dst.push_back(0);
    types.push_back(0);
  }
  Graph g = Graph::FromCoo(8, std::move(src), std::move(dst), std::move(types), 2);
  TypeStorageDecision decision = AnalyzeTypeStorage(g);
  EXPECT_GT(decision.ratio, 2.0);
  EXPECT_FALSE(decision.flat_wins);
}

// ---- IO --------------------------------------------------------------------------------------------

TEST(GraphIoTest, TsvRoundTripHomogeneous) {
  Rng rng(3);
  Graph g = ToGraph(ErdosRenyi(20, 80, rng));
  const std::string path = TempPath("seastar_io_test.tsv");
  ASSERT_TRUE(SaveEdgeListTsv(g, path));
  auto loaded = LoadEdgeListTsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  EXPECT_EQ(loaded->edge_src(), g.edge_src());
  EXPECT_EQ(loaded->edge_dst(), g.edge_dst());
  std::filesystem::remove(path);
}

TEST(GraphIoTest, TsvRoundTripHeterogeneous) {
  Graph g = SmallHetero(4);
  const std::string path = TempPath("seastar_io_test_h.tsv");
  ASSERT_TRUE(SaveEdgeListTsv(g, path));
  auto loaded = LoadEdgeListTsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->edge_type(), g.edge_type());
  EXPECT_EQ(loaded->num_edge_types(), g.num_edge_types());
  std::filesystem::remove(path);
}

TEST(GraphIoTest, TsvRejectsMalformedInput) {
  const std::string path = TempPath("seastar_io_bad.tsv");
  {
    std::ofstream out(path);
    out << "1\t2\n1\tnope\n";
  }
  EXPECT_FALSE(LoadEdgeListTsv(path).has_value());
  {
    std::ofstream out(path);
    out << "1\t2\n3\t4\t0\n";  // Inconsistent columns.
  }
  EXPECT_FALSE(LoadEdgeListTsv(path).has_value());
  {
    std::ofstream out(path);
    out << "-1\t2\n";  // Negative id.
  }
  EXPECT_FALSE(LoadEdgeListTsv(path).has_value());
  std::filesystem::remove(path);
  EXPECT_FALSE(LoadEdgeListTsv(TempPath("does_not_exist.tsv")).has_value());
}

TEST(GraphIoTest, TsvVertexCountHint) {
  const std::string path = TempPath("seastar_io_hint.tsv");
  {
    std::ofstream out(path);
    out << "0\t1\n";
  }
  auto loaded = LoadEdgeListTsv(path, /*num_vertices_hint=*/10);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), 10);
  std::filesystem::remove(path);
}

TEST(GraphIoTest, MatrixMarketGeneralPattern) {
  const std::string path = TempPath("seastar_io.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern general\n"
        << "% a comment\n"
        << "3 3 3\n"
        << "1 2\n2 3\n3 1\n";
  }
  auto loaded = LoadMatrixMarket(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), 3);
  EXPECT_EQ(loaded->num_edges(), 3);
  EXPECT_EQ(loaded->edge_src()[0], 0);
  EXPECT_EQ(loaded->edge_dst()[0], 1);
  std::filesystem::remove(path);
}

TEST(GraphIoTest, MatrixMarketSymmetricRealDoublesEdges) {
  const std::string path = TempPath("seastar_io_sym.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real symmetric\n"
        << "4 4 3\n"
        << "2 1 0.5\n3 1 1.5\n4 4 2.0\n";  // Diagonal entry not doubled.
  }
  auto loaded = LoadMatrixMarket(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_edges(), 5);  // 2 off-diagonal x2 + 1 diagonal.
  std::filesystem::remove(path);
}

TEST(GraphIoTest, MatrixMarketRejectsBadBanner) {
  const std::string path = TempPath("seastar_io_bad.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix array real general\n1 1\n0.5\n";
  }
  EXPECT_FALSE(LoadMatrixMarket(path).has_value());
  std::filesystem::remove(path);
}

TEST(GraphIoTest, BinaryRoundTrip) {
  Graph g = SmallHetero(5);
  const std::string path = TempPath("seastar_io_test.ssg");
  ASSERT_TRUE(SaveGraphBinary(g, path));
  auto loaded = LoadGraphBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded->edge_src(), g.edge_src());
  EXPECT_EQ(loaded->edge_dst(), g.edge_dst());
  EXPECT_EQ(loaded->edge_type(), g.edge_type());
  std::filesystem::remove(path);
}

TEST(GraphIoTest, BinaryRejectsCorruptFiles) {
  const std::string path = TempPath("seastar_io_corrupt.ssg");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE then garbage";
  }
  EXPECT_FALSE(LoadGraphBinary(path).has_value());
  std::filesystem::remove(path);
}

// ---- Sampling ---------------------------------------------------------------------------------------

TEST(SamplingTest, SeedsComeFirstAndEdgesRespectFanout) {
  Rng rng(6);
  Graph g = ToGraph(Rmat(200, 3000, rng));
  Rng sample_rng(7);
  const std::vector<int32_t> seeds{5, 17, 42};
  SampledSubgraph sub = SampleNeighborhood(g, seeds, {4, 4}, sample_rng);
  ASSERT_EQ(sub.num_seeds, 3);
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(sub.local_to_global[i], seeds[i]);
  }
  // Hop-1 constraint: each seed has at most 4 in-edges in the subgraph...
  // plus hop-2 edges pointing at hop-1 vertices; check seeds only.
  std::vector<int> in_count(sub.local_to_global.size(), 0);
  for (int64_t e = 0; e < sub.graph.num_edges(); ++e) {
    ++in_count[static_cast<size_t>(sub.graph.edge_dst()[static_cast<size_t>(e)])];
  }
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_LE(in_count[i], 4);
  }
}

TEST(SamplingTest, EveryEdgeExistsInOriginalGraph) {
  Rng rng(8);
  Graph g = ToGraph(ErdosRenyi(100, 1000, rng));
  std::set<std::pair<int32_t, int32_t>> original;
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    original.emplace(g.edge_src()[static_cast<size_t>(e)],
                     g.edge_dst()[static_cast<size_t>(e)]);
  }
  Rng sample_rng(9);
  SampledSubgraph sub = SampleNeighborhood(g, {0, 1, 2, 3}, {3, 3}, sample_rng);
  for (int64_t e = 0; e < sub.graph.num_edges(); ++e) {
    const int32_t u = sub.local_to_global[static_cast<size_t>(
        sub.graph.edge_src()[static_cast<size_t>(e)])];
    const int32_t v = sub.local_to_global[static_cast<size_t>(
        sub.graph.edge_dst()[static_cast<size_t>(e)])];
    EXPECT_TRUE(original.count({u, v})) << u << "->" << v;
  }
}

TEST(SamplingTest, FullFanoutTakesAllNeighbors) {
  Graph g = ToGraph(Star(6));  // All of 1..5 point at 0.
  Rng rng(10);
  SampledSubgraph sub = SampleNeighborhood(g, {0}, {0}, rng);
  EXPECT_EQ(sub.graph.num_edges(), 5);
  EXPECT_EQ(sub.local_to_global.size(), 6u);
}

TEST(SamplingTest, HeteroSubgraphKeepsEdgeTypes) {
  Graph g = SmallHetero(11, 40, 400, 5);
  Rng rng(12);
  SampledSubgraph sub = SampleNeighborhood(g, {0, 1}, {5}, rng);
  EXPECT_EQ(sub.graph.num_edge_types(), 5);
  EXPECT_EQ(sub.graph.edge_type().size(), static_cast<size_t>(sub.graph.num_edges()));
}

TEST(SamplingTest, GatherLocalFeaturesAndLabels) {
  Rng rng(13);
  Graph g = ToGraph(ErdosRenyi(50, 300, rng));
  Tensor features = ops::RandomNormal({50, 4}, 0, 1, rng);
  std::vector<int32_t> labels(50);
  for (int i = 0; i < 50; ++i) {
    labels[static_cast<size_t>(i)] = i % 3;
  }
  Rng sample_rng(14);
  SampledSubgraph sub = SampleNeighborhood(g, {7, 8}, {2}, sample_rng);
  Tensor local = GatherLocalFeatures(sub, features);
  auto local_labels = GatherLocalLabels(sub, labels);
  for (size_t i = 0; i < sub.local_to_global.size(); ++i) {
    const int32_t global = sub.local_to_global[i];
    EXPECT_EQ(local_labels[i], labels[static_cast<size_t>(global)]);
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(local.at(static_cast<int64_t>(i), j), features.at(global, j));
    }
  }
}

TEST(SamplingTest, SeedBatchesPartitionAllVertices) {
  Rng rng(15);
  auto batches = MakeSeedBatches(103, 10, rng);
  EXPECT_EQ(batches.size(), 11u);
  std::set<int32_t> seen;
  for (const auto& batch : batches) {
    for (int32_t v : batch) {
      EXPECT_TRUE(seen.insert(v).second);
    }
  }
  EXPECT_EQ(seen.size(), 103u);
}

}  // namespace
}  // namespace seastar
