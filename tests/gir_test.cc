#include <gtest/gtest.h>

#include "src/gir/autodiff.h"
#include "src/gir/builder.h"
#include "src/gir/ir.h"
#include "src/gir/passes.h"

namespace seastar {
namespace {

// Builds the forward GIR of GAT's attention kernel (paper Figs. 3/6):
//   e  = Exp(LeakyRelu(u.eu + v.ev))     E-type
//   s  = AggSum(e)                        D-type
//   a  = e / s                            E-type
//   out= AggSum(a * u.h)                  D-type
GirBuilder BuildGat(int32_t width = 4) {
  GirBuilder b;
  Value eu = b.Src("eu", 1);
  Value ev = b.Dst("ev", 1);
  Value e = Exp(LeakyRelu(eu + ev, 0.2f));
  Value s = AggSum(e);
  Value a = e / s;
  Value out = AggSum(a * b.Src("h", width));
  b.MarkOutput(out, "out");
  return b;
}

TEST(TypeInferenceTest, ElementwiseRules) {
  using GT = GraphType;
  // Rule 2: single type passes through.
  EXPECT_EQ(InferElementwiseType({GT::kSrc}), GT::kSrc);
  EXPECT_EQ(InferElementwiseType({GT::kDst, GT::kDst}), GT::kDst);
  // Rule 3: mixing two or more of {S, D, E} yields E.
  EXPECT_EQ(InferElementwiseType({GT::kSrc, GT::kDst}), GT::kEdge);
  EXPECT_EQ(InferElementwiseType({GT::kSrc, GT::kEdge}), GT::kEdge);
  EXPECT_EQ(InferElementwiseType({GT::kDst, GT::kEdge}), GT::kEdge);
  EXPECT_EQ(InferElementwiseType({GT::kSrc, GT::kDst, GT::kEdge}), GT::kEdge);
  // Rule 4: P is neutral.
  EXPECT_EQ(InferElementwiseType({GT::kSrc, GT::kParam}), GT::kSrc);
  EXPECT_EQ(InferElementwiseType({GT::kParam, GT::kParam}), GT::kParam);
}

TEST(BuilderTest, GatTypesMatchPaperFig6) {
  GirBuilder b = BuildGat();
  const GirGraph& g = b.graph();
  // Walk nodes and record: Add is E, LeakyRelu E, Exp E, first AggSum D,
  // Div E, Mul E, second AggSum D.
  std::vector<std::pair<OpKind, GraphType>> expected{
      {OpKind::kAdd, GraphType::kEdge},     {OpKind::kLeakyRelu, GraphType::kEdge},
      {OpKind::kExp, GraphType::kEdge},     {OpKind::kAggSum, GraphType::kDst},
      {OpKind::kDiv, GraphType::kEdge},     {OpKind::kMul, GraphType::kEdge},
      {OpKind::kAggSum, GraphType::kDst},
  };
  size_t next = 0;
  for (const Node& node : g.nodes()) {
    if (IsLeaf(node.kind)) {
      continue;
    }
    ASSERT_LT(next, expected.size());
    EXPECT_EQ(node.kind, expected[next].first) << "node " << node.id;
    EXPECT_EQ(node.type, expected[next].second) << "node " << node.id;
    ++next;
  }
  EXPECT_EQ(next, expected.size());
}

TEST(BuilderTest, LeafDeduplication) {
  GirBuilder b;
  Value h1 = b.Src("h", 8);
  Value h2 = b.Src("h", 8);
  EXPECT_EQ(h1.id(), h2.id());
  // Same key accessed from the other side is a distinct node.
  Value h3 = b.Dst("h", 8);
  EXPECT_NE(h1.id(), h3.id());
}

TEST(BuilderTest, WidthBroadcastRules) {
  GirBuilder b;
  Value a = b.Src("a", 1);
  Value h = b.Src("h", 8);
  Value m = a * h;  // width-1 broadcast
  EXPECT_EQ(m.width(), 8);
  EXPECT_EQ((h + 1.0f).width(), 8);
}

TEST(BuilderTest, DefaultAggregationOrientation) {
  GirBuilder b;
  Value s_in = b.Src("x", 2);
  Value d_in = b.Dst("y", 2);
  // Rule 1: S -> D, D -> S, E -> D (forward default).
  EXPECT_EQ(AggSum(s_in).type(), GraphType::kDst);
  EXPECT_EQ(AggSum(d_in).type(), GraphType::kSrc);
  EXPECT_EQ(AggSum(s_in + d_in).type(), GraphType::kDst);
  // Explicit orientation override.
  EXPECT_EQ(AggSum(s_in + d_in, AggTo::kSrc).type(), GraphType::kSrc);
}

TEST(BuilderTest, ScalarConstIsParamType) {
  GirBuilder b;
  Value c = b.Const(3.5f);
  EXPECT_EQ(c.type(), GraphType::kParam);
  EXPECT_EQ(c.width(), 1);
}

TEST(IrTest, ToStringContainsAnnotatedTypes) {
  GirBuilder b = BuildGat();
  const std::string dump = b.graph().ToString();
  EXPECT_NE(dump.find("AggSum"), std::string::npos);
  EXPECT_NE(dump.find(":E["), std::string::npos);
  EXPECT_NE(dump.find(":D["), std::string::npos);
  EXPECT_NE(dump.find("// output"), std::string::npos);
}

TEST(IrTest, ConsumerLists) {
  GirBuilder b;
  Value x = b.Src("x", 1);
  Value y = Exp(x);
  Value z = y + y;
  (void)z;
  auto consumers = b.graph().BuildConsumerLists();
  EXPECT_EQ(consumers[static_cast<size_t>(x.id())].size(), 1u);
  EXPECT_EQ(consumers[static_cast<size_t>(y.id())].size(), 2u);
}

// ---- Passes --------------------------------------------------------------------------------------

TEST(PassTest, DceRemovesUnreachable) {
  GirBuilder b;
  Value x = b.Src("x", 1);
  Value used = Exp(x);
  Value dead = Log(x);
  (void)dead;
  b.MarkOutput(AggSum(used), "out");
  const int32_t before = b.graph().num_nodes();
  PassResult result = DeadCodeElimination(b.graph());
  EXPECT_EQ(result.graph.num_nodes(), before - 1);
  EXPECT_EQ(result.remap[static_cast<size_t>(dead.id())], -1);
  EXPECT_GE(result.remap[static_cast<size_t>(used.id())], 0);
}

TEST(PassTest, CseMergesIdenticalSubexpressions) {
  GirBuilder b;
  Value x = b.Src("x", 1);
  Value e1 = Exp(x);
  Value e2 = Exp(x);
  b.MarkOutput(AggSum(e1 + e2), "out");
  PassResult result = CommonSubexpressionElimination(b.graph());
  EXPECT_EQ(result.remap[static_cast<size_t>(e1.id())],
            result.remap[static_cast<size_t>(e2.id())]);
  // One Exp remains.
  int exp_count = 0;
  for (const Node& node : result.graph.nodes()) {
    exp_count += node.kind == OpKind::kExp ? 1 : 0;
  }
  EXPECT_EQ(exp_count, 1);
}

TEST(PassTest, CseKeepsDifferentAttrsApart) {
  GirBuilder b;
  Value x = b.Src("x", 1);
  Value l1 = LeakyRelu(x, 0.1f);
  Value l2 = LeakyRelu(x, 0.2f);
  b.MarkOutput(AggSum(l1 + l2), "out");
  PassResult result = CommonSubexpressionElimination(b.graph());
  EXPECT_NE(result.remap[static_cast<size_t>(l1.id())],
            result.remap[static_cast<size_t>(l2.id())]);
}

TEST(PassTest, ConstantFoldingFoldsPureConstExpressions) {
  GirBuilder b;
  Value c = b.Const(2.0f) * b.Const(3.0f);
  Value x = b.Src("x", 1);
  b.MarkOutput(AggSum(x * c), "out");
  PassResult result = ConstantFold(b.graph());
  bool found_const6 = false;
  for (const Node& node : result.graph.nodes()) {
    if (node.kind == OpKind::kConst && node.attr == 6.0f) {
      found_const6 = true;
    }
    EXPECT_NE(node.kind == OpKind::kMul && node.type == GraphType::kParam, true)
        << "const-only Mul should have been folded";
  }
  EXPECT_TRUE(found_const6);
}

TEST(PassTest, AlgebraicIdentities) {
  GirBuilder b;
  Value x = b.Src("x", 4);
  Value y = (x * 1.0f) + 0.0f;  // Should collapse to x.
  b.MarkOutput(AggSum(y), "out");
  PassResult result = RunStandardPasses(b.graph());
  // Only the input, the AggSum, and no arithmetic should remain.
  int compute_nodes = 0;
  for (const Node& node : result.graph.nodes()) {
    if (!IsLeaf(node.kind)) {
      ++compute_nodes;
    }
  }
  EXPECT_EQ(compute_nodes, 1);  // just AggSum
}

TEST(PassTest, StandardPassesPreserveOutputs) {
  GirBuilder b = BuildGat();
  PassResult result = RunStandardPasses(b.graph());
  ASSERT_EQ(result.graph.outputs().size(), 1u);
  EXPECT_EQ(result.graph.output_names()[0], "out");
}

// ---- Autodiff ------------------------------------------------------------------------------------

TEST(AutodiffGirTest, GradInputHasOutputTypeAndWidth) {
  GirBuilder b = BuildGat(8);
  const GirGraph& fwd = b.graph();
  BackwardGir bwd = BuildBackward(fwd, fwd.outputs()[0]);
  // Find the __grad input.
  bool found = false;
  for (const Node& node : bwd.graph.nodes()) {
    if (node.kind == OpKind::kInput && node.name == kGradInputKey) {
      EXPECT_EQ(node.type, GraphType::kDst);
      EXPECT_EQ(node.width, 8);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AutodiffGirTest, GatBackwardProducesGradsForAllInputs) {
  GirBuilder b = BuildGat();
  const GirGraph& fwd = b.graph();
  BackwardGir bwd = BuildBackward(fwd, fwd.outputs()[0]);
  ASSERT_EQ(bwd.input_grads.size(), 3u);  // eu (S), ev (D), h (S)
  std::set<std::string> keys;
  for (const auto& info : bwd.input_grads) {
    keys.insert(info.key);
    EXPECT_GE(info.backward_output, 0);
  }
  EXPECT_EQ(keys, (std::set<std::string>{"eu", "ev", "h"}));
}

TEST(AutodiffGirTest, BackwardContainsBothAggregationOrientations) {
  // Paper Fig. 6: GAT's backward GIR aggregates onto sources (grads of
  // u.eu / u.h) and onto destinations (grad of v.ev).
  GirBuilder b = BuildGat();
  const GirGraph& fwd = b.graph();
  BackwardGir bwd = BuildBackward(fwd, fwd.outputs()[0]);
  bool has_to_src = false;
  bool has_to_dst = false;
  for (const Node& node : bwd.graph.nodes()) {
    if (node.kind == OpKind::kAggSum) {
      has_to_src = has_to_src || node.type == GraphType::kSrc;
      has_to_dst = has_to_dst || node.type == GraphType::kDst;
    }
  }
  EXPECT_TRUE(has_to_src);
  EXPECT_TRUE(has_to_dst);
}

TEST(AutodiffGirTest, BroadcastMulBackwardUsesDotProduct) {
  // out = AggSum(a * h) with width(a)=1, width(h)=8: grad of a needs a
  // feature-dimension reduction (dot product).
  GirBuilder b;
  Value a = b.Edge("a", 1);
  Value h = b.Src("h", 8);
  b.MarkOutput(AggSum(a * h), "out");
  BackwardGir bwd = BuildBackward(b.graph(), b.graph().outputs()[0]);
  bool has_dot = false;
  for (const Node& node : bwd.graph.nodes()) {
    has_dot = has_dot || node.kind == OpKind::kDotProduct;
  }
  EXPECT_TRUE(has_dot);
}

TEST(AutodiffGirTest, MeanBackwardDividesByDegree) {
  GirBuilder b;
  Value h = b.Src("h", 4);
  b.MarkOutput(AggMean(h), "out");
  BackwardGir bwd = BuildBackward(b.graph(), b.graph().outputs()[0]);
  bool has_degree = false;
  for (const Node& node : bwd.graph.nodes()) {
    has_degree = has_degree || node.kind == OpKind::kDegree;
  }
  EXPECT_TRUE(has_degree);
}

TEST(AutodiffGirTest, MaxBackwardUsesEqualMask) {
  GirBuilder b;
  Value h = b.Src("h", 4);
  b.MarkOutput(AggMax(h), "out");
  BackwardGir bwd = BuildBackward(b.graph(), b.graph().outputs()[0]);
  bool has_mask = false;
  for (const Node& node : bwd.graph.nodes()) {
    has_mask = has_mask || node.kind == OpKind::kEqualMask;
  }
  EXPECT_TRUE(has_mask);
}

TEST(AutodiffGirTest, OptimizeBackwardKeepsTablesCoherent) {
  GirBuilder b = BuildGat();
  const GirGraph& fwd = b.graph();
  BackwardGir bwd = BuildBackward(fwd, fwd.outputs()[0]);
  const size_t grads_before = bwd.input_grads.size();
  OptimizeBackward(&bwd);
  EXPECT_EQ(bwd.input_grads.size(), grads_before);
  for (const auto& info : bwd.input_grads) {
    ASSERT_GE(info.backward_output, 0);
    ASSERT_LT(info.backward_output, bwd.graph.num_nodes());
    EXPECT_TRUE(bwd.graph.IsOutput(info.backward_output));
  }
  // forward_copy entries are either -1 (eliminated) or valid ids.
  for (int32_t copy : bwd.forward_copy) {
    EXPECT_LT(copy, bwd.graph.num_nodes());
  }
}

TEST(AutodiffGirTest, TypedSrcGradUsesTypedAggregation) {
  GirBuilder b;
  Value wh = b.TypedSrc("wh", 4);
  Value norm = b.Src("norm", 1);
  b.MarkOutput(AggSum(wh * norm), "out");
  BackwardGir bwd = BuildBackward(b.graph(), b.graph().outputs()[0]);
  bool has_typed = false;
  for (const Node& node : bwd.graph.nodes()) {
    has_typed = has_typed || node.kind == OpKind::kAggTypedToSrc;
  }
  EXPECT_TRUE(has_typed);
}

}  // namespace
}  // namespace seastar
