// Tests for the sharded execution runtime: partitioner invariants over
// degenerate graph shapes, the shardability rules, halo-exchange
// determinism, executor-factory spec parsing, and end-to-end training
// parity of the sharded runtime against the full-graph interpreter.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>

#include "src/common/deadline.h"
#include "src/common/fault.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/core/executor_factory.h"
#include "src/core/models/gat.h"
#include "src/core/models/gcn.h"
#include "src/core/train.h"
#include "src/exec/seastar_executor.h"
#include "src/exec/shard_runtime.h"
#include "src/gir/builder.h"
#include "src/graph/generators.h"
#include "src/graph/partition.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

Graph RandomGraph(int64_t n, int64_t m, uint64_t seed) {
  Rng rng(seed);
  return ToGraph(ErdosRenyi(n, m, rng));
}

// Structural invariants every partition must satisfy, whatever the graph.
void CheckPartitionInvariants(const Graph& g, const ShardedGraph& sharded) {
  ASSERT_EQ(sharded.cuts.size(), static_cast<size_t>(sharded.num_shards) + 1);
  EXPECT_EQ(sharded.cuts.front(), 0);
  EXPECT_EQ(sharded.cuts.back(), g.num_vertices());
  int64_t owned_total = 0;
  int64_t edge_total = 0;
  for (const GraphShard& shard : sharded.shards) {
    EXPECT_EQ(shard.owned_begin, sharded.cuts[shard.shard_id]);
    EXPECT_EQ(shard.owned_end, sharded.cuts[shard.shard_id + 1]);
    owned_total += shard.owned_count();
    edge_total += shard.local.num_edges();
    EXPECT_EQ(shard.local.num_vertices(), shard.local_count());
    EXPECT_EQ(static_cast<int64_t>(shard.edge_global.size()), shard.local.num_edges());
    // Local edge order preserves global edge order.
    EXPECT_TRUE(std::is_sorted(shard.edge_global.begin(), shard.edge_global.end()));
    // Halo ids are ascending, unique and owned elsewhere.
    for (size_t i = 0; i < shard.halo_globals.size(); ++i) {
      const int32_t v = shard.halo_globals[i];
      if (i > 0) {
        EXPECT_LT(shard.halo_globals[i - 1], v);
      }
      EXPECT_TRUE(v < shard.owned_begin || v >= shard.owned_end);
      EXPECT_NE(sharded.OwnerOf(v), shard.shard_id);
    }
    // No zero-length halo segments, ever (satellite: empty shards, isolated
    // vertices and self-loops must not emit empty exchange plans).
    for (const HaloSegment& seg : shard.send_plans) {
      EXPECT_FALSE(seg.local_rows.empty());
    }
    for (const HaloSegment& seg : shard.recv_plans) {
      EXPECT_FALSE(seg.local_rows.empty());
    }
  }
  EXPECT_EQ(owned_total, g.num_vertices());
  EXPECT_EQ(edge_total, g.num_edges());
  // Exchange plans are pairwise aligned: owner's send segment for a peer
  // matches the peer's recv segment for the owner, row for row.
  for (const GraphShard& owner : sharded.shards) {
    for (const HaloSegment& send : owner.send_plans) {
      const GraphShard& mirrorer = sharded.shards[static_cast<size_t>(send.peer)];
      const HaloSegment* recv = nullptr;
      for (const HaloSegment& seg : mirrorer.recv_plans) {
        if (seg.peer == owner.shard_id) {
          recv = &seg;
        }
      }
      ASSERT_NE(recv, nullptr);
      ASSERT_EQ(send.local_rows.size(), recv->local_rows.size());
      for (size_t i = 0; i < send.local_rows.size(); ++i) {
        // Both sides list the same global vertex at the same position.
        const int64_t send_global = owner.owned_begin + send.local_rows[i];
        const int32_t halo_index =
            recv->local_rows[i] - static_cast<int32_t>(mirrorer.owned_count());
        ASSERT_GE(halo_index, 0);
        EXPECT_EQ(send_global, mirrorer.halo_globals[static_cast<size_t>(halo_index)]);
      }
    }
  }
}

TEST(PartitionerTest, CoversVerticesEdgesAndAlignsPlans) {
  const Graph g = RandomGraph(200, 1200, 0x5a1);
  for (int k : {1, 2, 3, 4, 7}) {
    ShardedGraph sharded = Partitioner::Partition(g, {k});
    EXPECT_EQ(sharded.num_shards, k);
    CheckPartitionInvariants(g, sharded);
  }
}

TEST(PartitionerTest, EmptyGraph) {
  const Graph g = Graph::FromCoo(0, {}, {});
  ShardedGraph sharded = Partitioner::Partition(g, {3});
  CheckPartitionInvariants(g, sharded);
  EXPECT_EQ(sharded.TotalMirrors(), 0);
}

TEST(PartitionerTest, MoreShardsThanVertices) {
  const Graph g = Graph::FromCoo(3, {0, 1, 2}, {1, 2, 0});
  ShardedGraph sharded = Partitioner::Partition(g, {8});
  CheckPartitionInvariants(g, sharded);
  // Some shards own nothing; they must still be well-formed and plan-free
  // on the send side (they own nothing anyone could mirror).
  int64_t empty = 0;
  for (const GraphShard& shard : sharded.shards) {
    if (shard.owned_count() == 0) {
      ++empty;
      EXPECT_EQ(shard.local.num_edges(), 0);
      EXPECT_TRUE(shard.send_plans.empty());
      EXPECT_TRUE(shard.recv_plans.empty());
    }
  }
  EXPECT_GE(empty, 5);
}

TEST(PartitionerTest, IsolatedVerticesAreOwnedButNeverMirrored) {
  // Vertices 4..9 have no edges at all.
  const Graph g = Graph::FromCoo(10, {0, 1, 2}, {1, 2, 3});
  ShardedGraph sharded = Partitioner::Partition(g, {4});
  CheckPartitionInvariants(g, sharded);
  for (const GraphShard& shard : sharded.shards) {
    for (int32_t v : shard.halo_globals) {
      EXPECT_LT(v, 4) << "isolated vertex mirrored";
    }
  }
}

TEST(PartitionerTest, SelfLoopsStayShardLocal) {
  std::vector<int32_t> src, dst;
  for (int32_t v = 0; v < 12; ++v) {
    src.push_back(v);
    dst.push_back(v);
  }
  const Graph g = Graph::FromCoo(12, std::move(src), std::move(dst));
  ShardedGraph sharded = Partitioner::Partition(g, {4});
  CheckPartitionInvariants(g, sharded);
  EXPECT_EQ(sharded.TotalMirrors(), 0);
  for (const GraphShard& shard : sharded.shards) {
    EXPECT_TRUE(shard.halo_globals.empty());
    EXPECT_TRUE(shard.send_plans.empty());
    EXPECT_TRUE(shard.recv_plans.empty());
  }
}

TEST(PartitionerTest, DeterministicAcrossCalls) {
  const Graph g = RandomGraph(150, 900, 0x5a2);
  ShardedGraph a = Partitioner::Partition(g, {4});
  ShardedGraph b = Partitioner::Partition(g, {4});
  ASSERT_EQ(a.cuts, b.cuts);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(a.shards[s].halo_globals, b.shards[s].halo_globals);
    EXPECT_EQ(a.shards[s].edge_global, b.shards[s].edge_global);
  }
}

// ---- Shardability rules --------------------------------------------------

TEST(ShardableTest, AcceptsForwardDstAggregation) {
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 4)), "out");
  EXPECT_TRUE(ShardRuntime::CheckShardable(b.TakeGraph()).ok());
}

TEST(ShardableTest, AcceptsAdditiveOutputOnlySourceAggregation) {
  GirBuilder b;
  b.MarkOutput(AggSum(b.Dst("g", 4), AggTo::kSrc), "grad_h");
  EXPECT_TRUE(ShardRuntime::CheckShardable(b.TakeGraph()).ok());
}

TEST(ShardableTest, RejectsOutDegree) {
  GirBuilder b;
  Node degree;
  degree.kind = OpKind::kDegree;
  degree.type = GraphType::kSrc;
  degree.width = 1;
  Value deg = b.RawNode(degree);
  b.MarkOutput(AggSum(b.Src("h", 1) * deg), "out");
  const Status status = ShardRuntime::CheckShardable(b.TakeGraph());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("out-degree"), std::string::npos);
}

TEST(ShardableTest, RejectsNonAdditiveSourceAggregation) {
  GirBuilder b;
  b.MarkOutput(AggMax(b.Dst("g", 2), AggTo::kSrc), "grad_h");
  const Status status = ShardRuntime::CheckShardable(b.TakeGraph());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("non-additively"), std::string::npos);
}

TEST(ShardableTest, RejectsInternallyConsumedSourceAggregation) {
  GirBuilder b;
  Value partial = AggSum(b.Dst("g", 2), AggTo::kSrc);
  b.MarkOutput(Relu(partial), "out");
  const Status status = ShardRuntime::CheckShardable(b.TakeGraph());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("partial"), std::string::npos);
}

// ---- Sharded execution vs the full-graph interpreter ---------------------

FeatureMap RandomVertexFeatures(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 4}, 0.0f, 1.0f, rng);
  features.vertex["g"] = ops::RandomNormal({g.num_vertices(), 4}, 0.0f, 1.0f, rng);
  return features;
}

TEST(ShardRuntimeTest, ForwardAggregationMatchesFullGraph) {
  const Graph g = RandomGraph(120, 700, 0x77);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 4) * b.Dst("g", 4)), "out");
  const GirGraph gir = b.TakeGraph();
  const FeatureMap features = RandomVertexFeatures(g, 0x78);

  SeastarExecutor full;
  const Tensor expected = full.Run(gir, g, features).outputs.at("out");
  for (int k : {1, 2, 4}) {
    ShardRuntime runtime({.num_shards = k});
    GraphView view = runtime.PrepareView(g);
    Tensor got = runtime.Execute(gir, view, features).outputs.at("out");
    EXPECT_TRUE(expected.AllClose(got, 1e-6f)) << "shards=" << k;
  }
}

TEST(ShardRuntimeTest, SourceAggregationCombinesPartials) {
  const Graph g = RandomGraph(90, 600, 0x79);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Dst("g", 4) * b.Src("h", 4), AggTo::kSrc), "grad_h");
  const GirGraph gir = b.TakeGraph();
  const FeatureMap features = RandomVertexFeatures(g, 0x7a);

  SeastarExecutor full;
  const Tensor expected = full.Run(gir, g, features).outputs.at("grad_h");
  for (int k : {2, 3, 4}) {
    ShardRuntime runtime({.num_shards = k});
    GraphView view = runtime.PrepareView(g);
    Tensor got = runtime.Execute(gir, view, features).outputs.at("grad_h");
    EXPECT_TRUE(expected.AllClose(got, 1e-5f)) << "shards=" << k;
  }
}

TEST(ShardRuntimeTest, EdgeOutputsScatterThroughGlobalEdgeIds) {
  const Graph g = RandomGraph(80, 500, 0x7b);
  GirBuilder b;
  b.MarkOutput(b.Src("h", 4) * b.Dst("g", 4), "e_out");
  const GirGraph gir = b.TakeGraph();
  const FeatureMap features = RandomVertexFeatures(g, 0x7c);

  SeastarExecutor full;
  const Tensor expected = full.Run(gir, g, features).outputs.at("e_out");
  ShardRuntime runtime({.num_shards = 3});
  GraphView view = runtime.PrepareView(g);
  Tensor got = runtime.Execute(gir, view, features).outputs.at("e_out");
  EXPECT_TRUE(expected.AllClose(got, 1e-6f));
}

TEST(ShardRuntimeTest, HaloExchangeOrderIsDeterministic) {
  // The S-typed combine applies peer partials in ascending shard id order;
  // two runs must therefore be bit-identical even though the exchange
  // happens on concurrent shard workers. (Under TSan this test doubles as
  // the halo-exchange race check.)
  const Graph g = RandomGraph(100, 800, 0x7d);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Dst("g", 4) * b.Src("h", 4), AggTo::kSrc), "grad_h");
  const GirGraph gir = b.TakeGraph();
  const FeatureMap features = RandomVertexFeatures(g, 0x7e);

  ShardRuntime runtime({.num_shards = 4});
  GraphView view = runtime.PrepareView(g);
  const Tensor first = runtime.Execute(gir, view, features).outputs.at("grad_h");
  for (int run = 0; run < 3; ++run) {
    Tensor again = runtime.Execute(gir, view, features).outputs.at("grad_h");
    EXPECT_TRUE(first.AllClose(again, 0.0f)) << "run " << run << " not bit-identical";
  }
}

TEST(ShardRuntimeTest, UnshardableProgramFallsBackExactly) {
  const Graph g = RandomGraph(60, 300, 0x7f);
  GirBuilder b;
  b.MarkOutput(AggMax(b.Dst("g", 4), AggTo::kSrc), "grad_h");
  const GirGraph gir = b.TakeGraph();
  const FeatureMap features = RandomVertexFeatures(g, 0x80);

  metrics::Counter* fallbacks =
      metrics::MetricsRegistry::Get().GetCounter("seastar_shard_fallbacks_total");
  const int64_t before = fallbacks->value();

  SeastarExecutor full;
  const Tensor expected = full.Run(gir, g, features).outputs.at("grad_h");
  ShardRuntime runtime({.num_shards = 4});
  GraphView view = runtime.PrepareView(g);
  Tensor got = runtime.Execute(gir, view, features).outputs.at("grad_h");
  EXPECT_TRUE(expected.AllClose(got, 0.0f));
  EXPECT_EQ(fallbacks->value(), before + 1);
}

TEST(ShardRuntimeTest, ExecutesWithoutPreparedView) {
  // Callers that bypass MakeSession get a per-call partition — slower but
  // identical results.
  const Graph g = RandomGraph(70, 400, 0x81);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 4)), "out");
  const GirGraph gir = b.TakeGraph();
  const FeatureMap features = RandomVertexFeatures(g, 0x82);

  SeastarExecutor full;
  const Tensor expected = full.Run(gir, g, features).outputs.at("out");
  ShardRuntime runtime({.num_shards = 2});
  GraphView bare(g);
  Tensor got = runtime.Execute(gir, bare, features).outputs.at("out");
  EXPECT_TRUE(expected.AllClose(got, 1e-6f));
}

// ---- Fault injection, cancellation and recovery --------------------------

// A program with one D-typed and one S-typed additive output, so at shard
// counts > 1 every pass carries halo messages and every shard fault site
// (send/recv/worker/combine) has hits to trip on.
GirGraph FaultProgram() {
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 4) * b.Dst("g", 4)), "out");
  b.MarkOutput(AggSum(b.Dst("g", 4) * b.Src("h", 4), AggTo::kSrc), "grad_h");
  return b.TakeGraph();
}

void ExpectBitIdentical(const RunResult& expected, const RunResult& got,
                        const std::string& label) {
  ASSERT_EQ(expected.outputs.size(), got.outputs.size()) << label;
  for (const auto& [name, tensor] : expected.outputs) {
    EXPECT_TRUE(tensor.AllClose(got.outputs.at(name), 0.0f))
        << label << ": output '" << name << "' not bit-identical";
  }
}

struct RecoveryCounterHandles {
  metrics::Counter* retries;
  metrics::Counter* recovery_fallbacks;
};

RecoveryCounterHandles RecoveryCounters() {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Get();
  return {registry.GetCounter("seastar_shard_retries_total"),
          registry.GetCounter("seastar_shard_recovery_fallbacks_total")};
}

constexpr FaultSite kShardSites[] = {FaultSite::kShardSend, FaultSite::kShardRecv,
                                     FaultSite::kShardCombine, FaultSite::kShardWorker};

TEST(ShardFaultTest, EverySiteCancelsCleanlyAndRuntimeIsReusable) {
  // Trip each shard fault site in turn against the bare runtime (no recovery
  // ladder): the first failing shard must cancel its peers and the Execute
  // call unwind promptly — never deadlock on a channel against the dead
  // shard — and the runtime (with its persistent slice pools) must produce
  // bit-identical results on the very next call. Under TSan this test is the
  // cancellation-path race check the CI job asserts on.
  const Graph g = RandomGraph(120, 800, 0x90);
  const GirGraph gir = FaultProgram();
  const FeatureMap features = RandomVertexFeatures(g, 0x91);

  ShardRuntime runtime({.num_shards = 4});
  GraphView view = runtime.PrepareView(g);
  const RunResult reference = runtime.Execute(gir, view, features);

  for (const FaultSite site : kShardSites) {
    ScopedFaultClear clear;
    FaultInjector::Get().Arm(site, /*after_n=*/0, /*count=*/1);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(runtime.Execute(gir, view, features), ShardFault) << FaultSiteName(site);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    // Bounded unwind: generous wall bound (TSan runs are slow) — a channel
    // deadlock would hang the test outright, a slow unwind trips this.
    EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 30)
        << FaultSiteName(site);
    EXPECT_GE(FaultInjector::Get().injected(site), 1) << FaultSiteName(site);
    FaultInjector::Get().Disarm(site);
    ExpectBitIdentical(reference, runtime.Execute(gir, view, features),
                       std::string("rerun after ") + FaultSiteName(site));
  }
}

TEST(ShardRecoveryTest, TransientFaultRetriesOnceBitIdentical) {
  // Through the session (the recovery ladder): a count=1 fault is consumed
  // by the failed attempt, so the single sharded retry reruns clean and the
  // caller sees no error and a result bit-identical to an uninjected run.
  const Graph g = RandomGraph(110, 700, 0x92);
  const GirGraph gir = FaultProgram();
  const FeatureMap features = RandomVertexFeatures(g, 0x93);

  auto executor = std::make_shared<ShardRuntime>(ShardRuntimeOptions{.num_shards = 4});
  ExecutionSession session = MakeSession(executor, g);
  const RunResult reference = session.Execute(gir, features);
  const RecoveryCounterHandles counters = RecoveryCounters();

  for (const FaultSite site : kShardSites) {
    ScopedFaultClear clear;
    const int64_t retries_before = counters.retries->value();
    const int64_t fallbacks_before = counters.recovery_fallbacks->value();
    FaultInjector::Get().Arm(site, /*after_n=*/0, /*count=*/1);
    RunResult recovered;
    ASSERT_NO_THROW(recovered = session.Execute(gir, features)) << FaultSiteName(site);
    EXPECT_EQ(counters.retries->value(), retries_before + 1) << FaultSiteName(site);
    EXPECT_EQ(counters.recovery_fallbacks->value(), fallbacks_before) << FaultSiteName(site);
    ExpectBitIdentical(reference, recovered,
                       std::string("recovered from ") + FaultSiteName(site));
  }
}

TEST(ShardRecoveryTest, WorkerFaultRecoversAtEveryShardCount) {
  const Graph g = RandomGraph(100, 600, 0x94);
  const GirGraph gir = FaultProgram();
  const FeatureMap features = RandomVertexFeatures(g, 0x95);

  for (const int shards : {1, 2, 4}) {
    auto executor = std::make_shared<ShardRuntime>(ShardRuntimeOptions{.num_shards = shards});
    ExecutionSession session = MakeSession(executor, g);
    const RunResult reference = session.Execute(gir, features);

    ScopedFaultClear clear;
    FaultInjector::Get().Arm(FaultSite::kShardWorker, /*after_n=*/0, /*count=*/1);
    RunResult recovered;
    ASSERT_NO_THROW(recovered = session.Execute(gir, features)) << "shards=" << shards;
    ExpectBitIdentical(reference, recovered,
                       "shards=" + std::to_string(shards) + " post-recovery");
  }
}

TEST(ShardRecoveryTest, PersistentFaultFallsBackToWholeGraphExactly) {
  // A fault that outlives the retry demotes the session to the whole-graph
  // interpreter — the same executor the CheckShardable fallback uses — so
  // the result must equal a plain full-graph run bit for bit.
  const Graph g = RandomGraph(90, 500, 0x96);
  const GirGraph gir = FaultProgram();
  const FeatureMap features = RandomVertexFeatures(g, 0x97);

  SeastarExecutor full;
  const RunResult expected = full.Run(gir, g, features);

  auto executor = std::make_shared<ShardRuntime>(ShardRuntimeOptions{.num_shards = 2});
  ExecutionSession session = MakeSession(executor, g);
  const RecoveryCounterHandles counters = RecoveryCounters();
  const int64_t retries_before = counters.retries->value();
  const int64_t fallbacks_before = counters.recovery_fallbacks->value();

  ScopedFaultClear clear;
  FaultInjector::Get().Arm(FaultSite::kShardWorker, /*after_n=*/0, /*count=*/1 << 20);
  RunResult recovered;
  ASSERT_NO_THROW(recovered = session.Execute(gir, features));
  EXPECT_EQ(counters.retries->value(), retries_before + 1);
  EXPECT_EQ(counters.recovery_fallbacks->value(), fallbacks_before + 1);
  ExpectBitIdentical(expected, recovered, "whole-graph fallback");

  // The fault is still armed, but the session keeps absorbing it (at most
  // one fallback run per Execute) — callers above never see the failure.
  ASSERT_NO_THROW(recovered = session.Execute(gir, features));
  ExpectBitIdentical(expected, recovered, "second fallback run");
}

TEST(ShardDeadlineTest, ExpiryMidExecutionAbortsWithoutRetryAndSessionStaysUsable) {
  // Deadline expiry is not a shard failure: it must surface as
  // DeadlineExceeded (the Server counts those expired, off the circuit
  // breaker), must not consume a retry or a fallback, and must leave the
  // session fully reusable. The simt_worker stalls make the interpreter run
  // of pass 2 slow enough that the clock deterministically runs out
  // mid-execution while pass 1's memcpys finish well inside the budget.
  const Graph g = RandomGraph(130, 900, 0x98);
  const GirGraph gir = FaultProgram();
  const FeatureMap features = RandomVertexFeatures(g, 0x99);

  auto executor = std::make_shared<ShardRuntime>(ShardRuntimeOptions{.num_shards = 2});
  ExecutionSession session = MakeSession(executor, g);
  const RunResult reference = session.Execute(gir, features);
  const RecoveryCounterHandles counters = RecoveryCounters();
  const int64_t retries_before = counters.retries->value();
  const int64_t fallbacks_before = counters.recovery_fallbacks->value();

  {
    ScopedFaultClear clear;
    // Every SIMT dispatch grant stalls 2ms >= the whole budget, so the first
    // unit boundary after any pass-2 kernel launch observes an expired
    // deadline (or, on a very slow host, a pass-entry check does — either
    // way the abort is kDeadlineExceeded, not a shard fault).
    FaultInjector::Get().ArmProbabilistic(FaultSite::kSimtWorker, 1.0);
    const Deadline deadline = Deadline::AfterMillis(2);
    ScopedDeadline scope(&deadline);
    EXPECT_THROW(session.Execute(gir, features), DeadlineExceeded);
  }

  EXPECT_EQ(counters.retries->value(), retries_before);
  EXPECT_EQ(counters.recovery_fallbacks->value(), fallbacks_before);
  ExpectBitIdentical(reference, session.Execute(gir, features), "post-deadline rerun");
}

// ---- Executor factory ----------------------------------------------------

TEST(ExecutorFactoryTest, ParsesSpecs) {
  EXPECT_EQ(ParseExecutorSpec("seastar")->kind, "seastar");
  EXPECT_EQ(ParseExecutorSpec("seastar-nofuse")->kind, "seastar-nofuse");
  EXPECT_EQ(ParseExecutorSpec("nofuse")->kind, "seastar-nofuse");
  EXPECT_EQ(ParseExecutorSpec("dgl")->kind, "dgl");
  EXPECT_EQ(ParseExecutorSpec("pyg")->kind, "pyg");
  StatusOr<ExecutorSpec> sharded = ParseExecutorSpec("sharded");
  ASSERT_TRUE(sharded.has_value());
  EXPECT_EQ(sharded->kind, "sharded");
  EXPECT_EQ(sharded->num_shards, 2);
  EXPECT_EQ(ParseExecutorSpec("sharded:4")->num_shards, 4);
  EXPECT_EQ(ParseExecutorSpec("sharded:1")->num_shards, 1);

  EXPECT_FALSE(ParseExecutorSpec("").has_value());
  EXPECT_FALSE(ParseExecutorSpec("tensorflow").has_value());
  EXPECT_FALSE(ParseExecutorSpec("sharded:0").has_value());
  EXPECT_FALSE(ParseExecutorSpec("sharded:-2").has_value());
  EXPECT_FALSE(ParseExecutorSpec("sharded:heaps").has_value());
  EXPECT_FALSE(ParseExecutorSpec("sharded:2000").has_value());
  EXPECT_FALSE(ParseExecutorSpec("seastar:2").has_value());
}

TEST(ExecutorFactoryTest, CreatesNamedExecutors) {
  EXPECT_STREQ((*ExecutorFactory::Create("seastar"))->name(), "seastar");
  EXPECT_STREQ((*ExecutorFactory::Create("seastar-nofuse"))->name(), "seastar-nofuse");
  EXPECT_STREQ((*ExecutorFactory::Create("dgl"))->name(), "dgl");
  EXPECT_STREQ((*ExecutorFactory::Create("pyg"))->name(), "pyg");

  StatusOr<std::unique_ptr<Executor>> sharded = ExecutorFactory::Create("sharded:3");
  ASSERT_TRUE(sharded.has_value());
  EXPECT_STREQ((*sharded)->name(), "sharded");
  const auto* runtime = dynamic_cast<const ShardRuntime*>(sharded->get());
  ASSERT_NE(runtime, nullptr);
  EXPECT_EQ(runtime->options().num_shards, 3);

  EXPECT_FALSE(ExecutorFactory::Create("cuda").has_value());
}

// ---- End-to-end training parity (the ISSUE acceptance bar) ---------------

Dataset SmallCora(double scale = 0.08) {
  DatasetOptions options;
  options.scale = scale;
  options.max_feature_dim = 32;
  return MakeDataset(*FindDataset("cora"), options);
}

float TrainGcnLoss(const Dataset& data, const char* spec) {
  GcnConfig config;
  Gcn model(data, config, std::move(*ExecutorFactory::Create(spec)));
  TrainConfig train;
  train.epochs = 3;
  train.warmup_epochs = 0;
  return TrainNodeClassification(model, data, train).final_loss;
}

TEST(ShardParityTest, GcnTrainingLossMatchesUnsharded) {
  Dataset data = SmallCora();
  const float reference = TrainGcnLoss(data, "seastar");
  for (const char* spec : {"sharded:1", "sharded:2", "sharded:4"}) {
    EXPECT_NEAR(TrainGcnLoss(data, spec), reference, 1e-5) << spec;
  }
}

float TrainGatLoss(const Dataset& data, const char* spec) {
  GatConfig config;
  config.num_heads = 2;
  config.hidden_dim = 4;
  Gat model(data, config, std::move(*ExecutorFactory::Create(spec)));
  TrainConfig train;
  train.epochs = 2;
  train.warmup_epochs = 0;
  return TrainNodeClassification(model, data, train).final_loss;
}

TEST(ShardParityTest, GatTrainingLossMatchesUnsharded) {
  Dataset data = SmallCora(0.06);
  const float reference = TrainGatLoss(data, "seastar");
  for (const char* spec : {"sharded:1", "sharded:2", "sharded:4"}) {
    EXPECT_NEAR(TrainGatLoss(data, spec), reference, 1e-5) << spec;
  }
}

}  // namespace
}  // namespace seastar
