// Failure-injection and boundary tests for the executors: degenerate graphs
// (empty, single vertex, no edges, pure self-loops, duplicate/multi edges),
// degenerate programs, and width extremes.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/exec/baseline_executor.h"
#include "src/exec/seastar_executor.h"
#include "src/gir/builder.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

GirGraph SumProgram(int32_t width) {
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", width)), "out");
  return b.TakeGraph();
}

void ExpectAllAgree(const GirGraph& gir, const Graph& g, const FeatureMap& features) {
  SeastarExecutor seastar;
  BaselineExecutor dgl({BaselineFlavor::kDglLike, true});
  BaselineExecutor pyg({BaselineFlavor::kPygLike, true});
  Tensor a = seastar.Run(gir, g, features).outputs.begin()->second;
  Tensor c = dgl.Run(gir, g, features).outputs.begin()->second;
  Tensor d = pyg.Run(gir, g, features).outputs.begin()->second;
  EXPECT_TRUE(a.AllClose(c, 1e-5f));
  EXPECT_TRUE(a.AllClose(d, 1e-5f));
}

TEST(ExecEdgeCaseTest, GraphWithNoEdges) {
  Graph g = Graph::FromCoo(5, {}, {});
  GirGraph gir = SumProgram(3);
  FeatureMap features;
  Rng rng(1);
  features.vertex["h"] = ops::RandomNormal({5, 3}, 0, 1, rng);
  SeastarExecutor ex;
  Tensor out = ex.Run(gir, g, features).outputs.at("out");
  EXPECT_TRUE(out.AllClose(Tensor::Zeros({5, 3}), 1e-6f));
  ExpectAllAgree(gir, g, features);
}

TEST(ExecEdgeCaseTest, SingleVertexSelfLoop) {
  Graph g = Graph::FromCoo(1, {0}, {0});
  GirGraph gir = SumProgram(2);
  FeatureMap features;
  features.vertex["h"] = Tensor({1, 2}, {3.0f, 4.0f});
  SeastarExecutor ex;
  Tensor out = ex.Run(gir, g, features).outputs.at("out");
  EXPECT_FLOAT_EQ(out.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 4.0f);
}

TEST(ExecEdgeCaseTest, DuplicateEdgesCountTwice) {
  // Multigraph semantics: each duplicate contributes to the aggregation.
  Graph g = Graph::FromCoo(2, {0, 0, 0}, {1, 1, 1});
  GirGraph gir = SumProgram(1);
  FeatureMap features;
  features.vertex["h"] = Tensor({2, 1}, {5.0f, 0.0f});
  SeastarExecutor ex;
  Tensor out = ex.Run(gir, g, features).outputs.at("out");
  EXPECT_FLOAT_EQ(out.at(1, 0), 15.0f);
  ExpectAllAgree(gir, g, features);
}

TEST(ExecEdgeCaseTest, WidthOneEverything) {
  Rng rng(2);
  CooEdges edges = ErdosRenyi(30, 120, rng);
  AddSelfLoops(edges);
  Graph g = ToGraph(std::move(edges));
  GirBuilder b;
  Value e = Exp(b.Src("x", 1) - b.Dst("y", 1));
  b.MarkOutput(AggSum(e / AggSum(e)), "out");
  FeatureMap features;
  features.vertex["x"] = ops::RandomNormal({30, 1}, 0, 1, rng);
  features.vertex["y"] = ops::RandomNormal({30, 1}, 0, 1, rng);
  ExpectAllAgree(b.graph(), g, features);
}

TEST(ExecEdgeCaseTest, WidthLargerThanBlockSize) {
  Rng rng(3);
  CooEdges edges = ErdosRenyi(12, 60, rng);
  Graph g = ToGraph(std::move(edges));
  GirGraph gir = SumProgram(600);  // Wider than the 256-lane block.
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({12, 600}, 0, 1, rng);
  ExpectAllAgree(gir, g, features);
}

TEST(ExecEdgeCaseTest, TinyBlockSizeStillCorrect) {
  Rng rng(4);
  CooEdges edges = Rmat(50, 400, rng);
  Graph g = ToGraph(std::move(edges));
  GirGraph gir = SumProgram(8);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({50, 8}, 0, 1, rng);
  SeastarExecutorOptions options;
  options.block_size = 4;  // Degenerate but legal.
  SeastarExecutor tiny(options);
  SeastarExecutor normal;
  Tensor a = tiny.Run(gir, g, features).outputs.at("out");
  Tensor c = normal.Run(gir, g, features).outputs.at("out");
  EXPECT_TRUE(a.AllClose(c, 1e-5f));
}

TEST(ExecEdgeCaseTest, OutputIsPlainLeafPassThrough) {
  // Program whose output depends only on a D-typed leaf through vertex ops.
  Graph g = Graph::FromCoo(4, {0, 1}, {1, 2});
  GirBuilder b;
  b.MarkOutput(Tanh(b.Dst("x", 3)), "out");
  FeatureMap features;
  Rng rng(5);
  features.vertex["x"] = ops::RandomNormal({4, 3}, 0, 1, rng);
  SeastarExecutor ex;
  Tensor out = ex.Run(b.graph(), g, features).outputs.at("out");
  EXPECT_TRUE(out.AllClose(ops::Tanh(features.vertex["x"]), 1e-5f));
}

TEST(ExecEdgeCaseTest, StarGraphExtremeSkew) {
  // One vertex holds every edge: worst-case load skew for vertex-parallel
  // execution; all strategies must still agree.
  Graph g = ToGraph(Star(500));
  GirBuilder b;
  Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
  b.MarkOutput(AggSum(e / AggSum(e) * b.Src("h", 4)), "out");
  Rng rng(6);
  FeatureMap features;
  features.vertex["eu"] = ops::RandomNormal({500, 1}, 0, 1, rng);
  features.vertex["ev"] = ops::RandomNormal({500, 1}, 0, 1, rng);
  features.vertex["h"] = ops::RandomNormal({500, 4}, 0, 1, rng);
  ExpectAllAgree(b.graph(), g, features);
}

TEST(ExecEdgeCaseTest, MultipleOutputsFromOneProgram) {
  Rng rng(7);
  CooEdges edges = ErdosRenyi(20, 100, rng);
  Graph g = ToGraph(std::move(edges));
  GirBuilder b;
  Value h = b.Src("h", 4);
  b.MarkOutput(AggSum(h), "sum");
  b.MarkOutput(AggMax(h), "max");
  b.MarkOutput(AggMean(h), "mean");
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({20, 4}, 0, 1, rng);
  SeastarExecutor ex;
  RunResult result = ex.Run(b.graph(), g, features);
  EXPECT_EQ(result.outputs.size(), 3u);
  // mean * deg == sum where deg > 0.
  const Tensor& sum = result.outputs.at("sum");
  const Tensor& mean = result.outputs.at("mean");
  for (int64_t v = 0; v < 20; ++v) {
    const int64_t deg = g.InDegree(static_cast<int32_t>(v));
    if (deg > 0) {
      EXPECT_NEAR(mean.at(v, 0) * static_cast<float>(deg), sum.at(v, 0), 1e-4);
    }
  }
}

TEST(ExecEdgeCaseTest, SelfLoopOnlyGraphIsIdentitySum) {
  CooEdges edges;
  edges.num_vertices = 6;
  AddSelfLoops(edges);
  Graph g = ToGraph(std::move(edges));
  GirGraph gir = SumProgram(2);
  Rng rng(8);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({6, 2}, 0, 1, rng);
  SeastarExecutor ex;
  Tensor out = ex.Run(gir, g, features).outputs.at("out");
  EXPECT_TRUE(out.AllClose(features.vertex["h"], 1e-6f));
}

}  // namespace
}  // namespace seastar
