// Semantic-preservation property tests: the optimization passes must never
// change a program's meaning. Random programs are executed before and after
// RunStandardPasses and compared; the kernel-launch accounting is also
// validated here.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/exec/baseline_executor.h"
#include "src/exec/kernel_counter.h"
#include "src/exec/seastar_executor.h"
#include "src/gir/builder.h"
#include "src/gir/passes.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

// A generator biased toward redundancy (repeated subexpressions, constants,
// algebraic identities) so the passes have real work to do.
GirGraph MakeRedundantProgram(uint64_t seed) {
  Rng rng(seed);
  GirBuilder b;
  std::vector<Value> pool{b.Src("x", 4), b.Src("y", 1), b.Dst("z", 4)};
  const int num_ops = 5 + static_cast<int>(rng.NextBounded(8));
  for (int i = 0; i < num_ops; ++i) {
    Value v = pool[rng.NextBounded(pool.size())];
    switch (rng.NextBounded(6)) {
      case 0:
        pool.push_back(v * 1.0f);  // Identity fodder.
        break;
      case 1:
        pool.push_back(v + 0.0f);
        break;
      case 2:
        pool.push_back(Tanh(v));
        break;
      case 3:
        pool.push_back(Tanh(v));  // Deliberate duplicate for CSE.
        break;
      case 4:
        pool.push_back(v * (2.0f * 0.5f));  // Constant folding fodder.
        break;
      case 5: {
        Value w = pool[rng.NextBounded(pool.size())];
        if (w.width() == v.width() || w.width() == 1 || v.width() == 1) {
          pool.push_back(v + w);
        } else {
          pool.push_back(LeakyRelu(v, 0.2f));
        }
        break;
      }
    }
  }
  // Guarantee at least one foldable node so the shrink property is strict.
  Value out = pool.back() * 1.0f;
  if (out.type() != GraphType::kDst) {
    out = AggSum(out, AggTo::kDst);
  }
  b.MarkOutput(out, "out");
  return b.TakeGraph();
}

class PassEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PassEquivalenceTest, OptimizedProgramComputesSameValues) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  GirGraph original = MakeRedundantProgram(seed);
  PassResult optimized = RunStandardPasses(original);
  EXPECT_LE(optimized.graph.num_nodes(), original.num_nodes());

  Rng rng(seed ^ 0xabc);
  CooEdges edges = ErdosRenyi(25, 120, rng);
  AddSelfLoops(edges);
  Graph g = ToGraph(std::move(edges));
  FeatureMap features;
  features.vertex["x"] = ops::RandomNormal({25, 4}, 0, 1, rng);
  features.vertex["y"] = ops::RandomNormal({25, 1}, 0, 1, rng);
  features.vertex["z"] = ops::RandomNormal({25, 4}, 0, 1, rng);

  SeastarExecutor ex;
  Tensor before = ex.Run(original, g, features).outputs.at("out");
  Tensor after = ex.Run(optimized.graph, g, features).outputs.at("out");
  EXPECT_TRUE(before.AllClose(after, 1e-5f)) << "seed " << seed;
}

TEST_P(PassEquivalenceTest, PassesShrinkRedundantPrograms) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  GirGraph original = MakeRedundantProgram(seed);
  PassResult optimized = RunStandardPasses(original);
  // The generator always injects at least one foldable/dedupable node.
  EXPECT_LT(optimized.graph.num_nodes(), original.num_nodes()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassEquivalenceTest, ::testing::Range(100, 112));

TEST(KernelCounterTest, SeastarCountsUnitsBaselineCountsOperators) {
  Rng rng(1);
  CooEdges edges = ErdosRenyi(30, 150, rng);
  AddSelfLoops(edges);
  Graph g = ToGraph(std::move(edges));
  GirBuilder b;
  Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
  b.MarkOutput(AggSum(e / AggSum(e) * b.Src("h", 4)), "out");
  FeatureMap features;
  features.vertex["eu"] = ops::RandomNormal({30, 1}, 0, 1, rng);
  features.vertex["ev"] = ops::RandomNormal({30, 1}, 0, 1, rng);
  features.vertex["h"] = ops::RandomNormal({30, 4}, 0, 1, rng);

  SeastarExecutor seastar;
  ResetKernelLaunchCount();
  seastar.Run(b.graph(), g, features);
  EXPECT_EQ(KernelLaunchCount(), 2);  // The two fused GAT units.

  BaselineExecutor dgl({BaselineFlavor::kDglLike, true});
  ResetKernelLaunchCount();
  dgl.Run(b.graph(), g, features);
  // 7 operators, minus the BinaryReduce-fused Mul: 6 kernels.
  EXPECT_EQ(KernelLaunchCount(), 6);

  BaselineExecutor pyg({BaselineFlavor::kPygLike, true});
  ResetKernelLaunchCount();
  pyg.Run(b.graph(), g, features);
  // PyG: 7 operator kernels + gathers (eu, ev, h, and sum re-read per edge).
  EXPECT_GT(KernelLaunchCount(), 7);
}

}  // namespace
}  // namespace seastar
