#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/parallel/channel.h"
#include "src/parallel/simt.h"
#include "src/parallel/thread_pool.h"

namespace seastar {
namespace {

TEST(ThreadPoolTest, RunOnAllWorkersCoversEveryWorker) {
  ThreadPool& pool = ThreadPool::Get();
  std::mutex mutex;
  std::set<int> workers;
  pool.RunOnAllWorkers([&](int worker) {
    std::lock_guard<std::mutex> lock(mutex);
    workers.insert(worker);
  });
  EXPECT_EQ(static_cast<int>(workers.size()), pool.num_threads() + 1);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool& pool = ThreadPool::Get();
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.RunOnAllWorkers([&](int) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), pool.num_threads() + 1);
  }
}

TEST(ThreadPoolTest, WorkerExceptionIsRethrownOnTheSubmittingThread) {
  ThreadPool& pool = ThreadPool::Get();
  // Every worker (and the caller) throws; exactly one exception — the first
  // recorded — must surface on the submitting thread, after the block fully
  // drained (no worker still running the dead block's fn).
  std::atomic<int> entered{0};
  bool caught = false;
  try {
    pool.RunOnAllWorkers([&](int worker) {
      entered.fetch_add(1);
      throw std::runtime_error("worker " + std::to_string(worker) + " failed");
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_NE(std::string(e.what()).find("failed"), std::string::npos);
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(entered.load(), pool.num_threads() + 1);

  // The pool stays fully usable: the next block runs on every worker and no
  // stale exception leaks into it.
  std::atomic<int> count{0};
  pool.RunOnAllWorkers([&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), pool.num_threads() + 1);
}

TEST(ThreadPoolTest, SingleWorkerExceptionDoesNotLoseOtherWork) {
  ThreadPool& pool = ThreadPool::Get();
  std::atomic<int> completed{0};
  bool caught = false;
  try {
    pool.RunOnAllWorkers([&](int worker) {
      if (worker == 0) {
        throw std::logic_error("only worker 0 fails");
      }
      completed.fetch_add(1);
    });
  } catch (const std::logic_error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
  // All other lanes ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), pool.num_threads());
}

TEST(ParallelForTest, SumsMatchSerial) {
  const int64_t n = 1 << 20;
  std::vector<int32_t> data(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    data[static_cast<size_t>(i)] = static_cast<int32_t>(i % 7);
  }
  std::atomic<int64_t> total{0};
  ParallelFor(n, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) {
      local += data[static_cast<size_t>(i)];
    }
    total.fetch_add(local);
  });
  int64_t expected = 0;
  for (int64_t i = 0; i < n; ++i) {
    expected += i % 7;
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const int64_t n = 100003;
  std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
  for (auto& h : hits) {
    h.store(0);
  }
  ParallelFor(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  int calls = 0;
  ParallelFor(0, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int64_t> sum{0};
  ParallelFor(3, [&](int64_t begin, int64_t end) { sum.fetch_add(end - begin); });
  EXPECT_EQ(sum.load(), 3);
}

class LaunchBlocksTest : public ::testing::TestWithParam<BlockSchedule> {};

TEST_P(LaunchBlocksTest, EveryBlockRunsExactlyOnce) {
  const int64_t num_blocks = 4097;
  std::vector<std::atomic<int>> hits(static_cast<size_t>(num_blocks));
  for (auto& h : hits) {
    h.store(0);
  }
  SimtLaunchParams params;
  params.num_blocks = num_blocks;
  params.schedule = GetParam();
  LaunchBlocks(params, [&](int64_t block, int) {
    hits[static_cast<size_t>(block)].fetch_add(1);
  });
  for (int64_t b = 0; b < num_blocks; ++b) {
    ASSERT_EQ(hits[static_cast<size_t>(b)].load(), 1) << "block " << b;
  }
}

TEST_P(LaunchBlocksTest, WorkerIndicesValid) {
  SimtLaunchParams params;
  params.num_blocks = 100;
  params.schedule = GetParam();
  const int participants = ThreadPool::Get().num_threads() + 1;
  std::atomic<bool> ok{true};
  LaunchBlocks(params, [&](int64_t, int worker) {
    if (worker < 0 || worker >= participants) {
      ok.store(false);
    }
  });
  EXPECT_TRUE(ok.load());
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, LaunchBlocksTest,
                         ::testing::Values(BlockSchedule::kStatic,
                                           BlockSchedule::kAtomicPerBlock,
                                           BlockSchedule::kChunkedDynamic),
                         [](const ::testing::TestParamInfo<BlockSchedule>& info) {
                           return BlockScheduleName(info.param);
                         });

TEST(LaunchBlocksTest, ZeroBlocksIsNoop) {
  SimtLaunchParams params;
  params.num_blocks = 0;
  int calls = 0;
  LaunchBlocks(params, [&](int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(LaunchBlocksTest, DynamicDispatchIsRoughlyInOrderPerWorker) {
  // Under chunked dynamic dispatch each worker must observe strictly
  // increasing block ids (the paper's block-id/schedule-time correlation).
  SimtLaunchParams params;
  params.num_blocks = 10000;
  params.schedule = BlockSchedule::kChunkedDynamic;
  const int participants = ThreadPool::Get().num_threads() + 1;
  std::vector<int64_t> last_seen(static_cast<size_t>(participants), -1);
  std::atomic<bool> monotonic{true};
  LaunchBlocks(params, [&](int64_t block, int worker) {
    if (block <= last_seen[static_cast<size_t>(worker)]) {
      monotonic.store(false);
    }
    last_seen[static_cast<size_t>(worker)] = block;
  });
  EXPECT_TRUE(monotonic.load());
}

TEST(FatGeometryTest, GroupSizeIsLargestPowerOfTwoAtMostFeatureDim) {
  struct Case {
    int64_t feature_dim;
    int expected_group;
  };
  for (const auto& c : std::vector<Case>{{1, 1}, {2, 2}, {3, 2}, {16, 16}, {17, 16},
                                         {255, 128}, {256, 256}, {602, 256}, {10000, 256}}) {
    const FatGeometry g = FatGeometry::Compute(1000, c.feature_dim, 256);
    EXPECT_EQ(g.group_size, c.expected_group) << "D=" << c.feature_dim;
    EXPECT_EQ(g.groups_per_block, 256 / c.expected_group);
  }
}

TEST(FatGeometryTest, BlockCountCoversAllItems) {
  const FatGeometry g = FatGeometry::Compute(1000, 16, 256);
  EXPECT_EQ(g.groups_per_block, 16);
  EXPECT_EQ(g.num_blocks, (1000 + 15) / 16);
  EXPECT_EQ(g.FirstItemOfBlock(2), 32);
}

TEST(FatGeometryTest, PaperExample) {
  // §6.3.3: feature dim 16, block size 128 => 8 vertices per block.
  const FatGeometry g = FatGeometry::Compute(80, 16, 128);
  EXPECT_EQ(g.group_size, 16);
  EXPECT_EQ(g.groups_per_block, 8);
  EXPECT_EQ(g.num_blocks, 10);
}

TEST(FatGeometryTest, OneItemPerBlock) {
  const FatGeometry g = FatGeometry::OneItemPerBlock(42, 256);
  EXPECT_EQ(g.groups_per_block, 1);
  EXPECT_EQ(g.group_size, 256);
  EXPECT_EQ(g.num_blocks, 42);
}

// ---- BoundedChannel ------------------------------------------------------

TEST(BoundedChannelTest, PushPopRoundTripAndCloseDrains) {
  BoundedChannel<int> channel(2);
  EXPECT_TRUE(channel.Push(1));
  EXPECT_TRUE(channel.Push(2));
  EXPECT_FALSE(channel.closed());
  EXPECT_TRUE(channel.Close());
  EXPECT_TRUE(channel.closed());
  // Queued messages stay poppable after Close; new pushes are refused.
  EXPECT_FALSE(channel.Push(3));
  EXPECT_EQ(channel.Pop(), std::optional<int>(1));
  EXPECT_EQ(channel.Pop(), std::optional<int>(2));
  EXPECT_FALSE(channel.Pop().has_value());
}

TEST(BoundedChannelTest, CloseIsIdempotent) {
  BoundedChannel<int> channel(1);
  EXPECT_TRUE(channel.Close());
  EXPECT_FALSE(channel.Close());  // Only the transitioning call reports it.
  EXPECT_FALSE(channel.Close());
  EXPECT_FALSE(channel.Pop().has_value());
}

TEST(BoundedChannelTest, CloseReleasesBlockedPushers) {
  BoundedChannel<int> channel(1);
  ASSERT_TRUE(channel.Push(0));  // Fill to capacity; the next Push blocks.
  std::atomic<bool> released{false};
  std::thread pusher([&] {
    EXPECT_FALSE(channel.Push(1));  // Must return false once closed.
    released.store(true);
  });
  channel.Close();
  pusher.join();
  EXPECT_TRUE(released.load());
}

TEST(BoundedChannelTest, CloseRacesWithPushPopAndConcurrentClose) {
  // The shard runtime's cancellation path has every failing worker close
  // every channel while peers are mid-Push/Pop, so double-close under
  // contention is the *common* case there. Exactly one Close call may
  // report the transition, nothing may deadlock, and every message either
  // pops exactly once or is refused at Push. (Runs under TSan in CI: this
  // is the dedicated race check for Close.)
  constexpr int kProducers = 4;
  constexpr int kClosers = 3;
  constexpr int kPerProducer = 200;
  BoundedChannel<int> channel(4);
  std::atomic<int> pushed{0};
  std::atomic<int> first_closes{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kClosers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!channel.Push(i)) {
          return;  // Closed under us — expected mid-run.
        }
        pushed.fetch_add(1);
      }
    });
  }
  for (int c = 0; c < kClosers; ++c) {
    threads.emplace_back([&] {
      if (channel.Close()) {
        first_closes.fetch_add(1);
      }
    });
  }
  // Single consumer (the channel is MPSC): drain until closed-and-empty.
  int popped = 0;
  while (channel.Pop().has_value()) {
    ++popped;
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // A producer may have slipped a message in between our final Pop and its
  // own Close observation; drain the leftovers now that everyone joined.
  while (channel.Pop().has_value()) {
    ++popped;
  }
  EXPECT_EQ(first_closes.load(), 1);
  EXPECT_EQ(popped, pushed.load());
  EXPECT_TRUE(channel.closed());
  EXPECT_FALSE(channel.Push(-1));
  EXPECT_FALSE(channel.Pop().has_value());
}

}  // namespace
}  // namespace seastar
