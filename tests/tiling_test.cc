// Tests for the cache-blocked tiled aggregation path (src/exec/tiling.h):
// tile-plan geometry invariants, bit-exact tiled-vs-untiled training parity
// for GCN / GAT / GraphSAGE on the full-graph and sharded executors, and
// the dense-GEMM panel-tail regression cases (feature dims that are not a
// multiple of the 16-wide micro-kernel panel).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "src/common/rng.h"
#include "src/core/executor_factory.h"
#include "src/core/models/gat.h"
#include "src/core/models/gcn.h"
#include "src/core/models/sage.h"
#include "src/core/train.h"
#include "src/exec/seastar_executor.h"
#include "src/exec/tiling.h"
#include "src/gir/builder.h"
#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

// Restores the process-wide tiling flag on scope exit so a failing test
// cannot leak a disabled tiled path into the rest of the suite.
class TilingFlagGuard {
 public:
  TilingFlagGuard() : saved_(TilingEnabled()) {}
  ~TilingFlagGuard() { SetTilingEnabled(saved_); }

 private:
  bool saved_;
};

std::vector<int64_t> OffsetsFromDegrees(const std::vector<int64_t>& degrees) {
  std::vector<int64_t> offsets(degrees.size() + 1, 0);
  std::partial_sum(degrees.begin(), degrees.end(), offsets.begin() + 1);
  return offsets;
}

// ---- Tile-plan geometry -------------------------------------------------------------------------

TEST(TilePlanTest, BoundsPartitionAllPositions) {
  std::vector<int64_t> degrees(1000);
  Rng rng(5);
  for (int64_t& d : degrees) {
    d = static_cast<int64_t>(rng.NextBounded(40));
  }
  const std::vector<int64_t> offsets = OffsetsFromDegrees(degrees);
  const TilePlan plan = ComputeTilePlan(offsets, 1000, 32, 4);
  ASSERT_GE(plan.num_segments(), 1);
  EXPECT_EQ(plan.bounds.front(), 0);
  EXPECT_EQ(plan.bounds.back(), 1000);
  for (size_t s = 1; s < plan.bounds.size(); ++s) {
    EXPECT_LT(plan.bounds[s - 1], plan.bounds[s]) << "empty or reversed segment " << s;
  }
  EXPECT_EQ(plan.tile_width, 32);
  EXPECT_EQ(plan.num_tiles, 1);
}

TEST(TilePlanTest, EmptyGraphYieldsSingleEmptySegmentRange) {
  const TilePlan plan = ComputeTilePlan({0}, 0, 16, 4);
  EXPECT_EQ(plan.bounds.front(), 0);
  EXPECT_EQ(plan.bounds.back(), 0);
}

TEST(TilePlanTest, WideFeaturesSplitIntoTiles) {
  std::vector<int64_t> degrees(100, 10);
  const std::vector<int64_t> offsets = OffsetsFromDegrees(degrees);
  TilePlanOptions options;
  const TilePlan plan = ComputeTilePlan(offsets, 100, options.max_tile_width * 4, 1, options);
  EXPECT_EQ(plan.tile_width, options.max_tile_width);
  EXPECT_EQ(plan.num_tiles, 4);
  // Non-multiple widths round the last tile down, never up.
  const TilePlan ragged = ComputeTilePlan(offsets, 100, options.max_tile_width * 2 + 7, 1, options);
  EXPECT_EQ(ragged.tile_width, options.max_tile_width);
  EXPECT_EQ(ragged.num_tiles, 3);
}

TEST(TilePlanTest, HubVertexFormsSingletonSegment) {
  // One vertex whose working set alone exceeds the L2 budget must still get
  // a (correct) segment of its own rather than stalling the packer.
  TilePlanOptions options;
  options.l2_budget_bytes = 1024;
  std::vector<int64_t> degrees = {2, 100000, 3, 1};
  const std::vector<int64_t> offsets = OffsetsFromDegrees(degrees);
  const TilePlan plan = ComputeTilePlan(offsets, 4, 64, 1, options);
  EXPECT_EQ(plan.bounds.front(), 0);
  EXPECT_EQ(plan.bounds.back(), 4);
  bool hub_is_singleton = false;
  for (size_t s = 1; s < plan.bounds.size(); ++s) {
    if (plan.bounds[s - 1] <= 1 && 1 < plan.bounds[s]) {
      hub_is_singleton = plan.bounds[s] - plan.bounds[s - 1] == 1;
    }
  }
  EXPECT_TRUE(hub_is_singleton);
}

TEST(TilePlanTest, SegmentEdgeBudgetRespectedForNonSingletons) {
  std::vector<int64_t> degrees(512, 64);
  const std::vector<int64_t> offsets = OffsetsFromDegrees(degrees);
  TilePlanOptions options;
  options.l2_budget_bytes = 64 * 1024;
  const TilePlan plan = ComputeTilePlan(offsets, 512, 64, 1, options);
  const int64_t edge_budget = options.l2_budget_bytes / (plan.tile_width * 4);
  for (size_t s = 1; s < plan.bounds.size(); ++s) {
    const int64_t seg_edges = offsets[plan.bounds[s]] - offsets[plan.bounds[s - 1]];
    const int64_t seg_vertices = plan.bounds[s] - plan.bounds[s - 1];
    if (seg_vertices > 1) {
      EXPECT_LE(seg_edges, edge_budget) << "segment " << s;
    }
  }
}

// ---- Tiled-vs-untiled training parity -----------------------------------------------------------
// The tiled and untiled edge loops share the runtime-dispatched SIMD row
// kernels and columns are independent, so re-partitioning the loops must not
// change one bit of any forward value or gradient. Training a model for a
// few epochs and comparing the final loss with EXPECT_EQ (not NEAR) checks
// the whole forward+backward pipeline end to end.

Dataset SmallCora(double scale = 0.08) {
  DatasetOptions options;
  options.scale = scale;
  options.max_feature_dim = 32;
  return MakeDataset(*FindDataset("cora"), options);
}

template <typename Model, typename Config>
float TrainLoss(const Dataset& data, const Config& config, const char* spec, bool tiled) {
  SetTilingEnabled(tiled);
  Model model(data, config, std::move(*ExecutorFactory::Create(spec)));
  TrainConfig train;
  train.epochs = 3;
  train.warmup_epochs = 0;
  return TrainNodeClassification(model, data, train).final_loss;
}

TEST(TilingParityTest, GcnLossBitIdenticalTiledVsUntiled) {
  TilingFlagGuard guard;
  Dataset data = SmallCora();
  GcnConfig config;
  for (const char* spec : {"seastar", "sharded:4"}) {
    const float untiled = TrainLoss<Gcn>(data, config, spec, false);
    const float tiled = TrainLoss<Gcn>(data, config, spec, true);
    EXPECT_EQ(untiled, tiled) << spec;
  }
}

TEST(TilingParityTest, GatLossBitIdenticalTiledVsUntiled) {
  TilingFlagGuard guard;
  Dataset data = SmallCora(0.06);
  GatConfig config;
  config.num_heads = 2;
  config.hidden_dim = 4;
  for (const char* spec : {"seastar", "sharded:4"}) {
    const float untiled = TrainLoss<Gat>(data, config, spec, false);
    const float tiled = TrainLoss<Gat>(data, config, spec, true);
    EXPECT_EQ(untiled, tiled) << spec;
  }
}

TEST(TilingParityTest, SageLossBitIdenticalTiledVsUntiled) {
  TilingFlagGuard guard;
  Dataset data = SmallCora();
  SageConfig config;
  config.hidden_dim = 8;
  for (const char* spec : {"seastar", "sharded:4"}) {
    const float untiled = TrainLoss<Sage>(data, config, spec, false);
    const float tiled = TrainLoss<Sage>(data, config, spec, true);
    EXPECT_EQ(untiled, tiled) << spec;
  }
}

// A synthetic wide-feature program that actually exercises multi-tile
// feature passes (cora-scale models stay below the single-tile cap).
TEST(TilingParityTest, WideFeatureForwardBitIdenticalTiledVsUntiled) {
  TilingFlagGuard guard;
  Rng rng(17);
  Graph graph = ToGraph(Rmat(500, 4000, rng));
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 320)), "out");
  GirGraph gir = b.TakeGraph();
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({graph.num_vertices(), 320}, 0, 1, rng);
  SeastarExecutor executor;
  SetTilingEnabled(false);
  Tensor untiled = executor.Run(gir, graph, features).outputs.at("out");
  SetTilingEnabled(true);
  Tensor tiled = executor.Run(gir, graph, features).outputs.at("out");
  ASSERT_EQ(tiled.numel(), untiled.numel());
  for (int64_t i = 0; i < tiled.numel(); ++i) {
    ASSERT_EQ(tiled.data()[i], untiled.data()[i]) << "element " << i;
  }
}

// ---- Dense-GEMM panel tails ---------------------------------------------------------------------
// GemmRowMajor covers full 16-column panels with the dispatched micro-
// kernels and the remainder with a narrowing register-blocked cascade.
// Feature dims that are not a multiple of 16 (7, 33, 257) must still match
// a plain reference matmul on every element, including the final columns.

Tensor ReferenceMatmul(const Tensor& a, const Tensor& b) {
  const int64_t n = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t m = b.dim(1);
  Tensor out = Tensor::Zeros({n, m});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a.data()[i * k + kk];
      for (int64_t j = 0; j < m; ++j) {
        out.data()[i * m + j] += av * b.data()[kk * m + j];
      }
    }
  }
  return out;
}

TEST(GemmTailTest, NonMultipleOf16ColumnCountsMatchReference) {
  Rng rng(23);
  for (const int64_t m : {int64_t{7}, int64_t{33}, int64_t{257}}) {
    const int64_t n = 37;
    const int64_t k = 51;
    Tensor a = ops::RandomNormal({n, k}, 0, 1, rng);
    Tensor b = ops::RandomNormal({k, m}, 0, 1, rng);
    Tensor got = ops::Matmul(a, b);
    Tensor want = ReferenceMatmul(a, b);
    ASSERT_EQ(got.numel(), want.numel());
    for (int64_t i = 0; i < got.numel(); ++i) {
      // FMA contraction in the dispatched kernels rounds differently from
      // the reference's separate mul+add; bound the drift, don't expect
      // bit equality across *different* algorithms.
      ASSERT_NEAR(got.data()[i], want.data()[i], 1e-4f * static_cast<float>(k))
          << "m=" << m << " element " << i;
    }
  }
}

TEST(GemmTailTest, TransposeBTailsMatchReference) {
  Rng rng(29);
  for (const int64_t m : {int64_t{7}, int64_t{33}, int64_t{257}}) {
    const int64_t n = 21;
    const int64_t k = 19;
    Tensor a = ops::RandomNormal({n, k}, 0, 1, rng);
    Tensor b = ops::RandomNormal({m, k}, 0, 1, rng);
    Tensor got = ops::MatmulTransposeB(a, b);
    Tensor bt = ops::Transpose(b);
    Tensor want = ReferenceMatmul(a, bt);
    for (int64_t i = 0; i < got.numel(); ++i) {
      ASSERT_NEAR(got.data()[i], want.data()[i], 1e-4f * static_cast<float>(k))
          << "m=" << m << " element " << i;
    }
  }
}

}  // namespace
}  // namespace seastar
