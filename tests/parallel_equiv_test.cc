// Parallel-vs-serial exactness tests. The pointwise, softmax, and optimizer
// loops run chunked on the thread pool above a grain threshold and inline
// below it; both paths execute the same per-element code, so results must be
// bitwise identical regardless of how the work was split. These tests pin
// that invariant by computing each op once over a large (parallel) extent and
// once as many small (serial) pieces through the same public API.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/core/nn.h"
#include "src/tensor/autograd.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace seastar {
namespace {

// Above every grain threshold in ops.cc / nn.cc (32768 and 16384).
constexpr int64_t kBig = 3 * 32768 + 12345;
// Below every threshold: a piece this small always runs inline.
constexpr int64_t kPiece = 8192;

Tensor Slice1d(const Tensor& t, int64_t begin, int64_t end) {
  Tensor out({end - begin});
  std::memcpy(out.data(), t.data() + begin, static_cast<size_t>(end - begin) * sizeof(float));
  return out;
}

void ExpectBitwiseEqual(const float* a, const float* b, int64_t n) {
  ASSERT_EQ(std::memcmp(a, b, static_cast<size_t>(n) * sizeof(float)), 0);
}

TEST(ParallelEquivTest, ElementwiseChunkingIsBitwiseExact) {
  Rng rng(17);
  Tensor a = ops::RandomNormal({kBig}, 0.0f, 1.0f, rng);
  Tensor b = ops::RandomUniform({kBig}, 0.5f, 1.5f, rng);

  const Tensor mul = ops::Mul(a, b);
  const Tensor div = ops::Div(a, b);
  for (int64_t begin = 0; begin < kBig; begin += kPiece) {
    const int64_t end = std::min(begin + kPiece, kBig);
    Tensor pa = Slice1d(a, begin, end);
    Tensor pb = Slice1d(b, begin, end);
    ExpectBitwiseEqual(ops::Mul(pa, pb).data(), mul.data() + begin, end - begin);
    ExpectBitwiseEqual(ops::Div(pa, pb).data(), div.data() + begin, end - begin);
  }
}

TEST(ParallelEquivTest, SoftmaxRowChunkingIsBitwiseExact) {
  // 4000 x 16 runs row-parallel; 4-row slices run inline.
  const int64_t rows = 4000, cols = 16, block = 4;
  Rng rng(19);
  Tensor x = ops::RandomNormal({rows, cols}, 0.0f, 2.0f, rng);

  const Tensor softmax = ops::Softmax(x);
  const Tensor log_softmax = ops::LogSoftmax(x);
  for (int64_t r = 0; r < rows; r += block) {
    Tensor part = ops::SliceRows(x, r, r + block);
    ExpectBitwiseEqual(ops::Softmax(part).data(), softmax.Row(r), block * cols);
    ExpectBitwiseEqual(ops::LogSoftmax(part).data(), log_softmax.Row(r), block * cols);
  }
}

// One requires-grad leaf of `n` elements with pinned values and gradients.
Var MakeParam(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Var param = Var::Leaf(ops::RandomNormal({n}, 0.0f, 1.0f, rng), /*requires_grad=*/true);
  param.node()->AccumulateGrad(ops::RandomNormal({n}, 0.0f, 0.1f, rng));
  return param;
}

// The same data as MakeParam(n, seed) but split into kPiece-sized leaves, so
// the optimizer's update loop takes the inline path for every piece.
std::vector<Var> MakeParamPieces(const Var& whole) {
  std::vector<Var> pieces;
  const int64_t n = whole.value().numel();
  for (int64_t begin = 0; begin < n; begin += kPiece) {
    const int64_t end = std::min(begin + kPiece, n);
    Var piece = Var::Leaf(Slice1d(whole.value(), begin, end), /*requires_grad=*/true);
    piece.node()->AccumulateGrad(Slice1d(whole.grad(), begin, end));
    pieces.push_back(piece);
  }
  return pieces;
}

void ExpectPiecesMatchWhole(const std::vector<Var>& pieces, const Var& whole) {
  int64_t offset = 0;
  for (const Var& piece : pieces) {
    const int64_t n = piece.value().numel();
    ExpectBitwiseEqual(piece.value().data(), whole.value().data() + offset, n);
    offset += n;
  }
  ASSERT_EQ(offset, whole.value().numel());
}

TEST(ParallelEquivTest, AdamStepChunkingIsBitwiseExact) {
  Var whole = MakeParam(kBig, 23);
  std::vector<Var> pieces = MakeParamPieces(whole);

  Adam big({whole}, 0.01f);
  Adam small(pieces, 0.01f);
  // Several steps so the moment estimates, not just the first update, agree.
  for (int step = 0; step < 3; ++step) {
    big.Step();
    small.Step();
  }
  ExpectPiecesMatchWhole(pieces, whole);
}

TEST(ParallelEquivTest, SgdStepChunkingIsBitwiseExact) {
  Var whole = MakeParam(kBig, 29);
  std::vector<Var> pieces = MakeParamPieces(whole);

  Sgd big({whole}, 0.05f);
  Sgd small(pieces, 0.05f);
  for (int step = 0; step < 3; ++step) {
    big.Step();
    small.Step();
  }
  ExpectPiecesMatchWhole(pieces, whole);
}

}  // namespace
}  // namespace seastar
