#include <gtest/gtest.h>

#include <set>

#include "src/gir/autodiff.h"
#include "src/gir/builder.h"
#include "src/gir/fusion.h"
#include "src/gir/passes.h"

namespace seastar {
namespace {

GirBuilder BuildGat(int32_t width = 4) {
  GirBuilder b;
  Value eu = b.Src("eu", 1);
  Value ev = b.Dst("ev", 1);
  Value e = Exp(LeakyRelu(eu + ev, 0.2f));
  Value s = AggSum(e);
  Value a = e / s;
  Value out = AggSum(a * b.Src("h", width));
  b.MarkOutput(out, "out");
  return b;
}

int UnitIndexOfKind(const GirGraph& g, const ExecutionPlan& plan, OpKind kind, int nth = 0) {
  int seen = 0;
  for (const Node& node : g.nodes()) {
    if (node.kind == kind) {
      if (seen == nth) {
        return plan.unit_of[static_cast<size_t>(node.id)];
      }
      ++seen;
    }
  }
  return -2;
}

TEST(FusionTest, GatForwardFormsExactlyTwoUnits) {
  // Paper §6.2: {Add, LeakyRelu, Exp, AggSum} fuse; Div restarts the FSM and
  // {Div, Mul, AggSum} form the second unit.
  GirBuilder b = BuildGat();
  ExecutionPlan plan = BuildExecutionPlan(b.graph());
  ASSERT_EQ(plan.units.size(), 2u);

  const GirGraph& g = b.graph();
  const int unit_add = UnitIndexOfKind(g, plan, OpKind::kAdd);
  const int unit_lrelu = UnitIndexOfKind(g, plan, OpKind::kLeakyRelu);
  const int unit_exp = UnitIndexOfKind(g, plan, OpKind::kExp);
  const int unit_agg0 = UnitIndexOfKind(g, plan, OpKind::kAggSum, 0);
  const int unit_div = UnitIndexOfKind(g, plan, OpKind::kDiv);
  const int unit_mul = UnitIndexOfKind(g, plan, OpKind::kMul);
  const int unit_agg1 = UnitIndexOfKind(g, plan, OpKind::kAggSum, 1);

  EXPECT_EQ(unit_add, unit_lrelu);
  EXPECT_EQ(unit_add, unit_exp);
  EXPECT_EQ(unit_add, unit_agg0);
  EXPECT_NE(unit_div, unit_add);  // FSM restarted at Div.
  EXPECT_EQ(unit_div, unit_mul);
  EXPECT_EQ(unit_div, unit_agg1);
}

TEST(FusionTest, GatMaterializesOnlyCrossingValues) {
  GirBuilder b = BuildGat();
  const GirGraph& g = b.graph();
  ExecutionPlan plan = BuildExecutionPlan(g);
  // Crossing values: Exp (consumed by Div in unit 1), the first AggSum
  // (consumed by Div), and the output. Add/LeakyRelu/Div/Mul stay in
  // registers.
  for (const Node& node : g.nodes()) {
    if (IsLeaf(node.kind)) {
      continue;
    }
    const bool mat = plan.materialized[static_cast<size_t>(node.id)];
    switch (node.kind) {
      case OpKind::kExp:
        EXPECT_TRUE(mat);
        break;
      case OpKind::kAggSum:
        EXPECT_TRUE(mat);  // First crosses units; second is the output.
        break;
      case OpKind::kAdd:
      case OpKind::kLeakyRelu:
      case OpKind::kDiv:
      case OpKind::kMul:
        EXPECT_FALSE(mat) << OpKindName(node.kind);
        break;
      default:
        break;
    }
  }
}

TEST(FusionTest, GcnFusesIntoSingleUnit) {
  // GCN: AggSum(u.h * u.norm) — one S-E chain plus aggregation = one kernel.
  GirBuilder b;
  Value h = b.Src("h", 8);
  Value norm = b.Src("norm", 1);
  b.MarkOutput(AggSum(h * norm), "out");
  ExecutionPlan plan = BuildExecutionPlan(b.graph());
  EXPECT_EQ(plan.units.size(), 1u);
  EXPECT_TRUE(plan.units[0].has_aggregation);
  EXPECT_EQ(plan.units[0].orientation, GraphType::kDst);
}

TEST(FusionTest, PostAggregationVertexOpsFuse) {
  // State 2 self-loop on D: ops after the aggregation stay in the unit.
  GirBuilder b;
  Value h = b.Src("h", 4);
  Value s = AggSum(h);
  Value y = Tanh(s * 2.0f);
  b.MarkOutput(y, "out");
  ExecutionPlan plan = BuildExecutionPlan(b.graph());
  EXPECT_EQ(plan.units.size(), 1u);
  // Tanh and Mul are post-stage.
  for (const Node& node : b.graph().nodes()) {
    if (node.kind == OpKind::kTanh || node.kind == OpKind::kMul) {
      EXPECT_EQ(plan.stage[static_cast<size_t>(node.id)], NodeStage::kPost);
    }
  }
}

TEST(FusionTest, EdgeOpAfterAggregationRestartsFsm) {
  // E-type op consuming an aggregation result cannot fuse (state 2 has no E
  // transition).
  GirBuilder b;
  Value h = b.Src("h", 4);
  Value s = AggSum(h);            // D
  Value e = s * b.Src("h2", 4);   // E (mixes D and S)
  b.MarkOutput(AggSum(e), "out");
  ExecutionPlan plan = BuildExecutionPlan(b.graph());
  EXPECT_EQ(plan.units.size(), 2u);
}

TEST(FusionTest, MixedOrientationAggregationsDoNotFuse) {
  GirBuilder b;
  Value h = b.Src("h", 4);
  Value to_dst = AggSum(h, AggTo::kDst);
  Value g = b.Dst("g", 4);
  Value to_src = AggSum(g, AggTo::kSrc);
  // Combine: E-type op over both results.
  b.MarkOutput(AggSum(to_dst * to_src, AggTo::kDst), "out");
  ExecutionPlan plan = BuildExecutionPlan(b.graph());
  std::set<int> agg_units;
  for (const Node& node : b.graph().nodes()) {
    if (node.kind == OpKind::kAggSum && !b.graph().IsOutput(node.id)) {
      agg_units.insert(plan.unit_of[static_cast<size_t>(node.id)]);
    }
  }
  EXPECT_EQ(agg_units.size(), 2u);
  for (const FusedUnit& unit : plan.units) {
    int agg_count_dst = 0;
    int agg_count_src = 0;
    for (int32_t id : unit.nodes) {
      const Node& node = b.graph().node(id);
      if (IsAggregation(node.kind)) {
        (node.type == GraphType::kDst ? agg_count_dst : agg_count_src) += 1;
      }
    }
    EXPECT_TRUE(agg_count_dst == 0 || agg_count_src == 0)
        << "unit mixes aggregation orientations";
  }
}

TEST(FusionTest, TwoParallelSameOrientationAggsCanShareAUnit) {
  // sum(exp(e)) and sum(exp(e) * h) both A:D from the same edge chain: one
  // kernel can accumulate both.
  GirBuilder b;
  Value e = Exp(b.Src("eu", 1) + b.Dst("ev", 1));
  Value s1 = AggSum(e);
  Value s2 = AggSum(e * b.Src("h", 4));
  Value out = s2 / s1;  // D-type post op.
  b.MarkOutput(out, "out");
  ExecutionPlan plan = BuildExecutionPlan(b.graph());
  EXPECT_EQ(plan.units.size(), 1u);
  EXPECT_TRUE(plan.units[0].has_aggregation);
}

TEST(FusionTest, NoFusionAblationMaterializesEverything) {
  GirBuilder b = BuildGat();
  FusionOptions options;
  options.enable_fusion = false;
  ExecutionPlan plan = BuildExecutionPlan(b.graph(), options);
  int compute_nodes = 0;
  for (const Node& node : b.graph().nodes()) {
    if (!IsLeaf(node.kind) && node.type != GraphType::kParam) {
      ++compute_nodes;
      EXPECT_TRUE(plan.materialized[static_cast<size_t>(node.id)] ||
                  !b.graph().IsOutput(node.id));
    }
  }
  EXPECT_EQ(static_cast<int>(plan.units.size()), compute_nodes);
}

TEST(FusionTest, UnitsAreTopologicallyOrdered) {
  GirBuilder b = BuildGat();
  ExecutionPlan plan = BuildExecutionPlan(b.graph());
  // Every cross-unit edge must point from an earlier unit to a later one.
  for (const Node& node : b.graph().nodes()) {
    const int32_t my_unit = node.id < static_cast<int32_t>(plan.unit_of.size())
                                ? plan.unit_of[static_cast<size_t>(node.id)]
                                : -1;
    if (my_unit < 0) {
      continue;
    }
    for (int32_t input : node.inputs) {
      const int32_t in_unit = plan.unit_of[static_cast<size_t>(input)];
      if (in_unit >= 0 && in_unit != my_unit) {
        EXPECT_LT(in_unit, my_unit);
      }
    }
  }
}

TEST(FusionTest, BackwardGirIsFusible) {
  // §6.3.4: the backward pass follows the seastar pattern too; the FSM must
  // find fused units with aggregations in the (optimized) backward GIR.
  GirBuilder b = BuildGat();
  BackwardGir bwd = BuildBackward(b.graph(), b.graph().outputs()[0]);
  OptimizeBackward(&bwd);
  ExecutionPlan plan = BuildExecutionPlan(bwd.graph);
  int fused_units_with_multiple_ops = 0;
  for (const FusedUnit& unit : plan.units) {
    if (unit.nodes.size() > 1) {
      ++fused_units_with_multiple_ops;
    }
  }
  EXPECT_GT(fused_units_with_multiple_ops, 0);
}

TEST(FusionTest, PlanToStringMentionsUnits) {
  GirBuilder b = BuildGat();
  ExecutionPlan plan = BuildExecutionPlan(b.graph());
  const std::string dump = plan.ToString(b.graph());
  EXPECT_NE(dump.find("unit 0"), std::string::npos);
  EXPECT_NE(dump.find("unit 1"), std::string::npos);
  EXPECT_NE(dump.find("agg"), std::string::npos);
}

TEST(FusionTest, PureVertexWiseUnitSkipsEdgeLoop) {
  GirBuilder b;
  Value x = b.Dst("x", 4);
  b.MarkOutput(Tanh(x * 2.0f), "out");
  ExecutionPlan plan = BuildExecutionPlan(b.graph());
  ASSERT_EQ(plan.units.size(), 1u);
  EXPECT_FALSE(plan.units[0].needs_edge_loop);
  EXPECT_FALSE(plan.units[0].has_aggregation);
}

}  // namespace
}  // namespace seastar
