#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/common/string_util.h"

namespace seastar {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliEdgesAndRate) {
  Rng rng(17);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.NextWeighted(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / (counts[0] + counts[2]), 0.75, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> original = items;
  rng.Shuffle(items);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(StringUtilTest, SplitAndJoin) {
  const auto pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(Join(pieces, "|"), "a|b||c");
}

TEST(StringUtilTest, ThousandsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(84120742), "84,120,742");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3u << 20), "3.00 MB");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringUtilTest, FlagParsing) {
  const char* argv_c[] = {"prog", "--scale=0.5", "--full", "--epochs=20", "--name=reddit"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_DOUBLE_EQ(FlagDouble(5, argv, "scale", 1.0), 0.5);
  EXPECT_TRUE(FlagBool(5, argv, "full", false));
  EXPECT_FALSE(FlagBool(5, argv, "quiet", false));
  EXPECT_EQ(FlagInt(5, argv, "epochs", 200), 20);
  EXPECT_EQ(FlagValue(5, argv, "name", "cora"), "reddit");
  EXPECT_EQ(FlagValue(5, argv, "missing", "dflt"), "dflt");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--scale=1", "--scale"));
  EXPECT_FALSE(StartsWith("-s", "--scale"));
}

}  // namespace
}  // namespace seastar
