#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/common/rng.h"
#include "src/tensor/autograd.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

// Central-difference gradient check: loss(params) must be a pure function of
// the leaf's value tensor.
void CheckGradient(Tensor& leaf_value, const std::function<float()>& loss,
                   const Tensor& analytic_grad, float eps = 1e-2f, float tol = 2e-2f) {
  ASSERT_TRUE(analytic_grad.defined());
  ASSERT_EQ(analytic_grad.numel(), leaf_value.numel());
  for (int64_t i = 0; i < leaf_value.numel(); ++i) {
    const float saved = leaf_value.at(i);
    leaf_value.at(i) = saved + eps;
    const float up = loss();
    leaf_value.at(i) = saved - eps;
    const float down = loss();
    leaf_value.at(i) = saved;
    const float numeric = (up - down) / (2.0f * eps);
    const float analytic = analytic_grad.at(i);
    EXPECT_NEAR(analytic, numeric, tol * std::max(1.0f, std::fabs(numeric)))
        << "at element " << i;
  }
}

TEST(AutogradTest, AddBackward) {
  Var a = Var::Leaf(Tensor({2}, {1, 2}), true);
  Var b = Var::Leaf(Tensor({2}, {3, 4}), true);
  Var c = ag::Add(a, b);
  Backward(c, Tensor({2}, {1, 1}));
  EXPECT_TRUE(a.grad().AllClose(Tensor({2}, {1, 1})));
  EXPECT_TRUE(b.grad().AllClose(Tensor({2}, {1, 1})));
}

TEST(AutogradTest, MulBackward) {
  Var a = Var::Leaf(Tensor({2}, {2, 3}), true);
  Var b = Var::Leaf(Tensor({2}, {5, 7}), true);
  Var c = ag::Mul(a, b);
  Backward(c, Tensor({2}, {1, 1}));
  EXPECT_TRUE(a.grad().AllClose(Tensor({2}, {5, 7})));
  EXPECT_TRUE(b.grad().AllClose(Tensor({2}, {2, 3})));
}

TEST(AutogradTest, GradAccumulatesAcrossUses) {
  Var a = Var::Leaf(Tensor({1}, {3}), true);
  Var c = ag::Add(a, a);  // dc/da = 2.
  Backward(c, Tensor({1}, {1}));
  EXPECT_TRUE(a.grad().AllClose(Tensor({1}, {2})));
}

TEST(AutogradTest, MatmulFiniteDifference) {
  Rng rng(1);
  Tensor wa = ops::RandomNormal({3, 4}, 0, 1, rng);
  Tensor wb = ops::RandomNormal({4, 2}, 0, 1, rng);

  const auto loss_value = [&]() {
    return ops::SumAll(ops::Matmul(wa, wb));
  };

  Var a = Var::Leaf(wa, true);
  Var b = Var::Leaf(wb, true);
  Var c = ag::Matmul(a, b);
  Backward(c, Tensor::Ones({3, 2}));
  CheckGradient(wa, loss_value, a.grad());
  CheckGradient(wb, loss_value, b.grad());
}

TEST(AutogradTest, ActivationsFiniteDifference) {
  Rng rng(2);
  Tensor x = ops::RandomNormal({4, 3}, 0, 1, rng);
  // Push values away from 0: ReLU-family kinks break central differences.
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float v = x.at(i);
    x.at(i) = v >= 0.0f ? v + 0.1f : v - 0.1f;
  }

  struct Case {
    const char* name;
    std::function<Var(const Var&)> op;
    std::function<Tensor(const Tensor&)> raw;
  };
  const Case cases[] = {
      {"relu", [](const Var& v) { return ag::Relu(v); },
       [](const Tensor& t) { return ops::Relu(t); }},
      {"leaky", [](const Var& v) { return ag::LeakyRelu(v, 0.2f); },
       [](const Tensor& t) { return ops::LeakyRelu(t, 0.2f); }},
      {"sigmoid", [](const Var& v) { return ag::Sigmoid(v); },
       [](const Tensor& t) { return ops::Sigmoid(t); }},
      {"tanh", [](const Var& v) { return ag::Tanh(v); },
       [](const Tensor& t) { return ops::Tanh(t); }},
      {"exp", [](const Var& v) { return ag::Exp(v); },
       [](const Tensor& t) { return ops::Exp(t); }},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    Var leaf = Var::Leaf(x, true);
    Var y = c.op(leaf);
    Backward(y, Tensor::Ones({4, 3}));
    CheckGradient(x, [&] { return ops::SumAll(c.raw(x)); }, leaf.grad());
  }
}

TEST(AutogradTest, LogSoftmaxNllFiniteDifference) {
  Rng rng(3);
  Tensor logits = ops::RandomNormal({5, 4}, 0, 1, rng);
  const std::vector<int32_t> labels{0, 2, 1, 3, 2};
  const std::vector<int32_t> mask{0, 2, 4};

  const auto loss_value = [&] {
    return ops::NllLoss(ops::LogSoftmax(logits), labels, mask);
  };

  Var x = Var::Leaf(logits, true);
  Var loss = ag::NllLoss(ag::LogSoftmax(x), labels, mask);
  Backward(loss, Tensor::Ones({1}));
  CheckGradient(logits, loss_value, x.grad(), 1e-2f, 3e-2f);
}

TEST(AutogradTest, TwoLayerMlpFiniteDifference) {
  Rng rng(4);
  Tensor x_val = ops::RandomNormal({6, 5}, 0, 1, rng);
  Tensor w1_val = ops::RandomNormal({5, 4}, 0, 0.5, rng);
  Tensor b1_val = ops::RandomNormal({4}, 0, 0.5, rng);
  Tensor w2_val = ops::RandomNormal({4, 3}, 0, 0.5, rng);
  const std::vector<int32_t> labels{0, 1, 2, 0, 1, 2};

  const auto loss_value = [&] {
    Tensor h = ops::Relu(ops::AddRowBroadcast(ops::Matmul(x_val, w1_val), b1_val));
    Tensor logits = ops::Matmul(h, w2_val);
    return ops::NllLoss(ops::LogSoftmax(logits), labels, {});
  };

  Var x = Var::Leaf(x_val, false);
  Var w1 = Var::Leaf(w1_val, true);
  Var b1 = Var::Leaf(b1_val, true);
  Var w2 = Var::Leaf(w2_val, true);
  Var h = ag::Relu(ag::AddRowBroadcast(ag::Matmul(x, w1), b1));
  Var loss = ag::NllLoss(ag::LogSoftmax(ag::Matmul(h, w2)), labels, {});
  Backward(loss, Tensor::Ones({1}));

  CheckGradient(w1_val, loss_value, w1.grad(), 1e-2f, 3e-2f);
  CheckGradient(b1_val, loss_value, b1.grad(), 1e-2f, 3e-2f);
  CheckGradient(w2_val, loss_value, w2.grad(), 1e-2f, 3e-2f);
  EXPECT_FALSE(x.grad().defined());  // requires_grad = false
}

TEST(AutogradTest, CustomOpIntegratesWithTape) {
  // y = 3 * x via CustomOp; loss = sum(y * y) => dL/dx = 18x.
  Tensor x_val({3}, {1, 2, 3});
  Var x = Var::Leaf(x_val, true);
  Var y = ag::CustomOp(
      {x}, ops::MulScalar(x.value(), 3.0f),
      [](const Tensor& g) { return std::vector<Tensor>{ops::MulScalar(g, 3.0f)}; }, "times3");
  Var z = ag::Mul(y, y);
  Backward(z, Tensor::Ones({3}));
  EXPECT_TRUE(x.grad().AllClose(Tensor({3}, {18, 36, 54})));
}

TEST(AutogradTest, DropoutBackwardUsesMask) {
  Rng rng(5);
  Tensor x_val = Tensor::Ones({100});
  Var x = Var::Leaf(x_val, true);
  Var y = ag::Dropout(x, 0.5f, rng, /*training=*/true);
  Backward(y, Tensor::Ones({100}));
  // Gradient equals the mask (0 or 2).
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(x.grad().at(i), y.value().at(i));
  }
}

TEST(AutogradTest, DropoutEvalModeIsIdentity) {
  Rng rng(6);
  Tensor x_val = Tensor::Ones({10});
  Var x = Var::Leaf(x_val, true);
  Var y = ag::Dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_TRUE(y.value().AllClose(x_val));
}

TEST(AutogradTest, ConcatColsBackwardSplits) {
  Var a = Var::Leaf(Tensor({2, 1}, {1, 2}), true);
  Var b = Var::Leaf(Tensor({2, 2}, {3, 4, 5, 6}), true);
  Var c = ag::ConcatCols({a, b});
  Tensor seed({2, 3}, {1, 2, 3, 4, 5, 6});
  Backward(c, seed);
  EXPECT_TRUE(a.grad().AllClose(Tensor({2, 1}, {1, 4})));
  EXPECT_TRUE(b.grad().AllClose(Tensor({2, 2}, {2, 3, 5, 6})));
}

TEST(AutogradTest, DiamondDependencyAccumulatesOnce) {
  // z = (x*x) + (x*x) reusing the same intermediate y: dz/dx = 4x.
  Tensor x_val({1}, {3});
  Var x = Var::Leaf(x_val, true);
  Var y = ag::Mul(x, x);
  Var z = ag::Add(y, y);
  Backward(z, Tensor::Ones({1}));
  EXPECT_TRUE(x.grad().AllClose(Tensor({1}, {12})));  // 4x = 12
}

}  // namespace
}  // namespace seastar
