// Tests for per-request tracing (src/common/tracing.h): deterministic head
// sampling, span-tree recording and budgets, the two-tier retention policy
// (every anomaly kept, tail reservoir holds exactly the slowest-N), ambient
// propagation, pool recycling, concurrent start/finish, and the Chrome-trace
// export. The 10k soak is the load-bearing test: it proves the guarantee the
// serving stack sells — a shed/expired/degraded request is never lost to
// sampling, and the slowest requests survive even at a 0% head rate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/tracing.h"

namespace seastar {
namespace {

using trace::AmbientSpan;
using trace::FlagNames;
using trace::RequestTrace;
using trace::ScopedTraceContext;
using trace::Span;
using trace::TraceIdHex;
using trace::Tracer;
using trace::TracerConfig;
using trace::TracerStats;

// Mirrors the SplitMix64 step so tests can fabricate well-spread ids.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// ---- FlagNames / TraceIdHex ---------------------------------------------------------------------

TEST(FlagNamesTest, RendersCleanAndCombinations) {
  EXPECT_EQ(FlagNames(0), "clean");
  EXPECT_EQ(FlagNames(trace::kShed), "shed");
  EXPECT_EQ(FlagNames(trace::kExpired | trace::kDegraded), "expired|degraded");
  EXPECT_EQ(FlagNames(trace::kRetried | trace::kBreaker | trace::kFailed),
            "retried|breaker|failed");
}

TEST(TraceIdHexTest, SixteenLowercaseDigits) {
  EXPECT_EQ(TraceIdHex(0), "0000000000000000");
  EXPECT_EQ(TraceIdHex(0xabcull), "0000000000000abc");
  EXPECT_EQ(TraceIdHex(0xDEADBEEFCAFEF00Dull), "deadbeefcafef00d");
}

// ---- Head sampler -------------------------------------------------------------------------------

TEST(HeadSamplerTest, DeterministicInTheTraceId) {
  for (uint64_t i = 0; i < 512; ++i) {
    const uint64_t id = Mix(i);
    EXPECT_EQ(Tracer::HeadSampled(id, 0.01), Tracer::HeadSampled(id, 0.01));
    EXPECT_FALSE(Tracer::HeadSampled(id, 0.0));
    EXPECT_TRUE(Tracer::HeadSampled(id, 1.0));
  }
}

TEST(HeadSamplerTest, AdmitsApproximatelyTheConfiguredFraction) {
  const int kIds = 200000;
  int admitted = 0;
  for (uint64_t i = 0; i < kIds; ++i) {
    admitted += Tracer::HeadSampled(Mix(i), 0.01) ? 1 : 0;
  }
  const double rate = static_cast<double>(admitted) / kIds;
  EXPECT_GT(rate, 0.005) << "sampler admits far too few";
  EXPECT_LT(rate, 0.02) << "sampler admits far too many";
}

TEST(HeadSamplerTest, FixedSeedAdmitsAStableSubset) {
  // Two tracers with the same seed must mint identical ids and make
  // identical sampling decisions — this is what makes traced test runs
  // reproducible.
  TracerConfig config;
  config.head_sample_rate = 0.25;
  config.seed = 42;
  std::vector<std::pair<uint64_t, bool>> first, second;
  for (int round = 0; round < 2; ++round) {
    Tracer tracer(config);
    auto& out = round == 0 ? first : second;
    for (uint64_t i = 0; i < 200; ++i) {
      RequestTrace* trace = tracer.StartTrace(0, i);
      out.emplace_back(trace->trace_id(), trace->sampled());
      tracer.FinishTrace(trace, 1.0, "served");
    }
  }
  EXPECT_EQ(first, second);
  int admitted = 0;
  for (const auto& [id, sampled] : first) {
    EXPECT_EQ(sampled, Tracer::HeadSampled(id, 0.25));
    admitted += sampled ? 1 : 0;
  }
  EXPECT_GT(admitted, 0);
  EXPECT_LT(admitted, 200);

  TracerConfig reseeded = config;
  reseeded.seed = 43;
  Tracer other(reseeded);
  RequestTrace* trace = other.StartTrace(0, 0);
  EXPECT_NE(trace->trace_id(), first[0].first) << "seed must perturb ids";
  other.FinishTrace(trace, 1.0, "served");
}

// ---- Span recording -----------------------------------------------------------------------------

TEST(SpanTreeTest, BeginEndNestingProducesParentIndices) {
  Tracer tracer(TracerConfig{});
  RequestTrace* trace = tracer.StartTrace(3, 17);
  EXPECT_EQ(trace->tenant_index(), 3u);
  EXPECT_EQ(trace->request_id(), 17u);

  const int root = trace->BeginSpan("request");
  const int queue = trace->AddSpan("queue", Tracer::Clock::now(), Tracer::Clock::now());
  const int exec = trace->BeginSpan("execute");
  const int attempt = trace->BeginSpan("attempt");
  trace->SetArg(attempt, "attempt", 1);
  trace->EndSpan(attempt);
  trace->SetArgs(exec, "retries", 0, "status", 0);
  trace->EndSpan(exec);
  trace->SetDetail(queue, "tenant-a");
  trace->EndSpan(root);

  ASSERT_EQ(trace->num_spans(), 4);
  EXPECT_EQ(trace->span(root).parent, -1);
  EXPECT_EQ(trace->span(queue).parent, root);
  EXPECT_EQ(trace->span(exec).parent, root);
  EXPECT_EQ(trace->span(attempt).parent, exec);
  EXPECT_STREQ(trace->span(queue).detail, "tenant-a");
  EXPECT_STREQ(trace->span(attempt).a_name, "attempt");
  EXPECT_EQ(trace->span(attempt).a, 1);
  EXPECT_GE(trace->span(root).dur_us, 0);
  // Children close before (or with) their parent.
  EXPECT_LE(trace->span(attempt).start_us + trace->span(attempt).dur_us,
            trace->span(exec).start_us + trace->span(exec).dur_us);
  tracer.FinishTrace(trace, 0.5, "served");
}

TEST(SpanTreeTest, DetailTruncatesToTheFixedBuffer) {
  Tracer tracer(TracerConfig{});
  RequestTrace* trace = tracer.StartTrace(0, 1);
  const int token = trace->BeginSpan("unit");
  trace->SetDetail(token, "a-very-long-fused-unit-label-that-cannot-fit");
  const std::string detail = trace->span(token).detail;
  EXPECT_LT(detail.size(), sizeof(Span{}.detail));
  EXPECT_EQ(detail, std::string("a-very-long-fused-unit-label-that-cannot-fit")
                        .substr(0, detail.size()));
  trace->EndSpan(token);
  tracer.FinishTrace(trace, 0.1, "served");
}

TEST(SpanTreeTest, BudgetDropsBeyondMaxSpansAndCountsThem) {
  TracerConfig config;
  config.max_spans_per_trace = 4;
  Tracer tracer(config);
  RequestTrace* trace = tracer.StartTrace(0, 1);
  const int root = trace->BeginSpan("request");
  for (int i = 0; i < 10; ++i) {
    const int token = trace->BeginSpan("attempt");
    if (i >= 3) {
      EXPECT_EQ(token, -1) << "span " << i << " should be over budget";
    }
    trace->SetDetail(token, "ignored");  // Must not crash on a dropped token.
    trace->SetArg(token, "attempt", i);
    trace->EndSpan(token);
  }
  EXPECT_EQ(trace->num_spans(), 4);
  EXPECT_EQ(trace->dropped_spans(), 7);
  trace->EndSpan(root);
  tracer.FinishTrace(trace, 0.1, "served");
  EXPECT_EQ(tracer.stats().spans_dropped, 7);
}

// ---- Retention: the 10k soak --------------------------------------------------------------------

// Deterministic per-request latency in [0.1, 50) ms, well spread.
double SoakLatency(uint64_t i) { return 0.1 + static_cast<double>(Mix(i) % 4990) / 100.0; }

TEST(RetentionSoakTest, EveryAnomalyKeptAndTailHoldsExactlyTheSlowestN) {
  // Head sampling OFF: everything retained must owe its survival to the
  // always-on tail tier. This is the acceptance guarantee — the slowest and
  // the anomalous are inspectable even when sampling keeps nothing.
  TracerConfig config;
  config.head_sample_rate = 0.0;
  config.tail_keep = 32;
  config.anomaly_keep = 16384;
  config.seed = 7;
  Tracer tracer(config);

  const uint64_t kRequests = 10000;
  std::set<uint64_t> anomalous_ids;
  std::map<uint64_t, uint32_t> expected_flags;
  std::vector<double> clean_latencies;
  for (uint64_t i = 0; i < kRequests; ++i) {
    RequestTrace* trace = tracer.StartTrace(static_cast<uint32_t>(i % 3), i);
    const int root = trace->BeginSpan("request");
    trace->AddSpan("queue", Tracer::Clock::now(), Tracer::Clock::now());
    trace->EndSpan(root);
    const double total_ms = SoakLatency(i);
    const char* outcome = "served";
    switch (Mix(i ^ 0x5eedull) % 17) {  // ~18% anomalous, mixed classes.
      case 0:
        trace->AddFlag(trace::kShed);
        outcome = "shed";
        break;
      case 1:
        trace->AddFlag(trace::kExpired);
        outcome = "expired";
        break;
      case 2:
        trace->AddFlag(trace::kDegraded);
        outcome = "degraded";
        break;
      default:
        clean_latencies.push_back(total_ms);
        break;
    }
    if (trace->flags() != 0) {
      anomalous_ids.insert(trace->trace_id());
      expected_flags[trace->trace_id()] = trace->flags();
    }
    tracer.FinishTrace(trace, total_ms, outcome);
  }

  const TracerStats stats = tracer.stats();
  EXPECT_EQ(stats.started, static_cast<int64_t>(kRequests));
  EXPECT_EQ(stats.finished, static_cast<int64_t>(kRequests));
  EXPECT_EQ(stats.head_sampled, 0);
  EXPECT_EQ(stats.anomalies_observed, static_cast<int64_t>(anomalous_ids.size()));
  EXPECT_EQ(stats.retained_anomaly, static_cast<int64_t>(anomalous_ids.size()))
      << "the anomaly ring did not overflow, so nothing may be dropped";
  EXPECT_EQ(stats.retained_sampled, 0);
  EXPECT_EQ(stats.retained_tail, config.tail_keep);

  std::set<uint64_t> retained_anomalies;
  std::vector<double> tail_latencies;
  tracer.ForEachRetained([&](const RequestTrace& trace) {
    if (trace.flags() != 0) {
      retained_anomalies.insert(trace.trace_id());
      EXPECT_EQ(trace.flags(), expected_flags[trace.trace_id()]);
    } else {
      tail_latencies.push_back(trace.total_ms());
    }
  });
  EXPECT_EQ(retained_anomalies, anomalous_ids)
      << "every shed/expired/degraded request must be retained";

  // The tail heap must hold *exactly* the slowest-N clean requests.
  ASSERT_EQ(tail_latencies.size(), static_cast<size_t>(config.tail_keep));
  std::sort(clean_latencies.begin(), clean_latencies.end(), std::greater<double>());
  clean_latencies.resize(static_cast<size_t>(config.tail_keep));
  std::sort(clean_latencies.begin(), clean_latencies.end());
  std::sort(tail_latencies.begin(), tail_latencies.end());
  EXPECT_EQ(tail_latencies, clean_latencies);
}

TEST(RetentionSoakTest, HeadSampledCleanTracesLandInTheSampledRing) {
  TracerConfig config;
  config.head_sample_rate = 0.05;
  config.tail_keep = 8;
  config.seed = 11;
  Tracer tracer(config);

  std::set<uint64_t> sampled_clean_ids;
  for (uint64_t i = 0; i < 2000; ++i) {
    RequestTrace* trace = tracer.StartTrace(0, i);
    const bool anomalous = (i % 50) == 0;
    if (anomalous) {
      trace->AddFlag(trace::kRetried);
    } else if (trace->sampled()) {
      sampled_clean_ids.insert(trace->trace_id());
    }
    tracer.FinishTrace(trace, SoakLatency(i), anomalous ? "served" : "served");
  }
  ASSERT_GT(sampled_clean_ids.size(), 0u);
  ASSERT_LE(sampled_clean_ids.size(), static_cast<size_t>(config.sampled_keep))
      << "test assumes the sampled ring never overflows";

  std::set<uint64_t> retained_sampled;
  tracer.ForEachRetained([&](const RequestTrace& trace) {
    if (trace.sampled() && trace.flags() == 0) {
      retained_sampled.insert(trace.trace_id());
    }
  });
  // Every head-sampled clean trace survives (some extra sampled ids may also
  // sit in the tail heap; the subset relation is the guarantee).
  for (uint64_t id : sampled_clean_ids) {
    EXPECT_TRUE(retained_sampled.count(id)) << "sampled trace lost: " << TraceIdHex(id);
  }
}

// ---- Pool recycling -----------------------------------------------------------------------------

TEST(PoolTest, SteadyStatePerformsNoFreshTraceAllocations) {
  TracerConfig config;
  config.head_sample_rate = 0.0;
  config.tail_keep = 4;
  Tracer tracer(config);

  auto run_one = [&](uint64_t i) {
    RequestTrace* trace = tracer.StartTrace(0, i);
    const int root = trace->BeginSpan("request");
    trace->EndSpan(root);
    tracer.FinishTrace(trace, SoakLatency(i), "served");
  };
  for (uint64_t i = 0; i < 100; ++i) {
    run_one(i);
  }
  const int64_t warm_misses = tracer.stats().pool_misses;
  for (uint64_t i = 100; i < 2000; ++i) {
    run_one(i);
  }
  EXPECT_EQ(tracer.stats().pool_misses, warm_misses)
      << "steady-state tracing must recycle trace objects, not allocate";
}

// ---- Ambient propagation ------------------------------------------------------------------------

TEST(AmbientTest, NoContextMeansInertSpans) {
  ASSERT_EQ(trace::CurrentTrace(), nullptr);
  EXPECT_EQ(trace::CurrentTraceId(), 0u);
  AmbientSpan span("unit");
  EXPECT_FALSE(span.active());
  span.Detail("ignored");
  span.Arg("a", 1);  // Must be a no-op, not a crash.
}

TEST(AmbientTest, ScopedContextNestsAndRestores) {
  Tracer tracer(TracerConfig{});
  RequestTrace* outer = tracer.StartTrace(0, 1);
  RequestTrace* inner = tracer.StartTrace(0, 2);
  {
    ScopedTraceContext outer_scope(outer);
    EXPECT_EQ(trace::CurrentTrace(), outer);
    EXPECT_EQ(trace::CurrentTraceId(), outer->trace_id());
    {
      ScopedTraceContext inner_scope(inner);
      EXPECT_EQ(trace::CurrentTrace(), inner);
      AmbientSpan span("shard_pass");
      span.Detail("features");
      EXPECT_TRUE(span.active());
    }
    EXPECT_EQ(trace::CurrentTrace(), outer);
    {
      ScopedTraceContext null_scope(nullptr);
      EXPECT_EQ(trace::CurrentTrace(), nullptr);
      AmbientSpan span("unit");
      EXPECT_FALSE(span.active());
    }
    EXPECT_EQ(trace::CurrentTrace(), outer);
  }
  EXPECT_EQ(trace::CurrentTrace(), nullptr);
  EXPECT_EQ(inner->num_spans(), 1);
  EXPECT_STREQ(inner->span(0).name, "shard_pass");
  EXPECT_STREQ(inner->span(0).detail, "features");
  EXPECT_EQ(outer->num_spans(), 0);
  tracer.FinishTrace(outer, 0.1, "served");
  tracer.FinishTrace(inner, 0.1, "served");
}

// ---- Concurrency (exercised under TSan in CI) ---------------------------------------------------

TEST(ConcurrencyTest, ParallelStartFinishKeepsAccountingExact) {
  TracerConfig config;
  config.head_sample_rate = 0.02;
  config.tail_keep = 16;
  Tracer tracer(config);

  const int kThreads = 8;
  const uint64_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        RequestTrace* trace =
            tracer.StartTrace(static_cast<uint32_t>(t), static_cast<uint64_t>(t) * 1000 + i);
        ScopedTraceContext scope(trace);
        const int root = trace->BeginSpan("request");
        {
          AmbientSpan span("execute");
          span.Arg("attempt", 1);
        }
        trace->EndSpan(root);
        if (i % 97 == 0) {
          trace->AddFlag(trace::kRetried);
        }
        tracer.FinishTrace(trace, SoakLatency(i), "served");
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  const TracerStats stats = tracer.stats();
  EXPECT_EQ(stats.started, static_cast<int64_t>(kThreads) * static_cast<int64_t>(kPerThread));
  EXPECT_EQ(stats.finished, stats.started);
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"traceStats\""), std::string::npos);
}

// ---- Chrome export ------------------------------------------------------------------------------

TEST(ChromeExportTest, EmitsTenantMetadataRootFactsAndStats) {
  TracerConfig config;
  config.head_sample_rate = 0.0;
  Tracer tracer(config);
  tracer.SetTenantName(2, "tenant-b");

  RequestTrace* trace = tracer.StartTrace(2, 99);
  const uint64_t id = trace->trace_id();
  const int root = trace->BeginSpan("request");
  const int exec = trace->BeginSpan("execute");
  trace->EndSpan(exec);
  trace->EndSpan(root);
  trace->AddFlag(trace::kDegraded);
  tracer.FinishTrace(trace, 12.5, "degraded");

  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("tenant:tenant-b"), std::string::npos);
  EXPECT_NE(json.find(TraceIdHex(id)), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"flags\": \"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"retained_by\": \"anomaly\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\": \"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"anomalies_observed\": 1"), std::string::npos);
}

}  // namespace
}  // namespace seastar
