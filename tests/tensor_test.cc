#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/tensor/allocator.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace seastar {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.ShapeString(), "Tensor[2x3]");
}

TEST(TensorTest, ZerosOnesFull) {
  EXPECT_FLOAT_EQ(Tensor::Zeros({4}).at(3), 0.0f);
  EXPECT_FLOAT_EQ(Tensor::Ones({4}).at(0), 1.0f);
  EXPECT_FLOAT_EQ(Tensor::Full({2, 2}, 7.5f).at(1, 1), 7.5f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b = a.Clone();
  b.at(0) = 99.0f;
  EXPECT_FLOAT_EQ(a.at(0), 1.0f);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.Reshape({3, 2});
  b.at(0, 0) = 42.0f;
  EXPECT_FLOAT_EQ(a.at(0, 0), 42.0f);
  EXPECT_EQ(b.dim(0), 3);
}

TEST(TensorTest, AllCloseDetectsDifference) {
  Tensor a({3}, {1.0f, 2.0f, 3.0f});
  Tensor b({3}, {1.0f, 2.0f, 3.0f});
  EXPECT_TRUE(a.AllClose(b));
  b.at(2) = 3.001f;
  EXPECT_FALSE(a.AllClose(b, 1e-5f));
  EXPECT_TRUE(a.AllClose(b, 1e-2f));
}

TEST(TensorTest, RowAccess) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(a.Row(1)[2], 6.0f);
}

TEST(AllocatorTest, TracksLiveAndPeak) {
  TensorAllocator& alloc = TensorAllocator::Get();
  const uint64_t live_before = alloc.live_bytes();
  alloc.ResetPeak();
  {
    Tensor big({1024, 1024});  // 4 MB
    EXPECT_GE(alloc.live_bytes(), live_before + (4u << 20));
    EXPECT_GE(alloc.peak_bytes(), live_before + (4u << 20));
  }
  EXPECT_EQ(alloc.live_bytes(), live_before);
  // Peak persists after free.
  EXPECT_GE(alloc.peak_bytes(), live_before + (4u << 20));
}

TEST(AllocatorTest, SoftBudgetFlags) {
  TensorAllocator& alloc = TensorAllocator::Get();
  alloc.SetSoftBudgetBytes(alloc.live_bytes() + (1u << 20));
  EXPECT_FALSE(alloc.budget_exceeded());
  {
    Tensor big({1024, 1024});  // 4 MB > 1 MB budget
    EXPECT_TRUE(alloc.budget_exceeded());
  }
  alloc.SetSoftBudgetBytes(0);
  EXPECT_FALSE(alloc.budget_exceeded());
}

TEST(OpsTest, ElementwiseBasics) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  EXPECT_TRUE(ops::Add(a, b).AllClose(Tensor({2, 2}, {11, 22, 33, 44})));
  EXPECT_TRUE(ops::Sub(b, a).AllClose(Tensor({2, 2}, {9, 18, 27, 36})));
  EXPECT_TRUE(ops::Mul(a, a).AllClose(Tensor({2, 2}, {1, 4, 9, 16})));
  EXPECT_TRUE(ops::Div(b, a).AllClose(Tensor({2, 2}, {10, 10, 10, 10})));
  EXPECT_TRUE(ops::Neg(a).AllClose(Tensor({2, 2}, {-1, -2, -3, -4})));
}

TEST(OpsTest, ScalarBroadcast) {
  Tensor a({3}, {1, 2, 3});
  Tensor s = Tensor::FromScalar(2.0f);
  EXPECT_TRUE(ops::Mul(a, s).AllClose(Tensor({3}, {2, 4, 6})));
  EXPECT_TRUE(ops::AddScalar(a, 1.0f).AllClose(Tensor({3}, {2, 3, 4})));
  EXPECT_TRUE(ops::MulScalar(a, -1.0f).AllClose(Tensor({3}, {-1, -2, -3})));
}

TEST(OpsTest, Activations) {
  Tensor a({4}, {-2, -0.5, 0.5, 2});
  EXPECT_TRUE(ops::Relu(a).AllClose(Tensor({4}, {0, 0, 0.5, 2})));
  EXPECT_TRUE(ops::LeakyRelu(a, 0.1f).AllClose(Tensor({4}, {-0.2f, -0.05f, 0.5f, 2.0f})));
  const Tensor sig = ops::Sigmoid(a);
  EXPECT_NEAR(sig.at(3), 1.0f / (1.0f + std::exp(-2.0f)), 1e-6);
  const Tensor th = ops::Tanh(a);
  EXPECT_NEAR(th.at(0), std::tanh(-2.0f), 1e-6);
}

TEST(OpsTest, ExpLog) {
  Tensor a({3}, {0.0f, 1.0f, 2.0f});
  const Tensor e = ops::Exp(a);
  EXPECT_NEAR(e.at(2), std::exp(2.0f), 1e-4);
  EXPECT_TRUE(ops::Log(e).AllClose(a, 1e-5f));
}

TEST(OpsTest, RowBroadcasts) {
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row({3}, {10, 20, 30});
  EXPECT_TRUE(ops::AddRowBroadcast(m, row).AllClose(Tensor({2, 3}, {11, 22, 33, 14, 25, 36})));
  Tensor col({2, 1}, {2, 3});
  EXPECT_TRUE(ops::MulColBroadcast(m, col).AllClose(Tensor({2, 3}, {2, 4, 6, 12, 15, 18})));
}

TEST(OpsTest, MatmulAgainstHandComputed) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  EXPECT_TRUE(ops::Matmul(a, b).AllClose(Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(OpsTest, MatmulTransposesConsistent) {
  Rng rng(1);
  Tensor a = ops::RandomNormal({5, 4}, 0, 1, rng);
  Tensor b = ops::RandomNormal({4, 6}, 0, 1, rng);
  Tensor c = ops::Matmul(a, b);
  // a @ b == MatmulTransposeB(a, b^T).
  EXPECT_TRUE(ops::MatmulTransposeB(a, ops::Transpose(b)).AllClose(c, 1e-4f));
  // a^T @ c2 via MatmulTransposeA.
  Tensor c2 = ops::RandomNormal({5, 3}, 0, 1, rng);
  Tensor expected = ops::Matmul(ops::Transpose(a), c2);
  EXPECT_TRUE(ops::MatmulTransposeA(a, c2).AllClose(expected, 1e-4f));
}

TEST(OpsTest, MatmulLargeParallelMatchesSmallChunks) {
  Rng rng(2);
  Tensor a = ops::RandomNormal({300, 40}, 0, 1, rng);
  Tensor b = ops::RandomNormal({40, 20}, 0, 1, rng);
  Tensor c = ops::Matmul(a, b);
  // Spot check a few entries against naive dot products.
  for (int64_t i : {0L, 150L, 299L}) {
    for (int64_t j : {0L, 10L, 19L}) {
      float acc = 0.0f;
      for (int64_t k = 0; k < 40; ++k) {
        acc += a.at(i, k) * b.at(k, j);
      }
      EXPECT_NEAR(c.at(i, j), acc, 1e-3);
    }
  }
}

TEST(OpsTest, BatchedMatmul) {
  Rng rng(3);
  Tensor a = ops::RandomNormal({3, 4, 5}, 0, 1, rng);
  Tensor b = ops::RandomNormal({3, 5, 2}, 0, 1, rng);
  Tensor c = ops::BatchedMatmul(a, b);
  ASSERT_EQ(c.dim(0), 3);
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor ai({4, 5});
    Tensor bi_m({5, 2});
    std::copy(a.data() + bi * 20, a.data() + (bi + 1) * 20, ai.data());
    std::copy(b.data() + bi * 10, b.data() + (bi + 1) * 10, bi_m.data());
    Tensor expected = ops::Matmul(ai, bi_m);
    for (int64_t i = 0; i < 4; ++i) {
      for (int64_t j = 0; j < 2; ++j) {
        EXPECT_NEAR(c.data()[bi * 8 + i * 2 + j], expected.at(i, j), 1e-4);
      }
    }
  }
}

TEST(OpsTest, Reductions) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(ops::SumAll(a), 21.0f);
  EXPECT_FLOAT_EQ(ops::MeanAll(a), 3.5f);
  EXPECT_FLOAT_EQ(ops::MaxAll(a), 6.0f);
  EXPECT_TRUE(ops::RowSum(a).AllClose(Tensor({2, 1}, {6, 15})));
  EXPECT_TRUE(ops::RowMax(a).AllClose(Tensor({2, 1}, {3, 6})));
  EXPECT_TRUE(ops::ColSum(a).AllClose(Tensor({3}, {5, 7, 9})));
  const auto argmax = ops::RowArgmax(a);
  EXPECT_EQ(argmax[0], 2);
  EXPECT_EQ(argmax[1], 2);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(4);
  Tensor a = ops::RandomNormal({10, 7}, 0, 3, rng);
  Tensor s = ops::Softmax(a);
  for (int64_t i = 0; i < 10; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(s.at(i, j), 0.0f);
      total += s.at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(5);
  Tensor a = ops::RandomNormal({6, 5}, 0, 2, rng);
  EXPECT_TRUE(ops::LogSoftmax(a).AllClose(ops::Log(ops::Softmax(a)), 1e-4f));
}

TEST(OpsTest, SoftmaxNumericallyStableForLargeInputs) {
  Tensor a({1, 3}, {1000.0f, 1001.0f, 1002.0f});
  Tensor s = ops::Softmax(a);
  EXPECT_FALSE(std::isnan(s.at(0, 0)));
  EXPECT_NEAR(s.at(0, 0) + s.at(0, 1) + s.at(0, 2), 1.0f, 1e-5);
}

// Regression: logits at the edge of float range (or overflowed to ±inf
// upstream) must yield finite log-probs and a finite cross-entropy — the
// naive x - logsumexp(x) underflows to -inf in float here, which then turns
// the training loss into inf and kills a long run.
TEST(OpsTest, LogSoftmaxFiniteAtExtremeMagnitudes) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a({4, 3},
           {3.0e38f, -3.0e38f, 0.0f,     // Full float dynamic range in one row.
            -3.0e38f, -3.0e38f, -3.0e38f,  // All minimal: uniform, not NaN.
            inf, 0.0f, -inf,             // Overflowed inputs.
            1e30f, 1e30f, 1e30f});
  Tensor lp = ops::LogSoftmax(a);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_FALSE(std::isnan(lp.at(i, j))) << "row " << i << " col " << j;
      EXPECT_FALSE(std::isinf(lp.at(i, j))) << "row " << i << " col " << j;
      EXPECT_LE(lp.at(i, j), 0.0f);
    }
  }
  // Uniform rows stay uniform: log(1/3).
  EXPECT_NEAR(lp.at(1, 0), std::log(1.0f / 3.0f), 1e-4f);
  EXPECT_NEAR(lp.at(3, 1), std::log(1.0f / 3.0f), 1e-4f);
  // The dominant logit keeps probability ~1.
  EXPECT_NEAR(lp.at(0, 0), 0.0f, 1e-4f);
  EXPECT_NEAR(lp.at(2, 0), 0.0f, 1e-4f);

  // The loss built on top is finite as well.
  const float loss = ops::NllLoss(lp, {1, 2, 2, 0}, {});
  EXPECT_TRUE(std::isfinite(loss));

  // And so is the fused cross-entropy gradient.
  Tensor grad = ops::CrossEntropyGrad(lp, {1, 2, 2, 0}, {});
  for (int64_t i = 0; i < grad.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(grad.data()[i]));
  }
}

TEST(OpsTest, SoftmaxFiniteAtExtremeMagnitudes) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a({2, 3}, {3.0e38f, -3.0e38f, 0.0f, inf, -inf, 0.0f});
  Tensor s = ops::Softmax(a);
  for (int64_t i = 0; i < 2; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_TRUE(std::isfinite(s.at(i, j)));
      total += s.at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
    EXPECT_NEAR(s.at(i, 0), 1.0f, 1e-5f);  // The dominant entry wins.
  }
}

TEST(OpsTest, NllLossHandComputed) {
  // log_probs for 2 rows, labels pick -1.0 and -0.5.
  Tensor lp({2, 2}, {-1.0f, -0.3f, -0.5f, -2.0f});
  EXPECT_NEAR(ops::NllLoss(lp, {0, 0}, {}), 0.75f, 1e-6);
  EXPECT_NEAR(ops::NllLoss(lp, {0, 0}, {1}), 0.5f, 1e-6);
}

TEST(OpsTest, DropoutMaskConsistency) {
  Rng rng(6);
  Tensor a = Tensor::Ones({1000});
  auto result = ops::Dropout(a, 0.5f, rng);
  int zeros = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    const float m = result.mask.at(i);
    EXPECT_TRUE(m == 0.0f || std::fabs(m - 2.0f) < 1e-6);
    EXPECT_FLOAT_EQ(result.output.at(i), m);
    zeros += m == 0.0f ? 1 : 0;
  }
  EXPECT_NEAR(zeros, 500, 60);
}

TEST(OpsTest, GatherScatterRoundTrip) {
  Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = ops::GatherRows(a, {2, 0, 2});
  EXPECT_TRUE(g.AllClose(Tensor({3, 2}, {5, 6, 1, 2, 5, 6})));
  Tensor s = ops::ScatterAddRows(g, {0, 0, 1}, 2);
  EXPECT_TRUE(s.AllClose(Tensor({2, 2}, {6, 8, 5, 6})));
}

TEST(OpsTest, SegmentSum) {
  Tensor a({4, 2}, {1, 1, 2, 2, 3, 3, 4, 4});
  Tensor s = ops::SegmentSum(a, {0, 1, 1, 4});
  EXPECT_TRUE(s.AllClose(Tensor({3, 2}, {1, 1, 0, 0, 9, 9})));
}

TEST(OpsTest, ConcatAndSlice) {
  Tensor a({2, 1}, {1, 2});
  Tensor b({2, 2}, {3, 4, 5, 6});
  Tensor c = ops::ConcatCols({a, b});
  EXPECT_TRUE(c.AllClose(Tensor({2, 3}, {1, 3, 4, 2, 5, 6})));
  EXPECT_TRUE(ops::SliceRows(c, 1, 2).AllClose(Tensor({1, 3}, {2, 5, 6})));
}

TEST(OpsTest, XavierBoundsRespectFanInOut) {
  Rng rng(7);
  Tensor w = ops::XavierUniform(100, 50, rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(ops::MaxAll(w), bound);
  EXPECT_GE(-ops::MaxAll(ops::Neg(w)), -bound);
}

TEST(OpsTest, OneHot) {
  Tensor t = ops::OneHot({1, 0, 2}, 3);
  EXPECT_TRUE(t.AllClose(Tensor({3, 3}, {0, 1, 0, 1, 0, 0, 0, 0, 1})));
}

}  // namespace
}  // namespace seastar
