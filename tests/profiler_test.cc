#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/profiler.h"
#include "src/common/rng.h"
#include "src/core/backend.h"
#include "src/core/program.h"
#include "src/exec/baseline_executor.h"
#include "src/exec/seastar_executor.h"
#include "src/gir/builder.h"
#include "src/gir/passes.h"
#include "src/graph/generators.h"
#include "src/parallel/thread_pool.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

Graph RandomGraph(int64_t n, int64_t m, uint64_t seed) {
  Rng rng(seed);
  CooEdges edges = ErdosRenyi(n, m, rng);
  AddSelfLoops(edges);
  return ToGraph(std::move(edges));
}

FeatureMap VertexFeature(const Graph& g, const std::string& key, int64_t width, uint64_t seed) {
  Rng rng(seed);
  FeatureMap features;
  features.vertex[key] = ops::RandomNormal({g.num_vertices(), width}, 0.0f, 1.0f, rng);
  return features;
}

GirGraph AggSumProgram(int32_t width) {
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", width)), "out");
  return RunStandardPasses(b.graph()).graph;
}

// ---- Profiler core -------------------------------------------------------

TEST(ProfilerTest, RecordsNestedSpansWithCounters) {
  Profiler profiler;
  const int64_t outer = profiler.Begin("outer", "test");
  const int64_t inner = profiler.Begin("inner", "test");
  profiler.Mutable(inner)->edges = 42;
  profiler.End(inner);
  profiler.End(outer);

  ASSERT_EQ(profiler.events().size(), 2u);
  const ProfileEvent& first = profiler.events()[0];
  const ProfileEvent& second = profiler.events()[1];
  EXPECT_EQ(first.name, "outer");
  EXPECT_EQ(second.name, "inner");
  EXPECT_EQ(second.edges, 42);
  EXPECT_GE(first.dur_us, 0.0);
  EXPECT_GE(second.dur_us, 0.0);
  // The inner span is contained in the outer one.
  EXPECT_GE(second.start_us, first.start_us);
  EXPECT_LE(second.start_us + second.dur_us, first.start_us + first.dur_us + 1.0);
  EXPECT_GT(profiler.TotalUs("test"), 0.0);
}

TEST(ProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler profiler(/*enabled=*/false);
  EXPECT_FALSE(profiler.enabled());
  const int64_t token = profiler.Begin("span", "test");
  EXPECT_EQ(token, -1);
  EXPECT_EQ(profiler.Mutable(token), nullptr);
  profiler.End(token);

  {
    ProfileScope scope(&profiler, "scoped", "test");
    EXPECT_FALSE(static_cast<bool>(scope));
    EXPECT_EQ(scope.event(), nullptr);
  }
  {
    ProfileScope scope(nullptr, "scoped", "test");
    EXPECT_EQ(scope.event(), nullptr);
  }
  EXPECT_TRUE(profiler.events().empty());
  EXPECT_EQ(profiler.ChromeTraceJson().find("\"ph\""), std::string::npos);
}

TEST(ProfilerTest, ChromeTraceJsonIsWellFormed) {
  Profiler profiler;
  {
    ProfileScope scope(&profiler, "unit0:Mul+AggSum", "unit");
    scope.event()->edges = 100;
    scope.event()->schedule = "dynamic";
  }
  const std::string json = profiler.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("unit0:Mul+AggSum"), std::string::npos);
  EXPECT_NE(json.find("\"edges\":100"), std::string::npos);
  EXPECT_NE(json.find("\"schedule\":\"dynamic\""), std::string::npos);
  // Balanced braces (crude structural check without a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  const std::string path = ::testing::TempDir() + "/profiler_test_trace.json";
  ASSERT_TRUE(profiler.WriteChromeTrace(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), json);
  std::remove(path.c_str());
}

TEST(ProfilerTest, SummaryTableAggregatesByName) {
  Profiler profiler;
  for (int i = 0; i < 3; ++i) {
    ProfileScope scope(&profiler, "AggSum", "op");
    scope.event()->edges = 10;
  }
  const std::string table = profiler.SummaryTable();
  EXPECT_NE(table.find("AggSum"), std::string::npos);
  EXPECT_NE(table.find("30"), std::string::npos);  // Edges summed over spans.
}

// ---- Deterministic executor counters -------------------------------------

TEST(ProfilerTest, SeastarUnitSpanCountsEveryEdgeOnce) {
  const Graph g = RandomGraph(60, 300, 0x5e1);
  const GirGraph gir = AggSumProgram(4);
  const FeatureMap features = VertexFeature(g, "h", 4, 0x5e2);

  for (BlockSchedule schedule :
       {BlockSchedule::kStatic, BlockSchedule::kAtomicPerBlock, BlockSchedule::kChunkedDynamic}) {
    SCOPED_TRACE(BlockScheduleName(schedule));
    SeastarExecutorOptions options;
    options.schedule = schedule;
    SeastarExecutor executor(options);
    Profiler profiler;
    RunContext ctx;
    ctx.profiler = &profiler;
    executor.Run(gir, g, features, ctx);

    const ProfileEvent* unit = nullptr;
    for (const ProfileEvent& event : profiler.events()) {
      if (event.category == "unit") {
        ASSERT_EQ(unit, nullptr) << "expected exactly one fused unit";
        unit = &event;
      }
    }
    ASSERT_NE(unit, nullptr);
    // Vertex-parallel edge-sequential: each edge slot visited exactly once.
    EXPECT_EQ(unit->edges, g.num_edges());
    EXPECT_EQ(unit->fat_groups, g.num_vertices());
    EXPECT_GT(unit->fat_group_size, 0);
    EXPECT_EQ(unit->schedule, BlockScheduleName(schedule));
    EXPECT_GT(unit->num_blocks, 0);
  }
}

TEST(ProfilerTest, DispatchCountsMatchScheduleMode) {
  const Graph g = RandomGraph(200, 900, 0xd15);
  const GirGraph gir = AggSumProgram(8);
  const FeatureMap features = VertexFeature(g, "h", 8, 0xd16);
  const int64_t participants = ThreadPool::Get().num_threads() + 1;

  const auto run = [&](BlockSchedule schedule, int64_t chunk) {
    SeastarExecutorOptions options;
    options.schedule = schedule;
    options.dynamic_chunk = chunk;
    SeastarExecutor executor(options);
    Profiler profiler;
    RunContext ctx;
    ctx.profiler = &profiler;
    executor.Run(gir, g, features, ctx);
    for (const ProfileEvent& event : profiler.events()) {
      if (event.category == "unit") {
        return event;
      }
    }
    ADD_FAILURE() << "no unit span recorded";
    return ProfileEvent{};
  };

  // Static: one contiguous range per participating worker.
  const ProfileEvent static_event = run(BlockSchedule::kStatic, 16);
  const int64_t per_worker =
      (static_event.num_blocks + participants - 1) / participants;
  int64_t expected_static = 0;
  for (int64_t w = 0; w < participants; ++w) {
    if (std::min((w + 1) * per_worker, static_event.num_blocks) > w * per_worker) {
      ++expected_static;
    }
  }
  EXPECT_EQ(static_event.dispatches, expected_static);

  // Atomic: one RMW grant per block.
  const ProfileEvent atomic_event = run(BlockSchedule::kAtomicPerBlock, 16);
  EXPECT_EQ(atomic_event.dispatches, atomic_event.num_blocks);

  // Chunked dynamic: one grant per chunk of blocks.
  const int64_t chunk = 16;
  const ProfileEvent dynamic_event = run(BlockSchedule::kChunkedDynamic, chunk);
  EXPECT_EQ(dynamic_event.dispatches, (dynamic_event.num_blocks + chunk - 1) / chunk);
}

TEST(ProfilerTest, BaselineOpSpansCoverTraversalKernels) {
  const Graph g = RandomGraph(50, 240, 0xba5e);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 4) * b.Src("norm", 1)), "out");
  const GirGraph gir = RunStandardPasses(b.graph()).graph;
  Rng rng(0xba5f);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 4}, 0.0f, 1.0f, rng);
  features.vertex["norm"] = ops::RandomNormal({g.num_vertices(), 1}, 0.0f, 1.0f, rng);

  for (BaselineFlavor flavor : {BaselineFlavor::kDglLike, BaselineFlavor::kPygLike}) {
    SCOPED_TRACE(flavor == BaselineFlavor::kDglLike ? "dgl" : "pyg");
    BaselineExecutorOptions options;
    options.flavor = flavor;
    BaselineExecutor executor(options);
    Profiler profiler;
    RunContext ctx;
    ctx.profiler = &profiler;
    executor.Run(gir, g, features, ctx);

    int64_t traversal_spans = 0;
    for (const ProfileEvent& event : profiler.events()) {
      if (event.category == "op" && event.edges > 0) {
        EXPECT_EQ(event.edges, g.num_edges());
        ++traversal_spans;
      }
      if (event.category == "exec") {
        EXPECT_GT(event.kernel_launches, 0);
      }
    }
    EXPECT_GE(traversal_spans, 1);
  }
}

TEST(ProfilerTest, ExecutorsRecordNothingWithoutProfiler) {
  const Graph g = RandomGraph(30, 120, 0x0ff);
  const GirGraph gir = AggSumProgram(4);
  const FeatureMap features = VertexFeature(g, "h", 4, 0x100);

  Profiler disabled(/*enabled=*/false);
  RunContext ctx;
  ctx.profiler = &disabled;
  SeastarExecutor().Run(gir, g, features, ctx);
  BaselineExecutor().Run(gir, g, features, ctx);
  EXPECT_TRUE(disabled.events().empty());
}

// ---- RunContext regression (api_redesign) --------------------------------

TEST(ProfilerTest, RetainThroughRunContextMatchesDefaultRun) {
  const Graph g = RandomGraph(40, 160, 0x7e7);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 4) * b.Src("norm", 1)), "out");
  const GirGraph gir = RunStandardPasses(b.graph()).graph;
  Rng rng(0x7e8);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 4}, 0.0f, 1.0f, rng);
  features.vertex["norm"] = ops::RandomNormal({g.num_vertices(), 1}, 0.0f, 1.0f, rng);

  // No BinaryReduce fusion, so the [E, 4] Mul intermediate really
  // materializes and the eager-free path has something to release.
  BaselineExecutorOptions options;
  options.fuse_binary_reduce = false;
  BaselineExecutor executor(options);
  RunResult keep_all = executor.Run(gir, g, features);
  const std::vector<int32_t> no_retain;
  RunContext ctx;
  ctx.retain = &no_retain;
  RunResult eager = executor.Run(gir, g, features, ctx);
  ASSERT_TRUE(keep_all.outputs.count("out"));
  ASSERT_TRUE(eager.outputs.count("out"));
  EXPECT_TRUE(keep_all.outputs.at("out").AllClose(eager.outputs.at("out"), 1e-6f));
  // Eager-free mode must drop intermediates the keep-everything run saved.
  EXPECT_LT(eager.saved->size(), keep_all.saved->size());
}

// ---- BackendFromString (api_redesign) ------------------------------------

TEST(ProfilerTest, BackendFromStringParsesKnownNamesAndRejectsJunk) {
  EXPECT_EQ(BackendFromString("seastar"), Backend::kSeastar);
  EXPECT_EQ(BackendFromString("seastar-nofuse"), Backend::kSeastarNoFusion);
  EXPECT_EQ(BackendFromString("nofuse"), Backend::kSeastarNoFusion);
  EXPECT_EQ(BackendFromString("dgl"), Backend::kDglLike);
  EXPECT_EQ(BackendFromString("pyg"), Backend::kPygLike);
  EXPECT_FALSE(BackendFromString("tensorflow").has_value());
  EXPECT_FALSE(BackendFromString("").has_value());
  EXPECT_NE(std::string(BackendChoices()).find("seastar"), std::string::npos);
}

// ---- VertexProgram input validation --------------------------------------
//
// These intentionally run through the deprecated BackendConfig overload of
// VertexProgram::Run: they double as coverage that the compatibility shim
// still validates inputs exactly like the ExecutionSession path.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ProfilerDeathTest, MissingProgramInputNamesTheInput) {
  const Graph g = RandomGraph(20, 60, 0xdead);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 4)), "out");
  VertexProgram program = VertexProgram::Compile(std::move(b));
  BackendConfig config;
  EXPECT_DEATH(program.Run(g, {}, config), "missing vertex input 'h'");
}

TEST(ProfilerDeathTest, MisShapedProgramInputNamesTheInput) {
  const Graph g = RandomGraph(20, 60, 0xdeae);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 4)), "out");
  VertexProgram program = VertexProgram::Compile(std::move(b));
  BackendConfig config;
  // Wrong width (3 != 4).
  Var bad_width = Var::Leaf(Tensor::Zeros({g.num_vertices(), 3}), /*requires_grad=*/false);
  EXPECT_DEATH(program.Run(g, {.vertex = {{"h", bad_width}}}, config),
               "vertex input 'h' has shape");
  // Wrong row count (vertex tensor sized for a different graph).
  Var bad_rows = Var::Leaf(Tensor::Zeros({g.num_vertices() + 1, 4}), /*requires_grad=*/false);
  EXPECT_DEATH(program.Run(g, {.vertex = {{"h", bad_rows}}}, config),
               "vertex input 'h' has shape");
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace seastar
