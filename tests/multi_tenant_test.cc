// Tests for the multi-tenant serving runtime (src/serve/): the model
// registry's RCU generation protocol, per-model checkpoint namespacing,
// batch-key separation across tenants and weights versions, weighted-fair
// scheduling and quota isolation at the server level, a rogue-tenant drill
// (fault-injected tenant must not hurt its neighbors), zero-downtime weight
// hot-swap under load (version pinning, drain-then-retire, warm-path
// steady-state), and breaker interaction with backend replacement.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault.h"
#include "src/common/flight_recorder.h"
#include "src/common/metrics.h"
#include "src/core/checkpoint.h"
#include "src/core/executor_factory.h"
#include "src/core/models/gcn.h"
#include "src/exec/plan_cache.h"
#include "src/serve/model_registry.h"
#include "src/serve/server.h"
#include "src/tensor/allocator.h"

namespace seastar {
namespace {

using serve::BreakerState;
using serve::InferenceRequest;
using serve::InferenceResponse;
using serve::ModelEntry;
using serve::ModelEntryInfo;
using serve::ModelRegistry;
using serve::ServeConfig;
using serve::Server;
using serve::ServerStats;
using serve::TenantConfig;
using serve::TenantStats;

Dataset SmallDataset() {
  DatasetOptions options;
  options.scale = 0.05;
  options.max_feature_dim = 16;
  return MakeDataset(*FindDataset("cora"), options);
}

std::shared_ptr<const Executor> SeastarBackend() {
  BackendConfig config;
  config.backend = Backend::kSeastar;
  return MakeExecutor(config);
}

std::unique_ptr<Gcn> SmallGcn(const Dataset& data) {
  GcnConfig config;
  config.hidden_dim = 8;
  return std::make_unique<Gcn>(data, config, SeastarBackend());
}

serve::ModelFactory GcnFactory(const Dataset& data) {
  return [&data]() -> std::unique_ptr<GnnModel> { return SmallGcn(data); };
}

InferenceRequest RequestFor(std::vector<int32_t> vertices, const std::string& tenant = "",
                            double deadline_ms = -1.0) {
  InferenceRequest request;
  request.vertices = std::move(vertices);
  request.deadline_ms = deadline_ms;
  request.tenant = tenant;
  return request;
}

// Snapshots `model`'s current weights as a tagged checkpoint for `model_id`,
// optionally nudging every parameter by `delta` first so distinct versions
// are distinguishable by their logits.
std::string WriteTaggedCheckpoint(GnnModel& model, const std::string& model_id,
                                  const std::string& path, float delta = 0.0f) {
  if (delta != 0.0f) {
    for (Var& p : model.Parameters()) {
      Tensor value = p.value();
      float* data = value.data();
      for (int64_t i = 0; i < value.numel(); ++i) {
        data[i] += delta;
      }
    }
  }
  TrainCheckpoint checkpoint;
  checkpoint.model_tag = model_id;
  for (const Var& p : model.Parameters()) {
    checkpoint.parameters.push_back(p.value().Clone());
  }
  Status saved = SaveCheckpoint(checkpoint, path);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return path;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void AssertTenantIdentity(const TenantStats& t, const std::string& who) {
  EXPECT_EQ(t.submitted, t.served + t.degraded + t.shed + t.expired + t.failed)
      << "per-tenant accounting identity violated for " << who;
}

// ---- Registry basics ----------------------------------------------------------------------------

TEST(ModelRegistryTest, RegisterLookupAndDuplicateRejection) {
  Dataset data = SmallDataset();
  ModelRegistry registry;
  auto a = registry.Register("model-a", data, GcnFactory(data));
  ASSERT_TRUE(a.has_value()) << a.status().ToString();
  EXPECT_EQ(a.value()->version(), 1);
  EXPECT_NE(a.value()->fingerprint(), 0u);

  auto borrowed_model = SmallGcn(data);
  auto b = registry.RegisterBorrowed("model-b", *borrowed_model, data);
  ASSERT_TRUE(b.has_value()) << b.status().ToString();

  EXPECT_EQ(registry.Lookup("model-a").get(), a.value().get());
  EXPECT_EQ(registry.Lookup("model-b").get(), b.value().get());
  EXPECT_EQ(registry.Lookup("model-c"), nullptr);
  EXPECT_EQ(registry.size(), 2u);

  auto dup = registry.Register("model-a", data, GcnFactory(data));
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);

  // Swappability: factory-backed yes, borrowed no.
  bool saw_a = false, saw_b = false;
  for (const ModelEntryInfo& info : registry.List()) {
    if (info.model_id == "model-a") {
      saw_a = true;
      EXPECT_TRUE(info.swappable);
    }
    if (info.model_id == "model-b") {
      saw_b = true;
      EXPECT_FALSE(info.swappable);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);

  auto no_swap = registry.PrepareSwap("model-b", "/nonexistent.ckpt");
  EXPECT_EQ(no_swap.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ModelRegistryTest, FingerprintsSeparateModelsAndVersions) {
  // The regression this guards: two tenants with identical architectures and
  // graphs (or two weights generations of one model) must never share a
  // batch key, or one's requests would be answered with the other's weights.
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  const uint64_t a1 = serve::ComputeEntryFingerprint("model-a", 1, *model, data);
  const uint64_t b1 = serve::ComputeEntryFingerprint("model-b", 1, *model, data);
  const uint64_t a2 = serve::ComputeEntryFingerprint("model-a", 2, *model, data);
  EXPECT_NE(a1, b1);  // Same architecture+graph, different model id.
  EXPECT_NE(a1, a2);  // Same model id, different weights version.
  EXPECT_NE(a1, 0u);
  EXPECT_NE(b1, 0u);
}

TEST(ModelRegistryTest, PublishFlipsAndRetiresAfterDrain) {
  Dataset data = SmallDataset();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", data, GcnFactory(data)).has_value());

  auto live = registry.Lookup("m");
  const std::string path = TempPath("seastar_mt_publish.ckpt");
  WriteTaggedCheckpoint(live->model(), "m", path, /*delta=*/0.25f);

  auto staged = registry.PrepareSwap("m", path);
  ASSERT_TRUE(staged.has_value()) << staged.status().ToString();
  EXPECT_EQ(staged.value()->version(), 2);
  // Staging is invisible until Publish.
  EXPECT_EQ(registry.Lookup("m")->version(), 1);

  auto replaced = registry.Publish(staged.value());
  ASSERT_TRUE(replaced.has_value());
  EXPECT_EQ(replaced.value()->version(), 1);
  EXPECT_EQ(registry.Lookup("m")->version(), 2);

  // A stale re-publish of the old generation must be refused.
  auto stale = registry.Publish(replaced.value());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);

  // v1 is still pinned (by `live` and `replaced`): not retired yet.
  EXPECT_TRUE(registry.PollRetired().empty());
  EXPECT_EQ(registry.pending_retirements(), 1);
  replaced = ErrorStatus(StatusCode::kInternal) << "dropped";
  live.reset();
  std::vector<serve::RetiredEntry> retired = registry.PollRetired();
  ASSERT_EQ(retired.size(), 1u);
  EXPECT_EQ(retired[0].model_id, "m");
  EXPECT_EQ(retired[0].version, 1);
  // Exactly once.
  EXPECT_TRUE(registry.PollRetired().empty());
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");
}

// ---- Checkpoint namespacing ---------------------------------------------------------------------

TEST(CheckpointNamespaceTest, PathForModelKeepsExtensionAndSanitizes) {
  EXPECT_EQ(CheckpointPathForModel("ckpt/fleet.ckpt", "gcn-a"), "ckpt/fleet.gcn-a.ckpt");
  EXPECT_EQ(CheckpointPathForModel("fleet", "gcn-a"), "fleet.gcn-a");
  EXPECT_EQ(CheckpointPathForModel("a.b/fleet", "m"), "a.b/fleet.m");
  EXPECT_EQ(CheckpointPathForModel("fleet.ckpt", "we/ird id"), "fleet.we_ird_id.ckpt");
  EXPECT_EQ(CheckpointPathForModel("fleet.ckpt", ""), "fleet.model.ckpt");
}

TEST(CheckpointNamespaceTest, TagMismatchIsRejectedAndFallsBackToPrev) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  const std::string path = TempPath("seastar_mt_tag.ckpt");

  // Generation 1: tagged for model-a. Saving generation 2 rotates it to
  // .prev; generation 2 simulates another model's rotation clobbering the
  // slot (wrong tag).
  WriteTaggedCheckpoint(*model, "model-a", path);
  WriteTaggedCheckpoint(*model, "model-b", path);

  // Untagged expectation: both load fine.
  EXPECT_TRUE(LoadCheckpoint(path).has_value());
  // Tag-checked against model-b: primary matches.
  StatusOr<TrainCheckpoint> as_b = LoadCheckpoint(path, "model-b");
  ASSERT_TRUE(as_b.has_value()) << as_b.status().ToString();
  EXPECT_EQ(as_b->model_tag, "model-b");
  // Tag-checked against model-a: primary is alien, but .prev still holds
  // model-a's weights — the fallback must recover them.
  StatusOr<TrainCheckpoint> as_a = LoadCheckpoint(path, "model-a");
  ASSERT_TRUE(as_a.has_value()) << as_a.status().ToString();
  EXPECT_EQ(as_a->model_tag, "model-a");
  // Tag-checked against a third model: both generations alien.
  StatusOr<TrainCheckpoint> as_c = LoadCheckpoint(path, "model-c");
  ASSERT_FALSE(as_c.has_value());
  EXPECT_EQ(as_c.status().code(), StatusCode::kFailedPrecondition);

  // Untagged legacy snapshots pass any expectation.
  const std::string legacy = TempPath("seastar_mt_legacy.ckpt");
  WriteTaggedCheckpoint(*model, "", legacy);
  EXPECT_TRUE(LoadCheckpoint(legacy, "anything").has_value());

  for (const std::string& p : {path, legacy}) {
    std::filesystem::remove(p);
    std::filesystem::remove(p + ".prev");
  }
}

// ---- Server-level tenancy -----------------------------------------------------------------------

ServeConfig ThreeTenantConfig() {
  ServeConfig config;
  config.queue_capacity = 64;
  config.max_batch = 8;
  config.max_batch_delay_ms = 0.5;
  TenantConfig a;
  a.name = "alpha";
  a.model_id = "model-a";
  a.weight = 2.0;
  TenantConfig b;
  b.name = "beta";
  b.model_id = "model-b";
  TenantConfig c;
  c.name = "gamma";
  c.model_id = "model-a";  // Shares alpha's model, separate QoS domain.
  config.tenants = {a, b, c};
  return config;
}

TEST(MultiTenantServeTest, RoutesTenantsToTheirModelsAndKeepsPerTenantIdentity) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto registry = std::make_shared<ModelRegistry>();
  ASSERT_TRUE(registry->Register("model-a", data, GcnFactory(data)).has_value());
  ASSERT_TRUE(registry->Register("model-b", data, GcnFactory(data)).has_value());
  const Tensor expected_a = registry->Lookup("model-a")->model().Forward(false).value();
  const Tensor expected_b = registry->Lookup("model-b")->model().Forward(false).value();

  Server server(registry, ThreeTenantConfig());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.tenant_names(), (std::vector<std::string>{"alpha", "beta", "gamma"}));

  StatusOr<InferenceResponse> ra = server.Infer(RequestFor({0, 2}, "alpha"));
  StatusOr<InferenceResponse> rb = server.Infer(RequestFor({0, 2}, "beta"));
  ASSERT_TRUE(ra.has_value()) << ra.status().ToString();
  ASSERT_TRUE(rb.has_value()) << rb.status().ToString();
  EXPECT_EQ(ra->model_id, "model-a");
  EXPECT_EQ(rb->model_id, "model-b");
  EXPECT_EQ(ra->tenant, "alpha");
  EXPECT_EQ(rb->tenant, "beta");
  for (int64_t j = 0; j < expected_a.dim(1); ++j) {
    EXPECT_FLOAT_EQ(ra->logits.at(0, j), expected_a.at(0, j));
    EXPECT_FLOAT_EQ(rb->logits.at(0, j), expected_b.at(0, j));
  }

  // An empty tenant routes to tenants[0]; unknown tenants are rejected.
  StatusOr<InferenceResponse> rd = server.Infer(RequestFor({1}));
  ASSERT_TRUE(rd.has_value());
  EXPECT_EQ(rd->tenant, "alpha");
  StatusOr<InferenceResponse> ru = server.Infer(RequestFor({1}, "nobody"));
  EXPECT_EQ(ru.status().code(), StatusCode::kInvalidArgument);

  server.Shutdown();
  int64_t tenant_sum = 0;
  for (const std::string& name : server.tenant_names()) {
    StatusOr<TenantStats> t = server.tenant_stats(name);
    ASSERT_TRUE(t.has_value());
    AssertTenantIdentity(t.value(), name);
    tenant_sum += t->submitted;
  }
  const ServerStats global = server.stats();
  EXPECT_EQ(tenant_sum, global.submitted);  // Tenant slices sum to the global.
  StatusOr<TenantStats> alpha = server.tenant_stats("alpha");
  EXPECT_EQ(alpha->served, 2);  // ra + rd.
  EXPECT_FALSE(server.tenant_stats("nobody").has_value());
}

TEST(MultiTenantServeTest, TenantsNeverShareABatchEvenOnTheSameModel) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto registry = std::make_shared<ModelRegistry>();
  ASSERT_TRUE(registry->Register("model-a", data, GcnFactory(data)).has_value());
  ASSERT_TRUE(registry->Register("model-b", data, GcnFactory(data)).has_value());

  ServeConfig config = ThreeTenantConfig();
  config.max_batch = 32;
  config.max_batch_delay_ms = 20.0;  // Wide window: same-key requests coalesce.
  Server server(registry, config);
  ASSERT_TRUE(server.Start().ok());

  // Burst for alpha and gamma — same model id, distinct tenants. If the
  // batch key ignored the tenant they would coalesce and one tenant's stats
  // would absorb the other's requests.
  std::vector<std::future<StatusOr<InferenceResponse>>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(server.Submit(RequestFor({i % 4}, "alpha")));
    futures.push_back(server.Submit(RequestFor({i % 4}, "gamma")));
  }
  for (auto& future : futures) {
    StatusOr<InferenceResponse> r = future.get();
    ASSERT_TRUE(r.has_value()) << r.status().ToString();
    // A batch larger than one tenant's share would prove cross-tenant
    // coalescing; every response must come from a single-tenant batch.
    EXPECT_LE(r->batch_size, 10);
  }
  server.Shutdown();
  StatusOr<TenantStats> alpha = server.tenant_stats("alpha");
  StatusOr<TenantStats> gamma = server.tenant_stats("gamma");
  EXPECT_EQ(alpha->served, 10);
  EXPECT_EQ(gamma->served, 10);
  AssertTenantIdentity(alpha.value(), "alpha");
  AssertTenantIdentity(gamma.value(), "gamma");
}

TEST(MultiTenantServeTest, QuotaShedsOnlyTheOffendingTenant) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto registry = std::make_shared<ModelRegistry>();
  ASSERT_TRUE(registry->Register("model-a", data, GcnFactory(data)).has_value());
  ASSERT_TRUE(registry->Register("model-b", data, GcnFactory(data)).has_value());

  ServeConfig config = ThreeTenantConfig();
  config.tenants[1].max_queued = 2;  // beta's quota.
  Server server(registry, config);
  ASSERT_TRUE(server.Start().ok());

  // Stall serving so pushes pile up in the queue.
  FaultInjector::Get().ArmProbabilistic(FaultSite::kSimtWorker, 1.0, /*seed=*/5);
  std::vector<std::future<StatusOr<InferenceResponse>>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(server.Submit(RequestFor({0}, "beta")));
  }
  // The shared queue (capacity 64) still has room for everyone else.
  for (int i = 0; i < 10; ++i) {
    futures.push_back(server.Submit(RequestFor({0}, "alpha")));
  }
  FaultInjector::Get().DisarmAll();
  for (auto& future : futures) {
    EXPECT_NO_THROW(future.get());
  }
  server.Shutdown();

  StatusOr<TenantStats> beta = server.tenant_stats("beta");
  StatusOr<TenantStats> alpha = server.tenant_stats("alpha");
  EXPECT_GT(beta->quota_shed, 0);
  EXPECT_EQ(beta->quota_shed, beta->shed);  // All of beta's sheds are its own quota.
  EXPECT_EQ(alpha->shed, 0);  // The victim shed nothing.
  EXPECT_EQ(alpha->served, 10);
  AssertTenantIdentity(beta.value(), "beta");
  AssertTenantIdentity(alpha.value(), "alpha");
  const ServerStats global = server.stats();
  EXPECT_EQ(global.quota_shed, beta->quota_shed);
  EXPECT_EQ(global.shed, global.quota_shed);  // No capacity sheds in this run.
}

TEST(MultiTenantServeTest, RogueTenantFaultsDoNotDegradeItsNeighbors) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto registry = std::make_shared<ModelRegistry>();
  ASSERT_TRUE(registry->Register("model-a", data, GcnFactory(data)).has_value());
  ASSERT_TRUE(registry->Register("model-b", data, GcnFactory(data)).has_value());

  ServeConfig config = ThreeTenantConfig();
  // Every forward the rogue runs hits an injected allocation fault; retries
  // are exhausted quickly and its breaker trips.
  config.tenants[1].fault_spec = "alloc:p=1.0:seed=7";
  config.tenants[1].max_queued = 4;
  config.max_retries = 1;
  config.retry_base_backoff_ms = 0.05;
  config.breaker_trip_after = 2;
  config.breaker_probe_interval_ms = 5.0;
  Server server(registry, config);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::future<StatusOr<InferenceResponse>>> futures;
  for (int round = 0; round < 12; ++round) {
    futures.push_back(server.Submit(RequestFor({round % 5}, "beta")));
    futures.push_back(server.Submit(RequestFor({round % 5}, "alpha")));
    futures.push_back(server.Submit(RequestFor({round % 5}, "gamma")));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& future : futures) {
    EXPECT_NO_THROW(future.get());
  }
  server.Shutdown();

  StatusOr<TenantStats> alpha = server.tenant_stats("alpha");
  StatusOr<TenantStats> beta = server.tenant_stats("beta");
  StatusOr<TenantStats> gamma = server.tenant_stats("gamma");
  // Victims: every request served fresh, zero degraded/failed/expired.
  EXPECT_EQ(alpha->served, 12);
  EXPECT_EQ(gamma->served, 12);
  EXPECT_EQ(alpha->degraded + alpha->failed + alpha->expired + alpha->shed, 0);
  EXPECT_EQ(gamma->degraded + gamma->failed + gamma->expired + gamma->shed, 0);
  // The rogue paid for its own faults: degraded (LKG) or failed answers, a
  // tripped breaker, retries — none of which leaked into the victims' stats.
  EXPECT_GT(beta->degraded + beta->failed, 0);
  EXPECT_EQ(beta->served, 0);
  EXPECT_GE(beta->breaker_trips, 1);
  EXPECT_EQ(alpha->breaker_trips, 0);
  EXPECT_EQ(gamma->breaker_trips, 0);
  for (const auto* t : {&alpha, &beta, &gamma}) {
    AssertTenantIdentity(t->value(), "tenant");
  }
  // The rogue's breaker is scoped to it alone.
  EXPECT_NE(server.tenant_breaker_state("beta").value(), BreakerState::kClosed);
  EXPECT_EQ(server.tenant_breaker_state("alpha").value(), BreakerState::kClosed);
}

// ---- Hot swap -----------------------------------------------------------------------------------

TEST(MultiTenantServeTest, HotSwapUnderLoadLosesNothingAndPinsVersions) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto registry = std::make_shared<ModelRegistry>();
  ASSERT_TRUE(registry->Register("model-a", data, GcnFactory(data)).has_value());

  ServeConfig config;
  config.queue_capacity = 256;
  config.max_batch = 8;
  config.max_batch_delay_ms = 0.2;
  TenantConfig tenant;
  tenant.name = "alpha";
  tenant.model_id = "model-a";
  config.tenants = {tenant};
  Server server(registry, config);
  ASSERT_TRUE(server.Start().ok());
  const uint64_t fingerprint_v1 = server.serving_fingerprint();

  // Stage v2 = current weights nudged, written as a tagged checkpoint.
  const std::string path = TempPath("seastar_mt_swap.ckpt");
  {
    auto scratch = SmallGcn(data);
    WriteTaggedCheckpoint(*scratch, "model-a", path, /*delta=*/0.125f);
  }

  // Sustained submission across the swap point.
  std::atomic<bool> stop{false};
  std::vector<std::future<StatusOr<InferenceResponse>>> futures;
  std::mutex futures_mutex;
  std::thread load([&] {
    int i = 0;
    while (!stop.load()) {
      auto f = server.Submit(RequestFor({i++ % 6}, "alpha"));
      std::lock_guard<std::mutex> lock(futures_mutex);
      futures.push_back(std::move(f));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  StatusOr<int64_t> swapped = server.HotSwap("model-a", path);
  ASSERT_TRUE(swapped.has_value()) << swapped.status().ToString();
  EXPECT_EQ(swapped.value(), 2);
  EXPECT_NE(server.serving_fingerprint(), fingerprint_v1);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  load.join();

  // Every in-flight request was served by the version it was admitted
  // against; versions are monotone in admission order; nothing was lost.
  int64_t last_version = 1;
  int64_t v1_answers = 0, v2_answers = 0;
  for (auto& future : futures) {
    StatusOr<InferenceResponse> r = future.get();
    ASSERT_TRUE(r.has_value()) << r.status().ToString();
    EXPECT_FALSE(r->degraded);
    EXPECT_GE(r->model_version, last_version);
    last_version = r->model_version;
    (r->model_version == 1 ? v1_answers : v2_answers)++;
  }
  EXPECT_GT(v1_answers, 0);  // The swap happened mid-stream...
  EXPECT_GT(v2_answers, 0);  // ...and traffic continued on the new weights.

  // Zero requests shed or failed because of the swap.
  const ServerStats mid = server.stats();
  EXPECT_EQ(mid.shed, 0);
  EXPECT_EQ(mid.failed, 0);
  EXPECT_EQ(mid.expired, 0);
  EXPECT_EQ(mid.swaps, 1);
  EXPECT_EQ(mid.swap_failures, 0);

  // v1 drains and retires (in-flight pins released at fulfillment).
  for (int i = 0; i < 100 && server.stats().swap_retired == 0; ++i) {
    ASSERT_TRUE(server.Infer(RequestFor({0}, "alpha")).has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.stats().swap_retired, 1);
  EXPECT_EQ(registry->pending_retirements(), 0);

  // Post-flip steady state: same architecture -> every plan from the cache,
  // every tensor from the pool. A settle round first (response-tensor shapes
  // seen before may still miss the pool on the very first post-flip gather).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server.Infer(RequestFor({1, 2}, "alpha")).has_value());
  }
  PlanCache& plans = PlanCache::Get();
  TensorAllocator& allocator = TensorAllocator::Get();
  const uint64_t misses_before = plans.misses();
  const uint64_t mallocs_before = allocator.fresh_mallocs();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.Infer(RequestFor({1, 2}, "alpha")).has_value());
  }
  EXPECT_EQ(plans.misses(), misses_before);
  EXPECT_EQ(allocator.fresh_mallocs(), mallocs_before);

  // Swap lifecycle left its trail in the flight recorder.
  bool saw_flip = false, saw_retire = false;
  for (const FlightEvent& event : FlightRecorder::Get().Snapshot()) {
    if (std::strcmp(event.category, "swap") != 0) {
      continue;
    }
    if (std::strncmp(event.detail, "flip", 4) == 0) {
      saw_flip = true;
    }
    if (std::strncmp(event.detail, "retire", 6) == 0) {
      saw_retire = true;
    }
  }
  EXPECT_TRUE(saw_flip);
  EXPECT_TRUE(saw_retire);

  server.Shutdown();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");
}

TEST(MultiTenantServeTest, SwapFailuresLeaveTheOldVersionServing) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto registry = std::make_shared<ModelRegistry>();
  ASSERT_TRUE(registry->Register("model-a", data, GcnFactory(data)).has_value());
  ServeConfig config;
  TenantConfig tenant;
  tenant.name = "alpha";
  tenant.model_id = "model-a";
  config.tenants = {tenant};
  Server server(registry, config);
  ASSERT_TRUE(server.Start().ok());

  // Missing checkpoint: staging fails, v1 stays live.
  StatusOr<int64_t> missing = server.HotSwap("model-a", "/nonexistent/v2.ckpt");
  EXPECT_FALSE(missing.has_value());
  EXPECT_EQ(registry->Lookup("model-a")->version(), 1);

  // Wrong-tag checkpoint: the tag check refuses it before any weights move.
  const std::string alien = TempPath("seastar_mt_alien.ckpt");
  {
    auto scratch = SmallGcn(data);
    WriteTaggedCheckpoint(*scratch, "someone-else", alien);
  }
  StatusOr<int64_t> mismatched = server.HotSwap("model-a", alien);
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry->Lookup("model-a")->version(), 1);
  EXPECT_GE(server.stats().swap_failures, 2);
  EXPECT_EQ(server.stats().swaps, 0);

  // Serving never blinked.
  EXPECT_TRUE(server.Infer(RequestFor({0}, "alpha")).has_value());
  server.Shutdown();
  std::filesystem::remove(alien);
  std::filesystem::remove(alien + ".prev");
}

TEST(MultiTenantServeTest, OpenBreakerProbesTheSwappedVersionAndCloses) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto registry = std::make_shared<ModelRegistry>();
  ASSERT_TRUE(registry->Register("model-a", data, GcnFactory(data)).has_value());
  ServeConfig config;
  config.max_retries = 0;
  config.breaker_trip_after = 2;
  // So long that only NoteBackendReplaced's backdating can admit a probe
  // within this test's lifetime: recovery proves the swap reset the clock.
  config.breaker_probe_interval_ms = 60000.0;
  TenantConfig tenant;
  tenant.name = "alpha";
  tenant.model_id = "model-a";
  config.tenants = {tenant};
  Server server(registry, config);
  ASSERT_TRUE(server.Start().ok());

  // Trip the breaker on v1 with a sustained outage.
  FaultInjector::Get().Arm(FaultSite::kTensorAlloc, /*after_n=*/0, /*count=*/1'000'000'000);
  for (int i = 0; i < 8 && server.tenant_breaker_state("alpha").value() != BreakerState::kOpen;
       ++i) {
    StatusOr<InferenceResponse> r = server.Infer(RequestFor({0}, "alpha"));
    ASSERT_TRUE(r.has_value()) << r.status().ToString();
  }
  ASSERT_EQ(server.tenant_breaker_state("alpha").value(), BreakerState::kOpen);
  FaultInjector::Get().DisarmAll();
  TensorAllocator::Get().ClearInjectedFailure();

  // While open (and far from the probe interval), answers are degraded.
  StatusOr<InferenceResponse> during = server.Infer(RequestFor({1}, "alpha"));
  ASSERT_TRUE(during.has_value());
  EXPECT_TRUE(during->degraded);

  // Swap in v2. The breaker's failure history described v1; the very next
  // batch must probe v2 and close on its success.
  const std::string path = TempPath("seastar_mt_breaker_swap.ckpt");
  {
    auto scratch = SmallGcn(data);
    WriteTaggedCheckpoint(*scratch, "model-a", path, /*delta=*/0.0625f);
  }
  StatusOr<int64_t> swapped = server.HotSwap("model-a", path);
  ASSERT_TRUE(swapped.has_value()) << swapped.status().ToString();

  StatusOr<InferenceResponse> after = server.Infer(RequestFor({2}, "alpha"));
  ASSERT_TRUE(after.has_value()) << after.status().ToString();
  EXPECT_FALSE(after->degraded);
  EXPECT_EQ(after->model_version, 2);
  EXPECT_EQ(server.tenant_breaker_state("alpha").value(), BreakerState::kClosed);
  StatusOr<TenantStats> stats = server.tenant_stats("alpha");
  EXPECT_GE(stats->breaker_recoveries, 1);

  server.Shutdown();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");
}

// ---- Metrics ------------------------------------------------------------------------------------

TEST(MultiTenantServeTest, PerTenantMetricsMirrorTenantStats) {
  ScopedFaultClear clear;
  metrics::MetricsRegistry& metrics_registry = metrics::MetricsRegistry::Get();
  const auto counter = [&metrics_registry](const std::string& name) {
    return metrics_registry.GetCounter(name)->value();
  };
  // Tests share the process registry: work on deltas against unique names.
  const std::string served_name =
      "seastar_serve_tenant_served_total{tenant=\"mt-metrics-alpha\"}";
  const std::string quota_name =
      "seastar_serve_tenant_quota_shed_total{tenant=\"mt-metrics-alpha\"}";
  const int64_t served0 = counter(served_name);
  const int64_t swaps0 = counter("seastar_serve_swaps_total");

  Dataset data = SmallDataset();
  auto registry = std::make_shared<ModelRegistry>();
  ASSERT_TRUE(registry->Register("model-a", data, GcnFactory(data)).has_value());
  ServeConfig config;
  TenantConfig tenant;
  tenant.name = "mt-metrics-alpha";
  tenant.model_id = "model-a";
  config.tenants = {tenant};
  Server server(registry, config);
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.Infer(RequestFor({i}, "mt-metrics-alpha")).has_value());
  }
  const std::string path = TempPath("seastar_mt_metrics_swap.ckpt");
  {
    auto scratch = SmallGcn(data);
    WriteTaggedCheckpoint(*scratch, "model-a", path, /*delta=*/0.5f);
  }
  ASSERT_TRUE(server.HotSwap("model-a", path).has_value());
  server.Shutdown();

  EXPECT_EQ(counter(served_name) - served0, 4);
  EXPECT_EQ(counter(quota_name), 0);
  EXPECT_EQ(counter("seastar_serve_swaps_total") - swaps0, 1);
  StatusOr<TenantStats> stats = server.tenant_stats("mt-metrics-alpha");
  EXPECT_EQ(stats->served, 4);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");
}

}  // namespace
}  // namespace seastar
