// Parameterized property sweeps over the dense tensor kernels: shape
// coverage for GEMM variants, softmax invariants, and gather/scatter
// adjointness across a grid of sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/common/rng.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

class MatmulSweepTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(MatmulSweepTest, MatchesNaiveTripleLoop) {
  const auto [n, k, m] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 10007 + k * 101 + m));
  Tensor a = ops::RandomNormal({n, k}, 0, 1, rng);
  Tensor b = ops::RandomNormal({k, m}, 0, 1, rng);
  Tensor c = ops::Matmul(a, b);
  ASSERT_EQ(c.dim(0), n);
  ASSERT_EQ(c.dim(1), m);
  for (int64_t i = 0; i < n; i += std::max<int64_t>(1, n / 3)) {
    for (int64_t j = 0; j < m; j += std::max<int64_t>(1, m / 3)) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a.at(i, kk) * b.at(kk, j);
      }
      EXPECT_NEAR(c.at(i, j), acc, 1e-3 * std::max(1.0f, std::fabs(acc)));
    }
  }
}

TEST_P(MatmulSweepTest, TransposeIdentities) {
  const auto [n, k, m] = GetParam();
  Rng rng(static_cast<uint64_t>(n + k + m));
  Tensor a = ops::RandomNormal({n, k}, 0, 1, rng);
  Tensor b = ops::RandomNormal({k, m}, 0, 1, rng);
  Tensor c = ops::Matmul(a, b);
  // (A B)^T == B^T A^T.
  Tensor lhs = ops::Transpose(c);
  Tensor rhs = ops::Matmul(ops::Transpose(b), ops::Transpose(a));
  EXPECT_TRUE(lhs.AllClose(rhs, 1e-3f));
  // MatmulTransposeA(A, C) == A^T C.
  Tensor c2 = ops::RandomNormal({n, m}, 0, 1, rng);
  EXPECT_TRUE(ops::MatmulTransposeA(a, c2).AllClose(
      ops::Matmul(ops::Transpose(a), c2), 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulSweepTest,
                         ::testing::Values(std::tuple<int64_t, int64_t, int64_t>{1, 1, 1},
                                           std::tuple<int64_t, int64_t, int64_t>{1, 64, 1},
                                           std::tuple<int64_t, int64_t, int64_t>{7, 3, 5},
                                           std::tuple<int64_t, int64_t, int64_t>{33, 17, 9},
                                           std::tuple<int64_t, int64_t, int64_t>{128, 1, 128},
                                           std::tuple<int64_t, int64_t, int64_t>{100, 257, 31}));

class SoftmaxSweepTest : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(SoftmaxSweepTest, RowsSumToOneAndShiftInvariant) {
  const auto [rows, cols] = GetParam();
  Rng rng(static_cast<uint64_t>(rows * 31 + cols));
  Tensor a = ops::RandomNormal({rows, cols}, 0, 5, rng);
  Tensor s = ops::Softmax(a);
  for (int64_t i = 0; i < rows; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < cols; ++j) {
      total += s.at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-4);
  }
  // softmax(a + c) == softmax(a) for a per-row constant shift.
  Tensor shifted = ops::AddScalar(a, 123.0f);
  EXPECT_TRUE(ops::Softmax(shifted).AllClose(s, 1e-4f));
  // log-softmax consistency.
  EXPECT_TRUE(ops::Exp(ops::LogSoftmax(a)).AllClose(s, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxSweepTest,
                         ::testing::Values(std::tuple<int64_t, int64_t>{1, 1},
                                           std::tuple<int64_t, int64_t>{1, 40},
                                           std::tuple<int64_t, int64_t>{40, 1},
                                           std::tuple<int64_t, int64_t>{17, 23},
                                           std::tuple<int64_t, int64_t>{200, 7}));

class GatherScatterSweepTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(GatherScatterSweepTest, ScatterIsGatherAdjoint) {
  // <Gather(x, idx), y> == <x, Scatter(y, idx)> — the defining adjoint
  // identity that makes scatter the correct gather gradient.
  const int64_t n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  const int64_t rows = 3 * n;
  Tensor x = ops::RandomNormal({n, 4}, 0, 1, rng);
  std::vector<int32_t> index(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    index[static_cast<size_t>(i)] = static_cast<int32_t>(rng.NextBounded(
        static_cast<uint64_t>(n)));
  }
  Tensor y = ops::RandomNormal({rows, 4}, 0, 1, rng);
  const float lhs = ops::SumAll(ops::Mul(ops::GatherRows(x, index), y));
  const float rhs = ops::SumAll(ops::Mul(x, ops::ScatterAddRows(y, index, n)));
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0f, std::fabs(lhs)));
}

TEST_P(GatherScatterSweepTest, SegmentSumMatchesScatterWithSortedIndex) {
  const int64_t segments = GetParam();
  Rng rng(static_cast<uint64_t>(segments) ^ 0xbeef);
  std::vector<int64_t> offsets{0};
  std::vector<int32_t> index;
  for (int64_t s = 0; s < segments; ++s) {
    const int64_t len = rng.NextBounded(5);
    for (int64_t i = 0; i < len; ++i) {
      index.push_back(static_cast<int32_t>(s));
    }
    offsets.push_back(static_cast<int64_t>(index.size()));
  }
  Tensor rows = ops::RandomNormal({static_cast<int64_t>(index.size()), 3}, 0, 1, rng);
  Tensor a = ops::SegmentSum(rows, offsets);
  Tensor b = ops::ScatterAddRows(rows, index, segments);
  EXPECT_TRUE(a.AllClose(b, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GatherScatterSweepTest, ::testing::Values(1, 5, 32, 257));

}  // namespace
}  // namespace seastar
