// Tests for the caching pool inside TensorAllocator: size-class rounding,
// reuse accounting, Trim, the pooling toggle, and the interaction with
// fault injection. Accounting (live/peak/budget) must be identical with and
// without pooling — only *where* the bytes come from changes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/fault.h"
#include "src/tensor/allocator.h"
#include "src/tensor/tensor.h"

namespace seastar {
namespace {

// Every counter test works in deltas: the allocator is process-global and
// other fixtures (gtest itself does not use it, but Tensor helpers do) may
// have touched it before this test body runs.
struct Counters {
  uint64_t total, fresh, hits, misses, reuse, pooled, trims, live, peak;

  static Counters Read() {
    TensorAllocator& a = TensorAllocator::Get();
    return {a.total_allocations(), a.fresh_mallocs(), a.pool_hits(),     a.pool_misses(),
            a.pool_reuse_bytes(),  a.pooled_bytes(),  a.trims(),         a.live_bytes(),
            a.peak_bytes()};
  }
};

TEST(AllocatorPoolTest, SizeClassBoundaries) {
  // <= 64 B collapses to the minimum class.
  EXPECT_EQ(TensorAllocator::SizeClassBytes(1), 64u);
  EXPECT_EQ(TensorAllocator::SizeClassBytes(63), 64u);
  EXPECT_EQ(TensorAllocator::SizeClassBytes(64), 64u);
  // Powers of two up to the page class.
  EXPECT_EQ(TensorAllocator::SizeClassBytes(65), 128u);
  EXPECT_EQ(TensorAllocator::SizeClassBytes(128), 128u);
  EXPECT_EQ(TensorAllocator::SizeClassBytes(129), 256u);
  EXPECT_EQ(TensorAllocator::SizeClassBytes(2049), 4096u);
  EXPECT_EQ(TensorAllocator::SizeClassBytes(4095), 4096u);
  EXPECT_EQ(TensorAllocator::SizeClassBytes(4096), 4096u);
  // Above one page: 4 KiB multiples, not powers of two.
  EXPECT_EQ(TensorAllocator::SizeClassBytes(4097), 8192u);
  EXPECT_EQ(TensorAllocator::SizeClassBytes(8192), 8192u);
  EXPECT_EQ(TensorAllocator::SizeClassBytes(8193), 12288u);
  EXPECT_EQ(TensorAllocator::SizeClassBytes(1000000), 1003520u);  // 245 pages.
}

TEST(AllocatorPoolTest, FreeThenAllocSameClassIsAPoolHit) {
  TensorAllocator& a = TensorAllocator::Get();
  a.SetPoolingEnabled(true);
  // An unusual size other tests will not race for; class = 245 pages.
  const size_t kBytes = 999937;
  const size_t kClass = TensorAllocator::SizeClassBytes(kBytes);

  const Counters before = Counters::Read();
  void* p1 = a.Allocate(kBytes);
  ASSERT_NE(p1, nullptr);
  a.Deallocate(p1, kBytes);
  Counters mid = Counters::Read();
  EXPECT_EQ(mid.pooled - before.pooled, kClass);  // Cached, not returned to OS.

  // Same request -> served from the free list: no fresh malloc, same block.
  void* p2 = a.Allocate(kBytes);
  Counters after = Counters::Read();
  EXPECT_EQ(p2, p1);
  EXPECT_EQ(after.hits - mid.hits, 1u);
  EXPECT_EQ(after.fresh, mid.fresh);
  EXPECT_EQ(after.reuse - mid.reuse, kClass);
  EXPECT_EQ(after.pooled, before.pooled);  // Block is live again.
  EXPECT_EQ(after.total - before.total, 2u);  // Requests count hits too.

  // A *different* request in the same class also hits: classes, not exact
  // sizes, key the free lists.
  a.Deallocate(p2, kBytes);
  const size_t kOtherBytes = kClass - 100;
  ASSERT_EQ(TensorAllocator::SizeClassBytes(kOtherBytes), kClass);
  void* p3 = a.Allocate(kOtherBytes);
  EXPECT_EQ(p3, p1);
  EXPECT_EQ(a.pool_hits() - after.hits, 1u);
  a.Deallocate(p3, kOtherBytes);
  a.Trim();
}

TEST(AllocatorPoolTest, TrimReleasesCachedBlocksAndReportsBytes) {
  TensorAllocator& a = TensorAllocator::Get();
  a.SetPoolingEnabled(true);
  a.Trim();  // Drain residue so the arithmetic below is exact.

  const size_t kBytes = 50000;
  const size_t kClass = TensorAllocator::SizeClassBytes(kBytes);
  const Counters before = Counters::Read();
  std::vector<void*> blocks;
  for (int i = 0; i < 3; ++i) {
    blocks.push_back(a.Allocate(kBytes));
  }
  for (void* p : blocks) {
    a.Deallocate(p, kBytes);
  }
  EXPECT_EQ(a.pooled_bytes(), 3 * kClass);

  const uint64_t freed = a.Trim();
  EXPECT_EQ(freed, 3 * kClass);
  EXPECT_EQ(a.pooled_bytes(), 0u);
  EXPECT_EQ(a.trims() - before.trims, 1u);

  // After a trim the next allocation is fresh again.
  const uint64_t fresh_before = a.fresh_mallocs();
  void* p = a.Allocate(kBytes);
  EXPECT_EQ(a.fresh_mallocs() - fresh_before, 1u);
  a.Deallocate(p, kBytes);
  a.Trim();
}

TEST(AllocatorPoolTest, DisablingPoolingBypassesFreeLists) {
  TensorAllocator& a = TensorAllocator::Get();
  a.SetPoolingEnabled(false);
  const size_t kBytes = 77777;

  const Counters before = Counters::Read();
  void* p1 = a.Allocate(kBytes);
  a.Deallocate(p1, kBytes);
  void* p2 = a.Allocate(kBytes);
  const Counters after = Counters::Read();

  // Both allocations hit the OS; the free went straight back to it.
  EXPECT_EQ(after.fresh - before.fresh, 2u);
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);  // Misses only count when pooling.
  EXPECT_EQ(after.pooled, before.pooled);

  a.Deallocate(p2, kBytes);
  a.SetPoolingEnabled(true);
}

TEST(AllocatorPoolTest, LiveAndPeakTrackRequestedBytesNotClassBytes) {
  TensorAllocator& a = TensorAllocator::Get();
  a.SetPoolingEnabled(true);
  const size_t kBytes = 100;  // Class is 128 B; accounting must say 100.

  const uint64_t live_before = a.live_bytes();
  void* p = a.Allocate(kBytes);
  EXPECT_EQ(a.live_bytes() - live_before, kBytes);
  a.Deallocate(p, kBytes);
  EXPECT_EQ(a.live_bytes(), live_before);

  // Pool hits go through the same accounting: a recycled block still counts
  // its *requested* bytes as live.
  void* q = a.Allocate(kBytes);
  EXPECT_EQ(a.live_bytes() - live_before, kBytes);
  a.Deallocate(q, kBytes);
  a.Trim();
}

TEST(AllocatorPoolTest, SoftBudgetSeesPooledReuseAllocations) {
  TensorAllocator& a = TensorAllocator::Get();
  a.SetPoolingEnabled(true);
  const size_t kBytes = 65536;

  // Prime the pool so the budget-breaching allocation is a pool hit.
  void* warm = a.Allocate(kBytes);
  a.Deallocate(warm, kBytes);

  a.SetSoftBudgetBytes(a.live_bytes() + kBytes / 2);
  ASSERT_FALSE(a.budget_exceeded());
  void* p = a.Allocate(kBytes);  // Served from pool, still breaches.
  EXPECT_TRUE(a.budget_exceeded());

  a.Deallocate(p, kBytes);
  a.SetSoftBudgetBytes(0);
  a.ClearBudgetExceeded();
  a.Trim();
}

TEST(AllocatorPoolTest, FaultInjectionLatchesOnPoolHitToo) {
  ScopedFaultClear guard;
  TensorAllocator& a = TensorAllocator::Get();
  a.SetPoolingEnabled(true);
  a.ClearInjectedFailure();
  const size_t kBytes = 131072;

  // Prime the pool, then arm: the next request is a pool hit, and the fault
  // must latch anyway — injection models allocation *requests* failing, not
  // malloc specifically.
  void* warm = a.Allocate(kBytes);
  a.Deallocate(warm, kBytes);
  const uint64_t hits_before = a.pool_hits();

  FaultInjector::Get().Arm(FaultSite::kTensorAlloc, /*after_n=*/0);
  void* p = a.Allocate(kBytes);
  ASSERT_NE(p, nullptr);  // The allocation itself still succeeds.
  EXPECT_TRUE(a.failure_injected());
  EXPECT_EQ(a.pool_hits() - hits_before, 1u);

  a.Deallocate(p, kBytes);
  a.ClearInjectedFailure();
  a.Trim();
}

TEST(AllocatorPoolTest, TensorRoundTripReusesStorage) {
  // End-to-end through Tensor: steady-state epochs allocate the same shapes,
  // so a construct/destruct/construct cycle must not touch malloc.
  TensorAllocator& a = TensorAllocator::Get();
  a.SetPoolingEnabled(true);
  {
    Tensor warm({173, 31});  // Warm the class.
  }
  const uint64_t fresh_before = a.fresh_mallocs();
  const uint64_t hits_before = a.pool_hits();
  for (int i = 0; i < 5; ++i) {
    Tensor t({173, 31});
    t.data()[0] = 1.0f;
  }
  EXPECT_EQ(a.fresh_mallocs(), fresh_before);
  EXPECT_EQ(a.pool_hits() - hits_before, 5u);
  a.Trim();
}

TEST(AllocatorPoolTest, BudgetPressureFromCachedBlocksTrimsInsteadOfLatching) {
  // Regression: a budget breach caused purely by blocks *cached on the free
  // lists* (a serving workload whose size-class mix shifted) must trim and
  // re-judge against live bytes, not latch budget_exceeded — pool
  // fragmentation is reclaimable and is not OOM.
  TensorAllocator& a = TensorAllocator::Get();
  a.SetPoolingEnabled(true);
  a.ClearBudgetExceeded();
  a.Trim();
  const size_t kBytes = 262144;

  std::vector<void*> warm;
  for (int i = 0; i < 4; ++i) {
    warm.push_back(a.Allocate(kBytes));
  }
  for (void* p : warm) {
    a.Deallocate(p, kBytes);  // Dead, but cached: pooled_bytes >= 4 classes.
  }
  ASSERT_GE(a.pooled_bytes(), 4 * kBytes);

  // Room for the next allocation's live bytes, not for live + cached.
  a.SetSoftBudgetBytes(a.live_bytes() + 2 * kBytes);
  const uint64_t budget_trims_before = a.budget_trims();
  void* p = a.Allocate(kBytes);

  EXPECT_FALSE(a.budget_exceeded());
  EXPECT_EQ(a.budget_trims() - budget_trims_before, 1u);
  EXPECT_EQ(a.pooled_bytes(), 0u);

  // A breach of *live* bytes still latches even right after a trim.
  void* q = a.Allocate(4 * kBytes);
  EXPECT_TRUE(a.budget_exceeded());

  a.Deallocate(p, kBytes);
  a.Deallocate(q, 4 * kBytes);
  a.SetSoftBudgetBytes(0);
  a.ClearBudgetExceeded();
  a.Trim();
}

}  // namespace
}  // namespace seastar
