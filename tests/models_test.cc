// Model-level tests: backend equivalence (same logits and gradients across
// Seastar/DGL-like/PyG-like execution), learning (loss decreases), and the
// memory ordering the paper reports (PyG materializes the most).
#include <gtest/gtest.h>

#include <memory>

#include "src/core/executor_factory.h"
#include "src/core/models/appnp.h"
#include "src/core/models/gat.h"
#include "src/core/models/gcn.h"
#include "src/core/models/rgcn.h"
#include "src/core/nn.h"
#include "src/core/train.h"
#include "src/tensor/allocator.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

Dataset SmallDataset(const std::string& name = "cora", double scale = 0.08) {
  DatasetOptions options;
  options.scale = scale;
  options.max_feature_dim = 32;
  return MakeDataset(*FindDataset(name), options);
}

std::shared_ptr<const Executor> Config(Backend backend) {
  BackendConfig config;
  config.backend = backend;
  return MakeExecutor(config);
}

TEST(GcnModelTest, ForwardShapeAndDeterminism) {
  Dataset data = SmallDataset();
  GcnConfig config;
  Gcn model(data, config, Config(Backend::kSeastar));
  Var logits = model.Forward(/*training=*/false);
  EXPECT_EQ(logits.value().dim(0), data.spec.num_vertices);
  EXPECT_EQ(logits.value().dim(1), data.spec.num_classes);
  Var again = model.Forward(/*training=*/false);
  EXPECT_TRUE(logits.value().AllClose(again.value(), 1e-5f));
}

TEST(GcnModelTest, AllBackendsProduceSameLogits) {
  Dataset data = SmallDataset();
  GcnConfig config;
  Tensor reference;
  for (Backend backend : {Backend::kSeastar, Backend::kSeastarNoFusion, Backend::kDglLike,
                          Backend::kPygLike}) {
    Gcn model(data, config, Config(backend));  // Same seed => same weights.
    Tensor logits = model.Forward(/*training=*/false).value();
    if (!reference.defined()) {
      reference = logits;
    } else {
      EXPECT_TRUE(reference.AllClose(logits, 1e-3f)) << BackendName(backend);
    }
  }
}

TEST(GcnModelTest, AllBackendsProduceSameGradients) {
  Dataset data = SmallDataset();
  GcnConfig config;
  std::vector<Tensor> reference;
  for (Backend backend : {Backend::kSeastar, Backend::kDglLike, Backend::kPygLike}) {
    Gcn model(data, config, Config(backend));
    Var loss = ag::NllLoss(ag::LogSoftmax(model.Forward(/*training=*/false)), data.labels,
                           data.train_mask);
    Backward(loss, Tensor::Ones({1}));
    std::vector<Var> params = model.Parameters();
    if (reference.empty()) {
      for (Var& p : params) {
        reference.push_back(p.grad().Clone());
      }
    } else {
      for (size_t i = 0; i < params.size(); ++i) {
        EXPECT_TRUE(reference[i].AllClose(params[i].grad(), 1e-3f))
            << BackendName(backend) << " param " << i;
      }
    }
  }
}

TEST(GcnModelTest, LossDecreasesOverTraining) {
  Dataset data = SmallDataset();
  GcnConfig config;
  Gcn model(data, config, Config(Backend::kSeastar));
  TrainConfig train;
  train.epochs = 30;
  train.warmup_epochs = 1;
  train.learning_rate = 0.02f;

  // First-epoch loss for comparison.
  Var first_loss = ag::NllLoss(ag::LogSoftmax(model.Forward(true)), data.labels,
                               data.train_mask);
  TrainResult result = TrainNodeClassification(model, data, train);
  EXPECT_FALSE(result.oom);
  EXPECT_EQ(result.epochs_run, 30);
  EXPECT_LT(result.final_loss, first_loss.value().at(0));
  EXPECT_GT(result.train_accuracy, 0.3f);  // Random labels; memorization only.
}

TEST(GatModelTest, AllBackendsProduceSameLogits) {
  Dataset data = SmallDataset("citeseer", 0.06);
  GatConfig config;
  config.num_heads = 2;
  config.hidden_dim = 4;
  Tensor reference;
  for (Backend backend : {Backend::kSeastar, Backend::kDglLike, Backend::kPygLike}) {
    Gat model(data, config, Config(backend));
    Tensor logits = model.Forward(/*training=*/false).value();
    if (!reference.defined()) {
      reference = logits;
    } else {
      EXPECT_TRUE(reference.AllClose(logits, 1e-3f)) << BackendName(backend);
    }
  }
}

TEST(GatModelTest, MultiHeadOutputWidths) {
  Dataset data = SmallDataset();
  GatConfig config;
  config.num_heads = 4;
  config.hidden_dim = 6;
  Gat model(data, config, Config(Backend::kSeastar));
  Var logits = model.Forward(false);
  EXPECT_EQ(logits.value().dim(1), data.spec.num_classes);
}

TEST(GatModelTest, TrainsToLowerLoss) {
  Dataset data = SmallDataset();
  GatConfig config;
  config.num_heads = 2;
  config.hidden_dim = 4;
  config.feat_dropout = 0.0f;
  Gat model(data, config, Config(Backend::kSeastar));
  TrainConfig train;
  train.epochs = 25;
  train.learning_rate = 0.02f;
  Var first_loss =
      ag::NllLoss(ag::LogSoftmax(model.Forward(true)), data.labels, data.train_mask);
  TrainResult result = TrainNodeClassification(model, data, train);
  EXPECT_LT(result.final_loss, first_loss.value().at(0));
}

TEST(AppnpModelTest, AllBackendsProduceSameLogits) {
  Dataset data = SmallDataset("pubmed", 0.02);
  AppnpConfig config;
  config.num_hops = 4;
  Tensor reference;
  for (Backend backend : {Backend::kSeastar, Backend::kDglLike, Backend::kPygLike}) {
    Appnp model(data, config, Config(backend));
    Tensor logits = model.Forward(/*training=*/false).value();
    if (!reference.defined()) {
      reference = logits;
    } else {
      EXPECT_TRUE(reference.AllClose(logits, 1e-3f)) << BackendName(backend);
    }
  }
}

TEST(AppnpModelTest, TeleportKeepsH0Influence) {
  // With alpha = 1 the propagation must return exactly h0 regardless of K.
  Dataset data = SmallDataset();
  AppnpConfig config;
  config.alpha = 1.0f;
  config.num_hops = 5;
  config.dropout = 0.0f;
  Appnp model(data, config, Config(Backend::kSeastar));
  AppnpConfig mlp_only = config;
  mlp_only.num_hops = 0;
  Appnp reference(data, mlp_only, Config(Backend::kSeastar));
  EXPECT_TRUE(model.Forward(false).value().AllClose(reference.Forward(false).value(), 1e-4f));
}

TEST(AppnpModelTest, TrainsToLowerLoss) {
  Dataset data = SmallDataset();
  AppnpConfig config;
  config.num_hops = 3;
  config.dropout = 0.0f;
  Appnp model(data, config, Config(Backend::kSeastar));
  TrainConfig train;
  train.epochs = 25;
  train.learning_rate = 0.05f;
  Var first_loss =
      ag::NllLoss(ag::LogSoftmax(model.Forward(true)), data.labels, data.train_mask);
  TrainResult result = TrainNodeClassification(model, data, train);
  EXPECT_LT(result.final_loss, first_loss.value().at(0));
}

TEST(RgcnModelTest, AllModesProduceSameLogits) {
  DatasetOptions options;
  options.scale = 0.03;
  Dataset data = MakeDataset(*FindDataset("aifb"), options);
  RgcnConfig config;
  Tensor reference;
  for (RgcnMode mode : {RgcnMode::kSeastar, RgcnMode::kDglBmm, RgcnMode::kPygBmm,
                        RgcnMode::kDglSequential, RgcnMode::kPygSequential}) {
    RgcnConfig mode_config = config;
    mode_config.mode = mode;
    Rgcn model(data, mode_config);  // Same seed => same weights.
    Tensor logits = model.Forward(/*training=*/false).value();
    if (!reference.defined()) {
      reference = logits;
    } else {
      EXPECT_TRUE(reference.AllClose(logits, 1e-3f)) << RgcnModeName(mode);
    }
  }
}

TEST(RgcnModelTest, SeastarAndSequentialGradientsMatch) {
  DatasetOptions options;
  options.scale = 0.02;
  Dataset data = MakeDataset(*FindDataset("aifb"), options);
  std::vector<Tensor> reference;
  for (RgcnMode mode : {RgcnMode::kSeastar, RgcnMode::kDglSequential}) {
    RgcnConfig config;
    config.mode = mode;
    Rgcn model(data, config);
    Var loss = ag::NllLoss(ag::LogSoftmax(model.Forward(false)), data.labels, data.train_mask);
    Backward(loss, Tensor::Ones({1}));
    std::vector<Var> params = model.Parameters();
    if (reference.empty()) {
      for (Var& p : params) {
        // Some relation weights may be untouched (no edges of that type).
        reference.push_back(p.grad().defined() ? p.grad().Clone() : Tensor());
      }
    } else {
      for (size_t i = 0; i < params.size(); ++i) {
        if (!reference[i].defined()) {
          continue;
        }
        if (!params[i].grad().defined()) {
          // The sequential path skips relations with no edges entirely; the
          // batched path produced an (all-zero) gradient for them.
          EXPECT_NEAR(ops::SumAll(ops::Mul(reference[i], reference[i])), 0.0f, 1e-8f) << i;
          continue;
        }
        EXPECT_TRUE(reference[i].AllClose(params[i].grad(), 1e-3f)) << i;
      }
    }
  }
}

TEST(RgcnModelTest, TrainsToLowerLoss) {
  DatasetOptions options;
  options.scale = 0.03;
  Dataset data = MakeDataset(*FindDataset("aifb"), options);
  RgcnConfig config;
  Rgcn model(data, config);
  TrainConfig train;
  train.epochs = 20;
  train.learning_rate = 0.02f;
  Var first_loss =
      ag::NllLoss(ag::LogSoftmax(model.Forward(true)), data.labels, data.train_mask);
  TrainResult result = TrainNodeClassification(model, data, train);
  EXPECT_LT(result.final_loss, first_loss.value().at(0));
}

TEST(MemoryTest, PygPeaksAboveSeastarOnDenseGraph) {
  // amz_comp-like: high average degree, where edge materialization dominates.
  DatasetOptions options;
  options.scale = 0.15;
  options.max_feature_dim = 32;
  Dataset data = MakeDataset(*FindDataset("amz_comp"), options);
  GatConfig config;
  config.num_heads = 2;
  config.hidden_dim = 8;

  TensorAllocator& allocator = TensorAllocator::Get();
  const auto peak_for = [&](Backend backend) {
    Gat model(data, config, Config(backend));
    allocator.ResetPeak();
    Var loss = ag::NllLoss(ag::LogSoftmax(model.Forward(true)), data.labels, data.train_mask);
    Backward(loss, Tensor::Ones({1}));
    return allocator.peak_bytes();
  };
  const uint64_t seastar_peak = peak_for(Backend::kSeastar);
  const uint64_t dgl_peak = peak_for(Backend::kDglLike);
  const uint64_t pyg_peak = peak_for(Backend::kPygLike);
  EXPECT_GT(pyg_peak, seastar_peak);
  EXPECT_GT(pyg_peak, dgl_peak);
  EXPECT_GE(dgl_peak, seastar_peak);
}

TEST(TrainerTest, OomFlagTriggersUnderTinyBudget) {
  Dataset data = SmallDataset();
  GcnConfig config;
  Gcn model(data, config, Config(Backend::kPygLike));
  TrainConfig train;
  train.epochs = 5;
  train.memory_budget_bytes = 1;  // Everything exceeds 1 byte.
  TrainResult result = TrainNodeClassification(model, data, train);
  EXPECT_TRUE(result.oom);
  EXPECT_LT(result.epochs_run, 5);
}

TEST(TrainerTest, ReportsTimingAndMemory) {
  Dataset data = SmallDataset();
  GcnConfig config;
  Gcn model(data, config, Config(Backend::kSeastar));
  TrainConfig train;
  train.epochs = 6;
  train.warmup_epochs = 2;
  TrainResult result = TrainNodeClassification(model, data, train);
  EXPECT_GT(result.avg_epoch_ms, 0.0);
  EXPECT_GT(result.peak_bytes, 0u);
  EXPECT_EQ(result.epochs_run, 6);
  EXPECT_FALSE(result.oom);
}

TEST(NnTest, AdamConvergesOnQuadratic) {
  // Minimize ||x - t||^2 for a fixed target t.
  Rng rng(1);
  Var x = Var::Leaf(ops::RandomNormal({8}, 0, 1, rng), true);
  Tensor target = ops::RandomNormal({8}, 0, 1, rng);
  Adam adam({x}, 0.1f);
  float last = 1e30f;
  for (int step = 0; step < 200; ++step) {
    Var diff = ag::Sub(x, Var::Leaf(target, false));
    Var sq = ag::Mul(diff, diff);
    Backward(sq, Tensor::Ones({8}));
    adam.Step();
    adam.ZeroGrad();
    last = ops::SumAll(sq.value());
  }
  EXPECT_LT(last, 1e-3f);
}

TEST(NnTest, SgdStepMovesAgainstGradient) {
  Var x = Var::Leaf(Tensor({2}, {1.0f, -1.0f}), true);
  Var y = ag::Mul(x, x);
  Backward(y, Tensor::Ones({2}));
  Sgd sgd({x}, 0.1f);
  sgd.Step();
  EXPECT_NEAR(x.value().at(0), 0.8f, 1e-6);   // 1 - 0.1*2
  EXPECT_NEAR(x.value().at(1), -0.8f, 1e-6);
}

TEST(NnTest, StackedRelationMatmulGradients) {
  Rng rng(2);
  Tensor x_val = ops::RandomNormal({5, 3}, 0, 1, rng);
  Var x = Var::Leaf(x_val, true);
  std::vector<Var> weights;
  for (int r = 0; r < 3; ++r) {
    weights.push_back(Var::Leaf(ops::RandomNormal({3, 2}, 0, 1, rng), true));
  }
  Var stack = StackedRelationMatmul(x, weights);
  ASSERT_EQ(stack.value().dim(0), 3);
  Backward(stack, Tensor::Ones({3, 5, 2}));
  // dW_r = X^T @ ones; dX = sum_r ones @ W_r^T.
  Tensor ones({5, 2});
  ones.Fill(1.0f);
  for (int r = 0; r < 3; ++r) {
    Tensor expected = ops::MatmulTransposeA(x_val, ones);
    EXPECT_TRUE(weights[static_cast<size_t>(r)].grad().AllClose(expected, 1e-4f)) << r;
  }
  Tensor dx_expected = Tensor::Zeros({5, 3});
  for (int r = 0; r < 3; ++r) {
    dx_expected = ops::Add(dx_expected,
                           ops::MatmulTransposeB(ones, weights[static_cast<size_t>(r)].value()));
  }
  EXPECT_TRUE(x.grad().AllClose(dx_expected, 1e-4f));
}

TEST(NnTest, AccuracyMetric) {
  Tensor logits({3, 2}, {0.9f, 0.1f, 0.2f, 0.8f, 0.7f, 0.3f});
  EXPECT_FLOAT_EQ(Accuracy(logits, {0, 1, 1}, {}), 2.0f / 3.0f);
  EXPECT_FLOAT_EQ(Accuracy(logits, {0, 1, 1}, {0, 1}), 1.0f);
}

}  // namespace
}  // namespace seastar
