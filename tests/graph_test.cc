#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "src/common/rng.h"
#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"

namespace seastar {
namespace {

// The example graph of paper Fig. 7: edges A->B etc. Vertices A=0,B=1,C=2,D=3.
Graph Fig7Graph(bool sorted) {
  // 7 directed edges: in-degrees A:3, B:2, C:1, D:1.
  std::vector<int32_t> src{1, 3, 2, 3, 1, 2, 0};
  std::vector<int32_t> dst{0, 0, 0, 1, 2, 3, 1};
  GraphOptions options;
  options.sort_by_degree = sorted;
  return Graph::FromCoo(4, std::move(src), std::move(dst), {}, 1, options);
}

TEST(CsrTest, DegreeSortedPositionsDescending) {
  Graph g = Fig7Graph(/*sorted=*/true);
  const Csr& csr = g.in_csr();
  for (int64_t k = 0; k + 1 < csr.num_vertices; ++k) {
    EXPECT_GE(csr.DegreeAtPosition(k), csr.DegreeAtPosition(k + 1));
  }
  // Vertex A (id 0, in-degree 3) must be at position 0.
  EXPECT_EQ(csr.position_vertex[0], 0);
  EXPECT_EQ(csr.vertex_position[0], 0);
}

TEST(CsrTest, UnsortedKeepsIdentityPermutation) {
  Graph g = Fig7Graph(/*sorted=*/false);
  const Csr& csr = g.in_csr();
  for (int64_t k = 0; k < csr.num_vertices; ++k) {
    EXPECT_EQ(csr.position_vertex[static_cast<size_t>(k)], k);
  }
}

TEST(CsrTest, OffsetsConsistentWithDegrees) {
  Graph g = Fig7Graph(true);
  const Csr& csr = g.in_csr();
  EXPECT_EQ(csr.offsets.front(), 0);
  EXPECT_EQ(csr.offsets.back(), g.num_edges());
  EXPECT_EQ(g.InDegree(0), 3);
  EXPECT_EQ(g.InDegree(1), 2);
  EXPECT_EQ(g.InDegree(2), 1);
  EXPECT_EQ(g.InDegree(3), 1);
}

TEST(CsrTest, SlotsContainExactlyTheInNeighbors) {
  Graph g = Fig7Graph(true);
  const Csr& csr = g.in_csr();
  const int64_t pos = csr.vertex_position[0];  // vertex A
  std::multiset<int32_t> nbrs;
  for (int64_t s = csr.offsets[static_cast<size_t>(pos)];
       s < csr.offsets[static_cast<size_t>(pos) + 1]; ++s) {
    nbrs.insert(csr.nbr_ids[static_cast<size_t>(s)]);
  }
  EXPECT_EQ(nbrs, (std::multiset<int32_t>{1, 2, 3}));
}

TEST(CsrTest, EdgeIdsMapBackToCooEndpoints) {
  Graph g = Fig7Graph(true);
  const Csr& csr = g.in_csr();
  for (int64_t k = 0; k < csr.num_vertices; ++k) {
    const int32_t dst = csr.position_vertex[static_cast<size_t>(k)];
    for (int64_t s = csr.offsets[static_cast<size_t>(k)];
         s < csr.offsets[static_cast<size_t>(k) + 1]; ++s) {
      const int32_t eid = csr.edge_ids[static_cast<size_t>(s)];
      EXPECT_EQ(g.edge_dst()[static_cast<size_t>(eid)], dst);
      EXPECT_EQ(g.edge_src()[static_cast<size_t>(eid)], csr.nbr_ids[static_cast<size_t>(s)]);
    }
  }
}

TEST(CsrTest, ReverseCsrCarriesForwardEdgeIds) {
  // §6.3.4: after flipping, the edge-id array must still identify original
  // edges (slot index alone would not).
  Graph g = Fig7Graph(true);
  const Csr& csr = g.out_csr();
  for (int64_t k = 0; k < csr.num_vertices; ++k) {
    const int32_t src = csr.position_vertex[static_cast<size_t>(k)];
    for (int64_t s = csr.offsets[static_cast<size_t>(k)];
         s < csr.offsets[static_cast<size_t>(k) + 1]; ++s) {
      const int32_t eid = csr.edge_ids[static_cast<size_t>(s)];
      EXPECT_EQ(g.edge_src()[static_cast<size_t>(eid)], src);
      EXPECT_EQ(g.edge_dst()[static_cast<size_t>(eid)], csr.nbr_ids[static_cast<size_t>(s)]);
    }
  }
}

TEST(CsrTest, EveryEdgeIdAppearsOncePerCsr) {
  Graph g = Fig7Graph(true);
  for (const Csr* csr : {&g.in_csr(), &g.out_csr()}) {
    std::set<int32_t> seen(csr->edge_ids.begin(), csr->edge_ids.end());
    EXPECT_EQ(static_cast<int64_t>(seen.size()), g.num_edges());
  }
}

TEST(GraphTest, HeteroSlotsSortedByType) {
  Rng rng(1);
  CooEdges edges = ErdosRenyi(50, 600, rng);
  auto types = RandomEdgeTypes(600, 5, rng);
  Graph g = Graph::FromCoo(50, std::move(edges.src), std::move(edges.dst), std::move(types), 5);
  for (const Csr* csr : {&g.in_csr(), &g.out_csr()}) {
    ASSERT_EQ(csr->edge_types.size(), 600u);
    for (int64_t k = 0; k < csr->num_vertices; ++k) {
      for (int64_t s = csr->offsets[static_cast<size_t>(k)] + 1;
           s < csr->offsets[static_cast<size_t>(k) + 1]; ++s) {
        EXPECT_LE(csr->edge_types[static_cast<size_t>(s - 1)],
                  csr->edge_types[static_cast<size_t>(s)]);
      }
    }
  }
}

TEST(GraphTest, HeteroEdgeTypesMatchCooAfterSorting) {
  Rng rng(2);
  CooEdges edges = ErdosRenyi(20, 100, rng);
  auto types = RandomEdgeTypes(100, 3, rng);
  auto types_copy = types;
  Graph g = Graph::FromCoo(20, std::move(edges.src), std::move(edges.dst), std::move(types), 3);
  const Csr& csr = g.in_csr();
  for (int64_t s = 0; s < g.num_edges(); ++s) {
    const int32_t eid = csr.edge_ids[static_cast<size_t>(s)];
    EXPECT_EQ(csr.edge_types[static_cast<size_t>(s)], types_copy[static_cast<size_t>(eid)]);
  }
}

TEST(GraphTest, StatsAndDebugString) {
  Graph g = Fig7Graph(true);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 7);
  EXPECT_EQ(g.MaxInDegree(), 3);
  EXPECT_NEAR(g.AverageInDegree(), 1.75, 1e-9);
  EXPECT_GT(g.IndexBytes(), 0u);
  EXPECT_NE(g.DebugString().find("|V|=4"), std::string::npos);
}

TEST(GeneratorTest, ErdosRenyiCountsAndDeterminism) {
  Rng rng1(7);
  Rng rng2(7);
  CooEdges a = ErdosRenyi(100, 500, rng1);
  CooEdges b = ErdosRenyi(100, 500, rng2);
  EXPECT_EQ(a.src.size(), 500u);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  for (int32_t v : a.src) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(GeneratorTest, RmatProducesHeavierSkewThanErdosRenyi) {
  Rng rng(11);
  const int64_t n = 2000;
  const int64_t m = 20000;
  Graph er = ToGraph(ErdosRenyi(n, m, rng));
  Graph rm = ToGraph(Rmat(n, m, rng));
  EXPECT_GT(rm.MaxInDegree(), 2 * er.MaxInDegree());
}

TEST(GeneratorTest, DeterministicShapes) {
  CooEdges star = Star(5);
  EXPECT_EQ(star.src.size(), 4u);
  for (int32_t d : star.dst) {
    EXPECT_EQ(d, 0);
  }
  EXPECT_EQ(Chain(5).src.size(), 4u);
  EXPECT_EQ(Cycle(5).src.size(), 5u);
  EXPECT_EQ(Complete(4).src.size(), 12u);
}

TEST(GeneratorTest, SelfLoopsAddOnePerVertex) {
  CooEdges edges = Chain(4);
  const size_t before = edges.src.size();
  AddSelfLoops(edges);
  EXPECT_EQ(edges.src.size(), before + 4);
  Graph g = ToGraph(std::move(edges));
  for (int32_t v = 0; v < 4; ++v) {
    EXPECT_GE(g.InDegree(v), 1);
  }
}

TEST(GeneratorTest, EdgeTypesInRangeAndSkewed) {
  Rng rng(13);
  auto types = RandomEdgeTypes(10000, 10, rng);
  std::vector<int> counts(10, 0);
  for (int32_t t : types) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 10);
    ++counts[static_cast<size_t>(t)];
  }
  EXPECT_GT(counts[0], counts[9]);  // Zipf-ish bias.
}

TEST(DatasetTest, CatalogMatchesPaperTable2) {
  ASSERT_EQ(DatasetCatalog().size(), 12u);
  const DatasetSpec* reddit = FindDataset("reddit");
  ASSERT_NE(reddit, nullptr);
  EXPECT_EQ(reddit->num_vertices, 198021);
  EXPECT_EQ(reddit->num_edges, 84120742);
  EXPECT_EQ(reddit->feature_dim, 602);
  const DatasetSpec* bgs = FindDataset("bgs");
  ASSERT_NE(bgs, nullptr);
  EXPECT_EQ(bgs->num_relations, 206);
  EXPECT_EQ(HomogeneousDatasets().size(), 9u);
  EXPECT_EQ(HeterogeneousDatasets().size(), 3u);
  EXPECT_EQ(FindDataset("nope"), nullptr);
}

TEST(DatasetTest, ScaledMaterialization) {
  DatasetOptions options;
  options.scale = 0.1;
  options.max_feature_dim = 64;
  Dataset d = MakeDatasetByName("pubmed", options);
  EXPECT_NEAR(d.spec.num_vertices, 1972, 2);
  EXPECT_EQ(d.spec.feature_dim, 64);
  EXPECT_EQ(d.features.dim(0), d.spec.num_vertices);
  EXPECT_EQ(d.features.dim(1), 64);
  EXPECT_EQ(static_cast<int64_t>(d.labels.size()), d.spec.num_vertices);
  EXPECT_FALSE(d.train_mask.empty());
  for (int32_t label : d.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, d.spec.num_classes);
  }
}

TEST(DatasetTest, SelfLoopsGiveNonzeroNorm) {
  DatasetOptions options;
  options.scale = 0.2;
  Dataset d = MakeDatasetByName("cora", options);
  for (int64_t v = 0; v < d.spec.num_vertices; ++v) {
    EXPECT_GT(d.gcn_norm.at(v, 0), 0.0f);
    EXPECT_LE(d.gcn_norm.at(v, 0), 1.0f);
  }
}

TEST(DatasetTest, HeteroDatasetHasTypesAndNoFeatures) {
  DatasetOptions options;
  options.scale = 0.2;
  Dataset d = MakeDatasetByName("aifb", options);
  EXPECT_GT(d.graph.num_edge_types(), 1);
  EXPECT_FALSE(d.features.defined());
  EXPECT_EQ(d.graph.edge_type().size(), static_cast<size_t>(d.graph.num_edges()));
}

TEST(DatasetTest, DeterministicForSameSeed) {
  DatasetOptions options;
  options.scale = 0.1;
  Dataset a = MakeDatasetByName("citeseer", options);
  Dataset b = MakeDatasetByName("citeseer", options);
  EXPECT_EQ(a.graph.edge_src(), b.graph.edge_src());
  EXPECT_TRUE(a.features.AllClose(b.features));
  EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace seastar
