#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>

#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/io.h"

namespace seastar {
namespace {

// The example graph of paper Fig. 7: edges A->B etc. Vertices A=0,B=1,C=2,D=3.
Graph Fig7Graph(bool sorted) {
  // 7 directed edges: in-degrees A:3, B:2, C:1, D:1.
  std::vector<int32_t> src{1, 3, 2, 3, 1, 2, 0};
  std::vector<int32_t> dst{0, 0, 0, 1, 2, 3, 1};
  GraphOptions options;
  options.sort_by_degree = sorted;
  return Graph::FromCoo(4, std::move(src), std::move(dst), {}, 1, options);
}

TEST(CsrTest, DegreeSortedPositionsDescending) {
  Graph g = Fig7Graph(/*sorted=*/true);
  const Csr& csr = g.in_csr();
  for (int64_t k = 0; k + 1 < csr.num_vertices; ++k) {
    EXPECT_GE(csr.DegreeAtPosition(k), csr.DegreeAtPosition(k + 1));
  }
  // Vertex A (id 0, in-degree 3) must be at position 0.
  EXPECT_EQ(csr.position_vertex[0], 0);
  EXPECT_EQ(csr.vertex_position[0], 0);
}

TEST(CsrTest, UnsortedKeepsIdentityPermutation) {
  Graph g = Fig7Graph(/*sorted=*/false);
  const Csr& csr = g.in_csr();
  for (int64_t k = 0; k < csr.num_vertices; ++k) {
    EXPECT_EQ(csr.position_vertex[static_cast<size_t>(k)], k);
  }
}

TEST(CsrTest, OffsetsConsistentWithDegrees) {
  Graph g = Fig7Graph(true);
  const Csr& csr = g.in_csr();
  EXPECT_EQ(csr.offsets.front(), 0);
  EXPECT_EQ(csr.offsets.back(), g.num_edges());
  EXPECT_EQ(g.InDegree(0), 3);
  EXPECT_EQ(g.InDegree(1), 2);
  EXPECT_EQ(g.InDegree(2), 1);
  EXPECT_EQ(g.InDegree(3), 1);
}

TEST(CsrTest, SlotsContainExactlyTheInNeighbors) {
  Graph g = Fig7Graph(true);
  const Csr& csr = g.in_csr();
  const int64_t pos = csr.vertex_position[0];  // vertex A
  std::multiset<int32_t> nbrs;
  for (int64_t s = csr.offsets[static_cast<size_t>(pos)];
       s < csr.offsets[static_cast<size_t>(pos) + 1]; ++s) {
    nbrs.insert(csr.nbr_ids[static_cast<size_t>(s)]);
  }
  EXPECT_EQ(nbrs, (std::multiset<int32_t>{1, 2, 3}));
}

TEST(CsrTest, EdgeIdsMapBackToCooEndpoints) {
  Graph g = Fig7Graph(true);
  const Csr& csr = g.in_csr();
  for (int64_t k = 0; k < csr.num_vertices; ++k) {
    const int32_t dst = csr.position_vertex[static_cast<size_t>(k)];
    for (int64_t s = csr.offsets[static_cast<size_t>(k)];
         s < csr.offsets[static_cast<size_t>(k) + 1]; ++s) {
      const int32_t eid = csr.edge_ids[static_cast<size_t>(s)];
      EXPECT_EQ(g.edge_dst()[static_cast<size_t>(eid)], dst);
      EXPECT_EQ(g.edge_src()[static_cast<size_t>(eid)], csr.nbr_ids[static_cast<size_t>(s)]);
    }
  }
}

TEST(CsrTest, ReverseCsrCarriesForwardEdgeIds) {
  // §6.3.4: after flipping, the edge-id array must still identify original
  // edges (slot index alone would not).
  Graph g = Fig7Graph(true);
  const Csr& csr = g.out_csr();
  for (int64_t k = 0; k < csr.num_vertices; ++k) {
    const int32_t src = csr.position_vertex[static_cast<size_t>(k)];
    for (int64_t s = csr.offsets[static_cast<size_t>(k)];
         s < csr.offsets[static_cast<size_t>(k) + 1]; ++s) {
      const int32_t eid = csr.edge_ids[static_cast<size_t>(s)];
      EXPECT_EQ(g.edge_src()[static_cast<size_t>(eid)], src);
      EXPECT_EQ(g.edge_dst()[static_cast<size_t>(eid)], csr.nbr_ids[static_cast<size_t>(s)]);
    }
  }
}

TEST(CsrTest, EveryEdgeIdAppearsOncePerCsr) {
  Graph g = Fig7Graph(true);
  for (const Csr* csr : {&g.in_csr(), &g.out_csr()}) {
    std::set<int32_t> seen(csr->edge_ids.begin(), csr->edge_ids.end());
    EXPECT_EQ(static_cast<int64_t>(seen.size()), g.num_edges());
  }
}

TEST(GraphTest, HeteroSlotsSortedByType) {
  Rng rng(1);
  CooEdges edges = ErdosRenyi(50, 600, rng);
  auto types = RandomEdgeTypes(600, 5, rng);
  Graph g = Graph::FromCoo(50, std::move(edges.src), std::move(edges.dst), std::move(types), 5);
  for (const Csr* csr : {&g.in_csr(), &g.out_csr()}) {
    ASSERT_EQ(csr->edge_types.size(), 600u);
    for (int64_t k = 0; k < csr->num_vertices; ++k) {
      for (int64_t s = csr->offsets[static_cast<size_t>(k)] + 1;
           s < csr->offsets[static_cast<size_t>(k) + 1]; ++s) {
        EXPECT_LE(csr->edge_types[static_cast<size_t>(s - 1)],
                  csr->edge_types[static_cast<size_t>(s)]);
      }
    }
  }
}

TEST(GraphTest, HeteroEdgeTypesMatchCooAfterSorting) {
  Rng rng(2);
  CooEdges edges = ErdosRenyi(20, 100, rng);
  auto types = RandomEdgeTypes(100, 3, rng);
  auto types_copy = types;
  Graph g = Graph::FromCoo(20, std::move(edges.src), std::move(edges.dst), std::move(types), 3);
  const Csr& csr = g.in_csr();
  for (int64_t s = 0; s < g.num_edges(); ++s) {
    const int32_t eid = csr.edge_ids[static_cast<size_t>(s)];
    EXPECT_EQ(csr.edge_types[static_cast<size_t>(s)], types_copy[static_cast<size_t>(eid)]);
  }
}

TEST(GraphTest, StatsAndDebugString) {
  Graph g = Fig7Graph(true);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 7);
  EXPECT_EQ(g.MaxInDegree(), 3);
  EXPECT_NEAR(g.AverageInDegree(), 1.75, 1e-9);
  EXPECT_GT(g.IndexBytes(), 0u);
  EXPECT_NE(g.DebugString().find("|V|=4"), std::string::npos);
}

TEST(GeneratorTest, ErdosRenyiCountsAndDeterminism) {
  Rng rng1(7);
  Rng rng2(7);
  CooEdges a = ErdosRenyi(100, 500, rng1);
  CooEdges b = ErdosRenyi(100, 500, rng2);
  EXPECT_EQ(a.src.size(), 500u);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  for (int32_t v : a.src) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(GeneratorTest, RmatProducesHeavierSkewThanErdosRenyi) {
  Rng rng(11);
  const int64_t n = 2000;
  const int64_t m = 20000;
  Graph er = ToGraph(ErdosRenyi(n, m, rng));
  Graph rm = ToGraph(Rmat(n, m, rng));
  EXPECT_GT(rm.MaxInDegree(), 2 * er.MaxInDegree());
}

TEST(GeneratorTest, DeterministicShapes) {
  CooEdges star = Star(5);
  EXPECT_EQ(star.src.size(), 4u);
  for (int32_t d : star.dst) {
    EXPECT_EQ(d, 0);
  }
  EXPECT_EQ(Chain(5).src.size(), 4u);
  EXPECT_EQ(Cycle(5).src.size(), 5u);
  EXPECT_EQ(Complete(4).src.size(), 12u);
}

TEST(GeneratorTest, SelfLoopsAddOnePerVertex) {
  CooEdges edges = Chain(4);
  const size_t before = edges.src.size();
  AddSelfLoops(edges);
  EXPECT_EQ(edges.src.size(), before + 4);
  Graph g = ToGraph(std::move(edges));
  for (int32_t v = 0; v < 4; ++v) {
    EXPECT_GE(g.InDegree(v), 1);
  }
}

TEST(GeneratorTest, EdgeTypesInRangeAndSkewed) {
  Rng rng(13);
  auto types = RandomEdgeTypes(10000, 10, rng);
  std::vector<int> counts(10, 0);
  for (int32_t t : types) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 10);
    ++counts[static_cast<size_t>(t)];
  }
  EXPECT_GT(counts[0], counts[9]);  // Zipf-ish bias.
}

TEST(DatasetTest, CatalogMatchesPaperTable2) {
  ASSERT_EQ(DatasetCatalog().size(), 12u);
  const DatasetSpec* reddit = FindDataset("reddit");
  ASSERT_NE(reddit, nullptr);
  EXPECT_EQ(reddit->num_vertices, 198021);
  EXPECT_EQ(reddit->num_edges, 84120742);
  EXPECT_EQ(reddit->feature_dim, 602);
  const DatasetSpec* bgs = FindDataset("bgs");
  ASSERT_NE(bgs, nullptr);
  EXPECT_EQ(bgs->num_relations, 206);
  EXPECT_EQ(HomogeneousDatasets().size(), 9u);
  EXPECT_EQ(HeterogeneousDatasets().size(), 3u);
  EXPECT_EQ(FindDataset("nope"), nullptr);
}

TEST(DatasetTest, ScaledMaterialization) {
  DatasetOptions options;
  options.scale = 0.1;
  options.max_feature_dim = 64;
  Dataset d = MakeDatasetByName("pubmed", options);
  EXPECT_NEAR(d.spec.num_vertices, 1972, 2);
  EXPECT_EQ(d.spec.feature_dim, 64);
  EXPECT_EQ(d.features.dim(0), d.spec.num_vertices);
  EXPECT_EQ(d.features.dim(1), 64);
  EXPECT_EQ(static_cast<int64_t>(d.labels.size()), d.spec.num_vertices);
  EXPECT_FALSE(d.train_mask.empty());
  for (int32_t label : d.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, d.spec.num_classes);
  }
}

TEST(DatasetTest, SelfLoopsGiveNonzeroNorm) {
  DatasetOptions options;
  options.scale = 0.2;
  Dataset d = MakeDatasetByName("cora", options);
  for (int64_t v = 0; v < d.spec.num_vertices; ++v) {
    EXPECT_GT(d.gcn_norm.at(v, 0), 0.0f);
    EXPECT_LE(d.gcn_norm.at(v, 0), 1.0f);
  }
}

TEST(DatasetTest, HeteroDatasetHasTypesAndNoFeatures) {
  DatasetOptions options;
  options.scale = 0.2;
  Dataset d = MakeDatasetByName("aifb", options);
  EXPECT_GT(d.graph.num_edge_types(), 1);
  EXPECT_FALSE(d.features.defined());
  EXPECT_EQ(d.graph.edge_type().size(), static_cast<size_t>(d.graph.num_edges()));
}

TEST(DatasetTest, DeterministicForSameSeed) {
  DatasetOptions options;
  options.scale = 0.1;
  Dataset a = MakeDatasetByName("citeseer", options);
  Dataset b = MakeDatasetByName("citeseer", options);
  EXPECT_EQ(a.graph.edge_src(), b.graph.edge_src());
  EXPECT_TRUE(a.features.AllClose(b.features));
  EXPECT_EQ(a.labels, b.labels);
}

TEST(DatasetTest, UnknownNameIsAStructuredError) {
  StatusOr<Dataset> missing = TryMakeDatasetByName("no-such-dataset", {});
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("no-such-dataset"), std::string::npos);
  // The error lists the valid catalogue so the caller can self-correct.
  EXPECT_NE(missing.status().message().find("cora"), std::string::npos);
}

// ---- Corrupt-fixture loader errors: every failure is a Status naming the
// file and the line (text) or byte offset (binary) — loaders never abort.

std::string CorruptFixturePath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void WriteText(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  out << body;
}

TEST(GraphIoErrorTest, MalformedTsvNamesFileAndLine) {
  const std::string path = CorruptFixturePath("corrupt_edges.tsv");
  WriteText(path, "# comment\n0\t1\n2\tnot_a_vertex\n");
  StatusOr<Graph> loaded = LoadEdgeListTsv(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find(path + ":3"), std::string::npos)
      << loaded.status().ToString();
  std::filesystem::remove(path);
}

TEST(GraphIoErrorTest, InconsistentTsvColumnsRejected) {
  const std::string path = CorruptFixturePath("mixed_columns.tsv");
  WriteText(path, "0\t1\t0\n1\t2\n");
  StatusOr<Graph> loaded = LoadEdgeListTsv(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.status().message().find(path + ":2"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("column"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(GraphIoErrorTest, BadMatrixMarketBannerRejected) {
  const std::string path = CorruptFixturePath("bad_banner.mtx");
  WriteText(path, "%%NotMatrixMarket whatever\n3 3 1\n1 2\n");
  StatusOr<Graph> loaded = LoadMatrixMarket(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find(path + ":1"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(GraphIoErrorTest, MatrixMarketIndexOutOfRangeRejected) {
  const std::string path = CorruptFixturePath("oob_index.mtx");
  WriteText(path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 2\n"
            "1 2\n"
            "9 1\n");  // Row 9 of a 3x3 matrix.
  StatusOr<Graph> loaded = LoadMatrixMarket(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("out of bounds"), std::string::npos)
      << loaded.status().ToString();
  std::filesystem::remove(path);
}

TEST(GraphIoErrorTest, MatrixMarketTruncatedEntryListIsDataLoss) {
  const std::string path = CorruptFixturePath("short_entries.mtx");
  WriteText(path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 4\n"  // Promises 4 entries, delivers 1.
            "1 2\n");
  StatusOr<Graph> loaded = LoadMatrixMarket(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(GraphIoErrorTest, TruncatedBinaryNamesByteOffset) {
  const std::string path = CorruptFixturePath("truncated_graph.ssg");
  Graph g = Fig7Graph(/*sorted=*/false);
  ASSERT_TRUE(SaveGraphBinary(g, path));
  const uintmax_t full_size = std::filesystem::file_size(path);
  ASSERT_GT(full_size, 12u);
  std::filesystem::resize_file(path, full_size - 9);

  StatusOr<Graph> loaded = LoadGraphBinary(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find(path), std::string::npos);
  // The message pinpoints where the bytes ran out.
  const bool names_offset =
      loaded.status().message().find("byte offset") != std::string::npos ||
      loaded.status().message().find("end of file") != std::string::npos;
  EXPECT_TRUE(names_offset) << loaded.status().ToString();
  std::filesystem::remove(path);
}

TEST(GraphIoErrorTest, BinaryWithWrongMagicRejectedUpFront) {
  const std::string path = CorruptFixturePath("wrong_magic.ssg");
  WriteText(path, "GIF89a definitely not a graph");
  StatusOr<Graph> loaded = LoadGraphBinary(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(GraphIoErrorTest, MissingFileIsNotFound) {
  StatusOr<Graph> loaded = LoadEdgeListTsv(CorruptFixturePath("never_written.tsv"));
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(GraphIoErrorTest, InjectedReadFaultSurfacesAsUnavailable) {
  ScopedFaultClear clear;
  const std::string path = CorruptFixturePath("fault_inject.tsv");
  WriteText(path, "0\t1\n1\t2\n");
  FaultInjector::Get().Arm(FaultSite::kGraphRead, /*after_n=*/0, /*count=*/1);

  StatusOr<Graph> faulted = LoadEdgeListTsv(path);
  ASSERT_FALSE(faulted.has_value());
  EXPECT_EQ(faulted.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(faulted.status().message().find("injected"), std::string::npos);

  // The single-shot window is spent: the very next read succeeds.
  StatusOr<Graph> ok = LoadEdgeListTsv(path);
  ASSERT_TRUE(ok.has_value()) << ok.status().ToString();
  EXPECT_EQ(ok->num_edges(), 2);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace seastar
