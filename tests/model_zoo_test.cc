// Tests for the extended model zoo (GraphSAGE, GIN, SGC): backend
// equivalence, shape checks, learning, and model-specific semantics.
#include <gtest/gtest.h>

#include "src/core/executor_factory.h"
#include "src/core/models/gin.h"
#include "src/core/models/sage.h"
#include "src/core/models/sgc.h"
#include "src/core/train.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

Dataset SmallDataset(const std::string& name = "cora", double scale = 0.08) {
  DatasetOptions options;
  options.scale = scale;
  options.max_feature_dim = 32;
  return MakeDataset(*FindDataset(name), options);
}

std::shared_ptr<const Executor> Config(Backend backend) {
  BackendConfig config;
  config.backend = backend;
  return MakeExecutor(config);
}

class ZooBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ZooBackendTest, SageMeanMatchesSeastar) {
  Dataset data = SmallDataset();
  SageConfig config;
  Sage reference(data, config, Config(Backend::kSeastar));
  Sage model(data, config, Config(GetParam()));
  EXPECT_TRUE(
      reference.Forward(false).value().AllClose(model.Forward(false).value(), 1e-3f));
}

TEST_P(ZooBackendTest, GinMatchesSeastar) {
  Dataset data = SmallDataset();
  GinConfig config;
  Gin reference(data, config, Config(Backend::kSeastar));
  Gin model(data, config, Config(GetParam()));
  EXPECT_TRUE(
      reference.Forward(false).value().AllClose(model.Forward(false).value(), 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Backends, ZooBackendTest,
                         ::testing::Values(Backend::kSeastarNoFusion, Backend::kDglLike,
                                           Backend::kPygLike),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           std::string name = BackendName(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(SageModelTest, PoolVariantRunsAndLearns) {
  Dataset data = SmallDataset();
  SageConfig config;
  config.aggregator = SageAggregator::kPool;
  config.dropout = 0.0f;
  Sage model(data, config, Config(Backend::kSeastar));
  Var first_loss =
      ag::NllLoss(ag::LogSoftmax(model.Forward(true)), data.labels, data.train_mask);
  TrainConfig train;
  train.epochs = 20;
  train.learning_rate = 0.02f;
  TrainResult result = TrainNodeClassification(model, data, train);
  EXPECT_LT(result.final_loss, first_loss.value().at(0));
}

TEST(SageModelTest, MeanVariantLearns) {
  Dataset data = SmallDataset();
  SageConfig config;
  config.dropout = 0.0f;
  Sage model(data, config, Config(Backend::kSeastar));
  Var first_loss =
      ag::NllLoss(ag::LogSoftmax(model.Forward(true)), data.labels, data.train_mask);
  TrainConfig train;
  train.epochs = 20;
  train.learning_rate = 0.02f;
  TrainResult result = TrainNodeClassification(model, data, train);
  EXPECT_LT(result.final_loss, first_loss.value().at(0));
}

TEST(GinModelTest, EpsilonScalesSelfContribution) {
  // On an isolated vertex (no in-edges beyond nothing), GIN output depends
  // only on (1 + eps) * h_v; doubling (1+eps) must scale the pre-MLP input.
  Dataset data = SmallDataset();
  GinConfig a;
  a.epsilon = 0.0f;
  a.dropout = 0.0f;
  GinConfig b = a;
  b.epsilon = 1.0f;
  Gin model_a(data, a, Config(Backend::kSeastar));
  Gin model_b(data, b, Config(Backend::kSeastar));
  // Same seed -> same MLP weights; different eps -> different logits.
  EXPECT_FALSE(
      model_a.Forward(false).value().AllClose(model_b.Forward(false).value(), 1e-3f));
}

TEST(GinModelTest, Learns) {
  Dataset data = SmallDataset();
  GinConfig config;
  config.dropout = 0.0f;
  Gin model(data, config, Config(Backend::kSeastar));
  Var first_loss =
      ag::NllLoss(ag::LogSoftmax(model.Forward(true)), data.labels, data.train_mask);
  TrainConfig train;
  train.epochs = 20;
  train.learning_rate = 0.02f;
  TrainResult result = TrainNodeClassification(model, data, train);
  EXPECT_LT(result.final_loss, first_loss.value().at(0));
}

TEST(SgcModelTest, PropagationIsBackendInvariant) {
  Dataset data = SmallDataset();
  SgcConfig config;
  Sgc a(data, config, Config(Backend::kSeastar));
  Sgc b(data, config, Config(Backend::kDglLike));
  Sgc c(data, config, Config(Backend::kPygLike));
  EXPECT_TRUE(a.propagated_features().AllClose(b.propagated_features(), 1e-3f));
  EXPECT_TRUE(a.propagated_features().AllClose(c.propagated_features(), 1e-3f));
}

TEST(SgcModelTest, ZeroHopsEqualsRawFeatures) {
  Dataset data = SmallDataset();
  SgcConfig config;
  config.num_hops = 0;
  Sgc model(data, config, Config(Backend::kSeastar));
  EXPECT_TRUE(model.propagated_features().AllClose(data.features, 1e-6f));
}

TEST(SgcModelTest, TrainsFastAndLearns) {
  Dataset data = SmallDataset();
  SgcConfig config;
  Sgc model(data, config, Config(Backend::kSeastar));
  Var first_loss =
      ag::NllLoss(ag::LogSoftmax(model.Forward(true)), data.labels, data.train_mask);
  TrainConfig train;
  train.epochs = 40;
  train.learning_rate = 0.05f;
  TrainResult result = TrainNodeClassification(model, data, train);
  EXPECT_LT(result.final_loss, first_loss.value().at(0));
  EXPECT_EQ(model.Parameters().size(), 2u);  // W and bias only.
}

}  // namespace
}  // namespace seastar
