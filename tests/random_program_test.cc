// Property-based testing over *randomly generated* vertex programs: for any
// well-typed program the fusion FSM may carve up however it likes, every
// execution strategy must compute the same forward values and the same
// gradients, and the execution plan must satisfy its structural invariants.
// This is the strongest guard on the compiler/executor stack: it explores
// operator DAG shapes no hand-written model exercises.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/exec/baseline_executor.h"
#include "src/exec/seastar_executor.h"
#include "src/gir/autodiff.h"
#include "src/gir/builder.h"
#include "src/gir/fusion.h"
#include "src/gir/passes.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

constexpr int32_t kWide = 6;

struct RandomProgram {
  GirGraph forward;
  BackwardGir backward;
};

// Builds a random well-typed vertex program over the fixed feature universe
// {a[1]:S, b[w]:S, c[w]:D, d[1]:D, e[1]:E}. Division and log are excluded to
// keep values finite for any input; exp is applied only to bounded values
// (post-tanh/sigmoid) to avoid overflow.
RandomProgram MakeRandomProgram(uint64_t seed, bool include_max_ops) {
  Rng rng(seed);
  GirBuilder b;
  std::vector<Value> pool{
      b.Src("a", 1), b.Src("b", kWide), b.Dst("c", kWide), b.Dst("d", 1), b.Edge("e", 1),
  };

  const auto pick = [&](auto&& predicate) -> Value {
    std::vector<Value> candidates;
    for (const Value& v : pool) {
      if (predicate(v)) {
        candidates.push_back(v);
      }
    }
    if (candidates.empty()) {
      return pool[rng.NextBounded(pool.size())];
    }
    return candidates[rng.NextBounded(candidates.size())];
  };
  const auto any = [](const Value&) { return true; };

  const int num_ops = 4 + static_cast<int>(rng.NextBounded(10));
  for (int i = 0; i < num_ops; ++i) {
    const uint64_t choice = rng.NextBounded(include_max_ops ? 10 : 9);
    Value result;
    switch (choice) {
      case 0: {
        Value x = pick(any);
        Value y = pick([&](const Value& v) { return v.width() == x.width() || v.width() == 1 ||
                                                    x.width() == 1; });
        result = x + y;
        break;
      }
      case 1: {
        Value x = pick(any);
        Value y = pick([&](const Value& v) { return v.width() == x.width() || v.width() == 1 ||
                                                    x.width() == 1; });
        result = x - y;
        break;
      }
      case 2: {
        Value x = pick(any);
        Value y = pick([&](const Value& v) { return v.width() == x.width() || v.width() == 1 ||
                                                    x.width() == 1; });
        result = x * y;
        break;
      }
      case 3:
        result = LeakyRelu(pick(any), 0.1f);
        break;
      case 4:
        result = Tanh(pick(any));
        break;
      case 5:
        result = Sigmoid(pick(any));
        break;
      case 6:
        result = Relu(pick(any));
        break;
      case 7: {
        Value x = pick([](const Value& v) { return v.type() != GraphType::kParam; });
        result = rng.NextBernoulli(0.5) ? AggSum(x, AggTo::kDst) : AggSum(x, AggTo::kSrc);
        break;
      }
      case 8: {
        Value x = pick([](const Value& v) { return v.type() != GraphType::kParam; });
        result = AggMean(x, AggTo::kDst);
        break;
      }
      case 9: {
        Value x = pick([](const Value& v) { return v.type() != GraphType::kParam; });
        result = AggMax(x, AggTo::kDst);
        break;
      }
    }
    pool.push_back(result);
  }

  // Output: force a D-typed aggregate of the last interesting value so every
  // program ends in a seastar pattern.
  Value out = pool.back();
  if (out.type() != GraphType::kDst) {
    out = AggSum(out, AggTo::kDst);
  }
  b.MarkOutput(Tanh(out), "out");  // Tanh keeps outputs bounded.

  RandomProgram program;
  PassResult passes = RunStandardPasses(b.graph());
  program.forward = std::move(passes.graph);
  program.backward = BuildBackward(program.forward, program.forward.outputs()[0]);
  OptimizeBackward(&program.backward);
  return program;
}

FeatureMap MakeFeatures(const Graph& g, uint64_t seed) {
  Rng rng(seed ^ 0xfeedbeef);
  FeatureMap features;
  features.vertex["a"] = ops::RandomNormal({g.num_vertices(), 1}, 0, 1, rng);
  features.vertex["b"] = ops::RandomNormal({g.num_vertices(), kWide}, 0, 1, rng);
  features.vertex["c"] = ops::RandomNormal({g.num_vertices(), kWide}, 0, 1, rng);
  features.vertex["d"] = ops::RandomNormal({g.num_vertices(), 1}, 0, 1, rng);
  features.edge["e"] = ops::RandomNormal({g.num_edges(), 1}, 0, 1, rng);
  return features;
}

Graph TestGraph(uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b9);
  CooEdges edges = rng.NextBernoulli(0.5) ? ErdosRenyi(40, 220, rng) : Rmat(40, 220, rng);
  AddSelfLoops(edges);
  return ToGraph(std::move(edges));
}

class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, PlanInvariantsHold) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomProgram program = MakeRandomProgram(seed, /*include_max_ops=*/true);
  for (const GirGraph* gir : {&program.forward, &program.backward.graph}) {
    ExecutionPlan plan = BuildExecutionPlan(*gir);
    // 1. Every compute node is in exactly one unit.
    std::set<int32_t> seen;
    for (const FusedUnit& unit : plan.units) {
      for (int32_t id : unit.nodes) {
        EXPECT_TRUE(seen.insert(id).second) << "node in two units";
      }
    }
    for (const Node& node : gir->nodes()) {
      const bool compute = !IsLeaf(node.kind) && node.type != GraphType::kParam;
      EXPECT_EQ(seen.count(node.id) == 1, compute) << "%" << node.id;
    }
    // 2. One aggregation orientation per unit.
    for (const FusedUnit& unit : plan.units) {
      std::set<GraphType> orientations;
      for (int32_t id : unit.nodes) {
        if (IsAggregation(gir->node(id).kind)) {
          orientations.insert(gir->node(id).type);
        }
      }
      EXPECT_LE(orientations.size(), 1u);
    }
    // 3. Cross-unit reads point backwards (acyclic, topologically ordered).
    for (const Node& node : gir->nodes()) {
      if (node.id >= static_cast<int32_t>(plan.unit_of.size())) {
        continue;
      }
      const int32_t my_unit = plan.unit_of[static_cast<size_t>(node.id)];
      if (my_unit < 0) {
        continue;
      }
      for (int32_t input : node.inputs) {
        const int32_t in_unit = plan.unit_of[static_cast<size_t>(input)];
        if (in_unit >= 0 && in_unit != my_unit) {
          EXPECT_LT(in_unit, my_unit);
          EXPECT_TRUE(plan.materialized[static_cast<size_t>(input)])
              << "cross-unit value not materialized";
        }
      }
    }
    // 4. Pre-stage ops never consume same-unit aggregation results.
    for (const Node& node : gir->nodes()) {
      if (node.id >= static_cast<int32_t>(plan.unit_of.size()) ||
          plan.unit_of[static_cast<size_t>(node.id)] < 0 ||
          plan.stage[static_cast<size_t>(node.id)] != NodeStage::kPre) {
        continue;
      }
      for (int32_t input : node.inputs) {
        if (plan.unit_of[static_cast<size_t>(input)] ==
            plan.unit_of[static_cast<size_t>(node.id)]) {
          EXPECT_NE(plan.stage[static_cast<size_t>(input)], NodeStage::kAgg);
          EXPECT_NE(plan.stage[static_cast<size_t>(input)], NodeStage::kPost);
        }
      }
    }
  }
}

TEST_P(RandomProgramTest, AllExecutorsAgreeOnForward) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomProgram program = MakeRandomProgram(seed, /*include_max_ops=*/true);
  Graph g = TestGraph(seed);
  FeatureMap features = MakeFeatures(g, seed);

  SeastarExecutor fused;
  SeastarExecutorOptions nofuse_options;
  nofuse_options.enable_fusion = false;
  SeastarExecutor unfused(nofuse_options);
  BaselineExecutor dgl({BaselineFlavor::kDglLike, true});
  BaselineExecutor pyg({BaselineFlavor::kPygLike, true});

  Tensor reference = fused.Run(program.forward, g, features).outputs.at("out");
  EXPECT_TRUE(reference.AllClose(unfused.Run(program.forward, g, features).outputs.at("out"),
                                 1e-4f))
      << "unfused";
  EXPECT_TRUE(reference.AllClose(dgl.Run(program.forward, g, features).outputs.at("out"), 1e-4f))
      << "dgl";
  EXPECT_TRUE(reference.AllClose(pyg.Run(program.forward, g, features).outputs.at("out"), 1e-4f))
      << "pyg";
}

TEST_P(RandomProgramTest, BackendsAgreeOnGradients) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  // AggMax excluded: tie-breaking of equal maxima may legitimately differ
  // between a sequential register max and an atomic max.
  RandomProgram program = MakeRandomProgram(seed, /*include_max_ops=*/false);
  Graph g = TestGraph(seed);
  FeatureMap features = MakeFeatures(g, seed);

  SeastarExecutor seastar;
  BaselineExecutor dgl({BaselineFlavor::kDglLike, true});

  Tensor out = seastar.Run(program.forward, g, features).outputs.at("out");
  FeatureMap bwd_features = features;
  Rng rng(seed ^ 0x5eed);
  bwd_features.vertex[kGradInputKey] = ops::RandomNormal(out.shape(), 0, 1, rng);

  RunResult rs = seastar.Run(program.backward.graph, g, bwd_features);
  RunResult rd = dgl.Run(program.backward.graph, g, bwd_features);
  for (const InputGradInfo& info : program.backward.input_grads) {
    SCOPED_TRACE(info.output_name);
    EXPECT_TRUE(
        rs.outputs.at(info.output_name).AllClose(rd.outputs.at(info.output_name), 1e-3f));
  }
}

TEST_P(RandomProgramTest, GradientsMatchFiniteDifferences) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  if (seed % 4 != 0) {
    GTEST_SKIP() << "finite differences sampled on every 4th seed (cost)";
  }
  RandomProgram program = MakeRandomProgram(seed, /*include_max_ops=*/false);
  Rng small_rng(seed);
  CooEdges edges = ErdosRenyi(8, 24, small_rng);
  AddSelfLoops(edges);
  Graph g = ToGraph(std::move(edges));
  FeatureMap features = MakeFeatures(g, seed);

  SeastarExecutor ex;
  const auto loss = [&] {
    return ops::SumAll(ex.Run(program.forward, g, features).outputs.at("out"));
  };
  Tensor out = ex.Run(program.forward, g, features).outputs.at("out");
  FeatureMap bwd = features;
  bwd.vertex[kGradInputKey] = Tensor::Ones(out.shape());
  RunResult result = ex.Run(program.backward.graph, g, bwd);

  // Accumulate per-key analytic gradients (a key may be read from both
  // endpoints).
  std::map<std::string, Tensor> grads;
  for (const InputGradInfo& info : program.backward.input_grads) {
    if (info.access == GraphType::kEdge) {
      continue;  // Spot-check vertex features only.
    }
    const Tensor& piece = result.outputs.at(info.output_name);
    auto it = grads.find(info.key);
    if (it == grads.end()) {
      grads[info.key] = piece.Clone();
    } else {
      it->second = ops::Add(it->second, piece);
    }
  }
  for (auto& [key, analytic] : grads) {
    Tensor& value = features.vertex.at(key);
    for (int64_t i = 0; i < value.numel(); i += 3) {  // Sample every 3rd element.
      const float eps = 1e-2f;
      const float saved = value.at(i);
      value.at(i) = saved + eps;
      const float up = loss();
      value.at(i) = saved - eps;
      const float down = loss();
      value.at(i) = saved;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(analytic.at(i), numeric, 5e-2f * std::max(1.0f, std::fabs(numeric)))
          << key << " element " << i << " (seed " << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(0, 24));

}  // namespace
}  // namespace seastar
