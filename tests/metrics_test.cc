// Tests for the always-on metrics registry (src/common/metrics.h) and the
// crash-grade flight recorder (src/common/flight_recorder.h): histogram
// bucket math, multi-threaded accumulation, the Prometheus/JSON exporters,
// the pull-callback path, ring wraparound, and the zero-lookup discipline
// the instrumented hot paths promise.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/core/backend.h"
#include "src/core/executor_factory.h"
#include "src/core/models/gcn.h"
#include "src/core/nn.h"
#include "src/exec/plan_cache.h"
#include "src/graph/datasets.h"
#include "src/parallel/simt.h"
#include "src/tensor/allocator.h"
#include "src/tensor/autograd.h"

namespace seastar {
namespace {

using metrics::CallbackKind;
using metrics::Counter;
using metrics::Gauge;
using metrics::Histogram;
using metrics::HistogramSnapshot;
using metrics::MetricsRegistry;

// ---- Histogram bucket math ----------------------------------------------------------------------

TEST(HistogramBucketTest, ValueNeverExceedsItsBucketUpperBound) {
  for (double v = 0.001; v < 1e7; v *= 1.37) {
    const int bucket = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(bucket)) << "value " << v;
  }
}

TEST(HistogramBucketTest, RelativeErrorBoundedByOneSubBucket) {
  // The upper bound a quantile reports overshoots the true value by at most
  // one sub-bucket width: a factor of (1 + 1/kSubBuckets).
  const double max_ratio = 1.0 + 1.0 / Histogram::kSubBuckets;
  for (double v = 0.002; v < 1e7; v *= 1.618) {
    const double bound = Histogram::BucketUpperBound(Histogram::BucketIndex(v));
    EXPECT_LE(bound / v, max_ratio + 1e-12) << "value " << v;
  }
}

TEST(HistogramBucketTest, BucketIndexIsMonotone) {
  int last = -1;
  for (double v = 0.0005; v < 1e8; v *= 1.05) {
    const int bucket = Histogram::BucketIndex(v);
    EXPECT_GE(bucket, last) << "value " << v;
    last = bucket;
  }
}

TEST(HistogramBucketTest, UpperBoundsStrictlyIncreaseAcrossLogBuckets) {
  for (int b = 1; b + 1 < Histogram::kNumBuckets - 1; ++b) {
    EXPECT_LT(Histogram::BucketUpperBound(b), Histogram::BucketUpperBound(b + 1)) << b;
  }
}

TEST(HistogramBucketTest, OutOfRangeAndPathologicalValuesClampToEdgeBuckets) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<double>::quiet_NaN()), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e-12), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e30), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<double>::infinity()),
            Histogram::kNumBuckets - 1);
  EXPECT_TRUE(std::isinf(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1)));
}

TEST(HistogramBucketTest, OctaveBoundaryLandsInTheOctavesFirstSubBucket) {
  // 1.0 = 0.5 * 2^1: first sub-bucket of the exp=1 octave.
  const int bucket = Histogram::BucketIndex(1.0);
  EXPECT_EQ(bucket, 1 + (1 - Histogram::kMinExp) * Histogram::kSubBuckets);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(bucket),
                   1.0 + 1.0 / Histogram::kSubBuckets);
}

// ---- Histogram recording ------------------------------------------------------------------------

TEST(HistogramTest, QuantilesTrackAUniformSweepWithinBucketError) {
  Histogram hist("test_sweep_ms");
  for (int i = 1; i <= 1000; ++i) {
    hist.Record(static_cast<double>(i));
  }
  const HistogramSnapshot snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.count, 1000);
  EXPECT_DOUBLE_EQ(snapshot.sum, 500500.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 1000.0);
  // Quantiles are reported as bucket upper bounds: never below the true
  // quantile, at most one sub-bucket (6.25%) above it.
  EXPECT_GE(snapshot.p50, 500.0);
  EXPECT_LE(snapshot.p50, 500.0 * 1.07);
  EXPECT_GE(snapshot.p95, 950.0);
  EXPECT_LE(snapshot.p95, 950.0 * 1.07);
  EXPECT_GE(snapshot.p99, 990.0);
  EXPECT_LE(snapshot.p99, 1000.0);
}

TEST(HistogramTest, EmptySnapshotIsAllZeros) {
  Histogram hist("test_empty_ms");
  const HistogramSnapshot snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.count, 0);
  EXPECT_EQ(snapshot.sum, 0.0);
  EXPECT_EQ(snapshot.p99, 0.0);
  EXPECT_EQ(snapshot.max, 0.0);
}

TEST(HistogramTest, SingleObservationQuantilesClampToExactMax) {
  Histogram hist("test_single_ms");
  hist.Record(3.0);
  const HistogramSnapshot snapshot = hist.Snapshot();
  // The bucket bound would overshoot 3.0; the snapshot clamps to the max.
  EXPECT_DOUBLE_EQ(snapshot.p50, 3.0);
  EXPECT_DOUBLE_EQ(snapshot.p99, 3.0);
}

TEST(HistogramTest, ConcurrentRecordsLoseNothing) {
  Histogram hist("test_mt_ms");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(1.0);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const HistogramSnapshot snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.count, int64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(snapshot.sum, static_cast<double>(kThreads) * kPerThread);
}

// ---- Counters / gauges --------------------------------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter("test_mt_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add(1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, SetAndAddCompose) {
  Gauge gauge("test_gauge");
  gauge.Set(2.0);
  gauge.Add(0.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

// ---- Registry -----------------------------------------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateReturnsStableHandlesAndCountsLookups) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.lookups(), 0);
  Counter* a = registry.GetCounter("test_requests_total");
  Counter* b = registry.GetCounter("test_requests_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.lookups(), 2);
  a->Add(5);
  EXPECT_EQ(b->value(), 5);
}

TEST(MetricsRegistryTest, TextExpositionGolden) {
  MetricsRegistry registry;
  registry.GetCounter("test_requests_total")->Add(3);
  registry.GetGauge("test_depth")->Set(2.5);
  Histogram* hist = registry.GetHistogram("test_latency_ms");
  hist->Record(1.0);
  hist->Record(1.0);
  registry.RegisterCallback("test_pulled_total", CallbackKind::kCounter,
                            [] { return 7.0; });
  EXPECT_EQ(registry.TextExposition(),
            "# TYPE test_requests_total counter\n"
            "test_requests_total 3\n"
            "# TYPE test_pulled_total counter\n"
            "test_pulled_total 7\n"
            "# TYPE test_depth gauge\n"
            "test_depth 2.5\n"
            "# TYPE test_latency_ms summary\n"
            "test_latency_ms{quantile=\"0.5\"} 1\n"
            "test_latency_ms{quantile=\"0.95\"} 1\n"
            "test_latency_ms{quantile=\"0.99\"} 1\n"
            "test_latency_ms_count 2\n"
            "test_latency_ms_sum 2\n"
            "test_latency_ms_max 1\n");
}

TEST(MetricsRegistryTest, LabelledSeriesShareOneTypeLineAndSuffixBeforeBraces) {
  MetricsRegistry registry;
  registry.GetCounter("test_x_total{k=\"a\"}")->Add(1);
  registry.GetCounter("test_x_total{k=\"b\"}")->Add(2);
  registry.GetHistogram("test_h_ms{k=\"a\"}")->Record(1.0);
  const std::string text = registry.TextExposition();
  // One # TYPE line covers both labelled counter series.
  EXPECT_EQ(text.find("# TYPE test_x_total counter"),
            text.rfind("# TYPE test_x_total counter"));
  EXPECT_NE(text.find("test_x_total{k=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("test_x_total{k=\"b\"} 2\n"), std::string::npos);
  // _count/_sum insert before the label braces; quantile joins the label set.
  EXPECT_NE(text.find("test_h_ms_count{k=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("test_h_ms{k=\"a\",quantile=\"0.5\"}"), std::string::npos);
}

TEST(MetricsRegistryTest, CallbackReRegistrationReplaces) {
  MetricsRegistry registry;
  registry.RegisterCallback("test_cb", CallbackKind::kGauge, [] { return 1.0; });
  registry.RegisterCallback("test_cb", CallbackKind::kGauge, [] { return 9.0; });
  EXPECT_NE(registry.TextExposition().find("test_cb 9\n"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonSnapshotCarriesAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("test_requests_total")->Add(3);
  registry.GetGauge("test_depth")->Set(2.5);
  registry.GetHistogram("test_latency_ms")->Record(4.0);
  registry.RegisterCallback("test_pulled_entries", CallbackKind::kGauge,
                            [] { return 11.0; });
  const std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test_requests_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test_pulled_entries\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

// ---- Label escaping -----------------------------------------------------------------------------

TEST(EscapeLabelValueTest, PassesCleanValuesThrough) {
  EXPECT_EQ(metrics::EscapeLabelValue("tenant-a"), "tenant-a");
  EXPECT_EQ(metrics::EscapeLabelValue(""), "");
}

TEST(EscapeLabelValueTest, EscapesBackslashQuoteAndNewline) {
  EXPECT_EQ(metrics::EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(metrics::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(metrics::EscapeLabelValue("a\nb"), "a\\nb");
  // A hostile tenant name cannot break out of its label: the escaped form
  // contains no raw quote or newline, so the series stays one sample line.
  const std::string escaped = metrics::EscapeLabelValue("evil\"} 1\ninjected_total 9{x=\"");
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '"') {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(escaped[i - 1], '\\') << "raw quote at " << i;
    }
  }
}

TEST(EscapeLabelValueTest, EscapedTenantSeriesStaysParseable) {
  MetricsRegistry registry;
  const std::string name =
      "test_tenant_total{tenant=\"" + metrics::EscapeLabelValue("a\"b\\c") + "\"}";
  registry.GetCounter(name)->Add(1);
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("test_tenant_total{tenant=\"a\\\"b\\\\c\"} 1\n"), std::string::npos)
      << text;
}

// ---- Histogram exemplars ------------------------------------------------------------------------

TEST(HistogramExemplarTest, KeepsTheLargestObservationsWithTheirTraceIds) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test_exemplar_ms");
  // 2 * kExemplarSlots observations; only the largest kExemplarSlots survive.
  for (int i = 1; i <= 2 * Histogram::kExemplarSlots; ++i) {
    hist->RecordWithExemplar(static_cast<double>(i), 0x1000u + static_cast<uint64_t>(i));
  }
  const std::vector<metrics::Exemplar> exemplars = hist->Exemplars();
  ASSERT_EQ(exemplars.size(), static_cast<size_t>(Histogram::kExemplarSlots));
  for (int i = 0; i < Histogram::kExemplarSlots; ++i) {
    const double want_value = static_cast<double>(2 * Histogram::kExemplarSlots - i);
    EXPECT_EQ(exemplars[static_cast<size_t>(i)].value, want_value) << "sorted descending";
    EXPECT_EQ(exemplars[static_cast<size_t>(i)].trace_id,
              0x1000u + static_cast<uint64_t>(want_value));
  }
  EXPECT_EQ(hist->count(), 2 * Histogram::kExemplarSlots)
      << "RecordWithExemplar must still feed the histogram";
}

TEST(HistogramExemplarTest, ZeroTraceIdRecordsValueButNoExemplar) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test_exemplar_zero_ms");
  hist->RecordWithExemplar(5.0, 0);
  EXPECT_EQ(hist->count(), 1);
  EXPECT_TRUE(hist->Exemplars().empty());
}

TEST(HistogramExemplarTest, ExportersCarryTheTopExemplar) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test_exemplar_export_ms");
  hist->RecordWithExemplar(2.0, 0xaaULL);
  hist->RecordWithExemplar(9.0, 0xbeefULL);
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("test_exemplar_export_ms_max 9 "
                      "# {trace_id=\"000000000000beef\"} 9\n"),
            std::string::npos)
      << text;
  const std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": \"000000000000beef\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": \"00000000000000aa\""), std::string::npos);
}

// ---- Zero-lookup steady state -------------------------------------------------------------------

TEST(MetricsSteadyStateTest, InstrumentedHotPathsDoNoRegistryLookups) {
  // The SIMT scheduler resolves its counters once per process (a function-
  // local static); after a warm-up launch, further launches must not touch
  // the registry at all — the per-event cost is relaxed adds on cached
  // handles. lookups() counts every Get*/RegisterCallback ever made, so a
  // zero delta across three launches proves the discipline.
  SimtLaunchParams params;
  params.num_blocks = 64;
  params.schedule = BlockSchedule::kChunkedDynamic;
  LaunchBlocks(params, [](int64_t, int) {});  // Warm: resolve cached handles.

  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter* dispatches =
      registry.GetCounter("seastar_simt_dispatches_total{schedule=\"dynamic\"}");
  const int64_t dispatches_before = dispatches->value();
  const int64_t lookups_before = registry.lookups();
  for (int i = 0; i < 3; ++i) {
    LaunchBlocks(params, [](int64_t, int) {});
  }
  EXPECT_EQ(registry.lookups(), lookups_before);
  EXPECT_GT(dispatches->value(), dispatches_before);
}

TEST(MetricsSteadyStateTest, SteadyTrainingEpochsAddNoAllocationsOrLookups) {
  // The acceptance bar for always-on metrics: with no exporter attached, a
  // steady-state epoch performs zero *additional* allocations and zero
  // registry lookups compared to the uninstrumented loop. Warm epochs fill
  // the allocator pool, the plan cache, and every cached metric handle;
  // steady epochs then must neither fresh-malloc nor touch the registry.
  DatasetOptions options;
  options.scale = 0.05;
  options.max_feature_dim = 16;
  Dataset data = MakeDataset(*FindDataset("cora"), options);
  BackendConfig backend;
  backend.backend = Backend::kSeastar;
  GcnConfig config;
  config.hidden_dim = 8;
  Gcn model(data, config, MakeExecutor(backend));
  std::vector<Var> parameters = model.Parameters();
  Adam adam(parameters, /*lr=*/0.01f);

  const auto epoch = [&] {
    Var logits = model.Forward(/*training=*/true);
    Var loss = ag::NllLoss(ag::LogSoftmax(logits), data.labels, data.train_mask);
    Backward(loss, Tensor::Ones({1}));
    adam.Step();
    adam.ZeroGrad();
  };
  for (int i = 0; i < 3; ++i) {
    epoch();  // Warm: pool, plan cache, and metric handles all resolve.
  }

  TensorAllocator& allocator = TensorAllocator::Get();
  MetricsRegistry& registry = MetricsRegistry::Get();
  PlanCache& plans = PlanCache::Get();
  const uint64_t fresh_before = allocator.fresh_mallocs();
  const uint64_t plan_misses_before = plans.misses();
  const int64_t lookups_before = registry.lookups();
  for (int i = 0; i < 3; ++i) {
    epoch();
  }
  EXPECT_EQ(allocator.fresh_mallocs(), fresh_before);
  EXPECT_EQ(plans.misses(), plan_misses_before);
  EXPECT_EQ(registry.lookups(), lookups_before);
}

// ---- Flight recorder ----------------------------------------------------------------------------

TEST(FlightRecorderTest, KeepsTheNewestEventsInOrderAcrossWraparound) {
  FlightRecorder& recorder = FlightRecorder::Get();
  const uint64_t recorded_before = recorder.recorded();
  const int kEvents = FlightRecorder::kCapacity + 100;
  for (int i = 0; i < kEvents; ++i) {
    recorder.Record("mtest", "wrap", i, 2 * i);
  }
  EXPECT_EQ(recorder.recorded(), recorded_before + kEvents);

  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_LE(events.size(), static_cast<size_t>(FlightRecorder::kCapacity));
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  // The newest event survives wraparound with its payload intact.
  const FlightEvent& last = events.back();
  EXPECT_STREQ(last.category, "mtest");
  EXPECT_EQ(last.a, kEvents - 1);
  EXPECT_EQ(last.b, 2 * (kEvents - 1));
  EXPECT_EQ(last.seq, recorder.recorded());
}

TEST(FlightRecorderTest, TruncatesOverlongFieldsInsteadOfOverflowing) {
  FlightRecorder& recorder = FlightRecorder::Get();
  const std::string long_detail(500, 'x');
  recorder.Record("category-name-beyond-slot-width", long_detail, 1);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_FALSE(events.empty());
  const FlightEvent& event = events.back();
  EXPECT_LT(std::string(event.category).size(), sizeof(event.category));
  EXPECT_LT(std::string(event.detail).size(), sizeof(event.detail));
}

TEST(FlightRecorderTest, DumpRendersCategoriesAndPayloads) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Record("mtest", "dump probe", 42);
  const std::string dump = recorder.Dump();
  EXPECT_NE(dump.find("mtest"), std::string::npos);
  EXPECT_NE(dump.find("dump probe"), std::string::npos);
  EXPECT_NE(dump.find("a=42"), std::string::npos);
}

TEST(FlightRecorderDeathTest, CrashDumpHookWritesRingAndMetricsToStderr) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        FlightRecorder::InstallCrashDump();
        MetricsRegistry::Get().GetCounter("test_crash_total")->Add(1);
        FlightRecorder::Get().Record("mtest", "moments before disaster", 7);
        SEASTAR_CHECK(false) << "deliberate";
      },
      "moments before disaster(.|\n)*test_crash_total");
}

TEST(FlightRecorderTest, ConcurrentWritersNeverTearEvents) {
  FlightRecorder& recorder = FlightRecorder::Get();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record("mt", "race", t, i);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Every surviving slot must be internally consistent: a published "mt"
  // event carries a thread id and iteration inside the written ranges.
  for (const FlightEvent& event : recorder.Snapshot()) {
    if (std::string(event.category) == "mt") {
      EXPECT_GE(event.a, 0);
      EXPECT_LT(event.a, kThreads);
      EXPECT_GE(event.b, 0);
      EXPECT_LT(event.b, kPerThread);
    }
  }
}

}  // namespace
}  // namespace seastar
