// Fault-tolerance tests: deterministic fault injection, checkpoint
// durability (roundtrip, corruption detection, atomic replace), and the
// training loop's recovery policy (kill/resume equivalence, rollback on
// injected allocation failures, bounded retries, recovery profiler spans).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/fault.h"
#include "src/common/profiler.h"
#include "src/common/rng.h"
#include "src/core/checkpoint.h"
#include "src/core/executor_factory.h"
#include "src/core/models/gcn.h"
#include "src/core/train.h"
#include "src/parallel/simt.h"
#include "src/tensor/allocator.h"

namespace seastar {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Dataset SmallDataset() {
  DatasetOptions options;
  options.scale = 0.05;
  options.max_feature_dim = 16;
  return MakeDataset(*FindDataset("cora"), options);
}

std::shared_ptr<const Executor> SeastarBackend() {
  BackendConfig config;
  config.backend = Backend::kSeastar;
  return MakeExecutor(config);
}

// ---- FaultInjector ------------------------------------------------------------------------------

TEST(FaultInjectorTest, DisarmedSitesNeverFire) {
  ScopedFaultClear clear;
  FaultInjector& faults = FaultInjector::Get();
  EXPECT_FALSE(faults.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(faults.ShouldFail(FaultSite::kTensorAlloc));
  }
  EXPECT_EQ(faults.injected(FaultSite::kTensorAlloc), 0);
}

TEST(FaultInjectorTest, AfterWindowFiresOnExactHits) {
  ScopedFaultClear clear;
  FaultInjector& faults = FaultInjector::Get();
  faults.Arm(FaultSite::kGraphRead, /*after_n=*/2, /*count=*/2);
  EXPECT_TRUE(faults.enabled());
  // Hits 1..2 pass, hits 3..4 fail, hit 5 passes again.
  EXPECT_FALSE(faults.ShouldFail(FaultSite::kGraphRead));
  EXPECT_FALSE(faults.ShouldFail(FaultSite::kGraphRead));
  EXPECT_TRUE(faults.ShouldFail(FaultSite::kGraphRead));
  EXPECT_TRUE(faults.ShouldFail(FaultSite::kGraphRead));
  EXPECT_FALSE(faults.ShouldFail(FaultSite::kGraphRead));
  EXPECT_EQ(faults.hits(FaultSite::kGraphRead), 5);
  EXPECT_EQ(faults.injected(FaultSite::kGraphRead), 2);
  // Other sites are unaffected.
  EXPECT_FALSE(faults.ShouldFail(FaultSite::kCheckpointWrite));
}

TEST(FaultInjectorTest, ProbabilisticStreamIsReproducible) {
  ScopedFaultClear clear;
  FaultInjector& faults = FaultInjector::Get();
  const auto draw_sequence = [&faults]() {
    faults.ArmProbabilistic(FaultSite::kCheckpointRead, 0.3, /*seed=*/99);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(faults.ShouldFail(FaultSite::kCheckpointRead));
    }
    faults.Disarm(FaultSite::kCheckpointRead);
    return fired;
  };
  const std::vector<bool> first = draw_sequence();
  const std::vector<bool> second = draw_sequence();
  EXPECT_EQ(first, second);
  // With p=0.3 over 64 draws both outcomes must occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST(FaultInjectorTest, SpecGrammarArmsSites) {
  ScopedFaultClear clear;
  FaultInjector& faults = FaultInjector::Get();
  std::string error;
  ASSERT_TRUE(faults.ConfigureFromSpec("alloc:after=1:count=1;ckpt_write", &error)) << error;
  EXPECT_TRUE(faults.enabled());
  // alloc: hit 1 passes, hit 2 fails.
  EXPECT_FALSE(faults.ShouldFail(FaultSite::kTensorAlloc));
  EXPECT_TRUE(faults.ShouldFail(FaultSite::kTensorAlloc));
  // Bare site name fails its first hit.
  EXPECT_TRUE(faults.ShouldFail(FaultSite::kCheckpointWrite));
}

TEST(FaultInjectorTest, MalformedSpecIsRejectedWithMessage) {
  ScopedFaultClear clear;
  std::string error;
  EXPECT_FALSE(FaultInjector::Get().ConfigureFromSpec("not_a_site:after=1", &error));
  EXPECT_NE(error.find("not_a_site"), std::string::npos);
  error.clear();
  EXPECT_FALSE(FaultInjector::Get().ConfigureFromSpec("alloc:after=banana", &error));
  EXPECT_FALSE(error.empty());
}

TEST(FaultInjectorTest, UnknownSiteErrorListsEveryValidSite) {
  // The rejection message is the documentation a user sees when a --faults=
  // spec has a typo; it must enumerate every site the injector knows,
  // generated from the enum so it can never drift as sites are added.
  ScopedFaultClear clear;
  std::string error;
  EXPECT_FALSE(FaultInjector::Get().ConfigureFromSpec("bogus_site:after=1", &error));
  EXPECT_NE(error.find("bogus_site"), std::string::npos) << error;
  for (int i = 0; i < static_cast<int>(FaultSite::kNumSites); ++i) {
    const char* name = FaultSiteName(static_cast<FaultSite>(i));
    EXPECT_NE(error.find(name), std::string::npos)
        << "error does not list site '" << name << "': " << error;
  }
}

TEST(FaultInjectorTest, ShardSitesParseAndArmFromSpec) {
  ScopedFaultClear clear;
  FaultInjector& faults = FaultInjector::Get();
  ASSERT_TRUE(faults.ConfigureFromSpec(
      "shard_send:after=1;shard_recv:after=0;shard_combine:p=0.5:seed=3;shard_worker"));
  EXPECT_TRUE(faults.enabled());
  EXPECT_FALSE(faults.ShouldFail(FaultSite::kShardSend));  // Hit 0: window opens at 1.
  EXPECT_TRUE(faults.ShouldFail(FaultSite::kShardSend));   // Hit 1 fails.
  EXPECT_TRUE(faults.ShouldFail(FaultSite::kShardRecv));
  EXPECT_TRUE(faults.ShouldFail(FaultSite::kShardWorker));  // Bare name: first hit.
}

TEST(FaultInjectorTest, SiteNamesRoundTrip) {
  for (int i = 0; i < static_cast<int>(FaultSite::kNumSites); ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    const std::optional<FaultSite> parsed = FaultSiteFromString(FaultSiteName(site));
    ASSERT_TRUE(parsed.has_value()) << FaultSiteName(site);
    EXPECT_EQ(*parsed, site);
  }
  EXPECT_FALSE(FaultSiteFromString("bogus").has_value());
}

// ---- Checkpoint I/O -----------------------------------------------------------------------------

TrainCheckpoint SampleCheckpoint() {
  TrainCheckpoint checkpoint;
  checkpoint.epoch = 17;
  checkpoint.learning_rate = 0.005f;
  checkpoint.retries_used = 2;
  checkpoint.best_loss = 0.731f;
  Rng rng(123);
  rng.NextGaussian();  // Engage the Box-Muller cache so it is exercised too.
  checkpoint.model_rng = rng.SaveState();
  checkpoint.parameters.push_back(Tensor({2, 3}, {1.0f, -2.0f, 3.5f, 0.0f, 4.25f, -0.5f}));
  checkpoint.parameters.push_back(Tensor({3}, {9.0f, 8.0f, 7.0f}));
  checkpoint.has_adam = true;
  checkpoint.adam_t = 42;
  for (const Tensor& p : checkpoint.parameters) {
    checkpoint.adam_m.push_back(Tensor::Zeros(p.shape()));
    checkpoint.adam_v.push_back(Tensor::Ones(p.shape()));
  }
  return checkpoint;
}

void ExpectTensorsEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

TEST(CheckpointTest, SaveLoadRoundTripPreservesEveryField) {
  const std::string path = TempPath("seastar_ckpt_roundtrip.ckpt");
  const TrainCheckpoint saved = SampleCheckpoint();
  ASSERT_TRUE(SaveCheckpoint(saved, path).ok());

  StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, saved.epoch);
  EXPECT_EQ(loaded->learning_rate, saved.learning_rate);
  EXPECT_EQ(loaded->retries_used, saved.retries_used);
  EXPECT_EQ(loaded->best_loss, saved.best_loss);
  ASSERT_TRUE(loaded->model_rng.has_value());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded->model_rng->words[i], saved.model_rng->words[i]);
  }
  EXPECT_EQ(loaded->model_rng->have_cached_gaussian, saved.model_rng->have_cached_gaussian);
  EXPECT_EQ(loaded->model_rng->cached_gaussian, saved.model_rng->cached_gaussian);
  ASSERT_EQ(loaded->parameters.size(), saved.parameters.size());
  for (size_t p = 0; p < saved.parameters.size(); ++p) {
    ExpectTensorsEqual(loaded->parameters[p], saved.parameters[p]);
  }
  ASSERT_TRUE(loaded->has_adam);
  EXPECT_EQ(loaded->adam_t, saved.adam_t);
  ASSERT_EQ(loaded->adam_m.size(), saved.adam_m.size());
  for (size_t p = 0; p < saved.adam_m.size(); ++p) {
    ExpectTensorsEqual(loaded->adam_m[p], saved.adam_m[p]);
    ExpectTensorsEqual(loaded->adam_v[p], saved.adam_v[p]);
  }
  std::filesystem::remove(path);
}

TEST(CheckpointTest, RestoredRngContinuesTheSameStream) {
  const std::string path = TempPath("seastar_ckpt_rng.ckpt");
  Rng original(7);
  for (int i = 0; i < 5; ++i) {
    original.NextGaussian();  // Advance mid-stream (odd draw: cache engaged).
  }
  TrainCheckpoint checkpoint;
  checkpoint.model_rng = original.SaveState();
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path).ok());
  StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().ToString();

  Rng restored;
  restored.RestoreState(*loaded->model_rng);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(restored.NextGaussian(), original.NextGaussian()) << "draw " << i;
    EXPECT_EQ(restored.NextUint64(), original.NextUint64()) << "draw " << i;
  }
  std::filesystem::remove(path);
}

TEST(CheckpointTest, FlippedByteIsCaughtByChecksum) {
  const std::string path = TempPath("seastar_ckpt_corrupt.ckpt");
  ASSERT_TRUE(SaveCheckpoint(SampleCheckpoint(), path).ok());

  // Flip one payload byte (header is 24 bytes; 40 is well inside the payload).
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekg(40);
    char byte = 0;
    file.read(&byte, 1);
    byte ^= 0x5a;
    file.seekp(40);
    file.write(&byte, 1);
  }

  StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("checksum mismatch"), std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find(path), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, TruncatedFileNamesTheCutOffset) {
  const std::string path = TempPath("seastar_ckpt_truncated.ckpt");
  ASSERT_TRUE(SaveCheckpoint(SampleCheckpoint(), path).ok());
  const uintmax_t full_size = std::filesystem::file_size(path);
  ASSERT_GT(full_size, 32u);
  std::filesystem::resize_file(path, full_size - 16);

  StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("truncated payload"), std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("byte offset"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, NotACheckpointFileIsRejectedAtTheMagic) {
  const std::string path = TempPath("seastar_ckpt_badmagic.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a checkpoint";
  }
  StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, MissingFileIsNotFoundNotAbort) {
  const std::string path = TempPath("seastar_ckpt_does_not_exist.ckpt");
  std::filesystem::remove(path);
  StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, InterruptedWriteLeavesPreviousCheckpointIntact) {
  ScopedFaultClear clear;
  const std::string path = TempPath("seastar_ckpt_atomic.ckpt");
  TrainCheckpoint first = SampleCheckpoint();
  first.epoch = 3;
  ASSERT_TRUE(SaveCheckpoint(first, path).ok());

  // Simulate a crash mid-write: the injected fault truncates the tmp file
  // and returns before the rename.
  FaultInjector::Get().Arm(FaultSite::kCheckpointWrite, /*after_n=*/0);
  TrainCheckpoint second = SampleCheckpoint();
  second.epoch = 9;
  const Status interrupted = SaveCheckpoint(second, path);
  EXPECT_FALSE(interrupted.ok());
  EXPECT_EQ(interrupted.code(), StatusCode::kUnavailable);
  FaultInjector::Get().DisarmAll();

  // The previous snapshot is still the one at `path`, still valid.
  StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 3);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

TEST(CheckpointTest, InjectedReadFaultSurfacesAsUnavailable) {
  ScopedFaultClear clear;
  const std::string path = TempPath("seastar_ckpt_readfault.ckpt");
  ASSERT_TRUE(SaveCheckpoint(SampleCheckpoint(), path).ok());
  FaultInjector::Get().Arm(FaultSite::kCheckpointRead, /*after_n=*/0);
  StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, SaveRotatesPreviousGenerationToPrev) {
  const std::string path = TempPath("seastar_ckpt_rotate.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");

  TrainCheckpoint first = SampleCheckpoint();
  first.epoch = 3;
  ASSERT_TRUE(SaveCheckpoint(first, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".prev"));  // Nothing to rotate yet.

  TrainCheckpoint second = SampleCheckpoint();
  second.epoch = 9;
  ASSERT_TRUE(SaveCheckpoint(second, path).ok());

  StatusOr<TrainCheckpoint> primary = LoadCheckpoint(path);
  ASSERT_TRUE(primary.has_value()) << primary.status().ToString();
  EXPECT_EQ(primary->epoch, 9);
  // The rotated generation is itself a complete, loadable checkpoint.
  StatusOr<TrainCheckpoint> previous = LoadCheckpoint(path + ".prev");
  ASSERT_TRUE(previous.has_value()) << previous.status().ToString();
  EXPECT_EQ(previous->epoch, 3);

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");
}

TEST(CheckpointTest, CorruptPrimaryFallsBackToPrevGeneration) {
  const std::string path = TempPath("seastar_ckpt_fallback.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");

  TrainCheckpoint first = SampleCheckpoint();
  first.epoch = 5;
  ASSERT_TRUE(SaveCheckpoint(first, path).ok());
  TrainCheckpoint second = SampleCheckpoint();
  second.epoch = 11;
  ASSERT_TRUE(SaveCheckpoint(second, path).ok());

  // Bit rot in the newest snapshot: flip a payload byte.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekg(40);
    char byte = 0;
    file.read(&byte, 1);
    byte ^= 0x5a;
    file.seekp(40);
    file.write(&byte, 1);
  }

  StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 5);  // One generation behind, but alive.

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");
}

TEST(CheckpointTest, TruncatedPrimaryFallsBackToPrevGeneration) {
  const std::string path = TempPath("seastar_ckpt_fallback_trunc.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");

  TrainCheckpoint first = SampleCheckpoint();
  first.epoch = 2;
  ASSERT_TRUE(SaveCheckpoint(first, path).ok());
  TrainCheckpoint second = SampleCheckpoint();
  second.epoch = 8;
  ASSERT_TRUE(SaveCheckpoint(second, path).ok());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 16);

  StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 2);

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");
}

TEST(CheckpointTest, TransientReadFaultDoesNotFallBackToStalePrev) {
  // A transient I/O fault is retryable against the *newer* snapshot;
  // silently resuming one generation behind would lose good epochs.
  ScopedFaultClear clear;
  const std::string path = TempPath("seastar_ckpt_noprevontransient.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");

  TrainCheckpoint first = SampleCheckpoint();
  first.epoch = 4;
  ASSERT_TRUE(SaveCheckpoint(first, path).ok());
  TrainCheckpoint second = SampleCheckpoint();
  second.epoch = 10;
  ASSERT_TRUE(SaveCheckpoint(second, path).ok());

  FaultInjector::Get().Arm(FaultSite::kCheckpointRead, /*after_n=*/0, /*count=*/1);
  StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
  FaultInjector::Get().DisarmAll();

  // And the retry (fault exhausted) reads the newest generation.
  StatusOr<TrainCheckpoint> retried = LoadCheckpoint(path);
  ASSERT_TRUE(retried.has_value()) << retried.status().ToString();
  EXPECT_EQ(retried->epoch, 10);

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");
}

TEST(CheckpointTest, Fnv1a64MatchesReferenceVectors) {
  // Reference values for the 64-bit FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

// ---- Training-loop recovery ---------------------------------------------------------------------

TEST(TrainRecoveryTest, KillAndResumeReachesTheSameFinalLoss) {
  ScopedFaultClear clear;
  const std::string path = TempPath("seastar_train_resume.ckpt");
  std::filesystem::remove(path);
  Dataset data = SmallDataset();
  GcnConfig config;

  // Reference: one uninterrupted 12-epoch run.
  TrainConfig train;
  train.epochs = 12;
  train.warmup_epochs = 1;
  train.learning_rate = 0.02f;
  float reference_loss = 0.0f;
  {
    Gcn model(data, config, SeastarBackend());
    TrainResult result = TrainNodeClassification(model, data, train);
    ASSERT_FALSE(result.failed) << result.error;
    ASSERT_EQ(result.epochs_run, 12);
    reference_loss = result.final_loss;
  }

  // "Killed" run: stop after 7 epochs, final checkpoint written at exit.
  {
    Gcn model(data, config, SeastarBackend());
    TrainConfig partial = train;
    partial.epochs = 7;
    partial.checkpoint_path = path;
    partial.checkpoint_every = 5;
    TrainResult result = TrainNodeClassification(model, data, partial);
    ASSERT_FALSE(result.failed) << result.error;
    EXPECT_GE(result.checkpoints_written, 2);  // Epoch 5 + final epoch 7.
  }

  // Fresh process stand-in: a new model resumes from the checkpoint and
  // finishes the remaining 5 epochs.
  {
    Gcn model(data, config, SeastarBackend());
    TrainConfig resumed = train;
    resumed.checkpoint_path = path;
    resumed.checkpoint_every = 5;
    resumed.resume = true;
    TrainResult result = TrainNodeClassification(model, data, resumed);
    ASSERT_FALSE(result.failed) << result.error;
    EXPECT_EQ(result.start_epoch, 7);
    EXPECT_EQ(result.epochs_run, 12);
    // Parameters, Adam moments/step and the dropout RNG stream were all
    // restored, so the resumed trajectory is the uninterrupted one.
    EXPECT_NEAR(result.final_loss, reference_loss, 1e-6f);
  }
  std::filesystem::remove(path);
}

TEST(TrainRecoveryTest, ResumeFromMissingCheckpointFailsCleanly) {
  const std::string path = TempPath("seastar_train_missing.ckpt");
  std::filesystem::remove(path);
  Dataset data = SmallDataset();
  GcnConfig config;
  Gcn model(data, config, SeastarBackend());
  TrainConfig train;
  train.epochs = 4;
  train.resume = true;
  train.checkpoint_path = path;
  TrainResult result = TrainNodeClassification(model, data, train);
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.error.find(path), std::string::npos) << result.error;
  EXPECT_EQ(result.epochs_run, 0);
}

TEST(TrainRecoveryTest, InjectedAllocFailureRollsBackAndRecovers) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  GcnConfig config;
  Gcn model(data, config, SeastarBackend());

  // Fire a single allocation failure a little way into training; the loop
  // must roll back to its anchor, back off the learning rate, and finish.
  FaultInjector::Get().Arm(FaultSite::kTensorAlloc, /*after_n=*/100, /*count=*/1);

  Profiler profiler;
  TrainConfig train;
  train.epochs = 8;
  train.warmup_epochs = 1;
  train.learning_rate = 0.02f;
  train.checkpoint_every = 2;  // In-memory anchor refresh only (no path).
  train.profiler = &profiler;
  TrainResult result = TrainNodeClassification(model, data, train);

  ASSERT_FALSE(result.failed) << result.error;
  EXPECT_EQ(result.epochs_run, 8);
  ASSERT_EQ(result.rollbacks, 1);
  ASSERT_EQ(result.recovery_events.size(), 1u);
  const RecoveryEvent& event = result.recovery_events[0];
  EXPECT_EQ(event.kind, "alloc_failure");
  EXPECT_EQ(event.retry, 1);
  EXPECT_NEAR(event.lr_after, 0.01f, 1e-6f);  // 0.02 * 0.5 backoff.
  EXPECT_GE(event.rollback_epoch, 0);
  EXPECT_LE(event.rollback_epoch, event.epoch);
  EXPECT_TRUE(std::isfinite(result.final_loss));

  // The recovery is visible in the trace as a "recovery" span.
  bool saw_recovery_span = false;
  for (const ProfileEvent& span : profiler.events()) {
    if (span.category == "recovery") {
      saw_recovery_span = true;
      EXPECT_EQ(span.name, "alloc_failure");
    }
  }
  EXPECT_TRUE(saw_recovery_span);
}

TEST(TrainRecoveryTest, RetriesAreBoundedAndFailureIsStructured) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  GcnConfig config;
  Gcn model(data, config, SeastarBackend());

  // An absurd learning rate corrupts the parameters on every step, so each
  // retry blows up again; the loop must give up after max_retries rollbacks
  // with a structured error instead of looping forever or aborting.
  TrainConfig train;
  train.epochs = 50;
  train.warmup_epochs = 0;
  train.learning_rate = 1e20f;
  train.max_retries = 2;
  TrainResult result = TrainNodeClassification(model, data, train);

  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.error.find("retries exhausted"), std::string::npos) << result.error;
  EXPECT_EQ(result.rollbacks, 3);  // max_retries + the one that exhausted them.
  ASSERT_GE(result.recovery_events.size(), 3u);
  for (const RecoveryEvent& event : result.recovery_events) {
    EXPECT_TRUE(event.kind == "non_finite_loss" || event.kind == "divergence" ||
                event.kind == "non_finite_grad")
        << event.kind;
  }
}

TEST(TrainRecoveryTest, HealthChecksCanBeDisabled) {
  Dataset data = SmallDataset();
  GcnConfig config;
  Gcn model(data, config, SeastarBackend());
  TrainConfig train;
  train.epochs = 3;
  train.warmup_epochs = 0;
  train.learning_rate = 1e20f;
  train.health_checks = false;
  // Without the monitor the run "completes" with a garbage loss — the knob
  // exists to measure monitor overhead, and must not abort either way.
  TrainResult result = TrainNodeClassification(model, data, train);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.epochs_run, 3);
}

TEST(TrainRecoveryTest, CheckpointWriteFailureIsRecordedButNonFatal) {
  ScopedFaultClear clear;
  const std::string path = TempPath("seastar_train_wfail.ckpt");
  std::filesystem::remove(path);
  Dataset data = SmallDataset();
  GcnConfig config;
  Gcn model(data, config, SeastarBackend());

  // Every checkpoint write fails; training must still complete on the
  // in-memory anchor and log the failures as recovery events.
  FaultInjector::Get().Arm(FaultSite::kCheckpointWrite, /*after_n=*/0, /*count=*/1000);
  TrainConfig train;
  train.epochs = 6;
  train.warmup_epochs = 1;
  train.checkpoint_path = path;
  train.checkpoint_every = 2;
  TrainResult result = TrainNodeClassification(model, data, train);

  ASSERT_FALSE(result.failed) << result.error;
  EXPECT_EQ(result.epochs_run, 6);
  EXPECT_EQ(result.checkpoints_written, 0);
  ASSERT_GE(result.recovery_events.size(), 1u);
  for (const RecoveryEvent& event : result.recovery_events) {
    EXPECT_EQ(event.kind, "checkpoint_error");
    EXPECT_EQ(event.rollback_epoch, -1);  // No rollback: write-only failure.
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  std::filesystem::remove(path + ".tmp");
}

// ---- SIMT worker stalls -------------------------------------------------------------------------

TEST(SimtFaultTest, InjectedWorkerStallsDoNotChangeDispatchResults) {
  ScopedFaultClear clear;
  FaultInjector::Get().Arm(FaultSite::kSimtWorker, /*after_n=*/0, /*count=*/1000000);
  for (BlockSchedule schedule :
       {BlockSchedule::kStatic, BlockSchedule::kAtomicPerBlock, BlockSchedule::kChunkedDynamic}) {
    constexpr int64_t kNumBlocks = 48;
    std::vector<std::atomic<int>> runs(kNumBlocks);
    SimtLaunchStats stats;
    SimtLaunchParams params;
    params.num_blocks = kNumBlocks;
    params.schedule = schedule;
    params.chunk_size = 8;
    params.stats = &stats;
    LaunchBlocks(params, [&runs](int64_t block, int /*worker*/) {
      runs[block].fetch_add(1, std::memory_order_relaxed);
    });
    for (int64_t b = 0; b < kNumBlocks; ++b) {
      EXPECT_EQ(runs[b].load(), 1) << BlockScheduleName(schedule) << " block " << b;
    }
    EXPECT_EQ(stats.blocks_run, kNumBlocks) << BlockScheduleName(schedule);
  }
  EXPECT_GT(FaultInjector::Get().injected(FaultSite::kSimtWorker), 0);
}

}  // namespace
}  // namespace seastar
