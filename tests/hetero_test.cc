// Heterogeneous-graph execution (paper §6.3.5): edge-type-indexed features,
// hierarchical (two-level) aggregation with the type-boundary detection
// trick, and gradients of typed inputs via per-(type, vertex) aggregation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/exec/baseline_executor.h"
#include "src/exec/seastar_executor.h"
#include "src/gir/autodiff.h"
#include "src/gir/builder.h"
#include "src/gir/passes.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

Graph HeteroGraph(uint64_t seed, int64_t n, int64_t m, int32_t num_types) {
  Rng rng(seed);
  CooEdges edges = ErdosRenyi(n, m, rng);
  auto types = RandomEdgeTypes(static_cast<int64_t>(edges.src.size()), num_types, rng);
  return Graph::FromCoo(n, std::move(edges.src), std::move(edges.dst), std::move(types),
                        num_types);
}

TEST(HeteroTest, TypedSrcSelectsPerTypeRow) {
  // Graph with one edge 0 -> 1 of type 1; typed feature stack must pick the
  // type-1 plane.
  Graph g = Graph::FromCoo(2, {0}, {1}, {1}, /*num_edge_types=*/3);
  GirBuilder b;
  b.MarkOutput(AggSum(b.TypedSrc("wh", 2)), "out");
  FeatureMap features;
  Tensor stack = Tensor::Zeros({3, 2, 2});
  // Plane 0: all 1s; plane 1: src row = {5, 6}; plane 2: all 9s.
  stack.data()[1 * 4 + 0 * 2 + 0] = 5.0f;
  stack.data()[1 * 4 + 0 * 2 + 1] = 6.0f;
  features.typed_vertex["wh"] = stack;
  SeastarExecutor ex;
  Tensor out = ex.Run(b.graph(), g, features).outputs.at("out");
  EXPECT_FLOAT_EQ(out.at(1, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 6.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
}

TEST(HeteroTest, RgcnStyleKernelMatchesBaselines) {
  const int32_t num_types = 4;
  Graph g = HeteroGraph(1, 60, 500, num_types);
  GirBuilder b;
  b.MarkOutput(AggSum(b.TypedSrc("wh", 8) * b.Src("norm", 1)), "out");
  Rng rng(2);
  FeatureMap features;
  features.typed_vertex["wh"] =
      ops::RandomNormal({num_types, g.num_vertices(), 8}, 0, 1, rng);
  features.vertex["norm"] = ops::RandomUniform({g.num_vertices(), 1}, 0.5f, 1.5f, rng);

  SeastarExecutor seastar;
  BaselineExecutor dgl({BaselineFlavor::kDglLike, true});
  BaselineExecutor pyg({BaselineFlavor::kPygLike, true});
  Tensor a = seastar.Run(b.graph(), g, features).outputs.at("out");
  Tensor c = dgl.Run(b.graph(), g, features).outputs.at("out");
  Tensor d = pyg.Run(b.graph(), g, features).outputs.at("out");
  EXPECT_TRUE(a.AllClose(c, 1e-4f));
  EXPECT_TRUE(a.AllClose(d, 1e-4f));
}

TEST(HeteroTest, RgcnKernelMatchesHandComputedReference) {
  const int32_t num_types = 3;
  Graph g = HeteroGraph(3, 20, 100, num_types);
  GirBuilder b;
  b.MarkOutput(AggSum(b.TypedSrc("wh", 4)), "out");
  Rng rng(4);
  Tensor stack = ops::RandomNormal({num_types, g.num_vertices(), 4}, 0, 1, rng);
  FeatureMap features;
  features.typed_vertex["wh"] = stack;
  SeastarExecutor ex;
  Tensor out = ex.Run(b.graph(), g, features).outputs.at("out");

  Tensor expected = Tensor::Zeros({g.num_vertices(), 4});
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    const int32_t src = g.edge_src()[static_cast<size_t>(e)];
    const int32_t dst = g.edge_dst()[static_cast<size_t>(e)];
    const int32_t t = g.edge_type()[static_cast<size_t>(e)];
    for (int64_t j = 0; j < 4; ++j) {
      expected.at(dst, j) +=
          stack.data()[(static_cast<int64_t>(t) * g.num_vertices() + src) * 4 + j];
    }
  }
  EXPECT_TRUE(out.AllClose(expected, 1e-4f));
}

TEST(HeteroTest, TypeSumThenMaxMatchesReference) {
  const int32_t num_types = 3;
  Graph g = HeteroGraph(5, 25, 120, num_types);
  GirBuilder b;
  b.MarkOutput(b.AggTypeSumThenMax(b.Src("h", 2)), "out");
  Rng rng(6);
  Tensor h = ops::RandomNormal({g.num_vertices(), 2}, 0, 1, rng);
  FeatureMap features;
  features.vertex["h"] = h;

  SeastarExecutor ex;
  Tensor out = ex.Run(b.graph(), g, features).outputs.at("out");

  // Reference: per-type sums, max over types *present* at each vertex.
  const int64_t n = g.num_vertices();
  std::vector<float> sums(static_cast<size_t>(num_types * n * 2), 0.0f);
  std::vector<bool> present(static_cast<size_t>(num_types * n), false);
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    const int32_t src = g.edge_src()[static_cast<size_t>(e)];
    const int32_t dst = g.edge_dst()[static_cast<size_t>(e)];
    const int32_t t = g.edge_type()[static_cast<size_t>(e)];
    present[static_cast<size_t>(t * n + dst)] = true;
    for (int64_t j = 0; j < 2; ++j) {
      sums[static_cast<size_t>((static_cast<int64_t>(t) * n + dst) * 2 + j)] +=
          h.at(src, j);
    }
  }
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t j = 0; j < 2; ++j) {
      float best = 0.0f;
      bool any = false;
      for (int32_t t = 0; t < num_types; ++t) {
        if (!present[static_cast<size_t>(t * n + v)]) {
          continue;
        }
        const float s = sums[static_cast<size_t>((static_cast<int64_t>(t) * n + v) * 2 + j)];
        best = any ? std::max(best, s) : s;
        any = true;
      }
      EXPECT_NEAR(out.at(v, j), best, 1e-4) << v << "," << j;
    }
  }
}

TEST(HeteroTest, TypeSumThenMaxAgreesWithBaseline) {
  Graph g = HeteroGraph(7, 40, 300, 5);
  GirBuilder b;
  b.MarkOutput(b.AggTypeSumThenMax(b.Src("h", 4)), "out");
  Rng rng(8);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 4}, 0, 1, rng);
  SeastarExecutor seastar;
  BaselineExecutor dgl({BaselineFlavor::kDglLike, true});
  Tensor a = seastar.Run(b.graph(), g, features).outputs.at("out");
  Tensor c = dgl.Run(b.graph(), g, features).outputs.at("out");
  EXPECT_TRUE(a.AllClose(c, 1e-4f));
}

TEST(HeteroTest, TypedGradMatchesFiniteDifferences) {
  const int32_t num_types = 3;
  Graph g = HeteroGraph(9, 10, 35, num_types);
  GirBuilder b;
  b.MarkOutput(AggSum(b.TypedSrc("wh", 2) * b.Src("norm", 1)), "out");
  PassResult passes = RunStandardPasses(b.graph());
  GirGraph forward = std::move(passes.graph);
  BackwardGir backward = BuildBackward(forward, forward.outputs()[0]);
  OptimizeBackward(&backward);

  Rng rng(10);
  FeatureMap features;
  features.typed_vertex["wh"] = ops::RandomNormal({num_types, g.num_vertices(), 2}, 0, 1, rng);
  features.vertex["norm"] = ops::RandomUniform({g.num_vertices(), 1}, 0.5f, 1.5f, rng);

  SeastarExecutor ex;
  const auto loss = [&] {
    return ops::SumAll(ex.Run(forward, g, features).outputs.at("out"));
  };

  Tensor out = ex.Run(forward, g, features).outputs.at("out");
  FeatureMap bwd = features;
  bwd.vertex[kGradInputKey] = Tensor::Ones(out.shape());
  RunResult result = ex.Run(backward.graph, g, bwd);

  const InputGradInfo* typed_info = nullptr;
  for (const InputGradInfo& info : backward.input_grads) {
    if (info.typed) {
      typed_info = &info;
    }
  }
  ASSERT_NE(typed_info, nullptr);
  const Tensor& grad = result.outputs.at(typed_info->output_name);
  ASSERT_EQ(grad.ndim(), 3);

  Tensor& stack = features.typed_vertex.at("wh");
  const float eps = 1e-2f;
  for (int64_t i = 0; i < stack.numel(); i += 7) {  // Sample every 7th element.
    const float saved = stack.at(i);
    stack.at(i) = saved + eps;
    const float up = loss();
    stack.at(i) = saved - eps;
    const float down = loss();
    stack.at(i) = saved;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(grad.at(i), numeric, 3e-2f * std::max(1.0f, std::fabs(numeric))) << i;
  }
}

TEST(HeteroTest, TypedGradAgreesAcrossBackends) {
  const int32_t num_types = 4;
  Graph g = HeteroGraph(11, 30, 200, num_types);
  GirBuilder b;
  b.MarkOutput(AggSum(b.TypedSrc("wh", 4)), "out");
  GirGraph forward = b.graph();
  BackwardGir backward = BuildBackward(forward, forward.outputs()[0]);
  OptimizeBackward(&backward);

  Rng rng(12);
  FeatureMap features;
  features.typed_vertex["wh"] = ops::RandomNormal({num_types, g.num_vertices(), 4}, 0, 1, rng);
  FeatureMap bwd = features;
  bwd.vertex[kGradInputKey] =
      ops::RandomNormal({g.num_vertices(), 4}, 0, 1, rng);

  SeastarExecutor seastar;
  BaselineExecutor dgl({BaselineFlavor::kDglLike, true});
  Tensor a = seastar.Run(backward.graph, g, bwd).outputs.begin()->second;
  Tensor c = dgl.Run(backward.graph, g, bwd).outputs.begin()->second;
  EXPECT_TRUE(a.AllClose(c, 1e-3f));
}

}  // namespace
}  // namespace seastar
