// Tests for the hardened inference serving runtime (src/serve/): admission
// and shedding, micro-batching, deadline propagation into execution, retry
// under injected faults, the circuit breaker's trip/probe/recovery cycle,
// degraded (last-known-good) serving, checkpoint boot, and a soak run
// asserting the accounting identity under sustained load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/fault.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/core/checkpoint.h"
#include "src/core/executor_factory.h"
#include "src/core/models/gcn.h"
#include "src/core/train.h"
#include "src/serve/admission_queue.h"
#include "src/serve/batcher.h"
#include "src/serve/circuit_breaker.h"
#include "src/serve/server.h"
#include "src/tensor/allocator.h"

namespace seastar {
namespace {

using serve::AdmissionQueue;
using serve::AdmitResult;
using serve::BreakerState;
using serve::CircuitBreaker;
using serve::InferenceRequest;
using serve::InferenceResponse;
using serve::PendingRequest;
using serve::ServeConfig;
using serve::Server;
using serve::ServerStats;

Dataset SmallDataset() {
  DatasetOptions options;
  options.scale = 0.05;
  options.max_feature_dim = 16;
  return MakeDataset(*FindDataset("cora"), options);
}

std::shared_ptr<const Executor> SeastarBackend() {
  BackendConfig config;
  config.backend = Backend::kSeastar;
  return MakeExecutor(config);
}

std::unique_ptr<Gcn> SmallGcn(const Dataset& data) {
  GcnConfig config;
  config.hidden_dim = 8;
  return std::make_unique<Gcn>(data, config, SeastarBackend());
}

InferenceRequest RequestFor(std::vector<int32_t> vertices, double deadline_ms = -1.0) {
  InferenceRequest request;
  request.vertices = std::move(vertices);
  request.deadline_ms = deadline_ms;
  return request;
}

// ---- Deadline primitive -------------------------------------------------------------------------

TEST(DeadlineTest, UnarmedNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 1e12);
}

TEST(DeadlineTest, ArmedExpiresAfterItsWindow) {
  Deadline d = Deadline::AfterMillis(1.0);
  EXPECT_TRUE(d.armed());
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(d.expired());
  EXPECT_LT(d.remaining_ms(), 0.0);
}

TEST(DeadlineTest, ScopedDeadlineInstallsAndRestores) {
  EXPECT_EQ(CurrentDeadline(), nullptr);
  Deadline outer = Deadline::AfterMillis(1000.0);
  {
    ScopedDeadline scoped_outer(&outer);
    EXPECT_EQ(CurrentDeadline(), &outer);
    Deadline inner = Deadline::AfterMillis(500.0);
    {
      ScopedDeadline scoped_inner(&inner);
      EXPECT_EQ(CurrentDeadline(), &inner);
    }
    EXPECT_EQ(CurrentDeadline(), &outer);
  }
  EXPECT_EQ(CurrentDeadline(), nullptr);
}

TEST(DeadlineTest, CheckThrowsOnlyWhenExpired) {
  Deadline fresh = Deadline::AfterMillis(60000.0);
  {
    ScopedDeadline scoped(&fresh);
    EXPECT_NO_THROW(CheckExecutionDeadline("test"));
  }
  Deadline expired = Deadline::AfterMillis(-1.0);
  {
    ScopedDeadline scoped(&expired);
    EXPECT_THROW(CheckExecutionDeadline("test site"), DeadlineExceeded);
  }
  EXPECT_NO_THROW(CheckExecutionDeadline("no deadline installed"));
}

// ---- Admission queue ----------------------------------------------------------------------------

TEST(AdmissionQueueTest, OverflowShedsWithResourceExhausted) {
  AdmissionQueue queue(2);
  EXPECT_EQ(queue.TryPush(std::make_unique<PendingRequest>()), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.TryPush(std::make_unique<PendingRequest>()), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.TryPush(std::make_unique<PendingRequest>()), AdmitResult::kShedCapacity);
  EXPECT_EQ(queue.shed_count(), 1);
  EXPECT_EQ(queue.size(), 2);
}

TEST(AdmissionQueueTest, CloseRejectsPushesButAllowsDrain) {
  AdmissionQueue queue(4);
  EXPECT_EQ(queue.TryPush(std::make_unique<PendingRequest>()), AdmitResult::kAdmitted);
  queue.Close();
  EXPECT_EQ(queue.TryPush(std::make_unique<PendingRequest>()), AdmitResult::kClosed);
  // Queued work stays poppable so shutdown can fulfill every promise.
  EXPECT_NE(queue.PopAnyUntil(std::chrono::steady_clock::now()), nullptr);
  EXPECT_EQ(queue.PopAnyUntil(std::chrono::steady_clock::now()), nullptr);
}

TEST(AdmissionQueueTest, PopMatchingSkipsOtherKeys) {
  AdmissionQueue queue(4);
  auto mismatched = std::make_unique<PendingRequest>();
  mismatched->batch_key = 1;
  auto matched = std::make_unique<PendingRequest>();
  matched->batch_key = 2;
  ASSERT_EQ(queue.TryPush(std::move(mismatched)), AdmitResult::kAdmitted);
  ASSERT_EQ(queue.TryPush(std::move(matched)), AdmitResult::kAdmitted);

  auto popped = queue.PopMatchingUntil(/*tenant_index=*/0, 2, std::chrono::steady_clock::now());
  ASSERT_NE(popped, nullptr);
  EXPECT_EQ(popped->batch_key, 2u);
  EXPECT_EQ(queue.size(), 1);  // The key-1 request is still queued, in order.
}

TEST(AdmissionQueueTest, QuotaShedsChargeOnlyTheBurstingTenant) {
  AdmissionQueue queue(8);
  queue.ConfigureTenant(0, /*weight=*/1.0, /*max_queued=*/0);
  queue.ConfigureTenant(1, /*weight=*/1.0, /*max_queued=*/2);
  auto request_for = [](uint32_t tenant) {
    auto p = std::make_unique<PendingRequest>();
    p->tenant_index = tenant;
    return p;
  };
  EXPECT_EQ(queue.TryPush(request_for(1)), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.TryPush(request_for(1)), AdmitResult::kAdmitted);
  // Tenant 1 is at its own cap; the shared queue still has room.
  EXPECT_EQ(queue.TryPush(request_for(1)), AdmitResult::kShedQuota);
  EXPECT_EQ(queue.quota_shed_count(1), 1);
  EXPECT_EQ(queue.quota_shed_count(0), 0);
  EXPECT_EQ(queue.shed_count(), 0);  // Capacity sheds only.
  // The unconstrained tenant is unaffected.
  EXPECT_EQ(queue.TryPush(request_for(0)), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.size(), 3);
  EXPECT_EQ(queue.size(1), 2);
}

TEST(AdmissionQueueTest, WeightedFairDequeueFollowsTheWeightRatio) {
  AdmissionQueue queue(64);
  queue.ConfigureTenant(0, /*weight=*/3.0, /*max_queued=*/0);
  queue.ConfigureTenant(1, /*weight=*/1.0, /*max_queued=*/0);
  for (int i = 0; i < 16; ++i) {
    for (uint32_t tenant = 0; tenant < 2; ++tenant) {
      auto p = std::make_unique<PendingRequest>();
      p->tenant_index = tenant;
      ASSERT_EQ(queue.TryPush(std::move(p)), AdmitResult::kAdmitted);
    }
  }
  // First 16 dispatches: the weight-3 tenant should get ~3/4 of them.
  int dispatched[2] = {0, 0};
  for (int i = 0; i < 16; ++i) {
    auto leader = queue.PopAnyUntil(std::chrono::steady_clock::now());
    ASSERT_NE(leader, nullptr);
    ++dispatched[leader->tenant_index];
  }
  EXPECT_EQ(dispatched[0], 12);
  EXPECT_EQ(dispatched[1], 4);
  // Work-conserving: once tenant 0 drains, tenant 1 gets every slot.
  while (queue.size(0) > 0) {
    auto leader = queue.PopAnyUntil(std::chrono::steady_clock::now());
    ASSERT_NE(leader, nullptr);
  }
  auto leader = queue.PopAnyUntil(std::chrono::steady_clock::now());
  ASSERT_NE(leader, nullptr);
  EXPECT_EQ(leader->tenant_index, 1u);
}

// ---- Circuit breaker ----------------------------------------------------------------------------

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndRecoversViaProbe) {
  CircuitBreaker breaker(/*trip_after=*/3, /*probe_interval_ms=*/5.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  breaker.RecordFailure("f1");
  breaker.RecordFailure("f2");
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);  // Not yet.
  breaker.RecordFailure("f3");
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_EQ(breaker.last_trip_reason(), "f3");

  EXPECT_FALSE(breaker.AllowExecution());  // Probe interval not elapsed.
  std::this_thread::sleep_for(std::chrono::milliseconds(7));
  EXPECT_TRUE(breaker.AllowExecution());  // The probe.
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.AllowExecution());  // One probe per cycle.

  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.recoveries(), 1);
  EXPECT_TRUE(breaker.AllowExecution());
}

TEST(CircuitBreakerTest, FailedProbeReopensWithoutCountingANewTrip) {
  CircuitBreaker breaker(/*trip_after=*/1, /*probe_interval_ms=*/1.0);
  breaker.RecordFailure("down");
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(breaker.AllowExecution());
  breaker.RecordFailure("still down");
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1);

  breaker.RecordFailure("failure while open does not re-trip");
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, AbandonedProbeReopensAndAllowsTheNextProbePromptly) {
  CircuitBreaker breaker(/*trip_after=*/1, /*probe_interval_ms=*/1000.0);
  breaker.RecordFailure("down");
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // Force the probe without waiting out the long interval.
  breaker.RecordProbeAbandoned();  // No-op while open.
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  CircuitBreaker prompt(/*trip_after=*/1, /*probe_interval_ms=*/5.0);
  prompt.RecordFailure("down");
  std::this_thread::sleep_for(std::chrono::milliseconds(7));
  ASSERT_TRUE(prompt.AllowExecution());  // The probe.
  ASSERT_EQ(prompt.state(), BreakerState::kHalfOpen);

  // The probe batch aborted on a client deadline: no verdict. Without the
  // abandon transition the breaker would refuse execution forever.
  prompt.RecordProbeAbandoned();
  EXPECT_EQ(prompt.state(), BreakerState::kOpen);
  EXPECT_TRUE(prompt.AllowExecution());  // Next batch probes immediately.
  EXPECT_EQ(prompt.state(), BreakerState::kHalfOpen);
  prompt.RecordSuccess();
  EXPECT_EQ(prompt.state(), BreakerState::kClosed);
  EXPECT_EQ(prompt.recoveries(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveCounter) {
  CircuitBreaker breaker(/*trip_after=*/3, /*probe_interval_ms=*/1000.0);
  breaker.RecordFailure("a");
  breaker.RecordFailure("b");
  breaker.RecordSuccess();
  breaker.RecordFailure("c");
  breaker.RecordFailure("d");
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 0);
}

// ---- Server: happy path -------------------------------------------------------------------------

TEST(ServeTest, ServesLogitsMatchingADirectForward) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  Tensor expected = model->Forward(/*training=*/false).value();

  ServeConfig config;
  Server server(*model, data, config);
  ASSERT_TRUE(server.Start().ok());

  StatusOr<InferenceResponse> response = server.Infer(RequestFor({0, 3, 7}));
  ASSERT_TRUE(response.has_value()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  ASSERT_EQ(response->logits.shape(),
            (std::vector<int64_t>{3, expected.dim(1)}));
  for (int64_t j = 0; j < expected.dim(1); ++j) {
    EXPECT_FLOAT_EQ(response->logits.at(0, j), expected.at(0, j));
    EXPECT_FLOAT_EQ(response->logits.at(1, j), expected.at(3, j));
    EXPECT_FLOAT_EQ(response->logits.at(2, j), expected.at(7, j));
  }
  server.Shutdown();
}

TEST(ServeTest, InvalidRequestsAreRejectedUpFront) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  Server server(*model, data, ServeConfig{});
  ASSERT_TRUE(server.Start().ok());

  StatusOr<InferenceResponse> empty = server.Infer(RequestFor({}));
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  StatusOr<InferenceResponse> out_of_range =
      server.Infer(RequestFor({static_cast<int32_t>(data.graph.num_vertices())}));
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);

  InferenceRequest wrong_model = RequestFor({0});
  wrong_model.model_fingerprint = server.serving_fingerprint() + 1;
  StatusOr<InferenceResponse> mismatched = server.Infer(std::move(wrong_model));
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);

  InferenceRequest right_model = RequestFor({0});
  right_model.model_fingerprint = server.serving_fingerprint();
  EXPECT_TRUE(server.Infer(std::move(right_model)).has_value());

  EXPECT_EQ(server.stats().rejected, 3);
  server.Shutdown();
}

TEST(ServeTest, CompatibleRequestsShareAForwardPass) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  ServeConfig config;
  config.max_batch = 16;
  config.max_batch_delay_ms = 20.0;  // Wide window so the burst coalesces.
  Server server(*model, data, config);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::future<StatusOr<InferenceResponse>>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(server.Submit(RequestFor({i % 5})));
  }
  int64_t max_batch_seen = 0;
  for (auto& future : futures) {
    StatusOr<InferenceResponse> response = future.get();
    ASSERT_TRUE(response.has_value()) << response.status().ToString();
    max_batch_seen = std::max<int64_t>(max_batch_seen, response->batch_size);
  }
  // At least some of the burst must have shared a forward (the first request
  // may ride alone if the worker grabbed it before the rest arrived).
  EXPECT_GT(max_batch_seen, 1);
  const ServerStats stats = server.stats();
  EXPECT_LT(stats.batches, stats.served);
  server.Shutdown();
}

// ---- Server: deadlines --------------------------------------------------------------------------

TEST(ServeTest, ExpiredDeadlineAbortsInsteadOfServing) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  ServeConfig config;
  Server server(*model, data, config);
  ASSERT_TRUE(server.Start().ok());

  // A deadline that is already hopeless when the batch forms: the injected
  // SIMT stalls make the forward orders of magnitude slower than the budget,
  // so either the queued-expiry check or the unit-boundary check must fire.
  FaultInjector::Get().ArmProbabilistic(FaultSite::kSimtWorker, 1.0, /*seed=*/99);
  StatusOr<InferenceResponse> response = server.Infer(RequestFor({1}, /*deadline_ms=*/0.05));
  FaultInjector::Get().DisarmAll();

  ASSERT_FALSE(response.has_value());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.stats().expired, 1);
  server.Shutdown();
}

TEST(ServeTest, UnitBoundaryDeadlineCheckAbortsMidForward) {
  // Exercise the executor-side check directly: install an expired ambient
  // deadline and run a forward; the first unit boundary must throw.
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  model->Forward(/*training=*/false);  // Warm: plans compiled, pool sized.

  Deadline expired = Deadline::AfterMillis(-1.0);
  ScopedDeadline scoped(&expired);
  EXPECT_THROW(model->Forward(/*training=*/false), DeadlineExceeded);
}

TEST(ServeTest, NoDeadlineRequestsAreNeverAborted) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  Server server(*model, data, ServeConfig{});
  ASSERT_TRUE(server.Start().ok());
  StatusOr<InferenceResponse> response = server.Infer(RequestFor({0}, /*deadline_ms=*/-1.0));
  EXPECT_TRUE(response.has_value()) << response.status().ToString();
  server.Shutdown();
}

// ---- Server: shedding ---------------------------------------------------------------------------

TEST(ServeTest, QueueOverflowShedsWithResourceExhausted) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  ServeConfig config;
  config.queue_capacity = 2;
  Server server(*model, data, config);
  ASSERT_TRUE(server.Start().ok());

  // Stall the serving thread so submissions pile into the bounded queue.
  FaultInjector::Get().ArmProbabilistic(FaultSite::kSimtWorker, 1.0, /*seed=*/7);
  std::vector<std::future<StatusOr<InferenceResponse>>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(server.Submit(RequestFor({0})));
  }
  FaultInjector::Get().DisarmAll();

  int64_t shed = 0;
  for (auto& future : futures) {
    StatusOr<InferenceResponse> response = future.get();
    if (!response.has_value() && response.status().code() == StatusCode::kResourceExhausted) {
      ++shed;
    }
  }
  EXPECT_GT(shed, 0);
  EXPECT_EQ(server.stats().shed, shed);
  server.Shutdown();
}

TEST(ServeTest, SubmitAfterShutdownCountsAsRejectedNotSubmitted) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  Server server(*model, data, ServeConfig{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.Infer(RequestFor({0})).has_value());
  server.Shutdown();

  StatusOr<InferenceResponse> late = server.Infer(RequestFor({1}));
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 1);
  // The quiesced identity must still balance: the closed-queue rejection
  // never entered the pipeline, so it is not part of submitted.
  EXPECT_EQ(stats.submitted,
            stats.served + stats.degraded + stats.shed + stats.expired + stats.failed);
}

// ---- Server: retries ----------------------------------------------------------------------------

TEST(ServeTest, TransientFaultIsRetriedThenSucceeds) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  ServeConfig config;
  config.max_retries = 3;
  config.retry_base_backoff_ms = 0.1;
  config.warmup = true;
  Server server(*model, data, config);
  ASSERT_TRUE(server.Start().ok());

  // Exactly one injected allocation fault: the first attempt of the next
  // batch latches it, the retry runs clean.
  TensorAllocator::Get().ClearInjectedFailure();
  FaultInjector::Get().Arm(FaultSite::kTensorAlloc, /*after_n=*/0, /*count=*/1);
  StatusOr<InferenceResponse> response = server.Infer(RequestFor({2, 4}));
  FaultInjector::Get().DisarmAll();

  ASSERT_TRUE(response.has_value()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  EXPECT_GE(response->retries, 1);
  EXPECT_GE(server.stats().retries, 1);
  EXPECT_EQ(server.stats().failed, 0);
  server.Shutdown();
}

// ---- Server: circuit breaker + degraded mode ----------------------------------------------------

TEST(ServeTest, BreakerTripsServesDegradedThenRecoversViaProbe) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  ServeConfig config;
  config.max_retries = 1;
  config.retry_base_backoff_ms = 0.05;
  config.breaker_trip_after = 2;
  config.breaker_probe_interval_ms = 5.0;
  config.warmup = true;  // Seeds the last-known-good cache.
  Server server(*model, data, config);
  ASSERT_TRUE(server.Start().ok());

  // Sustained outage: every allocation faults, so every attempt of every
  // batch fails until disarmed.
  FaultInjector::Get().Arm(FaultSite::kTensorAlloc, /*after_n=*/0, /*count=*/1'000'000'000);
  int degraded_seen = 0;
  for (int i = 0; i < 8 && server.breaker_state() != BreakerState::kOpen; ++i) {
    StatusOr<InferenceResponse> during = server.Infer(RequestFor({1}));
    ASSERT_TRUE(during.has_value()) << during.status().ToString();
    if (during->degraded) {
      ++degraded_seen;
    }
  }
  EXPECT_GE(server.stats().breaker_trips, 1);

  // While open, answers come from the last-known-good cache without running
  // the model.
  StatusOr<InferenceResponse> cached = server.Infer(RequestFor({3}));
  ASSERT_TRUE(cached.has_value()) << cached.status().ToString();
  EXPECT_TRUE(cached->degraded);

  // Outage ends; the next probe (due every 5 ms) must close the breaker.
  FaultInjector::Get().DisarmAll();
  TensorAllocator::Get().ClearInjectedFailure();
  bool recovered = false;
  for (int i = 0; i < 100 && !recovered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    StatusOr<InferenceResponse> after = server.Infer(RequestFor({5}));
    ASSERT_TRUE(after.has_value()) << after.status().ToString();
    recovered = !after->degraded;
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(server.breaker_state(), BreakerState::kClosed);
  EXPECT_GE(server.stats().breaker_recoveries, 1);
  server.Shutdown();
}

TEST(ServeTest, NoFallbackCacheMeansUnavailableWhileOpen) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  ServeConfig config;
  config.warmup = false;            // No last-known-good cache...
  config.degraded_fallback = false;  // ...and no degraded serving either.
  config.max_retries = 0;
  config.breaker_trip_after = 1;
  config.breaker_probe_interval_ms = 10000.0;  // No probe during the test.
  Server server(*model, data, config);
  ASSERT_TRUE(server.Start().ok());

  FaultInjector::Get().Arm(FaultSite::kTensorAlloc, /*after_n=*/0, /*count=*/1'000'000'000);
  StatusOr<InferenceResponse> first = server.Infer(RequestFor({0}));
  EXPECT_FALSE(first.has_value());  // Trips the breaker.
  StatusOr<InferenceResponse> second = server.Infer(RequestFor({0}));
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  FaultInjector::Get().DisarmAll();
  TensorAllocator::Get().ClearInjectedFailure();
  EXPECT_GT(server.stats().failed, 0);
  server.Shutdown();
}

// ---- Server: checkpoint boot --------------------------------------------------------------------

TEST(ServeTest, BootsFromTrainedCheckpointAndServesItsWeights) {
  ScopedFaultClear clear;
  const std::string path =
      (std::filesystem::temp_directory_path() / "seastar_serve_boot.ckpt").string();
  Dataset data = SmallDataset();

  // Train a few epochs and snapshot.
  auto trained = SmallGcn(data);
  TrainConfig train;
  train.epochs = 3;
  train.warmup_epochs = 0;
  train.verbose = false;
  train.checkpoint_path = path;
  train.checkpoint_every = 1;
  TrainResult result = TrainNodeClassification(*trained, data, train);
  ASSERT_FALSE(result.failed) << result.error;
  Tensor expected = trained->Forward(/*training=*/false).value();

  // A *fresh* model restored from the snapshot must serve the trained
  // logits, not its random initialization.
  auto fresh = SmallGcn(data);
  ServeConfig config;
  config.checkpoint_path = path;
  Server server(*fresh, data, config);
  ASSERT_TRUE(server.Start().ok());
  StatusOr<InferenceResponse> response = server.Infer(RequestFor({0, 1}));
  ASSERT_TRUE(response.has_value()) << response.status().ToString();
  for (int64_t j = 0; j < expected.dim(1); ++j) {
    EXPECT_FLOAT_EQ(response->logits.at(0, j), expected.at(0, j));
    EXPECT_FLOAT_EQ(response->logits.at(1, j), expected.at(1, j));
  }
  server.Shutdown();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");
}

TEST(ServeTest, BootRetriesTransientCheckpointFaults) {
  ScopedFaultClear clear;
  const std::string path =
      (std::filesystem::temp_directory_path() / "seastar_serve_bootfault.ckpt").string();
  Dataset data = SmallDataset();
  auto trained = SmallGcn(data);
  TrainConfig train;
  train.epochs = 1;
  train.warmup_epochs = 0;
  train.verbose = false;
  train.checkpoint_path = path;
  train.checkpoint_every = 1;
  ASSERT_FALSE(TrainNodeClassification(*trained, data, train).failed);

  auto fresh = SmallGcn(data);
  ServeConfig config;
  config.checkpoint_path = path;
  config.boot_retries = 3;
  config.retry_base_backoff_ms = 0.1;
  FaultInjector::Get().Arm(FaultSite::kCheckpointRead, /*after_n=*/0, /*count=*/2);
  Server server(*fresh, data, config);
  Status started = server.Start();
  FaultInjector::Get().DisarmAll();
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_EQ(server.stats().boot_retries, 2);
  EXPECT_TRUE(server.Infer(RequestFor({0})).has_value());
  server.Shutdown();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");
}

TEST(ServeTest, MissingCheckpointFailsStartCleanly) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  ServeConfig config;
  config.checkpoint_path = "/nonexistent/dir/never.ckpt";
  Server server(*model, data, config);
  Status started = server.Start();
  EXPECT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kNotFound);
}

// ---- Server: shutdown ---------------------------------------------------------------------------

TEST(ServeTest, ShutdownFulfillsEveryOutstandingPromise) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  ServeConfig config;
  config.queue_capacity = 64;
  Server server(*model, data, config);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::future<StatusOr<InferenceResponse>>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(server.Submit(RequestFor({i % 3})));
  }
  server.Shutdown();
  for (auto& future : futures) {
    // Every future resolves (drained and served, or cleanly refused); a
    // broken promise would throw std::future_error here.
    EXPECT_NO_THROW(future.get());
  }
  StatusOr<InferenceResponse> after = server.Infer(RequestFor({0}));
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
}

// ---- Soak ---------------------------------------------------------------------------------------

TEST(ServeTest, SoakTenThousandRequestsKeepsAccountingExact) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  ServeConfig config;
  config.queue_capacity = 32;
  config.max_retries = 2;
  config.retry_base_backoff_ms = 0.05;
  config.breaker_trip_after = 3;
  config.breaker_probe_interval_ms = 5.0;
  config.default_deadline_ms = 50.0;
  Server server(*model, data, config);
  ASSERT_TRUE(server.Start().ok());

  // Sustained mixed load with a mid-run outage. The outage is state-driven,
  // not index-driven: submission is far faster than serving, so a fixed
  // request-index window could open and close before the breaker has seen
  // three whole batches fail.
  constexpr int kRequests = 10000;
  Rng rng(4242);
  std::vector<std::future<StatusOr<InferenceResponse>>> futures;
  futures.reserve(kRequests);
  int submitted = 0;
  auto submit_async = [&](int count, double tight_deadline_every) {
    for (int i = 0; i < count; ++i, ++submitted) {
      InferenceRequest request;
      const int fan = 1 + static_cast<int>(rng.NextBounded(3));
      for (int v = 0; v < fan; ++v) {
        request.vertices.push_back(static_cast<int32_t>(
            rng.NextBounded(static_cast<uint64_t>(data.graph.num_vertices()))));
      }
      request.deadline_ms = (tight_deadline_every > 0.0 && i % 7 == 0) ? 5.0 : 0.0;
      futures.push_back(server.Submit(std::move(request)));
      if (i % 1000 == 999) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));  // Let serving breathe.
      }
    }
  };

  // Phase 1: clean burst. Phase 2: flaky allocations (retry path).
  submit_async(3000, 5.0);
  FaultInjector::Get().ArmProbabilistic(FaultSite::kTensorAlloc, 0.05, /*seed=*/11);
  submit_async(3000, 5.0);

  // Drain the async backlog so the synchronous outage probes below can't be
  // shed by a queue still full of phase-2 requests.
  while (server.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Phase 3: hard outage, synchronous until the breaker actually trips and
  // degraded serving is observed.
  FaultInjector::Get().Arm(FaultSite::kTensorAlloc, /*after_n=*/0, /*count=*/1'000'000'000);
  int sync_used = 0;
  while (server.breaker_state() != BreakerState::kOpen && sync_used < 60) {
    StatusOr<InferenceResponse> r = server.Infer(RequestFor({1}));
    ASSERT_TRUE(r.has_value()) << r.status().ToString();
    ++submitted;
    ++sync_used;
  }
  ASSERT_EQ(server.breaker_state(), BreakerState::kOpen);
  StatusOr<InferenceResponse> during = server.Infer(RequestFor({2}));
  ++submitted;
  ++sync_used;
  ASSERT_TRUE(during.has_value()) << during.status().ToString();
  EXPECT_TRUE(during->degraded);

  // Phase 4: outage over; synchronous until a probe closes the breaker.
  FaultInjector::Get().DisarmAll();
  TensorAllocator::Get().ClearInjectedFailure();
  bool recovered = false;
  for (int i = 0; i < 100 && !recovered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    StatusOr<InferenceResponse> r = server.Infer(RequestFor({3}));
    ASSERT_TRUE(r.has_value()) << r.status().ToString();
    ++submitted;
    ++sync_used;
    recovered = !r->degraded;
  }
  ASSERT_TRUE(recovered);
  ASSERT_LE(sync_used, 200);

  // Phase 5: clean tail up to exactly kRequests, with monotone spot checks.
  ServerStats last;
  while (submitted < kRequests) {
    submit_async(std::min(1000, kRequests - submitted), 5.0);
    ServerStats now = server.stats();
    EXPECT_GE(now.served, last.served);
    EXPECT_GE(now.shed, last.shed);
    EXPECT_GE(now.expired, last.expired);
    EXPECT_GE(now.failed, last.failed);
    EXPECT_GE(now.degraded, last.degraded);
    last = now;
  }
  for (auto& future : futures) {
    EXPECT_NO_THROW(future.get());
  }
  server.Shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kRequests);
  // The accounting identity: every admitted request ends in exactly one bin.
  EXPECT_EQ(stats.submitted,
            stats.served + stats.degraded + stats.shed + stats.expired + stats.failed);
  // The outage must have exercised the full fault path.
  EXPECT_GT(stats.retries, 0);
  EXPECT_GE(stats.breaker_trips, 1);
  EXPECT_GT(stats.degraded, 0);
  const serve::LatencySummary latency = server.latency_summary();
  EXPECT_GT(latency.count, 0);
  EXPECT_GE(latency.p99_ms, latency.p50_ms);
}

// ---- Exported metrics ---------------------------------------------------------------------------

// The process-wide registry mirrors every ServerStats identity counter at the
// same increment sites. Tests share one registry across every Server this
// binary creates, so the assertions work on deltas: whatever this server
// reports in stats() must appear 1:1 as registry growth.
TEST(ServeTest, ExportedMetricsMirrorTheAccountingIdentity) {
  ScopedFaultClear clear;
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Get();
  const auto counter = [&registry](const char* name) {
    return registry.GetCounter(name)->value();
  };
  const int64_t submitted0 = counter("seastar_serve_submitted_total");
  const int64_t rejected0 = counter("seastar_serve_rejected_total");
  const int64_t served0 = counter("seastar_serve_served_total");
  const int64_t degraded0 = counter("seastar_serve_degraded_total");
  const int64_t shed0 = counter("seastar_serve_shed_total");
  const int64_t expired0 = counter("seastar_serve_expired_total");
  const int64_t failed0 = counter("seastar_serve_failed_total");
  const int64_t latency_count0 =
      registry.GetHistogram("seastar_serve_request_latency_ms")->count();

  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  ServeConfig config;
  config.queue_capacity = 4;  // Tiny queue: the burst below must shed.
  Server server(*model, data, config);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::future<StatusOr<InferenceResponse>>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(server.Submit(RequestFor({i % 5})));
  }
  for (auto& future : futures) {
    EXPECT_NO_THROW(future.get());
  }
  server.Shutdown();
  // A post-shutdown submit lands in rejected — outside the identity.
  StatusOr<InferenceResponse> refused = server.Infer(RequestFor({0}));
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);

  const ServerStats stats = server.stats();
  EXPECT_EQ(counter("seastar_serve_submitted_total") - submitted0, stats.submitted);
  EXPECT_EQ(counter("seastar_serve_rejected_total") - rejected0, stats.rejected);
  EXPECT_EQ(counter("seastar_serve_served_total") - served0, stats.served);
  EXPECT_EQ(counter("seastar_serve_degraded_total") - degraded0, stats.degraded);
  EXPECT_EQ(counter("seastar_serve_shed_total") - shed0, stats.shed);
  EXPECT_EQ(counter("seastar_serve_expired_total") - expired0, stats.expired);
  EXPECT_EQ(counter("seastar_serve_failed_total") - failed0, stats.failed);
  EXPECT_GT(stats.shed, 0);     // The tiny queue actually shed.
  EXPECT_EQ(stats.rejected, 1);  // The post-shutdown probe.

  // The identity holds in the exported counters themselves, which is what
  // bench_serve and the CI gate assert against a live snapshot.
  const int64_t d_submitted = counter("seastar_serve_submitted_total") - submitted0;
  const int64_t d_outcomes = (counter("seastar_serve_served_total") - served0) +
                             (counter("seastar_serve_degraded_total") - degraded0) +
                             (counter("seastar_serve_shed_total") - shed0) +
                             (counter("seastar_serve_expired_total") - expired0) +
                             (counter("seastar_serve_failed_total") - failed0);
  EXPECT_EQ(d_submitted, d_outcomes);

  // Every served request recorded a latency sample into the registry
  // histogram (degraded/expired/failed may add more; never fewer).
  EXPECT_GE(registry.GetHistogram("seastar_serve_request_latency_ms")->count() -
                latency_count0,
            stats.served);
}

// stats() snapshots every identity counter under one lock: a reader can
// never observe submitted ahead of the outcome bins plus in-flight work.
TEST(ServeTest, StatsSnapshotIsConsistentUnderConcurrentLoad) {
  ScopedFaultClear clear;
  Dataset data = SmallDataset();
  auto model = SmallGcn(data);
  ServeConfig config;
  config.queue_capacity = 16;
  Server server(*model, data, config);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> done{false};
  std::thread reader([&server, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      const ServerStats stats = server.stats();
      const int64_t outcomes =
          stats.served + stats.degraded + stats.shed + stats.expired + stats.failed;
      // Outcomes never outrun admissions, and the gap is bounded by what can
      // actually be in flight (the queue plus one serving batch).
      EXPECT_LE(outcomes, stats.submitted);
      EXPECT_GE(stats.submitted, 0);
    }
  });
  std::vector<std::future<StatusOr<InferenceResponse>>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(server.Submit(RequestFor({i % 7})));
  }
  for (auto& future : futures) {
    EXPECT_NO_THROW(future.get());
  }
  done.store(true, std::memory_order_relaxed);
  reader.join();
  server.Shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted,
            stats.served + stats.degraded + stats.shed + stats.expired + stats.failed);
}

}  // namespace
}  // namespace seastar