// Tests for the execution-plan cache: one compile per distinct (GIR
// fingerprint, fusion options) pair, hits for rebuilt-but-identical GIRs,
// and plan reuse across different graphs with unchanged results.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/exec/plan_cache.h"
#include "src/exec/seastar_executor.h"
#include "src/gir/builder.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

// A small GCN-style program: normalized neighbor sum.
void BuildGcnLike(GirBuilder* b, int32_t width) {
  Value h = b->Src("h", width);
  Value norm = b->Src("norm", 1);
  b->MarkOutput(AggSum(h * norm), "out");
}

Graph TestGraph(int64_t n, int64_t m, uint64_t seed) {
  Rng rng(seed);
  CooEdges edges = ErdosRenyi(n, m, rng);
  AddSelfLoops(edges);
  return ToGraph(std::move(edges));
}

FeatureMap TestFeatures(const Graph& g, int32_t width, uint64_t seed) {
  Rng rng(seed);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), width}, 0.0f, 1.0f, rng);
  features.vertex["norm"] = ops::RandomUniform({g.num_vertices(), 1}, 0.1f, 1.0f, rng);
  return features;
}

TEST(PlanCacheTest, MissThenHitReturnsSameProgram) {
  PlanCache& cache = PlanCache::Get();
  cache.Clear();
  GirBuilder b;
  BuildGcnLike(&b, 8);

  bool hit = true;
  auto first = cache.GetOrCompile(b.graph(), FusionOptions{}, &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(cache.size(), 1u);

  auto second = cache.GetOrCompile(b.graph(), FusionOptions{}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(second.get(), first.get());  // Cached object, not a recompile.
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, RebuiltIdenticalGirHitsViaFingerprint) {
  PlanCache& cache = PlanCache::Get();
  cache.Clear();
  // Two independently built, structurally identical GIRs: keying is by
  // content fingerprint, not object identity.
  GirBuilder b1;
  BuildGcnLike(&b1, 16);
  GirBuilder b2;
  BuildGcnLike(&b2, 16);
  ASSERT_EQ(b1.graph().Fingerprint(), b2.graph().Fingerprint());

  bool hit = true;
  auto first = cache.GetOrCompile(b1.graph(), FusionOptions{}, &hit);
  EXPECT_FALSE(hit);
  auto second = cache.GetOrCompile(b2.graph(), FusionOptions{}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(second.get(), first.get());
}

TEST(PlanCacheTest, DifferentGirOrOptionsMiss) {
  PlanCache& cache = PlanCache::Get();
  cache.Clear();
  GirBuilder narrow;
  BuildGcnLike(&narrow, 8);
  GirBuilder wide;
  BuildGcnLike(&wide, 32);  // Width is part of the content fingerprint.
  ASSERT_NE(narrow.graph().Fingerprint(), wide.graph().Fingerprint());

  bool hit = true;
  cache.GetOrCompile(narrow.graph(), FusionOptions{}, &hit);
  EXPECT_FALSE(hit);
  cache.GetOrCompile(wide.graph(), FusionOptions{}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);

  // Same GIR, fusion disabled -> distinct plan (the no-fusion ablation
  // materializes every intermediate), so it must be a distinct entry.
  FusionOptions unfused;
  unfused.enable_fusion = false;
  cache.GetOrCompile(narrow.graph(), unfused, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PlanCacheTest, ClearDropsEntriesAndNextLookupRecompiles) {
  PlanCache& cache = PlanCache::Get();
  cache.Clear();
  GirBuilder b;
  BuildGcnLike(&b, 4);
  bool hit = true;
  cache.GetOrCompile(b.graph(), FusionOptions{}, &hit);
  ASSERT_FALSE(hit);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.GetOrCompile(b.graph(), FusionOptions{}, &hit);
  EXPECT_FALSE(hit);
}

TEST(PlanCacheTest, ExecutorCompilesOncePerProgramAcrossRuns) {
  PlanCache& cache = PlanCache::Get();
  cache.Clear();
  GirBuilder b;
  BuildGcnLike(&b, 8);
  Graph g = TestGraph(150, 900, 7);
  FeatureMap features = TestFeatures(g, 8, 11);

  const uint64_t misses_before = cache.misses();
  const uint64_t hits_before = cache.hits();
  // Fresh executor per run, like the training loop constructs per call: the
  // cache, not the executor, carries the compile across epochs.
  Tensor first;
  for (int run = 0; run < 4; ++run) {
    SeastarExecutor ex;
    RunResult result = ex.Run(b.graph(), g, features);
    if (run == 0) {
      first = result.outputs.at("out");
    } else {
      // Reusing the cached plan must not perturb results in any bit.
      EXPECT_TRUE(result.outputs.at("out").AllClose(first, 0.0f));
    }
  }
  EXPECT_EQ(cache.misses() - misses_before, 1u);
  EXPECT_EQ(cache.hits() - hits_before, 3u);
}

TEST(PlanCacheTest, CachedPlanIsCorrectOnADifferentGraph) {
  PlanCache& cache = PlanCache::Get();
  cache.Clear();
  // Warm the cache on one graph, then run the same program on another:
  // compilation never reads the graph, so the second run must hit AND agree
  // with hand-computed values on the new topology.
  GirBuilder warm;
  warm.MarkOutput(AggSum(warm.Src("h", 2)), "out");
  {
    Graph g = TestGraph(64, 300, 3);
    Rng rng(5);
    FeatureMap f;
    f.vertex["h"] = ops::RandomNormal({g.num_vertices(), 2}, 0.0f, 1.0f, rng);
    SeastarExecutor ex;
    ex.Run(warm.graph(), g, f);
  }
  const uint64_t misses_before = cache.misses();

  // Star: vertices 1..4 point at 0, so out[0] sums the leaf features.
  Graph star = ToGraph(Star(5));
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 2)), "out");
  FeatureMap features;
  features.vertex["h"] = Tensor({5, 2}, {0, 0, 1, 10, 2, 20, 3, 30, 4, 40});
  SeastarExecutor ex;
  RunResult result = ex.Run(b.graph(), star, features);
  EXPECT_EQ(cache.misses(), misses_before);  // Pure hit.
  const Tensor& out = result.outputs.at("out");
  EXPECT_FLOAT_EQ(out.at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 100.0f);
  EXPECT_FLOAT_EQ(out.at(2, 0), 0.0f);
}

}  // namespace
}  // namespace seastar
