// Correctness of the Fig. 12 micro-benchmark kernels: every strategy must
// produce the identical neighbor-feature sum.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/exec/neighbor_access.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

struct GraphPair {
  Graph sorted;
  Graph unsorted;
};

GraphPair MakeGraphs(int64_t n, int64_t m, uint64_t seed, bool skewed) {
  Rng rng(seed);
  CooEdges edges = skewed ? Rmat(n, m, rng) : ErdosRenyi(n, m, rng);
  CooEdges copy = edges;
  GraphOptions unsorted_options;
  unsorted_options.sort_by_degree = false;
  GraphPair pair{ToGraph(std::move(edges)), ToGraph(std::move(copy), {}, 1, unsorted_options)};
  return pair;
}

Tensor ReferenceNeighborSum(const Graph& g, const Tensor& features) {
  const int64_t n = g.num_vertices();
  const int64_t d = features.dim(1);
  Tensor out = Tensor::Zeros({n, d});
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    const int32_t src = g.edge_src()[static_cast<size_t>(e)];
    const int32_t dst = g.edge_dst()[static_cast<size_t>(e)];
    for (int64_t j = 0; j < d; ++j) {
      out.at(dst, j) += features.at(src, j);
    }
  }
  return out;
}

class NeighborAccessTest
    : public ::testing::TestWithParam<std::tuple<NeighborAccessStrategy, int>> {};

TEST_P(NeighborAccessTest, MatchesReference) {
  const auto [strategy, feature_dim] = GetParam();
  GraphPair graphs = MakeGraphs(300, 3000, 42, /*skewed=*/true);
  Rng rng(1);
  Tensor features =
      ops::RandomNormal({graphs.sorted.num_vertices(), feature_dim}, 0, 1, rng);
  Tensor expected = ReferenceNeighborSum(graphs.sorted, features);
  Tensor out = RunNeighborAccess(strategy, graphs.sorted, graphs.unsorted, features);
  EXPECT_TRUE(out.AllClose(expected, 1e-3f))
      << NeighborAccessStrategyName(strategy) << " D=" << feature_dim;
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndWidths, NeighborAccessTest,
    ::testing::Combine(::testing::Values(NeighborAccessStrategy::kDglBinarySearch,
                                         NeighborAccessStrategy::kBasic,
                                         NeighborAccessStrategy::kFaUnsorted,
                                         NeighborAccessStrategy::kFaSortedAtomic,
                                         NeighborAccessStrategy::kFaSortedDynamic),
                       ::testing::Values(1, 2, 16, 33, 64)),
    [](const ::testing::TestParamInfo<std::tuple<NeighborAccessStrategy, int>>& info) {
      std::string name = NeighborAccessStrategyName(std::get<0>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name + "_D" + std::to_string(std::get<1>(info.param));
    });

TEST(NeighborAccessStrategyTest, NamesAreUnique) {
  std::set<std::string> names;
  for (auto s : {NeighborAccessStrategy::kDglBinarySearch, NeighborAccessStrategy::kBasic,
                 NeighborAccessStrategy::kFaUnsorted, NeighborAccessStrategy::kFaSortedAtomic,
                 NeighborAccessStrategy::kFaSortedDynamic}) {
    names.insert(NeighborAccessStrategyName(s));
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(NeighborAccessTest, EmptyGraphProducesZeros) {
  GraphPair graphs;
  GraphOptions unsorted_options;
  unsorted_options.sort_by_degree = false;
  graphs.sorted = Graph::FromCoo(5, {}, {});
  graphs.unsorted = Graph::FromCoo(5, {}, {}, {}, 1, unsorted_options);
  Rng rng(2);
  Tensor features = ops::RandomNormal({5, 4}, 0, 1, rng);
  for (auto s : {NeighborAccessStrategy::kBasic, NeighborAccessStrategy::kFaSortedDynamic}) {
    Tensor out = RunNeighborAccess(s, graphs.sorted, graphs.unsorted, features);
    EXPECT_TRUE(out.AllClose(Tensor::Zeros({5, 4}), 1e-6f));
  }
}

}  // namespace
}  // namespace seastar
