#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/exec/baseline_executor.h"
#include "src/exec/seastar_executor.h"
#include "src/gir/builder.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

struct AllExecutors {
  SeastarExecutor seastar;
  SeastarExecutor seastar_unfused{[] {
    SeastarExecutorOptions o;
    o.enable_fusion = false;
    return o;
  }()};
  BaselineExecutor dgl{[] {
    BaselineExecutorOptions o;
    o.flavor = BaselineFlavor::kDglLike;
    return o;
  }()};
  BaselineExecutor pyg{[] {
    BaselineExecutorOptions o;
    o.flavor = BaselineFlavor::kPygLike;
    return o;
  }()};
};

// Runs the GIR through all four execution strategies and checks that every
// output tensor agrees.
void ExpectAllExecutorsAgree(const GirGraph& gir, const Graph& graph,
                             const FeatureMap& features, float tol = 1e-4f) {
  AllExecutors ex;
  RunResult a = ex.seastar.Run(gir, graph, features);
  RunResult b = ex.seastar_unfused.Run(gir, graph, features);
  RunResult c = ex.dgl.Run(gir, graph, features);
  RunResult d = ex.pyg.Run(gir, graph, features);
  ASSERT_FALSE(a.outputs.empty());
  for (const auto& [name, tensor] : a.outputs) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(b.outputs.count(name));
    ASSERT_TRUE(c.outputs.count(name));
    ASSERT_TRUE(d.outputs.count(name));
    EXPECT_TRUE(tensor.AllClose(b.outputs.at(name), tol)) << "seastar vs unfused";
    EXPECT_TRUE(tensor.AllClose(c.outputs.at(name), tol)) << "seastar vs dgl-like";
    EXPECT_TRUE(tensor.AllClose(d.outputs.at(name), tol)) << "seastar vs pyg-like";
  }
}

Graph RandomGraph(int64_t n, int64_t m, uint64_t seed, bool skewed = false) {
  Rng rng(seed);
  CooEdges edges = skewed ? Rmat(n, m, rng) : ErdosRenyi(n, m, rng);
  AddSelfLoops(edges);  // Avoid isolated vertices for softmax-style kernels.
  return ToGraph(std::move(edges));
}

FeatureMap RandomVertexFeatures(const Graph& g, std::vector<std::pair<std::string, int64_t>> keys,
                                uint64_t seed) {
  Rng rng(seed);
  FeatureMap features;
  for (const auto& [key, width] : keys) {
    features.vertex[key] = ops::RandomNormal({g.num_vertices(), width}, 0.0f, 1.0f, rng);
  }
  return features;
}

TEST(ExecTest, CopySumOnStarHandComputed) {
  // Star: vertices 1..4 point at vertex 0. out[0] = sum of their features.
  Graph g = ToGraph(Star(5));
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 2)), "out");
  FeatureMap features;
  features.vertex["h"] = Tensor({5, 2}, {0, 0, 1, 10, 2, 20, 3, 30, 4, 40});

  SeastarExecutor ex;
  RunResult result = ex.Run(b.graph(), g, features);
  const Tensor& out = result.outputs.at("out");
  EXPECT_FLOAT_EQ(out.at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 100.0f);
  // Leaves have no in-edges.
  EXPECT_FLOAT_EQ(out.at(3, 0), 0.0f);
}

TEST(ExecTest, ChainShiftHandComputed) {
  // Chain 0->1->2->3: out[v] = h[v-1].
  Graph g = ToGraph(Chain(4));
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 1)), "out");
  FeatureMap features;
  features.vertex["h"] = Tensor({4, 1}, {5, 6, 7, 8});
  SeastarExecutor ex;
  RunResult result = ex.Run(b.graph(), g, features);
  const Tensor& out = result.outputs.at("out");
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(2, 0), 6.0f);
  EXPECT_FLOAT_EQ(out.at(3, 0), 7.0f);
}

TEST(ExecTest, AggToSrcUsesOutEdges) {
  // Star: AggSum to source over v.g means every leaf u receives g[0].
  Graph g = ToGraph(Star(4));
  GirBuilder b;
  b.MarkOutput(AggSum(b.Dst("g", 1), AggTo::kSrc), "out");
  FeatureMap features;
  features.vertex["g"] = Tensor({4, 1}, {42, 0, 0, 0});
  SeastarExecutor ex;
  RunResult result = ex.Run(b.graph(), g, features);
  const Tensor& out = result.outputs.at("out");
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);   // Center has no out-edges.
  EXPECT_FLOAT_EQ(out.at(1, 0), 42.0f);
  EXPECT_FLOAT_EQ(out.at(3, 0), 42.0f);
}

TEST(ExecTest, GcnKernelAllExecutorsAgree) {
  Graph g = RandomGraph(200, 1500, 1);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 16) * b.Src("norm", 1)), "out");
  FeatureMap features = RandomVertexFeatures(g, {{"h", 16}, {"norm", 1}}, 2);
  ExpectAllExecutorsAgree(b.graph(), g, features);
}

TEST(ExecTest, GatKernelAllExecutorsAgree) {
  Graph g = RandomGraph(150, 1200, 3);
  GirBuilder b;
  Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
  Value a = e / AggSum(e);
  b.MarkOutput(AggSum(a * b.Src("h", 8)), "out");
  FeatureMap features = RandomVertexFeatures(g, {{"eu", 1}, {"ev", 1}, {"h", 8}}, 4);
  ExpectAllExecutorsAgree(b.graph(), g, features);
}

TEST(ExecTest, GatAttentionRowsSumToOne) {
  // Softmax property: per destination, attention weights must sum to 1.
  Graph g = RandomGraph(100, 900, 5);
  GirBuilder b;
  Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
  Value a = e / AggSum(e);
  b.MarkOutput(AggSum(a), "attn_total");
  FeatureMap features = RandomVertexFeatures(g, {{"eu", 1}, {"ev", 1}}, 6);
  SeastarExecutor ex;
  RunResult result = ex.Run(b.graph(), g, features);
  const Tensor& totals = result.outputs.at("attn_total");
  for (int64_t v = 0; v < g.num_vertices(); ++v) {
    if (g.InDegree(static_cast<int32_t>(v)) > 0) {
      EXPECT_NEAR(totals.at(v, 0), 1.0f, 1e-4) << v;
    }
  }
}

TEST(ExecTest, EdgeFeaturesAllExecutorsAgree) {
  Graph g = RandomGraph(80, 700, 7);
  GirBuilder b;
  Value w = b.Edge("w", 1);
  b.MarkOutput(AggSum(b.Src("h", 4) * w), "out");
  Rng rng(8);
  FeatureMap features = RandomVertexFeatures(g, {{"h", 4}}, 9);
  features.edge["w"] = ops::RandomNormal({g.num_edges(), 1}, 0.0f, 1.0f, rng);
  ExpectAllExecutorsAgree(b.graph(), g, features);
}

TEST(ExecTest, SkewedGraphAllExecutorsAgree) {
  Graph g = RandomGraph(300, 4000, 10, /*skewed=*/true);
  GirBuilder b;
  Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
  Value a = e / AggSum(e);
  b.MarkOutput(AggSum(a * b.Src("h", 4)), "out");
  FeatureMap features = RandomVertexFeatures(g, {{"eu", 1}, {"ev", 1}, {"h", 4}}, 11);
  ExpectAllExecutorsAgree(b.graph(), g, features);
}

TEST(ExecTest, AggMaxAndMeanAgree) {
  Graph g = RandomGraph(120, 1000, 12);
  GirBuilder b;
  Value h = b.Src("h", 8);
  b.MarkOutput(AggMax(h), "max");
  b.MarkOutput(AggMean(h), "mean");
  FeatureMap features = RandomVertexFeatures(g, {{"h", 8}}, 13);
  // Two outputs: run only executors that support multi-output (all do).
  AllExecutors ex;
  RunResult a = ex.seastar.Run(b.graph(), g, features);
  RunResult c = ex.dgl.Run(b.graph(), g, features);
  RunResult d = ex.pyg.Run(b.graph(), g, features);
  EXPECT_TRUE(a.outputs.at("max").AllClose(c.outputs.at("max"), 1e-4f));
  EXPECT_TRUE(a.outputs.at("max").AllClose(d.outputs.at("max"), 1e-4f));
  EXPECT_TRUE(a.outputs.at("mean").AllClose(c.outputs.at("mean"), 1e-4f));
  EXPECT_TRUE(a.outputs.at("mean").AllClose(d.outputs.at("mean"), 1e-4f));
}

TEST(ExecTest, AggMeanMatchesManualDivide) {
  Graph g = RandomGraph(60, 400, 14);
  GirBuilder b1;
  b1.MarkOutput(AggMean(b1.Src("h", 4)), "out");
  GirBuilder b2;
  b2.MarkOutput(AggSum(b2.Src("h", 4)), "out");
  FeatureMap features = RandomVertexFeatures(g, {{"h", 4}}, 15);
  SeastarExecutor ex;
  Tensor mean = ex.Run(b1.graph(), g, features).outputs.at("out");
  Tensor sum = ex.Run(b2.graph(), g, features).outputs.at("out");
  for (int64_t v = 0; v < g.num_vertices(); ++v) {
    const int64_t deg = g.InDegree(static_cast<int32_t>(v));
    for (int64_t j = 0; j < 4; ++j) {
      const float expected = deg > 0 ? sum.at(v, j) / static_cast<float>(deg) : 0.0f;
      EXPECT_NEAR(mean.at(v, j), expected, 1e-4) << v << "," << j;
    }
  }
}

TEST(ExecTest, VertexWiseOnlyProgram) {
  Graph g = RandomGraph(50, 300, 16);
  GirBuilder b;
  Value x = b.Dst("x", 4);
  b.MarkOutput(Tanh(x * 2.0f), "out");
  FeatureMap features = RandomVertexFeatures(g, {{"x", 4}}, 17);
  SeastarExecutor ex;
  RunResult result = ex.Run(b.graph(), g, features);
  Tensor expected = ops::Tanh(ops::MulScalar(features.vertex.at("x"), 2.0f));
  EXPECT_TRUE(result.outputs.at("out").AllClose(expected, 1e-5f));
}

TEST(ExecTest, ScalarConstantsFoldIntoKernels) {
  Graph g = RandomGraph(40, 200, 18);
  GirBuilder b;
  Value h = b.Src("h", 4);
  b.MarkOutput(AggSum(h * 0.5f + 1.0f), "out");
  FeatureMap features = RandomVertexFeatures(g, {{"h", 4}}, 19);
  ExpectAllExecutorsAgree(b.graph(), g, features);
}

TEST(ExecTest, UnsortedGraphGivesSameResults) {
  Rng rng(20);
  CooEdges edges = ErdosRenyi(100, 800, rng);
  CooEdges copy = edges;
  GraphOptions unsorted;
  unsorted.sort_by_degree = false;
  Graph sorted_g = ToGraph(std::move(edges));
  Graph unsorted_g = ToGraph(std::move(copy), {}, 1, unsorted);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 8) * b.Src("norm", 1)), "out");
  FeatureMap features = RandomVertexFeatures(sorted_g, {{"h", 8}, {"norm", 1}}, 21);
  SeastarExecutor ex;
  Tensor a = ex.Run(b.graph(), sorted_g, features).outputs.at("out");
  Tensor c = ex.Run(b.graph(), unsorted_g, features).outputs.at("out");
  EXPECT_TRUE(a.AllClose(c, 1e-5f));
}

TEST(ExecTest, WideFeaturesExerciseMultiChunkGroups) {
  Graph g = RandomGraph(60, 500, 22);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 300)), "out");  // Wider than one block chunk.
  FeatureMap features = RandomVertexFeatures(g, {{"h", 300}}, 23);
  ExpectAllExecutorsAgree(b.graph(), g, features);
}

TEST(ExecTest, BinaryReduceFusionMatchesUnfusedBaseline) {
  Graph g = RandomGraph(100, 900, 24);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 8) * b.Src("norm", 1)), "out");
  FeatureMap features = RandomVertexFeatures(g, {{"h", 8}, {"norm", 1}}, 25);
  BaselineExecutorOptions fused;
  fused.flavor = BaselineFlavor::kDglLike;
  fused.fuse_binary_reduce = true;
  BaselineExecutorOptions unfused = fused;
  unfused.fuse_binary_reduce = false;
  Tensor a = BaselineExecutor(fused).Run(b.graph(), g, features).outputs.at("out");
  Tensor c = BaselineExecutor(unfused).Run(b.graph(), g, features).outputs.at("out");
  EXPECT_TRUE(a.AllClose(c, 1e-4f));
}

TEST(ExecTest, BinaryReduceFusionSkipsMaterialization) {
  Graph g = RandomGraph(100, 900, 26);
  GirBuilder b;
  Value prod = b.Src("h", 8) * b.Src("norm", 1);
  b.MarkOutput(AggSum(prod), "out");
  FeatureMap features = RandomVertexFeatures(g, {{"h", 8}, {"norm", 1}}, 27);
  BaselineExecutor dgl({BaselineFlavor::kDglLike, true});
  RunResult result = dgl.Run(b.graph(), g, features);
  // The fused binary op must not appear in the saved map.
  EXPECT_EQ(result.saved->count(prod.id()), 0u);
  BaselineExecutor pyg({BaselineFlavor::kPygLike, true});
  RunResult pyg_result = pyg.Run(b.graph(), g, features);
  // PyG materializes it (never fuses).
  EXPECT_EQ(pyg_result.saved->count(prod.id()), 1u);
}

TEST(ExecTest, PygMaterializesGatheredOperands) {
  Graph g = RandomGraph(100, 900, 28);
  GirBuilder b;
  b.MarkOutput(AggSum(Exp(b.Src("h", 8))), "out");
  FeatureMap features = RandomVertexFeatures(g, {{"h", 8}}, 29);
  BaselineExecutor pyg({BaselineFlavor::kPygLike, true});
  BaselineExecutor dgl({BaselineFlavor::kDglLike, true});
  RunResult pr = pyg.Run(b.graph(), g, features);
  RunResult dr = dgl.Run(b.graph(), g, features);
  uint64_t pyg_bytes = 0;
  for (const auto& [id, tensor] : *pr.saved) {
    pyg_bytes += tensor.nbytes();
  }
  uint64_t dgl_bytes = 0;
  for (const auto& [id, tensor] : *dr.saved) {
    dgl_bytes += tensor.nbytes();
  }
  // The gather of h onto edges costs PyG an extra [E, 8] tensor.
  EXPECT_GT(pyg_bytes, dgl_bytes);
}

TEST(ExecTest, BlockScheduleVariantsProduceIdenticalResults) {
  Graph g = RandomGraph(200, 2000, 30, /*skewed=*/true);
  GirBuilder b;
  Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
  b.MarkOutput(AggSum(e / AggSum(e) * b.Src("h", 8)), "out");
  FeatureMap features = RandomVertexFeatures(g, {{"eu", 1}, {"ev", 1}, {"h", 8}}, 31);
  Tensor reference;
  for (BlockSchedule schedule : {BlockSchedule::kStatic, BlockSchedule::kAtomicPerBlock,
                                 BlockSchedule::kChunkedDynamic}) {
    SeastarExecutorOptions options;
    options.schedule = schedule;
    SeastarExecutor ex(options);
    Tensor out = ex.Run(b.graph(), g, features).outputs.at("out");
    if (!reference.defined()) {
      reference = out;
    } else {
      EXPECT_TRUE(reference.AllClose(out, 1e-5f)) << BlockScheduleName(schedule);
    }
  }
}

}  // namespace
}  // namespace seastar
