// Mini-batch sampled training: learning on an SBM graph (where communities
// are actually learnable), backend invariance of the pipeline, and config
// validation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/executor_factory.h"
#include "src/core/minibatch.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

// An SBM dataset with community-informative features.
Dataset SbmDataset(uint64_t seed, int64_t n = 240, int32_t communities = 3) {
  Rng rng(seed);
  SbmResult sbm = StochasticBlockModel(n, communities, 0.08, 0.005, rng);
  AddSelfLoops(sbm.edges);

  Dataset data;
  data.spec.name = "sbm";
  data.spec.num_vertices = n;
  data.spec.num_classes = communities;
  data.spec.feature_dim = 8;
  data.graph = ToGraph(std::move(sbm.edges));
  data.spec.num_edges = data.graph.num_edges();
  // Features: community mean + noise (signal-to-noise chosen so a 2-layer
  // GCN separates communities easily).
  data.features = ops::RandomNormal({n, 8}, 0.0f, 1.0f, rng);
  for (int64_t v = 0; v < n; ++v) {
    data.features.at(v, sbm.labels[static_cast<size_t>(v)] % 8) += 2.0f;
  }
  data.labels = std::move(sbm.labels);
  data.gcn_norm = Tensor({n, 1});
  for (int64_t v = 0; v < n; ++v) {
    data.gcn_norm.at(v, 0) =
        1.0f / std::sqrt(static_cast<float>(std::max<int64_t>(1, data.graph.InDegree(
                                                                      static_cast<int32_t>(v)))));
  }
  for (int64_t v = 0; v < n; v += 10) {
    data.train_mask.push_back(static_cast<int32_t>(v));
  }
  return data;
}

TEST(MiniBatchTest, LearnsCommunitiesOnSbm) {
  Dataset data = SbmDataset(1);
  MiniBatchConfig config;
  config.epochs = 4;
  config.batch_size = 48;
  config.fanouts = {8, 8};
  config.learning_rate = 0.02f;
  MiniBatchResult result = TrainMiniBatchGcn(data, config, MakeExecutor(BackendConfig{}));
  EXPECT_GT(result.batches_run, 0);
  EXPECT_GT(result.seed_accuracy, 0.8f);
  EXPECT_LT(result.final_loss, 1.0f);
}

TEST(MiniBatchTest, RunsOnEveryBackend) {
  Dataset data = SbmDataset(2, 120);
  for (Backend backend_kind : {Backend::kSeastar, Backend::kDglLike, Backend::kPygLike}) {
    MiniBatchConfig config;
    config.epochs = 1;
    config.batch_size = 40;
    config.fanouts = {5, 5};
    BackendConfig backend;
    backend.backend = backend_kind;
    MiniBatchResult result = TrainMiniBatchGcn(data, config, MakeExecutor(backend));
    EXPECT_EQ(result.batches_run, 3) << BackendName(backend_kind);
    EXPECT_GT(result.avg_batch_ms, 0.0);
  }
}

TEST(MiniBatchTest, FullFanoutMatchesMoreNeighbors) {
  // fanout 0 (= all) must sample at least as many edges per block as a small
  // fanout; sanity-check through the sampler directly.
  Dataset data = SbmDataset(3, 90);
  Rng rng(4);
  SampledSubgraph small = SampleNeighborhood(data.graph, {0, 1, 2}, {2, 2}, rng);
  Rng rng2(4);
  SampledSubgraph full = SampleNeighborhood(data.graph, {0, 1, 2}, {0, 0}, rng2);
  EXPECT_GE(full.graph.num_edges(), small.graph.num_edges());
}

TEST(SbmTest, GeneratorIsCommunityBiased) {
  Rng rng(5);
  SbmResult sbm = StochasticBlockModel(150, 3, 0.1, 0.005, rng);
  int64_t intra = 0;
  int64_t inter = 0;
  for (size_t e = 0; e < sbm.edges.src.size(); ++e) {
    const bool same = sbm.labels[static_cast<size_t>(sbm.edges.src[e])] ==
                      sbm.labels[static_cast<size_t>(sbm.edges.dst[e])];
    (same ? intra : inter) += 1;
  }
  EXPECT_GT(intra, inter * 3);
}

}  // namespace
}  // namespace seastar
