#include <gtest/gtest.h>

#include "src/common/logging.h"

namespace seastar {
namespace {

TEST(LoggingTest, SeverityOverrideRoundTrips) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, ChecksPassOnTrueConditions) {
  SEASTAR_CHECK(true) << "never printed";
  SEASTAR_CHECK_EQ(2 + 2, 4);
  SEASTAR_CHECK_NE(1, 2);
  SEASTAR_CHECK_LT(1, 2);
  SEASTAR_CHECK_LE(2, 2);
  SEASTAR_CHECK_GT(3, 2);
  SEASTAR_CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH({ SEASTAR_CHECK(1 == 2) << "boom"; }, "Check failed");
  EXPECT_DEATH({ SEASTAR_CHECK_EQ(3, 4); }, "3 vs 4");
}

TEST(LoggingTest, NonFatalSeveritiesDoNotAbort) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kFatal);  // Mute output during the test.
  SEASTAR_LOG(Debug) << "quiet";
  SEASTAR_LOG(Info) << "quiet";
  SEASTAR_LOG(Warning) << "quiet";
  SEASTAR_LOG(Error) << "quiet";
  SetMinLogSeverity(original);
}

}  // namespace
}  // namespace seastar
