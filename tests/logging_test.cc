#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "src/common/logging.h"

namespace seastar {
namespace {

TEST(LoggingTest, SeverityOverrideRoundTrips) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, ChecksPassOnTrueConditions) {
  SEASTAR_CHECK(true) << "never printed";
  SEASTAR_CHECK_EQ(2 + 2, 4);
  SEASTAR_CHECK_NE(1, 2);
  SEASTAR_CHECK_LT(1, 2);
  SEASTAR_CHECK_LE(2, 2);
  SEASTAR_CHECK_GT(3, 2);
  SEASTAR_CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH({ SEASTAR_CHECK(1 == 2) << "boom"; }, "Check failed");
  EXPECT_DEATH({ SEASTAR_CHECK_EQ(3, 4); }, "3 vs 4");
}

TEST(LoggingTest, LogKvFormatsKeyValuePairs) {
  std::ostringstream os;
  os << "done" << LogKv("id", 17) << LogKv("ms", 3.5);
  EXPECT_EQ(os.str(), "done id=17 ms=3.5");
}

TEST(LoggingTest, LogKvQuotesStringsWithSpaces) {
  std::ostringstream os;
  os << LogKv("msg", std::string("two words")) << LogKv("plain", std::string("ok"));
  EXPECT_EQ(os.str(), " msg=\"two words\" plain=ok");
}

TEST(LoggingTest, QuoteIfNeededEscapesEmbeddedQuotes) {
  EXPECT_EQ(log_internal::QuoteIfNeeded("bare"), "bare");
  EXPECT_EQ(log_internal::QuoteIfNeeded("a\"b"), "\"a\\\"b\"");
}

// The env filter is parsed once per process, so each case runs inside a
// death-test child (which inherits the freshly set SEASTAR_LOG) and reports
// the parsed minimum on stderr before aborting.
TEST(LoggingDeathTest, EnvFilterParsesSeverityNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  setenv("SEASTAR_LOG", "warning", 1);
  EXPECT_DEATH(
      {
        std::fprintf(stderr, "min=%d\n", static_cast<int>(MinLogSeverity()));
        std::abort();
      },
      "min=2");
  unsetenv("SEASTAR_LOG");
}

TEST(LoggingDeathTest, EnvFilterParsesNumericLevels) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  setenv("SEASTAR_LOG", "3", 1);
  EXPECT_DEATH(
      {
        std::fprintf(stderr, "min=%d\n", static_cast<int>(MinLogSeverity()));
        std::abort();
      },
      "min=3");
  unsetenv("SEASTAR_LOG");
}

TEST(LoggingDeathTest, UnparseableEnvFilterWarnsAndDefaultsToInfo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  setenv("SEASTAR_LOG", "bogus", 1);
  EXPECT_DEATH(
      {
        std::fprintf(stderr, "min=%d\n", static_cast<int>(MinLogSeverity()));
        std::abort();
      },
      "min=1");
  unsetenv("SEASTAR_LOG");
}

TEST(LoggingTest, NonFatalSeveritiesDoNotAbort) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kFatal);  // Mute output during the test.
  SEASTAR_LOG(Debug) << "quiet";
  SEASTAR_LOG(Info) << "quiet";
  SEASTAR_LOG(Warning) << "quiet";
  SEASTAR_LOG(Error) << "quiet";
  SetMinLogSeverity(original);
}

}  // namespace
}  // namespace seastar
