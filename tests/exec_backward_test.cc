// End-to-end gradient checks: backward GIRs (built by GIR autodiff, fused by
// the FSM, executed by each backend) are validated against central finite
// differences of the forward program, and the backends are cross-checked
// against one another — including the baselines' saved-tensor seeding path.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/common/rng.h"
#include "src/exec/baseline_executor.h"
#include "src/exec/seastar_executor.h"
#include "src/gir/autodiff.h"
#include "src/gir/builder.h"
#include "src/gir/passes.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

struct Program {
  GirGraph forward;
  BackwardGir backward;
};

Program Finalize(GirBuilder&& builder) {
  Program p;
  PassResult passes = RunStandardPasses(builder.graph());
  p.forward = std::move(passes.graph);
  p.backward = BuildBackward(p.forward, p.forward.outputs()[0]);
  OptimizeBackward(&p.backward);
  return p;
}

Graph SmallGraph(uint64_t seed, int64_t n = 12, int64_t m = 40) {
  Rng rng(seed);
  CooEdges edges = ErdosRenyi(n, m, rng);
  AddSelfLoops(edges);
  return ToGraph(std::move(edges));
}

// Sum-of-outputs loss evaluated with the Seastar executor.
float ForwardLoss(const Program& p, const Graph& g, const FeatureMap& features) {
  SeastarExecutor ex;
  RunResult result = ex.Run(p.forward, g, features);
  return ops::SumAll(result.outputs.begin()->second);
}

// Backward pass with grad(out) = 1, returning grads per input-grad name.
std::map<std::string, Tensor> BackwardGrads(const Program& p, const Graph& g,
                                            FeatureMap features, const Tensor& out_shape_like) {
  features.vertex[kGradInputKey] = Tensor::Ones(out_shape_like.shape());
  SeastarExecutor ex;
  RunResult result = ex.Run(p.backward.graph, g, features);
  std::map<std::string, Tensor> grads;
  for (const InputGradInfo& info : p.backward.input_grads) {
    const Tensor& piece = result.outputs.at(info.output_name);
    auto it = grads.find(info.key);
    if (it == grads.end()) {
      grads[info.key] = piece.Clone();
    } else {
      // The same tensor accessed from both endpoints (e.g. APPNP's norm as
      // u.norm and v.norm): total gradient is the sum of both access grads.
      it->second = ops::Add(it->second, piece);
    }
  }
  return grads;
}

void CheckInputGradient(const Program& p, const Graph& g, FeatureMap& features,
                        const std::string& key, const Tensor& analytic, float eps = 1e-2f,
                        float tol = 3e-2f) {
  Tensor& value = features.vertex.at(key);
  ASSERT_EQ(analytic.shape(), value.shape()) << key;
  for (int64_t i = 0; i < value.numel(); ++i) {
    const float saved = value.at(i);
    value.at(i) = saved + eps;
    const float up = ForwardLoss(p, g, features);
    value.at(i) = saved - eps;
    const float down = ForwardLoss(p, g, features);
    value.at(i) = saved;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(analytic.at(i), numeric, tol * std::max(1.0f, std::fabs(numeric)))
        << key << " element " << i;
  }
}

TEST(ExecBackwardTest, GcnGradientsMatchFiniteDifferences) {
  Graph g = SmallGraph(1);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 3) * b.Src("norm", 1)), "out");
  Program p = Finalize(std::move(b));

  Rng rng(2);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 3}, 0, 1, rng);
  features.vertex["norm"] = ops::RandomUniform({g.num_vertices(), 1}, 0.5f, 1.5f, rng);

  SeastarExecutor ex;
  Tensor out = ex.Run(p.forward, g, features).outputs.at("out");
  auto grads = BackwardGrads(p, g, features, out);
  CheckInputGradient(p, g, features, "h", grads.at("h"));
  CheckInputGradient(p, g, features, "norm", grads.at("norm"));
}

TEST(ExecBackwardTest, GatGradientsMatchFiniteDifferences) {
  Graph g = SmallGraph(3);
  GirBuilder b;
  Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
  Value a = e / AggSum(e);
  b.MarkOutput(AggSum(a * b.Src("h", 3)), "out");
  Program p = Finalize(std::move(b));

  Rng rng(4);
  FeatureMap features;
  features.vertex["eu"] = ops::RandomNormal({g.num_vertices(), 1}, 0, 0.5f, rng);
  features.vertex["ev"] = ops::RandomNormal({g.num_vertices(), 1}, 0, 0.5f, rng);
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 3}, 0, 1, rng);

  SeastarExecutor ex;
  Tensor out = ex.Run(p.forward, g, features).outputs.at("out");
  auto grads = BackwardGrads(p, g, features, out);
  CheckInputGradient(p, g, features, "h", grads.at("h"));
  CheckInputGradient(p, g, features, "eu", grads.at("eu"), 1e-2f, 5e-2f);
  CheckInputGradient(p, g, features, "ev", grads.at("ev"), 1e-2f, 5e-2f);
}

TEST(ExecBackwardTest, AppnpStyleGradients) {
  // (1-alpha) * AggSum(u.h * u.norm) * v.norm + alpha * v.h0
  Graph g = SmallGraph(5);
  GirBuilder b;
  Value prop = AggSum(b.Src("h", 3) * b.Src("norm", 1)) * b.Dst("norm", 1);
  b.MarkOutput(prop * 0.9f + b.Dst("h0", 3) * 0.1f, "out");
  Program p = Finalize(std::move(b));

  Rng rng(6);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 3}, 0, 1, rng);
  features.vertex["h0"] = ops::RandomNormal({g.num_vertices(), 3}, 0, 1, rng);
  features.vertex["norm"] = ops::RandomUniform({g.num_vertices(), 1}, 0.5f, 1.5f, rng);

  SeastarExecutor ex;
  Tensor out = ex.Run(p.forward, g, features).outputs.at("out");
  auto grads = BackwardGrads(p, g, features, out);
  CheckInputGradient(p, g, features, "h", grads.at("h"));
  CheckInputGradient(p, g, features, "h0", grads.at("h0"));
  CheckInputGradient(p, g, features, "norm", grads.at("norm"), 1e-2f, 5e-2f);
}

TEST(ExecBackwardTest, MeanAggregationGradients) {
  Graph g = SmallGraph(7);
  GirBuilder b;
  b.MarkOutput(AggMean(Tanh(b.Src("h", 2))), "out");
  Program p = Finalize(std::move(b));
  Rng rng(8);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 2}, 0, 1, rng);
  SeastarExecutor ex;
  Tensor out = ex.Run(p.forward, g, features).outputs.at("out");
  auto grads = BackwardGrads(p, g, features, out);
  CheckInputGradient(p, g, features, "h", grads.at("h"));
}

TEST(ExecBackwardTest, AllBackendsComputeSameGradients) {
  Graph g = SmallGraph(9, 40, 200);
  GirBuilder b;
  Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
  Value a = e / AggSum(e);
  b.MarkOutput(AggSum(a * b.Src("h", 4)), "out");
  Program p = Finalize(std::move(b));

  Rng rng(10);
  FeatureMap features;
  features.vertex["eu"] = ops::RandomNormal({g.num_vertices(), 1}, 0, 0.5f, rng);
  features.vertex["ev"] = ops::RandomNormal({g.num_vertices(), 1}, 0, 0.5f, rng);
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 4}, 0, 1, rng);

  SeastarExecutor seastar;
  BaselineExecutor dgl({BaselineFlavor::kDglLike, true});
  BaselineExecutor pyg({BaselineFlavor::kPygLike, true});

  Tensor out = seastar.Run(p.forward, g, features).outputs.at("out");
  FeatureMap bwd_features = features;
  bwd_features.vertex[kGradInputKey] = Tensor::Ones(out.shape());

  RunResult rs = seastar.Run(p.backward.graph, g, bwd_features);

  // Baselines: forward first to collect saved tensors, then seed the
  // backward recompute copies from them (autograd's saved-tensor path).
  for (BaselineExecutor* baseline : {&dgl, &pyg}) {
    RunResult fwd = baseline->Run(p.forward, g, features);
    SeedMap seed;
    for (size_t fwd_id = 0; fwd_id < p.backward.forward_copy.size(); ++fwd_id) {
      const int32_t bwd_id = p.backward.forward_copy[fwd_id];
      if (bwd_id < 0) {
        continue;
      }
      auto it = fwd.saved->find(static_cast<int32_t>(fwd_id));
      if (it != fwd.saved->end()) {
        seed.emplace(bwd_id, it->second);
      }
    }
    RunResult rb = baseline->Run(p.backward.graph, g, bwd_features, {.seed = &seed});
    for (const InputGradInfo& info : p.backward.input_grads) {
      SCOPED_TRACE(info.output_name);
      EXPECT_TRUE(rs.outputs.at(info.output_name).AllClose(rb.outputs.at(info.output_name), 1e-3f));
    }
  }
}

TEST(ExecBackwardTest, EdgeFeatureGradientIsEdgeTensor) {
  Graph g = SmallGraph(11);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Edge("w", 1) * b.Src("h", 2)), "out");
  Program p = Finalize(std::move(b));
  Rng rng(12);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 2}, 0, 1, rng);
  features.edge["w"] = ops::RandomNormal({g.num_edges(), 1}, 0, 1, rng);

  SeastarExecutor ex;
  Tensor out = ex.Run(p.forward, g, features).outputs.at("out");
  FeatureMap bwd = features;
  bwd.vertex[kGradInputKey] = Tensor::Ones(out.shape());
  RunResult result = ex.Run(p.backward.graph, g, bwd);
  const InputGradInfo* w_info = nullptr;
  for (const InputGradInfo& info : p.backward.input_grads) {
    if (info.key == "w") {
      w_info = &info;
    }
  }
  ASSERT_NE(w_info, nullptr);
  const Tensor& grad_w = result.outputs.at(w_info->output_name);
  ASSERT_EQ(grad_w.dim(0), g.num_edges());
  // d out / d w_e = sum_j h[src(e)][j].
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    const int32_t src = g.edge_src()[static_cast<size_t>(e)];
    const float expected =
        features.vertex["h"].at(src, 0) + features.vertex["h"].at(src, 1);
    EXPECT_NEAR(grad_w.at(e, 0), expected, 1e-4) << e;
  }
}

TEST(ExecBackwardTest, ResidualConnectionGradIsIdentity) {
  // out = AggSum(u.h) + v.h — the gradient of the v.h access is exactly the
  // incoming output gradient (identity adjoint), which reaches the backward
  // outputs as a leaf. Regression test for output-materialization of leaves.
  Graph g = SmallGraph(15);
  GirBuilder b;
  Value h_src = b.Src("h", 2);
  b.MarkOutput(AggSum(h_src) + b.Dst("h", 2), "out");
  Program p = Finalize(std::move(b));
  Rng rng(16);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 2}, 0, 1, rng);
  SeastarExecutor ex;
  Tensor out = ex.Run(p.forward, g, features).outputs.at("out");
  auto grads = BackwardGrads(p, g, features, out);
  CheckInputGradient(p, g, features, "h", grads.at("h"));
}

TEST(ExecBackwardTest, CustomMaxPoolGateGradients) {
  // The custom_model example's layer: max-pool + mean gate + residual.
  Graph g = SmallGraph(17);
  GirBuilder b;
  Value h = b.Src("h", 2);
  Value w = b.Edge("w", 1);
  Value pooled = AggMax(Tanh(h * w));
  Value gate = Sigmoid(AggMean(h));
  b.MarkOutput(pooled * gate + b.Dst("h", 2), "out");
  Program p = Finalize(std::move(b));
  Rng rng(18);
  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 2}, 0, 1, rng);
  features.edge["w"] = ops::RandomUniform({g.num_edges(), 1}, 0.5f, 1.5f, rng);
  SeastarExecutor ex;
  Tensor out = ex.Run(p.forward, g, features).outputs.at("out");
  auto grads = BackwardGrads(p, g, features, out);
  // Max-pool kinks make finite differences unreliable exactly at ties; the
  // random floats here make ties measure-zero, and tolerance absorbs noise.
  CheckInputGradient(p, g, features, "h", grads.at("h"), 1e-3f, 5e-2f);
}

TEST(ExecBackwardTest, FusionOnOffGradientsIdentical) {
  Graph g = SmallGraph(13, 30, 150);
  GirBuilder b;
  Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
  b.MarkOutput(AggSum(e / AggSum(e) * b.Src("h", 4)), "out");
  Program p = Finalize(std::move(b));
  Rng rng(14);
  FeatureMap features;
  features.vertex["eu"] = ops::RandomNormal({g.num_vertices(), 1}, 0, 0.5f, rng);
  features.vertex["ev"] = ops::RandomNormal({g.num_vertices(), 1}, 0, 0.5f, rng);
  features.vertex["h"] = ops::RandomNormal({g.num_vertices(), 4}, 0, 1, rng);
  SeastarExecutor fused;
  SeastarExecutorOptions opts;
  opts.enable_fusion = false;
  SeastarExecutor unfused(opts);
  Tensor out = fused.Run(p.forward, g, features).outputs.at("out");
  FeatureMap bwd = features;
  bwd.vertex[kGradInputKey] = Tensor::Ones(out.shape());
  RunResult a = fused.Run(p.backward.graph, g, bwd);
  RunResult c = unfused.Run(p.backward.graph, g, bwd);
  for (const InputGradInfo& info : p.backward.input_grads) {
    EXPECT_TRUE(a.outputs.at(info.output_name).AllClose(c.outputs.at(info.output_name), 1e-4f))
        << info.output_name;
  }
}

}  // namespace
}  // namespace seastar
