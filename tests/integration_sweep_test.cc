// Cross-cutting integration sweeps: every Table-2 catalogue entry
// materializes consistently, every homogeneous dataset trains one GCN step
// on every backend with identical results, and leftover op coverage (ELU,
// MatrixMarket integer field).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "src/core/executor_factory.h"
#include "src/core/models/gcn.h"
#include "src/core/train.h"
#include "src/graph/io.h"
#include "src/tensor/autograd.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

class CatalogueSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogueSweepTest, MaterializesConsistently) {
  const DatasetSpec* spec = FindDataset(GetParam());
  ASSERT_NE(spec, nullptr);
  DatasetOptions options;
  options.scale = 0.02;
  options.max_feature_dim = 24;
  Dataset data = MakeDataset(*spec, options);

  EXPECT_GE(data.spec.num_vertices, 8);
  EXPECT_EQ(data.graph.num_vertices(), data.spec.num_vertices);
  EXPECT_EQ(data.graph.num_edges(), data.spec.num_edges);
  EXPECT_EQ(data.graph.num_edge_types(), spec->num_relations);
  EXPECT_EQ(static_cast<int64_t>(data.labels.size()), data.spec.num_vertices);
  if (spec->feature_dim > 0) {
    EXPECT_TRUE(data.features.defined());
    EXPECT_LE(data.features.dim(1), 24);
  } else {
    EXPECT_FALSE(data.features.defined());
  }
  // Average degree of the scaled graph stays within 2x of the paper's
  // (self-loops shift it for the sparse citation graphs).
  const double paper_avg =
      static_cast<double>(spec->num_edges) / static_cast<double>(spec->num_vertices);
  EXPECT_LT(data.graph.AverageInDegree(), 2.0 * paper_avg + 2.0) << spec->name;
  EXPECT_GT(data.graph.AverageInDegree(), 0.3 * paper_avg) << spec->name;
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, CatalogueSweepTest,
                         ::testing::Values("cora", "citeseer", "pubmed", "corafull", "ca_cs",
                                           "ca_physics", "amz_photo", "amz_comp", "reddit",
                                           "aifb", "mutag", "bgs"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

class GcnBackendSweepTest
    : public ::testing::TestWithParam<std::tuple<std::string, Backend>> {};

TEST_P(GcnBackendSweepTest, OneTrainingStepMatchesSeastar) {
  const auto& [dataset_name, backend_kind] = GetParam();
  DatasetOptions options;
  options.scale = 0.02;
  options.max_feature_dim = 16;
  Dataset data = MakeDatasetByName(dataset_name, options);

  const auto loss_after_one_step = [&](Backend kind) {
    BackendConfig backend;
    backend.backend = kind;
    GcnConfig config;
    config.dropout = 0.0f;  // Determinism across backends.
    Gcn model(data, config, MakeExecutor(backend));
    TrainConfig train;
    train.epochs = 2;
    train.warmup_epochs = 0;
    return TrainNodeClassification(model, data, train).final_loss;
  };
  EXPECT_NEAR(loss_after_one_step(backend_kind), loss_after_one_step(Backend::kSeastar), 2e-3)
      << dataset_name;
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndBackends, GcnBackendSweepTest,
    ::testing::Combine(::testing::Values("cora", "pubmed", "amz_photo"),
                       ::testing::Values(Backend::kSeastarNoFusion, Backend::kDglLike,
                                         Backend::kPygLike)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, Backend>>& info) {
      std::string name =
          std::get<0>(info.param) + std::string("_") + BackendName(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

TEST(EluTest, ForwardAndGradient) {
  Tensor x({4}, {-2.0f, -0.5f, 0.5f, 2.0f});
  Tensor y = ops::Elu(x, 1.0f);
  EXPECT_NEAR(y.at(0), std::exp(-2.0f) - 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(y.at(3), 2.0f);

  Var v = Var::Leaf(x, true);
  Var out = ag::Elu(v, 1.0f);
  Backward(out, Tensor::Ones({4}));
  const float eps = 1e-3f;
  for (int64_t i = 0; i < 4; ++i) {
    Tensor up = x.Clone();
    up.at(i) += eps;
    Tensor down = x.Clone();
    down.at(i) -= eps;
    const float numeric =
        (ops::SumAll(ops::Elu(up, 1.0f)) - ops::SumAll(ops::Elu(down, 1.0f))) / (2 * eps);
    EXPECT_NEAR(v.grad().at(i), numeric, 1e-2);
  }
}

TEST(GraphIoTest, MatrixMarketIntegerField) {
  const auto path = (std::filesystem::temp_directory_path() / "seastar_int.mtx").string();
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate integer general\n"
        << "2 2 2\n"
        << "1 2 7\n2 1 9\n";
  }
  auto loaded = LoadMatrixMarket(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_edges(), 2);
  std::filesystem::remove(path);
}

TEST(GraphIoTest, MatrixMarketRejectsOutOfBoundsEntry) {
  const auto path = (std::filesystem::temp_directory_path() / "seastar_oob.mtx").string();
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern general\n"
        << "2 2 1\n"
        << "3 1\n";
  }
  EXPECT_FALSE(LoadMatrixMarket(path).has_value());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace seastar
