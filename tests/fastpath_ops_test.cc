// Tests for the specialized hot-path kernels added for steady-state training:
// the compile-time FastPath classification of fused edge loops, the
// register-blocked GEMM kernels, the batched dropout mask, and the
// scalar-broadcast elementwise forms. Every fast form is checked against an
// independent reference (baseline executors, naive triple loops, the
// per-element RNG path).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/exec/baseline_executor.h"
#include "src/exec/compiled_program.h"
#include "src/exec/seastar_executor.h"
#include "src/gir/builder.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

Graph RandomGraph(int64_t n, int64_t m, uint64_t seed, bool skewed = false) {
  Rng rng(seed);
  CooEdges edges = skewed ? Rmat(n, m, rng) : ErdosRenyi(n, m, rng);
  AddSelfLoops(edges);
  return ToGraph(std::move(edges));
}

FeatureMap RandomVertexFeatures(const Graph& g, std::vector<std::pair<std::string, int64_t>> keys,
                                uint64_t seed) {
  Rng rng(seed);
  FeatureMap features;
  for (const auto& [key, width] : keys) {
    features.vertex[key] = ops::RandomNormal({g.num_vertices(), width}, 0.0f, 1.0f, rng);
  }
  return features;
}

FastPath ClassifiedFastPath(const GirGraph& gir) {
  auto program = CompileProgram(gir, FusionOptions{});
  FastPath path = FastPath::kNone;
  for (const CompiledUnit& unit : program->units) {
    if (unit.fast_path != FastPath::kNone) {
      EXPECT_EQ(path, FastPath::kNone) << "more than one specialized unit";
      path = unit.fast_path;
    }
  }
  return path;
}

// Checks the specialized seastar loop against the independent baseline
// implementations (which never take fast paths).
void ExpectMatchesBaselines(const GirGraph& gir, const Graph& graph, const FeatureMap& features,
                            float tol = 1e-4f) {
  SeastarExecutor seastar;
  BaselineExecutor dgl{[] {
    BaselineExecutorOptions o;
    o.flavor = BaselineFlavor::kDglLike;
    return o;
  }()};
  BaselineExecutor pyg{[] {
    BaselineExecutorOptions o;
    o.flavor = BaselineFlavor::kPygLike;
    return o;
  }()};
  RunResult a = seastar.Run(gir, graph, features);
  RunResult c = dgl.Run(gir, graph, features);
  RunResult d = pyg.Run(gir, graph, features);
  ASSERT_FALSE(a.outputs.empty());
  for (const auto& [name, tensor] : a.outputs) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(c.outputs.count(name));
    ASSERT_TRUE(d.outputs.count(name));
    EXPECT_TRUE(tensor.AllClose(c.outputs.at(name), tol)) << "seastar vs dgl-like";
    EXPECT_TRUE(tensor.AllClose(d.outputs.at(name), tol)) << "seastar vs pyg-like";
  }
}

// ---- FastPath classification ------------------------------------------------

TEST(FastPathTest, PlainAggSumClassifiesAsCopySum) {
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 8)), "out");
  EXPECT_EQ(ClassifiedFastPath(b.graph()), FastPath::kCopySum);
}

TEST(FastPathTest, WeightedAggSumClassifiesAsMulSum) {
  // GCN's aggregation shape: per-edge product feeding a sum.
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 8) * b.Src("norm", 1)), "out");
  EXPECT_EQ(ClassifiedFastPath(b.graph()), FastPath::kMulSum);
}

TEST(FastPathTest, AggMeanAlsoSpecializes) {
  // Mean lowers to sum plus a post-division, so the edge loop is identical.
  GirBuilder b;
  b.MarkOutput(AggMean(b.Src("h", 4)), "out");
  EXPECT_EQ(ClassifiedFastPath(b.graph()), FastPath::kCopySum);
}

TEST(FastPathTest, MaxAndMultiOpUnitsStayInterpreted) {
  {
    GirBuilder b;
    b.MarkOutput(AggMax(b.Src("h", 4)), "out");
    EXPECT_EQ(ClassifiedFastPath(b.graph()), FastPath::kNone);
  }
  {
    // Two chained edge ops: the single-Mul shape does not apply.
    GirBuilder b;
    b.MarkOutput(AggSum(Exp(b.Src("h", 4) * b.Src("w", 1))), "out");
    EXPECT_EQ(ClassifiedFastPath(b.graph()), FastPath::kNone);
  }
}

// ---- FastPath correctness ---------------------------------------------------

TEST(FastPathTest, CopySumMatchesBaselinesOnRandomGraphs) {
  for (bool skewed : {false, true}) {
    Graph g = RandomGraph(200, 1400, skewed ? 21 : 22, skewed);
    for (int64_t width : {1, 7, 16}) {  // 1 exercises the broadcast variant.
      SCOPED_TRACE(width);
      GirBuilder b;
      b.MarkOutput(AggSum(b.Src("h", static_cast<int32_t>(width))), "out");
      ExpectMatchesBaselines(b.graph(), g, RandomVertexFeatures(g, {{"h", width}}, 31 + width));
    }
  }
}

TEST(FastPathTest, MulSumMatchesBaselinesAcrossOperandWidths) {
  Graph g = RandomGraph(180, 1200, 41);
  struct Case {
    int64_t wa, wb;
  };
  // vector*scalar, scalar*vector, vector*vector — all three slot variants.
  for (const Case& c : {Case{8, 1}, Case{1, 8}, Case{8, 8}}) {
    SCOPED_TRACE(c.wa * 100 + c.wb);
    GirBuilder b;
    b.MarkOutput(AggSum(b.Src("a", static_cast<int32_t>(c.wa)) *
                        b.Src("b", static_cast<int32_t>(c.wb))),
                 "out");
    ExpectMatchesBaselines(b.graph(), g,
                           RandomVertexFeatures(g, {{"a", c.wa}, {"b", c.wb}}, 51));
  }
}

TEST(FastPathTest, MulSumWithFixedDstOperandMatchesBaselines) {
  // v.deg-style operand: constant across the key vertex's edge loop, so the
  // fast path resolves it once outside the loop.
  Graph g = RandomGraph(160, 1100, 61);
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 8) * b.Dst("scale", 1)), "out");
  ExpectMatchesBaselines(b.graph(), g, RandomVertexFeatures(g, {{"h", 8}, {"scale", 1}}, 71));
}

TEST(FastPathTest, CopySumOnStarHandComputed) {
  Graph g = ToGraph(Star(5));
  GirBuilder b;
  b.MarkOutput(AggSum(b.Src("h", 2)), "out");
  FeatureMap features;
  features.vertex["h"] = Tensor({5, 2}, {0, 0, 1, 10, 2, 20, 3, 30, 4, 40});
  SeastarExecutor ex;
  RunResult result = ex.Run(b.graph(), g, features);
  const Tensor& out = result.outputs.at("out");
  EXPECT_FLOAT_EQ(out.at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 100.0f);
  EXPECT_FLOAT_EQ(out.at(3, 0), 0.0f);
}

// ---- Register-blocked GEMM --------------------------------------------------

Tensor NaiveMatmul(const Tensor& a, const Tensor& b) {
  const int64_t n = a.shape()[0], k = a.shape()[1], m = b.shape()[1];
  Tensor out = Tensor::Zeros({n, m});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a.at(i, kk) * b.at(kk, j);
      }
      out.data()[i * m + j] = acc;
    }
  }
  return out;
}

TEST(GemmTest, MatmulMatchesNaiveAcrossPanelTails) {
  Rng rng(101);
  // Widths chosen to hit: all-scalar tail (1, 7), exactly one 8-panel (8),
  // 32-panel only (32), and a mix of 32 + 8 + scalar (53).
  for (int64_t m : {1, 7, 8, 32, 53}) {
    SCOPED_TRACE(m);
    Tensor a = ops::RandomNormal({37, 29}, 0.0f, 1.0f, rng);
    Tensor b = ops::RandomNormal({29, m}, 0.0f, 1.0f, rng);
    EXPECT_TRUE(ops::Matmul(a, b).AllClose(NaiveMatmul(a, b), 1e-4f));
  }
}

TEST(GemmTest, MatmulTransposeBMatchesExplicitTranspose) {
  Rng rng(103);
  Tensor a = ops::RandomNormal({45, 31}, 0.0f, 1.0f, rng);
  Tensor bt = ops::RandomNormal({23, 31}, 0.0f, 1.0f, rng);  // b = bt^T.
  Tensor fast = ops::MatmulTransposeB(a, bt);
  Tensor ref = ops::Matmul(a, ops::Transpose(bt));
  ASSERT_EQ(fast.shape(), ref.shape());
  EXPECT_TRUE(fast.AllClose(ref, 0.0f));  // Same kernel, must be bitwise.
}

TEST(GemmTest, MatmulTransposeAMatchesNaive) {
  Rng rng(107);
  Tensor at = ops::RandomNormal({29, 37}, 0.0f, 1.0f, rng);  // a = at^T.
  Tensor b = ops::RandomNormal({29, 21}, 0.0f, 1.0f, rng);
  Tensor ref = NaiveMatmul(ops::Transpose(at), b);
  EXPECT_TRUE(ops::MatmulTransposeA(at, b).AllClose(ref, 1e-4f));
}

// ---- Batched dropout mask ---------------------------------------------------

TEST(DropoutMaskTest, BatchedFillMatchesPerElementBernoulliDrawForDraw) {
  // Checkpoint determinism depends on the batched fill consuming exactly the
  // draws the old per-element path consumed.
  const int64_t n = 1000;
  const double p = 0.37;
  const float keep = 1.0f / (1.0f - static_cast<float>(p));
  Rng batched(12345), reference(12345);

  std::vector<float> mask(n);
  batched.FillDropoutMask(mask.data(), n, p, keep);
  int64_t dropped = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float expected = reference.NextBernoulli(p) ? 0.0f : keep;
    ASSERT_EQ(mask[i], expected) << "element " << i;
    dropped += mask[i] == 0.0f;
  }
  // Streams must be in sync afterwards, or a resumed run would diverge.
  EXPECT_EQ(batched.NextUint64(), reference.NextUint64());
  // Sanity: the drop rate is in the right ballpark.
  EXPECT_NEAR(static_cast<double>(dropped) / static_cast<double>(n), p, 0.08);
}

TEST(DropoutMaskTest, DegenerateProbabilitiesConsumeNoDraws) {
  Rng a(7), b(7);
  std::vector<float> mask(64);
  a.FillDropoutMask(mask.data(), 64, 0.0, 2.0f);
  for (float v : mask) {
    EXPECT_EQ(v, 2.0f);
  }
  a.FillDropoutMask(mask.data(), 64, 1.0, 2.0f);
  for (float v : mask) {
    EXPECT_EQ(v, 0.0f);
  }
  EXPECT_EQ(a.NextUint64(), b.NextUint64());  // NextBernoulli(0/1) draws nothing.
}

// ---- Scalar broadcast in binary elementwise ---------------------------------

TEST(BroadcastTest, ScalarOnEitherSideOfNonCommutativeOps) {
  Tensor scalar({1}, {6.0f});
  Tensor vec({3}, {1.0f, 2.0f, 3.0f});

  Tensor sub_left = ops::Sub(scalar, vec);  // 6 - x.
  ASSERT_EQ(sub_left.numel(), 3);
  EXPECT_FLOAT_EQ(sub_left.at(0), 5.0f);
  EXPECT_FLOAT_EQ(sub_left.at(1), 4.0f);
  EXPECT_FLOAT_EQ(sub_left.at(2), 3.0f);

  Tensor sub_right = ops::Sub(vec, scalar);  // x - 6.
  EXPECT_FLOAT_EQ(sub_right.at(0), -5.0f);
  EXPECT_FLOAT_EQ(sub_right.at(2), -3.0f);

  Tensor div_left = ops::Div(scalar, vec);  // 6 / x.
  EXPECT_FLOAT_EQ(div_left.at(0), 6.0f);
  EXPECT_FLOAT_EQ(div_left.at(1), 3.0f);
  EXPECT_FLOAT_EQ(div_left.at(2), 2.0f);

  Tensor div_right = ops::Div(vec, scalar);  // x / 6.
  EXPECT_FLOAT_EQ(div_right.at(1), 2.0f / 6.0f);
}

}  // namespace
}  // namespace seastar
