#include "src/common/profiler.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "src/common/string_util.h"

namespace seastar {
namespace {

// Minimal JSON string escaping for our own span names (op names, dataset
// names, file paths).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int64_t Profiler::Begin(std::string name, std::string category) {
  if (!enabled_) {
    return -1;
  }
  ProfileEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.start_us = clock_.ElapsedMicros();
  events_.push_back(std::move(event));
  return static_cast<int64_t>(events_.size()) - 1;
}

ProfileEvent* Profiler::Mutable(int64_t token) {
  if (!enabled_ || token < 0 || token >= static_cast<int64_t>(events_.size())) {
    return nullptr;
  }
  return &events_[static_cast<size_t>(token)];
}

void Profiler::End(int64_t token) {
  ProfileEvent* event = Mutable(token);
  if (event != nullptr) {
    event->dur_us = clock_.ElapsedMicros() - event->start_us;
  }
}

double Profiler::TotalUs(const std::string& category) const {
  double total = 0.0;
  for (const ProfileEvent& event : events_) {
    if (event.category == category && event.dur_us >= 0.0) {
      total += event.dur_us;
    }
  }
  return total;
}

std::string Profiler::ChromeTraceJson() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const ProfileEvent& event : events_) {
    if (event.dur_us < 0.0) {
      continue;  // Never closed; keep the trace well-formed.
    }
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
       << JsonEscape(event.category) << "\",\"ph\":\"X\",\"ts\":" << FormatDouble(event.start_us, 3)
       << ",\"dur\":" << FormatDouble(event.dur_us, 3) << ",\"pid\":0,\"tid\":0,\"args\":{";
    bool first_arg = true;
    const auto arg = [&](const char* key, int64_t value) {
      if (value == 0) {
        return;
      }
      if (!first_arg) {
        os << ",";
      }
      first_arg = false;
      os << "\"" << key << "\":" << value;
    };
    arg("edges", event.edges);
    arg("bytes_materialized", event.bytes_materialized);
    arg("fat_groups", event.fat_groups);
    arg("fat_group_size", event.fat_group_size);
    arg("num_blocks", event.num_blocks);
    arg("block_size", event.block_size);
    arg("dispatches", event.dispatches);
    arg("kernel_launches", event.kernel_launches);
    arg("alloc_delta_bytes", event.alloc_delta_bytes);
    arg("peak_delta_bytes", event.peak_delta_bytes);
    arg("plan_cache_hits", event.plan_cache_hits);
    arg("plan_cache_misses", event.plan_cache_misses);
    arg("pool_hits", event.pool_hits);
    arg("pool_misses", event.pool_misses);
    arg("tile_segments", event.tile_segments);
    arg("tile_passes", event.tile_passes);
    arg("tile_width", event.tile_width);
    const auto str_arg = [&](const char* key, const std::string& value) {
      if (value.empty()) {
        return;
      }
      if (!first_arg) {
        os << ",";
      }
      first_arg = false;
      os << "\"" << key << "\":\"" << JsonEscape(value) << "\"";
    };
    str_arg("schedule", event.schedule);
    str_arg("simd_isa", event.simd_isa);
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

bool Profiler::WriteChromeTrace(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const std::string json = ChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  return written == json.size();
}

std::string Profiler::SummaryTable() const {
  struct Row {
    int64_t count = 0;
    double total_us = 0.0;
    int64_t edges = 0;
    int64_t bytes = 0;
    int64_t dispatches = 0;
    int64_t launches = 0;
    int64_t plan_hits = 0;
    int64_t plan_misses = 0;
    int64_t pool_hits = 0;
    int64_t pool_misses = 0;
    int64_t tile_segments = 0;
    int32_t tile_width = 0;
    std::string simd_isa;
  };
  // Keyed by (category, name); std::map gives a stable report order.
  std::map<std::pair<std::string, std::string>, Row> rows;
  for (const ProfileEvent& event : events_) {
    if (event.dur_us < 0.0) {
      continue;
    }
    Row& row = rows[{event.category, event.name}];
    ++row.count;
    row.total_us += event.dur_us;
    row.edges += event.edges;
    row.bytes += event.bytes_materialized;
    row.dispatches += event.dispatches;
    row.launches += event.kernel_launches;
    row.plan_hits += event.plan_cache_hits;
    row.plan_misses += event.plan_cache_misses;
    row.pool_hits += event.pool_hits;
    row.pool_misses += event.pool_misses;
    row.tile_segments += event.tile_segments;
    row.tile_width = std::max(row.tile_width, event.tile_width);
    if (row.simd_isa.empty()) {
      row.simd_isa = event.simd_isa;
    }
  }

  std::ostringstream os;
  char line[360];
  std::snprintf(line, sizeof(line), "%-8s %-36s %7s %12s %10s %14s %12s %10s %9s %9s %8s %6s\n",
                "category", "name", "count", "total ms", "avg ms", "edges", "mat bytes",
                "launches", "plan h/m", "pool hit%", "segs/tw", "isa");
  os << line;
  os << std::string(146, '-') << "\n";
  for (const auto& [key, row] : rows) {
    // "plan h/m" and "pool hit%" only apply to spans that recorded the
    // caching counters (exec runs, epochs); blank elsewhere.
    char plan[48] = "";
    if (row.plan_hits + row.plan_misses > 0) {
      std::snprintf(plan, sizeof(plan), "%lld/%lld", static_cast<long long>(row.plan_hits),
                    static_cast<long long>(row.plan_misses));
    }
    char pool[32] = "";
    if (row.pool_hits + row.pool_misses > 0) {
      std::snprintf(pool, sizeof(pool), "%5.1f",
                    100.0 * static_cast<double>(row.pool_hits) /
                        static_cast<double>(row.pool_hits + row.pool_misses));
    }
    // "segs/tw" summarizes the tiled partitioning (segments executed and the
    // feature-tile width); blank for spans that ran untiled.
    char tiling[32] = "";
    if (row.tile_segments > 0) {
      std::snprintf(tiling, sizeof(tiling), "%lld/%d", static_cast<long long>(row.tile_segments),
                    row.tile_width);
    }
    std::snprintf(line, sizeof(line),
                  "%-8s %-36s %7lld %12.3f %10.4f %14lld %12s %10lld %9s %9s %8s %6s\n",
                  key.first.c_str(), key.second.substr(0, 36).c_str(),
                  static_cast<long long>(row.count), row.total_us / 1e3,
                  row.total_us / 1e3 / static_cast<double>(std::max<int64_t>(1, row.count)),
                  static_cast<long long>(row.edges),
                  HumanBytes(static_cast<uint64_t>(std::max<int64_t>(0, row.bytes))).c_str(),
                  static_cast<long long>(row.launches), plan, pool, tiling,
                  row.simd_isa.c_str());
    os << line;
  }
  return os.str();
}

}  // namespace seastar
