#include "src/common/logging.h"

#include <atomic>
#include <cstring>
#include <mutex>

namespace seastar {
namespace {

std::atomic<int> g_min_severity{-1};  // -1 = not initialized yet.

int SeverityFromEnv() {
  const char* env = std::getenv("SEASTAR_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogSeverity::kInfo);
  }
  int value = std::atoi(env);
  if (value < 0) {
    value = 0;
  }
  if (value > 4) {
    value = 4;
  }
  return value;
}

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

// Serializes whole log lines so concurrent threads do not interleave.
std::mutex& LogMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

LogSeverity MinLogSeverity() {
  int current = g_min_severity.load(std::memory_order_relaxed);
  if (current < 0) {
    current = SeverityFromEnv();
    g_min_severity.store(current, std::memory_order_relaxed);
  }
  return static_cast<LogSeverity>(current);
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

namespace log_internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << SeverityName(severity) << " " << (base != nullptr ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace seastar
