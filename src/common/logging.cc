#include "src/common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstring>
#include <mutex>

namespace seastar {
namespace {

std::atomic<int> g_min_severity{-1};  // -1 = not initialized yet.
std::atomic<void (*)()> g_fatal_hook{nullptr};

// "warning" / "WARN" / "2" -> 2; -1 when unparseable.
int ParseSeverity(const char* text) {
  std::string lowered;
  for (const char* p = text; *p != '\0'; ++p) {
    lowered += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lowered == "debug") return 0;
  if (lowered == "info") return 1;
  if (lowered == "warning" || lowered == "warn") return 2;
  if (lowered == "error") return 3;
  if (lowered == "fatal") return 4;
  if (!lowered.empty() && lowered.find_first_not_of("0123456789") == std::string::npos) {
    return std::min(4, std::atoi(lowered.c_str()));
  }
  return -1;
}

int SeverityFromEnv() {
  // SEASTAR_LOG is the documented filter (names or numbers); SEASTAR_LOG_LEVEL
  // is the original numeric spelling, kept working.
  for (const char* var : {"SEASTAR_LOG", "SEASTAR_LOG_LEVEL"}) {
    const char* env = std::getenv(var);
    if (env == nullptr || *env == '\0') {
      continue;
    }
    const int parsed = ParseSeverity(env);
    if (parsed >= 0) {
      return parsed;
    }
    std::cerr << "[W logging] ignoring unparseable " << var << "='" << env
              << "' (want debug|info|warning|error|fatal or 0-4)" << std::endl;
  }
  return static_cast<int>(LogSeverity::kInfo);
}

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

// Serializes whole log lines so concurrent threads do not interleave.
std::mutex& LogMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

LogSeverity MinLogSeverity() {
  int current = g_min_severity.load(std::memory_order_relaxed);
  if (current < 0) {
    current = SeverityFromEnv();
    g_min_severity.store(current, std::memory_order_relaxed);
  }
  return static_cast<LogSeverity>(current);
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

void SetFatalHook(void (*hook)()) { g_fatal_hook.store(hook, std::memory_order_release); }

namespace log_internal {

std::string QuoteIfNeeded(const std::string& value) {
  if (value.find_first_of(" \t\"") == std::string::npos) {
    return value;
  }
  std::string quoted = "\"";
  for (const char c : value) {
    if (c == '"') {
      quoted += '\\';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << SeverityName(severity) << " " << (base != nullptr ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    // Run the crash hook exactly once even if the hook itself CHECK-fails.
    if (void (*hook)() = g_fatal_hook.exchange(nullptr, std::memory_order_acq_rel);
        hook != nullptr) {
      hook();
    }
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace seastar
