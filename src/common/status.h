// Status / StatusOr: recoverable-error propagation for operations whose
// failure is an environmental condition, not a programming error.
//
// CHECK (logging.h) stays the tool for invariants; Status is for everything
// the process must survive: unreadable or corrupt files, truncated
// checkpoints, exhausted memory budgets, injected faults. Errors carry a
// code plus a human-readable message that names the failing resource (file
// path, byte offset, line number) so a recovery log is actionable.
//
// StatusOr<T> is deliberately interface-compatible with std::optional<T>
// (has_value / operator bool / operator* / value) so call sites written
// against the old optional-returning loaders keep compiling, while new code
// can ask status() *why* the value is missing.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace seastar {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // Malformed input (bad flag value, bad file contents).
  kNotFound,           // Missing file / unknown name.
  kDataLoss,           // Corruption detected (bad magic, checksum mismatch, truncation).
  kResourceExhausted,  // Memory budget breach / injected allocation failure.
  kUnavailable,        // Transient I/O failure; retrying may succeed.
  kInternal,           // Invariant violated while recovering (should not happen).
  kDeadlineExceeded,   // Request deadline passed before the work completed.
  kFailedPrecondition,  // State mismatch (wrong model tag, stale swap version).
  kAlreadyExists,      // Name collision on registration.
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() = default;  // OK.

  static Status Ok() { return Status(); }
  static Status Error(StatusCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "DATA_LOSS: ckpt.bin: checksum mismatch at offset 128" / "OK".
  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Stream-style builder: return ErrorStatus(kDataLoss) << path << ": bad magic";
class ErrorStatus {
 public:
  explicit ErrorStatus(StatusCode code) : code_(code) {}

  template <typename T>
  ErrorStatus& operator<<(const T& part) {
    stream_ << part;
    return *this;
  }

  operator Status() const { return Status::Error(code_, stream_.str()); }  // NOLINT

 private:
  StatusCode code_;
  std::ostringstream stream_;
};

// A value or the Status explaining its absence. Never holds both.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SEASTAR_CHECK(!status_.ok()) << "StatusOr constructed from OK status without a value";
  }
  StatusOr(const ErrorStatus& error) : StatusOr(static_cast<Status>(error)) {}  // NOLINT

  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }

  // The error when has_value() is false; OK otherwise.
  const Status& status() const { return status_; }

  T& value() & {
    SEASTAR_CHECK(has_value()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  const T& value() const& {
    SEASTAR_CHECK(has_value()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SEASTAR_CHECK(has_value()) << "StatusOr::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace seastar

#endif  // SRC_COMMON_STATUS_H_
