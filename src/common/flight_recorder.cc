#include "src/common/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/tracing.h"

namespace seastar {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CopyTruncated(char* dst, size_t dst_size, std::string_view src) {
  const size_t n = std::min(src.size(), dst_size - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder() : start_ns_(NowNanos()) {}

FlightRecorder& FlightRecorder::Get() {
  // Leaked: the crash-dump hook may fire during static destruction.
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void FlightRecorder::Record(std::string_view category, std::string_view detail, int64_t a,
                            int64_t b) {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[seq % kCapacity];
  // Seqlock publication: mark the slot in-progress (odd), fill it, publish
  // (even, encoding seq). A reader that observes an odd word, or different
  // words before/after its copy, discards the slot.
  slot.word.store(2 * seq + 1, std::memory_order_release);
  slot.event.seq = seq;
  slot.event.t_us = (NowNanos() - start_ns_) / 1000;
  CopyTruncated(slot.event.category, sizeof(slot.event.category), category);
  CopyTruncated(slot.event.detail, sizeof(slot.event.detail), detail);
  slot.event.a = a;
  slot.event.b = b;
  slot.event.trace_id = trace::CurrentTraceId();
  slot.word.store(2 * seq, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  events.reserve(kCapacity);
  for (const Slot& slot : ring_) {
    const uint64_t before = slot.word.load(std::memory_order_acquire);
    if (before == 0 || before % 2 == 1) {
      continue;  // Empty or mid-write.
    }
    FlightEvent copy = slot.event;
    const uint64_t after = slot.word.load(std::memory_order_acquire);
    if (after != before) {
      continue;  // Overwritten while copying.
    }
    events.push_back(copy);
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& x, const FlightEvent& y) { return x.seq < y.seq; });
  return events;
}

std::string FlightRecorder::Dump() const {
  const std::vector<FlightEvent> events = Snapshot();
  std::string out = "flight recorder: " + std::to_string(events.size()) + " of " +
                    std::to_string(recorded()) + " events retained\n";
  char line[224];
  for (const FlightEvent& event : events) {
    if (event.trace_id != 0) {
      std::snprintf(line, sizeof(line),
                    "[%12.3fms] #%-6llu %-10s %s (a=%lld b=%lld trace=%016llx)\n",
                    static_cast<double>(event.t_us) / 1000.0,
                    static_cast<unsigned long long>(event.seq), event.category, event.detail,
                    static_cast<long long>(event.a), static_cast<long long>(event.b),
                    static_cast<unsigned long long>(event.trace_id));
    } else {
      std::snprintf(line, sizeof(line), "[%12.3fms] #%-6llu %-10s %s (a=%lld b=%lld)\n",
                    static_cast<double>(event.t_us) / 1000.0,
                    static_cast<unsigned long long>(event.seq), event.category, event.detail,
                    static_cast<long long>(event.a), static_cast<long long>(event.b));
    }
    out += line;
  }
  return out;
}

bool FlightRecorder::DumpToFile(const std::string& path) const {
  const std::string dump = Dump();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(dump.data(), 1, dump.size(), file);
  return std::fclose(file) == 0 && written == dump.size();
}

void FlightRecorder::InstallCrashDump() {
  SetFatalHook([] {
    // Crash path: best-effort, straight to stderr (no allocation-free
    // guarantee needed — the process is already aborting on a CHECK).
    std::fputs("\n--- flight recorder (fatal) ---\n", stderr);
    std::fputs(FlightRecorder::Get().Dump().c_str(), stderr);
    std::fputs("\n--- metrics snapshot (fatal) ---\n", stderr);
    std::fputs(metrics::MetricsRegistry::Get().TextExposition().c_str(), stderr);
  });
}

}  // namespace seastar
