// Deterministic fault injection for resilience testing.
//
// Long-running training must survive allocation failures, corrupt files,
// stalled workers, and interrupted checkpoint writes. Those conditions are
// rare in healthy runs, so the recovery paths would otherwise go untested.
// FaultInjector lets tests (and the SEASTAR_FAULTS environment variable)
// arm *named sites* in production code to fail on a precisely chosen hit —
// "the 5th tensor allocation", "every checkpoint write", "graph reads with
// probability 0.3 under seed 42" — fully deterministically, so a failing
// fault-injection test replays bit-for-bit.
//
// Hot-path discipline: every instrumented site first checks enabled(), a
// single relaxed atomic load that is false in normal runs; the per-site
// bookkeeping (mutex-guarded, called from worker threads) only runs while a
// test has faults armed.
//
// Spec grammar (for SEASTAR_FAULTS or --faults=):
//   spec      := site_spec (';' site_spec)*
//   site_spec := site ':' trigger (':' trigger)*
//   trigger   := "after=" N        fail hits N+1 .. N+count (default count 1)
//              | "count=" N
//              | "p=" P            fail each hit with probability P
//              | "seed=" S         seed for the probabilistic stream
//   site      := alloc | simt_worker | ckpt_write | ckpt_read | graph_read
//              | shard_send | shard_recv | shard_combine | shard_worker
// Example: "alloc:after=100:count=2;ckpt_write:p=0.5:seed=7"
#ifndef SRC_COMMON_FAULT_H_
#define SRC_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "src/common/rng.h"

namespace seastar {

enum class FaultSite : int {
  kTensorAlloc = 0,    // TensorAllocator::Allocate -> simulated allocation failure.
  kSimtWorker,         // LaunchBlocks worker -> injected stall (latency, not failure).
  kCheckpointWrite,    // Checkpoint serialization -> truncated write, tmp left behind.
  kCheckpointRead,     // Checkpoint load -> corrupt/unreadable bytes.
  kGraphRead,          // Graph/dataset file loaders -> I/O error.
  kShardSend,          // Sharded pass 1 -> halo feature push fails on the owner.
  kShardRecv,          // Sharded pass 2 -> feature drain fails on the mirrorer.
  kShardCombine,       // Sharded pass 3 -> partial apply fails on the owner.
  kShardWorker,        // Sharded pass 2 -> per-shard interpreter run fails.
  kNumSites,           // Sentinel.
};

const char* FaultSiteName(FaultSite site);
std::optional<FaultSite> FaultSiteFromString(const std::string& name);

// Pipe-separated list of every valid site name ("alloc|simt_worker|...").
// Generated from the enum so error messages can never drift from it.
const std::string& FaultSiteList();

class FaultInjector {
 public:
  static FaultInjector& Get();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // True when any site is armed. The only check on hot paths.
  bool enabled() const { return armed_sites_.load(std::memory_order_relaxed) != 0; }

  // Deterministic trigger: hits N+1 .. N+count of `site` fail.
  void Arm(FaultSite site, int64_t after_n, int64_t count = 1);

  // Probabilistic trigger: each hit fails with `probability`, drawn from a
  // dedicated stream seeded with `seed` (deterministic sequence per arm).
  void ArmProbabilistic(FaultSite site, double probability, uint64_t seed = 0x5ea57a2021ull);

  void Disarm(FaultSite site);
  void DisarmAll();

  // Records one hit of `site` and reports whether it must fail. Sites that
  // are not armed count nothing and return false.
  bool ShouldFail(FaultSite site);

  // Counters for assertions and recovery logs.
  int64_t hits(FaultSite site) const;
  int64_t injected(FaultSite site) const;

  // Parses the spec grammar above. On error returns false and, when `error`
  // is non-null, explains which piece was malformed. Valid spec arms sites
  // on top of the current state.
  bool ConfigureFromSpec(const std::string& spec, std::string* error = nullptr);

  // Applies SEASTAR_FAULTS when set (logs and ignores malformed specs).
  void ConfigureFromEnv();

 private:
  FaultInjector() = default;

  struct SiteState {
    bool armed = false;
    // Deterministic window; fail_after < 0 means "probabilistic mode".
    int64_t fail_after = -1;
    int64_t fail_count = 0;
    double probability = 0.0;
    std::optional<Rng> rng;  // Engaged in probabilistic mode.
    int64_t hits = 0;
    int64_t injected = 0;
  };

  void RecomputeArmedMask();

  mutable std::mutex mutex_;
  SiteState sites_[static_cast<int>(FaultSite::kNumSites)];
  std::atomic<uint32_t> armed_sites_{0};  // Bitmask over FaultSite.
};

// Test helper: disarms every site on scope exit so one test's faults can
// never leak into the next.
class ScopedFaultClear {
 public:
  ScopedFaultClear() = default;
  ~ScopedFaultClear() { FaultInjector::Get().DisarmAll(); }

  ScopedFaultClear(const ScopedFaultClear&) = delete;
  ScopedFaultClear& operator=(const ScopedFaultClear&) = delete;
};

}  // namespace seastar

#endif  // SRC_COMMON_FAULT_H_
