#include "src/common/rng.h"

#include <cmath>
#include <numbers>

#include "src/common/logging.h"

namespace seastar {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 seeder(seed);
  for (auto& word : state_) {
    word = seeder.Next();
  }
}

RngState Rng::SaveState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) {
    state.words[i] = state_[i];
  }
  state.have_cached_gaussian = have_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) {
    state_[i] = state.words[i];
  }
  have_cached_gaussian_ = state.have_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SEASTAR_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Guard against log(0).
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  have_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

void Rng::FillDropoutMask(float* mask, int64_t n, double p, float keep_scale) {
  if (p <= 0.0 || p >= 1.0) {
    const float value = p <= 0.0 ? keep_scale : 0.0f;
    for (int64_t i = 0; i < n; ++i) {
      mask[i] = value;
    }
    return;
  }
  // Inlined NextUint64/NextDouble with the xoshiro words in locals; the
  // sequence is draw-for-draw what the per-element path would produce.
  uint64_t s0 = state_[0];
  uint64_t s1 = state_[1];
  uint64_t s2 = state_[2];
  uint64_t s3 = state_[3];
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t bits = Rotl(s1 * 5, 7) * 9;
    const uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = Rotl(s3, 45);
    const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
    mask[i] = u < p ? 0.0f : keep_scale;
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  SEASTAR_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SEASTAR_CHECK_GE(w, 0.0);
    total += w;
  }
  SEASTAR_CHECK_GT(total, 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // Floating-point slop: fall back to the last bucket.
}

}  // namespace seastar
