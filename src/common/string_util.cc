#include "src/common/string_util.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace seastar {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> pieces;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      pieces.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  pieces.push_back(current);
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces, const std::string& sep) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      result += sep;
    }
    result += pieces[i];
  }
  return result;
}

std::string WithThousandsSeparators(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) {
      result.push_back(',');
    }
    result.push_back(*it);
    ++count;
  }
  return std::string(result.rbegin(), result.rend());
}

std::string HumanBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[32];
  if (unit == 0) {
    std::snprintf(buffer, sizeof(buffer), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f %s", value, kUnits[unit]);
  }
  return buffer;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

std::string FlagValue(int argc, char** argv, const std::string& key, const std::string& fallback) {
  const std::string needle = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, needle)) {
      return arg.substr(needle.size());
    }
    if (arg == "--" + key) {
      return "true";  // Bare flag form.
    }
  }
  return fallback;
}

double FlagDouble(int argc, char** argv, const std::string& key, double fallback) {
  std::string value = FlagValue(argc, argv, key, "");
  if (value.empty()) {
    return fallback;
  }
  return std::strtod(value.c_str(), nullptr);
}

int64_t FlagInt(int argc, char** argv, const std::string& key, int64_t fallback) {
  std::string value = FlagValue(argc, argv, key, "");
  if (value.empty()) {
    return fallback;
  }
  return std::strtoll(value.c_str(), nullptr, 10);
}

bool FlagBool(int argc, char** argv, const std::string& key, bool fallback) {
  std::string value = FlagValue(argc, argv, key, "");
  if (value.empty()) {
    return fallback;
  }
  return value == "1" || value == "true" || value == "yes" || value == "on";
}

}  // namespace seastar
