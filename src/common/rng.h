// Deterministic random number generation for graph/feature synthesis.
//
// Benchmarks and tests must be reproducible across runs and platforms, so we
// implement the generators ourselves (SplitMix64 for seeding, xoshiro256** as
// the workhorse) rather than relying on implementation-defined std::
// distributions.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace seastar {

// SplitMix64: tiny generator used to expand a single 64-bit seed into the
// xoshiro state. Public so tests can pin its outputs.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

 private:
  uint64_t state_;
};

// Serializable snapshot of an Rng (xoshiro words + Box-Muller cache).
// Restoring it makes the stream continue exactly where the snapshot was
// taken, which is what checkpoint/resume needs for bit-identical training.
struct RngState {
  uint64_t words[4] = {0, 0, 0, 0};
  bool have_cached_gaussian = false;
  double cached_gaussian = 0.0;
};

// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5ea57a2021ull);  // "seastar 2021"

  RngState SaveState() const;
  void RestoreState(const RngState& state);

  // Uniform over the full 64-bit range.
  uint64_t NextUint64();

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  // rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  // Standard normal via Box-Muller. Deterministic given the seed.
  double NextGaussian();

  // Returns true with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // mask[i] = 0.0f with probability p, else keep_scale, for i in [0, n).
  // Consumes exactly the draws n successive NextBernoulli(p) calls would
  // (so checkpointed streams replay identically); batched so the generator
  // state stays in registers across the fill instead of a call per element.
  void FillDropoutMask(float* mask, int64_t n, double p, float keep_scale);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // All weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace seastar

#endif  // SRC_COMMON_RNG_H_
