// Lightweight logging and invariant-checking utilities used across the Seastar
// codebase. Modeled on the usual LOG()/CHECK() idiom: CHECK failures denote
// programming errors and abort with a message; they are never used for
// recoverable conditions.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace seastar {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Returns the process-wide minimum severity that is actually emitted.
// Controlled by the SEASTAR_LOG_LEVEL environment variable (0-4); defaults to kInfo.
LogSeverity MinLogSeverity();

// Sets the minimum emitted severity programmatically (overrides the env var).
void SetMinLogSeverity(LogSeverity severity);

namespace log_internal {

// Accumulates one log line and flushes it (to stderr) on destruction.
// For kFatal the destructor aborts the process.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace log_internal

#define SEASTAR_LOG(severity)                                                             \
  ::seastar::log_internal::LogMessage(::seastar::LogSeverity::k##severity, __FILE__, __LINE__) \
      .stream()

#define SEASTAR_CHECK(cond)                                                  \
  if (cond) {                                                                \
  } else /* NOLINT */                                                        \
    SEASTAR_LOG(Fatal) << "Check failed: " #cond " "

#define SEASTAR_CHECK_OP(op, a, b)                                                      \
  if ((a)op(b)) {                                                                       \
  } else /* NOLINT */                                                                   \
    SEASTAR_LOG(Fatal) << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " << (b) \
                       << ") "

#define SEASTAR_CHECK_EQ(a, b) SEASTAR_CHECK_OP(==, a, b)
#define SEASTAR_CHECK_NE(a, b) SEASTAR_CHECK_OP(!=, a, b)
#define SEASTAR_CHECK_LT(a, b) SEASTAR_CHECK_OP(<, a, b)
#define SEASTAR_CHECK_LE(a, b) SEASTAR_CHECK_OP(<=, a, b)
#define SEASTAR_CHECK_GT(a, b) SEASTAR_CHECK_OP(>, a, b)
#define SEASTAR_CHECK_GE(a, b) SEASTAR_CHECK_OP(>=, a, b)

}  // namespace seastar

#endif  // SRC_COMMON_LOGGING_H_
