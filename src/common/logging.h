// Lightweight logging and invariant-checking utilities used across the Seastar
// codebase. Modeled on the usual LOG()/CHECK() idiom: CHECK failures denote
// programming errors and abort with a message; they are never used for
// recoverable conditions.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>

namespace seastar {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Returns the process-wide minimum severity that is actually emitted.
// Controlled by the SEASTAR_LOG environment variable, which accepts either a
// severity name ("debug", "info", "warning", "error", "fatal", any case) or
// a number 0-4; SEASTAR_LOG_LEVEL (numeric) is honored as the legacy
// spelling when SEASTAR_LOG is unset. Defaults to kInfo.
LogSeverity MinLogSeverity();

// Sets the minimum emitted severity programmatically (overrides the env var).
void SetMinLogSeverity(LogSeverity severity);

// Installs a hook that runs once, just before the process aborts on a
// kFatal message (after the fatal line itself is flushed). The flight
// recorder uses this to dump its ring and a metrics snapshot on crash.
// Passing nullptr clears the hook. Not thread-safe against a concurrent
// fatal; install at startup.
void SetFatalHook(void (*hook)());

// Structured key=value suffix for grep-able logs:
//   SEASTAR_LOG(Info) << "request done" << LogKv("id", id) << LogKv("ms", ms);
// renders as:  request done id=17 ms=3.2
// String values containing spaces are double-quoted so `grep 'key='` and
// field-splitting tools both work.
namespace log_internal {
std::string QuoteIfNeeded(const std::string& value);
}  // namespace log_internal

template <typename T>
struct LogKeyValue {
  const char* key;
  const T& value;
};

template <typename T>
LogKeyValue<T> LogKv(const char* key, const T& value) {
  return LogKeyValue<T>{key, value};
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const LogKeyValue<T>& kv) {
  if constexpr (std::is_convertible_v<const T&, std::string>) {
    return os << ' ' << kv.key << '=' << log_internal::QuoteIfNeeded(std::string(kv.value));
  } else {
    return os << ' ' << kv.key << '=' << kv.value;
  }
}

namespace log_internal {

// Accumulates one log line and flushes it (to stderr) on destruction.
// For kFatal the destructor aborts the process.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace log_internal

#define SEASTAR_LOG(severity)                                                             \
  ::seastar::log_internal::LogMessage(::seastar::LogSeverity::k##severity, __FILE__, __LINE__) \
      .stream()

#define SEASTAR_CHECK(cond)                                                  \
  if (cond) {                                                                \
  } else /* NOLINT */                                                        \
    SEASTAR_LOG(Fatal) << "Check failed: " #cond " "

#define SEASTAR_CHECK_OP(op, a, b)                                                      \
  if ((a)op(b)) {                                                                       \
  } else /* NOLINT */                                                                   \
    SEASTAR_LOG(Fatal) << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " << (b) \
                       << ") "

#define SEASTAR_CHECK_EQ(a, b) SEASTAR_CHECK_OP(==, a, b)
#define SEASTAR_CHECK_NE(a, b) SEASTAR_CHECK_OP(!=, a, b)
#define SEASTAR_CHECK_LT(a, b) SEASTAR_CHECK_OP(<, a, b)
#define SEASTAR_CHECK_LE(a, b) SEASTAR_CHECK_OP(<=, a, b)
#define SEASTAR_CHECK_GT(a, b) SEASTAR_CHECK_OP(>, a, b)
#define SEASTAR_CHECK_GE(a, b) SEASTAR_CHECK_OP(>=, a, b)

}  // namespace seastar

#endif  // SRC_COMMON_LOGGING_H_
