// Request deadlines, propagated into graph execution.
//
// A serving runtime must stop spending SIMT-pool time on a request whose
// client has already given up: a 100 ms-deadline request that is still in
// layer 1 at t=110 ms only wastes the pool for every request queued behind
// it. The executors therefore poll an *ambient* deadline at their unit/op
// boundaries — the natural preemption points, since a fused unit is the
// smallest schedulable quantum — and abort the run by throwing
// DeadlineExceeded, which the serving layer converts to a
// StatusCode::kDeadlineExceeded response.
//
// The deadline is carried in a thread-local installed by ScopedDeadline
// rather than threaded through every model's Forward signature: the model
// zoo calls VertexProgram::Run from seven different Forward bodies, and a
// deadline is a property of the *caller's request*, not of the model. Cost
// discipline: with no deadline installed (training, benches, tests) every
// check is a single thread-local pointer test on the orchestration path;
// per-edge kernel loops never poll.
//
// Aborting via an exception is safe here because the check sites run on the
// thread that orchestrates the run (never inside pool workers), and
// everything the run owns — tensors, tape nodes, profiler spans — is RAII.
#ifndef SRC_COMMON_DEADLINE_H_
#define SRC_COMMON_DEADLINE_H_

#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>

namespace seastar {

// A point in time after which a request's result is worthless. Default
// constructed = unarmed (never expires); training uses this implicitly by
// never installing a deadline at all.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  // Unarmed.

  static Deadline AfterMillis(double ms) {
    Deadline d;
    d.armed_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  static Deadline At(Clock::time_point at) {
    Deadline d;
    d.armed_ = true;
    d.at_ = at;
    return d;
  }

  bool armed() const { return armed_; }
  bool expired() const { return armed_ && Clock::now() >= at_; }

  // Milliseconds until expiry; negative once expired, +infinity when
  // unarmed.
  double remaining_ms() const {
    if (!armed_) {
      return std::numeric_limits<double>::infinity();
    }
    return std::chrono::duration<double, std::milli>(at_ - Clock::now()).count();
  }

  Clock::time_point time_point() const { return at_; }

 private:
  bool armed_ = false;
  Clock::time_point at_{};
};

// Thrown from an execution-boundary check when the ambient deadline has
// passed. what() names the boundary ("seastar unit", "baseline op", ...) so
// a trace of aborted requests shows *where* time ran out.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& where)
      : std::runtime_error("deadline exceeded at " + where) {}
};

// Installs `deadline` as the calling thread's ambient execution deadline for
// the scope's lifetime, restoring the previous one on exit (scopes nest; an
// inner scope with a tighter deadline wins for its extent). Passing nullptr
// is a no-op scope.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(const Deadline* deadline);
  ~ScopedDeadline();

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  const Deadline* previous_;
};

// The calling thread's ambient deadline; nullptr when none installed.
const Deadline* CurrentDeadline();

namespace deadline_internal {
extern thread_local const Deadline* tls_deadline;
void ThrowDeadlineExceeded(const char* where);
}  // namespace deadline_internal

// Execution-boundary poll: throws DeadlineExceeded when the ambient
// deadline has passed. The no-deadline fast path is one thread-local load.
inline void CheckExecutionDeadline(const char* where) {
  const Deadline* deadline = deadline_internal::tls_deadline;
  if (deadline != nullptr && deadline->expired()) {
    deadline_internal::ThrowDeadlineExceeded(where);
  }
}

}  // namespace seastar

#endif  // SRC_COMMON_DEADLINE_H_
