// Process-wide, always-on metrics: typed Counter/Gauge/Histogram handles in
// a MetricsRegistry, with Prometheus-style text exposition and a JSON
// snapshot exporter.
//
// Relationship to the Profiler (profiler.h): the Profiler is run-scoped and
// opt-in — it records every span of one training run or serving session for
// offline trace analysis, and costs nothing when not installed. Metrics are
// the opposite trade: always on, aggregated in place (a counter bump or a
// histogram bucket increment, never an event record), and readable at any
// moment by an exporter. The Profiler answers "where did this run spend its
// time"; the registry answers "what is the process doing right now and what
// has it done since boot" — the §7-style measured behaviour (per-kernel
// time, memory, queue pressure) as live counters instead of one-off tables.
//
// Overhead discipline (why hot paths can afford this):
//  * Handles are registered once and cached by the instrumented code (a
//    static or a member struct). Registry lookups never happen per event —
//    MetricsRegistry counts lookups so tests can assert exactly that.
//  * Counter::Add is one relaxed fetch_add on a per-thread shard (cache-line
//    padded, so worker threads never contend on the same line).
//  * Histogram::Record is a branch-light bucket-index computation (frexp on
//    the double) plus two relaxed adds and a CAS-max on the same shard.
//  * Nothing on the record path allocates, locks, or touches the registry.
//    Allocation happens only at registration and in the exporters.
//  * Subsystems with existing atomic counters (TensorAllocator, PlanCache)
//    are exported through *callbacks* evaluated at snapshot time — their hot
//    paths are not double-instrumented.
//
// Naming convention: seastar_<area>_<name>{unit}, e.g.
//   seastar_serve_requests_total            (counter, unitless)
//   seastar_serve_request_latency_ms        (histogram, milliseconds)
//   seastar_serve_queue_depth               (gauge)
//   seastar_simt_dispatches_total{schedule="dynamic"}   (label baked in)
// Counters end in _total; histograms/gauges carry their unit suffix.
#ifndef SRC_COMMON_METRICS_H_
#define SRC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace seastar {

class JsonWriter;

namespace metrics {

// Shard count for per-thread accumulation. A power of two; threads hash onto
// shards round-robin, so any pool size up to kShards is fully uncontended
// and larger pools degrade gracefully to 1/kShards expected collisions.
inline constexpr int kShards = 16;

// Escapes a Prometheus label *value* per the exposition format: backslash,
// double-quote, and newline must become \\, \", and \n or the sample line is
// malformed and the whole scrape fails to parse. Use this wherever a label
// value is baked into a metric name (tenant names, model ids).
std::string EscapeLabelValue(std::string_view value);

namespace internal {

// One cache line per shard so concurrent workers never false-share.
struct alignas(64) CounterShard {
  std::atomic<int64_t> value{0};
};

int ThisThreadShard();

}  // namespace internal

// Monotone counter. Add() is wait-free and uncontended across pool workers.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t n = 1) {
    shards_[internal::ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  int64_t value() const {
    int64_t total = 0;
    for (const internal::CounterShard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  internal::CounterShard shards_[kShards];
};

// Last-write-wins double value (queue depth, loss, breaker state). Set() and
// Add() are single atomics; gauges are updated at event rate, not item rate,
// so one cache line is enough.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::atomic<double> value_{0.0};
};

// A tail observation worth keeping by name: the largest values a histogram
// has seen, each linked to the trace id of the request that produced it —
// the bridge from "p99 moved" to "this is the trace of the request that
// moved it". Exported OpenMetrics-style in the text exposition and as an
// `exemplars` array in the JSON snapshot.
struct Exemplar {
  double value = 0.0;
  uint64_t trace_id = 0;
};

// Summary of a histogram at one instant.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

// Log-bucketed (HDR-style) histogram of non-negative doubles.
//
// Buckets: values are split into power-of-two octaves, each octave into
// kSubBuckets linear sub-buckets, so the bucket width tracks the magnitude
// of the value — quantiles are exact to within one sub-bucket, a relative
// error of at most 1/kSubBuckets (6.25%), across ten decades of range
// without per-histogram configuration. Covered range (in the histogram's
// unit, milliseconds for latencies): [2^kMinExp, 2^kMaxExp) ≈ [0.001, 3e7];
// values outside clamp into the underflow/overflow buckets and the exact
// max is tracked separately, so a pathological outlier is never silently
// averaged away.
class Histogram {
 public:
  // Sub-buckets per power-of-two octave.
  static constexpr int kSubBuckets = 16;
  // frexp exponents covered: value v = m * 2^e with m in [0.5, 1).
  static constexpr int kMinExp = -9;   // Octave [2^-10, 2^-9) ~ [0.001, 0.002).
  static constexpr int kMaxExp = 25;   // Octave [2^24, 2^25) ~ [1.7e7, 3.4e7).
  static constexpr int kNumOctaves = kMaxExp - kMinExp + 1;
  // [0] underflow, [1 .. octaves*sub] log buckets, [last] overflow.
  static constexpr int kNumBuckets = kNumOctaves * kSubBuckets + 2;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Records one observation. Wait-free except for the per-shard CAS max
  // (contended only by threads hashing to the same shard *and* racing a new
  // maximum). Negative and NaN values are counted into the underflow bucket
  // so count stays consistent with calls.
  void Record(double value);

  // Records `value` and, when `trace_id` is nonzero and the value ranks
  // among the kExemplarSlots largest seen so far, retains (value, trace_id)
  // as a tail exemplar. Fast path: once the slots are full, values at or
  // below the current floor skip the exemplar lock entirely (one relaxed
  // load) — only genuine tail observations pay the mutex.
  void RecordWithExemplar(double value, uint64_t trace_id);

  // Retained tail exemplars, sorted descending by value.
  static constexpr int kExemplarSlots = 8;
  std::vector<Exemplar> Exemplars() const;

  // Index of the bucket `value` lands in (exposed for the bucket-math tests).
  static int BucketIndex(double value);
  // Inclusive upper bound of `bucket` (the value quantiles report).
  static double BucketUpperBound(int bucket);

  HistogramSnapshot Snapshot() const;
  int64_t count() const;

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> counts[kNumBuckets]{};
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };

  const std::string name_;
  Shard shards_[kShards];

  // Smallest value currently holding an exemplar slot once all slots are
  // full; -inf while slots remain. Read relaxed on the record path so
  // non-tail observations never touch exemplar_mutex_.
  std::atomic<double> exemplar_floor_{-std::numeric_limits<double>::infinity()};
  mutable std::mutex exemplar_mutex_;
  Exemplar exemplars_[kExemplarSlots];  // Guarded by exemplar_mutex_.
  int exemplar_count_ = 0;              // Guarded by exemplar_mutex_.
};

// A metric whose value lives elsewhere (TensorAllocator's atomics, the
// PlanCache) and is pulled at export time: zero added cost on the owning
// subsystem's hot path.
enum class CallbackKind { kCounter, kGauge };

class MetricsRegistry {
 public:
  // The process-wide registry (what the instrumented subsystems and the
  // --metrics-out exporters use). Tests may construct private registries.
  static MetricsRegistry& Get();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. Returned pointers are stable for the registry's lifetime
  // (process lifetime for Get()); instrumented code resolves them once and
  // caches them. Every call counts as a lookup.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Registers a pull-style metric; `fn` runs under the registry mutex at
  // export time and must not call back into the registry. Re-registering a
  // name replaces the callback (the singletons that register these may be
  // re-created in tests).
  void RegisterCallback(std::string_view name, CallbackKind kind, std::function<double()> fn);

  // How many Get*/RegisterCallback calls ever ran. Hot paths cache handles,
  // so tests assert this does not move across a steady epoch / request.
  int64_t lookups() const { return lookups_.load(std::memory_order_relaxed); }

  // ---- Exporters ----------------------------------------------------------

  // Prometheus-style text exposition: "# TYPE" comments, counters/gauges as
  // single samples, histograms as summaries (quantile-labelled samples plus
  // _count/_sum/_max). Metrics are sorted by name.
  std::string TextExposition() const;

  // JSON snapshot of the same data (the --metrics-out= format).
  void WriteJson(JsonWriter& writer) const;
  std::string JsonSnapshot() const;

  // Writes the JSON snapshot (and, for WriteTextFile, the exposition) to a
  // file. False on I/O error.
  bool WriteJsonFile(const std::string& path) const;
  bool WriteTextFile(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::atomic<int64_t> lookups_{0};
  // std::map keeps exposition output sorted and iterator/pointer-stable.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  struct Callback {
    CallbackKind kind;
    std::function<double()> fn;
  };
  std::map<std::string, Callback, std::less<>> callbacks_;
};

}  // namespace metrics
}  // namespace seastar

#endif  // SRC_COMMON_METRICS_H_
