// Wall-clock stopwatch used by the training loop and benchmark harnesses.
#ifndef SRC_COMMON_STOPWATCH_H_
#define SRC_COMMON_STOPWATCH_H_

#include <chrono>

namespace seastar {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace seastar

#endif  // SRC_COMMON_STOPWATCH_H_
