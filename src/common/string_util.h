// Small string helpers shared by the CLI benches and table printers.
#ifndef SRC_COMMON_STRING_UTIL_H_
#define SRC_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace seastar {

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> Split(const std::string& text, char sep);

// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, const std::string& sep);

// "12345678" -> "12,345,678" for table readability.
std::string WithThousandsSeparators(uint64_t value);

// Bytes -> short human string, e.g. "1.50 GB", "38.2 MB", "512 B".
std::string HumanBytes(uint64_t bytes);

// Fixed-precision float formatting, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double value, int precision);

// Returns true if `text` starts with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

// Parses "--key=value" style flags out of argv. Returns value for `key` or
// `fallback` if absent. `key` is given without the leading dashes.
std::string FlagValue(int argc, char** argv, const std::string& key, const std::string& fallback);
double FlagDouble(int argc, char** argv, const std::string& key, double fallback);
int64_t FlagInt(int argc, char** argv, const std::string& key, int64_t fallback);
bool FlagBool(int argc, char** argv, const std::string& key, bool fallback);

}  // namespace seastar

#endif  // SRC_COMMON_STRING_UTIL_H_
