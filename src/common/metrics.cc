#include "src/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/common/json.h"
#include "src/common/logging.h"

namespace seastar {
namespace metrics {

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace internal {

int ThisThreadShard() {
  // Round-robin shard assignment at first use per thread: with kShards a
  // power of two and pools no wider than kShards, every worker gets a
  // private shard. (Thread-identity hashing would cluster; a counter cannot.)
  static std::atomic<uint32_t> next_shard{0};
  thread_local const int shard =
      static_cast<int>(next_shard.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<uint32_t>(kShards));
  return shard;
}

}  // namespace internal

// ---- Histogram --------------------------------------------------------------

int Histogram::BucketIndex(double value) {
  if (!(value >= std::ldexp(1.0, kMinExp - 1))) {
    // Below range, negative, or NaN (the !>= form catches NaN too).
    return 0;
  }
  if (value >= std::ldexp(1.0, kMaxExp)) {
    return kNumBuckets - 1;
  }
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = mantissa * 2^exp.
  // mantissa in [0.5, 1) -> linear sub-bucket within the octave.
  const int sub = static_cast<int>((mantissa - 0.5) * 2.0 * kSubBuckets);
  return 1 + (exp - kMinExp) * kSubBuckets + std::min(sub, kSubBuckets - 1);
}

double Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) {
    return std::ldexp(1.0, kMinExp - 1);  // Everything below the tracked range.
  }
  if (bucket >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const int index = bucket - 1;
  const int exp = kMinExp + index / kSubBuckets;
  const int sub = index % kSubBuckets;
  // Octave [2^(exp-1), 2^exp), sub-bucket width 2^(exp-1)/kSubBuckets.
  return std::ldexp(1.0, exp - 1) * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
}

void Histogram::Record(double value) {
  Shard& shard = shards_[internal::ThisThreadShard()];
  shard.counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + value, std::memory_order_relaxed)) {
  }
  double max = shard.max.load(std::memory_order_relaxed);
  while (value > max &&
         !shard.max.compare_exchange_weak(max, value, std::memory_order_relaxed)) {
  }
}

void Histogram::RecordWithExemplar(double value, uint64_t trace_id) {
  Record(value);
  if (trace_id == 0) {
    return;
  }
  // Steady-state fast path: once the slots are full, anything at or below
  // the floor cannot displace an exemplar — skip the lock on one relaxed
  // load. Only tail-grade values (by definition rare) fall through.
  if (!(value > exemplar_floor_.load(std::memory_order_relaxed))) {
    return;
  }
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  int slot;
  if (exemplar_count_ < kExemplarSlots) {
    slot = exemplar_count_++;
  } else {
    slot = 0;
    for (int i = 1; i < kExemplarSlots; ++i) {
      if (exemplars_[i].value < exemplars_[slot].value) {
        slot = i;
      }
    }
    if (value <= exemplars_[slot].value) {
      return;  // Raced: another thread already claimed the floor slot.
    }
  }
  exemplars_[slot] = Exemplar{value, trace_id};
  if (exemplar_count_ == kExemplarSlots) {
    double floor = exemplars_[0].value;
    for (int i = 1; i < kExemplarSlots; ++i) {
      floor = std::min(floor, exemplars_[i].value);
    }
    exemplar_floor_.store(floor, std::memory_order_relaxed);
  }
}

std::vector<Exemplar> Histogram::Exemplars() const {
  std::vector<Exemplar> out;
  {
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    out.assign(exemplars_, exemplars_ + exemplar_count_);
  }
  std::sort(out.begin(), out.end(),
            [](const Exemplar& x, const Exemplar& y) { return x.value > y.value; });
  return out;
}

int64_t Histogram::count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

HistogramSnapshot Histogram::Snapshot() const {
  int64_t counts[kNumBuckets] = {};
  HistogramSnapshot snapshot;
  for (const Shard& shard : shards_) {
    for (int b = 0; b < kNumBuckets; ++b) {
      counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snapshot.count += shard.count.load(std::memory_order_relaxed);
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
    snapshot.max = std::max(snapshot.max, shard.max.load(std::memory_order_relaxed));
  }
  if (snapshot.count == 0) {
    return snapshot;
  }
  // Quantile q = upper bound of the first bucket whose cumulative count
  // reaches ceil(q * count); the overflow bucket reports the exact max.
  const auto quantile = [&](double q) {
    const int64_t rank =
        std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * static_cast<double>(snapshot.count))));
    int64_t cumulative = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      cumulative += counts[b];
      if (cumulative >= rank) {
        const double bound = BucketUpperBound(b);
        return std::isinf(bound) ? snapshot.max : std::min(bound, snapshot.max);
      }
    }
    return snapshot.max;
  };
  snapshot.p50 = quantile(0.50);
  snapshot.p95 = quantile(0.95);
  snapshot.p99 = quantile(0.99);
  return snapshot;
}

// ---- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked: instrumented singletons (allocator, plan cache) hold handles and
  // may outlive any static-destruction order we could arrange.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>(std::string(name))).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>(std::string(name))).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::RegisterCallback(std::string_view name, CallbackKind kind,
                                       std::function<double()> fn) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  callbacks_[std::string(name)] = Callback{kind, std::move(fn)};
}

namespace {

// Prometheus sample values: integers print bare, doubles shortest-form.
std::string SampleValue(double value) {
  char buffer[64];
  if (std::isfinite(value) && value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%g", value);
  }
  return buffer;
}

// "name{label=...}" -> name + "_count" must insert before the label braces.
std::string WithSuffix(const std::string& name, const char* suffix) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return name + suffix;
  }
  return name.substr(0, brace) + suffix + name.substr(brace);
}

// Appends a quantile label to a (possibly already labelled) metric name.
std::string WithQuantile(const std::string& name, const char* q) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return name + "{quantile=\"" + q + "\"}";
  }
  std::string labelled = name;
  labelled.insert(labelled.size() - 1, std::string(",quantile=\"") + q + "\"");
  return labelled;
}

std::string BareName(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

std::string TraceIdHex(uint64_t trace_id) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(trace_id));
  return buffer;
}

}  // namespace

std::string MetricsRegistry::TextExposition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string last_typed;  // Suppress repeated # TYPE for labelled series.
  const auto type_line = [&](const std::string& name, const char* type) {
    const std::string bare = BareName(name);
    if (bare != last_typed) {
      out += "# TYPE " + bare + " " + type + "\n";
      last_typed = bare;
    }
  };
  for (const auto& [name, counter] : counters_) {
    type_line(name, "counter");
    out += name + " " + SampleValue(static_cast<double>(counter->value())) + "\n";
  }
  for (const auto& [name, callback] : callbacks_) {
    type_line(name, callback.kind == CallbackKind::kCounter ? "counter" : "gauge");
    out += name + " " + SampleValue(callback.fn()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    type_line(name, "gauge");
    out += name + " " + SampleValue(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snapshot = histogram->Snapshot();
    type_line(name, "summary");
    out += WithQuantile(name, "0.5") + " " + SampleValue(snapshot.p50) + "\n";
    out += WithQuantile(name, "0.95") + " " + SampleValue(snapshot.p95) + "\n";
    out += WithQuantile(name, "0.99") + " " + SampleValue(snapshot.p99) + "\n";
    out += WithSuffix(name, "_count") + " " +
           SampleValue(static_cast<double>(snapshot.count)) + "\n";
    out += WithSuffix(name, "_sum") + " " + SampleValue(snapshot.sum) + "\n";
    out += WithSuffix(name, "_max") + " " + SampleValue(snapshot.max);
    // OpenMetrics-style exemplar on the _max sample: the trace id of the
    // largest observation, so a scrape links the tail straight to a trace.
    const std::vector<Exemplar> exemplars = histogram->Exemplars();
    if (!exemplars.empty()) {
      out += " # {trace_id=\"" + TraceIdHex(exemplars.front().trace_id) + "\"} " +
             SampleValue(exemplars.front().value);
    }
    out += "\n";
  }
  return out;
}

void MetricsRegistry::WriteJson(JsonWriter& writer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  writer.BeginObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, counter] : counters_) {
    writer.Field(name, counter->value());
  }
  for (const auto& [name, callback] : callbacks_) {
    if (callback.kind == CallbackKind::kCounter) {
      writer.Key(name);
      writer.Double(callback.fn());
    }
  }
  writer.EndObject();
  writer.Key("gauges");
  writer.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    writer.Key(name);
    writer.Double(gauge->value());
  }
  for (const auto& [name, callback] : callbacks_) {
    if (callback.kind == CallbackKind::kGauge) {
      writer.Key(name);
      writer.Double(callback.fn());
    }
  }
  writer.EndObject();
  writer.Key("histograms");
  writer.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snapshot = histogram->Snapshot();
    writer.Key(name);
    writer.BeginObject();
    writer.Field("count", snapshot.count);
    writer.FieldDouble("sum", snapshot.sum);
    writer.FieldDouble("p50", snapshot.p50);
    writer.FieldDouble("p95", snapshot.p95);
    writer.FieldDouble("p99", snapshot.p99);
    writer.FieldDouble("max", snapshot.max);
    const std::vector<Exemplar> exemplars = histogram->Exemplars();
    if (!exemplars.empty()) {
      writer.Key("exemplars");
      writer.BeginArray();
      for (const Exemplar& exemplar : exemplars) {
        writer.BeginObject();
        writer.FieldDouble("value", exemplar.value);
        writer.Field("trace_id", TraceIdHex(exemplar.trace_id));
        writer.EndObject();
      }
      writer.EndArray();
    }
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
}

std::string MetricsRegistry::JsonSnapshot() const {
  JsonWriter writer;
  WriteJson(writer);
  return writer.str();
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  JsonWriter writer;
  WriteJson(writer);
  return writer.WriteToFile(path);
}

bool MetricsRegistry::WriteTextFile(const std::string& path) const {
  const std::string exposition = TextExposition();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(exposition.data(), 1, exposition.size(), file);
  return std::fclose(file) == 0 && written == exposition.size();
}

}  // namespace metrics
}  // namespace seastar
