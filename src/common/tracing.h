// Per-request distributed tracing for the serving stack.
//
// The Profiler (profiler.h) answers "where did this *run* spend its time";
// the metrics registry answers "what are the totals". Neither can answer the
// production question the multi-tenant server raises: *why was request X
// slow* — was it queue wait behind a bursting tenant, a retry after a
// transient fault, a breaker-open degraded detour, or the forward itself?
// This module records a span tree per request, keyed by a 64-bit trace id
// assigned at admission, covering the whole lifecycle: admission/quota
// decision, queue wait (with the tenant's stride-scheduler position), batch
// formation (leader vs. follower), execution (per retry attempt, per shard
// pass, per tiled-unit launch), degraded fallback, and fulfillment.
//
// Propagation follows deadline.h's ambient pattern: the serving thread
// installs the batch leader's trace in a thread-local (ScopedTraceContext),
// and executor internals record spans through AmbientSpan without any
// signature change. With no trace installed — training, benches, tests —
// every hook is one thread-local load and a null test.
//
// Sampling is two-tier, so tracing can stay on in production:
//  * Head sampler — a cheap deterministic function of the trace id admits
//    ~head_sample_rate of requests (default 1%) for unconditional retention.
//    Deterministic + seeded means tests (and repeated runs) see a stable
//    subset.
//  * Tail reservoir — always on, regardless of the head rate (even 0%):
//    every *anomalous* request (shed / expired / degraded / retried /
//    breaker-involved / failed) is retained, and the slowest-N non-anomalous
//    requests are kept in a min-heap keyed on end-to-end latency. p99
//    outliers are never lost to sampling.
//
// Cost discipline: every request is traced (retention, not recording, is
// what sampling decides — a tail outlier can only be kept if its spans were
// recorded), so recording must be near-free: spans are fixed-size POD
// records appended to a pre-reserved per-trace buffer; trace objects are
// pooled and recycled, so steady state performs no fresh allocation, no
// registry lookups, and no locks outside StartTrace/FinishTrace's
// uncontended pool mutex. Span mutation is single-owner by construction
// (client thread before the queue push, serving thread after the pop; the
// queue mutex orders the handoff), so it takes no locks at all.
//
// Export is Chrome-trace JSON (chrome://tracing, Perfetto): one pid per
// tenant, one tid per request, spans as "X" complete events. See
// docs/INTERNALS.md §17 for the span taxonomy.
#ifndef SRC_COMMON_TRACING_H_
#define SRC_COMMON_TRACING_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace seastar {

class JsonWriter;

namespace trace {

// Anomaly classes. Any nonzero flag set makes a trace unconditionally
// reservoir-retained at finish, regardless of head sampling.
enum AnomalyFlag : uint32_t {
  kShed = 1u << 0,      // Turned away at the door (capacity or quota).
  kExpired = 1u << 1,   // Deadline passed (queued, mid-execution, or at fulfillment).
  kDegraded = 1u << 2,  // Answered from the last-known-good cache.
  kRetried = 1u << 3,   // Paid at least one transient-fault retry.
  kBreaker = 1u << 4,   // Tripped the breaker, or served while it was open.
  kFailed = 1u << 5,    // Fresh answer impossible and no fallback.
};

// "shed|retried" rendering for exports and logs; "clean" when flags == 0.
std::string FlagNames(uint32_t flags);

// One node of a request's span tree. POD-sized so recording is a handful of
// stores into a pre-reserved vector slot; names come from the static span
// taxonomy, dynamic annotations (a fused unit's label) go into the
// fixed-width detail buffer.
struct Span {
  const char* name = "";        // Static taxonomy name ("request", "queue", ...).
  char detail[24] = {};         // Truncated dynamic annotation; "" = none.
  const char* a_name = nullptr; // Labels for the integer args; null = unused.
  const char* b_name = nullptr;
  int64_t a = 0;
  int64_t b = 0;
  int64_t start_us = 0;         // Relative to the owning Tracer's epoch.
  int64_t dur_us = -1;          // -1 while open.
  int32_t parent = -1;          // Index of the parent span; -1 = root.
};

class Tracer;

// The span tree of one request, owned by its Tracer (pooled and recycled).
// Spans are appended by whichever thread currently owns the request — never
// two at once — so mutation is lock-free. Begin/End follow stack discipline
// (an inner span closes before its parent); AddSpan records an already-
// closed interval measured elsewhere (e.g. queue wait, admission→dequeue).
class RequestTrace {
 public:
  using Clock = std::chrono::steady_clock;

  uint64_t trace_id() const { return trace_id_; }
  bool sampled() const { return sampled_; }
  uint32_t tenant_index() const { return tenant_index_; }
  uint64_t request_id() const { return request_id_; }

  void AddFlag(uint32_t flag) { flags_ |= flag; }
  uint32_t flags() const { return flags_; }

  // Opens a span as a child of the innermost open span. Returns a token for
  // EndSpan, or -1 when the per-trace span budget is exhausted (the drop is
  // counted; End of a -1 token is a no-op).
  int BeginSpan(const char* name);
  int BeginSpanAt(const char* name, Clock::time_point start);
  void EndSpan(int token);

  // Records a closed interval measured by the caller, as a child of the
  // innermost open span.
  int AddSpan(const char* name, Clock::time_point start, Clock::time_point end);

  void SetDetail(int token, std::string_view detail);
  void SetArg(int token, const char* a_name, int64_t a);
  void SetArgs(int token, const char* a_name, int64_t a, const char* b_name, int64_t b);

  int num_spans() const { return static_cast<int>(spans_.size()); }
  const Span& span(int index) const { return spans_[static_cast<size_t>(index)]; }
  int64_t dropped_spans() const { return dropped_spans_; }

  // Set by FinishTrace.
  double total_ms() const { return total_ms_; }
  const char* outcome() const { return outcome_; }

 private:
  friend class Tracer;
  RequestTrace() = default;

  void Reset(uint64_t trace_id, bool sampled, uint32_t tenant_index, uint64_t request_id,
             Clock::time_point epoch, int max_spans);
  int64_t RelMicros(Clock::time_point tp) const;
  int Append(const char* name, int64_t start_us, int64_t dur_us);

  uint64_t trace_id_ = 0;
  uint64_t request_id_ = 0;
  uint32_t tenant_index_ = 0;
  uint32_t flags_ = 0;
  bool sampled_ = false;
  int32_t open_ = -1;  // Innermost open span: parent for the next Begin/Add.
  int max_spans_ = 0;
  int64_t dropped_spans_ = 0;
  double total_ms_ = 0.0;
  char outcome_[16] = "open";
  Clock::time_point epoch_{};
  std::vector<Span> spans_;  // Capacity survives pool recycling.
};

struct TracerConfig {
  bool enabled = true;
  // Head tier: fraction of traces retained unconditionally (deterministic in
  // the trace id, so a fixed seed admits a stable subset). 0 disables the
  // head tier; the tail reservoir still runs.
  double head_sample_rate = 0.01;
  // Tail tier: the slowest-N non-anomalous finished traces, by total_ms.
  int tail_keep = 32;
  // Newest-kept ring capacities for head-sampled and anomalous traces.
  // Overflowing traces are re-offered to the tail heap before recycling, so
  // the slowest requests survive even a flood of anomalies.
  int sampled_keep = 256;
  int anomaly_keep = 8192;
  // Span budget per trace; recording beyond it drops (counted) rather than
  // growing without bound.
  int max_spans_per_trace = 96;
  // Mixed into trace ids (and thus the head sampler). Fixed seed => fully
  // deterministic ids and sampling decisions.
  uint64_t seed = 0;
};

// Counters exported as the `trace` section of ServerStats.
struct TracerStats {
  int64_t started = 0;
  int64_t finished = 0;
  int64_t head_sampled = 0;        // Sampler admissions among started traces.
  int64_t anomalies_observed = 0;  // Finished with any anomaly flag.
  int64_t retained_sampled = 0;    // Currently held, per store.
  int64_t retained_anomaly = 0;
  int64_t retained_tail = 0;
  int64_t evicted = 0;             // Recycled out of a retention store.
  int64_t spans_dropped = 0;       // Spans beyond the per-trace budget.
  int64_t pool_misses = 0;         // StartTrace allocations not served by the pool.
};

// Owns trace lifecycle, sampling, the tail reservoir, and export. StartTrace
// and FinishTrace are thread-safe (client threads start, the serving thread
// finishes — sheds finish on the client thread); everything between is the
// single-owner span recording above.
class Tracer {
 public:
  using Clock = RequestTrace::Clock;

  explicit Tracer(TracerConfig config);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Begins a trace (never null). The returned object stays valid until
  // FinishTrace; callers must finish every started trace exactly once.
  RequestTrace* StartTrace(uint32_t tenant_index, uint64_t request_id);

  // Closes open spans, stamps outcome/total, and decides retention:
  // anomalous traces go to the anomaly ring, head-sampled ones to the
  // sampled ring, everything else competes for the slowest-N tail heap;
  // losers are recycled into the pool. `trace` must not be used afterwards.
  void FinishTrace(RequestTrace* trace, double total_ms, const char* outcome);

  // The deterministic head-sampling decision (exposed for tests).
  static bool HeadSampled(uint64_t trace_id, double rate);

  // Chrome-trace pid naming: pid = tenant index, named "tenant:<name>".
  void SetTenantName(uint32_t index, std::string name);

  TracerStats stats() const;
  const TracerConfig& config() const { return config_; }
  Clock::time_point epoch() const { return epoch_; }

  // Visits every retained trace (anomaly ring, sampled ring, tail heap) under
  // the tracer mutex. For tests and custom exporters.
  void ForEachRetained(const std::function<void(const RequestTrace&)>& fn) const;

  // Chrome-trace JSON: {"displayTimeUnit", "traceEvents": [...], "traceStats"}.
  // One pid per tenant, one tid per request; ts/dur in microseconds since the
  // tracer epoch. Loadable in chrome://tracing / Perfetto.
  void WriteChromeTrace(JsonWriter& writer) const;
  std::string ChromeTraceJson() const;
  bool WriteChromeTraceFile(const std::string& path) const;

 private:
  std::unique_ptr<RequestTrace> Acquire();  // Caller holds mutex_.
  void Recycle(std::unique_ptr<RequestTrace> trace);  // Caller holds mutex_.
  // Offers to the slowest-N heap; recycles the loser. Caller holds mutex_.
  void OfferTail(std::unique_ptr<RequestTrace> trace);

  const TracerConfig config_;
  const Clock::time_point epoch_;

  mutable std::mutex mutex_;
  uint64_t next_trace_ = 1;
  TracerStats stats_;
  std::vector<std::unique_ptr<RequestTrace>> pool_;
  std::deque<std::unique_ptr<RequestTrace>> sampled_;    // FIFO; newest kept.
  std::deque<std::unique_ptr<RequestTrace>> anomalies_;  // FIFO; newest kept.
  std::vector<std::unique_ptr<RequestTrace>> tail_;      // Min-heap by total_ms.
  std::map<uint32_t, std::string> tenant_names_;
};

// ---- Ambient propagation (the ScopedDeadline pattern) -----------------------

namespace trace_internal {
extern thread_local RequestTrace* tls_trace;
}  // namespace trace_internal

// Installs `trace` as the calling thread's ambient trace for the scope's
// lifetime (nests; restores the previous on exit). Null is a no-op scope.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(RequestTrace* trace) : previous_(trace_internal::tls_trace) {
    trace_internal::tls_trace = trace;
  }
  ~ScopedTraceContext() { trace_internal::tls_trace = previous_; }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  RequestTrace* previous_;
};

inline RequestTrace* CurrentTrace() { return trace_internal::tls_trace; }

// The ambient trace's id, 0 when none — what the flight recorder stamps on
// every event for crash correlation.
inline uint64_t CurrentTraceId() {
  const RequestTrace* trace = trace_internal::tls_trace;
  return trace != nullptr ? trace->trace_id() : 0;
}

// RAII span against the ambient trace. With no trace installed (training,
// benches) construction is one thread-local load and a null test — the same
// budget as CheckExecutionDeadline — so executor hooks cost nothing when the
// serving stack is not the caller.
class AmbientSpan {
 public:
  explicit AmbientSpan(const char* name) : trace_(trace_internal::tls_trace) {
    if (trace_ != nullptr) {
      token_ = trace_->BeginSpan(name);
    }
  }
  ~AmbientSpan() {
    if (trace_ != nullptr) {
      trace_->EndSpan(token_);
    }
  }

  AmbientSpan(const AmbientSpan&) = delete;
  AmbientSpan& operator=(const AmbientSpan&) = delete;

  bool active() const { return trace_ != nullptr; }
  void Detail(std::string_view detail) {
    if (trace_ != nullptr) {
      trace_->SetDetail(token_, detail);
    }
  }
  void Arg(const char* a_name, int64_t a) {
    if (trace_ != nullptr) {
      trace_->SetArg(token_, a_name, a);
    }
  }
  void Args(const char* a_name, int64_t a, const char* b_name, int64_t b) {
    if (trace_ != nullptr) {
      trace_->SetArgs(token_, a_name, a, b_name, b);
    }
  }

 private:
  RequestTrace* trace_;
  int token_ = -1;
};

// 16-digit lowercase hex rendering of a trace id — the format used in
// Chrome-trace args, metrics exemplars, and drill reports.
std::string TraceIdHex(uint64_t trace_id);

}  // namespace trace
}  // namespace seastar

#endif  // SRC_COMMON_TRACING_H_
