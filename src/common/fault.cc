#include "src/common/fault.h"

#include <cstdlib>

#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace seastar {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kTensorAlloc:
      return "alloc";
    case FaultSite::kSimtWorker:
      return "simt_worker";
    case FaultSite::kCheckpointWrite:
      return "ckpt_write";
    case FaultSite::kCheckpointRead:
      return "ckpt_read";
    case FaultSite::kGraphRead:
      return "graph_read";
    case FaultSite::kShardSend:
      return "shard_send";
    case FaultSite::kShardRecv:
      return "shard_recv";
    case FaultSite::kShardCombine:
      return "shard_combine";
    case FaultSite::kShardWorker:
      return "shard_worker";
    case FaultSite::kNumSites:
      break;
  }
  return "?";
}

const std::string& FaultSiteList() {
  static const std::string* list = [] {
    std::string joined;
    for (int i = 0; i < static_cast<int>(FaultSite::kNumSites); ++i) {
      if (!joined.empty()) {
        joined += '|';
      }
      joined += FaultSiteName(static_cast<FaultSite>(i));
    }
    return new std::string(std::move(joined));
  }();
  return *list;
}

std::optional<FaultSite> FaultSiteFromString(const std::string& name) {
  for (int i = 0; i < static_cast<int>(FaultSite::kNumSites); ++i) {
    if (name == FaultSiteName(static_cast<FaultSite>(i))) {
      return static_cast<FaultSite>(i);
    }
  }
  return std::nullopt;
}

FaultInjector& FaultInjector::Get() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(FaultSite site, int64_t after_n, int64_t count) {
  SEASTAR_CHECK_GE(after_n, 0);
  SEASTAR_CHECK_GT(count, 0);
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& state = sites_[static_cast<int>(site)];
  state = SiteState();
  state.armed = true;
  state.fail_after = after_n;
  state.fail_count = count;
  RecomputeArmedMask();
}

void FaultInjector::ArmProbabilistic(FaultSite site, double probability, uint64_t seed) {
  SEASTAR_CHECK_GE(probability, 0.0);
  SEASTAR_CHECK_LE(probability, 1.0);
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& state = sites_[static_cast<int>(site)];
  state = SiteState();
  state.armed = true;
  state.probability = probability;
  state.rng.emplace(seed);
  RecomputeArmedMask();
}

void FaultInjector::Disarm(FaultSite site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[static_cast<int>(site)] = SiteState();
  RecomputeArmedMask();
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (SiteState& state : sites_) {
    state = SiteState();
  }
  RecomputeArmedMask();
}

bool FaultInjector::ShouldFail(FaultSite site) {
  int64_t hit;
  bool fail;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SiteState& state = sites_[static_cast<int>(site)];
    if (!state.armed) {
      return false;
    }
    hit = state.hits++;
    if (state.rng.has_value()) {
      fail = state.rng->NextBernoulli(state.probability);
    } else {
      fail = hit >= state.fail_after && hit < state.fail_after + state.fail_count;
    }
    if (fail) {
      ++state.injected;
    }
  }
  if (fail) {
    // A trip only happens while a drill/test has faults armed, so the ring
    // write is never on a healthy hot path.
    FlightRecorder::Get().Record("fault", FaultSiteName(site), hit);
  }
  return fail;
}

int64_t FaultInjector::hits(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sites_[static_cast<int>(site)].hits;
}

int64_t FaultInjector::injected(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sites_[static_cast<int>(site)].injected;
}

bool FaultInjector::ConfigureFromSpec(const std::string& spec, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  for (const std::string& site_spec : Split(spec, ';')) {
    if (site_spec.empty()) {
      continue;
    }
    const std::vector<std::string> pieces = Split(site_spec, ':');
    const std::optional<FaultSite> site = FaultSiteFromString(pieces[0]);
    if (!site.has_value()) {
      return fail("unknown fault site '" + pieces[0] + "' (" + FaultSiteList() + ")");
    }
    int64_t after = -1;
    int64_t count = 1;
    double probability = -1.0;
    uint64_t seed = 0x5ea57a2021ull;
    for (size_t i = 1; i < pieces.size(); ++i) {
      const std::vector<std::string> kv = Split(pieces[i], '=');
      if (kv.size() != 2 || kv[1].empty()) {
        return fail("malformed trigger '" + pieces[i] + "' in '" + site_spec + "'");
      }
      try {
        if (kv[0] == "after") {
          after = std::stoll(kv[1]);
        } else if (kv[0] == "count") {
          count = std::stoll(kv[1]);
        } else if (kv[0] == "p") {
          probability = std::stod(kv[1]);
        } else if (kv[0] == "seed") {
          seed = static_cast<uint64_t>(std::stoull(kv[1]));
        } else {
          return fail("unknown trigger key '" + kv[0] + "' (after|count|p|seed)");
        }
      } catch (...) {
        return fail("bad number '" + kv[1] + "' in '" + pieces[i] + "'");
      }
    }
    if (probability >= 0.0 && after >= 0) {
      return fail("'" + site_spec + "': choose either after= or p=, not both");
    }
    if (probability >= 0.0) {
      if (probability > 1.0) {
        return fail("probability out of [0,1] in '" + site_spec + "'");
      }
      ArmProbabilistic(*site, probability, seed);
    } else if (after >= 0) {
      if (count <= 0) {
        return fail("count must be positive in '" + site_spec + "'");
      }
      Arm(*site, after, count);
    } else {
      Arm(*site, /*after_n=*/0, /*count=*/1);  // Bare site name: fail the first hit.
    }
  }
  return true;
}

void FaultInjector::ConfigureFromEnv() {
  const char* spec = std::getenv("SEASTAR_FAULTS");
  if (spec == nullptr || spec[0] == '\0') {
    return;
  }
  std::string error;
  if (!ConfigureFromSpec(spec, &error)) {
    SEASTAR_LOG(Warning) << "ignoring malformed SEASTAR_FAULTS: " << error;
    return;
  }
  SEASTAR_LOG(Info) << "fault injection armed from SEASTAR_FAULTS: " << spec;
}

void FaultInjector::RecomputeArmedMask() {
  uint32_t mask = 0;
  for (int i = 0; i < static_cast<int>(FaultSite::kNumSites); ++i) {
    if (sites_[i].armed) {
      mask |= 1u << i;
    }
  }
  armed_sites_.store(mask, std::memory_order_relaxed);
}

}  // namespace seastar
