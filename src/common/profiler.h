// Run-scoped profiler: the observability substrate behind the paper's
// evaluation (§7, Figs. 10-12), which is entirely about *measured* kernel
// behaviour — per-operator time, peak memory, neighbour-access locality.
//
// A Profiler is a passive sink threaded through the execution API via
// RunContext (see src/exec/runtime.h). The executors open one span per fused
// execution unit (Seastar) or per backend operator (baselines) and attach
// the counters the paper's figures are built from: wall time, FAT-group
// geometry, block-scheduler dispatch counts per mode, edges traversed, bytes
// materialized, and allocator watermark deltas. The training loops add
// epoch/phase/batch spans on top, so a trace shows the full nesting
//
//   epoch > forward/backward/step > vertex_program > unit/op
//
// Overhead discipline: when no profiler is installed (ctx.profiler == null)
// or the profiler is constructed disabled, every hook is a pointer test on
// the *orchestration* path only — the per-edge kernel loops never branch on
// profiling state (hot-loop counters accumulate into per-worker buffers that
// are only allocated and merged when a span is actually open). Span
// begin/end happens on the thread that owns the run, so the event list
// needs no locks.
//
// Export: Chrome-trace JSON ("X" complete events, load in chrome://tracing
// or https://ui.perfetto.dev) and a per-(category, name) summary table.
#ifndef SRC_COMMON_PROFILER_H_
#define SRC_COMMON_PROFILER_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/common/stopwatch.h"

namespace seastar {

// One closed span. Counters default to zero / empty, meaning "not
// applicable"; exporters omit them.
struct ProfileEvent {
  std::string name;      // e.g. "unit0:Mul+AggSum", "AggSum", "epoch"
  std::string category;  // "epoch" | "phase" | "batch" | "program" | "unit" | "op" | "bench"
  double start_us = 0.0;  // Relative to the profiler's construction.
  double dur_us = -1.0;   // < 0 while the span is still open.

  // Kernel-behaviour counters (chrome://tracing shows them in the args pane).
  int64_t edges = 0;               // Edges traversed by the span's kernels.
  int64_t bytes_materialized = 0;  // Tensor bytes written to memory.
  int64_t fat_groups = 0;          // FAT groups (= key vertices) covered.
  int32_t fat_group_size = 0;      // Lanes per FAT group (2^k).
  int64_t num_blocks = 0;          // Simulated thread blocks launched.
  int32_t block_size = 0;          // Threads per block.
  int64_t dispatches = 0;          // Block-scheduler dispatch grants.
  int64_t kernel_launches = 0;     // Kernel launches attributed to the span.
  int64_t alloc_delta_bytes = 0;   // Allocator live-byte delta (signed).
  int64_t peak_delta_bytes = 0;    // Allocator watermark rise within span.
  // Steady-state caching counters (ISSUE 3): whether this span's plan came
  // from the PlanCache, and how the span's allocations split between pool
  // reuse (hits) and fresh OS mallocs (misses).
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t pool_hits = 0;
  int64_t pool_misses = 0;
  // Cache-blocked tiling counters (ISSUE 8): how the span's kernels were
  // partitioned. Zero everywhere for spans that ran untiled.
  int64_t tile_segments = 0;  // CSR segments executed.
  int64_t tile_passes = 0;    // segment × feature-tile kernel passes.
  int32_t tile_width = 0;     // Columns per feature tile.
  std::string schedule;            // Block-dispatch mode name; "" if n/a.
  std::string simd_isa;            // Dispatched row-kernel ISA; "" if n/a.
};

// The sink. Thread-compatible, not thread-safe: Begin/End/Mutable must be
// called from the single thread orchestrating the run (worker threads report
// through per-worker buffers owned by the executors, merged before End).
class Profiler {
 public:
  explicit Profiler(bool enabled = true) : enabled_(enabled) {}

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  bool enabled() const { return enabled_; }

  // Opens a span and returns its token (-1 when disabled). Spans may nest;
  // close them in LIFO order for a well-formed trace.
  int64_t Begin(std::string name, std::string category);

  // The open (or closed) span for `token`; nullptr when disabled or the
  // token is invalid. Pointers stay valid across later Begin calls (events
  // live in a deque), so counters can be attached any time before export.
  ProfileEvent* Mutable(int64_t token);

  // Stamps the span's duration.
  void End(int64_t token);

  const std::deque<ProfileEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  // Sum of closed-span durations for `category`, in microseconds.
  double TotalUs(const std::string& category) const;

  // Chrome Trace Event Format (JSON object with a "traceEvents" array of
  // "X" complete events; timestamps in microseconds).
  std::string ChromeTraceJson() const;
  bool WriteChromeTrace(const std::string& path) const;

  // Aggregated per-(category, name) table: count, total/avg ms, edges,
  // bytes materialized, dispatches, kernel launches.
  std::string SummaryTable() const;

 private:
  bool enabled_;
  Stopwatch clock_;
  std::deque<ProfileEvent> events_;
};

// RAII span. Inactive (all no-ops) when `profiler` is null or disabled,
// which is the zero-overhead path every hook takes by default.
class ProfileScope {
 public:
  ProfileScope() = default;
  ProfileScope(Profiler* profiler, std::string name, std::string category) {
    if (profiler != nullptr && profiler->enabled()) {
      profiler_ = profiler;
      token_ = profiler->Begin(std::move(name), std::move(category));
    }
  }
  ~ProfileScope() {
    if (profiler_ != nullptr) {
      profiler_->End(token_);
    }
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  // The span to attach counters to; nullptr when inactive.
  ProfileEvent* event() { return profiler_ != nullptr ? profiler_->Mutable(token_) : nullptr; }

  explicit operator bool() const { return profiler_ != nullptr; }

 private:
  Profiler* profiler_ = nullptr;
  int64_t token_ = -1;
};

}  // namespace seastar

#endif  // SRC_COMMON_PROFILER_H_
