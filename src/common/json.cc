#include "src/common/json.h"

#include <cmath>
#include <cstdio>

#include "src/common/logging.h"

namespace seastar {

void JsonWriter::Prepare(bool is_key) {
  if (value_pending_) {
    // A key was just written; the next token is its value, inline.
    SEASTAR_CHECK(!is_key) << "JsonWriter: key follows key without a value";
    out_ += ' ';
    value_pending_ = false;
    return;
  }
  if (stack_.empty()) {
    return;  // Document root.
  }
  SEASTAR_CHECK(is_key || stack_.back() == Scope::kArray)
      << "JsonWriter: bare value inside an object (missing Key)";
  if (needs_comma_) {
    out_ += ',';
  }
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::BeginObject() {
  Prepare(/*is_key=*/false);
  out_ += '{';
  stack_.push_back(Scope::kObject);
  needs_comma_ = false;
}

void JsonWriter::EndObject() {
  SEASTAR_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "JsonWriter: EndObject without matching BeginObject";
  const bool had_members = needs_comma_;
  stack_.pop_back();
  if (had_members) {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
  out_ += '}';
  needs_comma_ = true;
}

void JsonWriter::BeginArray() {
  Prepare(/*is_key=*/false);
  out_ += '[';
  stack_.push_back(Scope::kArray);
  needs_comma_ = false;
}

void JsonWriter::EndArray() {
  SEASTAR_CHECK(!stack_.empty() && stack_.back() == Scope::kArray)
      << "JsonWriter: EndArray without matching BeginArray";
  const bool had_members = needs_comma_;
  stack_.pop_back();
  if (had_members) {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
  out_ += ']';
  needs_comma_ = true;
}

void JsonWriter::Key(std::string_view name) {
  SEASTAR_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "JsonWriter: Key outside an object";
  Prepare(/*is_key=*/true);
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  needs_comma_ = true;
  value_pending_ = true;
}

void JsonWriter::String(std::string_view value) {
  Prepare(/*is_key=*/false);
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  needs_comma_ = true;
}

void JsonWriter::Int(int64_t value) {
  Prepare(/*is_key=*/false);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
  out_ += buffer;
  needs_comma_ = true;
}

void JsonWriter::Uint(uint64_t value) {
  Prepare(/*is_key=*/false);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu", static_cast<unsigned long long>(value));
  out_ += buffer;
  needs_comma_ = true;
}

void JsonWriter::Bool(bool value) {
  Prepare(/*is_key=*/false);
  out_ += value ? "true" : "false";
  needs_comma_ = true;
}

void JsonWriter::Null() {
  Prepare(/*is_key=*/false);
  out_ += "null";
  needs_comma_ = true;
}

void JsonWriter::Double(double value, int precision) {
  if (!std::isfinite(value)) {
    Null();  // JSON has no NaN/Inf literal; null keeps the document parseable.
    return;
  }
  Prepare(/*is_key=*/false);
  char buffer[64];
  if (precision >= 0) {
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  } else {
    // %.17g round-trips every double but prints 0.1 as 0.10000000000000001;
    // try the shortest precision that round-trips instead.
    for (int digits = 1; digits <= 17; ++digits) {
      std::snprintf(buffer, sizeof(buffer), "%.*g", digits, value);
      double parsed = 0.0;
      std::sscanf(buffer, "%lf", &parsed);
      if (parsed == value) {
        break;
      }
    }
  }
  out_ += buffer;
  needs_comma_ = true;
}

void JsonWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  String(value);
}

void JsonWriter::Field(std::string_view key, const char* value) {
  Key(key);
  String(value);
}

void JsonWriter::Field(std::string_view key, int64_t value) {
  Key(key);
  Int(value);
}

void JsonWriter::Field(std::string_view key, uint64_t value) {
  Key(key);
  Uint(value);
}

void JsonWriter::Field(std::string_view key, bool value) {
  Key(key);
  Bool(value);
}

void JsonWriter::FieldDouble(std::string_view key, double value, int precision) {
  Key(key);
  Double(value, precision);
}

bool JsonWriter::WriteToFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(out_.data(), 1, out_.size(), file);
  const bool newline_ok = std::fputc('\n', file) != EOF;
  const bool close_ok = std::fclose(file) == 0;
  return written == out_.size() && newline_ok && close_ok;
}

std::string JsonWriter::Escape(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

}  // namespace seastar
