// Minimal streaming JSON serializer shared by the metrics JSON exporter and
// the bench report writers (BENCH_train_epoch.json, BENCH_serve.json).
//
// One writer, one output convention: the emitters used to be hand-rolled
// fprintf chains in each bench, which drifted in escaping and formatting and
// could silently emit invalid JSON (a dataset name with a quote, a NaN
// steady-state average). JsonWriter owns comma placement, string escaping,
// and non-finite-double handling (NaN/Inf become null, which json.load
// accepts) so every machine-readable artifact the repo produces parses.
//
// Usage:
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("bench"); w.String("serve");
//   w.Key("scenarios"); w.BeginArray();
//   ...
//   w.EndArray();
//   w.EndObject();
//   w.WriteToFile(path);   // or w.str()
//
// The writer pretty-prints with two-space indentation: the artifacts are
// checked into git as baselines and read by humans in CI logs, so stable,
// diffable layout matters more than byte count.
#ifndef SRC_COMMON_JSON_H_
#define SRC_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace seastar {

class JsonWriter {
 public:
  JsonWriter() = default;

  // ---- Structure ----------------------------------------------------------
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view name);

  // ---- Values -------------------------------------------------------------
  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Bool(bool value);
  void Null();
  // `precision` >= 0 emits fixed decimals ("%.Nf"); negative uses shortest
  // round-trippable form. Non-finite values are emitted as null.
  void Double(double value, int precision = -1);

  // ---- Convenience: Key + value in one call -------------------------------
  void Field(std::string_view key, std::string_view value);
  void Field(std::string_view key, const char* value);
  void Field(std::string_view key, int64_t value);
  void Field(std::string_view key, uint64_t value);
  void Field(std::string_view key, int value) { Field(key, static_cast<int64_t>(value)); }
  void Field(std::string_view key, bool value);
  void FieldDouble(std::string_view key, double value, int precision = -1);

  // The serialized document so far. Valid JSON once every Begin* is closed.
  const std::string& str() const { return out_; }

  // Writes str() plus a trailing newline. False on I/O error.
  bool WriteToFile(const std::string& path) const;

  // Escapes `value` per JSON string rules (quotes not included).
  static std::string Escape(std::string_view value);

 private:
  enum class Scope { kObject, kArray };

  // Emits the pending comma/newline/indent before a value or key.
  void Prepare(bool is_key);

  std::string out_;
  std::vector<Scope> stack_;
  bool needs_comma_ = false;   // A sibling was already emitted at this level.
  bool value_pending_ = false; // Key() emitted, value must follow inline.
};

}  // namespace seastar

#endif  // SRC_COMMON_JSON_H_
