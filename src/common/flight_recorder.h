// Crash-grade flight recorder: a fixed-size, lock-free ring of recent
// structured events, dumped alongside a metrics snapshot when the process
// dies (SEASTAR_LOG(Fatal) / CHECK failure) or a fault-injection drill ends.
//
// The Profiler answers "where did the time go" for a run you chose to
// profile; the metrics registry answers "what are the totals"; the flight
// recorder answers the post-mortem question neither can: *what happened in
// the last few milliseconds before it died* — which request ids were in
// flight, which fault sites tripped, which way the breaker just moved, which
// unit the executor was in. Events are tiny fixed-size records written with
// two relaxed atomics and a seqlock-style publication, so recording is
// always on and costs nanoseconds; the ring keeps the newest kCapacity
// events and silently forgets older ones.
//
// Writers never block and never allocate. Readers (Dump) are best-effort: a
// slot being overwritten mid-read is detected via its sequence word and
// skipped — exactly the property a crash-path dumper needs.
#ifndef SRC_COMMON_FLIGHT_RECORDER_H_
#define SRC_COMMON_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace seastar {

// One recorded event, fixed-size so ring slots can be overwritten in place.
struct FlightEvent {
  uint64_t seq = 0;     // 1-based global order of the event.
  int64_t t_us = 0;     // Microseconds since process start (steady clock).
  char category[16] = {};  // "breaker", "fault", "serve", "recovery", ...
  char detail[88] = {};    // Truncated human-readable specifics.
  int64_t a = 0;        // Category-defined payload (request id, epoch, hit #).
  int64_t b = 0;
  // The ambient trace id (tracing.h) at record time; 0 = no active trace.
  // Crash correlation: a post-mortem dump names the exact requests that were
  // in flight, joinable against the exported trace JSON.
  uint64_t trace_id = 0;
};

class FlightRecorder {
 public:
  static constexpr int kCapacity = 512;  // Newest events kept.

  static FlightRecorder& Get();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Records one event. Lock-free, allocation-free; `category` and `detail`
  // are truncated to their fixed slot widths.
  void Record(std::string_view category, std::string_view detail, int64_t a = 0, int64_t b = 0);

  // The ring's live events, oldest first. Slots caught mid-overwrite are
  // dropped rather than returned torn.
  std::vector<FlightEvent> Snapshot() const;

  // Events ever recorded (including ones the ring has forgotten).
  uint64_t recorded() const { return next_seq_.load(std::memory_order_relaxed) - 1; }

  // Human-readable dump of Snapshot():
  //   [+12.345ms] breaker  trip after 3 failures (a=3)
  std::string Dump() const;
  bool DumpToFile(const std::string& path) const;

  // Installs a fatal-log hook (logging.h SetFatalHook) that writes the
  // flight recorder dump and a metrics text snapshot to stderr before the
  // process aborts on SEASTAR_LOG(Fatal)/CHECK failure. Idempotent.
  static void InstallCrashDump();

 private:
  FlightRecorder();

  struct Slot {
    // 0 = empty; odd = being written; even = published event with
    // seq = value / 2. Readers reject slots whose word changes mid-copy.
    std::atomic<uint64_t> word{0};
    FlightEvent event;
  };

  const int64_t start_ns_;  // Steady-clock anchor for t_us.
  std::atomic<uint64_t> next_seq_{1};
  Slot ring_[kCapacity];
};

}  // namespace seastar

#endif  // SRC_COMMON_FLIGHT_RECORDER_H_
