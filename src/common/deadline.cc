#include "src/common/deadline.h"

namespace seastar {

namespace deadline_internal {

thread_local const Deadline* tls_deadline = nullptr;

// Out of line so the inline fast path in the header stays a load + branch.
void ThrowDeadlineExceeded(const char* where) { throw DeadlineExceeded(where); }

}  // namespace deadline_internal

ScopedDeadline::ScopedDeadline(const Deadline* deadline)
    : previous_(deadline_internal::tls_deadline) {
  if (deadline != nullptr && deadline->armed()) {
    deadline_internal::tls_deadline = deadline;
  }
}

ScopedDeadline::~ScopedDeadline() { deadline_internal::tls_deadline = previous_; }

const Deadline* CurrentDeadline() { return deadline_internal::tls_deadline; }

}  // namespace seastar
