#include "src/common/status.h"

namespace seastar {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
  }
  return "?";
}

}  // namespace seastar
