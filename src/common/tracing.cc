#include "src/common/tracing.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/common/json.h"
#include "src/common/logging.h"

namespace seastar {
namespace trace {

namespace trace_internal {
thread_local RequestTrace* tls_trace = nullptr;
}  // namespace trace_internal

namespace {

// SplitMix64: the id generator and the sampler hash. Chosen because it is a
// bijection on 64-bit ints (distinct requests can never collide on trace id
// within a tracer) and fully deterministic in the seed.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void CopyTruncated(char* dst, size_t dst_size, std::string_view src) {
  const size_t n = std::min(src.size(), dst_size - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

struct FlagName {
  uint32_t flag;
  const char* name;
};

constexpr FlagName kFlagNames[] = {
    {kShed, "shed"},       {kExpired, "expired"}, {kDegraded, "degraded"},
    {kRetried, "retried"}, {kBreaker, "breaker"}, {kFailed, "failed"},
};

}  // namespace

std::string FlagNames(uint32_t flags) {
  if (flags == 0) {
    return "clean";
  }
  std::string out;
  for (const FlagName& entry : kFlagNames) {
    if ((flags & entry.flag) == 0) {
      continue;
    }
    if (!out.empty()) {
      out += '|';
    }
    out += entry.name;
  }
  return out;
}

std::string TraceIdHex(uint64_t trace_id) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(trace_id));
  return buffer;
}

// ---- RequestTrace -----------------------------------------------------------

void RequestTrace::Reset(uint64_t trace_id, bool sampled, uint32_t tenant_index,
                         uint64_t request_id, Clock::time_point epoch, int max_spans) {
  trace_id_ = trace_id;
  request_id_ = request_id;
  tenant_index_ = tenant_index;
  flags_ = 0;
  sampled_ = sampled;
  open_ = -1;
  max_spans_ = max_spans;
  dropped_spans_ = 0;
  total_ms_ = 0.0;
  std::strcpy(outcome_, "open");
  epoch_ = epoch;
  spans_.clear();  // Keeps capacity: recycled traces record without allocating.
}

int64_t RequestTrace::RelMicros(Clock::time_point tp) const {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp - epoch_).count();
}

int RequestTrace::Append(const char* name, int64_t start_us, int64_t dur_us) {
  if (static_cast<int>(spans_.size()) >= max_spans_) {
    ++dropped_spans_;
    return -1;
  }
  Span span;
  span.name = name;
  span.parent = open_;
  span.start_us = start_us;
  span.dur_us = dur_us;
  spans_.push_back(span);
  return static_cast<int>(spans_.size()) - 1;
}

int RequestTrace::BeginSpan(const char* name) {
  return BeginSpanAt(name, Clock::now());
}

int RequestTrace::BeginSpanAt(const char* name, Clock::time_point start) {
  const int token = Append(name, RelMicros(start), -1);
  if (token >= 0) {
    open_ = token;
  }
  return token;
}

void RequestTrace::EndSpan(int token) {
  if (token < 0 || token >= static_cast<int>(spans_.size())) {
    return;
  }
  Span& span = spans_[static_cast<size_t>(token)];
  if (span.dur_us < 0) {
    span.dur_us = std::max<int64_t>(0, RelMicros(Clock::now()) - span.start_us);
  }
  if (open_ == token) {
    open_ = span.parent;
  }
}

int RequestTrace::AddSpan(const char* name, Clock::time_point start, Clock::time_point end) {
  const int64_t start_us = RelMicros(start);
  return Append(name, start_us, std::max<int64_t>(0, RelMicros(end) - start_us));
}

void RequestTrace::SetDetail(int token, std::string_view detail) {
  if (token < 0 || token >= static_cast<int>(spans_.size())) {
    return;
  }
  CopyTruncated(spans_[static_cast<size_t>(token)].detail,
                sizeof(spans_[static_cast<size_t>(token)].detail), detail);
}

void RequestTrace::SetArg(int token, const char* a_name, int64_t a) {
  if (token < 0 || token >= static_cast<int>(spans_.size())) {
    return;
  }
  Span& span = spans_[static_cast<size_t>(token)];
  span.a_name = a_name;
  span.a = a;
}

void RequestTrace::SetArgs(int token, const char* a_name, int64_t a, const char* b_name,
                           int64_t b) {
  if (token < 0 || token >= static_cast<int>(spans_.size())) {
    return;
  }
  Span& span = spans_[static_cast<size_t>(token)];
  span.a_name = a_name;
  span.a = a;
  span.b_name = b_name;
  span.b = b;
}

// ---- Tracer -----------------------------------------------------------------

Tracer::Tracer(TracerConfig config) : config_(std::move(config)), epoch_(Clock::now()) {
  SEASTAR_CHECK_GT(config_.tail_keep, 0);
  SEASTAR_CHECK_GT(config_.sampled_keep, 0);
  SEASTAR_CHECK_GT(config_.anomaly_keep, 0);
  SEASTAR_CHECK_GT(config_.max_spans_per_trace, 0);
}

Tracer::~Tracer() = default;

bool Tracer::HeadSampled(uint64_t trace_id, double rate) {
  if (rate <= 0.0) {
    return false;
  }
  if (rate >= 1.0) {
    return true;
  }
  // Top 53 bits of a second mix -> uniform double in [0, 1). A pure function
  // of the id: replaying the same seed replays the same admitted subset.
  const double u =
      static_cast<double>(SplitMix64(trace_id ^ 0xda3e39cb94b95bdbull) >> 11) * 0x1.0p-53;
  return u < rate;
}

std::unique_ptr<RequestTrace> Tracer::Acquire() {
  if (!pool_.empty()) {
    std::unique_ptr<RequestTrace> trace = std::move(pool_.back());
    pool_.pop_back();
    return trace;
  }
  ++stats_.pool_misses;
  return std::unique_ptr<RequestTrace>(new RequestTrace());
}

void Tracer::Recycle(std::unique_ptr<RequestTrace> trace) { pool_.push_back(std::move(trace)); }

RequestTrace* Tracer::StartTrace(uint32_t tenant_index, uint64_t request_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t raw = SplitMix64(config_.seed ^ 0x6c62272e07bb0142ull) + next_trace_++;
  uint64_t trace_id = SplitMix64(raw);
  if (trace_id == 0) {
    trace_id = 1;  // 0 means "no trace" everywhere downstream.
  }
  const bool sampled = HeadSampled(trace_id, config_.head_sample_rate);
  std::unique_ptr<RequestTrace> trace = Acquire();
  trace->Reset(trace_id, sampled, tenant_index, request_id, epoch_, config_.max_spans_per_trace);
  ++stats_.started;
  if (sampled) {
    ++stats_.head_sampled;
  }
  // Ownership parks in the pool vector's slot conceptually; the raw pointer
  // travels with the request and comes back through FinishTrace.
  return trace.release();
}

void Tracer::OfferTail(std::unique_ptr<RequestTrace> trace) {
  const auto slower = [](const std::unique_ptr<RequestTrace>& x,
                         const std::unique_ptr<RequestTrace>& y) {
    return x->total_ms() > y->total_ms();  // Min-heap on total_ms.
  };
  if (static_cast<int>(tail_.size()) < config_.tail_keep) {
    tail_.push_back(std::move(trace));
    std::push_heap(tail_.begin(), tail_.end(), slower);
    return;
  }
  if (trace->total_ms() <= tail_.front()->total_ms()) {
    ++stats_.evicted;
    Recycle(std::move(trace));
    return;
  }
  std::pop_heap(tail_.begin(), tail_.end(), slower);
  ++stats_.evicted;
  Recycle(std::move(tail_.back()));
  tail_.back() = std::move(trace);
  std::push_heap(tail_.begin(), tail_.end(), slower);
}

void Tracer::FinishTrace(RequestTrace* trace, double total_ms, const char* outcome) {
  if (trace == nullptr) {
    return;
  }
  // Close anything still open (normally just the root "request" span).
  while (trace->open_ >= 0) {
    trace->EndSpan(trace->open_);
  }
  trace->total_ms_ = total_ms;
  CopyTruncated(trace->outcome_, sizeof(trace->outcome_), outcome);

  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<RequestTrace> owned(trace);
  ++stats_.finished;
  stats_.spans_dropped += trace->dropped_spans();
  if (trace->flags() != 0) {
    ++stats_.anomalies_observed;
    anomalies_.push_back(std::move(owned));
    if (static_cast<int>(anomalies_.size()) > config_.anomaly_keep) {
      // Keep the newest anomalies, but give the overflow a shot at the tail
      // heap first — a slow anomalous request should not vanish just because
      // a flood of cheap sheds aged it out of the ring.
      std::unique_ptr<RequestTrace> oldest = std::move(anomalies_.front());
      anomalies_.pop_front();
      OfferTail(std::move(oldest));
    }
    return;
  }
  if (trace->sampled()) {
    sampled_.push_back(std::move(owned));
    if (static_cast<int>(sampled_.size()) > config_.sampled_keep) {
      std::unique_ptr<RequestTrace> oldest = std::move(sampled_.front());
      sampled_.pop_front();
      OfferTail(std::move(oldest));
    }
    return;
  }
  OfferTail(std::move(owned));
}

void Tracer::SetTenantName(uint32_t index, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  tenant_names_[index] = std::move(name);
}

TracerStats Tracer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TracerStats stats = stats_;
  stats.retained_sampled = static_cast<int64_t>(sampled_.size());
  stats.retained_anomaly = static_cast<int64_t>(anomalies_.size());
  stats.retained_tail = static_cast<int64_t>(tail_.size());
  return stats;
}

void Tracer::ForEachRetained(const std::function<void(const RequestTrace&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<RequestTrace>& trace : anomalies_) {
    fn(*trace);
  }
  for (const std::unique_ptr<RequestTrace>& trace : sampled_) {
    fn(*trace);
  }
  for (const std::unique_ptr<RequestTrace>& trace : tail_) {
    fn(*trace);
  }
}

namespace {

void WriteTraceEvents(JsonWriter& writer, const RequestTrace& trace, const char* retained_by) {
  const int64_t tid = static_cast<int64_t>(trace.request_id());
  const int64_t pid = static_cast<int64_t>(trace.tenant_index());
  for (int i = 0; i < trace.num_spans(); ++i) {
    const Span& span = trace.span(i);
    writer.BeginObject();
    writer.Field("name", span.name);
    writer.Field("cat", "serve");
    writer.Field("ph", "X");
    writer.Field("pid", pid);
    writer.Field("tid", tid);
    writer.FieldDouble("ts", static_cast<double>(span.start_us));
    writer.FieldDouble("dur", static_cast<double>(std::max<int64_t>(0, span.dur_us)));
    writer.Key("args");
    writer.BeginObject();
    writer.Field("idx", static_cast<int64_t>(i));
    writer.Field("parent", static_cast<int64_t>(span.parent));
    writer.Field("trace_id", TraceIdHex(trace.trace_id()));
    if (span.detail[0] != '\0') {
      writer.Field("detail", span.detail);
    }
    if (span.a_name != nullptr) {
      writer.Field(span.a_name, span.a);
    }
    if (span.b_name != nullptr) {
      writer.Field(span.b_name, span.b);
    }
    if (span.parent < 0) {
      // Trace-level facts ride on the root span, where trace viewers (and
      // tools/trace_check.py) look for them.
      writer.Field("request_id", static_cast<int64_t>(trace.request_id()));
      writer.Field("flags", FlagNames(trace.flags()));
      writer.Field("sampled", trace.sampled());
      writer.Field("outcome", trace.outcome());
      writer.Field("retained_by", retained_by);
      writer.FieldDouble("total_ms", trace.total_ms());
    }
    writer.EndObject();
    writer.EndObject();
  }
}

}  // namespace

void Tracer::WriteChromeTrace(JsonWriter& writer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  writer.BeginObject();
  writer.Field("displayTimeUnit", "ms");
  writer.Key("traceEvents");
  writer.BeginArray();
  // Metadata: name each tenant's pid row.
  for (const auto& [index, name] : tenant_names_) {
    writer.BeginObject();
    writer.Field("name", "process_name");
    writer.Field("ph", "M");
    writer.Field("pid", static_cast<int64_t>(index));
    writer.Field("tid", static_cast<int64_t>(0));
    writer.Key("args");
    writer.BeginObject();
    writer.Field("name", "tenant:" + name);
    writer.EndObject();
    writer.EndObject();
  }
  for (const std::unique_ptr<RequestTrace>& trace : anomalies_) {
    WriteTraceEvents(writer, *trace, "anomaly");
  }
  for (const std::unique_ptr<RequestTrace>& trace : sampled_) {
    WriteTraceEvents(writer, *trace, "sampled");
  }
  for (const std::unique_ptr<RequestTrace>& trace : tail_) {
    WriteTraceEvents(writer, *trace, "tail");
  }
  writer.EndArray();
  writer.Key("traceStats");
  writer.BeginObject();
  writer.Field("started", stats_.started);
  writer.Field("finished", stats_.finished);
  writer.Field("head_sampled", stats_.head_sampled);
  writer.Field("anomalies_observed", stats_.anomalies_observed);
  writer.Field("retained_sampled", static_cast<int64_t>(sampled_.size()));
  writer.Field("retained_anomaly", static_cast<int64_t>(anomalies_.size()));
  writer.Field("retained_tail", static_cast<int64_t>(tail_.size()));
  writer.Field("evicted", stats_.evicted);
  writer.Field("spans_dropped", stats_.spans_dropped);
  writer.Field("pool_misses", stats_.pool_misses);
  writer.Field("tail_keep", static_cast<int64_t>(config_.tail_keep));
  writer.Field("anomaly_keep", static_cast<int64_t>(config_.anomaly_keep));
  writer.FieldDouble("head_sample_rate", config_.head_sample_rate);
  writer.EndObject();
  writer.EndObject();
}

std::string Tracer::ChromeTraceJson() const {
  JsonWriter writer;
  WriteChromeTrace(writer);
  return writer.str();
}

bool Tracer::WriteChromeTraceFile(const std::string& path) const {
  JsonWriter writer;
  WriteChromeTrace(writer);
  return writer.WriteToFile(path);
}

}  // namespace trace
}  // namespace seastar
