#include "src/core/nn.h"

#include <cmath>
#include <cstring>

#include "src/common/logging.h"
#include "src/parallel/thread_pool.h"
#include "src/tensor/ops.h"

namespace seastar {

Linear::Linear(int64_t in_features, int64_t out_features, bool with_bias, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = Var::Leaf(ops::XavierUniform(in_features, out_features, rng), /*requires_grad=*/true);
  if (with_bias) {
    bias_ = Var::Leaf(Tensor::Zeros({out_features}), /*requires_grad=*/true);
  }
}

Var Linear::Forward(const Var& x) const {
  SEASTAR_CHECK(weight_.defined()) << "Linear used before initialization";
  Var y = ag::Matmul(x, weight_);
  if (bias_.defined()) {
    y = ag::AddRowBroadcast(y, bias_);
  }
  return y;
}

std::vector<Var> Linear::Parameters() const {
  std::vector<Var> params{weight_};
  if (bias_.defined()) {
    params.push_back(bias_);
  }
  return params;
}

Embedding::Embedding(int64_t num_rows, int64_t dim, Rng& rng) {
  table_ = Var::Leaf(ops::RandomNormal({num_rows, dim}, 0.0f, 0.1f, rng), /*requires_grad=*/true);
}

Var StackedRelationMatmul(const Var& x, const std::vector<Var>& weights) {
  SEASTAR_CHECK(!weights.empty());
  const int64_t num_relations = static_cast<int64_t>(weights.size());
  const int64_t n = x.value().dim(0);
  const int64_t dim = weights[0].value().dim(1);

  // Forward: one [R, N, dim] stack computed relation by relation (the
  // underlying GEMMs are the same work a bmm kernel would do).
  Tensor stack({num_relations, n, dim});
  std::vector<Tensor> weight_values;
  weight_values.reserve(weights.size());
  for (int64_t r = 0; r < num_relations; ++r) {
    SEASTAR_CHECK_EQ(weights[static_cast<size_t>(r)].value().dim(1), dim);
    Tensor h_r = ops::Matmul(x.value(), weights[static_cast<size_t>(r)].value());
    std::memcpy(stack.data() + r * n * dim, h_r.data(),
                static_cast<size_t>(n * dim) * sizeof(float));
    weight_values.push_back(weights[static_cast<size_t>(r)].value());
  }

  std::vector<Var> inputs{x};
  inputs.insert(inputs.end(), weights.begin(), weights.end());
  Tensor x_value = x.value();
  auto backward = [x_value, weight_values, num_relations, n, dim](const Tensor& grad) {
    // grad: [R, N, dim]. dX = sum_r grad_r @ W_r^T; dW_r = X^T @ grad_r.
    std::vector<Tensor> grads;
    grads.reserve(static_cast<size_t>(num_relations) + 1);
    Tensor dx = Tensor::Zeros({n, x_value.dim(1)});
    std::vector<Tensor> dw;
    for (int64_t r = 0; r < num_relations; ++r) {
      Tensor grad_r({n, dim});
      std::memcpy(grad_r.data(), grad.data() + r * n * dim,
                  static_cast<size_t>(n * dim) * sizeof(float));
      dx = ops::Add(dx, ops::MatmulTransposeB(grad_r, weight_values[static_cast<size_t>(r)]));
      dw.push_back(ops::MatmulTransposeA(x_value, grad_r));
    }
    grads.push_back(std::move(dx));
    for (Tensor& t : dw) {
      grads.push_back(std::move(t));
    }
    return grads;
  };
  return ag::CustomOp(std::move(inputs), std::move(stack), std::move(backward),
                      "stacked_relation_matmul");
}

namespace {

// Optimizer updates are per-element independent, so chunking across the
// thread pool is bitwise identical to the serial loop. Small parameters
// (biases) stay on the calling thread via the grain threshold.
constexpr int64_t kOptimizerGrain = 16384;

}  // namespace

void Sgd::Step() {
  for (Var& param : parameters_) {
    const Tensor& grad = param.grad();
    if (!grad.defined()) {
      continue;
    }
    Tensor& value = param.mutable_value();
    float* pv = value.data();
    const float* pg = grad.data();
    const float lr = lr_;
    ParallelFor(
        value.numel(),
        [=](int64_t begin, int64_t end) {
          const float* __restrict__ g = pg;
          float* __restrict__ v = pv;
          for (int64_t i = begin; i < end; ++i) {
            v[i] -= lr * g[i];
          }
        },
        kOptimizerGrain);
  }
}

void Sgd::ZeroGrad() {
  for (Var& param : parameters_) {
    param.ClearGrad();
  }
}

Adam::Adam(std::vector<Var> parameters, float lr, float beta1, float beta2, float eps)
    : parameters_(std::move(parameters)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(parameters_.size());
  v_.reserve(parameters_.size());
  for (const Var& param : parameters_) {
    m_.push_back(Tensor::Zeros(param.value().shape()));
    v_.push_back(Tensor::Zeros(param.value().shape()));
  }
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t p = 0; p < parameters_.size(); ++p) {
    const Tensor& grad = parameters_[p].grad();
    if (!grad.defined()) {
      continue;
    }
    Tensor& value = parameters_[p].mutable_value();
    float* pv = value.data();
    const float* pg = grad.data();
    float* pm = m_[p].data();
    float* pvv = v_[p].data();
    const float lr = lr_;
    const float beta1 = beta1_;
    const float beta2 = beta2_;
    const float eps = eps_;
    ParallelFor(
        value.numel(),
        [=](int64_t begin, int64_t end) {
          const float* __restrict__ g = pg;
          float* __restrict__ v = pv;
          float* __restrict__ m1 = pm;
          float* __restrict__ m2 = pvv;
          for (int64_t i = begin; i < end; ++i) {
            m1[i] = beta1 * m1[i] + (1.0f - beta1) * g[i];
            m2[i] = beta2 * m2[i] + (1.0f - beta2) * g[i] * g[i];
            const float m_hat = m1[i] / bias1;
            const float v_hat = m2[i] / bias2;
            v[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
          }
        },
        kOptimizerGrain);
  }
}

void Adam::RestoreState(const std::vector<Tensor>& m, const std::vector<Tensor>& v, int64_t t) {
  SEASTAR_CHECK_EQ(m.size(), m_.size());
  SEASTAR_CHECK_EQ(v.size(), v_.size());
  SEASTAR_CHECK_GE(t, 0);
  for (size_t p = 0; p < m_.size(); ++p) {
    SEASTAR_CHECK_EQ(m[p].numel(), m_[p].numel());
    SEASTAR_CHECK_EQ(v[p].numel(), v_[p].numel());
    m_[p] = m[p].Clone();
    v_[p] = v[p].Clone();
  }
  t_ = t;
}

void Adam::ZeroGrad() {
  for (Var& param : parameters_) {
    param.ClearGrad();
  }
}

float Accuracy(const Tensor& logits, const std::vector<int32_t>& labels,
               const std::vector<int32_t>& rows) {
  const std::vector<int32_t> predictions = ops::RowArgmax(logits);
  int64_t correct = 0;
  if (rows.empty()) {
    for (size_t i = 0; i < predictions.size(); ++i) {
      correct += predictions[i] == labels[i] ? 1 : 0;
    }
    return static_cast<float>(correct) / static_cast<float>(predictions.size());
  }
  for (int32_t row : rows) {
    correct += predictions[static_cast<size_t>(row)] == labels[static_cast<size_t>(row)] ? 1 : 0;
  }
  return static_cast<float>(correct) / static_cast<float>(rows.size());
}

}  // namespace seastar
