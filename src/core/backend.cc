#include "src/core/backend.h"

#include "src/common/logging.h"

namespace seastar {

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kSeastar:
      return "Seastar";
    case Backend::kSeastarNoFusion:
      return "Seastar-nofuse";
    case Backend::kDglLike:
      return "DGL";
    case Backend::kPygLike:
      return "PyG";
  }
  return "?";
}

std::optional<Backend> BackendFromString(const std::string& name) {
  if (name == "seastar") {
    return Backend::kSeastar;
  }
  if (name == "seastar-nofuse" || name == "nofuse") {
    return Backend::kSeastarNoFusion;
  }
  if (name == "dgl") {
    return Backend::kDglLike;
  }
  if (name == "pyg") {
    return Backend::kPygLike;
  }
  return std::nullopt;
}

const char* BackendChoices() { return "seastar|seastar-nofuse|dgl|pyg"; }

RunResult RunWithBackend(const BackendConfig& config, const GirGraph& gir, const Graph& graph,
                         const FeatureMap& features, const RunContext& ctx) {
  switch (config.backend) {
    case Backend::kSeastar: {
      SeastarExecutor executor(config.seastar_options);
      return executor.Run(gir, graph, features, ctx);
    }
    case Backend::kSeastarNoFusion: {
      SeastarExecutorOptions options = config.seastar_options;
      options.enable_fusion = false;
      SeastarExecutor executor(options);
      return executor.Run(gir, graph, features, ctx);
    }
    case Backend::kDglLike: {
      BaselineExecutorOptions options = config.baseline_options;
      options.flavor = BaselineFlavor::kDglLike;
      BaselineExecutor executor(options);
      return executor.Run(gir, graph, features, ctx);
    }
    case Backend::kPygLike: {
      BaselineExecutorOptions options = config.baseline_options;
      options.flavor = BaselineFlavor::kPygLike;
      BaselineExecutor executor(options);
      return executor.Run(gir, graph, features, ctx);
    }
  }
  SEASTAR_LOG(Fatal) << "unknown backend";
  return RunResult{};
}

bool BackendSavesIntermediates(Backend backend) {
  return backend == Backend::kDglLike || backend == Backend::kPygLike;
}

}  // namespace seastar
