// VertexProgram: the compiled artifact behind the paper's @Seastar.compile
// decorator (§4-§5), bridged into the tensor autograd tape.
//
// Compile() takes a traced GirBuilder, runs the graph-level optimization
// passes, differentiates the (single) output into a backward GIR, and
// optimizes that too. Run() executes the forward program on a chosen backend
// and registers a custom autograd function whose backward executes the
// backward GIR — for the Seastar backend by *recomputing* intra-unit edge
// values inside fused kernels (nothing saved), for the baseline backends by
// seeding the recompute nodes from the tensors their forward pass
// materialized (autograd saved-tensors, kept alive until backward, which is
// what the peak-memory experiments observe).
//
// Typical use (GAT's attention stage):
//
//   GirBuilder b;
//   Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
//   Value a = e / AggSum(e);
//   b.MarkOutput(AggSum(a * b.Src("h", hidden)), "out");
//   VertexProgram program = VertexProgram::Compile(std::move(b));
//   ...
//   ExecutionSession session = MakeSession(executor, graph);
//   Var out = program.Run({.vertex = {{"eu", eu}, {"ev", ev}, {"h", f}}}, session);
#ifndef SRC_CORE_PROGRAM_H_
#define SRC_CORE_PROGRAM_H_

#include <map>
#include <memory>
#include <string>

#include "src/core/backend.h"
#include "src/exec/executor.h"
#include "src/gir/autodiff.h"
#include "src/gir/builder.h"
#include "src/tensor/autograd.h"

namespace seastar {

class VertexProgram {
 public:
  struct Inputs {
    std::map<std::string, Var> vertex;        // [N, w]
    std::map<std::string, Var> edge;          // [num_edges, w]
    std::map<std::string, Var> typed_vertex;  // [num_types, N, w]
  };

  // Compiles the builder's program (which must have exactly one output):
  // standard passes + GIR autodiff + backward passes.
  static VertexProgram Compile(GirBuilder&& builder);

  // Executes forward through the session's executor and hooks the backward
  // GIR into the autograd tape. The session's graph (and the view's prepared
  // state) must outlive the tape — i.e. the training step; the backward
  // closure keeps the executor itself alive through its shared_ptr.
  //
  // Every feature the traced program declared must be present in `inputs`
  // with the declared shape ([N, w] vertex, [E, w] edge, [T, N, w] typed);
  // missing or mis-shaped inputs fail with an error naming the input.
  //
  // The session's profiler, when set, records forward/backward program spans
  // plus the executors' per-unit / per-op spans; seed and retain are managed
  // internally by the autograd bridge.
  Var Run(const Inputs& inputs, const ExecutionSession& session) const;

  // Deprecated compatibility shim: builds a throwaway executor from `config`
  // and a single-use session per call (re-partitioning per call for any
  // strategy with prepared state). Migrate to Run(inputs, session).
  [[deprecated("build an ExecutionSession (MakeSession) and call Run(inputs, session)")]]
  Var Run(const Graph& graph, const Inputs& inputs, const BackendConfig& config,
          const RunContext& ctx = {}) const;

  const GirGraph& forward() const;
  const BackwardGir& backward() const;

  // Human-readable dump of both GIRs and the Seastar execution plans.
  std::string DebugString() const;

 private:
  struct Data;
  std::shared_ptr<const Data> data_;
};

}  // namespace seastar

#endif  // SRC_CORE_PROGRAM_H_
