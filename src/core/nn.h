// Neural-network building blocks on top of the autograd tape: parameter
// containers, layers used by the four paper models, optimizers, and metrics.
#ifndef SRC_CORE_NN_H_
#define SRC_CORE_NN_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/autograd.h"
#include "src/tensor/tensor.h"

namespace seastar {

// Fully connected layer: y = x @ W (+ b).
class Linear {
 public:
  Linear() = default;
  Linear(int64_t in_features, int64_t out_features, bool with_bias, Rng& rng);

  Var Forward(const Var& x) const;

  std::vector<Var> Parameters() const;
  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_ = 0;
  int64_t out_features_ = 0;
  Var weight_;  // [in, out]
  Var bias_;    // [out] (undefined when bias disabled)
};

// Learned per-vertex embedding table (the input layer for featureless
// knowledge graphs in R-GCN).
class Embedding {
 public:
  Embedding() = default;
  Embedding(int64_t num_rows, int64_t dim, Rng& rng);

  // The whole table as a Var (full-graph training uses every row).
  const Var& Full() const { return table_; }
  std::vector<Var> Parameters() const { return {table_}; }

 private:
  Var table_;
};

// Computes the stack H_r = x @ weights[r] for all relations as one
// [num_relations, N, dim] Var — the batched-matmul building block of R-GCN
// (both the Seastar path and the paper's DGL-bmm / PyG-bmm baselines).
Var StackedRelationMatmul(const Var& x, const std::vector<Var>& weights);

// ---- Optimizers ----------------------------------------------------------------------------------

class Sgd {
 public:
  Sgd(std::vector<Var> parameters, float lr) : parameters_(std::move(parameters)), lr_(lr) {}

  void Step();
  void ZeroGrad();

  // Recovery policy hook: learning-rate backoff after a rollback.
  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  std::vector<Var> parameters_;
  float lr_;
};

class Adam {
 public:
  Adam(std::vector<Var> parameters, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);

  void Step();
  void ZeroGrad();

  // Recovery policy hook: learning-rate backoff after a rollback.
  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

  // Checkpointable optimizer state. Restoring the moments and step counter
  // (with matching parameter values) makes a resumed run continue exactly
  // as the uninterrupted one would have.
  const std::vector<Tensor>& moments_m() const { return m_; }
  const std::vector<Tensor>& moments_v() const { return v_; }
  int64_t step_count() const { return t_; }
  void RestoreState(const std::vector<Tensor>& m, const std::vector<Tensor>& v, int64_t t);

 private:
  std::vector<Var> parameters_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
};

// ---- Metrics -------------------------------------------------------------------------------------

// Fraction of rows in `rows` (all rows when empty) whose argmax matches the
// label.
float Accuracy(const Tensor& logits, const std::vector<int32_t>& labels,
               const std::vector<int32_t>& rows);

}  // namespace seastar

#endif  // SRC_CORE_NN_H_
