#include "src/core/minibatch.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/common/profiler.h"
#include "src/common/stopwatch.h"
#include "src/core/nn.h"
#include "src/core/program.h"
#include "src/tensor/ops.h"

namespace seastar {

MiniBatchResult TrainMiniBatchGcn(const Dataset& data, const MiniBatchConfig& config,
                                  std::shared_ptr<const Executor> executor) {
  SEASTAR_CHECK(data.features.defined());
  SEASTAR_CHECK(executor != nullptr) << "TrainMiniBatchGcn: null executor";
  SEASTAR_CHECK_EQ(static_cast<int>(config.fanouts.size()), config.num_layers)
      << "one fanout per layer";
  Rng rng(config.seed);

  // Layers and their aggregation programs (compiled once; widths are fixed).
  std::vector<Linear> layers;
  std::vector<Var> biases;
  std::vector<VertexProgram> programs;
  int64_t in_dim = data.features.dim(1);
  for (int layer = 0; layer < config.num_layers; ++layer) {
    const bool last = layer == config.num_layers - 1;
    const int64_t out_dim = last ? data.spec.num_classes : config.hidden_dim;
    layers.emplace_back(in_dim, out_dim, /*with_bias=*/false, rng);
    biases.push_back(Var::Leaf(Tensor::Zeros({out_dim}), /*requires_grad=*/true));
    GirBuilder b;
    b.MarkOutput(AggSum(b.Src("h", static_cast<int32_t>(out_dim)) * b.Src("norm", 1)), "out");
    programs.push_back(VertexProgram::Compile(std::move(b)));
    in_dim = out_dim;
  }

  std::vector<Var> parameters;
  for (const Linear& layer : layers) {
    for (const Var& p : layer.Parameters()) {
      parameters.push_back(p);
    }
  }
  for (const Var& b : biases) {
    parameters.push_back(b);
  }
  Adam optimizer(parameters, config.learning_rate);

  MiniBatchResult result;
  double total_ms = 0.0;
  double accuracy_acc = 0.0;
  int accuracy_batches = 0;

  Profiler* profiler =
      config.profiler != nullptr && config.profiler->enabled() ? config.profiler : nullptr;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const bool last_epoch = epoch + 1 == config.epochs;
    for (const std::vector<int32_t>& seeds :
         MakeSeedBatches(data.spec.num_vertices, config.batch_size, rng)) {
      Stopwatch watch;
      ProfileScope batch_span(
          profiler, "batch " + std::to_string(result.batches_run), "minibatch");
      SampledSubgraph block;
      {
        ProfileScope sample_span(profiler, "sample", "minibatch");
        block = SampleNeighborhood(data.graph, seeds, config.fanouts, rng);
      }

      // Block-local features, labels, and 1/sqrt(deg) norms.
      Var h = Var::Leaf(GatherLocalFeatures(block, data.features), /*requires_grad=*/false);
      std::vector<int32_t> labels = GatherLocalLabels(block, data.labels);
      Tensor norm({block.graph.num_vertices(), 1});
      for (int64_t v = 0; v < block.graph.num_vertices(); ++v) {
        const int64_t deg = block.graph.InDegree(static_cast<int32_t>(v));
        norm.at(v, 0) = 1.0f / std::sqrt(static_cast<float>(std::max<int64_t>(1, deg)));
      }
      Var norm_var = Var::Leaf(std::move(norm), /*requires_grad=*/false);

      // The block graph is batch-local, so the session is too; it lives
      // until Backward below finishes with the block.
      ExecutionSession block_session = MakeSession(executor, block.graph);
      block_session.set_profiler(profiler);

      for (size_t layer = 0; layer < layers.size(); ++layer) {
        Var transformed = layers[layer].Forward(h);
        Var aggregated = programs[layer].Run(
            {.vertex = {{"h", transformed}, {"norm", norm_var}}}, block_session);
        h = ag::AddRowBroadcast(aggregated, biases[layer]);
        if (layer + 1 < layers.size()) {
          h = ag::Relu(h);
        }
      }

      // Loss restricted to the seed vertices (local ids [0, num_seeds)).
      std::vector<int32_t> seed_rows(static_cast<size_t>(block.num_seeds));
      for (int64_t i = 0; i < block.num_seeds; ++i) {
        seed_rows[static_cast<size_t>(i)] = static_cast<int32_t>(i);
      }
      Var loss = ag::NllLoss(ag::LogSoftmax(h), labels, seed_rows);
      Backward(loss, Tensor::Ones({1}));
      optimizer.Step();
      optimizer.ZeroGrad();

      total_ms += watch.ElapsedMillis();
      ++result.batches_run;
      result.final_loss = loss.value().at(0);
      if (last_epoch) {
        accuracy_acc += Accuracy(h.value(), labels, seed_rows);
        ++accuracy_batches;
      }
    }
  }
  result.avg_batch_ms = result.batches_run > 0 ? total_ms / result.batches_run : 0.0;
  result.seed_accuracy =
      accuracy_batches > 0 ? static_cast<float>(accuracy_acc / accuracy_batches) : 0.0f;
  return result;
}

}  // namespace seastar
