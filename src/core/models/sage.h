// GraphSAGE (Hamilton et al. 2017), mean- and pool-aggregator variants.
// Not evaluated in the paper, but §4 claims the vertex-centric API covers
// "most of the homogeneous and heterogeneous GNN models supported by PyG and
// DGL" — the extended model zoo (SAGE, GIN, SGC) substantiates that claim.
//
//   mean:  h_v' = W_self h_v + W_nbr * mean_{u in N(v)} h_u
//   pool:  h_v' = W_self h_v + W_nbr * max_{u in N(v)} relu(W_pool h_u + b)
#ifndef SRC_CORE_MODELS_SAGE_H_
#define SRC_CORE_MODELS_SAGE_H_

#include <vector>

#include "src/core/models/model.h"
#include "src/core/nn.h"
#include "src/core/program.h"

namespace seastar {

enum class SageAggregator { kMean, kPool };

struct SageConfig {
  int64_t hidden_dim = 16;
  int num_layers = 2;
  SageAggregator aggregator = SageAggregator::kMean;
  float dropout = 0.5f;
  uint64_t seed = 0x5a6e;
};

class Sage : public GnnModel {
 public:
  Sage(const Dataset& data, const SageConfig& config, std::shared_ptr<const Executor> executor);

  Var Forward(bool training) override;
  std::vector<Var> Parameters() const override;
  const char* name() const override { return "GraphSAGE"; }
  Rng* MutableRng() override { return &rng_; }

 private:
  struct Layer {
    Linear self_transform;
    Linear neighbor_transform;
    Linear pool_transform;   // kPool only.
    VertexProgram program;   // Mean or max aggregation at the layer width.
  };

  const Dataset& data_;
  SageConfig config_;
  Rng rng_;
  std::vector<Layer> layers_;
  Var features_;
};

}  // namespace seastar

#endif  // SRC_CORE_MODELS_SAGE_H_
