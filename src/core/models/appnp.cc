#include "src/core/models/appnp.h"

#include "src/common/logging.h"

namespace seastar {

Appnp::Appnp(const Dataset& data, const AppnpConfig& config,
             std::shared_ptr<const Executor> executor)
    : data_(data), config_(config), rng_(config.seed) {
  SEASTAR_CHECK(data.features.defined()) << "APPNP needs vertex features";
  session_ = MakeSession(std::move(executor), data_.graph);
  features_ = Var::Leaf(data_.features, /*requires_grad=*/false);
  norm_ = Var::Leaf(data_.gcn_norm, /*requires_grad=*/false);

  mlp_in_ = Linear(data_.features.dim(1), config_.hidden_dim, /*with_bias=*/true, rng_);
  mlp_out_ = Linear(config_.hidden_dim, data_.spec.num_classes, /*with_bias=*/true, rng_);

  // One propagation step, vertex-centric:
  //   (1 - alpha) * v.norm * sum([u.h * u.norm for u in v.innbs]) + alpha * v.h0
  GirBuilder b;
  const int32_t width = static_cast<int32_t>(data_.spec.num_classes);
  Value propagated = AggSum(b.Src("h", width) * b.Src("norm", 1)) * b.Dst("norm", 1);
  Value out = propagated * (1.0f - config_.alpha) + b.Dst("h0", width) * config_.alpha;
  b.MarkOutput(out, "out");
  propagate_ = VertexProgram::Compile(std::move(b));
}

Var Appnp::Forward(bool training) {
  BindProfiler();
  Var h = ag::Dropout(features_, config_.dropout, rng_, training);
  h = ag::Relu(mlp_in_.Forward(h));
  h = ag::Dropout(h, config_.dropout, rng_, training);
  Var h0 = mlp_out_.Forward(h);

  Var h_k = h0;
  for (int hop = 0; hop < config_.num_hops; ++hop) {
    h_k = propagate_.Run({.vertex = {{"h", h_k}, {"norm", norm_}, {"h0", h0}}}, session());
  }
  return h_k;
}

std::vector<Var> Appnp::Parameters() const {
  std::vector<Var> params;
  for (const Var& p : mlp_in_.Parameters()) {
    params.push_back(p);
  }
  for (const Var& p : mlp_out_.Parameters()) {
    params.push_back(p);
  }
  return params;
}

}  // namespace seastar
