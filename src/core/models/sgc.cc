#include "src/core/models/sgc.h"

#include "src/common/logging.h"

namespace seastar {

Sgc::Sgc(const Dataset& data, const SgcConfig& config, std::shared_ptr<const Executor> executor)
    : data_(data) {
  SEASTAR_CHECK(data.features.defined()) << "SGC needs vertex features";
  session_ = MakeSession(std::move(executor), data_.graph);
  Rng rng(config.seed);

  // Preprocessing: K rounds of normalized propagation, run once through the
  // chosen backend (no tape — the result is a constant).
  GirBuilder b;
  const int32_t width = static_cast<int32_t>(data.features.dim(1));
  b.MarkOutput(AggSum(b.Src("h", width) * b.Src("norm", 1)) * b.Dst("norm", 1), "out");
  VertexProgram propagate = VertexProgram::Compile(std::move(b));

  propagated_ = data.features;
  for (int hop = 0; hop < config.num_hops; ++hop) {
    FeatureMap features;
    features.vertex["h"] = propagated_;
    features.vertex["norm"] = data.gcn_norm;
    RunResult result = session_.Execute(propagate.forward(), features);
    propagated_ = result.outputs.at("out");
  }
  propagated_var_ = Var::Leaf(propagated_, /*requires_grad=*/false);
  classifier_ = Linear(data.features.dim(1), data.spec.num_classes, /*with_bias=*/true, rng);
}

Var Sgc::Forward(bool /*training*/) { return classifier_.Forward(propagated_var_); }

std::vector<Var> Sgc::Parameters() const { return classifier_.Parameters(); }

}  // namespace seastar
