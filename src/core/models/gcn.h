// Graph Convolutional Network (Kipf & Welling 2017; paper Fig. 1):
//
//   h_v^{l+1} = sigma(b^l + sum_{u in N(v)} (1 / norm) h_u^l W^l)
//
// The per-vertex linear transform runs on the dense tensor backend; the
// normalized neighbor aggregation is a one-line vertex program (the paper's
// headline usability example):
//
//   return sum([u.h * u.norm for u in v.innbs])
#ifndef SRC_CORE_MODELS_GCN_H_
#define SRC_CORE_MODELS_GCN_H_

#include <vector>

#include "src/core/models/model.h"
#include "src/core/nn.h"
#include "src/core/program.h"

namespace seastar {

struct GcnConfig {
  int64_t hidden_dim = 16;
  int num_layers = 2;
  float dropout = 0.5f;
  uint64_t seed = 0x6c0;
};

class Gcn : public GnnModel {
 public:
  Gcn(const Dataset& data, const GcnConfig& config, std::shared_ptr<const Executor> executor);

  Var Forward(bool training) override;
  std::vector<Var> Parameters() const override;
  const char* name() const override { return "GCN"; }
  Rng* MutableRng() override { return &rng_; }

 private:
  const Dataset& data_;
  GcnConfig config_;
  Rng rng_;
  std::vector<Linear> layers_;
  std::vector<Var> biases_;
  // One compiled aggregation program per layer width.
  std::vector<VertexProgram> programs_;
  Var features_;
  Var norm_;
};

}  // namespace seastar

#endif  // SRC_CORE_MODELS_GCN_H_
