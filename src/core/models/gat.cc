#include "src/core/models/gat.h"

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace seastar {

Gat::Gat(const Dataset& data, const GatConfig& config, std::shared_ptr<const Executor> executor)
    : data_(data), config_(config), rng_(config.seed) {
  SEASTAR_CHECK_GE(config.num_layers, 1);
  SEASTAR_CHECK(data.features.defined()) << "GAT needs vertex features";
  session_ = MakeSession(std::move(executor), data_.graph);
  features_ = Var::Leaf(data_.features, /*requires_grad=*/false);

  int64_t in_dim = data_.features.dim(1);
  for (int layer_index = 0; layer_index < config_.num_layers; ++layer_index) {
    const bool last = layer_index == config_.num_layers - 1;
    const int heads = last ? 1 : config_.num_heads;
    const int64_t out_dim = last ? data_.spec.num_classes : config_.hidden_dim;

    Layer layer;
    for (int h = 0; h < heads; ++h) {
      Head head;
      head.projection = Linear(in_dim, out_dim, /*with_bias=*/false, rng_);
      head.attn_left = Var::Leaf(ops::XavierUniform(out_dim, 1, rng_), /*requires_grad=*/true);
      head.attn_right = Var::Leaf(ops::XavierUniform(out_dim, 1, rng_), /*requires_grad=*/true);
      layer.heads.push_back(std::move(head));
    }

    // The vertex-centric attention kernel (paper Fig. 3):
    //   e = [exp(LeakyRelu(u.eu + v.ev)) for u in v.innbs]
    //   a = [c / sum(e) for c in e]
    //   return sum(a[i] * u.h)
    GirBuilder b;
    Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), config_.negative_slope));
    Value a = e / AggSum(e);
    b.MarkOutput(AggSum(a * b.Src("h", static_cast<int32_t>(out_dim))), "out");
    layer.program = VertexProgram::Compile(std::move(b));

    layers_.push_back(std::move(layer));
    in_dim = out_dim * heads;
  }
}

Var Gat::RunHead(const Layer& layer, const Head& head, const Var& h) const {
  Var f = head.projection.Forward(h);          // [N, dim]
  Var eu = ag::Matmul(f, head.attn_left);      // [N, 1]
  Var ev = ag::Matmul(f, head.attn_right);     // [N, 1]
  return layer.program.Run({.vertex = {{"eu", eu}, {"ev", ev}, {"h", f}}}, session());
}

Var Gat::Forward(bool training) {
  BindProfiler();
  Var h = features_;
  for (size_t layer_index = 0; layer_index < layers_.size(); ++layer_index) {
    const Layer& layer = layers_[layer_index];
    const bool last = layer_index + 1 == layers_.size();
    h = ag::Dropout(h, config_.feat_dropout, rng_, training);
    std::vector<Var> head_outputs;
    head_outputs.reserve(layer.heads.size());
    for (const Head& head : layer.heads) {
      head_outputs.push_back(RunHead(layer, head, h));
    }
    Var combined =
        head_outputs.size() == 1 ? head_outputs[0] : ag::ConcatCols(head_outputs);
    h = last ? combined : ag::Elu(combined);
  }
  return h;
}

std::vector<Var> Gat::Parameters() const {
  std::vector<Var> params;
  for (const Layer& layer : layers_) {
    for (const Head& head : layer.heads) {
      for (const Var& p : head.projection.Parameters()) {
        params.push_back(p);
      }
      params.push_back(head.attn_left);
      params.push_back(head.attn_right);
    }
  }
  return params;
}

}  // namespace seastar
