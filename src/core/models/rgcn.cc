#include "src/core/models/rgcn.h"

#include "src/common/logging.h"
#include "src/core/executor_factory.h"
#include "src/tensor/ops.h"

namespace seastar {

const char* RgcnModeName(RgcnMode mode) {
  switch (mode) {
    case RgcnMode::kSeastar:
      return "Seastar";
    case RgcnMode::kDglBmm:
      return "DGL-bmm";
    case RgcnMode::kPygBmm:
      return "PyG-bmm";
    case RgcnMode::kDglSequential:
      return "DGL";
    case RgcnMode::kPygSequential:
      return "PyG";
  }
  return "?";
}

namespace {

bool IsSequential(RgcnMode mode) {
  return mode == RgcnMode::kDglSequential || mode == RgcnMode::kPygSequential;
}

// Each Table-3 mode maps onto one of the three whole-graph executors; the
// mode only additionally decides batched-vs-sequential kernel structure.
std::shared_ptr<const Executor> ExecutorFor(RgcnMode mode) {
  const char* spec = "seastar";
  switch (mode) {
    case RgcnMode::kSeastar:
      spec = "seastar";
      break;
    case RgcnMode::kDglBmm:
    case RgcnMode::kDglSequential:
      spec = "dgl";
      break;
    case RgcnMode::kPygBmm:
    case RgcnMode::kPygSequential:
      spec = "pyg";
      break;
  }
  StatusOr<std::unique_ptr<Executor>> executor = ExecutorFactory::Create(spec);
  SEASTAR_CHECK(executor.has_value()) << executor.status().ToString();
  return std::move(*executor);
}

}  // namespace

Rgcn::Rgcn(const Dataset& data, const RgcnConfig& config)
    : data_(data), config_(config), rng_(config.seed) {
  const Graph& graph = data_.graph;
  const int32_t num_relations = graph.num_edge_types();
  SEASTAR_CHECK_GT(num_relations, 1) << "R-GCN expects a heterogeneous dataset";

  embedding_ = Embedding(graph.num_vertices(), config_.hidden_dim, rng_);

  // Per-edge normalization 1 / c_{dst(e), type(e)}.
  {
    std::vector<int32_t> type_count(
        static_cast<size_t>(graph.num_vertices()) * static_cast<size_t>(num_relations), 0);
    for (int64_t e = 0; e < graph.num_edges(); ++e) {
      const int64_t key = static_cast<int64_t>(graph.edge_dst()[static_cast<size_t>(e)]) *
                              num_relations +
                          graph.edge_type()[static_cast<size_t>(e)];
      ++type_count[static_cast<size_t>(key)];
    }
    Tensor norm({graph.num_edges(), 1});
    for (int64_t e = 0; e < graph.num_edges(); ++e) {
      const int64_t key = static_cast<int64_t>(graph.edge_dst()[static_cast<size_t>(e)]) *
                              num_relations +
                          graph.edge_type()[static_cast<size_t>(e)];
      norm.at(e, 0) = 1.0f / static_cast<float>(type_count[static_cast<size_t>(key)]);
    }
    edge_norm_ = Var::Leaf(std::move(norm), /*requires_grad=*/false);
  }

  // Sequential modes need one homogeneous subgraph per relation.
  if (IsSequential(config_.mode)) {
    relation_subgraphs_.reserve(static_cast<size_t>(num_relations));
    relation_edge_norms_.reserve(static_cast<size_t>(num_relations));
    for (int32_t r = 0; r < num_relations; ++r) {
      std::vector<int32_t> src;
      std::vector<int32_t> dst;
      std::vector<float> norms;
      for (int64_t e = 0; e < graph.num_edges(); ++e) {
        if (graph.edge_type()[static_cast<size_t>(e)] != r) {
          continue;
        }
        src.push_back(graph.edge_src()[static_cast<size_t>(e)]);
        dst.push_back(graph.edge_dst()[static_cast<size_t>(e)]);
        norms.push_back(edge_norm_.value().at(e, 0));
      }
      const int64_t num_sub_edges = static_cast<int64_t>(src.size());
      relation_subgraphs_.push_back(
          Graph::FromCoo(graph.num_vertices(), std::move(src), std::move(dst)));
      relation_edge_norms_.push_back(
          Var::Leaf(Tensor({num_sub_edges, 1}, std::move(norms)), /*requires_grad=*/false));
    }
  }

  // One executor shared by every session; subgraph sessions are created only
  // after relation_subgraphs_ stops growing (sessions hold Graph pointers).
  std::shared_ptr<const Executor> executor = ExecutorFor(config_.mode);
  for (const Graph& subgraph : relation_subgraphs_) {
    relation_sessions_.push_back(MakeSession(executor, subgraph));
  }
  session_ = MakeSession(std::move(executor), data_.graph);

  int64_t in_dim = config_.hidden_dim;
  for (int layer_index = 0; layer_index < config_.num_layers; ++layer_index) {
    const bool last = layer_index == config_.num_layers - 1;
    const int64_t out_dim = last ? data_.spec.num_classes : config_.hidden_dim;

    Layer layer;
    for (int32_t r = 0; r < num_relations; ++r) {
      layer.relation_weights.push_back(
          Var::Leaf(ops::XavierUniform(in_dim, out_dim, rng_), /*requires_grad=*/true));
    }
    layer.self_weight =
        Var::Leaf(ops::XavierUniform(in_dim, out_dim, rng_), /*requires_grad=*/true);
    layer.bias = Var::Leaf(Tensor::Zeros({out_dim}), /*requires_grad=*/true);

    {
      // Batched modes: one typed kernel over all relations.
      //   sum([wh[type(e), u] * e.norm for (u, e) in v.inedges])
      GirBuilder b;
      b.MarkOutput(
          AggSum(b.TypedSrc("wh", static_cast<int32_t>(out_dim)) * b.Edge("norm", 1)), "out");
      layer.typed_program = VertexProgram::Compile(std::move(b));
    }
    {
      // Sequential modes: a homogeneous kernel run once per relation.
      GirBuilder b;
      b.MarkOutput(AggSum(b.Src("h", static_cast<int32_t>(out_dim)) * b.Edge("norm", 1)),
                   "out");
      layer.per_relation_program = VertexProgram::Compile(std::move(b));
    }

    layers_.push_back(std::move(layer));
    in_dim = out_dim;
  }
}

Var Rgcn::ForwardLayer(const Layer& layer, const Var& h, bool last) {
  Var aggregated;
  if (IsSequential(config_.mode)) {
    // One dense GEMM + one message-passing kernel per relation, results
    // accumulated — DGL/PyG's native heterogeneous path.
    for (size_t r = 0; r < layer.relation_weights.size(); ++r) {
      if (relation_subgraphs_[r].num_edges() == 0) {
        continue;
      }
      Var h_r = ag::Matmul(h, layer.relation_weights[r]);
      Var out_r = layer.per_relation_program.Run(
          {.vertex = {{"h", h_r}}, .edge = {{"norm", relation_edge_norms_[r]}}},
          relation_sessions_[r]);
      aggregated = aggregated.defined() ? ag::Add(aggregated, out_r) : out_r;
    }
  } else {
    Var stack = StackedRelationMatmul(h, layer.relation_weights);  // [R, N, out]
    aggregated = layer.typed_program.Run(
        {.edge = {{"norm", edge_norm_}}, .typed_vertex = {{"wh", stack}}}, session());
  }
  Var out = ag::Add(aggregated, ag::Matmul(h, layer.self_weight));
  out = ag::AddRowBroadcast(out, layer.bias);
  return last ? out : ag::Relu(out);
}

Var Rgcn::Forward(bool /*training*/) {
  BindProfiler();
  for (ExecutionSession& relation_session : relation_sessions_) {
    relation_session.set_profiler(profiler());
  }
  Var h = embedding_.Full();
  for (size_t layer_index = 0; layer_index < layers_.size(); ++layer_index) {
    h = ForwardLayer(layers_[layer_index], h, layer_index + 1 == layers_.size());
  }
  return h;
}

std::vector<Var> Rgcn::Parameters() const {
  std::vector<Var> params = embedding_.Parameters();
  for (const Layer& layer : layers_) {
    for (const Var& w : layer.relation_weights) {
      params.push_back(w);
    }
    params.push_back(layer.self_weight);
    params.push_back(layer.bias);
  }
  return params;
}

}  // namespace seastar
