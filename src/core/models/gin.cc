#include "src/core/models/gin.h"

#include "src/common/logging.h"

namespace seastar {

Gin::Gin(const Dataset& data, const GinConfig& config, std::shared_ptr<const Executor> executor)
    : data_(data), config_(config), rng_(config.seed) {
  SEASTAR_CHECK(data.features.defined()) << "GIN needs vertex features";
  session_ = MakeSession(std::move(executor), data_.graph);
  features_ = Var::Leaf(data_.features, /*requires_grad=*/false);

  int64_t in_dim = data_.features.dim(1);
  for (int layer_index = 0; layer_index < config_.num_layers; ++layer_index) {
    const bool last = layer_index == config_.num_layers - 1;
    const int64_t out_dim = last ? data_.spec.num_classes : config_.hidden_dim;

    Layer layer;
    // (1 + eps) * v.h + sum over in-neighbors — the whole graph part of GIN.
    GirBuilder b;
    const int32_t width = static_cast<int32_t>(in_dim);
    b.MarkOutput(AggSum(b.Src("h", width)) + b.Dst("h", width) * (1.0f + config_.epsilon),
                 "out");
    layer.program = VertexProgram::Compile(std::move(b));
    layer.mlp_hidden = Linear(in_dim, config_.hidden_dim, /*with_bias=*/true, rng_);
    layer.mlp_out = Linear(config_.hidden_dim, out_dim, /*with_bias=*/true, rng_);
    layers_.push_back(std::move(layer));
    in_dim = out_dim;
  }
}

Var Gin::Forward(bool training) {
  BindProfiler();
  Var h = features_;
  for (size_t layer_index = 0; layer_index < layers_.size(); ++layer_index) {
    const Layer& layer = layers_[layer_index];
    const bool last = layer_index + 1 == layers_.size();
    Var aggregated = layer.program.Run({.vertex = {{"h", h}}}, session());
    h = layer.mlp_out.Forward(ag::Relu(layer.mlp_hidden.Forward(aggregated)));
    if (!last) {
      h = ag::Relu(h);
      h = ag::Dropout(h, config_.dropout, rng_, training);
    }
  }
  return h;
}

std::vector<Var> Gin::Parameters() const {
  std::vector<Var> params;
  for (const Layer& layer : layers_) {
    for (const Var& p : layer.mlp_hidden.Parameters()) {
      params.push_back(p);
    }
    for (const Var& p : layer.mlp_out.Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

}  // namespace seastar
