// Relational GCN (Schlichtkrull et al.) for heterogeneous knowledge graphs:
//
//   h_v^{l+1} = sigma( W_0^l h_v^l + sum_r sum_{u in N_r(v)} 1/c_{v,r} W_r^l h_u^l )
//
// where c_{v,r} = |N_r(v)|. The five execution modes reproduce the five
// columns of the paper's Table 3:
//
//   kSeastar        — per-relation transforms batched into a [R, N, d] stack,
//                     then ONE fused typed-aggregation kernel using the
//                     edge-type secondary sort (§6.3.5).
//   kDglBmm/kPygBmm — the paper's manually optimized baselines: the same
//                     batched transform, but the typed gather/aggregate runs
//                     on the whole-graph tensor executors.
//   kDglSequential/kPygSequential — the naive per-relation path of DGL/PyG:
//                     loop over relations, one dense GEMM + one subgraph
//                     message-passing kernel per relation (90-206 kernel
//                     sequences on the paper's datasets — the orders-of-
//                     magnitude column of Table 3).
#ifndef SRC_CORE_MODELS_RGCN_H_
#define SRC_CORE_MODELS_RGCN_H_

#include <vector>

#include "src/core/models/model.h"
#include "src/core/nn.h"
#include "src/core/program.h"

namespace seastar {

enum class RgcnMode {
  kSeastar,
  kDglBmm,
  kPygBmm,
  kDglSequential,
  kPygSequential,
};

const char* RgcnModeName(RgcnMode mode);

struct RgcnConfig {
  int64_t hidden_dim = 16;
  int num_layers = 2;
  RgcnMode mode = RgcnMode::kSeastar;
  uint64_t seed = 0x26c;
};

class Rgcn : public GnnModel {
 public:
  Rgcn(const Dataset& data, const RgcnConfig& config);

  Var Forward(bool training) override;
  std::vector<Var> Parameters() const override;
  const char* name() const override { return "R-GCN"; }
  Rng* MutableRng() override { return &rng_; }

 private:
  struct Layer {
    std::vector<Var> relation_weights;  // [in, out] per relation.
    Var self_weight;                    // [in, out]
    Var bias;                           // [out]
    VertexProgram typed_program;        // Batched modes.
    VertexProgram per_relation_program; // Sequential modes.
  };

  Var ForwardLayer(const Layer& layer, const Var& h, bool last);

  const Dataset& data_;
  RgcnConfig config_;
  Rng rng_;
  Embedding embedding_;
  std::vector<Layer> layers_;
  Var edge_norm_;  // [E, 1]: 1 / c_{dst(e), type(e)}.
  // Sequential modes: one subgraph per relation plus its edge norms and a
  // per-subgraph session (the shared executor bound to each relation graph).
  std::vector<Graph> relation_subgraphs_;
  std::vector<Var> relation_edge_norms_;
  std::vector<ExecutionSession> relation_sessions_;
};

}  // namespace seastar

#endif  // SRC_CORE_MODELS_RGCN_H_
