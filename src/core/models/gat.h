// Graph Attention Network (Velickovic et al.; paper Fig. 2):
//
//   f_u = W h_u;  e_u = f_u . a_l;  e_v = f_v . a_r
//   e_uv = LeakyReLU(e_u + e_v)
//   a_uv = exp(e_uv) / sum_{u in N(v)} exp(e_uv)      (edge softmax)
//   h_v' = sum_{u in N(v)} a_uv * f_u
//
// The whole attention stage after the dense projections is one compiled
// vertex program (paper Fig. 3 / Fig. 6) — the most fusion-rich of the four
// models, which is why GAT shows Seastar's largest speedups.
#ifndef SRC_CORE_MODELS_GAT_H_
#define SRC_CORE_MODELS_GAT_H_

#include <vector>

#include "src/core/models/model.h"
#include "src/core/nn.h"
#include "src/core/program.h"

namespace seastar {

struct GatConfig {
  int64_t hidden_dim = 8;  // Per head.
  int num_heads = 8;       // Hidden layers; the output layer uses 1 head.
  int num_layers = 2;
  float feat_dropout = 0.6f;
  float negative_slope = 0.2f;
  uint64_t seed = 0x6a7;
};

class Gat : public GnnModel {
 public:
  Gat(const Dataset& data, const GatConfig& config, std::shared_ptr<const Executor> executor);

  Var Forward(bool training) override;
  std::vector<Var> Parameters() const override;
  const char* name() const override { return "GAT"; }
  Rng* MutableRng() override { return &rng_; }

 private:
  struct Head {
    Linear projection;
    Var attn_left;   // [dim, 1]
    Var attn_right;  // [dim, 1]
  };
  struct Layer {
    std::vector<Head> heads;
    VertexProgram program;  // Compiled attention kernel for this width.
  };

  Var RunHead(const Layer& layer, const Head& head, const Var& h) const;

  const Dataset& data_;
  GatConfig config_;
  Rng rng_;
  std::vector<Layer> layers_;
  Var features_;
};

}  // namespace seastar

#endif  // SRC_CORE_MODELS_GAT_H_
