// APPNP — Approximate Personalized Propagation of Neural Predictions
// (Klicpera et al.). An MLP produces initial predictions h0; K steps of
// personalized-PageRank-style propagation follow:
//
//   h^{k+1} = (1 - alpha) * norm_v * sum_{u in N(v)} norm_u * h_u^k
//             + alpha * h0_v
//
// One propagation step is one compiled vertex program; K steps chain K
// fused kernels. APPNP stresses the propagation path (K=10 graph kernels per
// forward pass against GCN's 2), which is why it dominates Fig. 10(c).
#ifndef SRC_CORE_MODELS_APPNP_H_
#define SRC_CORE_MODELS_APPNP_H_

#include <vector>

#include "src/core/models/model.h"
#include "src/core/nn.h"
#include "src/core/program.h"

namespace seastar {

struct AppnpConfig {
  int64_t hidden_dim = 64;
  int num_hops = 10;     // K
  float alpha = 0.1f;    // Teleport probability.
  float dropout = 0.5f;
  uint64_t seed = 0xa99;
};

class Appnp : public GnnModel {
 public:
  Appnp(const Dataset& data, const AppnpConfig& config, std::shared_ptr<const Executor> executor);

  Var Forward(bool training) override;
  std::vector<Var> Parameters() const override;
  const char* name() const override { return "APPNP"; }
  Rng* MutableRng() override { return &rng_; }

 private:
  const Dataset& data_;
  AppnpConfig config_;
  Rng rng_;
  Linear mlp_in_;
  Linear mlp_out_;
  VertexProgram propagate_;  // One propagation step at width = num_classes.
  Var features_;
  Var norm_;
};

}  // namespace seastar

#endif  // SRC_CORE_MODELS_APPNP_H_
