// Common interface for the four evaluated GNN models (GCN, GAT, APPNP,
// R-GCN). A model is bound to a Dataset at construction (the paper trains
// full-graph, one model per dataset) and can run its graph kernels on any
// Backend, which is how the three-system comparison is staged.
#ifndef SRC_CORE_MODELS_MODEL_H_
#define SRC_CORE_MODELS_MODEL_H_

#include <string>
#include <vector>

#include "src/core/backend.h"
#include "src/graph/datasets.h"
#include "src/tensor/autograd.h"

namespace seastar {

class GnnModel {
 public:
  virtual ~GnnModel() = default;

  // Full-graph forward pass producing per-vertex logits [N, num_classes].
  virtual Var Forward(bool training) = 0;

  // All trainable parameters (weights, biases, attention vectors,
  // embeddings) for the optimizer.
  virtual std::vector<Var> Parameters() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace seastar

#endif  // SRC_CORE_MODELS_MODEL_H_
