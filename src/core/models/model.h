// Common interface for the evaluated GNN models (GCN, GAT, APPNP, R-GCN,
// SAGE, GIN, SGC). A model is bound to a Dataset at construction (the paper
// trains full-graph, one model per dataset) and to an Executor — the
// execution strategy its vertex programs run through (ExecutorFactory names
// them: "seastar", "dgl", "pyg", "sharded:<N>", ...). The model owns the
// resulting ExecutionSession, so per-graph prepared state (a shard
// partition) is built once at construction, not once per Forward.
#ifndef SRC_CORE_MODELS_MODEL_H_
#define SRC_CORE_MODELS_MODEL_H_

#include <string>
#include <vector>

#include "src/exec/executor.h"
#include "src/graph/datasets.h"
#include "src/tensor/autograd.h"

namespace seastar {

class Profiler;

class GnnModel {
 public:
  virtual ~GnnModel() = default;

  // Full-graph forward pass producing per-vertex logits [N, num_classes].
  virtual Var Forward(bool training) = 0;

  // All trainable parameters (weights, biases, attention vectors,
  // embeddings) for the optimizer.
  virtual std::vector<Var> Parameters() const = 0;

  virtual const char* name() const = 0;

  // The model's private RNG (dropout etc.), checkpointed so a resumed run
  // draws the exact dropout masks the uninterrupted run would have drawn.
  // Null for models without stochastic state.
  virtual Rng* MutableRng() { return nullptr; }

  // Observability: the training loop installs its run profiler here for the
  // duration of a run; models thread it into every vertex-program launch via
  // the session. Null (the default) disables all recording.
  void SetProfiler(Profiler* profiler) { profiler_ = profiler; }
  Profiler* profiler() const { return profiler_; }

  // The model's execution binding: executor + prepared graph view. Valid
  // after construction for every concrete model.
  const ExecutionSession& session() const { return session_; }

 protected:
  // Concrete models bind this in their constructor (MakeSession over the
  // dataset graph) and call BindProfiler() at the top of Forward so a
  // profiler installed after construction reaches the executors.
  ExecutionSession session_;
  void BindProfiler() { session_.set_profiler(profiler()); }

 private:
  Profiler* profiler_ = nullptr;
};

}  // namespace seastar

#endif  // SRC_CORE_MODELS_MODEL_H_
