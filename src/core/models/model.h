// Common interface for the four evaluated GNN models (GCN, GAT, APPNP,
// R-GCN). A model is bound to a Dataset at construction (the paper trains
// full-graph, one model per dataset) and can run its graph kernels on any
// Backend, which is how the three-system comparison is staged.
#ifndef SRC_CORE_MODELS_MODEL_H_
#define SRC_CORE_MODELS_MODEL_H_

#include <string>
#include <vector>

#include "src/core/backend.h"
#include "src/graph/datasets.h"
#include "src/tensor/autograd.h"

namespace seastar {

class Profiler;

class GnnModel {
 public:
  virtual ~GnnModel() = default;

  // Full-graph forward pass producing per-vertex logits [N, num_classes].
  virtual Var Forward(bool training) = 0;

  // All trainable parameters (weights, biases, attention vectors,
  // embeddings) for the optimizer.
  virtual std::vector<Var> Parameters() const = 0;

  virtual const char* name() const = 0;

  // The model's private RNG (dropout etc.), checkpointed so a resumed run
  // draws the exact dropout masks the uninterrupted run would have drawn.
  // Null for models without stochastic state.
  virtual Rng* MutableRng() { return nullptr; }

  // Observability: the training loop installs its run profiler here for the
  // duration of a run; models thread it into every vertex-program launch via
  // RunContext. Null (the default) disables all recording.
  void SetProfiler(Profiler* profiler) { profiler_ = profiler; }
  Profiler* profiler() const { return profiler_; }

 private:
  Profiler* profiler_ = nullptr;
};

}  // namespace seastar

#endif  // SRC_CORE_MODELS_MODEL_H_
