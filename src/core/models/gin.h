// Graph Isomorphism Network (Xu et al. 2019):
//
//   h_v' = MLP((1 + eps) * h_v + sum_{u in N(v)} h_u)
//
// The injective sum aggregation plus the learnable (or fixed) eps makes the
// graph kernel a one-liner: AggSum(u.h) + (1 + eps) * v.h. Part of the
// extended model zoo demonstrating API coverage beyond the paper's four
// evaluated models.
#ifndef SRC_CORE_MODELS_GIN_H_
#define SRC_CORE_MODELS_GIN_H_

#include <vector>

#include "src/core/models/model.h"
#include "src/core/nn.h"
#include "src/core/program.h"

namespace seastar {

struct GinConfig {
  int64_t hidden_dim = 16;
  int num_layers = 2;
  float epsilon = 0.0f;  // Fixed (non-learnable) eps, as in GIN-0.
  float dropout = 0.5f;
  uint64_t seed = 0x619;
};

class Gin : public GnnModel {
 public:
  Gin(const Dataset& data, const GinConfig& config, std::shared_ptr<const Executor> executor);

  Var Forward(bool training) override;
  std::vector<Var> Parameters() const override;
  const char* name() const override { return "GIN"; }
  Rng* MutableRng() override { return &rng_; }

 private:
  struct Layer {
    Linear mlp_hidden;
    Linear mlp_out;
    VertexProgram program;
  };

  const Dataset& data_;
  GinConfig config_;
  Rng rng_;
  std::vector<Layer> layers_;
  Var features_;
};

}  // namespace seastar

#endif  // SRC_CORE_MODELS_GIN_H_
