#include "src/core/models/gcn.h"

#include "src/common/logging.h"

namespace seastar {

Gcn::Gcn(const Dataset& data, const GcnConfig& config, std::shared_ptr<const Executor> executor)
    : data_(data), config_(config), rng_(config.seed) {
  SEASTAR_CHECK_GE(config.num_layers, 1);
  SEASTAR_CHECK(data.features.defined()) << "GCN needs vertex features";
  session_ = MakeSession(std::move(executor), data_.graph);

  features_ = Var::Leaf(data_.features, /*requires_grad=*/false);
  norm_ = Var::Leaf(data_.gcn_norm, /*requires_grad=*/false);

  int64_t in_dim = data_.features.dim(1);
  for (int layer = 0; layer < config_.num_layers; ++layer) {
    const bool last = layer == config_.num_layers - 1;
    const int64_t out_dim = last ? data_.spec.num_classes : config_.hidden_dim;
    layers_.emplace_back(in_dim, out_dim, /*with_bias=*/false, rng_);
    biases_.push_back(Var::Leaf(Tensor::Zeros({out_dim}), /*requires_grad=*/true));

    // The vertex-centric aggregation of paper Fig. 3, one line:
    //   sum([u.h * u.norm for u in v.innbs])
    GirBuilder b;
    b.MarkOutput(AggSum(b.Src("h", static_cast<int32_t>(out_dim)) * b.Src("norm", 1)), "out");
    programs_.push_back(VertexProgram::Compile(std::move(b)));

    in_dim = out_dim;
  }
}

Var Gcn::Forward(bool training) {
  BindProfiler();
  Var h = features_;
  for (size_t layer = 0; layer < layers_.size(); ++layer) {
    const bool last = layer + 1 == layers_.size();
    h = ag::Dropout(h, config_.dropout, rng_, training);
    Var transformed = layers_[layer].Forward(h);
    Var aggregated =
        programs_[layer].Run({.vertex = {{"h", transformed}, {"norm", norm_}}}, session_);
    h = ag::AddRowBroadcast(aggregated, biases_[layer]);
    if (!last) {
      h = ag::Relu(h);
    }
  }
  return h;
}

std::vector<Var> Gcn::Parameters() const {
  std::vector<Var> params;
  for (const Linear& layer : layers_) {
    for (const Var& p : layer.Parameters()) {
      params.push_back(p);
    }
  }
  for (const Var& b : biases_) {
    params.push_back(b);
  }
  return params;
}

}  // namespace seastar
