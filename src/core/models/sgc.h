// Simplified Graph Convolution (Wu et al. 2019): remove all nonlinearities
// from GCN and collapse the K-hop propagation into a preprocessing step:
//
//   logits = (S^K X) W,   S = normalized adjacency.
//
// SGC highlights a different execution profile than the trained models: its
// propagation S^K X has no gradient (the features are constant), so the
// whole graph part runs exactly once and is cached — the per-epoch cost is a
// single dense GEMM. Part of the extended model zoo.
#ifndef SRC_CORE_MODELS_SGC_H_
#define SRC_CORE_MODELS_SGC_H_

#include <vector>

#include "src/core/models/model.h"
#include "src/core/nn.h"
#include "src/core/program.h"

namespace seastar {

struct SgcConfig {
  int num_hops = 2;  // K
  uint64_t seed = 0x56c;
};

class Sgc : public GnnModel {
 public:
  Sgc(const Dataset& data, const SgcConfig& config, std::shared_ptr<const Executor> executor);

  Var Forward(bool training) override;
  std::vector<Var> Parameters() const override;
  const char* name() const override { return "SGC"; }
  // SGC is deterministic (no dropout): nothing stochastic to checkpoint, so
  // the base-class null MutableRng() is correct.

  // The precomputed S^K X (exposed for tests).
  const Tensor& propagated_features() const { return propagated_; }

 private:
  const Dataset& data_;
  Linear classifier_;
  Tensor propagated_;
  Var propagated_var_;
};

}  // namespace seastar

#endif  // SRC_CORE_MODELS_SGC_H_
