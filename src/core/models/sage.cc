#include "src/core/models/sage.h"

#include "src/common/logging.h"

namespace seastar {

Sage::Sage(const Dataset& data, const SageConfig& config,
           std::shared_ptr<const Executor> executor)
    : data_(data), config_(config), rng_(config.seed) {
  SEASTAR_CHECK(data.features.defined()) << "GraphSAGE needs vertex features";
  session_ = MakeSession(std::move(executor), data_.graph);
  features_ = Var::Leaf(data_.features, /*requires_grad=*/false);

  int64_t in_dim = data_.features.dim(1);
  for (int layer_index = 0; layer_index < config_.num_layers; ++layer_index) {
    const bool last = layer_index == config_.num_layers - 1;
    const int64_t out_dim = last ? data_.spec.num_classes : config_.hidden_dim;

    Layer layer;
    // Aggregation runs on the *input* width (the transform follows it), so
    // the kernel width is in_dim for mean, and the pool width for pool.
    if (config_.aggregator == SageAggregator::kMean) {
      GirBuilder b;
      b.MarkOutput(AggMean(b.Src("h", static_cast<int32_t>(in_dim))), "out");
      layer.program = VertexProgram::Compile(std::move(b));
      layer.neighbor_transform = Linear(in_dim, out_dim, /*with_bias=*/false, rng_);
    } else {
      const int64_t pool_dim = config_.hidden_dim;
      layer.pool_transform = Linear(in_dim, pool_dim, /*with_bias=*/true, rng_);
      GirBuilder b;
      b.MarkOutput(AggMax(Relu(b.Src("p", static_cast<int32_t>(pool_dim)))), "out");
      layer.program = VertexProgram::Compile(std::move(b));
      layer.neighbor_transform = Linear(pool_dim, out_dim, /*with_bias=*/false, rng_);
    }
    layer.self_transform = Linear(in_dim, out_dim, /*with_bias=*/true, rng_);
    layers_.push_back(std::move(layer));
    in_dim = out_dim;
  }
}

Var Sage::Forward(bool training) {
  BindProfiler();
  Var h = features_;
  for (size_t layer_index = 0; layer_index < layers_.size(); ++layer_index) {
    const Layer& layer = layers_[layer_index];
    const bool last = layer_index + 1 == layers_.size();
    h = ag::Dropout(h, config_.dropout, rng_, training);

    Var aggregated;
    if (config_.aggregator == SageAggregator::kMean) {
      aggregated = layer.program.Run({.vertex = {{"h", h}}}, session());
    } else {
      Var pooled_in = layer.pool_transform.Forward(h);
      aggregated = layer.program.Run({.vertex = {{"p", pooled_in}}}, session());
    }
    h = ag::Add(layer.self_transform.Forward(h), layer.neighbor_transform.Forward(aggregated));
    if (!last) {
      h = ag::Relu(h);
    }
  }
  return h;
}

std::vector<Var> Sage::Parameters() const {
  std::vector<Var> params;
  for (const Layer& layer : layers_) {
    for (const Var& p : layer.self_transform.Parameters()) {
      params.push_back(p);
    }
    for (const Var& p : layer.neighbor_transform.Parameters()) {
      params.push_back(p);
    }
    if (config_.aggregator == SageAggregator::kPool) {
      for (const Var& p : layer.pool_transform.Parameters()) {
        params.push_back(p);
      }
    }
  }
  return params;
}

}  // namespace seastar
