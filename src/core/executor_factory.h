// ExecutorFactory: spec strings -> executors.
//
// The single place that knows how to spell an execution strategy. CLIs,
// examples and tests pass the user's string straight through:
//
//   auto executor = ExecutorFactory::Create(flag_value);
//   if (!executor) { die(executor.status(), ExecutorFactory::Choices()); }
//   ExecutionSession session = MakeSession(std::move(*executor), graph);
//
// Accepted specs: "seastar", "seastar-nofuse" (alias "nofuse"), "dgl",
// "pyg", "sharded" (2 shards), "sharded:<N>". This replaces the old
// Backend-enum plumbing (BackendFromString + BackendConfig switch at every
// call site), which could only ever name the three whole-graph strategies —
// a strategy with its own parameters ("sharded:4") had nowhere to live in
// an enum.
#ifndef SRC_CORE_EXECUTOR_FACTORY_H_
#define SRC_CORE_EXECUTOR_FACTORY_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/core/backend.h"
#include "src/exec/executor.h"
#include "src/exec/shard_runtime.h"

namespace seastar {

// A parsed executor spec. `kind` is one of the base names above; `num_shards`
// only applies to "sharded".
struct ExecutorSpec {
  std::string kind = "seastar";
  int num_shards = 2;
};

// Parses "<kind>" or "sharded:<N>". Errors name the bad token so CLIs can
// print it next to Choices().
StatusOr<ExecutorSpec> ParseExecutorSpec(const std::string& spec);

// Knob overrides applied to whichever executor the spec selects (a bench
// sweeping block schedules passes seastar_options; everyone else defaults).
struct ExecutorFactoryOptions {
  SeastarExecutorOptions seastar_options;
  BaselineExecutorOptions baseline_options;
  // Sharded only: give each shard worker a private thread-pool slice.
  bool use_pool_slices = true;
};

class ExecutorFactory {
 public:
  static StatusOr<std::unique_ptr<Executor>> Create(const std::string& spec,
                                                    const ExecutorFactoryOptions& options = {});
  static StatusOr<std::unique_ptr<Executor>> Create(const ExecutorSpec& spec,
                                                    const ExecutorFactoryOptions& options = {});

  // The accepted spellings, for CLI error messages.
  static const char* Choices();
};

// Bridges the legacy Backend enum to the executor API (the deprecated
// RunWithBackend / VertexProgram::Run(graph, ..., config) shims and the few
// call sites that still select by enum go through here).
std::unique_ptr<Executor> MakeExecutor(const BackendConfig& config);

}  // namespace seastar

#endif  // SRC_CORE_EXECUTOR_FACTORY_H_
