// Training checkpoints: versioned, checksummed snapshots of everything a
// resumed run needs to continue *bit-identically* — model parameters, Adam
// moments and step counter, the model's RNG stream (dropout masks), the
// completed-epoch counter, and the recovery-policy state (current learning
// rate, retries used, best loss seen).
//
// Durability contract:
//  * Writes are atomic: the snapshot is serialized to "<path>.tmp" and
//    renamed over <path> only after a complete, flushed write. A crash (or
//    an injected FaultSite::kCheckpointWrite) mid-write leaves the previous
//    checkpoint untouched and resumable.
//  * Writes rotate: just before the final rename the old <path> becomes
//    "<path>.prev", keeping one previous generation on disk. Loads that find
//    the primary corrupt (checksum/truncation) or missing fall back to
//    .prev with a logged warning, so a long-running server survives bit rot
//    in its newest snapshot at the cost of resuming one generation behind.
//  * Reads verify a 64-bit FNV-1a checksum over the whole payload before
//    decoding, so corruption anywhere in the file is detected up front and
//    reported with the file name; decode errors additionally name the byte
//    offset where the payload ended or went inconsistent.
//
// Layout (version 1): magic "SSCK", u32 version, u64 payload size, u64
// checksum, then the payload (fixed-width little-endian fields; tensors as
// u32 ndim + i64 dims + f32 data). Version 2 prefixes the payload with a
// model tag (u32 length + bytes) naming the model the snapshot belongs to;
// untagged snapshots still serialize as version 1, bit-identical to before,
// so old files and old readers interoperate with new ones.
//
// Multi-model namespacing: several models sharing one checkpoint directory
// must not clobber each other's primary or ".prev" rotation state (a swap of
// model A that rotated model B's snapshot into A's .prev slot would make A's
// corruption fallback resurrect B's weights). CheckpointPathForModel derives
// a per-model path — "<stem>.<model-id><ext>" — so each model id gets its own
// file *and* its own tmp/.prev rotation chain, and the tag-checked load
// overload rejects a snapshot whose embedded tag names a different model.
#ifndef SRC_CORE_CHECKPOINT_H_
#define SRC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/tensor/tensor.h"

namespace seastar {

struct TrainCheckpoint {
  int32_t epoch = 0;  // Completed epochs; resume starts at this epoch index.
  float learning_rate = 0.0f;
  int32_t retries_used = 0;
  float best_loss = std::numeric_limits<float>::max();
  std::optional<RngState> model_rng;  // Engaged for models with dropout.
  std::vector<Tensor> parameters;
  bool has_adam = false;
  int64_t adam_t = 0;
  std::vector<Tensor> adam_m;  // Same shapes as parameters.
  std::vector<Tensor> adam_v;
  // Which model this snapshot belongs to ("" = untagged legacy snapshot).
  // Serialized as format version 2 when set; verified by the tag-checked
  // LoadCheckpoint overload.
  std::string model_tag;
};

// Serializes and atomically replaces `path`, rotating the prior snapshot to
// "<path>.prev". On failure (I/O error or an injected write fault) `path`
// still holds the previous snapshot, un-rotated.
Status SaveCheckpoint(const TrainCheckpoint& checkpoint, const std::string& path);

// Verifies magic, version, and checksum, then decodes. All failures are
// Status errors naming the file (and byte offset where applicable); this
// function never aborts on untrusted bytes. A corrupt or missing primary
// falls back to "<path>.prev" (with a logged warning) when that previous
// generation verifies cleanly; transient read errors do not fall back.
StatusOr<TrainCheckpoint> LoadCheckpoint(const std::string& path);

// Tag-checked load: additionally requires the snapshot's embedded model tag
// to equal `expected_tag` (untagged legacy snapshots pass any expectation; an
// empty expectation skips the check). A wrong-tag primary is treated like a
// corrupt one — kFailedPrecondition naming both tags, with the same ".prev"
// fallback — because it means another model's rotation clobbered this slot
// and the previous generation may still hold the right model's weights.
StatusOr<TrainCheckpoint> LoadCheckpoint(const std::string& path,
                                         const std::string& expected_tag);

// Per-model checkpoint path: "<stem>.<model-id><ext>" (model id sanitized to
// [A-Za-z0-9._-]), e.g. ("ckpt/fleet.ckpt", "gcn-a") -> "ckpt/fleet.gcn-a.ckpt".
// Keeping the extension last means the derived file's ".tmp"/".prev"
// companions are namespaced per model too — the rotation-state isolation the
// multi-tenant registry relies on.
std::string CheckpointPathForModel(const std::string& base_path, const std::string& model_id);

// 64-bit FNV-1a, exposed for tests that hand-corrupt checkpoint bytes.
uint64_t Fnv1a64(const char* data, size_t size);

}  // namespace seastar

#endif  // SRC_CORE_CHECKPOINT_H_
