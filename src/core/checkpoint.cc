#include "src/core/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/common/fault.h"
#include "src/common/logging.h"

namespace seastar {
namespace {

constexpr char kMagic[4] = {'S', 'S', 'C', 'K'};
// Version 1: untagged payload. Version 2: payload prefixed with a model tag
// (u32 length + bytes). Untagged checkpoints always write version 1 so files
// produced by this code stay readable by pre-tag readers.
constexpr uint32_t kVersionUntagged = 1;
constexpr uint32_t kVersionTagged = 2;
// Upper bound on an embedded model tag; anything longer is corruption.
constexpr uint32_t kMaxTagBytes = 256;
// Serialized header: magic + version + payload size + checksum.
constexpr size_t kHeaderBytes = sizeof(kMagic) + sizeof(uint32_t) + 2 * sizeof(uint64_t);
// Decode-time guard against absurd counts from corrupt length fields that
// happen to pass the checksum of a truncated read path.
constexpr uint64_t kSanityLimit = uint64_t{1} << 32;

// ---- payload writer ------------------------------------------------------------------------------

class PayloadWriter {
 public:
  template <typename T>
  void Pod(const T& value) {
    const char* bytes = reinterpret_cast<const char*>(&value);
    buffer_.append(bytes, sizeof(T));
  }

  void Bytes(const void* data, size_t size) {
    buffer_.append(reinterpret_cast<const char*>(data), size);
  }

  void TensorValue(const Tensor& t) {
    Pod(static_cast<uint32_t>(t.ndim()));
    for (int64_t axis = 0; axis < t.ndim(); ++axis) {
      Pod(static_cast<int64_t>(t.dim(static_cast<size_t>(axis))));
    }
    Bytes(t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
  }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

// ---- payload reader ------------------------------------------------------------------------------

// Cursor over the verified payload. Reads that run past the end set a
// Status naming the absolute file offset, checked once by the caller.
class PayloadReader {
 public:
  PayloadReader(const std::string& payload, const std::string& path)
      : payload_(payload), path_(path) {}

  template <typename T>
  bool Pod(T* value) {
    if (!RequireBytes(sizeof(T), "fixed-width field")) {
      return false;
    }
    std::memcpy(value, payload_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return true;
  }

  bool TensorValue(Tensor* out, const char* what) {
    uint32_t ndim = 0;
    if (!Pod(&ndim) || ndim > 8) {
      return Fail(std::string(what) + ": bad rank");
    }
    std::vector<int64_t> shape(ndim);
    int64_t numel = 1;
    for (uint32_t axis = 0; axis < ndim; ++axis) {
      if (!Pod(&shape[axis]) || shape[axis] < 0 ||
          shape[axis] > static_cast<int64_t>(kSanityLimit)) {
        return Fail(std::string(what) + ": bad dimension");
      }
      numel *= shape[axis];
    }
    if (numel < 0 || static_cast<uint64_t>(numel) > kSanityLimit ||
        !RequireBytes(static_cast<size_t>(numel) * sizeof(float), what)) {
      return false;
    }
    Tensor t(shape);
    std::memcpy(t.data(), payload_.data() + cursor_, static_cast<size_t>(numel) * sizeof(float));
    cursor_ += static_cast<size_t>(numel) * sizeof(float);
    *out = std::move(t);
    return true;
  }

  bool Fail(const std::string& reason) {
    if (status_.ok()) {
      status_ = ErrorStatus(StatusCode::kDataLoss)
                << path_ << ": " << reason << " at byte offset " << (kHeaderBytes + cursor_);
    }
    return false;
  }

  bool Skip(size_t count) {
    if (!RequireBytes(count, "skipped field")) {
      return false;
    }
    cursor_ += count;
    return true;
  }

  bool exhausted() const { return cursor_ == payload_.size(); }
  const Status& status() const { return status_; }
  size_t cursor() const { return cursor_; }

 private:
  bool RequireBytes(size_t count, const char* what) {
    if (cursor_ + count > payload_.size()) {
      return Fail(std::string("truncated ") + what);
    }
    return true;
  }

  const std::string& payload_;
  const std::string& path_;
  size_t cursor_ = 0;
  Status status_;
};

void SerializeRngState(PayloadWriter& writer, const RngState& state) {
  for (uint64_t word : state.words) {
    writer.Pod(word);
  }
  writer.Pod(static_cast<uint8_t>(state.have_cached_gaussian ? 1 : 0));
  writer.Pod(state.cached_gaussian);
}

bool DeserializeRngState(PayloadReader& reader, RngState* state) {
  for (uint64_t& word : state->words) {
    if (!reader.Pod(&word)) {
      return false;
    }
  }
  uint8_t have_cached = 0;
  if (!reader.Pod(&have_cached) || !reader.Pod(&state->cached_gaussian)) {
    return false;
  }
  state->have_cached_gaussian = have_cached != 0;
  return true;
}

}  // namespace

uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<uint8_t>(data[i]);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

Status SaveCheckpoint(const TrainCheckpoint& checkpoint, const std::string& path) {
  PayloadWriter writer;
  const uint32_t version =
      checkpoint.model_tag.empty() ? kVersionUntagged : kVersionTagged;
  if (version == kVersionTagged) {
    SEASTAR_CHECK_LE(checkpoint.model_tag.size(), static_cast<size_t>(kMaxTagBytes))
        << "checkpoint model tag too long";
    writer.Pod(static_cast<uint32_t>(checkpoint.model_tag.size()));
    writer.Bytes(checkpoint.model_tag.data(), checkpoint.model_tag.size());
  }
  writer.Pod(checkpoint.epoch);
  writer.Pod(checkpoint.learning_rate);
  writer.Pod(checkpoint.retries_used);
  writer.Pod(checkpoint.best_loss);
  writer.Pod(static_cast<uint8_t>(checkpoint.model_rng.has_value() ? 1 : 0));
  if (checkpoint.model_rng.has_value()) {
    SerializeRngState(writer, *checkpoint.model_rng);
  }
  writer.Pod(static_cast<uint32_t>(checkpoint.parameters.size()));
  for (const Tensor& param : checkpoint.parameters) {
    SEASTAR_CHECK(param.defined()) << "cannot checkpoint an undefined parameter";
    writer.TensorValue(param);
  }
  writer.Pod(static_cast<uint8_t>(checkpoint.has_adam ? 1 : 0));
  if (checkpoint.has_adam) {
    SEASTAR_CHECK_EQ(checkpoint.adam_m.size(), checkpoint.parameters.size());
    SEASTAR_CHECK_EQ(checkpoint.adam_v.size(), checkpoint.parameters.size());
    writer.Pod(checkpoint.adam_t);
    for (const Tensor& m : checkpoint.adam_m) {
      writer.TensorValue(m);
    }
    for (const Tensor& v : checkpoint.adam_v) {
      writer.TensorValue(v);
    }
  }

  const std::string& payload = writer.buffer();
  const uint64_t checksum = Fnv1a64(payload.data(), payload.size());
  const std::string tmp_path = path + ".tmp";

  FaultInjector& faults = FaultInjector::Get();
  const bool inject_truncation = faults.enabled() && faults.ShouldFail(FaultSite::kCheckpointWrite);

  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return ErrorStatus(StatusCode::kUnavailable)
             << tmp_path << ": cannot open for writing";
    }
    out.write(kMagic, sizeof(kMagic));
    const uint64_t payload_size = payload.size();
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&payload_size), sizeof(payload_size));
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    if (inject_truncation) {
      // Simulated kill mid-write: half the payload reaches disk, the tmp
      // file is left behind, and — crucially — `path` is never replaced.
      out.write(payload.data(), static_cast<std::streamsize>(payload.size() / 2));
      out.flush();
      return ErrorStatus(StatusCode::kUnavailable)
             << tmp_path << ": injected fault: checkpoint write truncated at payload byte "
             << payload.size() / 2 << " of " << payload.size();
    }
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      return ErrorStatus(StatusCode::kUnavailable) << tmp_path << ": short write";
    }
  }
  // Rotation: keep the previous snapshot as "<path>.prev" so a corrupt
  // primary (torn disk write, bit rot) still leaves a loadable generation
  // behind. Rotated only after the new snapshot is fully on disk in tmp, so
  // a failed write never demotes a healthy primary; ENOENT on the first ever
  // save is the expected (ignored) outcome.
  std::rename(path.c_str(), (path + ".prev").c_str());
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return ErrorStatus(StatusCode::kUnavailable)
           << path << ": rename from " << tmp_path << " failed";
  }
  return Status::Ok();
}

namespace {

// One file, no fallback: the body of LoadCheckpoint before rotation existed.
StatusOr<TrainCheckpoint> LoadCheckpointFile(const std::string& path,
                                             const std::string& expected_tag) {
  FaultInjector& faults = FaultInjector::Get();
  if (faults.enabled() && faults.ShouldFail(FaultSite::kCheckpointRead)) {
    return ErrorStatus(StatusCode::kUnavailable) << path << ": injected I/O fault";
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ErrorStatus(StatusCode::kNotFound) << path << ": cannot open for reading";
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return ErrorStatus(StatusCode::kDataLoss)
           << path << ": bad magic at byte offset 0 (not a seastar checkpoint)";
  }
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&payload_size), sizeof(payload_size));
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in) {
    return ErrorStatus(StatusCode::kDataLoss) << path << ": truncated header";
  }
  if (version != kVersionUntagged && version != kVersionTagged) {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << path << ": unsupported checkpoint version " << version << " (expected "
           << kVersionUntagged << " or " << kVersionTagged << ")";
  }
  if (payload_size > kSanityLimit) {
    return ErrorStatus(StatusCode::kDataLoss)
           << path << ": implausible payload size " << payload_size;
  }
  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<uint64_t>(in.gcount()) != payload_size) {
    return ErrorStatus(StatusCode::kDataLoss)
           << path << ": truncated payload: expected " << payload_size << " bytes, got "
           << in.gcount() << " (file cut at byte offset " << (kHeaderBytes + in.gcount()) << ")";
  }
  const uint64_t actual_checksum = Fnv1a64(payload.data(), payload.size());
  if (actual_checksum != checksum) {
    return ErrorStatus(StatusCode::kDataLoss)
           << path << ": checksum mismatch (stored " << checksum << ", computed "
           << actual_checksum << "): checkpoint is corrupt";
  }

  TrainCheckpoint checkpoint;
  PayloadReader reader(payload, path);
  if (version == kVersionTagged) {
    uint32_t tag_len = 0;
    if (!reader.Pod(&tag_len) || tag_len > kMaxTagBytes) {
      reader.Fail("bad model tag length");
      return reader.status();
    }
    if (reader.cursor() + tag_len > payload.size()) {
      reader.Fail("truncated model tag");
      return reader.status();
    }
    checkpoint.model_tag.assign(payload.data() + reader.cursor(), tag_len);
    if (!reader.Skip(tag_len)) {
      return reader.status();
    }
  }
  // Wrong tag means another model's snapshot occupies this path — the caller
  // must not load these weights, and the rotated previous generation may
  // still be the right model's (hence the dedicated fallback-eligible code).
  if (!expected_tag.empty() && !checkpoint.model_tag.empty() &&
      checkpoint.model_tag != expected_tag) {
    return ErrorStatus(StatusCode::kFailedPrecondition)
           << path << ": checkpoint is tagged for model '" << checkpoint.model_tag
           << "' but '" << expected_tag << "' was expected";
  }
  uint8_t has_rng = 0;
  if (!reader.Pod(&checkpoint.epoch) || !reader.Pod(&checkpoint.learning_rate) ||
      !reader.Pod(&checkpoint.retries_used) || !reader.Pod(&checkpoint.best_loss) ||
      !reader.Pod(&has_rng)) {
    return reader.status();
  }
  if (has_rng != 0) {
    RngState rng_state;
    if (!DeserializeRngState(reader, &rng_state)) {
      return reader.status();
    }
    checkpoint.model_rng = rng_state;
  }
  uint32_t num_params = 0;
  if (!reader.Pod(&num_params) || num_params > (1u << 20)) {
    reader.Fail("bad parameter count");
    return reader.status();
  }
  checkpoint.parameters.resize(num_params);
  for (uint32_t p = 0; p < num_params; ++p) {
    if (!reader.TensorValue(&checkpoint.parameters[p], "parameter tensor")) {
      return reader.status();
    }
  }
  uint8_t has_adam = 0;
  if (!reader.Pod(&has_adam)) {
    return reader.status();
  }
  checkpoint.has_adam = has_adam != 0;
  if (checkpoint.has_adam) {
    if (!reader.Pod(&checkpoint.adam_t)) {
      return reader.status();
    }
    checkpoint.adam_m.resize(num_params);
    checkpoint.adam_v.resize(num_params);
    for (uint32_t p = 0; p < num_params; ++p) {
      if (!reader.TensorValue(&checkpoint.adam_m[p], "adam m tensor")) {
        return reader.status();
      }
    }
    for (uint32_t p = 0; p < num_params; ++p) {
      if (!reader.TensorValue(&checkpoint.adam_v[p], "adam v tensor")) {
        return reader.status();
      }
    }
  }
  if (!reader.exhausted()) {
    reader.Fail("trailing bytes after checkpoint payload");
    return reader.status();
  }
  return checkpoint;
}

}  // namespace

StatusOr<TrainCheckpoint> LoadCheckpoint(const std::string& path) {
  return LoadCheckpoint(path, /*expected_tag=*/"");
}

StatusOr<TrainCheckpoint> LoadCheckpoint(const std::string& path,
                                         const std::string& expected_tag) {
  StatusOr<TrainCheckpoint> primary = LoadCheckpointFile(path, expected_tag);
  if (primary.has_value()) {
    return primary;
  }
  // Fallback to the rotated previous generation — but only for conditions
  // where retrying the primary cannot help: corruption (kDataLoss), a
  // missing primary (kNotFound, e.g. a crash between the two rotation
  // renames), or a primary tagged for a different model (kFailedPrecondition,
  // i.e. another model's rotation clobbered this slot). Transient read faults
  // (kUnavailable) stay errors so the caller's retry policy targets the
  // *newer* snapshot instead of silently resuming from an older one. The
  // fallback is tag-checked too: an alien .prev must not rescue an alien
  // primary.
  const StatusCode code = primary.status().code();
  if (code != StatusCode::kDataLoss && code != StatusCode::kNotFound &&
      code != StatusCode::kFailedPrecondition) {
    return primary;
  }
  const std::string prev_path = path + ".prev";
  StatusOr<TrainCheckpoint> previous = LoadCheckpointFile(prev_path, expected_tag);
  if (!previous.has_value()) {
    return primary;  // Report the primary's failure; .prev is best-effort.
  }
  SEASTAR_LOG(Warning) << path << ": unusable (" << primary.status().ToString()
                       << "); falling back to previous snapshot " << prev_path << " (epoch "
                       << previous->epoch << ")";
  return previous;
}

std::string CheckpointPathForModel(const std::string& base_path, const std::string& model_id) {
  std::string tag;
  tag.reserve(model_id.size());
  for (char c : model_id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    tag.push_back(ok ? c : '_');
  }
  if (tag.empty()) {
    tag = "model";
  }
  const size_t slash = base_path.find_last_of('/');
  const size_t dot = base_path.find_last_of('.');
  // Insert before the extension so ".tmp"/".prev" suffixes stay last:
  // "fleet.ckpt" -> "fleet.<tag>.ckpt"; extensionless paths just append.
  if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) {
    return base_path.substr(0, dot) + "." + tag + base_path.substr(dot);
  }
  return base_path + "." + tag;
}

}  // namespace seastar
