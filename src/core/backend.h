// Backend selection: which execution strategy runs a compiled vertex
// program. Every GNN model in src/core/models can be trained on any backend,
// which is how the paper's three-system comparison (Seastar vs DGL vs PyG)
// is realized as one codebase with three strategies.
#ifndef SRC_CORE_BACKEND_H_
#define SRC_CORE_BACKEND_H_

#include <optional>
#include <string>

#include "src/exec/baseline_executor.h"
#include "src/exec/seastar_executor.h"

namespace seastar {

enum class Backend {
  kSeastar,          // Fused kernels, vertex-parallel edge-sequential (this paper).
  kSeastarNoFusion,  // Ablation: Seastar kernels but one unit per operator.
  kDglLike,          // Whole-graph tensors + BinaryReduce + binary-search kernels.
  kPygLike,          // Whole-graph tensors, full gather/scatter materialization.
};

const char* BackendName(Backend backend);

// Parses "seastar" / "dgl" / "pyg" / "seastar-nofuse" (used by bench CLIs).
// Returns nullopt for unrecognized names so CLIs can report the bad flag and
// exit cleanly instead of aborting.
std::optional<Backend> BackendFromString(const std::string& name);

// The accepted spellings for BackendFromString, for CLI error messages.
const char* BackendChoices();

struct BackendConfig {
  Backend backend = Backend::kSeastar;
  SeastarExecutorOptions seastar_options;
  BaselineExecutorOptions baseline_options;
};

// Runs `gir` under `config`. Thin dispatch wrapper over the executors; `ctx`
// carries the per-run state (seed values, retain set, profiler) through to
// whichever executor the config selects — see RunContext in exec/runtime.h.
//
// Deprecated: constructs a throwaway executor per call and can only name the
// whole-graph strategies. Build an Executor once (ExecutorFactory::Create or
// MakeExecutor(config)) and run through an ExecutionSession instead — see
// src/exec/executor.h.
[[deprecated(
    "build an Executor via ExecutorFactory::Create / MakeExecutor and run through an "
    "ExecutionSession (src/exec/executor.h)")]]
RunResult RunWithBackend(const BackendConfig& config, const GirGraph& gir, const Graph& graph,
                         const FeatureMap& features, const RunContext& ctx = {});

// True when the backend materializes (and must keep alive for backward)
// every intermediate — i.e. the whole-graph tensor systems.
bool BackendSavesIntermediates(Backend backend);

}  // namespace seastar

#endif  // SRC_CORE_BACKEND_H_
