#include "src/core/executor_factory.h"

#include <cstdlib>
#include <utility>

#include "src/common/logging.h"

namespace seastar {

StatusOr<ExecutorSpec> ParseExecutorSpec(const std::string& spec) {
  ExecutorSpec parsed;
  const size_t colon = spec.find(':');
  const std::string kind = colon == std::string::npos ? spec : spec.substr(0, colon);
  if (kind == "seastar" || kind == "dgl" || kind == "pyg" || kind == "sharded") {
    parsed.kind = kind;
  } else if (kind == "seastar-nofuse" || kind == "nofuse") {
    parsed.kind = "seastar-nofuse";
  } else {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << "unknown executor '" << spec << "' (choices: " << ExecutorFactory::Choices()
           << ")";
  }
  if (colon == std::string::npos) {
    return parsed;
  }
  if (parsed.kind != "sharded") {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << "executor '" << kind << "' takes no parameter (got '" << spec << "')";
  }
  const std::string arg = spec.substr(colon + 1);
  if (arg.empty() || arg.find_first_not_of("0123456789") != std::string::npos) {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << "bad shard count in '" << spec << "': want sharded:<N> with N >= 1";
  }
  const long shards = std::strtol(arg.c_str(), nullptr, 10);
  if (shards < 1 || shards > 1024) {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << "shard count " << arg << " out of range [1, 1024]";
  }
  parsed.num_shards = static_cast<int>(shards);
  return parsed;
}

StatusOr<std::unique_ptr<Executor>> ExecutorFactory::Create(
    const std::string& spec, const ExecutorFactoryOptions& options) {
  StatusOr<ExecutorSpec> parsed = ParseExecutorSpec(spec);
  if (!parsed) {
    return parsed.status();
  }
  return Create(*parsed, options);
}

StatusOr<std::unique_ptr<Executor>> ExecutorFactory::Create(
    const ExecutorSpec& spec, const ExecutorFactoryOptions& options) {
  if (spec.kind == "seastar") {
    return std::unique_ptr<Executor>(std::make_unique<SeastarExecutor>(options.seastar_options));
  }
  if (spec.kind == "seastar-nofuse") {
    SeastarExecutorOptions seastar_options = options.seastar_options;
    seastar_options.enable_fusion = false;
    return std::unique_ptr<Executor>(std::make_unique<SeastarExecutor>(seastar_options));
  }
  if (spec.kind == "dgl" || spec.kind == "pyg") {
    BaselineExecutorOptions baseline_options = options.baseline_options;
    baseline_options.flavor =
        spec.kind == "dgl" ? BaselineFlavor::kDglLike : BaselineFlavor::kPygLike;
    return std::unique_ptr<Executor>(std::make_unique<BaselineExecutor>(baseline_options));
  }
  if (spec.kind == "sharded") {
    if (spec.num_shards < 1) {
      return ErrorStatus(StatusCode::kInvalidArgument)
             << "sharded executor needs num_shards >= 1, got " << spec.num_shards;
    }
    ShardRuntimeOptions shard_options;
    shard_options.num_shards = spec.num_shards;
    shard_options.seastar_options = options.seastar_options;
    shard_options.use_pool_slices = options.use_pool_slices;
    return std::unique_ptr<Executor>(std::make_unique<ShardRuntime>(shard_options));
  }
  return ErrorStatus(StatusCode::kInvalidArgument)
         << "unknown executor kind '" << spec.kind << "' (choices: " << Choices() << ")";
}

const char* ExecutorFactory::Choices() { return "seastar|seastar-nofuse|dgl|pyg|sharded[:N]"; }

std::unique_ptr<Executor> MakeExecutor(const BackendConfig& config) {
  switch (config.backend) {
    case Backend::kSeastar:
      return std::make_unique<SeastarExecutor>(config.seastar_options);
    case Backend::kSeastarNoFusion: {
      SeastarExecutorOptions options = config.seastar_options;
      options.enable_fusion = false;
      return std::make_unique<SeastarExecutor>(options);
    }
    case Backend::kDglLike: {
      BaselineExecutorOptions options = config.baseline_options;
      options.flavor = BaselineFlavor::kDglLike;
      return std::make_unique<BaselineExecutor>(options);
    }
    case Backend::kPygLike: {
      BaselineExecutorOptions options = config.baseline_options;
      options.flavor = BaselineFlavor::kPygLike;
      return std::make_unique<BaselineExecutor>(options);
    }
  }
  SEASTAR_LOG(Fatal) << "unknown backend";
  return nullptr;
}

}  // namespace seastar
