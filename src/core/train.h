// Full-graph node-classification training loop with the paper's measurement
// protocol (§7): N epochs, the first few discarded as warm-up, average
// per-epoch wall time and peak tensor memory reported. A soft memory budget
// reproduces the paper's OOM outcomes without exhausting host RAM.
//
// The loop is fault-tolerant: it checkpoints (atomically, with checksums),
// resumes, watches every epoch's loss and gradients for NaN/Inf and
// divergence, and recovers from transient faults (injected allocation
// failures, numerical blow-ups) by rolling back to the last snapshot with a
// learning-rate backoff, bounded by `max_retries`. Failures it cannot
// recover from come back as a structured TrainResult (failed + error) —
// TrainNodeClassification never aborts the process on runtime conditions.
#ifndef SRC_CORE_TRAIN_H_
#define SRC_CORE_TRAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/models/model.h"
#include "src/graph/datasets.h"

namespace seastar {

class Profiler;

struct TrainConfig {
  int epochs = 200;
  int warmup_epochs = 3;  // Discarded from timing (paper §7).
  float learning_rate = 1e-2f;
  bool use_adam = true;
  // 0 = unlimited. When the live tensor bytes exceed this during an epoch,
  // training stops and the result is flagged oom.
  uint64_t memory_budget_bytes = 0;
  bool verbose = false;
  // When set, the loop installs this profiler on the model for the run and
  // records epoch / forward / backward / optimizer spans around the
  // executors' per-unit spans. Recovery actions and checkpoint writes get
  // "recovery" / "checkpoint" spans. Null = no recording, no overhead.
  Profiler* profiler = nullptr;

  // ---- Fault tolerance ---------------------------------------------------

  // Snapshot cadence in completed epochs; 0 disables periodic snapshots.
  // Each snapshot both refreshes the in-memory rollback anchor and, when
  // `checkpoint_path` is set, atomically rewrites the file.
  int checkpoint_every = 0;
  // Checkpoint file; empty keeps snapshots in memory only (rollback still
  // works, resume across processes does not).
  std::string checkpoint_path;
  // Restore from `checkpoint_path` before the first epoch. The restored run
  // continues bit-identically to the uninterrupted one (parameters, Adam
  // moments and step counter, model RNG stream, epoch counter, learning
  // rate). A missing/corrupt file yields failed=true, never an abort.
  bool resume = false;
  // Per-epoch numerical-health monitor: NaN/Inf scan of the loss and every
  // parameter gradient, plus loss-divergence detection.
  bool health_checks = true;
  // A finite loss above this is treated as divergence.
  float divergence_threshold = 1e6f;
  // Recovery policy: rollback to the last snapshot with learning_rate *=
  // lr_backoff, at most max_retries times per run; the retry budget is also
  // carried across resumes via the checkpoint.
  int max_retries = 3;
  float lr_backoff = 0.5f;
};

// One recovery action taken by the loop, mirrored as a Profiler span
// (category "recovery") when profiling is on.
struct RecoveryEvent {
  int epoch = 0;        // Epoch whose failure triggered the recovery.
  std::string kind;     // "non_finite_loss" | "non_finite_grad" | "divergence" |
                        // "alloc_failure" | "checkpoint_error"
  std::string detail;   // Human-readable specifics (offending parameter, loss value, ...).
  int retry = 0;        // 1-based count of recoveries so far (this run + resumed).
  float lr_after = 0;   // Learning rate in effect after the backoff.
  int rollback_epoch = 0;  // Epoch the run was rolled back to (-1 if none).
};

struct TrainResult {
  double avg_epoch_ms = 0.0;   // Over post-warmup epochs.
  double total_seconds = 0.0;
  float final_loss = 0.0f;
  float train_accuracy = 0.0f;
  uint64_t peak_bytes = 0;     // Max over epochs of tensor-allocator peak.
  bool oom = false;
  // Completed epochs toward config.epochs, including epochs restored from a
  // checkpoint on resume (start_epoch of them ran in an earlier process).
  int epochs_run = 0;
  int start_epoch = 0;

  // ---- Fault-tolerance outcome -------------------------------------------
  bool failed = false;         // Unrecoverable: bad resume or retries exhausted.
  std::string error;           // Status-style message when failed.
  int checkpoints_written = 0;
  int rollbacks = 0;
  std::vector<RecoveryEvent> recovery_events;
};

// Trains `model` on `data` (cross-entropy on data.train_mask) and reports
// the paper's metrics plus the fault-tolerance outcome.
TrainResult TrainNodeClassification(GnnModel& model, const Dataset& data,
                                    const TrainConfig& config);

}  // namespace seastar

#endif  // SRC_CORE_TRAIN_H_
