// Full-graph node-classification training loop with the paper's measurement
// protocol (§7): N epochs, the first few discarded as warm-up, average
// per-epoch wall time and peak tensor memory reported. A soft memory budget
// reproduces the paper's OOM outcomes without exhausting host RAM.
#ifndef SRC_CORE_TRAIN_H_
#define SRC_CORE_TRAIN_H_

#include <cstdint>
#include <vector>

#include "src/core/models/model.h"
#include "src/graph/datasets.h"

namespace seastar {

class Profiler;

struct TrainConfig {
  int epochs = 200;
  int warmup_epochs = 3;  // Discarded from timing (paper §7).
  float learning_rate = 1e-2f;
  bool use_adam = true;
  // 0 = unlimited. When the live tensor bytes exceed this during an epoch,
  // training stops and the result is flagged oom.
  uint64_t memory_budget_bytes = 0;
  bool verbose = false;
  // When set, the loop installs this profiler on the model for the run and
  // records epoch / forward / backward / optimizer spans around the
  // executors' per-unit spans. Null = no recording, no overhead.
  Profiler* profiler = nullptr;
};

struct TrainResult {
  double avg_epoch_ms = 0.0;   // Over post-warmup epochs.
  double total_seconds = 0.0;
  float final_loss = 0.0f;
  float train_accuracy = 0.0f;
  uint64_t peak_bytes = 0;     // Max over epochs of tensor-allocator peak.
  bool oom = false;
  int epochs_run = 0;
};

// Trains `model` on `data` (cross-entropy on data.train_mask) and reports
// the paper's metrics.
TrainResult TrainNodeClassification(GnnModel& model, const Dataset& data,
                                    const TrainConfig& config);

}  // namespace seastar

#endif  // SRC_CORE_TRAIN_H_
