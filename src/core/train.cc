#include "src/core/train.h"

#include <algorithm>
#include <memory>

#include "src/common/logging.h"
#include "src/common/profiler.h"
#include "src/common/stopwatch.h"
#include "src/core/nn.h"
#include "src/tensor/allocator.h"
#include "src/tensor/autograd.h"
#include "src/tensor/ops.h"

namespace seastar {

TrainResult TrainNodeClassification(GnnModel& model, const Dataset& data,
                                    const TrainConfig& config) {
  TrainResult result;
  TensorAllocator& allocator = TensorAllocator::Get();
  allocator.SetSoftBudgetBytes(config.memory_budget_bytes);

  Profiler* profiler =
      config.profiler != nullptr && config.profiler->enabled() ? config.profiler : nullptr;
  model.SetProfiler(profiler);

  std::vector<Var> parameters = model.Parameters();
  std::unique_ptr<Adam> adam;
  std::unique_ptr<Sgd> sgd;
  if (config.use_adam) {
    adam = std::make_unique<Adam>(parameters, config.learning_rate);
  } else {
    sgd = std::make_unique<Sgd>(parameters, config.learning_rate);
  }

  Stopwatch total_watch;
  double timed_ms = 0.0;
  int timed_epochs = 0;
  Tensor last_logits;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Stopwatch epoch_watch;
    allocator.ResetPeak();

    ProfileScope epoch_span(profiler, "epoch " + std::to_string(epoch), "train");
    Var logits;
    Var loss;
    {
      ProfileScope forward_span(profiler, "forward", "train");
      logits = model.Forward(/*training=*/true);
      loss = ag::NllLoss(ag::LogSoftmax(logits), data.labels, data.train_mask);
    }
    {
      ProfileScope backward_span(profiler, "backward", "train");
      Backward(loss, Tensor::Ones({1}));
    }
    {
      ProfileScope step_span(profiler, "optimizer_step", "train");
      if (adam != nullptr) {
        adam->Step();
        adam->ZeroGrad();
      } else {
        sgd->Step();
        sgd->ZeroGrad();
      }
    }

    result.final_loss = loss.value().at(0);
    last_logits = logits.value();
    result.peak_bytes = std::max(result.peak_bytes, allocator.peak_bytes());
    ++result.epochs_run;

    const double epoch_ms = epoch_watch.ElapsedMillis();
    if (epoch >= config.warmup_epochs) {
      timed_ms += epoch_ms;
      ++timed_epochs;
    }
    if (config.verbose && (epoch % 20 == 0 || epoch + 1 == config.epochs)) {
      SEASTAR_LOG(Info) << model.name() << " epoch " << epoch << " loss=" << result.final_loss
                        << " (" << epoch_ms << " ms)";
    }
    if (config.memory_budget_bytes != 0 && allocator.budget_exceeded()) {
      result.oom = true;
      break;
    }
  }

  model.SetProfiler(nullptr);
  allocator.SetSoftBudgetBytes(0);
  result.total_seconds = total_watch.ElapsedSeconds();
  result.avg_epoch_ms = timed_epochs > 0 ? timed_ms / timed_epochs : 0.0;
  if (last_logits.defined()) {
    result.train_accuracy = Accuracy(last_logits, data.labels, data.train_mask);
  }
  return result;
}

}  // namespace seastar
