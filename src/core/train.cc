#include "src/core/train.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>

#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/profiler.h"
#include "src/common/stopwatch.h"
#include "src/core/checkpoint.h"
#include "src/core/nn.h"
#include "src/parallel/thread_pool.h"
#include "src/tensor/allocator.h"
#include "src/tensor/autograd.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

// Registry handles for the training loop, resolved once per process. The
// loop touches them once per epoch / recovery — far off the per-vertex hot
// path — but the same caching discipline applies: no registry lookups after
// the first epoch, which the steady-state overhead test asserts.
struct TrainMetrics {
  metrics::Counter* epochs;
  metrics::Counter* recoveries;
  metrics::Counter* checkpoints;
  metrics::Counter* checkpoint_errors;
  metrics::Counter* failures;
  metrics::Histogram* epoch_ms;
  metrics::Gauge* loss;
};

const TrainMetrics& GetTrainMetrics() {
  static const TrainMetrics metrics = [] {
    metrics::MetricsRegistry& r = metrics::MetricsRegistry::Get();
    TrainMetrics m;
    m.epochs = r.GetCounter("seastar_train_epochs_total");
    m.recoveries = r.GetCounter("seastar_train_recoveries_total");
    m.checkpoints = r.GetCounter("seastar_train_checkpoints_written_total");
    m.checkpoint_errors = r.GetCounter("seastar_train_checkpoint_errors_total");
    m.failures = r.GetCounter("seastar_train_failures_total");
    m.epoch_ms = r.GetHistogram("seastar_train_epoch_ms");
    m.loss = r.GetGauge("seastar_train_loss");
    return m;
  }();
  return metrics;
}

bool TensorFinite(const Tensor& t) {
  const float* p = t.data();
  const int64_t n = t.numel();
  // Per-epoch health scan over every gradient: chunked across the thread
  // pool (order-independent — any chunk finding a NaN/Inf flips the flag).
  constexpr int64_t kScanGrain = 65536;
  if (n <= kScanGrain) {
    for (int64_t i = 0; i < n; ++i) {
      if (!std::isfinite(p[i])) {
        return false;
      }
    }
    return true;
  }
  std::atomic<bool> finite{true};
  ParallelFor(
      n,
      [&](int64_t begin, int64_t end) {
        if (!finite.load(std::memory_order_relaxed)) {
          return;
        }
        for (int64_t i = begin; i < end; ++i) {
          if (!std::isfinite(p[i])) {
            finite.store(false, std::memory_order_relaxed);
            return;
          }
        }
      },
      kScanGrain);
  return finite.load(std::memory_order_relaxed);
}

// "" when every defined gradient is finite, else the index of the first
// offending parameter (for the recovery log).
std::string FirstNonFiniteGrad(const std::vector<Var>& parameters) {
  for (size_t p = 0; p < parameters.size(); ++p) {
    const Tensor& grad = parameters[p].grad();
    if (grad.defined() && !TensorFinite(grad)) {
      return "parameter " + std::to_string(p) + " (" + grad.ShapeString() + ")";
    }
  }
  return "";
}

// Rollback anchor / on-disk snapshot. Parameter and moment tensors are
// deep-copied: the optimizer mutates them in place every step, and a
// snapshot that shared their storage would silently track the live run.
TrainCheckpoint MakeSnapshot(GnnModel& model, const std::vector<Var>& parameters,
                             const Adam* adam, int epoch, float lr, int retries_used,
                             float best_loss) {
  TrainCheckpoint snapshot;
  snapshot.epoch = epoch;
  snapshot.learning_rate = lr;
  snapshot.retries_used = retries_used;
  snapshot.best_loss = best_loss;
  if (const Rng* rng = model.MutableRng(); rng != nullptr) {
    snapshot.model_rng = rng->SaveState();
  }
  snapshot.parameters.reserve(parameters.size());
  for (const Var& param : parameters) {
    snapshot.parameters.push_back(param.value().Clone());
  }
  if (adam != nullptr) {
    snapshot.has_adam = true;
    snapshot.adam_t = adam->step_count();
    for (const Tensor& m : adam->moments_m()) {
      snapshot.adam_m.push_back(m.Clone());
    }
    for (const Tensor& v : adam->moments_v()) {
      snapshot.adam_v.push_back(v.Clone());
    }
  }
  return snapshot;
}

// Copies a snapshot back into the live parameters / optimizer / model RNG.
// Returns a Status instead of CHECKing: a file-loaded checkpoint is
// untrusted (it may belong to a different model), and mismatches must
// surface as a structured error.
Status RestoreSnapshot(const TrainCheckpoint& snapshot, GnnModel& model,
                       std::vector<Var>& parameters, Adam* adam, Sgd* sgd) {
  if (snapshot.parameters.size() != parameters.size()) {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << "checkpoint holds " << snapshot.parameters.size() << " parameters, model has "
           << parameters.size();
  }
  for (size_t p = 0; p < parameters.size(); ++p) {
    Tensor& value = parameters[p].mutable_value();
    const Tensor& saved = snapshot.parameters[p];
    if (saved.shape() != value.shape()) {
      return ErrorStatus(StatusCode::kInvalidArgument)
             << "checkpoint parameter " << p << " is " << saved.ShapeString() << ", model expects "
             << value.ShapeString();
    }
  }
  if (snapshot.has_adam && adam == nullptr) {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << "checkpoint carries Adam state but the run uses SGD";
  }
  if (!snapshot.has_adam && adam != nullptr) {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << "checkpoint carries no Adam state but the run uses Adam";
  }
  for (size_t p = 0; p < parameters.size(); ++p) {
    Tensor& value = parameters[p].mutable_value();
    std::copy(snapshot.parameters[p].data(), snapshot.parameters[p].data() + value.numel(),
              value.data());
    parameters[p].ClearGrad();
  }
  if (adam != nullptr) {
    if (snapshot.adam_m.size() != parameters.size() ||
        snapshot.adam_v.size() != parameters.size()) {
      return ErrorStatus(StatusCode::kInvalidArgument)
             << "checkpoint Adam moments do not match the parameter count";
    }
    adam->RestoreState(snapshot.adam_m, snapshot.adam_v, snapshot.adam_t);
    adam->set_learning_rate(snapshot.learning_rate);
  }
  if (sgd != nullptr) {
    sgd->set_learning_rate(snapshot.learning_rate);
  }
  if (Rng* rng = model.MutableRng(); rng != nullptr && snapshot.model_rng.has_value()) {
    rng->RestoreState(*snapshot.model_rng);
  }
  return Status::Ok();
}

}  // namespace

TrainResult TrainNodeClassification(GnnModel& model, const Dataset& data,
                                    const TrainConfig& config) {
  TrainResult result;
  TensorAllocator& allocator = TensorAllocator::Get();
  allocator.SetSoftBudgetBytes(config.memory_budget_bytes);
  allocator.ClearInjectedFailure();

  Profiler* profiler =
      config.profiler != nullptr && config.profiler->enabled() ? config.profiler : nullptr;
  model.SetProfiler(profiler);

  std::vector<Var> parameters = model.Parameters();
  std::unique_ptr<Adam> adam;
  std::unique_ptr<Sgd> sgd;
  if (config.use_adam) {
    adam = std::make_unique<Adam>(parameters, config.learning_rate);
  } else {
    sgd = std::make_unique<Sgd>(parameters, config.learning_rate);
  }

  // Ends the run with a structured error; never aborts.
  const auto fail = [&](const Status& status) {
    result.failed = true;
    result.error = status.ToString();
    GetTrainMetrics().failures->Add(1);
    FlightRecorder::Get().Record("train", result.error.c_str());
    SEASTAR_LOG(Error) << "training failed: " << result.error;
    model.SetProfiler(nullptr);
    allocator.SetSoftBudgetBytes(0);
    return result;
  };

  float lr = config.learning_rate;
  float best_loss = std::numeric_limits<float>::max();
  int retries_used = 0;
  int epoch = 0;

  if (config.resume) {
    if (config.checkpoint_path.empty()) {
      return fail(Status::Error(StatusCode::kInvalidArgument,
                                "resume requested but no checkpoint_path configured"));
    }
    StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(config.checkpoint_path);
    if (!loaded.has_value()) {
      return fail(loaded.status());
    }
    if (Status restored = RestoreSnapshot(*loaded, model, parameters, adam.get(), sgd.get());
        !restored.ok()) {
      return fail(Status::Error(restored.code(),
                                config.checkpoint_path + ": " + restored.message()));
    }
    epoch = loaded->epoch;
    lr = loaded->learning_rate;
    retries_used = loaded->retries_used;
    best_loss = loaded->best_loss;
    result.start_epoch = epoch;
    result.epochs_run = epoch;
    if (config.verbose) {
      SEASTAR_LOG(Info) << model.name() << " resumed from " << config.checkpoint_path
                        << " at epoch " << epoch << " (lr " << lr << ")";
    }
  }

  // The rollback anchor: refreshed on the checkpoint cadence, restored on
  // every recovery. Taken up front so epoch-0 failures have a target too.
  TrainCheckpoint rollback =
      MakeSnapshot(model, parameters, adam.get(), epoch, lr, retries_used, best_loss);

  // Refreshes the anchor and, when configured, atomically rewrites the
  // checkpoint file. A failed write (disk full, injected fault) is itself a
  // recoverable condition: it is logged as a recovery event and training
  // continues on the in-memory anchor.
  const auto take_snapshot = [&](int completed_epoch) {
    ProfileScope span(profiler, "checkpoint epoch " + std::to_string(completed_epoch),
                      "checkpoint");
    // Release pooled (cached, non-live) blocks so process footprint at
    // snapshot time reflects live tensors only; the next epoch re-warms the
    // pool from its own frees.
    allocator.Trim();
    rollback =
        MakeSnapshot(model, parameters, adam.get(), completed_epoch, lr, retries_used, best_loss);
    if (config.checkpoint_path.empty()) {
      return;
    }
    if (Status saved = SaveCheckpoint(rollback, config.checkpoint_path); !saved.ok()) {
      SEASTAR_LOG(Warning) << "checkpoint write failed (continuing): " << saved.ToString();
      GetTrainMetrics().checkpoint_errors->Add(1);
      FlightRecorder::Get().Record("train", "checkpoint write failed", completed_epoch);
      result.recovery_events.push_back({.epoch = completed_epoch,
                                        .kind = "checkpoint_error",
                                        .detail = saved.ToString(),
                                        .retry = retries_used,
                                        .lr_after = lr,
                                        .rollback_epoch = -1});
    } else {
      GetTrainMetrics().checkpoints->Add(1);
      ++result.checkpoints_written;
    }
  };

  Stopwatch total_watch;
  double timed_ms = 0.0;
  int timed_epochs = 0;
  int processed_epochs = 0;  // Epochs executed in this process (for warmup).
  Tensor last_logits;

  while (epoch < config.epochs) {
    Stopwatch epoch_watch;
    allocator.ResetPeak();

    // What went wrong this epoch ("" = healthy) and the log detail.
    std::string problem;
    std::string detail;

    ProfileScope epoch_span(profiler, "epoch " + std::to_string(epoch), "train");
    const uint64_t epoch_pool_hits_before = allocator.pool_hits();
    const uint64_t epoch_fresh_mallocs_before = allocator.fresh_mallocs();
    Var logits;
    Var loss;
    float loss_value = 0.0f;
    {
      ProfileScope forward_span(profiler, "forward", "train");
      logits = model.Forward(/*training=*/true);
      loss = ag::NllLoss(ag::LogSoftmax(logits), data.labels, data.train_mask);
      loss_value = loss.value().at(0);
    }
    if (config.health_checks) {
      if (!std::isfinite(loss_value)) {
        problem = "non_finite_loss";
        detail = "loss = " + std::to_string(loss_value);
      } else if (loss_value > config.divergence_threshold) {
        problem = "divergence";
        detail = "loss " + std::to_string(loss_value) + " above threshold " +
                 std::to_string(config.divergence_threshold);
      }
    }
    if (problem.empty()) {
      ProfileScope backward_span(profiler, "backward", "train");
      Backward(loss, Tensor::Ones({1}));
      if (config.health_checks) {
        if (std::string bad = FirstNonFiniteGrad(parameters); !bad.empty()) {
          problem = "non_finite_grad";
          detail = "NaN/Inf gradient in " + bad;
        }
      }
    }
    if (problem.empty()) {
      ProfileScope step_span(profiler, "optimizer_step", "train");
      if (adam != nullptr) {
        adam->Step();
        adam->ZeroGrad();
      } else {
        sgd->Step();
        sgd->ZeroGrad();
      }
    }

    // Allocator verdicts, polled once per epoch. A soft-budget breach is the
    // paper's OOM outcome: graceful stop, oom flagged. An injected
    // allocation failure is transient by definition: recover.
    if (config.memory_budget_bytes != 0 && allocator.budget_exceeded()) {
      result.final_loss = loss_value;
      result.peak_bytes = std::max(result.peak_bytes, allocator.peak_bytes());
      result.oom = true;
      result.epochs_run = epoch + 1;
      FlightRecorder::Get().Record("train", "soft memory budget exceeded (oom stop)", epoch,
                                   static_cast<int64_t>(result.peak_bytes));
      break;
    }
    if (allocator.failure_injected()) {
      allocator.ClearInjectedFailure();
      if (problem.empty()) {
        problem = "alloc_failure";
        detail = "injected allocation failure mid-epoch";
      }
    }

    if (!problem.empty()) {
      ++retries_used;
      ++result.rollbacks;
      GetTrainMetrics().recoveries->Add(1);
      FlightRecorder::Get().Record("train", problem.c_str(), epoch, retries_used);
      {
        ProfileScope recovery_span(profiler, problem, "recovery");
        // Grads of a poisoned epoch must not leak into the retry.
        if (adam != nullptr) {
          adam->ZeroGrad();
        } else {
          sgd->ZeroGrad();
        }
        lr *= config.lr_backoff;
        if (adam != nullptr) {
          adam->set_learning_rate(lr);
        } else {
          sgd->set_learning_rate(lr);
        }
        // The anchor matches this model/optimizer by construction; restore
        // cannot fail here.
        rollback.learning_rate = lr;
        Status restored = RestoreSnapshot(rollback, model, parameters, adam.get(), sgd.get());
        SEASTAR_CHECK(restored.ok()) << restored.ToString();
        // A recovery is a memory-pressure moment (the poisoned epoch's
        // tensors were just dropped): return the pool's cache to the OS
        // before retrying.
        allocator.Trim();
      }
      result.recovery_events.push_back({.epoch = epoch,
                                        .kind = problem,
                                        .detail = detail,
                                        .retry = retries_used,
                                        .lr_after = lr,
                                        .rollback_epoch = rollback.epoch});
      SEASTAR_LOG(Warning) << model.name() << " epoch " << epoch << ": " << problem << " ("
                           << detail << "); rollback to epoch " << rollback.epoch << ", lr -> "
                           << lr << " (retry " << retries_used << "/" << config.max_retries
                           << ")";
      if (retries_used > config.max_retries) {
        return fail(ErrorStatus(StatusCode::kResourceExhausted)
                    << "retries exhausted after " << retries_used << " recoveries; last failure: "
                    << problem << " at epoch " << epoch << " (" << detail << ")");
      }
      epoch = rollback.epoch;
      continue;
    }

    result.final_loss = loss_value;
    last_logits = logits.value();
    result.peak_bytes = std::max(result.peak_bytes, allocator.peak_bytes());
    best_loss = std::min(best_loss, loss_value);
    if (ProfileEvent* event = epoch_span.event()) {
      event->pool_hits = static_cast<int64_t>(allocator.pool_hits() - epoch_pool_hits_before);
      event->pool_misses =
          static_cast<int64_t>(allocator.fresh_mallocs() - epoch_fresh_mallocs_before);
    }

    const double epoch_ms = epoch_watch.ElapsedMillis();
    {
      const TrainMetrics& metrics = GetTrainMetrics();
      metrics.epochs->Add(1);
      metrics.epoch_ms->Record(epoch_ms);
      metrics.loss->Set(loss_value);
    }
    ++processed_epochs;
    if (processed_epochs > config.warmup_epochs) {
      timed_ms += epoch_ms;
      ++timed_epochs;
    }
    if (config.verbose && (epoch % 20 == 0 || epoch + 1 == config.epochs)) {
      SEASTAR_LOG(Info) << model.name() << " epoch " << epoch << " loss=" << result.final_loss
                        << " (" << epoch_ms << " ms)";
    }

    ++epoch;
    result.epochs_run = epoch;
    if (config.checkpoint_every > 0 && epoch % config.checkpoint_every == 0 &&
        epoch < config.epochs) {
      take_snapshot(epoch);
    }
  }

  // Final checkpoint so a follow-up run resumes from the end state.
  if (!result.oom && !config.checkpoint_path.empty() && result.epochs_run == config.epochs) {
    take_snapshot(config.epochs);
  }

  model.SetProfiler(nullptr);
  allocator.SetSoftBudgetBytes(0);
  result.total_seconds = total_watch.ElapsedSeconds();
  result.avg_epoch_ms = timed_epochs > 0 ? timed_ms / timed_epochs : 0.0;
  if (last_logits.defined()) {
    result.train_accuracy = Accuracy(last_logits, data.labels, data.train_mask);
  }
  return result;
}

}  // namespace seastar
