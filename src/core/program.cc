#include "src/core/program.h"

#include <sstream>

#include "src/common/deadline.h"
#include "src/common/logging.h"
#include "src/common/profiler.h"
#include "src/core/executor_factory.h"
#include "src/gir/fusion.h"
#include "src/gir/passes.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

std::string ShapeString(const std::vector<int64_t>& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    os << (i > 0 ? ", " : "") << shape[i];
  }
  os << "]";
  return os.str();
}

// Checks that every feature the traced program declared is present with the
// declared shape, and fails naming the offending input — a mis-bound feature
// otherwise surfaces as an opaque out-of-bounds read deep inside a kernel.
void ValidateInputs(const GirGraph& gir, const Graph& graph,
                    const VertexProgram::Inputs& inputs) {
  const int64_t num_vertices = graph.num_vertices();
  const int64_t num_edges = graph.num_edges();
  for (const Node& node : gir.nodes()) {
    if (node.kind == OpKind::kInputTypedSrc) {
      auto it = inputs.typed_vertex.find(node.name);
      SEASTAR_CHECK(it != inputs.typed_vertex.end())
          << "vertex program: missing typed_vertex input '" << node.name << "'";
      const Tensor& value = it->second.value();
      SEASTAR_CHECK(value.defined()) << "vertex program: typed_vertex input '" << node.name
                                     << "' is an undefined tensor";
      SEASTAR_CHECK(value.ndim() == 3 && value.dim(0) == graph.num_edge_types() &&
                    value.dim(1) == num_vertices && value.dim(2) == node.width)
          << "vertex program: typed_vertex input '" << node.name << "' has shape "
          << ShapeString(value.shape()) << ", expected [" << graph.num_edge_types() << ", "
          << num_vertices << ", " << node.width << "]";
      continue;
    }
    if (node.kind != OpKind::kInput) {
      continue;
    }
    if (node.type == GraphType::kEdge) {
      auto it = inputs.edge.find(node.name);
      SEASTAR_CHECK(it != inputs.edge.end())
          << "vertex program: missing edge input '" << node.name << "'";
      const Tensor& value = it->second.value();
      SEASTAR_CHECK(value.defined())
          << "vertex program: edge input '" << node.name << "' is an undefined tensor";
      SEASTAR_CHECK(value.ndim() == 2 && value.dim(0) == num_edges && value.dim(1) == node.width)
          << "vertex program: edge input '" << node.name << "' has shape "
          << ShapeString(value.shape()) << ", expected [" << num_edges << ", " << node.width
          << "]";
    } else {
      auto it = inputs.vertex.find(node.name);
      SEASTAR_CHECK(it != inputs.vertex.end())
          << "vertex program: missing vertex input '" << node.name << "'";
      const Tensor& value = it->second.value();
      SEASTAR_CHECK(value.defined())
          << "vertex program: vertex input '" << node.name << "' is an undefined tensor";
      SEASTAR_CHECK(value.ndim() == 2 && value.dim(0) == num_vertices &&
                    value.dim(1) == node.width)
          << "vertex program: vertex input '" << node.name << "' has shape "
          << ShapeString(value.shape()) << ", expected [" << num_vertices << ", " << node.width
          << "]";
    }
  }
}

}  // namespace

struct VertexProgram::Data {
  GirGraph forward;
  BackwardGir backward;
};

VertexProgram VertexProgram::Compile(GirBuilder&& builder) {
  auto data = std::make_shared<Data>();
  PassResult passes = RunStandardPasses(builder.graph());
  data->forward = std::move(passes.graph);
  SEASTAR_CHECK_EQ(data->forward.outputs().size(), 1u)
      << "a vertex program must have exactly one output";
  data->backward = BuildBackward(data->forward, data->forward.outputs()[0]);
  OptimizeBackward(&data->backward);
  VertexProgram program;
  program.data_ = std::move(data);
  return program;
}

const GirGraph& VertexProgram::forward() const {
  SEASTAR_CHECK(data_ != nullptr);
  return data_->forward;
}

const BackwardGir& VertexProgram::backward() const {
  SEASTAR_CHECK(data_ != nullptr);
  return data_->backward;
}

Var VertexProgram::Run(const Inputs& inputs, const ExecutionSession& session) const {
  SEASTAR_CHECK(data_ != nullptr);
  SEASTAR_CHECK(session.defined()) << "vertex program: undefined execution session";
  // Layer-boundary deadline poll: a model Forward that chains several
  // programs aborts between layers without entering the next executor run.
  CheckExecutionDeadline("vertex program");
  const std::shared_ptr<const Data> data = data_;
  Profiler* profiler = session.profiler();

  ValidateInputs(data->forward, session.graph(), inputs);

  // Bind runtime tensors.
  FeatureMap features;
  for (const auto& [key, var] : inputs.vertex) {
    features.vertex[key] = var.value();
  }
  for (const auto& [key, var] : inputs.edge) {
    features.edge[key] = var.value();
  }
  for (const auto& [key, var] : inputs.typed_vertex) {
    features.typed_vertex[key] = var.value();
  }

  // What autograd retains from the forward pass: exactly the values the
  // backward GIR reads through its (seeded) forward-copy nodes. Everything
  // else is a temporary the framework frees eagerly.
  std::vector<int32_t> forward_retain;
  for (size_t fwd_id = 0; fwd_id < data->backward.forward_copy.size(); ++fwd_id) {
    if (data->backward.forward_copy[fwd_id] >= 0) {
      forward_retain.push_back(static_cast<int32_t>(fwd_id));
    }
  }
  RunResult fwd;
  {
    ProfileScope forward_span(profiler, "vertex_program/forward", "program");
    RunContext forward_ctx;
    forward_ctx.retain = &forward_retain;
    forward_ctx.profiler = profiler;
    fwd = session.Execute(data->forward, features, forward_ctx);
  }
  SEASTAR_CHECK_EQ(fwd.outputs.size(), 1u);
  Tensor output = fwd.outputs.begin()->second;

  // Assemble the tape inputs: every distinct Var whose gradient the backward
  // GIR produces, together with the backward output names feeding it.
  struct TapeInput {
    Var var;
    std::vector<std::string> grad_outputs;
  };
  std::vector<TapeInput> tape_inputs;
  const auto attach = [&](const Var& var, const std::string& grad_output) {
    for (TapeInput& entry : tape_inputs) {
      if (entry.var.node() == var.node()) {
        entry.grad_outputs.push_back(grad_output);
        return;
      }
    }
    tape_inputs.push_back(TapeInput{var, {grad_output}});
  };
  for (const InputGradInfo& info : data->backward.input_grads) {
    if (info.typed) {
      auto it = inputs.typed_vertex.find(info.key);
      SEASTAR_CHECK(it != inputs.typed_vertex.end()) << "missing typed input " << info.key;
      attach(it->second, info.output_name);
    } else if (info.access == GraphType::kEdge) {
      auto it = inputs.edge.find(info.key);
      SEASTAR_CHECK(it != inputs.edge.end()) << "missing edge input " << info.key;
      attach(it->second, info.output_name);
    } else {
      auto it = inputs.vertex.find(info.key);
      SEASTAR_CHECK(it != inputs.vertex.end()) << "missing vertex input " << info.key;
      attach(it->second, info.output_name);
    }
  }

  std::vector<Var> tape_vars;
  tape_vars.reserve(tape_inputs.size());
  for (const TapeInput& entry : tape_inputs) {
    tape_vars.push_back(entry.var);
  }

  // The baselines keep every forward intermediate alive for backward
  // (autograd saved tensors); Seastar recomputes in fused kernels and frees
  // eagerly (§5.3), so its saved map is dropped here.
  std::shared_ptr<std::map<int32_t, Tensor>> saved;
  if (session.executor().saves_intermediates()) {
    saved = fwd.saved;
  }

  std::vector<std::vector<std::string>> grad_output_names;
  grad_output_names.reserve(tape_inputs.size());
  for (const TapeInput& entry : tape_inputs) {
    grad_output_names.push_back(entry.grad_outputs);
  }

  // The profiler pointer is captured raw: it must stay alive until backward
  // runs (the training loop owns it for the whole step). The executor is
  // kept alive by its shared_ptr; the view's graph pointer and prepared
  // shard state must outlive the tape (the session contract).
  std::shared_ptr<const Executor> executor = session.executor_ptr();
  GraphView view = session.view();
  auto backward_fn = [data, executor, view, features, saved, grad_output_names,
                      profiler](const Tensor& grad_out) {
    FeatureMap backward_features = features;
    backward_features.vertex[kGradInputKey] = grad_out;

    SeedMap seed;
    const SeedMap* seed_ptr = nullptr;
    if (saved != nullptr) {
      for (size_t fwd_id = 0; fwd_id < data->backward.forward_copy.size(); ++fwd_id) {
        const int32_t bwd_id = data->backward.forward_copy[fwd_id];
        if (bwd_id < 0) {
          continue;
        }
        auto it = saved->find(static_cast<int32_t>(fwd_id));
        if (it != saved->end()) {
          seed.emplace(bwd_id, it->second);
        }
      }
      seed_ptr = &seed;
    }

    // Backward temporaries are released as soon as consumed (empty retain).
    const std::vector<int32_t> no_retain;
    RunResult bwd;
    {
      ProfileScope backward_span(profiler, "vertex_program/backward", "program");
      RunContext backward_ctx;
      backward_ctx.seed = seed_ptr;
      backward_ctx.retain = &no_retain;
      backward_ctx.profiler = profiler;
      // Through the same recovery ladder as the session's forward Execute —
      // a transient shard fault mid-backward must not escape into autograd.
      bwd = ExecuteWithRecovery(*executor, view, data->backward.graph, backward_features,
                                backward_ctx);
    }
    std::vector<Tensor> grads;
    grads.reserve(grad_output_names.size());
    for (const auto& names : grad_output_names) {
      Tensor total;
      for (const std::string& name : names) {
        const Tensor& piece = bwd.outputs.at(name);
        // Single-access inputs share the executor's output tensor directly —
        // cloning a [num_types, N, d] R-GCN gradient stack here would
        // transiently double its footprint. The one output that may alias a
        // caller-owned tensor is the identity adjoint (grad == grad_out
        // itself); that one is cloned so downstream in-place accumulation
        // cannot corrupt the upstream gradient.
        const bool aliases_grad_out = piece.defined() && piece.data() == grad_out.data();
        total = total.defined() ? ops::Add(total, piece)
                                : (aliases_grad_out ? piece.Clone() : piece);
      }
      grads.push_back(std::move(total));
    }
    return grads;
  };

  return ag::CustomOp(std::move(tape_vars), std::move(output), std::move(backward_fn),
                      "vertex_program");
}

Var VertexProgram::Run(const Graph& graph, const Inputs& inputs, const BackendConfig& config,
                       const RunContext& ctx) const {
  // Compatibility shim: one throwaway executor + session per call. Any
  // per-graph prepared state (a shard partition) is rebuilt every call —
  // exactly the waste sessions exist to remove.
  ExecutionSession session = MakeSession(MakeExecutor(config), graph);
  session.set_profiler(ctx.profiler);
  return Run(inputs, session);
}

std::string VertexProgram::DebugString() const {
  SEASTAR_CHECK(data_ != nullptr);
  std::ostringstream os;
  os << "=== forward GIR ===\n" << data_->forward.ToString();
  os << "=== forward plan ===\n"
     << BuildExecutionPlan(data_->forward).ToString(data_->forward);
  os << "=== backward GIR ===\n" << data_->backward.graph.ToString();
  os << "=== backward plan ===\n"
     << BuildExecutionPlan(data_->backward.graph).ToString(data_->backward.graph);
  return os.str();
}

}  // namespace seastar
