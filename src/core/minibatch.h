// Mini-batch GNN training over sampled neighborhoods — the training mode of
// the sampling-based systems (Euler, AliGraph) the paper says Seastar can
// serve as the single-GPU engine for (§8), and the "sampling the
// mini-batches in background" setting of §6.3.3.
//
// Each step samples a k-hop neighborhood block around a batch of seed
// vertices, gathers the block's features, and runs an ordinary GCN over the
// block with the loss restricted to the seeds. The block is a regular Graph
// (degree-sorted CSRs included), so the compiled vertex programs and every
// backend run on it unchanged — including the per-batch degree re-sorting
// the paper notes can be prepared off the critical path.
#ifndef SRC_CORE_MINIBATCH_H_
#define SRC_CORE_MINIBATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/exec/executor.h"
#include "src/graph/datasets.h"
#include "src/graph/sampling.h"

namespace seastar {

class Profiler;

struct MiniBatchConfig {
  int64_t hidden_dim = 16;
  int num_layers = 2;
  // One fanout per layer (outermost hop first); <= 0 means all neighbors.
  std::vector<int> fanouts = {10, 10};
  int64_t batch_size = 64;
  int epochs = 3;
  float learning_rate = 1e-2f;
  uint64_t seed = 0xba7c4;
  // When set, records per-batch spans (sampling vs compute) plus the
  // executors' per-unit spans. Null = no recording, no overhead.
  Profiler* profiler = nullptr;
};

struct MiniBatchResult {
  int batches_run = 0;
  double avg_batch_ms = 0.0;
  float final_loss = 0.0f;
  float seed_accuracy = 0.0f;  // Over the last epoch's seed vertices.
};

// Trains a GCN on `data` with sampled mini-batches through `executor`.
// Every sampled block is a fresh Graph, so each batch binds a transient
// session over its block (per-graph prepared state is rebuilt per block —
// the sampling regime the whole-graph session amortization cannot help).
MiniBatchResult TrainMiniBatchGcn(const Dataset& data, const MiniBatchConfig& config,
                                  std::shared_ptr<const Executor> executor);

}  // namespace seastar

#endif  // SRC_CORE_MINIBATCH_H_
