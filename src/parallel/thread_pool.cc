#include "src/parallel/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/common/logging.h"

namespace seastar {
namespace {

int DefaultNumThreads() {
  const char* env = std::getenv("SEASTAR_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    int n = std::atoi(env);
    if (n >= 1) {
      return n;
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 4;
}

// The per-thread pool override installed by ScopedThreadPool; null means
// Current() falls through to the process pool.
thread_local ThreadPool* tls_pool = nullptr;

}  // namespace

ThreadPool& ThreadPool::Get() {
  // Never destroyed: avoids shutdown races with static tensor destructors.
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads() - 1);
  return *pool;
}

ThreadPool& ThreadPool::Current() { return tls_pool != nullptr ? *tls_pool : Get(); }

ScopedThreadPool::ScopedThreadPool(ThreadPool* pool)
    : previous_(tls_pool), installed_(pool != nullptr) {
  if (installed_) {
    tls_pool = pool;
  }
}

ScopedThreadPool::~ScopedThreadPool() {
  if (installed_) {
    tls_pool = previous_;
  }
}

ThreadPool::ThreadPool(int num_threads) {
  SEASTAR_CHECK_GE(num_threads, 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::RunOnAllWorkers(const std::function<void(int)>& fn) {
  if (workers_.empty()) {
    fn(0);  // No capture needed: the exception already unwinds to the caller.
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_fn_ = &fn;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
    first_exception_ = nullptr;
  }
  work_ready_.notify_all();

  // The calling thread participates too. Its exception is captured rather
  // than propagated immediately: the block must drain before control leaves,
  // or a rethrow would race the workers still executing fn.
  try {
    fn(static_cast<int>(workers_.size()));
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (first_exception_ == nullptr) {
      first_exception_ = std::current_exception();
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return pending_ == 0; });
  current_fn_ = nullptr;
  if (first_exception_ != nullptr) {
    std::exception_ptr rethrown = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(rethrown);
  }
}

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [&] { return shutdown_ || (current_fn_ && generation_ != seen_generation); });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      fn = current_fn_;
    }
    // A throwing task must not unwind the worker's top frame (that would be
    // std::terminate): capture the first exception for the submitting thread
    // and keep draining so the block completes.
    std::exception_ptr thrown;
    try {
      (*fn)(worker_index);
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (thrown != nullptr && first_exception_ == nullptr) {
        first_exception_ = thrown;
      }
      if (--pending_ == 0) {
        work_done_.notify_all();
      }
    }
  }
}

void ParallelFor(int64_t count, const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk) {
  if (count <= 0) {
    return;
  }
  ThreadPool& pool = ThreadPool::Current();
  int participants = pool.num_threads() + 1;
  if (count <= min_chunk || participants == 1) {
    fn(0, count);
    return;
  }
  int64_t chunks = std::min<int64_t>(participants, (count + min_chunk - 1) / min_chunk);
  int64_t chunk_size = (count + chunks - 1) / chunks;
  std::atomic<int64_t> next{0};
  pool.RunOnAllWorkers([&](int) {
    for (;;) {
      int64_t begin = next.fetch_add(chunk_size, std::memory_order_relaxed);
      if (begin >= count) {
        return;
      }
      fn(begin, std::min(begin + chunk_size, count));
    }
  });
}

}  // namespace seastar
