// A deterministic, CPU-hosted simulation of the SIMT execution structures the
// paper's kernel designs rely on (§6.3):
//
//  * a grid of thread blocks with a fixed block size,
//  * feature-adaptive thread (FAT) groups of 2^k <= feature_dim lanes,
//  * three block-dispatch disciplines mirroring the paper's load-balancing
//    alternatives: static partitioning, a per-block atomic counter (the
//    "persistent threads" scheme), and chunked in-order dynamic dispatch
//    (the hardware block scheduler whose block-id/schedule-time correlation
//    the paper exploits).
//
// Workers of the shared ThreadPool play the role of streaming
// multiprocessors: each worker executes one block at a time, and a block's
// cost is whatever its body executes — including masked-idle lane iterations,
// which is how under-occupancy (a 256-thread block doing 2 useful lanes of
// work) becomes a real, measurable cost on the host CPU just as it is on a
// GPU.
#ifndef SRC_PARALLEL_SIMT_H_
#define SRC_PARALLEL_SIMT_H_

#include <cstdint>
#include <functional>

namespace seastar {

// How block ids are handed to the simulated SMs.
enum class BlockSchedule {
  // Contiguous static partitioning of blocks across workers; no stealing.
  kStatic,
  // One shared atomic counter bumped once per block: the "persistent
  // threads + global vertex counter" scheme of §6.3.3. Faithfully pays one
  // contended RMW per block.
  kAtomicPerBlock,
  // Chunked in-order dynamic dispatch: blocks are consumed in increasing id
  // order but claimed a chunk at a time, modelling the (nearly free)
  // hardware block scheduler with its block-id/schedule-time correlation.
  kChunkedDynamic,
};

const char* BlockScheduleName(BlockSchedule schedule);

// Dispatch accounting for one launch, filled when SimtLaunchParams.stats is
// set. A "dispatch" is one successful work grant from the block scheduler:
// one claimed range under kStatic, one fetch_add that yielded a block under
// kAtomicPerBlock, one claimed chunk under kChunkedDynamic — the quantity
// whose per-mode contrast §6.3.3 is about. Workers count locally and merge
// once at exit, so the accounting adds no contention of its own.
struct SimtLaunchStats {
  int64_t dispatches = 0;
  int64_t blocks_run = 0;
};

struct SimtLaunchParams {
  int64_t num_blocks = 0;
  BlockSchedule schedule = BlockSchedule::kChunkedDynamic;
  // Blocks claimed per dispatch for kChunkedDynamic.
  int64_t chunk_size = 16;
  // Optional dispatch accounting (profiling); null = off.
  SimtLaunchStats* stats = nullptr;
};

// Executes body(block_id, worker_index) for every block id in [0, num_blocks)
// under the requested dispatch discipline, then returns. Blocks never run
// twice; earlier ids are dispatched no later than later ids under
// kAtomicPerBlock / kChunkedDynamic.
void LaunchBlocks(const SimtLaunchParams& params,
                  const std::function<void(int64_t, int)>& body);

// Geometry of feature-adaptive thread groups for a kernel over `num_items`
// work items (vertices) with feature width `feature_dim` (paper §6.3.1).
struct FatGeometry {
  int block_size = 256;    // Simulated threads per block.
  int group_size = 1;      // 2^k lanes per FAT group.
  int groups_per_block = 256;
  int64_t num_blocks = 0;  // Blocks needed to cover all items.

  // group_size = the largest power of two <= min(feature_dim, block_size);
  // groups_per_block = block_size / group_size;
  // num_blocks = ceil(num_items / groups_per_block).
  static FatGeometry Compute(int64_t num_items, int64_t feature_dim, int block_size = 256);

  // The degenerate geometry of the paper's "Basic" variant: one vertex per
  // whole block, i.e. a single group of block_size lanes.
  static FatGeometry OneItemPerBlock(int64_t num_items, int block_size = 256);

  // First item index handled by `block_id` (items are assigned contiguously,
  // groups_per_block per block).
  int64_t FirstItemOfBlock(int64_t block_id) const {
    return block_id * static_cast<int64_t>(groups_per_block);
  }
};

}  // namespace seastar

#endif  // SRC_PARALLEL_SIMT_H_
