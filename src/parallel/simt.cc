#include "src/parallel/simt.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/common/fault.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/parallel/thread_pool.h"

namespace seastar {
namespace {

// Always-on per-schedule counters, resolved against the registry exactly once
// (first launch) and cached; after that each launch costs one sharded
// relaxed fetch_add per worker merge, nothing per block.
struct SimtCounters {
  metrics::Counter* launches;
  metrics::Counter* dispatches;
  metrics::Counter* blocks;
};

const SimtCounters& SimtCountersFor(BlockSchedule schedule) {
  static const auto* counters = [] {
    auto* c = new SimtCounters[static_cast<int>(BlockSchedule::kChunkedDynamic) + 1];
    metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Get();
    for (int i = 0; i <= static_cast<int>(BlockSchedule::kChunkedDynamic); ++i) {
      const std::string label = std::string("{schedule=\"") +
                                BlockScheduleName(static_cast<BlockSchedule>(i)) + "\"}";
      c[i].launches = registry.GetCounter("seastar_simt_launches_total" + label);
      c[i].dispatches = registry.GetCounter("seastar_simt_dispatches_total" + label);
      c[i].blocks = registry.GetCounter("seastar_simt_blocks_total" + label);
    }
    return c;
  }();
  return counters[static_cast<int>(schedule)];
}

// Fault injection (FaultSite::kSimtWorker): stall this worker for one
// dispatch grant. A stall is latency, not failure — the launch must still
// complete with every block run exactly once, with the dynamic schedules
// shifting work to the healthy workers. One enabled() load per grant on the
// orchestration path; the per-lane kernel loops are untouched.
inline void MaybeInjectWorkerStall() {
  FaultInjector& faults = FaultInjector::Get();
  if (faults.enabled() && faults.ShouldFail(FaultSite::kSimtWorker)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace

const char* BlockScheduleName(BlockSchedule schedule) {
  switch (schedule) {
    case BlockSchedule::kStatic:
      return "static";
    case BlockSchedule::kAtomicPerBlock:
      return "atomic";
    case BlockSchedule::kChunkedDynamic:
      return "dynamic";
  }
  return "?";
}

void LaunchBlocks(const SimtLaunchParams& params,
                  const std::function<void(int64_t, int)>& body) {
  const int64_t num_blocks = params.num_blocks;
  if (num_blocks <= 0) {
    return;
  }
  ThreadPool& pool = ThreadPool::Current();
  const int participants = pool.num_threads() + 1;

  const SimtCounters& counters = SimtCountersFor(params.schedule);
  counters.launches->Add(1);

  // Each worker counts its grants locally and merges once on exit; the hot
  // dispatch loops never touch shared profiling state. The always-on metric
  // counters ride the same once-per-worker merge.
  const auto merge_stats = [stats = params.stats, &counters](int64_t dispatches, int64_t blocks) {
    counters.dispatches->Add(dispatches);
    counters.blocks->Add(blocks);
    if (stats == nullptr) {
      return;
    }
    std::atomic_ref<int64_t>(stats->dispatches).fetch_add(dispatches, std::memory_order_relaxed);
    std::atomic_ref<int64_t>(stats->blocks_run).fetch_add(blocks, std::memory_order_relaxed);
  };

  switch (params.schedule) {
    case BlockSchedule::kStatic: {
      const int64_t per_worker = (num_blocks + participants - 1) / participants;
      pool.RunOnAllWorkers([&](int worker) {
        const int64_t begin = static_cast<int64_t>(worker) * per_worker;
        const int64_t end = std::min(begin + per_worker, num_blocks);
        if (end > begin) {
          MaybeInjectWorkerStall();
        }
        for (int64_t b = begin; b < end; ++b) {
          body(b, worker);
        }
        merge_stats(end > begin ? 1 : 0, std::max<int64_t>(0, end - begin));
      });
      return;
    }
    case BlockSchedule::kAtomicPerBlock: {
      std::atomic<int64_t> next{0};
      pool.RunOnAllWorkers([&](int worker) {
        int64_t grants = 0;
        for (;;) {
          // One contended RMW per block: this is the cost the paper's
          // FA+Sorting+Atomic variant pays and FA+Sorting+Dynamic avoids.
          const int64_t b = next.fetch_add(1, std::memory_order_relaxed);
          if (b >= num_blocks) {
            merge_stats(grants, grants);
            return;
          }
          ++grants;
          MaybeInjectWorkerStall();
          body(b, worker);
        }
      });
      return;
    }
    case BlockSchedule::kChunkedDynamic: {
      const int64_t chunk = std::max<int64_t>(1, params.chunk_size);
      std::atomic<int64_t> next{0};
      pool.RunOnAllWorkers([&](int worker) {
        int64_t grants = 0;
        int64_t blocks = 0;
        for (;;) {
          const int64_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= num_blocks) {
            merge_stats(grants, blocks);
            return;
          }
          const int64_t end = std::min(begin + chunk, num_blocks);
          ++grants;
          MaybeInjectWorkerStall();
          blocks += end - begin;
          for (int64_t b = begin; b < end; ++b) {
            body(b, worker);
          }
        }
      });
      return;
    }
  }
  SEASTAR_LOG(Fatal) << "unknown BlockSchedule";
}

FatGeometry FatGeometry::Compute(int64_t num_items, int64_t feature_dim, int block_size) {
  SEASTAR_CHECK_GT(block_size, 0);
  SEASTAR_CHECK_GT(feature_dim, 0);
  FatGeometry geometry;
  geometry.block_size = block_size;
  int group = 1;
  while (group * 2 <= feature_dim && group * 2 <= block_size) {
    group *= 2;
  }
  geometry.group_size = group;
  geometry.groups_per_block = block_size / group;
  geometry.num_blocks =
      num_items > 0 ? (num_items + geometry.groups_per_block - 1) / geometry.groups_per_block : 0;
  return geometry;
}

FatGeometry FatGeometry::OneItemPerBlock(int64_t num_items, int block_size) {
  FatGeometry geometry;
  geometry.block_size = block_size;
  geometry.group_size = block_size;  // The whole block is one group.
  geometry.groups_per_block = 1;
  geometry.num_blocks = num_items;
  return geometry;
}

}  // namespace seastar
