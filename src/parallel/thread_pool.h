// Shared worker pool. All parallel kernels in the repo (dense GEMM and the
// simulated GPU grids in simt.h) run on this pool, so there is a single knob
// for the machine's parallelism (SEASTAR_NUM_THREADS, default: hardware
// concurrency).
//
// Exception safety: a task body that throws inside a worker would otherwise
// escape the worker's top frame and std::terminate the process — fatal for a
// serving runtime where one poisoned request must not take down the pool.
// RunOnAllWorkers instead captures the *first* exception thrown by any
// participant (workers or the calling thread), lets every participant drain
// the block normally, and rethrows the captured exception on the submitting
// thread, where the caller can convert it to a Status. The pool stays fully
// usable afterwards.
#ifndef SRC_PARALLEL_THREAD_POOL_H_
#define SRC_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace seastar {

class ThreadPool {
 public:
  // The process-wide pool.
  static ThreadPool& Get();

  // The calling thread's *effective* pool: the pool installed by the
  // innermost live ScopedThreadPool on this thread, or Get() when none is
  // installed. All parallel primitives (ParallelFor, the SIMT grid) dispatch
  // through Current(), which is how the shard runtime pins each shard's
  // kernels to a dedicated pool slice: the shard worker installs its slice
  // and every kernel launched underneath it lands there instead of on the
  // shared process pool. This also keeps RunOnAllWorkers single-submitter —
  // concurrent shard workers each drive their own pool, never the global one.
  static ThreadPool& Current();

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Runs fn(worker_index) on every worker plus the calling thread
  // (worker_index = num_threads() for the caller) and blocks until all
  // invocations return. This is the primitive the SIMT grid builds on.
  //
  // If any invocation throws, the first exception is captured, the block is
  // drained (every other participant still runs to completion), and the
  // exception is rethrown here on the submitting thread.
  void RunOnAllWorkers(const std::function<void(int)>& fn);

 private:
  struct Task {
    const std::function<void(int)>* fn = nullptr;
    uint64_t generation = 0;
  };

  void WorkerLoop(int worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(int)>* current_fn_ = nullptr;
  uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  // First exception thrown by any participant of the current block; guarded
  // by mutex_, cleared at dispatch, rethrown by RunOnAllWorkers.
  std::exception_ptr first_exception_;
};

// Installs `pool` as the calling thread's Current() pool for the scope's
// lifetime, restoring the previous override on exit (scopes nest). Passing
// nullptr is a no-op scope — Current() keeps resolving as before.
class ScopedThreadPool {
 public:
  explicit ScopedThreadPool(ThreadPool* pool);
  ~ScopedThreadPool();

  ScopedThreadPool(const ScopedThreadPool&) = delete;
  ScopedThreadPool& operator=(const ScopedThreadPool&) = delete;

 private:
  ThreadPool* previous_;
  bool installed_;
};

// Splits [0, count) into roughly equal chunks across Current() and runs
// fn(begin, end) for each chunk in parallel. Serial when count is small.
void ParallelFor(int64_t count, const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk = 1024);

}  // namespace seastar

#endif  // SRC_PARALLEL_THREAD_POOL_H_
