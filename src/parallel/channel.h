// Bounded multi-producer single-consumer channel for the shard runtime's
// halo exchange (src/exec/shard_runtime.cc).
//
// Each shard worker owns one channel; peers Push halo messages into it and
// the owner Pops until it has drained the phase's expected message count.
// The channel is *bounded* — Push blocks when the queue is full — which is
// the property a real distributed runtime needs (a slow shard must
// back-pressure its peers instead of letting their send buffers grow without
// limit). Deadlock freedom is the caller's contract: the shard runtime sizes
// each channel's capacity to the worst-case number of messages a single
// exchange phase can put in flight, so within one phase no Push ever
// actually blocks on a consumer that is itself blocked pushing (see
// "Halo-exchange protocol" in docs/INTERNALS.md §13).
//
// Close() releases blocked parties during error unwinding: Push on a closed
// channel drops the message and returns false; Pop returns nullopt once the
// queue is empty and closed. Close is idempotent and safe to race with
// concurrent Push/Pop and other Close calls — the cancellation path in the
// shard runtime has every failing worker close all channels, so double-close
// is the common case there, not an error.
#ifndef SRC_PARALLEL_CHANNEL_H_
#define SRC_PARALLEL_CHANNEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/common/logging.h"

namespace seastar {

template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(size_t capacity) : capacity_(capacity) {
    SEASTAR_CHECK_GE(capacity, 1u);
  }

  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  // Blocks while the channel is full. Returns false (dropping `value`) if
  // the channel was closed before space became available.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    queue_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks until a message is available or the channel is closed *and*
  // drained; nullopt means closed-and-empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) {
      return std::nullopt;
    }
    T value = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  // Releases every blocked Push/Pop. Messages already queued stay poppable.
  // Idempotent: returns true only for the call that transitioned the channel
  // to closed; later (possibly concurrent) calls return false and are no-ops.
  bool Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        return false;
      }
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
    return true;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace seastar

#endif  // SRC_PARALLEL_CHANNEL_H_
