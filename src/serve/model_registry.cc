#include "src/serve/model_registry.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/core/checkpoint.h"

namespace seastar {
namespace serve {

Status ApplyCheckpointToModel(const TrainCheckpoint& snapshot, GnnModel& model,
                              const std::string& what) {
  std::vector<Var> parameters = model.Parameters();
  if (snapshot.parameters.size() != parameters.size()) {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << what << " holds " << snapshot.parameters.size() << " parameters, model '"
           << model.name() << "' has " << parameters.size();
  }
  for (size_t p = 0; p < parameters.size(); ++p) {
    if (snapshot.parameters[p].shape() != parameters[p].value().shape()) {
      return ErrorStatus(StatusCode::kInvalidArgument)
             << what << " parameter " << p << " is " << snapshot.parameters[p].ShapeString()
             << ", model expects " << parameters[p].value().ShapeString();
    }
  }
  // Inference only restores weights (and dropout RNG for reproducibility of
  // any training-mode probes); optimizer moments stay with the trainer.
  for (size_t p = 0; p < parameters.size(); ++p) {
    Tensor& value = parameters[p].mutable_value();
    std::copy(snapshot.parameters[p].data(), snapshot.parameters[p].data() + value.numel(),
              value.data());
    parameters[p].ClearGrad();
  }
  if (Rng* rng = model.MutableRng(); rng != nullptr && snapshot.model_rng.has_value()) {
    rng->RestoreState(*snapshot.model_rng);
  }
  return Status::Ok();
}

uint64_t ComputeEntryFingerprint(const std::string& model_id, int64_t version,
                                 const GnnModel& model, const Dataset& data) {
  char buffer[320];
  int written = std::snprintf(
      buffer, sizeof(buffer), "%s|%lld|%s|%lld|%lld|%lld|%lld", model_id.c_str(),
      static_cast<long long>(version), model.name(),
      static_cast<long long>(data.graph.num_vertices()),
      static_cast<long long>(data.graph.num_edges()),
      static_cast<long long>(data.spec.num_classes),
      static_cast<long long>(data.features.defined() ? data.features.dim(1) : 0));
  const size_t length =
      written < 0 ? 0 : std::min(static_cast<size_t>(written), sizeof(buffer) - 1);
  uint64_t hash = Fnv1a64(buffer, length);
  return hash != 0 ? hash : 1;  // 0 is reserved for "don't care" in requests.
}

ModelEntry::ModelEntry(std::string model_id, int64_t version, std::shared_ptr<GnnModel> model,
                       const Dataset* data)
    : model_id_(std::move(model_id)),
      version_(version),
      model_(std::move(model)),
      data_(data),
      fingerprint_(ComputeEntryFingerprint(model_id_, version_, *model_, *data_)) {
  SEASTAR_CHECK(model_ != nullptr);
  SEASTAR_CHECK(data_ != nullptr);
}

StatusOr<std::shared_ptr<const ModelEntry>> ModelRegistry::RegisterEntry(
    const std::string& model_id, Slot slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.emplace(model_id, std::move(slot));
  if (!inserted) {
    return ErrorStatus(StatusCode::kAlreadyExists)
           << "model id '" << model_id << "' is already registered";
  }
  return it->second.live;
}

StatusOr<std::shared_ptr<const ModelEntry>> ModelRegistry::Register(
    const std::string& model_id, const Dataset& data, ModelFactory factory,
    const std::string& initial_checkpoint) {
  if (model_id.empty()) {
    return ErrorStatus(StatusCode::kInvalidArgument) << "model id must be non-empty";
  }
  if (!factory) {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << "model '" << model_id << "': null factory";
  }
  std::shared_ptr<GnnModel> model = factory();
  if (model == nullptr) {
    return ErrorStatus(StatusCode::kInternal)
           << "model '" << model_id << "': factory returned null";
  }
  if (!initial_checkpoint.empty()) {
    StatusOr<TrainCheckpoint> snapshot = LoadCheckpoint(initial_checkpoint, model_id);
    if (!snapshot.has_value()) {
      return snapshot.status();
    }
    Status applied = ApplyCheckpointToModel(snapshot.value(), *model,
                                            "checkpoint '" + initial_checkpoint + "'");
    if (!applied.ok()) {
      return applied;
    }
  }
  Slot slot;
  slot.live = std::make_shared<const ModelEntry>(model_id, /*version=*/1, std::move(model), &data);
  slot.factory = std::move(factory);
  slot.data = &data;
  return RegisterEntry(model_id, std::move(slot));
}

StatusOr<std::shared_ptr<const ModelEntry>> ModelRegistry::RegisterBorrowed(
    const std::string& model_id, GnnModel& model, const Dataset& data) {
  if (model_id.empty()) {
    return ErrorStatus(StatusCode::kInvalidArgument) << "model id must be non-empty";
  }
  Slot slot;
  // Aliasing shared_ptr with a no-op deleter: the entry machinery is uniform,
  // the ownership stays with the caller.
  std::shared_ptr<GnnModel> borrowed(&model, [](GnnModel*) {});
  slot.live =
      std::make_shared<const ModelEntry>(model_id, /*version=*/1, std::move(borrowed), &data);
  slot.data = &data;
  return RegisterEntry(model_id, std::move(slot));
}

std::shared_ptr<const ModelEntry> ModelRegistry::Lookup(const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(model_id);
  return it == entries_.end() ? nullptr : it->second.live;
}

StatusOr<std::shared_ptr<const ModelEntry>> ModelRegistry::PrepareSwap(
    const std::string& model_id, const std::string& checkpoint_path) {
  ModelFactory factory;
  const Dataset* data = nullptr;
  int64_t live_version = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(model_id);
    if (it == entries_.end()) {
      return ErrorStatus(StatusCode::kNotFound) << "model id '" << model_id << "' not registered";
    }
    if (!it->second.factory) {
      return ErrorStatus(StatusCode::kFailedPrecondition)
             << "model '" << model_id
             << "' was registered borrowed (no factory): it cannot hot-swap";
    }
    factory = it->second.factory;
    data = it->second.data;
    live_version = it->second.live->version();
  }
  // Load + build + copy happen outside the registry lock: admissions keep
  // resolving the live entry while the next generation is assembled.
  FlightRecorder::Get().Record("swap", ("load " + model_id).c_str(), live_version + 1);
  StatusOr<TrainCheckpoint> snapshot = LoadCheckpoint(checkpoint_path, model_id);
  if (!snapshot.has_value()) {
    return snapshot.status();
  }
  std::shared_ptr<GnnModel> model = factory();
  if (model == nullptr) {
    return ErrorStatus(StatusCode::kInternal)
           << "model '" << model_id << "': factory returned null";
  }
  Status applied = ApplyCheckpointToModel(snapshot.value(), *model,
                                          "checkpoint '" + checkpoint_path + "'");
  if (!applied.ok()) {
    return applied;
  }
  SEASTAR_LOG(Info) << "hot-swap: staged '" << model_id << "' version " << (live_version + 1)
                    << " from '" << checkpoint_path << "' (epoch " << snapshot->epoch << ")";
  return std::make_shared<const ModelEntry>(model_id, live_version + 1, std::move(model), data);
}

StatusOr<std::shared_ptr<const ModelEntry>> ModelRegistry::Publish(
    std::shared_ptr<const ModelEntry> staged) {
  if (staged == nullptr) {
    return ErrorStatus(StatusCode::kInvalidArgument) << "cannot publish a null entry";
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(staged->model_id());
  if (it == entries_.end()) {
    return ErrorStatus(StatusCode::kNotFound)
           << "model id '" << staged->model_id() << "' not registered";
  }
  if (staged->version() <= it->second.live->version()) {
    return ErrorStatus(StatusCode::kFailedPrecondition)
           << "stale staged entry for '" << staged->model_id() << "': version "
           << staged->version() << " does not advance live version " << it->second.live->version();
  }
  std::shared_ptr<const ModelEntry> old = std::move(it->second.live);
  it->second.live = std::move(staged);
  retiring_.push_back(Retiring{old, old->model_id(), old->version()});
  return old;
}

std::vector<RetiredEntry> ModelRegistry::PollRetired() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RetiredEntry> drained;
  auto it = retiring_.begin();
  while (it != retiring_.end()) {
    if (it->entry.expired()) {
      drained.push_back(RetiredEntry{it->model_id, it->version});
      it = retiring_.erase(it);
    } else {
      ++it;
    }
  }
  return drained;
}

int64_t ModelRegistry::pending_retirements() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t pending = 0;
  for (const Retiring& r : retiring_) {
    if (!r.entry.expired()) {
      ++pending;
    }
  }
  return pending;
}

std::vector<ModelEntryInfo> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ModelEntryInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [id, slot] : entries_) {
    ModelEntryInfo info;
    info.model_id = id;
    info.version = slot.live->version();
    info.fingerprint = slot.live->fingerprint();
    info.swappable = static_cast<bool>(slot.factory);
    infos.push_back(std::move(info));
  }
  return infos;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace serve
}  // namespace seastar
