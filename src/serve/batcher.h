// Dynamic micro-batcher: coalesce compatible requests into one forward pass.
//
// The models are full-graph — one forward computes logits for every vertex —
// so N queued requests against the same (model, graph) cost exactly one
// forward if answered together. Because the plan cache (PR 3) makes warm
// forwards allocation-free and compile-free, the marginal cost of a bigger
// batch is just the per-request row gather, which is why dynamic batching is
// worth doing even at small max_delay windows (BatchMaker's argument).
//
// Policy: take the queue's pick as the batch leader (weighted-fair across
// tenants — see AdmissionQueue), then keep admitting requests *of the same
// tenant with the same batch key* until the batch is full (max_batch), the
// batching window (max_delay_ms after the leader was dequeued) closes, or
// the leader's deadline slack says waiting longer would spend time the
// leader doesn't have. Non-matching requests stay queued for the next batch,
// preserving their arrival order. The batch key covers (model id, weights
// version, architecture, graph), so requests for different tenants or
// different weight generations are never coalesced into one forward.
#ifndef SRC_SERVE_BATCHER_H_
#define SRC_SERVE_BATCHER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/serve/admission_queue.h"
#include "src/serve/request.h"

namespace seastar {
namespace serve {

struct BatcherOptions {
  int max_batch = 8;
  double max_delay_ms = 1.0;
  // How long NextBatch blocks for a leader before returning an empty batch
  // (the serving loop's idle poll, so shutdown is noticed promptly).
  double idle_poll_ms = 20.0;
};

class MicroBatcher {
 public:
  MicroBatcher(AdmissionQueue& queue, const BatcherOptions& options);

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Forms the next batch: empty when the queue stayed idle for the poll
  // window (or is closed and drained). All returned requests share one
  // batch_key.
  std::vector<std::unique_ptr<PendingRequest>> NextBatch();

  int64_t batches_formed() const;
  int64_t requests_batched() const;
  int max_batch_observed() const;

 private:
  AdmissionQueue& queue_;
  const BatcherOptions options_;

  mutable std::mutex stats_mutex_;
  int64_t batches_formed_ = 0;
  int64_t requests_batched_ = 0;
  int max_batch_observed_ = 0;
};

}  // namespace serve
}  // namespace seastar

#endif  // SRC_SERVE_BATCHER_H_
