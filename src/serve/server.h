// Hardened inference server over a trained GNN model.
//
// The pipeline, per docs/INTERNALS.md §11:
//
//   Submit -> [bounded admission queue] -> [micro-batcher] -> execute
//                    |  full: shed                |             |
//                    v                            v             v
//              kResourceExhausted        deadline checks   retry w/ backoff
//                                        between units     on transient faults
//                                                               |
//                                              circuit breaker on repeated
//                                              failure / NaN -> degraded mode
//                                              (last-known-good cache) until
//                                              a probe forward succeeds
//
// One serving thread owns execution: it forms batches, runs the forward
// under the batch's deadline (ScopedDeadline; the executors poll it at unit
// boundaries and abort expired work), retries transient faults with
// exponential backoff, asks the circuit breaker before every batch, and
// fulfills each request's promise. Clients only touch the queue, so client
// threads never contend on model state.
//
// Warm-path guarantees inherited from PR 3: after the first forward, every
// plan comes from the PlanCache and every tensor from the allocator pool —
// a steady-state request performs zero fresh mallocs and zero compilations,
// which is what makes micro-batching windows of a millisecond meaningful.
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/core/models/model.h"
#include "src/graph/datasets.h"
#include "src/serve/admission_queue.h"
#include "src/serve/batcher.h"
#include "src/serve/circuit_breaker.h"
#include "src/serve/request.h"

namespace seastar {

class Profiler;

namespace serve {

struct ServeConfig {
  // ---- Admission ---------------------------------------------------------
  int queue_capacity = 64;  // Requests beyond this are shed at the door.
  double default_deadline_ms = 100.0;  // For requests with deadline_ms == 0.

  // ---- Batching ----------------------------------------------------------
  int max_batch = 8;
  double max_batch_delay_ms = 1.0;

  // ---- Retry policy (transient faults: injected allocation failures,
  //      exceptions escaping pool workers) --------------------------------
  int max_retries = 2;                 // Attempts = 1 + max_retries.
  double retry_base_backoff_ms = 0.5;  // Backoff = base * 2^attempt.

  // ---- Circuit breaker ---------------------------------------------------
  int breaker_trip_after = 3;              // Consecutive batch failures.
  double breaker_probe_interval_ms = 25.0;  // One probe per interval while open.
  // Serve last-known-good cached predictions while the breaker is open (or
  // when retries are exhausted); false fails those requests instead.
  bool degraded_fallback = true;

  // ---- Boot --------------------------------------------------------------
  // Trained snapshot to restore parameters from before serving; "" serves
  // the model's fresh initialization (useful in tests).
  std::string checkpoint_path;
  int boot_retries = 3;  // Retries for transient checkpoint-read faults.
  // Run one forward at Start() to compile plans, warm the allocator pool,
  // and seed the last-known-good cache.
  bool warmup = true;

  // ---- Observability -----------------------------------------------------
  // Span sink, driven from the serving thread (plus boot-time spans before
  // the thread starts). Null = off.
  Profiler* profiler = nullptr;
};

// Monotone counters; a quiesced server satisfies
//   submitted == served + degraded + shed + expired + failed.
// Rejected requests never enter the serving pipeline and sit outside that
// identity. stats() returns one snapshot taken under a single lock, so the
// identity holds for the snapshot itself whenever the server is quiesced —
// readers never see `submitted` without the matching outcome counter. The
// same increments are mirrored into the process metrics registry
// (seastar_serve_*_total), so the identity can be checked from a --metrics-out
// snapshot too.
struct ServerStats {
  int64_t submitted = 0;  // Requests admitted or shed (validated, not rejected).
  int64_t rejected = 0;   // Invalid (bad vertices / fingerprint) or queue closed.
  int64_t shed = 0;       // Turned away at the full admission queue.
  int64_t served = 0;     // Fresh forward-pass answers.
  int64_t degraded = 0;   // Answered from the last-known-good cache.
  int64_t expired = 0;    // Deadline passed (in queue or mid-execution).
  int64_t failed = 0;     // Everything else (retries exhausted, no LKG, ...).
  int64_t retries = 0;        // Transient-fault retry attempts paid.
  int64_t batches = 0;        // Forward passes attempted (incl. retries).
  int64_t breaker_trips = 0;
  int64_t breaker_recoveries = 0;
  int64_t breaker_probes = 0;
  int64_t deadline_unit_aborts = 0;  // Executions aborted at a unit boundary.
  int64_t boot_retries = 0;          // Checkpoint-read retries during Start().
};

struct LatencySummary {
  int64_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

class Server {
 public:
  // `model` and `data` must outlive the server; the model must have been
  // built against `data`'s graph.
  Server(GnnModel& model, const Dataset& data, ServeConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Boots (checkpoint restore with transient-fault retries, warmup forward)
  // and starts the serving thread. Must be called once before Submit.
  Status Start();

  // Closes admission, drains queued requests (every outstanding future is
  // fulfilled), and joins the serving thread. Idempotent.
  void Shutdown();

  // Admits a request. The returned future is always eventually fulfilled —
  // immediately with a Status for invalid/shed/closed requests, by the
  // serving thread otherwise.
  std::future<StatusOr<InferenceResponse>> Submit(InferenceRequest request);

  // Blocking convenience wrapper.
  StatusOr<InferenceResponse> Infer(InferenceRequest request);

  // The (model, graph) identity requests may pin via model_fingerprint.
  uint64_t serving_fingerprint() const { return fingerprint_; }

  ServerStats stats() const;
  BreakerState breaker_state() const { return breaker_.state(); }
  // Percentiles over end-to-end latency of answered (served or degraded)
  // requests. Served from this server's log-bucketed histogram: quantiles
  // carry the bucket's relative error (<= 1/16) instead of being exact, in
  // exchange for an O(1)-memory record path with no lock and no allocation.
  LatencySummary latency_summary() const;
  int queue_depth() const { return queue_.size(); }

 private:
  struct AttemptResult {
    Status status;       // OK on success.
    bool retryable = false;
    Tensor logits;       // Defined on success: [N, num_classes].
    bool unit_abort = false;  // Execution aborted at a deadline check.
  };

  void ServeLoop();
  void ServeBatch(std::vector<std::unique_ptr<PendingRequest>> batch);
  // One forward pass under `deadline`; classifies failures.
  AttemptResult RunForwardOnce(const Deadline& deadline);
  // Execute with retry/backoff; on success updates the LKG cache.
  AttemptResult ExecuteWithRetries(const Deadline& deadline, int* retries_paid);
  void FulfillFromLogits(const Tensor& logits, std::vector<std::unique_ptr<PendingRequest>>& batch,
                         bool degraded, int retries_paid);
  void FailBatch(std::vector<std::unique_ptr<PendingRequest>>& batch, const Status& status);
  Status RestoreFromCheckpoint();
  void RecordLatency(double total_ms);

  // Applies `mutate` to the stats under stats_mutex_. All identity counters
  // move through here, so a concurrent stats() reader always sees a
  // consistent snapshot (never a request counted as submitted but not yet as
  // an outcome, or vice versa).
  template <typename Fn>
  void UpdateStats(Fn&& mutate) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    mutate(stats_);
  }

  GnnModel& model_;
  const Dataset& data_;
  const ServeConfig config_;
  const uint64_t fingerprint_;
  Profiler* profiler_;  // Hoisted: non-null only when enabled.

  AdmissionQueue queue_;
  MicroBatcher batcher_;
  CircuitBreaker breaker_;

  std::thread serving_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mutex_;  // Serializes join() across concurrent Shutdowns.

  // Last-known-good full-graph logits, written by the serving thread after
  // every successful forward, read by it for degraded serving. Guarded for
  // the stats/test readers.
  mutable std::mutex lkg_mutex_;
  Tensor lkg_logits_;

  // All counters that participate in (or ride along with) the accounting
  // identity live in one struct behind one mutex; increments are a few
  // nanoseconds under an uncontended lock (client threads at admission, the
  // serving thread at fulfillment), and stats() copies the whole struct in
  // one critical section. Breaker counters stay with the breaker — they are
  // not part of the identity.
  mutable std::mutex stats_mutex_;
  ServerStats stats_;
  std::atomic<uint64_t> next_request_id_{1};

  // End-to-end latency of answered requests, for latency_summary(). A
  // per-server histogram (the registry's seastar_serve_request_latency_ms is
  // process-wide and would mix servers in tests); Record() is lock-free and
  // allocation-free, unlike the unbounded vector it replaced.
  metrics::Histogram latency_hist_{"latency_ms"};
};

}  // namespace serve
}  // namespace seastar

#endif  // SRC_SERVE_SERVER_H_
