// Hardened multi-tenant inference server over trained GNN models.
//
// The pipeline, per docs/INTERNALS.md §11 and §16:
//
//   Submit -> [per-tenant quota] -> [bounded admission queue] -> [micro-batcher]
//                 |  over cap           |  full: shed            weighted-fair
//                 v                     v                        leader pick
//            kResourceExhausted    kResourceExhausted                |
//                                                                    v
//                                              execute against the entry each
//                                              request *pinned at admission*
//                                              (RCU hot-swap), retry w/ backoff,
//                                              per-tenant circuit breaker ->
//                                              per-tenant degraded LKG cache
//
// One serving thread owns execution: it applies staged weight swaps between
// batches, forms batches, runs the forward under the batch's deadline
// (ScopedDeadline; the executors poll it at unit boundaries and abort
// expired work), retries transient faults with exponential backoff, asks the
// owning tenant's circuit breaker before every batch, and fulfills each
// request's promise. Clients only touch the queue, so client threads never
// contend on model state.
//
// Multi-tenancy: a ModelRegistry holds the (model, graph, version) entries;
// each tenant names the model id it is served by, carries its own admission
// quota and fair-share weight (enforced in AdmissionQueue), its own circuit
// breaker and last-known-good cache, and its own accounting — the identity
//   submitted == served + degraded + shed + expired + failed
// holds per tenant, not just globally, with every counter pair updated under
// one lock.
//
// Hot swap (zero downtime): RequestHotSwap stages version N+1 on the calling
// thread (checkpoint load + weight copy; serving continues unaffected), then
// the serving thread warms it with one forward — all plans come from the
// process-wide PlanCache and all tensors from the allocator pool, so a swap
// of the same architecture compiles nothing — seeds the affected tenants'
// LKG caches from the warm logits, atomically publishes the new entry, and
// pokes those tenants' breakers so an OPEN breaker probes the new weights
// immediately. Requests admitted before the flip pinned the old entry and
// are served by it; the old generation retires only after the last such
// request drains.
//
// Warm-path guarantees inherited from PR 3: after the first forward, every
// plan comes from the PlanCache and every tensor from the allocator pool —
// a steady-state request performs zero fresh mallocs and zero compilations,
// which is what makes micro-batching windows of a millisecond meaningful.
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/tracing.h"
#include "src/core/models/model.h"
#include "src/graph/datasets.h"
#include "src/serve/admission_queue.h"
#include "src/serve/batcher.h"
#include "src/serve/circuit_breaker.h"
#include "src/serve/model_registry.h"
#include "src/serve/request.h"

namespace seastar {

class Profiler;

namespace serve {

// One serving tenant: a named traffic class bound to a registry model id,
// with its own QoS knobs and failure domain.
struct TenantConfig {
  std::string name = "default";
  std::string model_id = "default";
  // Weighted-fair share of batch dispatches relative to other tenants.
  double weight = 1.0;
  // Cap on this tenant's queued backlog (admission quota); 0 = bounded only
  // by the shared queue capacity.
  int max_queued = 0;
  // Fault-injection spec (src/common/fault.h grammar) armed around *this
  // tenant's* forward executions only — the "misbehaving tenant" drill knob.
  // Arms the process FaultInjector for the duration of the tenant's batch,
  // so it must not be combined with externally armed global faults. "" = off.
  std::string fault_spec;
};

struct ServeConfig {
  // ---- Admission ---------------------------------------------------------
  int queue_capacity = 64;  // Requests beyond this are shed at the door.
  double default_deadline_ms = 100.0;  // For requests with deadline_ms == 0.

  // ---- Tenants -----------------------------------------------------------
  // Empty = one default tenant (weight 1, no quota) bound to the registry's
  // single entry. Names must be unique; an empty request.tenant routes to
  // tenants[0].
  std::vector<TenantConfig> tenants;

  // ---- Batching ----------------------------------------------------------
  int max_batch = 8;
  double max_batch_delay_ms = 1.0;

  // ---- Retry policy (transient faults: injected allocation failures,
  //      exceptions escaping pool workers) --------------------------------
  int max_retries = 2;                 // Attempts = 1 + max_retries.
  double retry_base_backoff_ms = 0.5;  // Backoff = base * 2^attempt.

  // ---- Circuit breaker (instantiated per tenant) -------------------------
  int breaker_trip_after = 3;              // Consecutive batch failures.
  double breaker_probe_interval_ms = 25.0;  // One probe per interval while open.
  // Serve last-known-good cached predictions while the breaker is open (or
  // when retries are exhausted); false fails those requests instead.
  bool degraded_fallback = true;

  // ---- Boot --------------------------------------------------------------
  // Trained snapshot restored into the *default tenant's* model before
  // serving; "" serves the registered weights as-is. Multi-model fleets
  // instead pass per-model checkpoints to ModelRegistry::Register.
  std::string checkpoint_path;
  int boot_retries = 3;  // Retries for transient checkpoint-read faults.
  // Run one forward per distinct model at Start() to compile plans, warm the
  // allocator pool, and seed the last-known-good caches.
  bool warmup = true;

  // ---- Observability -----------------------------------------------------
  // Span sink, driven from the serving thread (plus boot-time spans before
  // the thread starts). Null = off.
  Profiler* profiler = nullptr;

  // Per-request distributed tracing (tracing.h). On by default: every
  // request gets a span tree; *retention* is what sampling decides. The head
  // sampler keeps ~1% of clean traffic and the tail reservoir keeps the
  // slowest-N plus every anomalous request (shed / expired / degraded /
  // retried / breaker-tripped / failed), so the requests worth debugging are
  // always exportable even at head_sample_rate = 0.
  trace::TracerConfig tracing;
};

// Monotone counters; a quiesced server satisfies
//   submitted == served + degraded + shed + expired + failed.
// Rejected requests never enter the serving pipeline and sit outside that
// identity; quota_shed is the subset of shed attributed to a tenant's own
// admission quota (not the shared capacity). stats() returns one snapshot
// taken under a single lock, so the identity holds for the snapshot itself
// whenever the server is quiesced — readers never see `submitted` without
// the matching outcome counter. The same increments are mirrored into the
// process metrics registry (seastar_serve_*_total), so the identity can be
// checked from a --metrics-out snapshot too.
struct ServerStats {
  int64_t submitted = 0;  // Requests admitted or shed (validated, not rejected).
  int64_t rejected = 0;   // Invalid (bad vertices / fingerprint / tenant) or queue closed.
  int64_t shed = 0;       // Turned away at the door (capacity or quota).
  int64_t quota_shed = 0;  // Subset of shed: the tenant's own quota.
  int64_t served = 0;     // Fresh forward-pass answers.
  int64_t degraded = 0;   // Answered from the last-known-good cache.
  int64_t expired = 0;    // Deadline passed (in queue or mid-execution).
  int64_t failed = 0;     // Everything else (retries exhausted, no LKG, ...).
  int64_t retries = 0;        // Transient-fault retry attempts paid.
  int64_t batches = 0;        // Forward passes attempted (incl. retries).
  int64_t breaker_trips = 0;        // Summed over tenants.
  int64_t breaker_recoveries = 0;
  int64_t breaker_probes = 0;
  int64_t deadline_unit_aborts = 0;  // Executions aborted at a unit boundary.
  int64_t boot_retries = 0;          // Checkpoint-read retries during Start().
  int64_t swaps = 0;           // Hot-swaps flipped live.
  int64_t swap_failures = 0;   // Staged swaps that failed warmup/publish.
  int64_t swap_retired = 0;    // Old generations fully drained and retired.
  // Tracer counters (started/finished/retained/evicted/...); zeroed when
  // tracing is disabled.
  trace::TracerStats trace;
};

// Per-tenant slice of the identity, plus that tenant's breaker counters.
// For every tenant, submitted == served + degraded + shed + expired + failed
// holds exactly (quota_shed ⊆ shed), and the per-tenant counters sum to the
// global ServerStats identity fields.
struct TenantStats {
  int64_t submitted = 0;
  int64_t rejected = 0;
  int64_t shed = 0;
  int64_t quota_shed = 0;
  int64_t served = 0;
  int64_t degraded = 0;
  int64_t expired = 0;
  int64_t failed = 0;
  int64_t retries = 0;
  int64_t batches = 0;
  int64_t breaker_trips = 0;
  int64_t breaker_recoveries = 0;
  int64_t breaker_probes = 0;
};

struct LatencySummary {
  int64_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

class Server {
 public:
  // Single-tenant compatibility: serves `model` (which, with `data`, must
  // outlive the server) as model id "default" through an internally owned
  // registry. Borrowed models cannot hot-swap.
  Server(GnnModel& model, const Dataset& data, ServeConfig config);

  // Multi-tenant: serves the entries of `registry` (pre-populated by the
  // caller; shared so swap tooling can address it too). Every tenant in
  // `config.tenants` must resolve to a registered model id by Start().
  Server(std::shared_ptr<ModelRegistry> registry, ServeConfig config);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Boots (checkpoint restore with transient-fault retries, one warmup
  // forward per distinct model) and starts the serving thread. Must be
  // called once before Submit.
  Status Start();

  // Closes admission, drains queued requests (every outstanding future is
  // fulfilled), fails pending swaps, and joins the serving thread. Idempotent.
  void Shutdown();

  // Admits a request (routing by request.tenant). The returned future is
  // always eventually fulfilled — immediately with a Status for
  // invalid/shed/closed requests, by the serving thread otherwise.
  std::future<StatusOr<InferenceResponse>> Submit(InferenceRequest request);

  // Blocking convenience wrapper.
  StatusOr<InferenceResponse> Infer(InferenceRequest request);

  // Zero-downtime weight hot-swap: stages `checkpoint_path` as the next
  // version of `model_id` on the calling thread (tag-checked load + weight
  // copy into a fresh factory-built model), then hands it to the serving
  // thread, which — between batches — runs the warmup forward, seeds the
  // affected tenants' LKG caches, publishes the entry, and resets their
  // breakers' backend state. The future resolves with the new version number
  // after the flip (or the staging/warmup error). Requires Start().
  std::future<StatusOr<int64_t>> RequestHotSwap(const std::string& model_id,
                                                const std::string& checkpoint_path);

  // Blocking convenience wrapper around RequestHotSwap.
  StatusOr<int64_t> HotSwap(const std::string& model_id, const std::string& checkpoint_path);

  // The (model, graph, version) identity requests may pin via
  // model_fingerprint — the default tenant's *live* entry (changes on swap).
  uint64_t serving_fingerprint() const;

  ServerStats stats() const;
  StatusOr<TenantStats> tenant_stats(const std::string& tenant) const;
  std::vector<std::string> tenant_names() const;

  // Default tenant's breaker (single-tenant compatibility).
  BreakerState breaker_state() const;
  StatusOr<BreakerState> tenant_breaker_state(const std::string& tenant) const;

  // Percentiles over end-to-end latency of answered (served or degraded)
  // requests, all tenants pooled. Served from a log-bucketed histogram:
  // quantiles carry the bucket's relative error (<= 1/16) instead of being
  // exact, in exchange for an O(1)-memory record path with no lock and no
  // allocation.
  LatencySummary latency_summary() const;
  StatusOr<LatencySummary> tenant_latency_summary(const std::string& tenant) const;

  int queue_depth() const { return queue_.size(); }
  ModelRegistry& registry() { return *registry_; }

  // ---- Tracing ------------------------------------------------------------
  // The retained traces (tail reservoir + anomalies + head-sampled) as
  // Chrome-trace JSON (chrome://tracing / Perfetto loadable): one pid per
  // tenant, one tid per request, spans as complete events. Empty-but-valid
  // JSON when tracing is disabled.
  std::string TracesJson() const;
  // Writes TracesJson() to `path`; false on I/O error or tracing disabled.
  bool DumpTraces(const std::string& path) const;
  // Null when config.tracing.enabled is false.
  const trace::Tracer* tracer() const { return tracer_.get(); }

 private:
  struct AttemptResult {
    Status status;       // OK on success.
    bool retryable = false;
    Tensor logits;       // Defined on success: [N, num_classes].
    bool unit_abort = false;  // Execution aborted at a deadline check.
  };

  // Per-tenant runtime state. Stats fields are guarded by stats_mutex_, the
  // LKG tensor by lkg_mutex_; the breaker guards itself.
  struct Tenant {
    uint32_t index = 0;
    TenantConfig config;
    std::unique_ptr<CircuitBreaker> breaker;
    Tensor lkg;               // Last-known-good full-graph logits.
    TenantStats stats;
    metrics::Histogram latency_hist{"tenant_latency_ms"};
    // Cached registry handles (label baked into the metric name) so the
    // per-request path never performs a registry lookup.
    metrics::Counter* m_submitted = nullptr;
    metrics::Counter* m_rejected = nullptr;
    metrics::Counter* m_shed = nullptr;
    metrics::Counter* m_quota_shed = nullptr;
    metrics::Counter* m_served = nullptr;
    metrics::Counter* m_degraded = nullptr;
    metrics::Counter* m_expired = nullptr;
    metrics::Counter* m_failed = nullptr;
  };

  // A staged hot-swap awaiting the serving thread's warm + flip.
  struct PendingSwap {
    std::shared_ptr<const ModelEntry> staged;
    std::promise<StatusOr<int64_t>> promise;
  };

  void ServeLoop();
  void ServeBatch(std::vector<std::unique_ptr<PendingRequest>> batch);
  // One forward pass of `entry` under `deadline`; classifies failures.
  AttemptResult RunForwardOnce(const ModelEntry& entry, const Deadline& deadline);
  // Execute with retry/backoff. Callers update LKG caches on success.
  AttemptResult ExecuteWithRetries(const ModelEntry& entry, const Deadline& deadline,
                                   int* retries_paid);
  void FulfillFromLogits(const Tensor& logits, std::vector<std::unique_ptr<PendingRequest>>& batch,
                         Tenant& tenant, bool degraded, int retries_paid);
  void FailBatch(std::vector<std::unique_ptr<PendingRequest>>& batch, Tenant& tenant,
                 const Status& status);
  Status RestoreFromCheckpoint(const ModelEntry& entry);
  // Applies queued swaps: warm forward, LKG seed, publish, breaker reset.
  void ProcessPendingSwaps();
  // Emits retire events for drained old generations.
  void PollRetirements();
  void RecordLatency(Tenant& tenant, double total_ms, uint64_t trace_id);
  Tenant* FindTenant(const std::string& name) const;

  // Applies `mutate` to the global stats under stats_mutex_.
  template <typename Fn>
  void UpdateStats(Fn&& mutate) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    mutate(stats_);
  }

  // Applies `mutate` to the global and per-tenant stats in one critical
  // section. All identity counters move through here, so a concurrent
  // stats()/tenant_stats() reader always sees a consistent snapshot at both
  // granularities (never a request counted as submitted but not yet as an
  // outcome, or counted globally but not for its tenant).
  template <typename Fn>
  void UpdateStats(Tenant& tenant, Fn&& mutate) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    mutate(stats_, tenant.stats);
  }

  const ServeConfig config_;
  Profiler* profiler_;  // Hoisted: non-null only when enabled.
  // Owns every RequestTrace (pooled); null when tracing is disabled, so the
  // per-request cost with tracing off is one pointer test.
  std::unique_ptr<trace::Tracer> tracer_;

  std::shared_ptr<ModelRegistry> registry_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::map<std::string, uint32_t> tenant_index_;

  AdmissionQueue queue_;
  MicroBatcher batcher_;

  std::thread serving_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mutex_;  // Serializes join() across concurrent Shutdowns.

  // Staged swaps handed from RequestHotSwap callers to the serving thread.
  std::mutex swap_mutex_;
  std::deque<PendingSwap> pending_swaps_;

  // Per-tenant last-known-good logits, written by the serving thread after
  // every successful forward, read by it for degraded serving. Guarded for
  // the stats/test readers.
  mutable std::mutex lkg_mutex_;

  // All counters that participate in (or ride along with) the accounting
  // identity live behind one mutex; increments are a few nanoseconds under
  // an uncontended lock (client threads at admission, the serving thread at
  // fulfillment), and stats() copies everything in one critical section.
  // Breaker counters stay with each tenant's breaker — they are not part of
  // the identity.
  mutable std::mutex stats_mutex_;
  ServerStats stats_;
  std::atomic<uint64_t> next_request_id_{1};

  // End-to-end latency of answered requests, all tenants pooled, for
  // latency_summary(). Per-server (the registry's
  // seastar_serve_request_latency_ms is process-wide and would mix servers
  // in tests).
  metrics::Histogram latency_hist_{"latency_ms"};
};

}  // namespace serve
}  // namespace seastar

#endif  // SRC_SERVE_SERVER_H_
