// Bounded admission queue: the load-shedding front door of the server.
//
// Admission control is the first line of overload defense (Clipper-style
// serving): a queue that grows without bound converts overload into
// unbounded latency for *every* request, while a bounded queue converts it
// into fast, explicit rejection (kResourceExhausted) for the requests that
// would have missed their deadlines anyway. Capacity is therefore a hard
// bound checked at push; the caller surfaces the rejection Status to the
// client immediately ("shed") without ever touching the execution path.
//
// The pop side serves the micro-batcher: PopAnyUntil blocks for the batch
// leader, PopMatchingUntil waits for *compatible* followers (same batch key)
// until the batching window closes. Both honor Close(), which drains
// producers and wakes all waiters for shutdown.
#ifndef SRC_SERVE_ADMISSION_QUEUE_H_
#define SRC_SERVE_ADMISSION_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "src/common/status.h"
#include "src/serve/request.h"

namespace seastar {
namespace serve {

class AdmissionQueue {
 public:
  explicit AdmissionQueue(int capacity);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  // Admits `request` or rejects it without blocking:
  //   kResourceExhausted  queue at capacity (load shed),
  //   kUnavailable        queue closed (server shutting down).
  Status TryPush(std::unique_ptr<PendingRequest> request);

  // Pops the oldest request, blocking until one is available or `until`
  // passes (or the queue closes). Null on timeout/closed-and-empty.
  std::unique_ptr<PendingRequest> PopAnyUntil(std::chrono::steady_clock::time_point until);

  // Pops the oldest request whose batch_key equals `key`, blocking until one
  // arrives or `until` passes. Skips (leaves queued) non-matching requests.
  std::unique_ptr<PendingRequest> PopMatchingUntil(
      uint64_t key, std::chrono::steady_clock::time_point until);

  // Wakes every waiter and rejects all future pushes. Queued requests remain
  // poppable so shutdown can drain and fail them explicitly.
  void Close();
  bool closed() const;

  int size() const;
  int capacity() const { return capacity_; }

  // Requests rejected at the door because the queue was full.
  int64_t shed_count() const;

 private:
  const int capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::unique_ptr<PendingRequest>> queue_;
  bool closed_ = false;
  int64_t shed_count_ = 0;
};

}  // namespace serve
}  // namespace seastar

#endif  // SRC_SERVE_ADMISSION_QUEUE_H_
