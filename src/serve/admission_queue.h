// Bounded admission queue: the load-shedding front door of the server.
//
// Admission control is the first line of overload defense (Clipper-style
// serving): a queue that grows without bound converts overload into
// unbounded latency for *every* request, while a bounded queue converts it
// into fast, explicit rejection for the requests that would have missed
// their deadlines anyway. Capacity is therefore a hard bound checked at
// push; the caller surfaces the rejection to the client immediately
// ("shed") without ever touching the execution path.
//
// Multi-tenant isolation happens here, on both sides of the queue:
//
//  * Admission quotas — each tenant may cap its own queued backlog
//    (max_queued). A bursting tenant hits its quota and sheds *its own*
//    requests while the shared capacity stays available to everyone else;
//    without the quota, one tenant's burst fills the global queue and the
//    victims shed at the door instead.
//  * Weighted-fair dequeue — batch leaders are picked by stride scheduling
//    across the per-tenant subqueues: tenant t accumulates `pass` at rate
//    1/weight per dispatched batch, and the non-empty subqueue with the
//    lowest pass goes next. Long-run dispatch shares converge to the weight
//    ratio while staying work-conserving (an idle tenant forfeits its share
//    instead of stalling the queue), and a tenant returning from idle
//    resumes at the current virtual time rather than bursting to "catch up"
//    on slots it never queued for.
//
// The pop side serves the micro-batcher: PopAnyUntil blocks for the batch
// leader, PopMatchingUntil waits for *compatible* followers (same batch key,
// same tenant) until the batching window closes. Followers ride on the
// leader's fairness charge — a batch costs one forward regardless of
// occupancy, so fairness is accounted per batch, not per request. Both honor
// Close(), which drains producers and wakes all waiters for shutdown.
#ifndef SRC_SERVE_ADMISSION_QUEUE_H_
#define SRC_SERVE_ADMISSION_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/serve/request.h"

namespace seastar {
namespace serve {

// Outcome of TryPush. Distinguishing quota sheds from capacity sheds lets
// the server attribute the shed to the bursting tenant in its per-tenant
// accounting (both are "shed" in the global identity).
enum class AdmitResult {
  kAdmitted,
  kShedCapacity,  // Shared queue at capacity.
  kShedQuota,     // The tenant's own max_queued backlog cap.
  kClosed,        // Queue closed (server shutting down).
};

const char* AdmitResultName(AdmitResult result);

class AdmissionQueue {
 public:
  // Starts with one tenant (index 0, weight 1, no quota) so single-tenant
  // callers need no configuration.
  explicit AdmissionQueue(int capacity);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  // Declares tenant `index` (contiguous from 0; growing the tenant set
  // re-uses or appends subqueues). `weight` > 0 sets the fair-share ratio;
  // `max_queued` > 0 caps this tenant's queued backlog, 0 means bounded only
  // by the shared capacity. Must be called before requests for `index` are
  // pushed; not thread-safe against concurrent pushes for the same index.
  void ConfigureTenant(uint32_t index, double weight, int max_queued);

  // Admits `request` (routing by request->tenant_index) or sheds/rejects it
  // without blocking.
  AdmitResult TryPush(std::unique_ptr<PendingRequest> request);

  // Pops the next batch leader under weighted-fair scheduling, blocking
  // until a request is available or `until` passes (or the queue closes).
  // Null on timeout/closed-and-empty. Charges the leader's tenant one
  // dispatch on its fairness meter.
  std::unique_ptr<PendingRequest> PopAnyUntil(std::chrono::steady_clock::time_point until);

  // Pops the oldest request of `tenant_index` whose batch_key equals `key`,
  // blocking until one arrives or `until` passes. Other requests stay
  // queued. Followers are not charged on the fairness meter (see above).
  std::unique_ptr<PendingRequest> PopMatchingUntil(
      uint32_t tenant_index, uint64_t key, std::chrono::steady_clock::time_point until);

  // Wakes every waiter and rejects all future pushes. Queued requests remain
  // poppable so shutdown can drain and fail them explicitly.
  void Close();
  bool closed() const;

  int size() const;
  int size(uint32_t tenant_index) const;
  int capacity() const { return capacity_; }
  int num_tenants() const;

  // Requests rejected at the door because the shared queue was full.
  int64_t shed_count() const;
  // Requests rejected at the door by `tenant_index`'s own quota.
  int64_t quota_shed_count(uint32_t tenant_index) const;

  // The stride scheduler's view of one tenant at this instant, read under a
  // single lock acquisition so the pair is consistent: the tenant's pass and
  // the queue's virtual time. `pass - virtual_time` is how far behind the
  // dispatch frontier the tenant is (≤ 0 means it goes next among non-empty
  // subqueues) — the admission span records both so a trace shows *why* a
  // request waited: a large gap is fair-share debt, not server slowness.
  struct StridePosition {
    double pass = 0.0;
    double virtual_time = 0.0;
    int queued = 0;  // This tenant's backlog, same instant.
  };
  StridePosition stride_position(uint32_t tenant_index) const;

 private:
  struct SubQueue {
    SubQueue() = default;
    // Hand-written because libstdc++'s deque move is not noexcept, which
    // would make vector::resize copy (ill-formed for unique_ptr elements).
    SubQueue(SubQueue&& other) noexcept
        : queue(std::move(other.queue)),
          weight(other.weight),
          max_queued(other.max_queued),
          pass(other.pass),
          quota_shed(other.quota_shed) {}
    SubQueue& operator=(SubQueue&& other) noexcept {
      queue = std::move(other.queue);
      weight = other.weight;
      max_queued = other.max_queued;
      pass = other.pass;
      quota_shed = other.quota_shed;
      return *this;
    }

    std::deque<std::unique_ptr<PendingRequest>> queue;
    double weight = 1.0;
    int max_queued = 0;  // 0 = no per-tenant cap.
    double pass = 0.0;   // Stride-scheduling virtual time; lowest goes next.
    int64_t quota_shed = 0;
  };

  // Index of the non-empty subqueue with the lowest pass, or -1. Caller
  // holds mutex_.
  int PickTenantLocked() const;

  const int capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<SubQueue> tenants_;
  int total_size_ = 0;
  // Pass of the most recently dispatched tenant: the queue's virtual time.
  // Tenants waking from idle clamp up to it so fairness is measured over
  // time actually contended.
  double virtual_time_ = 0.0;
  bool closed_ = false;
  int64_t shed_count_ = 0;
};

}  // namespace serve
}  // namespace seastar

#endif  // SRC_SERVE_ADMISSION_QUEUE_H_
