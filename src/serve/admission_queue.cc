#include "src/serve/admission_queue.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace seastar {
namespace serve {

const char* AdmitResultName(AdmitResult result) {
  switch (result) {
    case AdmitResult::kAdmitted:
      return "admitted";
    case AdmitResult::kShedCapacity:
      return "shed-capacity";
    case AdmitResult::kShedQuota:
      return "shed-quota";
    case AdmitResult::kClosed:
      return "closed";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(int capacity) : capacity_(capacity) {
  SEASTAR_CHECK_GT(capacity, 0);
  tenants_.resize(1);  // Default tenant: weight 1, no quota.
}

void AdmissionQueue::ConfigureTenant(uint32_t index, double weight, int max_queued) {
  SEASTAR_CHECK_GT(weight, 0.0);
  SEASTAR_CHECK_GE(max_queued, 0);
  std::lock_guard<std::mutex> lock(mutex_);
  SEASTAR_CHECK_LE(index, tenants_.size()) << "tenant indices must be contiguous";
  if (index == tenants_.size()) {
    tenants_.emplace_back();
  }
  tenants_[index].weight = weight;
  tenants_[index].max_queued = max_queued;
}

AdmitResult AdmissionQueue::TryPush(std::unique_ptr<PendingRequest> request) {
  SEASTAR_CHECK(request != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return AdmitResult::kClosed;
    }
    SEASTAR_CHECK_LT(request->tenant_index, tenants_.size())
        << "request routed to unconfigured tenant index";
    SubQueue& sub = tenants_[request->tenant_index];
    // Quota before capacity: when a bursting tenant exceeds both, the shed
    // is attributed to its own cap, not the shared resource.
    if (sub.max_queued > 0 && static_cast<int>(sub.queue.size()) >= sub.max_queued) {
      ++sub.quota_shed;
      return AdmitResult::kShedQuota;
    }
    if (total_size_ >= capacity_) {
      ++shed_count_;
      return AdmitResult::kShedCapacity;
    }
    if (sub.queue.empty()) {
      // Returning from idle: resume at the current virtual time instead of
      // replaying the backlog of passes accumulated while absent — stride
      // fairness is over contended time only.
      sub.pass = std::max(sub.pass, virtual_time_);
    }
    sub.queue.push_back(std::move(request));
    ++total_size_;
  }
  ready_.notify_all();
  return AdmitResult::kAdmitted;
}

int AdmissionQueue::PickTenantLocked() const {
  int best = -1;
  for (size_t t = 0; t < tenants_.size(); ++t) {
    if (tenants_[t].queue.empty()) {
      continue;
    }
    if (best < 0 || tenants_[t].pass < tenants_[best].pass) {
      best = static_cast<int>(t);
    }
  }
  return best;
}

std::unique_ptr<PendingRequest> AdmissionQueue::PopAnyUntil(
    std::chrono::steady_clock::time_point until) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait_until(lock, until, [this] { return closed_ || total_size_ > 0; });
  const int pick = PickTenantLocked();
  if (pick < 0) {
    return nullptr;
  }
  SubQueue& sub = tenants_[pick];
  std::unique_ptr<PendingRequest> head = std::move(sub.queue.front());
  sub.queue.pop_front();
  --total_size_;
  // Charge one dispatch: the tenant's pass advances by its stride (1/weight),
  // and the queue's virtual time follows the dispatched tenant.
  virtual_time_ = sub.pass;
  sub.pass += 1.0 / sub.weight;
  head->dequeued_at = std::chrono::steady_clock::now();
  return head;
}

std::unique_ptr<PendingRequest> AdmissionQueue::PopMatchingUntil(
    uint32_t tenant_index, uint64_t key, std::chrono::steady_clock::time_point until) {
  std::unique_lock<std::mutex> lock(mutex_);
  SEASTAR_CHECK_LT(tenant_index, tenants_.size());
  for (;;) {
    SubQueue& sub = tenants_[tenant_index];
    auto it = std::find_if(sub.queue.begin(), sub.queue.end(),
                           [key](const std::unique_ptr<PendingRequest>& r) {
                             return r->batch_key == key;
                           });
    if (it != sub.queue.end()) {
      std::unique_ptr<PendingRequest> match = std::move(*it);
      sub.queue.erase(it);
      --total_size_;
      match->dequeued_at = std::chrono::steady_clock::now();
      return match;
    }
    if (closed_ || ready_.wait_until(lock, until) == std::cv_status::timeout) {
      return nullptr;
    }
  }
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

int AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_size_;
}

int AdmissionQueue::size(uint32_t tenant_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  SEASTAR_CHECK_LT(tenant_index, tenants_.size());
  return static_cast<int>(tenants_[tenant_index].queue.size());
}

int AdmissionQueue::num_tenants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(tenants_.size());
}

int64_t AdmissionQueue::shed_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_count_;
}

AdmissionQueue::StridePosition AdmissionQueue::stride_position(uint32_t tenant_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  SEASTAR_CHECK_LT(tenant_index, tenants_.size());
  const SubQueue& sub = tenants_[tenant_index];
  StridePosition position;
  position.pass = sub.pass;
  position.virtual_time = virtual_time_;
  position.queued = static_cast<int>(sub.queue.size());
  return position;
}

int64_t AdmissionQueue::quota_shed_count(uint32_t tenant_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  SEASTAR_CHECK_LT(tenant_index, tenants_.size());
  return tenants_[tenant_index].quota_shed;
}

}  // namespace serve
}  // namespace seastar
