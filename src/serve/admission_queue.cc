#include "src/serve/admission_queue.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace seastar {
namespace serve {

AdmissionQueue::AdmissionQueue(int capacity) : capacity_(capacity) {
  SEASTAR_CHECK_GT(capacity, 0);
}

Status AdmissionQueue::TryPush(std::unique_ptr<PendingRequest> request) {
  SEASTAR_CHECK(request != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return ErrorStatus(StatusCode::kUnavailable) << "admission queue closed (shutting down)";
    }
    if (static_cast<int>(queue_.size()) >= capacity_) {
      ++shed_count_;
      return ErrorStatus(StatusCode::kResourceExhausted)
             << "admission queue full (capacity " << capacity_ << "): request shed";
    }
    queue_.push_back(std::move(request));
  }
  ready_.notify_all();
  return Status::Ok();
}

std::unique_ptr<PendingRequest> AdmissionQueue::PopAnyUntil(
    std::chrono::steady_clock::time_point until) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait_until(lock, until, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) {
    return nullptr;
  }
  std::unique_ptr<PendingRequest> head = std::move(queue_.front());
  queue_.pop_front();
  head->dequeued_at = std::chrono::steady_clock::now();
  return head;
}

std::unique_ptr<PendingRequest> AdmissionQueue::PopMatchingUntil(
    uint64_t key, std::chrono::steady_clock::time_point until) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [key](const std::unique_ptr<PendingRequest>& r) {
                             return r->batch_key == key;
                           });
    if (it != queue_.end()) {
      std::unique_ptr<PendingRequest> match = std::move(*it);
      queue_.erase(it);
      match->dequeued_at = std::chrono::steady_clock::now();
      return match;
    }
    if (closed_ || ready_.wait_until(lock, until) == std::cv_status::timeout) {
      return nullptr;
    }
  }
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

int AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

int64_t AdmissionQueue::shed_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_count_;
}

}  // namespace serve
}  // namespace seastar
