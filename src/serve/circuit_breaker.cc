#include "src/serve/circuit_breaker.h"

#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/tracing.h"

namespace seastar {
namespace serve {
namespace {

// Exported encoding of BreakerState (documented in docs/INTERNALS.md §12):
// closed=0, open=1, half-open=2. A gauge rather than per-state counters so a
// scrape shows where the breaker *is*, not just how often it moved.
metrics::Gauge* BreakerStateGauge() {
  static metrics::Gauge* gauge =
      metrics::MetricsRegistry::Get().GetGauge("seastar_serve_breaker_state");
  return gauge;
}

void PublishState(BreakerState state) {
  BreakerStateGauge()->Set(static_cast<double>(static_cast<int>(state)));
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(int trip_after, double probe_interval_ms)
    : trip_after_(trip_after),
      probe_interval_(std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::duration<double, std::milli>(probe_interval_ms))) {
  SEASTAR_CHECK_GT(trip_after, 0);
  PublishState(state_);
}

bool CircuitBreaker::AllowExecution() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (Clock::now() - opened_at_ >= probe_interval_) {
        state_ = BreakerState::kHalfOpen;
        ++probes_;
        PublishState(state_);
        FlightRecorder::Get().Record("breaker", "probe", probes_);
        return true;  // This batch is the probe.
      }
      return false;
    case BreakerState::kHalfOpen:
      return false;  // One probe per cycle; its outcome decides the next state.
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    ++recoveries_;
    FlightRecorder::Get().Record("breaker", "half-open -> closed (recovery)", recoveries_);
    SEASTAR_LOG(Info) << "circuit breaker: probe succeeded, closing (recovery " << recoveries_
                      << ")";
  }
  if (state_ != BreakerState::kClosed) {
    PublishState(BreakerState::kClosed);
  }
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
}

void CircuitBreaker::RecordFailure(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    // Probe failed: back to open, restart the probe clock.
    state_ = BreakerState::kOpen;
    opened_at_ = Clock::now();
    PublishState(state_);
    FlightRecorder::Get().Record("breaker", "half-open -> open (probe failed)", probes_);
    return;
  }
  ++consecutive_failures_;
  if (state_ == BreakerState::kClosed && consecutive_failures_ >= trip_after_) {
    state_ = BreakerState::kOpen;
    opened_at_ = Clock::now();
    ++trips_;
    last_trip_reason_ = reason;
    PublishState(state_);
    // The request whose batch tripped the breaker is tail-worthy by
    // definition; flag the ambient trace so it is retained even unsampled.
    if (trace::RequestTrace* trace = trace::CurrentTrace()) {
      trace->AddFlag(trace::kBreaker);
    }
    FlightRecorder::Get().Record("breaker", "closed -> open (trip)", trips_,
                                 consecutive_failures_);
    SEASTAR_LOG(Warning) << "circuit breaker: tripped after " << consecutive_failures_
                         << " consecutive failures (" << reason << "); serving degraded"
                         << LogKv("trips", trips_);
  }
}

void CircuitBreaker::RecordProbeAbandoned() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BreakerState::kHalfOpen) {
    return;
  }
  state_ = BreakerState::kOpen;
  PublishState(state_);
  FlightRecorder::Get().Record("breaker", "half-open -> open (probe abandoned)", probes_);
  // Backdate the open timestamp so AllowExecution admits the next probe
  // right away instead of waiting out another full interval.
  opened_at_ = Clock::now() - probe_interval_;
}

void CircuitBreaker::NoteBackendReplaced() {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kClosed) {
    return;
  }
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kOpen;
    PublishState(state_);
  }
  // Backdate so AllowExecution admits a probe of the new version on the
  // very next batch.
  opened_at_ = Clock::now() - probe_interval_;
  FlightRecorder::Get().Record("breaker", "backend replaced: probe new version next batch",
                               probes_);
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consecutive_failures_;
}

int64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

int64_t CircuitBreaker::recoveries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recoveries_;
}

int64_t CircuitBreaker::probes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return probes_;
}

std::string CircuitBreaker::last_trip_reason() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_trip_reason_;
}

}  // namespace serve
}  // namespace seastar
