#include "src/serve/circuit_breaker.h"

#include "src/common/logging.h"

namespace seastar {
namespace serve {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(int trip_after, double probe_interval_ms)
    : trip_after_(trip_after),
      probe_interval_(std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::duration<double, std::milli>(probe_interval_ms))) {
  SEASTAR_CHECK_GT(trip_after, 0);
}

bool CircuitBreaker::AllowExecution() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (Clock::now() - opened_at_ >= probe_interval_) {
        state_ = BreakerState::kHalfOpen;
        ++probes_;
        return true;  // This batch is the probe.
      }
      return false;
    case BreakerState::kHalfOpen:
      return false;  // One probe per cycle; its outcome decides the next state.
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    ++recoveries_;
    SEASTAR_LOG(Info) << "circuit breaker: probe succeeded, closing (recovery " << recoveries_
                      << ")";
  }
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
}

void CircuitBreaker::RecordFailure(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    // Probe failed: back to open, restart the probe clock.
    state_ = BreakerState::kOpen;
    opened_at_ = Clock::now();
    return;
  }
  ++consecutive_failures_;
  if (state_ == BreakerState::kClosed && consecutive_failures_ >= trip_after_) {
    state_ = BreakerState::kOpen;
    opened_at_ = Clock::now();
    ++trips_;
    last_trip_reason_ = reason;
    SEASTAR_LOG(Warning) << "circuit breaker: tripped after " << consecutive_failures_
                         << " consecutive failures (" << reason << "); serving degraded";
  }
}

void CircuitBreaker::RecordProbeAbandoned() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BreakerState::kHalfOpen) {
    return;
  }
  state_ = BreakerState::kOpen;
  // Backdate the open timestamp so AllowExecution admits the next probe
  // right away instead of waiting out another full interval.
  opened_at_ = Clock::now() - probe_interval_;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consecutive_failures_;
}

int64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

int64_t CircuitBreaker::recoveries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recoveries_;
}

int64_t CircuitBreaker::probes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return probes_;
}

std::string CircuitBreaker::last_trip_reason() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_trip_reason_;
}

}  // namespace serve
}  // namespace seastar
