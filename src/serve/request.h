// Request/response types of the inference serving runtime.
//
// A request asks for the logits of a handful of vertices under a deadline.
// The models are full-graph (one forward computes every vertex's logits), so
// the unit of execution is a *forward pass* and the unit of admission is a
// request; the micro-batcher's job is to amortize one forward across every
// compatible request currently queued.
#ifndef SRC_SERVE_REQUEST_H_
#define SRC_SERVE_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/status.h"
#include "src/tensor/tensor.h"

namespace seastar {

namespace trace {
class RequestTrace;
}  // namespace trace

namespace serve {

class ModelEntry;

struct InferenceRequest {
  // Vertex ids whose logits the client wants (gathered from the full-graph
  // forward). Must be non-empty and within [0, num_vertices).
  std::vector<int32_t> vertices;

  // Per-request deadline in milliseconds from admission; 0 uses the server
  // default, negative disables the deadline entirely (batch/offline use).
  double deadline_ms = 0.0;

  // The (model, graph) the client believes it is talking to; 0 means
  // "whatever the server runs". Requests with a non-zero fingerprint that
  // does not match the server's are rejected at admission — they could batch
  // with nothing and their answer would be for the wrong model.
  uint64_t model_fingerprint = 0;

  // Which tenant this request belongs to; "" routes to the server's default
  // tenant. Unknown tenant names are rejected at admission.
  std::string tenant;
};

struct InferenceResponse {
  Tensor logits;  // [request.vertices.size(), num_classes]

  // True when served from the last-known-good cache (circuit breaker open or
  // retries exhausted) rather than a fresh forward pass.
  bool degraded = false;

  // Transient-fault retries this request's batch paid before succeeding.
  int retries = 0;

  // How many requests shared the forward pass that produced this answer.
  int batch_size = 1;

  double queue_ms = 0.0;  // Admission -> dequeue.
  double exec_ms = 0.0;   // Dequeue -> fulfillment.
  double total_ms = 0.0;  // Admission -> fulfillment.

  // Which (model, weights version) produced the answer and which tenant it
  // was served for. A request admitted before a hot-swap reports the version
  // it was admitted against even when fulfilled after the flip.
  std::string model_id;
  int64_t model_version = 0;
  std::string tenant;

  // Trace id assigned at admission (tracing.h). Always nonzero when the
  // server traces; quote it when reporting a slow request — the server's
  // trace export (--trace-out) indexes span trees by this id. `sampled` says
  // whether the head sampler picked this request (anomalous and slowest-N
  // requests are retained regardless).
  uint64_t trace_id = 0;
  bool sampled = false;
};

// A request in flight inside the server: admission metadata plus the promise
// the client's future is watching. Owned by the queue, then by the batch,
// and consumed by fulfillment.
struct PendingRequest {
  InferenceRequest request;
  Deadline deadline;
  uint64_t id = 0;         // Admission-ordered id; names the request in the
                           // flight recorder and in structured log lines.
  uint64_t batch_key = 0;  // Requests batch only with an equal key.
  uint32_t tenant_index = 0;  // Resolved tenant (subqueue index).
  // The (model, weights version) pinned at admission. RCU read side of the
  // hot-swap protocol: a flip publishes a new entry for *future* admissions,
  // while this shared_ptr keeps the admitted version alive (and executed
  // against) until every in-flight request holding it is fulfilled.
  std::shared_ptr<const ModelEntry> entry;
  std::chrono::steady_clock::time_point admitted_at{};
  std::chrono::steady_clock::time_point dequeued_at{};
  // Per-request span tree, owned by the server's Tracer pool (never by this
  // struct). Single-owner mutation: the client thread writes spans before
  // TryPush, the serving thread after the pop; the queue mutex orders the
  // handoff. Null when tracing is disabled.
  trace::RequestTrace* trace = nullptr;
  std::promise<StatusOr<InferenceResponse>> promise;
};

}  // namespace serve
}  // namespace seastar

#endif  // SRC_SERVE_REQUEST_H_
