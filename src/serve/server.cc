#include "src/serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include "src/common/fault.h"
#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/profiler.h"
#include "src/core/checkpoint.h"
#include "src/tensor/allocator.h"
#include "src/tensor/autograd.h"

namespace seastar {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

// Registry handles for the serving path, resolved once per process and
// cached (the static-init guard is the only per-call cost). Request-rate
// code touches these through one relaxed add / store each; the registry is
// never consulted per request — tests assert lookups() stays flat.
struct ServeMetrics {
  metrics::Counter* submitted;
  metrics::Counter* rejected;
  metrics::Counter* shed;
  metrics::Counter* quota_shed;
  metrics::Counter* served;
  metrics::Counter* degraded;
  metrics::Counter* expired;
  metrics::Counter* failed;
  metrics::Counter* retries;
  metrics::Counter* batches;
  metrics::Counter* unit_aborts;
  metrics::Counter* boot_retries;
  metrics::Counter* swaps;
  metrics::Counter* swap_failures;
  metrics::Counter* swap_retired;
  metrics::Histogram* request_latency;  // End-to-end, answered requests only.
  metrics::Histogram* queue_wait;       // Admission -> dequeue, answered only.
  metrics::Histogram* batch_occupancy;  // Live requests per executed batch.
  metrics::Gauge* queue_depth;
  metrics::Gauge* inflight;
};

const ServeMetrics& GetServeMetrics() {
  static const ServeMetrics metrics = [] {
    metrics::MetricsRegistry& r = metrics::MetricsRegistry::Get();
    ServeMetrics m;
    m.submitted = r.GetCounter("seastar_serve_submitted_total");
    m.rejected = r.GetCounter("seastar_serve_rejected_total");
    m.shed = r.GetCounter("seastar_serve_shed_total");
    m.quota_shed = r.GetCounter("seastar_serve_quota_shed_total");
    m.served = r.GetCounter("seastar_serve_served_total");
    m.degraded = r.GetCounter("seastar_serve_degraded_total");
    m.expired = r.GetCounter("seastar_serve_expired_total");
    m.failed = r.GetCounter("seastar_serve_failed_total");
    m.retries = r.GetCounter("seastar_serve_retries_total");
    m.batches = r.GetCounter("seastar_serve_batches_total");
    m.unit_aborts = r.GetCounter("seastar_serve_deadline_unit_aborts_total");
    m.boot_retries = r.GetCounter("seastar_serve_boot_retries_total");
    m.swaps = r.GetCounter("seastar_serve_swaps_total");
    m.swap_failures = r.GetCounter("seastar_serve_swap_failures_total");
    m.swap_retired = r.GetCounter("seastar_serve_swap_retired_total");
    m.request_latency = r.GetHistogram("seastar_serve_request_latency_ms");
    m.queue_wait = r.GetHistogram("seastar_serve_queue_wait_ms");
    m.batch_occupancy = r.GetHistogram("seastar_serve_batch_occupancy");
    m.queue_depth = r.GetGauge("seastar_serve_queue_depth");
    m.inflight = r.GetGauge("seastar_serve_inflight_requests");
    return m;
  }();
  return metrics;
}

double MillisBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// Per-tenant registry name with the Prometheus label baked in, e.g.
// seastar_serve_tenant_served_total{tenant="analytics"}. The tenant name is
// client-supplied configuration — escape it, or a name containing `"` or a
// newline corrupts the whole text exposition.
std::string TenantMetricName(const char* base, const std::string& tenant) {
  return std::string("seastar_serve_tenant_") + base + "_total{tenant=\"" +
         metrics::EscapeLabelValue(tenant) + "\"}";
}

// Batch key = entry fingerprint (model id, weights version, architecture,
// graph) mixed with the tenant index: two tenants sharing one model id still
// never coalesce into one forward — their QoS, breaker, and accounting are
// distinct even when their answers would be identical.
uint64_t BatchKeyFor(uint64_t entry_fingerprint, uint32_t tenant_index) {
  uint64_t key = entry_fingerprint;
  key ^= static_cast<uint64_t>(tenant_index) + 0x9e3779b97f4a7c15ull + (key << 6) + (key >> 2);
  return key != 0 ? key : 1;
}

bool HasNonFinite(const Tensor& t) {
  const float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) {
      return true;
    }
  }
  return false;
}

std::shared_ptr<ModelRegistry> MakeSingleModelRegistry(GnnModel& model, const Dataset& data) {
  auto registry = std::make_shared<ModelRegistry>();
  StatusOr<std::shared_ptr<const ModelEntry>> entry =
      registry->RegisterBorrowed("default", model, data);
  SEASTAR_CHECK(entry.has_value()) << entry.status().ToString();
  return registry;
}

// Fills in the default tenant when the config names none, binding it to the
// registry's single entry (or "default" when ambiguous — Start() validates).
ServeConfig NormalizeTenants(ServeConfig config, const ModelRegistry& registry) {
  if (config.tenants.empty()) {
    TenantConfig tenant;
    const std::vector<ModelEntryInfo> entries = registry.List();
    if (entries.size() == 1) {
      tenant.model_id = entries[0].model_id;
    }
    config.tenants.push_back(std::move(tenant));
  }
  return config;
}

}  // namespace

Server::Server(GnnModel& model, const Dataset& data, ServeConfig config)
    : Server(MakeSingleModelRegistry(model, data), std::move(config)) {}

Server::Server(std::shared_ptr<ModelRegistry> registry, ServeConfig config)
    : config_(NormalizeTenants(std::move(config), *registry)),
      profiler_((config_.profiler != nullptr && config_.profiler->enabled()) ? config_.profiler
                                                                             : nullptr),
      registry_(std::move(registry)),
      queue_(config_.queue_capacity),
      batcher_(queue_, BatcherOptions{config_.max_batch, config_.max_batch_delay_ms,
                                      /*idle_poll_ms=*/5.0}) {
  if (config_.tracing.enabled) {
    tracer_ = std::make_unique<trace::Tracer>(config_.tracing);
  }
  metrics::MetricsRegistry& registry_metrics = metrics::MetricsRegistry::Get();
  tenants_.reserve(config_.tenants.size());
  for (size_t i = 0; i < config_.tenants.size(); ++i) {
    const TenantConfig& tc = config_.tenants[i];
    SEASTAR_CHECK(!tc.name.empty()) << "tenant " << i << " has an empty name";
    SEASTAR_CHECK_GT(tc.weight, 0.0) << "tenant '" << tc.name << "': weight must be positive";
    SEASTAR_CHECK_GE(tc.max_queued, 0) << "tenant '" << tc.name << "': negative quota";
    auto tenant = std::make_unique<Tenant>();
    tenant->index = static_cast<uint32_t>(i);
    tenant->config = tc;
    tenant->breaker = std::make_unique<CircuitBreaker>(config_.breaker_trip_after,
                                                       config_.breaker_probe_interval_ms);
    tenant->m_submitted = registry_metrics.GetCounter(TenantMetricName("submitted", tc.name));
    tenant->m_rejected = registry_metrics.GetCounter(TenantMetricName("rejected", tc.name));
    tenant->m_shed = registry_metrics.GetCounter(TenantMetricName("shed", tc.name));
    tenant->m_quota_shed = registry_metrics.GetCounter(TenantMetricName("quota_shed", tc.name));
    tenant->m_served = registry_metrics.GetCounter(TenantMetricName("served", tc.name));
    tenant->m_degraded = registry_metrics.GetCounter(TenantMetricName("degraded", tc.name));
    tenant->m_expired = registry_metrics.GetCounter(TenantMetricName("expired", tc.name));
    tenant->m_failed = registry_metrics.GetCounter(TenantMetricName("failed", tc.name));
    const bool inserted =
        tenant_index_.emplace(tc.name, static_cast<uint32_t>(i)).second;
    SEASTAR_CHECK(inserted) << "duplicate tenant name '" << tc.name << "'";
    queue_.ConfigureTenant(static_cast<uint32_t>(i), tc.weight, tc.max_queued);
    if (tracer_ != nullptr) {
      tracer_->SetTenantName(static_cast<uint32_t>(i), tc.name);
    }
    tenants_.push_back(std::move(tenant));
  }
}

Server::~Server() { Shutdown(); }

Status Server::RestoreFromCheckpoint(const ModelEntry& entry) {
  // Boot-time transient faults (FaultSite::kCheckpointRead surfaces as
  // kUnavailable) are retried with backoff; structural errors (corrupt file
  // after .prev fallback, wrong model) are fatal to Start().
  StatusOr<TrainCheckpoint> loaded = ErrorStatus(StatusCode::kInternal) << "unreachable";
  for (int attempt = 0; attempt <= config_.boot_retries; ++attempt) {
    loaded = LoadCheckpoint(config_.checkpoint_path);
    if (loaded.has_value() || loaded.status().code() != StatusCode::kUnavailable) {
      break;
    }
    if (attempt < config_.boot_retries) {
      UpdateStats([](ServerStats& s) { ++s.boot_retries; });
      GetServeMetrics().boot_retries->Add(1);
      const double backoff_ms = config_.retry_base_backoff_ms * static_cast<double>(1 << attempt);
      SEASTAR_LOG(Warning) << "serve boot: transient checkpoint read failure ("
                           << loaded.status().message() << "); retrying in " << backoff_ms
                           << " ms";
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(backoff_ms));
    }
  }
  if (!loaded.has_value()) {
    return loaded.status();
  }
  Status applied = ApplyCheckpointToModel(loaded.value(), entry.model(),
                                          "checkpoint '" + config_.checkpoint_path + "'");
  if (!applied.ok()) {
    return applied;
  }
  SEASTAR_LOG(Info) << "serve boot: restored '" << config_.checkpoint_path << "' (epoch "
                    << loaded->epoch << ") into model '" << entry.model_id() << "'";
  return Status::Ok();
}

Status Server::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return ErrorStatus(StatusCode::kInvalidArgument) << "server already started";
  }

  // Every tenant must resolve to a registered entry before the first
  // admission: a dangling model id should fail the boot, not the requests.
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    if (registry_->Lookup(tenant->config.model_id) == nullptr) {
      return ErrorStatus(StatusCode::kNotFound)
             << "tenant '" << tenant->config.name << "' is bound to unregistered model id '"
             << tenant->config.model_id << "'";
    }
  }

  {
    ProfileScope boot_scope(profiler_, "boot", "serve");
    if (!config_.checkpoint_path.empty()) {
      std::shared_ptr<const ModelEntry> entry =
          registry_->Lookup(tenants_[0]->config.model_id);
      Status restored = RestoreFromCheckpoint(*entry);
      if (!restored.ok()) {
        return restored;
      }
    }
  }

  if (config_.warmup) {
    // First forward per distinct model compiles every plan into the
    // PlanCache and sizes the allocator pool; it also seeds the tenants'
    // last-known-good caches so degraded mode has answers from the first
    // request on. Warmup shares the serving retry policy because boot-time
    // fault injection hits it too.
    ProfileScope warm_scope(profiler_, "warmup", "serve");
    std::map<const ModelEntry*, Tensor> warm_logits;
    for (const std::unique_ptr<Tenant>& tenant : tenants_) {
      std::shared_ptr<const ModelEntry> entry = registry_->Lookup(tenant->config.model_id);
      auto warmed = warm_logits.find(entry.get());
      if (warmed == warm_logits.end()) {
        Deadline no_deadline;  // Unarmed: warmup may take as long as it takes.
        int retries_paid = 0;
        AttemptResult warm = ExecuteWithRetries(*entry, no_deadline, &retries_paid);
        UpdateStats([retries_paid](ServerStats& s) { s.retries += retries_paid; });
        GetServeMetrics().retries->Add(retries_paid);
        if (!warm.status.ok()) {
          // Not fatal: the breaker/retry machinery will keep trying per batch.
          SEASTAR_LOG(Warning) << "serve boot: warmup forward of '" << entry->model_id()
                               << "' failed (" << warm.status.message() << "); starting anyway";
        }
        warmed = warm_logits.emplace(entry.get(), std::move(warm.logits)).first;
      }
      if (warmed->second.defined()) {
        std::lock_guard<std::mutex> lock(lkg_mutex_);
        tenant->lkg = warmed->second.Clone();
      }
    }
  }

  started_.store(true, std::memory_order_release);
  serving_thread_ = std::thread([this] { ServeLoop(); });
  return Status::Ok();
}

void Server::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) {
    return;
  }
  if (!stopping_.exchange(true)) {
    // Closing the queue rejects new pushes; the serving loop drains whatever
    // is already queued (every promise is fulfilled) before exiting.
    queue_.Close();
  }
  // Concurrent Shutdown calls (e.g. explicit Shutdown racing the destructor)
  // must not both touch the std::thread: join under a mutex, where
  // joinable() flips atomically with the join itself.
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (serving_thread_.joinable()) {
    serving_thread_.join();
  }
  // Swaps staged after the serving loop exited would otherwise never
  // resolve; every swap future is fulfilled, like every request future.
  std::deque<PendingSwap> orphaned;
  {
    std::lock_guard<std::mutex> swap_lock(swap_mutex_);
    orphaned.swap(pending_swaps_);
  }
  for (PendingSwap& swap : orphaned) {
    swap.promise.set_value(ErrorStatus(StatusCode::kUnavailable)
                           << "server shut down before applying the staged swap");
  }
}

Server::Tenant* Server::FindTenant(const std::string& name) const {
  auto it = tenant_index_.find(name);
  return it == tenant_index_.end() ? nullptr : tenants_[it->second].get();
}

std::future<StatusOr<InferenceResponse>> Server::Submit(InferenceRequest request) {
  const ServeMetrics& metrics = GetServeMetrics();
  std::promise<StatusOr<InferenceResponse>> rejected;
  std::future<StatusOr<InferenceResponse>> rejected_future = rejected.get_future();

  if (!started_.load(std::memory_order_acquire)) {
    rejected.set_value(ErrorStatus(StatusCode::kUnavailable) << "server not started");
    return rejected_future;
  }
  Tenant* tenant = nullptr;
  if (request.tenant.empty()) {
    tenant = tenants_[0].get();
  } else {
    tenant = FindTenant(request.tenant);
    if (tenant == nullptr) {
      // No tenant to attribute this to — it only counts globally.
      UpdateStats([](ServerStats& s) { ++s.rejected; });
      metrics.rejected->Add(1);
      rejected.set_value(ErrorStatus(StatusCode::kInvalidArgument)
                         << "unknown tenant '" << request.tenant << "'");
      return rejected_future;
    }
  }
  std::shared_ptr<const ModelEntry> entry = registry_->Lookup(tenant->config.model_id);
  if (entry == nullptr) {
    UpdateStats(*tenant, [](ServerStats& g, TenantStats& t) {
      ++g.rejected;
      ++t.rejected;
    });
    metrics.rejected->Add(1);
    tenant->m_rejected->Add(1);
    rejected.set_value(ErrorStatus(StatusCode::kUnavailable)
                       << "model id '" << tenant->config.model_id << "' is not registered");
    return rejected_future;
  }
  const auto reject_invalid = [&](Status status) {
    UpdateStats(*tenant, [](ServerStats& g, TenantStats& t) {
      ++g.rejected;
      ++t.rejected;
    });
    metrics.rejected->Add(1);
    tenant->m_rejected->Add(1);
    rejected.set_value(std::move(status));
    return std::move(rejected_future);
  };
  if (request.vertices.empty()) {
    return reject_invalid(ErrorStatus(StatusCode::kInvalidArgument)
                          << "request names no vertices");
  }
  const int64_t num_vertices = entry->data().graph.num_vertices();
  for (int32_t v : request.vertices) {
    if (v < 0 || v >= num_vertices) {
      return reject_invalid(ErrorStatus(StatusCode::kInvalidArgument)
                            << "vertex " << v << " out of range [0, " << num_vertices << ")");
    }
  }
  if (request.model_fingerprint != 0 && request.model_fingerprint != entry->fingerprint()) {
    return reject_invalid(ErrorStatus(StatusCode::kInvalidArgument)
                          << "request pins model fingerprint " << request.model_fingerprint
                          << " but tenant '" << tenant->config.name << "' runs "
                          << entry->fingerprint() << " ('" << entry->model_id() << "' v"
                          << entry->version() << ")");
  }

  auto pending = std::make_unique<PendingRequest>();
  const double deadline_ms =
      request.deadline_ms == 0.0 ? config_.default_deadline_ms : request.deadline_ms;
  if (deadline_ms > 0.0) {
    pending->deadline = Deadline::AfterMillis(deadline_ms);
  }
  pending->request = std::move(request);
  pending->id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  pending->tenant_index = tenant->index;
  // RCU pin: this request is answered by the entry it was admitted against,
  // even if a hot-swap flips the live entry while it waits.
  pending->batch_key = BatchKeyFor(entry->fingerprint(), tenant->index);
  pending->entry = std::move(entry);
  pending->admitted_at = Clock::now();
  const uint64_t id = pending->id;
  const Clock::time_point admitted_at = pending->admitted_at;
  std::future<StatusOr<InferenceResponse>> future = pending->promise.get_future();

  // Trace the request from the admission decision on. Held locally as well as
  // on the pending request: TryPush consumes the PendingRequest even when it
  // sheds, so the shed/closed paths finish the trace through this pointer.
  // The admission span closes *before* the push — once the request is queued
  // the serving thread may own the trace immediately.
  trace::RequestTrace* rtrace = nullptr;
  if (tracer_ != nullptr) {
    rtrace = tracer_->StartTrace(tenant->index, id);
    rtrace->BeginSpanAt("request", admitted_at);
    const AdmissionQueue::StridePosition stride = queue_.stride_position(tenant->index);
    const int admission = rtrace->AddSpan("admission", admitted_at, Clock::now());
    rtrace->SetDetail(admission, tenant->config.name);
    // stride_lag > 0: this tenant is behind the dispatch frontier (fair-share
    // debt); queued_ahead: its own backlog at admission. Together they say
    // whether a long queue span was scheduling or load.
    rtrace->SetArgs(admission, "stride_lag_x1000",
                    static_cast<int64_t>((stride.pass - stride.virtual_time) * 1000.0),
                    "queued_ahead", static_cast<int64_t>(stride.queued));
    pending->trace = rtrace;
  }

  const AdmitResult admitted = queue_.TryPush(std::move(pending));
  switch (admitted) {
    case AdmitResult::kAdmitted:
      UpdateStats(*tenant, [](ServerStats& g, TenantStats& t) {
        ++g.submitted;
        ++t.submitted;
      });
      metrics.submitted->Add(1);
      tenant->m_submitted->Add(1);
      metrics.queue_depth->Set(static_cast<double>(queue_.size()));
      return future;
    case AdmitResult::kClosed:
      // The request never entered the serving pipeline: a rejection, outside
      // the submitted identity.
      UpdateStats(*tenant, [](ServerStats& g, TenantStats& t) {
        ++g.rejected;
        ++t.rejected;
      });
      metrics.rejected->Add(1);
      tenant->m_rejected->Add(1);
      if (rtrace != nullptr) {
        tracer_->FinishTrace(rtrace, MillisBetween(admitted_at, Clock::now()), "closed");
      }
      rejected.set_value(ErrorStatus(StatusCode::kUnavailable)
                         << "admission queue closed (shutting down)");
      return rejected_future;
    case AdmitResult::kShedCapacity:
    case AdmitResult::kShedQuota: {
      // Answer immediately so the client can back off instead of waiting out
      // its deadline. Sheds are inside the submitted identity — all counters
      // move under one lock so no reader sees the request half accounted.
      const bool quota = admitted == AdmitResult::kShedQuota;
      UpdateStats(*tenant, [quota](ServerStats& g, TenantStats& t) {
        ++g.submitted;
        ++t.submitted;
        ++g.shed;
        ++t.shed;
        if (quota) {
          ++g.quota_shed;
          ++t.quota_shed;
        }
      });
      metrics.submitted->Add(1);
      tenant->m_submitted->Add(1);
      metrics.shed->Add(1);
      tenant->m_shed->Add(1);
      if (rtrace != nullptr) {
        // Sheds are anomalies: retained by the tracer regardless of head
        // sampling, so overload drills can name every turned-away request.
        rtrace->AddFlag(trace::kShed);
        tracer_->FinishTrace(rtrace, MillisBetween(admitted_at, Clock::now()), "shed");
      }
      if (quota) {
        metrics.quota_shed->Add(1);
        tenant->m_quota_shed->Add(1);
        FlightRecorder::Get().Record("serve", "request shed (tenant over quota)", id,
                                     static_cast<int64_t>(tenant->index));
        rejected.set_value(ErrorStatus(StatusCode::kResourceExhausted)
                           << "tenant '" << tenant->config.name << "' over admission quota ("
                           << tenant->config.max_queued << " queued): request shed");
      } else {
        FlightRecorder::Get().Record("serve", "request shed (queue full)", id);
        rejected.set_value(ErrorStatus(StatusCode::kResourceExhausted)
                           << "admission queue full (capacity " << queue_.capacity()
                           << "): request shed");
      }
      return rejected_future;
    }
  }
  rejected.set_value(ErrorStatus(StatusCode::kInternal) << "unreachable admission outcome");
  return rejected_future;
}

StatusOr<InferenceResponse> Server::Infer(InferenceRequest request) {
  return Submit(std::move(request)).get();
}

std::future<StatusOr<int64_t>> Server::RequestHotSwap(const std::string& model_id,
                                                      const std::string& checkpoint_path) {
  std::promise<StatusOr<int64_t>> promise;
  std::future<StatusOr<int64_t>> future = promise.get_future();
  if (!started_.load(std::memory_order_acquire)) {
    promise.set_value(ErrorStatus(StatusCode::kFailedPrecondition)
                      << "hot-swap requires a started server");
    return future;
  }
  // Staging — checkpoint load + factory build + weight copy — happens on
  // *this* thread; serving is untouched until the serving thread warms and
  // publishes the staged entry between batches.
  StatusOr<std::shared_ptr<const ModelEntry>> staged =
      registry_->PrepareSwap(model_id, checkpoint_path);
  if (!staged.has_value()) {
    UpdateStats([](ServerStats& s) { ++s.swap_failures; });
    GetServeMetrics().swap_failures->Add(1);
    FlightRecorder::Get().Record("swap", "stage failed", 0,
                                 static_cast<int64_t>(staged.status().code()));
    promise.set_value(staged.status());
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(swap_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      promise.set_value(ErrorStatus(StatusCode::kUnavailable)
                        << "server shutting down; staged swap dropped");
      return future;
    }
    pending_swaps_.push_back(PendingSwap{std::move(staged.value()), std::move(promise)});
  }
  return future;
}

StatusOr<int64_t> Server::HotSwap(const std::string& model_id,
                                  const std::string& checkpoint_path) {
  return RequestHotSwap(model_id, checkpoint_path).get();
}

void Server::ProcessPendingSwaps() {
  std::deque<PendingSwap> staged;
  {
    std::lock_guard<std::mutex> lock(swap_mutex_);
    staged.swap(pending_swaps_);
  }
  for (PendingSwap& swap : staged) {
    const std::string model_id = swap.staged->model_id();
    const int64_t version = swap.staged->version();
    char detail[88];
    ProfileScope swap_scope(profiler_, "swap", "serve");

    // Warmup forward of the staged entry: compiles nothing new (same
    // architecture -> PlanCache hits), touches only pooled tensors, and
    // produces the logits that seed the affected tenants' LKG caches. A
    // swap that cannot complete one forward must not go live.
    std::snprintf(detail, sizeof(detail), "warm %s v%lld", model_id.c_str(),
                  static_cast<long long>(version));
    FlightRecorder::Get().Record("swap", detail, version);
    Deadline no_deadline;
    int retries_paid = 0;
    AttemptResult warm = ExecuteWithRetries(*swap.staged, no_deadline, &retries_paid);
    UpdateStats([retries_paid](ServerStats& s) { s.retries += retries_paid; });
    GetServeMetrics().retries->Add(retries_paid);
    if (!warm.status.ok()) {
      UpdateStats([](ServerStats& s) { ++s.swap_failures; });
      GetServeMetrics().swap_failures->Add(1);
      std::snprintf(detail, sizeof(detail), "warm failed %s v%lld", model_id.c_str(),
                    static_cast<long long>(version));
      FlightRecorder::Get().Record("swap", detail, version,
                                   static_cast<int64_t>(warm.status.code()));
      SEASTAR_LOG(Warning) << "hot-swap: warmup of '" << model_id << "' v" << version
                           << " failed (" << warm.status.message() << "); old version stays live";
      swap.promise.set_value(warm.status);
      continue;
    }

    StatusOr<std::shared_ptr<const ModelEntry>> replaced =
        registry_->Publish(std::move(swap.staged));
    if (!replaced.has_value()) {
      UpdateStats([](ServerStats& s) { ++s.swap_failures; });
      GetServeMetrics().swap_failures->Add(1);
      swap.promise.set_value(replaced.status());
      continue;
    }

    for (const std::unique_ptr<Tenant>& tenant : tenants_) {
      if (tenant->config.model_id != model_id) {
        continue;
      }
      {
        // Fresh LKG from the new weights: degraded answers track the version
        // new admissions are pinned to.
        std::lock_guard<std::mutex> lock(lkg_mutex_);
        tenant->lkg = warm.logits.Clone();
      }
      // Accumulated failure state described the old weights; an OPEN breaker
      // probes the new version on the very next batch.
      tenant->breaker->NoteBackendReplaced();
    }

    UpdateStats([](ServerStats& s) { ++s.swaps; });
    GetServeMetrics().swaps->Add(1);
    std::snprintf(detail, sizeof(detail), "flip %s v%lld -> v%lld", model_id.c_str(),
                  static_cast<long long>(replaced.value()->version()),
                  static_cast<long long>(version));
    FlightRecorder::Get().Record("swap", detail, version);
    SEASTAR_LOG(Info) << "hot-swap: '" << model_id << "' v" << replaced.value()->version()
                      << " -> v" << version << " live; old version drains in flight";
    swap.promise.set_value(version);
    // `replaced` drops here; the old generation retires once in-flight
    // requests release their pins (PollRetirements observes the drain).
  }
}

void Server::PollRetirements() {
  for (const RetiredEntry& retired : registry_->PollRetired()) {
    UpdateStats([](ServerStats& s) { ++s.swap_retired; });
    GetServeMetrics().swap_retired->Add(1);
    char detail[88];
    std::snprintf(detail, sizeof(detail), "retire %s v%lld (drained)", retired.model_id.c_str(),
                  static_cast<long long>(retired.version));
    FlightRecorder::Get().Record("swap", detail, retired.version);
    SEASTAR_LOG(Info) << "hot-swap: '" << retired.model_id << "' v" << retired.version
                      << " fully drained and retired";
  }
}

void Server::ServeLoop() {
  const ServeMetrics& metrics = GetServeMetrics();
  for (;;) {
    ProcessPendingSwaps();
    PollRetirements();
    std::vector<std::unique_ptr<PendingRequest>> batch = batcher_.NextBatch();
    metrics.queue_depth->Set(static_cast<double>(queue_.size()));
    if (batch.empty()) {
      if (queue_.closed() && queue_.size() == 0) {
        ProcessPendingSwaps();  // Fail-or-apply anything staged mid-shutdown.
        PollRetirements();
        return;  // Drained; shutdown completes.
      }
      continue;
    }
    metrics.inflight->Set(static_cast<double>(batch.size()));
    ServeBatch(std::move(batch));
    metrics.inflight->Set(0.0);
  }
}

Server::AttemptResult Server::RunForwardOnce(const ModelEntry& entry, const Deadline& deadline) {
  AttemptResult result;
  TensorAllocator& allocator = TensorAllocator::Get();
  UpdateStats([](ServerStats& s) { ++s.batches; });
  GetServeMetrics().batches->Add(1);
  try {
    // The executors poll this deadline at unit/op boundaries
    // (CheckExecutionDeadline) and abort expired work mid-forward.
    ScopedDeadline ambient(&deadline);
    Var out = entry.model().Forward(/*training=*/false);
    if (allocator.failure_injected()) {
      allocator.ClearInjectedFailure();
      result.status = ErrorStatus(StatusCode::kUnavailable)
                      << "transient allocation failure injected during forward";
      result.retryable = true;
      return result;
    }
    Tensor logits = out.value();
    if (HasNonFinite(logits)) {
      // Poisoned output is not transient: retrying the same weights yields
      // the same NaNs. Fail fast and let the breaker count it.
      result.status = ErrorStatus(StatusCode::kInternal) << "forward produced non-finite logits";
      result.retryable = false;
      return result;
    }
    result.status = Status::Ok();
    result.logits = std::move(logits);
    return result;
  } catch (const DeadlineExceeded& e) {
    allocator.ClearInjectedFailure();
    UpdateStats([](ServerStats& s) { ++s.deadline_unit_aborts; });
    GetServeMetrics().unit_aborts->Add(1);
    FlightRecorder::Get().Record("serve", "forward aborted at unit boundary (deadline)");
    result.status = ErrorStatus(StatusCode::kDeadlineExceeded) << e.what();
    result.retryable = false;
    result.unit_abort = true;
    return result;
  } catch (const std::exception& e) {
    allocator.ClearInjectedFailure();
    result.status = ErrorStatus(StatusCode::kInternal) << "forward threw: " << e.what();
    result.retryable = true;
    return result;
  }
}

Server::AttemptResult Server::ExecuteWithRetries(const ModelEntry& entry, const Deadline& deadline,
                                                 int* retries_paid) {
  AttemptResult result;
  for (int attempt = 0;; ++attempt) {
    {
      // One span per attempt on the ambient trace (no-op during warmup and
      // swap warming, which run without one): a retried request's trace
      // shows each attempt's duration, with the backoff gaps between them.
      trace::AmbientSpan attempt_span("attempt");
      attempt_span.Arg("attempt", attempt);
      result = RunForwardOnce(entry, deadline);
      if (!result.status.ok()) {
        attempt_span.Args("attempt", attempt, "status",
                          static_cast<int64_t>(result.status.code()));
      }
    }
    if (result.status.ok()) {
      return result;
    }
    if (!result.retryable || attempt >= config_.max_retries) {
      return result;
    }
    double backoff_ms = config_.retry_base_backoff_ms * static_cast<double>(1 << attempt);
    if (deadline.armed()) {
      const double remaining = deadline.remaining_ms();
      if (remaining <= 0.0) {
        // The budget ran out mid-retry: report it as a deadline abort, not
        // the transient fault, so it counts as expired and stays off the
        // breaker like every other deadline outcome.
        result.status = ErrorStatus(StatusCode::kDeadlineExceeded)
                        << "deadline expired while retrying transient fault: "
                        << result.status.message();
        result.retryable = false;
        return result;
      }
      backoff_ms = std::min(backoff_ms, remaining);
    }
    ++*retries_paid;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(backoff_ms));
  }
}

void Server::FulfillFromLogits(const Tensor& logits,
                               std::vector<std::unique_ptr<PendingRequest>>& batch,
                               Tenant& tenant, bool degraded, int retries_paid) {
  const ServeMetrics& metrics = GetServeMetrics();
  const int batch_size = static_cast<int>(batch.size());
  const int64_t num_classes = logits.dim(1);
  for (std::unique_ptr<PendingRequest>& pending : batch) {
    const Clock::time_point now = Clock::now();
    if (pending->deadline.armed() && pending->deadline.expired()) {
      // The batch made it, this request's budget didn't: its client has
      // already moved on, so the answer would only be discarded.
      UpdateStats(tenant, [](ServerStats& g, TenantStats& t) {
        ++g.expired;
        ++t.expired;
      });
      metrics.expired->Add(1);
      tenant.m_expired->Add(1);
      FlightRecorder::Get().Record("serve", "request expired before fulfillment", pending->id);
      if (pending->trace != nullptr) {
        pending->trace->AddFlag(trace::kExpired);
        tracer_->FinishTrace(pending->trace, MillisBetween(pending->admitted_at, now), "expired");
        pending->trace = nullptr;
      }
      pending->promise.set_value(ErrorStatus(StatusCode::kDeadlineExceeded)
                                 << "deadline expired before fulfillment");
      continue;
    }
    ProfileScope request_scope(profiler_, degraded ? "request:degraded" : "request", "serve");
    const std::vector<int32_t>& vertices = pending->request.vertices;
    InferenceResponse response;
    response.logits = Tensor({static_cast<int64_t>(vertices.size()), num_classes});
    for (size_t i = 0; i < vertices.size(); ++i) {
      const float* src = logits.Row(vertices[i]);
      std::copy(src, src + num_classes, response.logits.Row(static_cast<int64_t>(i)));
    }
    if (pending->trace != nullptr) {
      const int fulfill = pending->trace->AddSpan("fulfill", now, Clock::now());
      pending->trace->SetArg(fulfill, "vertices", static_cast<int64_t>(vertices.size()));
    }
    response.degraded = degraded;
    response.retries = retries_paid;
    response.batch_size = batch_size;
    response.queue_ms = MillisBetween(pending->admitted_at, pending->dequeued_at);
    response.exec_ms = MillisBetween(pending->dequeued_at, now);
    response.total_ms = MillisBetween(pending->admitted_at, now);
    if (pending->entry != nullptr) {
      // The version pinned at admission, not whatever is live now.
      response.model_id = pending->entry->model_id();
      response.model_version = pending->entry->version();
    }
    response.tenant = tenant.config.name;
    if (pending->trace != nullptr) {
      // Capture id/sampled before FinishTrace: the trace recycles into the
      // pool and a concurrent Submit may reuse it immediately.
      response.trace_id = pending->trace->trace_id();
      response.sampled = pending->trace->sampled();
      if (degraded) {
        pending->trace->AddFlag(trace::kDegraded);
      }
      tracer_->FinishTrace(pending->trace, response.total_ms, degraded ? "degraded" : "served");
      pending->trace = nullptr;
    }
    UpdateStats(tenant, [degraded](ServerStats& g, TenantStats& t) {
      ++(degraded ? g.degraded : g.served);
      ++(degraded ? t.degraded : t.served);
    });
    (degraded ? metrics.degraded : metrics.served)->Add(1);
    (degraded ? tenant.m_degraded : tenant.m_served)->Add(1);
    metrics.queue_wait->Record(response.queue_ms);
    RecordLatency(tenant, response.total_ms, response.trace_id);
    pending->promise.set_value(std::move(response));
  }
}

void Server::FailBatch(std::vector<std::unique_ptr<PendingRequest>>& batch, Tenant& tenant,
                       const Status& status) {
  const ServeMetrics& metrics = GetServeMetrics();
  const bool is_deadline = status.code() == StatusCode::kDeadlineExceeded;
  const int64_t n = static_cast<int64_t>(batch.size());
  UpdateStats(tenant, [is_deadline, n](ServerStats& g, TenantStats& t) {
    (is_deadline ? g.expired : g.failed) += n;
    (is_deadline ? t.expired : t.failed) += n;
  });
  (is_deadline ? metrics.expired : metrics.failed)->Add(n);
  (is_deadline ? tenant.m_expired : tenant.m_failed)->Add(n);
  FlightRecorder::Get().Record("serve", is_deadline ? "batch expired" : "batch failed", n,
                               static_cast<int64_t>(status.code()));
  const Clock::time_point now = Clock::now();
  for (std::unique_ptr<PendingRequest>& pending : batch) {
    if (pending->trace != nullptr) {
      pending->trace->AddFlag(is_deadline ? trace::kExpired : trace::kFailed);
      tracer_->FinishTrace(pending->trace, MillisBetween(pending->admitted_at, now),
                           is_deadline ? "expired" : "failed");
      pending->trace = nullptr;
    }
    pending->promise.set_value(status);
  }
}

void Server::ServeBatch(std::vector<std::unique_ptr<PendingRequest>> batch) {
  const ServeMetrics& metrics = GetServeMetrics();
  // The batch key pins (entry, tenant), so the whole batch shares both.
  Tenant& tenant = *tenants_[batch.front()->tenant_index];
  const std::shared_ptr<const ModelEntry> entry = batch.front()->entry;
  CircuitBreaker& breaker = *tenant.breaker;
  // Batch formation ended when the batcher handed the batch over (== now).
  const Clock::time_point formed_at = Clock::now();

  // Drop requests that expired while queued before spending a forward (or a
  // degraded gather) on them.
  std::vector<std::unique_ptr<PendingRequest>> live;
  live.reserve(batch.size());
  for (std::unique_ptr<PendingRequest>& pending : batch) {
    if (pending->deadline.armed() && pending->deadline.expired()) {
      UpdateStats(tenant, [](ServerStats& g, TenantStats& t) {
        ++g.expired;
        ++t.expired;
      });
      metrics.expired->Add(1);
      tenant.m_expired->Add(1);
      FlightRecorder::Get().Record("serve", "request expired while queued", pending->id);
      if (pending->trace != nullptr) {
        pending->trace->AddSpan("queue", pending->admitted_at, pending->dequeued_at);
        pending->trace->AddFlag(trace::kExpired);
        tracer_->FinishTrace(pending->trace, MillisBetween(pending->admitted_at, Clock::now()),
                             "expired");
        pending->trace = nullptr;
      }
      pending->promise.set_value(ErrorStatus(StatusCode::kDeadlineExceeded)
                                 << "deadline expired while queued");
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) {
    return;
  }
  metrics.batch_occupancy->Record(static_cast<double>(live.size()));

  // Queue-wait and batch-formation attribution, per request: the serving
  // thread owns every trace in the batch from here on (the queue handoff is
  // the synchronization point), so it back-fills the spans the client thread
  // could not close. live.front() rode PopAnyUntil and paid the fairness
  // charge; the rest coalesced behind it.
  trace::RequestTrace* leader_trace = live.front()->trace;
  const uint64_t leader_trace_id = leader_trace != nullptr ? leader_trace->trace_id() : 0;
  for (const std::unique_ptr<PendingRequest>& pending : live) {
    if (pending->trace == nullptr) {
      continue;
    }
    pending->trace->AddSpan("queue", pending->admitted_at, pending->dequeued_at);
    const int batch_span = pending->trace->AddSpan("batch", pending->dequeued_at, formed_at);
    pending->trace->SetDetail(batch_span,
                              pending->trace == leader_trace ? "leader" : "follower");
    pending->trace->SetArgs(batch_span, "occupancy", static_cast<int64_t>(live.size()),
                            "batch_key", static_cast<int64_t>(pending->batch_key));
  }
  // Ambient trace for everything downstream — breaker decisions, executor
  // unit spans, shard-runtime spans, flight-recorder events — without
  // touching their signatures. The batch shares one forward, so its shared
  // work lands on the leader's span tree; followers link to it by trace id.
  trace::ScopedTraceContext trace_ctx(leader_trace);

  ProfileScope batch_scope(profiler_, "batch", "serve");

  if (!breaker.AllowExecution()) {
    // Breaker open: answer from this tenant's last-known-good cache, never
    // touch the failing execution path.
    Tensor lkg;
    {
      std::lock_guard<std::mutex> lock(lkg_mutex_);
      lkg = tenant.lkg;
    }
    for (const std::unique_ptr<PendingRequest>& pending : live) {
      if (pending->trace != nullptr) {
        pending->trace->AddFlag(trace::kBreaker);
      }
    }
    if (config_.degraded_fallback && lkg.defined()) {
      ProfileScope degraded_scope(profiler_, "degraded", "serve");
      FulfillFromLogits(lkg, live, tenant, /*degraded=*/true, /*retries_paid=*/0);
    } else {
      FailBatch(live, tenant,
                ErrorStatus(StatusCode::kUnavailable)
                    << "circuit breaker open (" << breaker.last_trip_reason()
                    << ") and no cached predictions available");
    }
    return;
  }
  const bool is_probe = breaker.state() == BreakerState::kHalfOpen;
  ProfileScope probe_scope(is_probe ? profiler_ : nullptr, "probe", "serve");

  // Execute under the *most patient* deadline in the batch: abort only once
  // even the slackest request's budget is gone. Tighter requests are checked
  // individually at fulfillment. A single no-deadline request unbounds the
  // batch (the executor check stays a no-op for unarmed deadlines).
  Deadline exec_deadline;
  bool any_unarmed = false;
  Clock::time_point latest{};
  for (const std::unique_ptr<PendingRequest>& pending : live) {
    if (!pending->deadline.armed()) {
      any_unarmed = true;
      break;
    }
    latest = std::max(latest, pending->deadline.time_point());
  }
  if (!any_unarmed) {
    exec_deadline = Deadline::At(latest);
  }

  // A misbehaving tenant's faults are scoped to *its* forward: armed just
  // before execution, disarmed before fulfillment (response-tensor gathers
  // must not inherit them) and before any other tenant's batch runs. The
  // single serving thread makes this race-free.
  FaultInjector& faults = FaultInjector::Get();
  const bool tenant_faults = !tenant.config.fault_spec.empty();
  if (tenant_faults) {
    std::string spec_error;
    if (!faults.ConfigureFromSpec(tenant.config.fault_spec, &spec_error)) {
      SEASTAR_LOG(Warning) << "tenant '" << tenant.config.name << "': bad fault spec: "
                           << spec_error;
    }
  }
  int retries_paid = 0;
  const Clock::time_point exec_start = Clock::now();
  int exec_span = -1;
  if (leader_trace != nullptr) {
    exec_span = leader_trace->BeginSpan("execute");
  }
  AttemptResult result = ExecuteWithRetries(*entry, exec_deadline, &retries_paid);
  if (leader_trace != nullptr) {
    leader_trace->SetArgs(exec_span, "retries", retries_paid, "status",
                          static_cast<int64_t>(result.status.code()));
    leader_trace->EndSpan(exec_span);
  }
  const Clock::time_point exec_end = Clock::now();
  for (const std::unique_ptr<PendingRequest>& pending : live) {
    if (pending->trace == nullptr || pending->trace == leader_trace) {
      continue;
    }
    // Followers did not run the forward — they rode the leader's. A closed
    // mirror span carries the leader's trace id so the shared execution is
    // one hop away in the export.
    const int span = pending->trace->AddSpan("execute", exec_start, exec_end);
    pending->trace->SetArg(span, "leader_trace", static_cast<int64_t>(leader_trace_id));
    if (retries_paid > 0) {
      pending->trace->AddFlag(trace::kRetried);
    }
  }
  if (leader_trace != nullptr && retries_paid > 0) {
    leader_trace->AddFlag(trace::kRetried);
  }
  if (tenant_faults) {
    faults.DisarmAll();
  }
  UpdateStats(tenant, [retries_paid](ServerStats& g, TenantStats& t) {
    g.retries += retries_paid;
    t.retries += retries_paid;
    t.batches += retries_paid + 1;  // Attempts = retries + the final one.
  });
  metrics.retries->Add(retries_paid);

  if (result.status.ok()) {
    breaker.RecordSuccess();
    {
      std::lock_guard<std::mutex> lock(lkg_mutex_);
      tenant.lkg = result.logits.Clone();
    }
    FulfillFromLogits(result.logits, live, tenant, /*degraded=*/false, retries_paid);
    return;
  }

  if (result.status.code() == StatusCode::kDeadlineExceeded) {
    // Every deadline in the batch is behind the one we executed under, so
    // all of them are expired. Deadline aborts are the client's budget
    // running out, not backend sickness — the breaker doesn't count them
    // as success or failure. An aborted probe still has to release the
    // half-open state, though, or no batch would ever probe again.
    if (is_probe) {
      breaker.RecordProbeAbandoned();
    }
    FailBatch(live, tenant, result.status);
    return;
  }

  breaker.RecordFailure(result.status.message());
  Tensor lkg;
  {
    std::lock_guard<std::mutex> lock(lkg_mutex_);
    lkg = tenant.lkg;
  }
  if (config_.degraded_fallback && lkg.defined()) {
    ProfileScope degraded_scope(profiler_, "degraded", "serve");
    FulfillFromLogits(lkg, live, tenant, /*degraded=*/true, retries_paid);
  } else {
    FailBatch(live, tenant, result.status);
  }
}

uint64_t Server::serving_fingerprint() const {
  std::shared_ptr<const ModelEntry> entry = registry_->Lookup(tenants_[0]->config.model_id);
  return entry == nullptr ? 0 : entry->fingerprint();
}

ServerStats Server::stats() const {
  ServerStats stats;
  {
    // One critical section copies every identity counter: a reader either
    // sees a request fully accounted (submitted + outcome) or not at all.
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats = stats_;
  }
  // Breaker counters sit outside the identity; each breaker's own mutex
  // keeps its counters mutually consistent.
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    stats.breaker_trips += tenant->breaker->trips();
    stats.breaker_recoveries += tenant->breaker->recoveries();
    stats.breaker_probes += tenant->breaker->probes();
  }
  if (tracer_ != nullptr) {
    stats.trace = tracer_->stats();
  }
  return stats;
}

StatusOr<TenantStats> Server::tenant_stats(const std::string& tenant) const {
  const Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return ErrorStatus(StatusCode::kNotFound) << "unknown tenant '" << tenant << "'";
  }
  TenantStats stats;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats = t->stats;
  }
  stats.breaker_trips = t->breaker->trips();
  stats.breaker_recoveries = t->breaker->recoveries();
  stats.breaker_probes = t->breaker->probes();
  return stats;
}

std::vector<std::string> Server::tenant_names() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    names.push_back(tenant->config.name);
  }
  return names;
}

BreakerState Server::breaker_state() const { return tenants_[0]->breaker->state(); }

StatusOr<BreakerState> Server::tenant_breaker_state(const std::string& tenant) const {
  const Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return ErrorStatus(StatusCode::kNotFound) << "unknown tenant '" << tenant << "'";
  }
  return t->breaker->state();
}

namespace {

LatencySummary SummaryFromSnapshot(const metrics::HistogramSnapshot& snapshot) {
  LatencySummary summary;
  summary.count = snapshot.count;
  summary.p50_ms = snapshot.p50;
  summary.p95_ms = snapshot.p95;
  summary.p99_ms = snapshot.p99;
  summary.max_ms = snapshot.max;
  return summary;
}

}  // namespace

LatencySummary Server::latency_summary() const {
  return SummaryFromSnapshot(latency_hist_.Snapshot());
}

StatusOr<LatencySummary> Server::tenant_latency_summary(const std::string& tenant) const {
  const Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return ErrorStatus(StatusCode::kNotFound) << "unknown tenant '" << tenant << "'";
  }
  return SummaryFromSnapshot(t->latency_hist.Snapshot());
}

void Server::RecordLatency(Tenant& tenant, double total_ms, uint64_t trace_id) {
  // Exemplars on the pooled histograms link tail buckets to the trace that
  // filled them; the per-tenant histogram stays plain (its tail is a subset
  // of the pooled ones).
  latency_hist_.RecordWithExemplar(total_ms, trace_id);
  tenant.latency_hist.Record(total_ms);
  GetServeMetrics().request_latency->RecordWithExemplar(total_ms, trace_id);
}

std::string Server::TracesJson() const {
  if (tracer_ == nullptr) {
    return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
  }
  return tracer_->ChromeTraceJson();
}

bool Server::DumpTraces(const std::string& path) const {
  return tracer_ != nullptr && tracer_->WriteChromeTraceFile(path);
}

}  // namespace serve
}  // namespace seastar
