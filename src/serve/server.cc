#include "src/serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/profiler.h"
#include "src/core/checkpoint.h"
#include "src/tensor/allocator.h"
#include "src/tensor/autograd.h"

namespace seastar {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

// Registry handles for the serving path, resolved once per process and
// cached (the static-init guard is the only per-call cost). Request-rate
// code touches these through one relaxed add / store each; the registry is
// never consulted per request — tests assert lookups() stays flat.
struct ServeMetrics {
  metrics::Counter* submitted;
  metrics::Counter* rejected;
  metrics::Counter* shed;
  metrics::Counter* served;
  metrics::Counter* degraded;
  metrics::Counter* expired;
  metrics::Counter* failed;
  metrics::Counter* retries;
  metrics::Counter* batches;
  metrics::Counter* unit_aborts;
  metrics::Counter* boot_retries;
  metrics::Histogram* request_latency;  // End-to-end, answered requests only.
  metrics::Histogram* queue_wait;       // Admission -> dequeue, answered only.
  metrics::Histogram* batch_occupancy;  // Live requests per executed batch.
  metrics::Gauge* queue_depth;
  metrics::Gauge* inflight;
};

const ServeMetrics& GetServeMetrics() {
  static const ServeMetrics metrics = [] {
    metrics::MetricsRegistry& r = metrics::MetricsRegistry::Get();
    ServeMetrics m;
    m.submitted = r.GetCounter("seastar_serve_submitted_total");
    m.rejected = r.GetCounter("seastar_serve_rejected_total");
    m.shed = r.GetCounter("seastar_serve_shed_total");
    m.served = r.GetCounter("seastar_serve_served_total");
    m.degraded = r.GetCounter("seastar_serve_degraded_total");
    m.expired = r.GetCounter("seastar_serve_expired_total");
    m.failed = r.GetCounter("seastar_serve_failed_total");
    m.retries = r.GetCounter("seastar_serve_retries_total");
    m.batches = r.GetCounter("seastar_serve_batches_total");
    m.unit_aborts = r.GetCounter("seastar_serve_deadline_unit_aborts_total");
    m.boot_retries = r.GetCounter("seastar_serve_boot_retries_total");
    m.request_latency = r.GetHistogram("seastar_serve_request_latency_ms");
    m.queue_wait = r.GetHistogram("seastar_serve_queue_wait_ms");
    m.batch_occupancy = r.GetHistogram("seastar_serve_batch_occupancy");
    m.queue_depth = r.GetGauge("seastar_serve_queue_depth");
    m.inflight = r.GetGauge("seastar_serve_inflight_requests");
    return m;
  }();
  return metrics;
}

double MillisBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// Identity of what this server executes: requests pinning a different
// fingerprint cannot batch with (or be answered by) this model.
uint64_t ComputeFingerprint(const GnnModel& model, const Dataset& data) {
  char buffer[256];
  int written =
      std::snprintf(buffer, sizeof(buffer), "%s|%lld|%lld|%lld|%lld", model.name(),
                    static_cast<long long>(data.graph.num_vertices()),
                    static_cast<long long>(data.graph.num_edges()),
                    static_cast<long long>(data.spec.num_classes),
                    static_cast<long long>(data.features.defined() ? data.features.dim(1) : 0));
  // snprintf returns the untruncated length (or < 0 on error); hash only the
  // bytes actually in the buffer.
  const size_t length =
      written < 0 ? 0 : std::min(static_cast<size_t>(written), sizeof(buffer) - 1);
  uint64_t hash = Fnv1a64(buffer, length);
  return hash != 0 ? hash : 1;  // 0 is reserved for "don't care" in requests.
}

bool HasNonFinite(const Tensor& t) {
  const float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) {
      return true;
    }
  }
  return false;
}

}  // namespace

Server::Server(GnnModel& model, const Dataset& data, ServeConfig config)
    : model_(model),
      data_(data),
      config_(std::move(config)),
      fingerprint_(ComputeFingerprint(model, data)),
      profiler_((config_.profiler != nullptr && config_.profiler->enabled()) ? config_.profiler
                                                                             : nullptr),
      queue_(config_.queue_capacity),
      batcher_(queue_, BatcherOptions{config_.max_batch, config_.max_batch_delay_ms,
                                      /*idle_poll_ms=*/5.0}),
      breaker_(config_.breaker_trip_after, config_.breaker_probe_interval_ms) {}

Server::~Server() { Shutdown(); }

Status Server::RestoreFromCheckpoint() {
  // Boot-time transient faults (FaultSite::kCheckpointRead surfaces as
  // kUnavailable) are retried with backoff; structural errors (corrupt file
  // after .prev fallback, wrong model) are fatal to Start().
  StatusOr<TrainCheckpoint> loaded = ErrorStatus(StatusCode::kInternal) << "unreachable";
  for (int attempt = 0; attempt <= config_.boot_retries; ++attempt) {
    loaded = LoadCheckpoint(config_.checkpoint_path);
    if (loaded.has_value() || loaded.status().code() != StatusCode::kUnavailable) {
      break;
    }
    if (attempt < config_.boot_retries) {
      UpdateStats([](ServerStats& s) { ++s.boot_retries; });
      GetServeMetrics().boot_retries->Add(1);
      const double backoff_ms = config_.retry_base_backoff_ms * static_cast<double>(1 << attempt);
      SEASTAR_LOG(Warning) << "serve boot: transient checkpoint read failure ("
                           << loaded.status().message() << "); retrying in " << backoff_ms
                           << " ms";
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(backoff_ms));
    }
  }
  if (!loaded.has_value()) {
    return loaded.status();
  }

  const TrainCheckpoint& snapshot = loaded.value();
  std::vector<Var> parameters = model_.Parameters();
  if (snapshot.parameters.size() != parameters.size()) {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << "checkpoint '" << config_.checkpoint_path << "' holds " << snapshot.parameters.size()
           << " parameters, model '" << model_.name() << "' has " << parameters.size();
  }
  for (size_t p = 0; p < parameters.size(); ++p) {
    if (snapshot.parameters[p].shape() != parameters[p].value().shape()) {
      return ErrorStatus(StatusCode::kInvalidArgument)
             << "checkpoint parameter " << p << " is " << snapshot.parameters[p].ShapeString()
             << ", model expects " << parameters[p].value().ShapeString();
    }
  }
  // Inference only restores weights (and dropout RNG for reproducibility of
  // any training-mode probes); optimizer moments stay with the trainer.
  for (size_t p = 0; p < parameters.size(); ++p) {
    Tensor& value = parameters[p].mutable_value();
    std::copy(snapshot.parameters[p].data(), snapshot.parameters[p].data() + value.numel(),
              value.data());
    parameters[p].ClearGrad();
  }
  if (Rng* rng = model_.MutableRng(); rng != nullptr && snapshot.model_rng.has_value()) {
    rng->RestoreState(*snapshot.model_rng);
  }
  SEASTAR_LOG(Info) << "serve boot: restored '" << config_.checkpoint_path << "' (epoch "
                    << snapshot.epoch << ", " << parameters.size() << " parameters)";
  return Status::Ok();
}

Status Server::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return ErrorStatus(StatusCode::kInvalidArgument) << "server already started";
  }

  {
    ProfileScope boot_scope(profiler_, "boot", "serve");
    if (!config_.checkpoint_path.empty()) {
      Status restored = RestoreFromCheckpoint();
      if (!restored.ok()) {
        return restored;
      }
    }
  }

  if (config_.warmup) {
    // First forward compiles every plan into the PlanCache and sizes the
    // allocator pool; it also seeds the last-known-good cache so degraded
    // mode has answers from the first request on. Warmup shares the serving
    // retry policy because boot-time fault injection hits it too.
    ProfileScope warm_scope(profiler_, "warmup", "serve");
    Deadline no_deadline;  // Unarmed: warmup may take as long as it takes.
    int retries_paid = 0;
    AttemptResult warm = ExecuteWithRetries(no_deadline, &retries_paid);
    UpdateStats([retries_paid](ServerStats& s) { s.retries += retries_paid; });
    GetServeMetrics().retries->Add(retries_paid);
    if (!warm.status.ok()) {
      // Not fatal: the breaker/retry machinery will keep trying per batch.
      SEASTAR_LOG(Warning) << "serve boot: warmup forward failed (" << warm.status.message()
                           << "); starting anyway";
    }
  }

  started_.store(true, std::memory_order_release);
  serving_thread_ = std::thread([this] { ServeLoop(); });
  return Status::Ok();
}

void Server::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) {
    return;
  }
  if (!stopping_.exchange(true)) {
    // Closing the queue rejects new pushes; the serving loop drains whatever
    // is already queued (every promise is fulfilled) before exiting.
    queue_.Close();
  }
  // Concurrent Shutdown calls (e.g. explicit Shutdown racing the destructor)
  // must not both touch the std::thread: join under a mutex, where
  // joinable() flips atomically with the join itself.
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (serving_thread_.joinable()) {
    serving_thread_.join();
  }
}

std::future<StatusOr<InferenceResponse>> Server::Submit(InferenceRequest request) {
  const ServeMetrics& metrics = GetServeMetrics();
  std::promise<StatusOr<InferenceResponse>> rejected;
  std::future<StatusOr<InferenceResponse>> rejected_future = rejected.get_future();

  if (!started_.load(std::memory_order_acquire)) {
    rejected.set_value(ErrorStatus(StatusCode::kUnavailable) << "server not started");
    return rejected_future;
  }
  if (request.vertices.empty()) {
    UpdateStats([](ServerStats& s) { ++s.rejected; });
    metrics.rejected->Add(1);
    rejected.set_value(ErrorStatus(StatusCode::kInvalidArgument)
                       << "request names no vertices");
    return rejected_future;
  }
  const int64_t num_vertices = data_.graph.num_vertices();
  for (int32_t v : request.vertices) {
    if (v < 0 || v >= num_vertices) {
      UpdateStats([](ServerStats& s) { ++s.rejected; });
      metrics.rejected->Add(1);
      rejected.set_value(ErrorStatus(StatusCode::kInvalidArgument)
                         << "vertex " << v << " out of range [0, " << num_vertices << ")");
      return rejected_future;
    }
  }
  if (request.model_fingerprint != 0 && request.model_fingerprint != fingerprint_) {
    UpdateStats([](ServerStats& s) { ++s.rejected; });
    metrics.rejected->Add(1);
    rejected.set_value(ErrorStatus(StatusCode::kInvalidArgument)
                       << "request pins model fingerprint " << request.model_fingerprint
                       << " but this server runs " << fingerprint_);
    return rejected_future;
  }

  auto pending = std::make_unique<PendingRequest>();
  const double deadline_ms =
      request.deadline_ms == 0.0 ? config_.default_deadline_ms : request.deadline_ms;
  if (deadline_ms > 0.0) {
    pending->deadline = Deadline::AfterMillis(deadline_ms);
  }
  pending->request = std::move(request);
  pending->id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  pending->batch_key = fingerprint_;  // One model per server today; the key
                                      // exists so multi-model servers batch
                                      // correctly without an API change.
  pending->admitted_at = Clock::now();
  const uint64_t id = pending->id;
  std::future<StatusOr<InferenceResponse>> future = pending->promise.get_future();

  Status pushed = queue_.TryPush(std::move(pending));
  if (!pushed.ok()) {
    // Answer immediately so the client can back off instead of waiting out
    // its deadline. A full queue is a shed (inside the submitted identity —
    // both counters move under one lock so no reader sees the request half
    // accounted); a closed queue is a rejection — the request never entered
    // the serving pipeline.
    if (pushed.code() == StatusCode::kUnavailable) {
      UpdateStats([](ServerStats& s) { ++s.rejected; });
      metrics.rejected->Add(1);
    } else {
      UpdateStats([](ServerStats& s) {
        ++s.submitted;
        ++s.shed;
      });
      metrics.submitted->Add(1);
      metrics.shed->Add(1);
      FlightRecorder::Get().Record("serve", "request shed (queue full)", id);
    }
    rejected.set_value(pushed);
    return rejected_future;
  }
  UpdateStats([](ServerStats& s) { ++s.submitted; });
  metrics.submitted->Add(1);
  metrics.queue_depth->Set(static_cast<double>(queue_.size()));
  return future;
}

StatusOr<InferenceResponse> Server::Infer(InferenceRequest request) {
  return Submit(std::move(request)).get();
}

void Server::ServeLoop() {
  const ServeMetrics& metrics = GetServeMetrics();
  for (;;) {
    std::vector<std::unique_ptr<PendingRequest>> batch = batcher_.NextBatch();
    metrics.queue_depth->Set(static_cast<double>(queue_.size()));
    if (batch.empty()) {
      if (queue_.closed() && queue_.size() == 0) {
        return;  // Drained; shutdown completes.
      }
      continue;
    }
    metrics.inflight->Set(static_cast<double>(batch.size()));
    ServeBatch(std::move(batch));
    metrics.inflight->Set(0.0);
  }
}

Server::AttemptResult Server::RunForwardOnce(const Deadline& deadline) {
  AttemptResult result;
  TensorAllocator& allocator = TensorAllocator::Get();
  UpdateStats([](ServerStats& s) { ++s.batches; });
  GetServeMetrics().batches->Add(1);
  try {
    // The executors poll this deadline at unit/op boundaries
    // (CheckExecutionDeadline) and abort expired work mid-forward.
    ScopedDeadline ambient(&deadline);
    Var out = model_.Forward(/*training=*/false);
    if (allocator.failure_injected()) {
      allocator.ClearInjectedFailure();
      result.status = ErrorStatus(StatusCode::kUnavailable)
                      << "transient allocation failure injected during forward";
      result.retryable = true;
      return result;
    }
    Tensor logits = out.value();
    if (HasNonFinite(logits)) {
      // Poisoned output is not transient: retrying the same weights yields
      // the same NaNs. Fail fast and let the breaker count it.
      result.status = ErrorStatus(StatusCode::kInternal) << "forward produced non-finite logits";
      result.retryable = false;
      return result;
    }
    result.status = Status::Ok();
    result.logits = std::move(logits);
    return result;
  } catch (const DeadlineExceeded& e) {
    allocator.ClearInjectedFailure();
    UpdateStats([](ServerStats& s) { ++s.deadline_unit_aborts; });
    GetServeMetrics().unit_aborts->Add(1);
    FlightRecorder::Get().Record("serve", "forward aborted at unit boundary (deadline)");
    result.status = ErrorStatus(StatusCode::kDeadlineExceeded) << e.what();
    result.retryable = false;
    result.unit_abort = true;
    return result;
  } catch (const std::exception& e) {
    allocator.ClearInjectedFailure();
    result.status = ErrorStatus(StatusCode::kInternal) << "forward threw: " << e.what();
    result.retryable = true;
    return result;
  }
}

Server::AttemptResult Server::ExecuteWithRetries(const Deadline& deadline, int* retries_paid) {
  AttemptResult result;
  for (int attempt = 0;; ++attempt) {
    result = RunForwardOnce(deadline);
    if (result.status.ok()) {
      std::lock_guard<std::mutex> lock(lkg_mutex_);
      lkg_logits_ = result.logits.Clone();
      return result;
    }
    if (!result.retryable || attempt >= config_.max_retries) {
      return result;
    }
    double backoff_ms = config_.retry_base_backoff_ms * static_cast<double>(1 << attempt);
    if (deadline.armed()) {
      const double remaining = deadline.remaining_ms();
      if (remaining <= 0.0) {
        // The budget ran out mid-retry: report it as a deadline abort, not
        // the transient fault, so it counts as expired and stays off the
        // breaker like every other deadline outcome.
        result.status = ErrorStatus(StatusCode::kDeadlineExceeded)
                        << "deadline expired while retrying transient fault: "
                        << result.status.message();
        result.retryable = false;
        return result;
      }
      backoff_ms = std::min(backoff_ms, remaining);
    }
    ++*retries_paid;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(backoff_ms));
  }
}

void Server::FulfillFromLogits(const Tensor& logits,
                               std::vector<std::unique_ptr<PendingRequest>>& batch, bool degraded,
                               int retries_paid) {
  const ServeMetrics& metrics = GetServeMetrics();
  const int batch_size = static_cast<int>(batch.size());
  const int64_t num_classes = logits.dim(1);
  for (std::unique_ptr<PendingRequest>& pending : batch) {
    const Clock::time_point now = Clock::now();
    if (pending->deadline.armed() && pending->deadline.expired()) {
      // The batch made it, this request's budget didn't: its client has
      // already moved on, so the answer would only be discarded.
      UpdateStats([](ServerStats& s) { ++s.expired; });
      metrics.expired->Add(1);
      FlightRecorder::Get().Record("serve", "request expired before fulfillment", pending->id);
      pending->promise.set_value(ErrorStatus(StatusCode::kDeadlineExceeded)
                                 << "deadline expired before fulfillment");
      continue;
    }
    ProfileScope request_scope(profiler_, degraded ? "request:degraded" : "request", "serve");
    const std::vector<int32_t>& vertices = pending->request.vertices;
    InferenceResponse response;
    response.logits = Tensor({static_cast<int64_t>(vertices.size()), num_classes});
    for (size_t i = 0; i < vertices.size(); ++i) {
      const float* src = logits.Row(vertices[i]);
      std::copy(src, src + num_classes, response.logits.Row(static_cast<int64_t>(i)));
    }
    response.degraded = degraded;
    response.retries = retries_paid;
    response.batch_size = batch_size;
    response.queue_ms = MillisBetween(pending->admitted_at, pending->dequeued_at);
    response.exec_ms = MillisBetween(pending->dequeued_at, now);
    response.total_ms = MillisBetween(pending->admitted_at, now);
    UpdateStats([degraded](ServerStats& s) { ++(degraded ? s.degraded : s.served); });
    (degraded ? metrics.degraded : metrics.served)->Add(1);
    metrics.queue_wait->Record(response.queue_ms);
    RecordLatency(response.total_ms);
    pending->promise.set_value(std::move(response));
  }
}

void Server::FailBatch(std::vector<std::unique_ptr<PendingRequest>>& batch,
                       const Status& status) {
  const ServeMetrics& metrics = GetServeMetrics();
  const bool is_deadline = status.code() == StatusCode::kDeadlineExceeded;
  const int64_t n = static_cast<int64_t>(batch.size());
  UpdateStats([is_deadline, n](ServerStats& s) { (is_deadline ? s.expired : s.failed) += n; });
  (is_deadline ? metrics.expired : metrics.failed)->Add(n);
  FlightRecorder::Get().Record("serve", is_deadline ? "batch expired" : "batch failed", n,
                               static_cast<int64_t>(status.code()));
  for (std::unique_ptr<PendingRequest>& pending : batch) {
    pending->promise.set_value(status);
  }
}

void Server::ServeBatch(std::vector<std::unique_ptr<PendingRequest>> batch) {
  const ServeMetrics& metrics = GetServeMetrics();
  // Drop requests that expired while queued before spending a forward (or a
  // degraded gather) on them.
  std::vector<std::unique_ptr<PendingRequest>> live;
  live.reserve(batch.size());
  for (std::unique_ptr<PendingRequest>& pending : batch) {
    if (pending->deadline.armed() && pending->deadline.expired()) {
      UpdateStats([](ServerStats& s) { ++s.expired; });
      metrics.expired->Add(1);
      FlightRecorder::Get().Record("serve", "request expired while queued", pending->id);
      pending->promise.set_value(ErrorStatus(StatusCode::kDeadlineExceeded)
                                 << "deadline expired while queued");
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) {
    return;
  }
  metrics.batch_occupancy->Record(static_cast<double>(live.size()));

  ProfileScope batch_scope(profiler_, "batch", "serve");

  if (!breaker_.AllowExecution()) {
    // Breaker open: answer from the last-known-good cache, never touch the
    // failing execution path.
    Tensor lkg;
    {
      std::lock_guard<std::mutex> lock(lkg_mutex_);
      lkg = lkg_logits_;
    }
    if (config_.degraded_fallback && lkg.defined()) {
      ProfileScope degraded_scope(profiler_, "degraded", "serve");
      FulfillFromLogits(lkg, live, /*degraded=*/true, /*retries_paid=*/0);
    } else {
      FailBatch(live, ErrorStatus(StatusCode::kUnavailable)
                          << "circuit breaker open (" << breaker_.last_trip_reason()
                          << ") and no cached predictions available");
    }
    return;
  }
  const bool is_probe = breaker_.state() == BreakerState::kHalfOpen;
  ProfileScope probe_scope(is_probe ? profiler_ : nullptr, "probe", "serve");

  // Execute under the *most patient* deadline in the batch: abort only once
  // even the slackest request's budget is gone. Tighter requests are checked
  // individually at fulfillment. A single no-deadline request unbounds the
  // batch (the executor check stays a no-op for unarmed deadlines).
  Deadline exec_deadline;
  bool any_unarmed = false;
  Clock::time_point latest{};
  for (const std::unique_ptr<PendingRequest>& pending : live) {
    if (!pending->deadline.armed()) {
      any_unarmed = true;
      break;
    }
    latest = std::max(latest, pending->deadline.time_point());
  }
  if (!any_unarmed) {
    exec_deadline = Deadline::At(latest);
  }

  int retries_paid = 0;
  AttemptResult result = ExecuteWithRetries(exec_deadline, &retries_paid);
  UpdateStats([retries_paid](ServerStats& s) { s.retries += retries_paid; });
  metrics.retries->Add(retries_paid);

  if (result.status.ok()) {
    breaker_.RecordSuccess();
    FulfillFromLogits(result.logits, live, /*degraded=*/false, retries_paid);
    return;
  }

  if (result.status.code() == StatusCode::kDeadlineExceeded) {
    // Every deadline in the batch is behind the one we executed under, so
    // all of them are expired. Deadline aborts are the client's budget
    // running out, not backend sickness — the breaker doesn't count them
    // as success or failure. An aborted probe still has to release the
    // half-open state, though, or no batch would ever probe again.
    if (is_probe) {
      breaker_.RecordProbeAbandoned();
    }
    FailBatch(live, result.status);
    return;
  }

  breaker_.RecordFailure(result.status.message());
  Tensor lkg;
  {
    std::lock_guard<std::mutex> lock(lkg_mutex_);
    lkg = lkg_logits_;
  }
  if (config_.degraded_fallback && lkg.defined()) {
    ProfileScope degraded_scope(profiler_, "degraded", "serve");
    FulfillFromLogits(lkg, live, /*degraded=*/true, retries_paid);
  } else {
    FailBatch(live, result.status);
  }
}

ServerStats Server::stats() const {
  ServerStats stats;
  {
    // One critical section copies every identity counter: a reader either
    // sees a request fully accounted (submitted + outcome) or not at all.
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats = stats_;
  }
  // Breaker counters sit outside the identity; the breaker's own mutex keeps
  // them mutually consistent.
  stats.breaker_trips = breaker_.trips();
  stats.breaker_recoveries = breaker_.recoveries();
  stats.breaker_probes = breaker_.probes();
  return stats;
}

LatencySummary Server::latency_summary() const {
  const metrics::HistogramSnapshot snapshot = latency_hist_.Snapshot();
  LatencySummary summary;
  summary.count = snapshot.count;
  summary.p50_ms = snapshot.p50;
  summary.p95_ms = snapshot.p95;
  summary.p99_ms = snapshot.p99;
  summary.max_ms = snapshot.max;
  return summary;
}

void Server::RecordLatency(double total_ms) {
  latency_hist_.Record(total_ms);
  GetServeMetrics().request_latency->Record(total_ms);
}

}  // namespace serve
}  // namespace seastar
