// Multi-tenant model registry: several (model, graph, weights-version)
// entries served out of one process, with zero-downtime weight hot-swap.
//
// Ownership model (RCU over shared_ptr):
//
//   Lookup() ----> shared_ptr<const ModelEntry>  (the *live* entry)
//                        |
//   admission pins it in PendingRequest::entry; the serving thread executes
//   each batch against the entry its requests pinned, never "the latest".
//
//   PrepareSwap() builds version N+1 off to the side (factory + tag-checked
//   checkpoint load) without touching the live entry; Publish() atomically
//   flips the live pointer. Requests admitted before the flip keep — and are
//   answered by — version N; requests admitted after get N+1. Version N is
//   *retired* (PollRetired reports it) only when the last pinned reference
//   drains, generalizing the checkpoint ".prev" rotation to in-memory
//   weights: there is always a moment where both generations exist, and the
//   old one disappears only when provably unused.
//
// All entries share the process-wide plan cache and the pool allocator by
// construction (both are process singletons keyed by program/graph identity
// and tensor shape respectively), so a hot-swapped version of the same
// architecture warms up entirely from cache: 0 plan misses, 0 fresh mallocs
// after the flip is the expected steady state, not an aspiration.
//
// Thread safety: every method is mutex-guarded. Lookup is on the admission
// path (client threads); a per-request mutex acquisition matches the cost
// profile of the admission queue itself.
#ifndef SRC_SERVE_MODEL_REGISTRY_H_
#define SRC_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/models/model.h"
#include "src/graph/datasets.h"

namespace seastar {

struct TrainCheckpoint;

namespace serve {

// Copies `snapshot`'s parameters (and dropout RNG, when both sides have one)
// into `model`, shape-checked; `what` names the source in errors. Gradients
// are cleared — serving never trains. Shared by server boot and hot-swap.
Status ApplyCheckpointToModel(const TrainCheckpoint& snapshot, GnnModel& model,
                              const std::string& what);

// Identity of what an entry executes: model id, weights version, model
// architecture, and graph shape. Two entries that differ in *any* of these
// must never answer each other's requests — the micro-batcher's batch key is
// derived from this. Never returns 0 (reserved for "don't care" in requests).
uint64_t ComputeEntryFingerprint(const std::string& model_id, int64_t version,
                                 const GnnModel& model, const Dataset& data);

// One immutable (model, graph, version) generation. Entries are created by
// the registry and published as shared_ptr<const ModelEntry>; the model
// object itself is mutated only between generations (checkpoint restore in
// PrepareSwap, before publication), never while reachable through Lookup.
class ModelEntry {
 public:
  ModelEntry(std::string model_id, int64_t version, std::shared_ptr<GnnModel> model,
             const Dataset* data);

  ModelEntry(const ModelEntry&) = delete;
  ModelEntry& operator=(const ModelEntry&) = delete;

  const std::string& model_id() const { return model_id_; }
  int64_t version() const { return version_; }
  // The model is logically const while published (inference only); Forward
  // is non-const in the interface, hence the mutable access.
  GnnModel& model() const { return *model_; }
  const Dataset& data() const { return *data_; }
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  const std::string model_id_;
  const int64_t version_;
  const std::shared_ptr<GnnModel> model_;  // No-op deleter when borrowed.
  const Dataset* const data_;
  const uint64_t fingerprint_;
};

// Builds a fresh instance of a model architecture bound to its dataset; the
// registry calls it once per weights generation.
using ModelFactory = std::function<std::unique_ptr<GnnModel>()>;

struct RetiredEntry {
  std::string model_id;
  int64_t version = 0;
};

struct ModelEntryInfo {
  std::string model_id;
  int64_t version = 0;
  uint64_t fingerprint = 0;
  bool swappable = false;  // False for borrowed registrations (no factory).
};

class ModelRegistry {
 public:
  ModelRegistry() = default;

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Factory-backed registration: builds version 1 now; `initial_checkpoint`
  // ("" = fresh initialization) is restored into it tag-checked against
  // `model_id`. Only factory-backed entries can hot-swap.
  StatusOr<std::shared_ptr<const ModelEntry>> Register(const std::string& model_id,
                                                       const Dataset& data, ModelFactory factory,
                                                       const std::string& initial_checkpoint = "");

  // Borrowed registration: the caller keeps ownership of `model` (which must
  // outlive the registry) — the single-tenant Server compatibility path.
  StatusOr<std::shared_ptr<const ModelEntry>> RegisterBorrowed(const std::string& model_id,
                                                               GnnModel& model,
                                                               const Dataset& data);

  // The live entry for `model_id`, or null when unknown.
  std::shared_ptr<const ModelEntry> Lookup(const std::string& model_id) const;

  // Stages weights version N+1: factory-builds a fresh model and restores
  // `checkpoint_path` into it (tag-checked against `model_id`). Pure
  // load-and-copy — no forward pass, no effect on the live entry — so it may
  // run on any thread while serving continues. The staged entry becomes
  // visible only through Publish().
  StatusOr<std::shared_ptr<const ModelEntry>> PrepareSwap(const std::string& model_id,
                                                          const std::string& checkpoint_path);

  // Atomically flips the live entry for staged->model_id() to `staged` and
  // returns the entry it replaced. The old generation stays valid for every
  // request that pinned it and is reported by PollRetired() once drained.
  StatusOr<std::shared_ptr<const ModelEntry>> Publish(std::shared_ptr<const ModelEntry> staged);

  // Generations replaced by Publish whose last pinned reference has since
  // dropped. Each retirement is reported exactly once.
  std::vector<RetiredEntry> PollRetired();
  // Replaced generations still pinned by in-flight work.
  int64_t pending_retirements() const;

  std::vector<ModelEntryInfo> List() const;
  size_t size() const;

 private:
  struct Slot {
    std::shared_ptr<const ModelEntry> live;
    ModelFactory factory;  // Null for borrowed registrations.
    const Dataset* data = nullptr;
  };
  struct Retiring {
    std::weak_ptr<const ModelEntry> entry;
    std::string model_id;
    int64_t version = 0;
  };

  StatusOr<std::shared_ptr<const ModelEntry>> RegisterEntry(const std::string& model_id,
                                                            Slot slot);

  mutable std::mutex mutex_;
  std::map<std::string, Slot> entries_;
  std::vector<Retiring> retiring_;
};

}  // namespace serve
}  // namespace seastar

#endif  // SRC_SERVE_MODEL_REGISTRY_H_
