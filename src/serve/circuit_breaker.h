// Circuit breaker: stop hammering a failing execution path.
//
// When forward passes fail repeatedly (sustained allocation faults, NaN
// logits from poisoned parameters), each further attempt costs a full
// retry-with-backoff cycle while the queue backs up behind it. The breaker
// converts that into a state machine:
//
//       consecutive failures >= trip_after            probe due
//   CLOSED ------------------------------> OPEN --------------------> HALF_OPEN
//     ^  \___ success resets the counter    | serve degraded            |
//     |                                     | (LKG cache) meanwhile     |
//     +--------- probe succeeds ------------+------- probe fails -------+
//                (recovery)                          (back to OPEN)
//
// While OPEN, AllowExecution() says no — the server answers from its
// last-known-good cache instead of running the model — except once per
// probe interval, when a single batch is let through as the probe. A probe
// success closes the breaker (recovery); a probe failure re-opens it and
// restarts the probe clock.
//
// Thread safety: transitions happen on the serving thread, but state and
// counters are read by driver/stat threads, so everything is mutex-guarded;
// this is far off any hot path.
#ifndef SRC_SERVE_CIRCUIT_BREAKER_H_
#define SRC_SERVE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace seastar {
namespace serve {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

class CircuitBreaker {
 public:
  // Trips after `trip_after` consecutive failures; while open, allows one
  // probe every `probe_interval_ms`.
  CircuitBreaker(int trip_after, double probe_interval_ms);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  // Asks whether the next batch may execute for real. CLOSED: yes.
  // OPEN: no, unless the probe interval has elapsed — then the breaker moves
  // to HALF_OPEN and admits this one batch as the probe. HALF_OPEN: no (a
  // probe is already in flight this cycle).
  bool AllowExecution();

  // Outcome of an executed batch (including probes).
  void RecordSuccess();
  void RecordFailure(const std::string& reason);
  // The in-flight probe ended without a verdict (deadline abort says nothing
  // about backend health). Returns HALF_OPEN to OPEN with the probe clock
  // already elapsed, so the next batch probes again immediately — without
  // this the breaker would wait in HALF_OPEN forever for an outcome that
  // never arrives. No-op outside HALF_OPEN.
  void RecordProbeAbandoned();

  // The execution path behind this breaker was replaced (weight hot-swap):
  // accumulated failure state describes the *old* weights, not the new ones.
  // CLOSED just clears the consecutive-failure counter; OPEN backdates the
  // probe clock so the very next batch probes the new version instead of
  // waiting out the interval; HALF_OPEN returns to OPEN the same way (the
  // in-flight probe's verdict is about the old version and must not close
  // the breaker for the new one). The breaker still closes only on an
  // actual probe success against the new backend.
  void NoteBackendReplaced();

  BreakerState state() const;
  int consecutive_failures() const;
  int64_t trips() const;
  int64_t recoveries() const;
  int64_t probes() const;
  // Reason recorded by the failure that tripped the breaker last ("" if
  // never tripped).
  std::string last_trip_reason() const;

 private:
  using Clock = std::chrono::steady_clock;

  const int trip_after_;
  const std::chrono::nanoseconds probe_interval_;

  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  Clock::time_point opened_at_{};
  int64_t trips_ = 0;
  int64_t recoveries_ = 0;
  int64_t probes_ = 0;
  std::string last_trip_reason_;
};

}  // namespace serve
}  // namespace seastar

#endif  // SRC_SERVE_CIRCUIT_BREAKER_H_
