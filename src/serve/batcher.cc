#include "src/serve/batcher.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace seastar {
namespace serve {
namespace {

std::chrono::steady_clock::duration FromMillis(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

MicroBatcher::MicroBatcher(AdmissionQueue& queue, const BatcherOptions& options)
    : queue_(queue), options_(options) {
  SEASTAR_CHECK_GT(options.max_batch, 0);
  SEASTAR_CHECK_GE(options.max_delay_ms, 0.0);
}

std::vector<std::unique_ptr<PendingRequest>> MicroBatcher::NextBatch() {
  std::vector<std::unique_ptr<PendingRequest>> batch;

  const auto now = std::chrono::steady_clock::now();
  std::unique_ptr<PendingRequest> leader = queue_.PopAnyUntil(now + FromMillis(options_.idle_poll_ms));
  if (leader == nullptr) {
    return batch;
  }

  // The window closes max_delay after the leader was dequeued, and never
  // extends past the leader's own deadline: holding a request to wait for
  // company it may not live to share is how batching inflates tail latency.
  auto window_end = leader->dequeued_at + FromMillis(options_.max_delay_ms);
  if (leader->deadline.armed()) {
    window_end = std::min(window_end, leader->deadline.time_point());
  }
  const uint64_t key = leader->batch_key;
  const uint32_t tenant = leader->tenant_index;
  batch.push_back(std::move(leader));

  while (static_cast<int>(batch.size()) < options_.max_batch) {
    std::unique_ptr<PendingRequest> follower = queue_.PopMatchingUntil(tenant, key, window_end);
    if (follower == nullptr) {
      break;  // Window closed (or queue closed) with no compatible request.
    }
    batch.push_back(std::move(follower));
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++batches_formed_;
    requests_batched_ += static_cast<int64_t>(batch.size());
    max_batch_observed_ = std::max(max_batch_observed_, static_cast<int>(batch.size()));
  }
  return batch;
}

int64_t MicroBatcher::batches_formed() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return batches_formed_;
}

int64_t MicroBatcher::requests_batched() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return requests_batched_;
}

int MicroBatcher::max_batch_observed() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return max_batch_observed_;
}

}  // namespace serve
}  // namespace seastar
