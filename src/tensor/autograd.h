// Tape-based reverse-mode automatic differentiation over Tensors.
//
// This plays the role PyTorch's autograd plays for the paper's Seastar: the
// dense ("un-fused") part of a GNN layer — weight matmuls, bias adds,
// activations, the classifier loss — is differentiated here, while each
// compiled vertex-centric execution unit plugs in through CustomOp with a
// backward callback that runs the backward GIR (paper §5.3 "Runtime
// execution": Seastar wraps compiled units as autograd functions).
//
// Var is a cheap shared handle to a node in a dynamically built tape.
// Backward(root) runs reverse topological order, accumulating gradients —
// like the paper's GIR autodiff, a node's gradient is propagated only after
// all of its downstream consumers have contributed (§5.2).
#ifndef SRC_TENSOR_AUTOGRAD_H_
#define SRC_TENSOR_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace seastar {

class Var;

namespace autograd_internal {

struct VarNode {
  Tensor value;
  Tensor grad;  // Undefined until first accumulation.
  bool requires_grad = false;
  std::vector<std::shared_ptr<VarNode>> inputs;
  // Maps grad-of-output to grads-of-inputs (entry i may be undefined when
  // inputs[i] does not require grad). Null for leaves.
  std::function<std::vector<Tensor>(const Tensor&)> backward_fn;
  std::string op_name = "leaf";

  void AccumulateGrad(const Tensor& g);
};

}  // namespace autograd_internal

// A differentiable tensor handle. Copying shares the underlying node.
class Var {
 public:
  Var() = default;

  // Creates a leaf. Parameters use requires_grad = true; inputs/features
  // typically false.
  static Var Leaf(Tensor value, bool requires_grad);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();
  // The accumulated gradient; undefined Tensor before backward or for
  // non-requires-grad nodes.
  const Tensor& grad() const;
  bool requires_grad() const;
  const std::string& op_name() const;
  void ClearGrad();

  // Internal: constructs an interior node.
  static Var MakeNode(Tensor value, std::vector<Var> inputs,
                      std::function<std::vector<Tensor>(const Tensor&)> backward_fn,
                      std::string op_name);

  std::shared_ptr<autograd_internal::VarNode> node() const { return node_; }

 private:
  std::shared_ptr<autograd_internal::VarNode> node_;
};

// Runs reverse-mode AD from `root`, seeding with `seed` (must match root's
// shape; pass Tensor::Ones for scalar losses). Gradients accumulate into each
// requires-grad node's grad(); call ClearGrad()/optimizer.ZeroGrad() between
// steps.
void Backward(const Var& root, const Tensor& seed);

// Differentiable operator library ------------------------------------------------------------------

namespace ag {

Var Add(const Var& a, const Var& b);                      // same shape
Var Sub(const Var& a, const Var& b);                      // same shape
Var Mul(const Var& a, const Var& b);                      // same shape
Var AddRowBroadcast(const Var& matrix, const Var& row);   // [N,D] + [D]
Var Matmul(const Var& a, const Var& b);                   // [N,K] x [K,M]
Var Relu(const Var& a);
Var LeakyRelu(const Var& a, float slope);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Elu(const Var& a, float alpha = 1.0f);
Var Exp(const Var& a);
Var MulScalar(const Var& a, float s);
Var LogSoftmax(const Var& a);                             // rows
Var Dropout(const Var& a, float p, Rng& rng, bool training);
Var ConcatCols(const std::vector<Var>& parts);
// Mean negative log-likelihood over `mask_rows` (all rows when empty),
// producing a scalar Var of shape {1}. Input must be log-probabilities.
Var NllLoss(const Var& log_probs, std::vector<int32_t> labels, std::vector<int32_t> mask_rows);

// Generic escape hatch used by the GIR bridge: `output` was computed outside
// the tape from inputs' values; `backward_fn` maps grad(output) to grads of
// each input.
Var CustomOp(std::vector<Var> inputs, Tensor output,
             std::function<std::vector<Tensor>(const Tensor&)> backward_fn, std::string op_name);

}  // namespace ag
}  // namespace seastar

#endif  // SRC_TENSOR_AUTOGRAD_H_
