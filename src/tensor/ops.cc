#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/logging.h"
#include "src/parallel/thread_pool.h"
#include "src/tensor/simd.h"

namespace seastar {
namespace ops {
namespace {

// Grain size (elements per chunk) for parallel pointwise loops. Below the
// threshold the body runs inline on the calling thread — no std::function
// hop, no dispatch — so the many small per-layer tensors (bias rows, scalar
// grads) keep their current cost and only feature-sized tensors fan out.
constexpr int64_t kPointwiseGrain = 32768;

// Runs body(begin, end) over [0, n), chunked across the thread pool when n
// is large enough to amortize dispatch. Chunks are disjoint, so any
// per-element-independent body computes bitwise-identical results to the
// serial loop regardless of thread count.
template <typename Body>
inline void ParallelPointwise(int64_t n, const Body& body) {
  if (n <= kPointwiseGrain) {
    body(0, n);
    return;
  }
  ParallelFor(n, [&body](int64_t begin, int64_t end) { body(begin, end); }, kPointwiseGrain);
}

// Row-wise variant: body(row_begin, row_end) over [0, rows) of a matrix
// whose rows hold `row_elems` elements each (grain scales inversely with the
// row size so a chunk is always ~kPointwiseGrain elements of work).
template <typename Body>
inline void ParallelRowwise(int64_t rows, int64_t row_elems, const Body& body) {
  const int64_t grain =
      std::max<int64_t>(1, kPointwiseGrain / std::max<int64_t>(1, row_elems));
  if (rows <= grain) {
    body(0, rows);
    return;
  }
  ParallelFor(rows, [&body](int64_t begin, int64_t end) { body(begin, end); }, grain);
}

// Applies `fn` elementwise; shapes must match exactly, or either side may be
// a scalar tensor of shape {1} broadcast against the other (a-side scalar
// matters for `scalar - tensor` / `scalar / tensor`).
template <typename Fn>
Tensor BinaryElementwise(const Tensor& a, const Tensor& b, Fn fn, const char* name) {
  SEASTAR_CHECK(a.defined() && b.defined()) << name << ": undefined input";
  const bool a_scalar = a.numel() == 1 && b.numel() != 1;
  const bool b_scalar = b.numel() == 1 && a.numel() != 1;
  Tensor out(a_scalar ? b.shape() : a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = out.numel();
  // Restrict-qualified copies live inside the chunk bodies (qualifiers do
  // not survive lambda capture): the output tensor is freshly allocated, so
  // it cannot alias either input and the loops autovectorize.
  if (b_scalar) {
    const float s = pb[0];
    ParallelPointwise(n, [=](int64_t begin, int64_t end) {
      const float* __restrict__ x = pa;
      float* __restrict__ o = po;
      for (int64_t i = begin; i < end; ++i) {
        o[i] = fn(x[i], s);
      }
    });
    return out;
  }
  if (a_scalar) {
    const float s = pa[0];
    ParallelPointwise(n, [=](int64_t begin, int64_t end) {
      const float* __restrict__ y = pb;
      float* __restrict__ o = po;
      for (int64_t i = begin; i < end; ++i) {
        o[i] = fn(s, y[i]);
      }
    });
    return out;
  }
  SEASTAR_CHECK(a.shape() == b.shape())
      << name << ": shape mismatch " << a.ShapeString() << " vs " << b.ShapeString();
  ParallelPointwise(n, [=](int64_t begin, int64_t end) {
    const float* __restrict__ x = pa;
    const float* __restrict__ y = pb;
    float* __restrict__ o = po;
    for (int64_t i = begin; i < end; ++i) {
      o[i] = fn(x[i], y[i]);
    }
  });
  return out;
}

template <typename Fn>
Tensor UnaryElementwise(const Tensor& a, Fn fn, const char* name) {
  SEASTAR_CHECK(a.defined()) << name << ": undefined input";
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  ParallelPointwise(n, [=](int64_t begin, int64_t end) {
    const float* __restrict__ x = pa;
    float* __restrict__ o = po;
    for (int64_t i = begin; i < end; ++i) {
      o[i] = fn(x[i]);
    }
  });
  return out;
}

}  // namespace

// ---- Construction -------------------------------------------------------------------------------

Tensor RandomUniform(std::vector<int64_t> shape, float lo, float hi, Rng& rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = rng.NextFloat(lo, hi);
  }
  return t;
}

Tensor RandomNormal(std::vector<int64_t> shape, float mean, float stddev, Rng& rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = mean + stddev * static_cast<float>(rng.NextGaussian());
  }
  return t;
}

Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform({fan_in, fan_out}, -bound, bound, rng);
}

Tensor OneHot(const std::vector<int32_t>& labels, int64_t num_classes) {
  Tensor t = Tensor::Zeros({static_cast<int64_t>(labels.size()), num_classes});
  for (size_t i = 0; i < labels.size(); ++i) {
    SEASTAR_CHECK_GE(labels[i], 0);
    SEASTAR_CHECK_LT(labels[i], num_classes);
    t.at(static_cast<int64_t>(i), labels[i]) = 1.0f;
  }
  return t;
}

Tensor Arange(int64_t n) {
  Tensor t({n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(i);
  }
  return t;
}

// ---- Elementwise --------------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(a, b, [](float x, float y) { return x + y; }, "Add");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(a, b, [](float x, float y) { return x - y; }, "Sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(a, b, [](float x, float y) { return x * y; }, "Mul");
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(a, b, [](float x, float y) { return x / y; }, "Div");
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryElementwise(a, [s](float x) { return x + s; }, "AddScalar");
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryElementwise(a, [s](float x) { return x * s; }, "MulScalar");
}

Tensor Neg(const Tensor& a) {
  return UnaryElementwise(a, [](float x) { return -x; }, "Neg");
}

Tensor Exp(const Tensor& a) {
  return UnaryElementwise(a, [](float x) { return std::exp(x); }, "Exp");
}

Tensor Log(const Tensor& a) {
  return UnaryElementwise(a, [](float x) { return std::log(x); }, "Log");
}

Tensor Sqrt(const Tensor& a) {
  return UnaryElementwise(a, [](float x) { return std::sqrt(x); }, "Sqrt");
}

Tensor Relu(const Tensor& a) {
  return UnaryElementwise(a, [](float x) { return x > 0.0f ? x : 0.0f; }, "Relu");
}

Tensor LeakyRelu(const Tensor& a, float slope) {
  return UnaryElementwise(a, [slope](float x) { return x > 0.0f ? x : slope * x; }, "LeakyRelu");
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryElementwise(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); }, "Sigmoid");
}

Tensor Tanh(const Tensor& a) {
  return UnaryElementwise(a, [](float x) { return std::tanh(x); }, "Tanh");
}

Tensor Elu(const Tensor& a, float alpha) {
  return UnaryElementwise(
      a, [alpha](float x) { return x > 0.0f ? x : alpha * (std::exp(x) - 1.0f); }, "Elu");
}

Tensor ReluGrad(const Tensor& grad_out, const Tensor& input) {
  return BinaryElementwise(
      grad_out, input, [](float g, float x) { return x > 0.0f ? g : 0.0f; }, "ReluGrad");
}

Tensor LeakyReluGrad(const Tensor& grad_out, const Tensor& input, float slope) {
  return BinaryElementwise(
      grad_out, input, [slope](float g, float x) { return x > 0.0f ? g : slope * g; },
      "LeakyReluGrad");
}

Tensor SigmoidGradFromOutput(const Tensor& grad_out, const Tensor& output) {
  return BinaryElementwise(
      grad_out, output, [](float g, float y) { return g * y * (1.0f - y); }, "SigmoidGrad");
}

Tensor TanhGradFromOutput(const Tensor& grad_out, const Tensor& output) {
  return BinaryElementwise(
      grad_out, output, [](float g, float y) { return g * (1.0f - y * y); }, "TanhGrad");
}

Tensor EluGradFromOutput(const Tensor& grad_out, const Tensor& output, float alpha) {
  // For y = elu(x): dy/dx = 1 when y > 0 else y + alpha.
  return BinaryElementwise(
      grad_out, output, [alpha](float g, float y) { return y > 0.0f ? g : g * (y + alpha); },
      "EluGrad");
}

Tensor AddRowBroadcast(const Tensor& matrix, const Tensor& row) {
  SEASTAR_CHECK_EQ(matrix.ndim(), 2);
  const int64_t n = matrix.dim(0);
  const int64_t d = matrix.dim(1);
  SEASTAR_CHECK(row.numel() == d || row.numel() == 1)
      << "AddRowBroadcast: " << matrix.ShapeString() << " vs " << row.ShapeString();
  Tensor out(matrix.shape());
  const float* pm = matrix.data();
  const float* pr = row.data();
  float* po = out.data();
  const bool scalar = row.numel() == 1;
  ParallelRowwise(n, d, [=](int64_t row_begin, int64_t row_end) {
    const float* __restrict__ m = pm;
    const float* __restrict__ r = pr;
    float* __restrict__ o = po;
    for (int64_t i = row_begin; i < row_end; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        o[i * d + j] = m[i * d + j] + (scalar ? r[0] : r[j]);
      }
    }
  });
  return out;
}

Tensor MulRowBroadcast(const Tensor& matrix, const Tensor& row) {
  SEASTAR_CHECK_EQ(matrix.ndim(), 2);
  const int64_t n = matrix.dim(0);
  const int64_t d = matrix.dim(1);
  SEASTAR_CHECK(row.numel() == d || row.numel() == 1);
  Tensor out(matrix.shape());
  const float* pm = matrix.data();
  const float* pr = row.data();
  float* po = out.data();
  const bool scalar = row.numel() == 1;
  ParallelRowwise(n, d, [=](int64_t row_begin, int64_t row_end) {
    const float* __restrict__ m = pm;
    const float* __restrict__ r = pr;
    float* __restrict__ o = po;
    for (int64_t i = row_begin; i < row_end; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        o[i * d + j] = m[i * d + j] * (scalar ? r[0] : r[j]);
      }
    }
  });
  return out;
}

Tensor MulColBroadcast(const Tensor& matrix, const Tensor& col) {
  SEASTAR_CHECK_EQ(matrix.ndim(), 2);
  const int64_t n = matrix.dim(0);
  const int64_t d = matrix.dim(1);
  SEASTAR_CHECK_EQ(col.numel(), n);
  Tensor out(matrix.shape());
  const float* pm = matrix.data();
  const float* pc = col.data();
  float* po = out.data();
  ParallelRowwise(n, d, [=](int64_t row_begin, int64_t row_end) {
    const float* __restrict__ m = pm;
    const float* __restrict__ c = pc;
    float* __restrict__ o = po;
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float s = c[i];
      for (int64_t j = 0; j < d; ++j) {
        o[i * d + j] = m[i * d + j] * s;
      }
    }
  });
  return out;
}

// ---- Linear algebra ------------------------------------------------------------------------------

namespace {

// Sub-16-column GEMM tail: out[kRows, kPanel] = a-rows @ b-panel, all
// row-major dense, accumulators held in registers (both extents are
// compile-time constants so the autovectorizer keeps them there). The full
// 16-wide panels go through the runtime-dispatched micro-kernels in
// src/tensor/simd.h instead — with a runtime B stride the compiler cannot
// prove the panel rows disjoint and spills this accumulator block to the
// stack, which turns the k loop into a store-forward chain; the narrow
// tails here (<= 8 columns) fit registers either way and measured fine.
// No zero-skipping: GNN activations are ~half zeros after dropout/ReLU, and
// a data-dependent branch mispredicting on them costs more than the
// multiplies it saves.
//
// Every output element is one k-ascending mul-add chain regardless of which
// tile shape covers it, so results are deterministic across row counts,
// panel splits, and thread partitionings.
template <int kPanel, int kRows>
inline void GemmTile(const float* __restrict__ pa, int64_t lda, const float* __restrict__ pb,
                     int64_t ldb, float* __restrict__ po, int64_t ldo, int64_t k) {
  float acc[kRows][kPanel] = {};
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* __restrict__ brow = pb + kk * ldb;
    for (int r = 0; r < kRows; ++r) {
      const float av = pa[r * lda + kk];
      for (int j = 0; j < kPanel; ++j) {
        acc[r][j] += av * brow[j];
      }
    }
  }
  for (int r = 0; r < kRows; ++r) {
    for (int j = 0; j < kPanel; ++j) {
      po[r * ldo + j] = acc[r][j];
    }
  }
}

// One kRows-row block of output: full 16-wide panels through the dispatched
// micro-kernels, then a power-of-two panel cascade (8/4/2/1) for the
// remainder, so a non-multiple-of-16 feature dim (7, 33, 257, ...) still
// takes a register-blocked path for every column — the old per-column
// scalar tail walked B with a stride-m load per k step, which at m = 7
// meant the *entire* matrix went through strided dots.
template <int kRows>
inline void GemmRowBlock(const float* __restrict__ arows, const float* __restrict__ pb,
                         float* __restrict__ orows, int64_t k, int64_t m) {
  int64_t j0 = 0;
  for (; j0 + 16 <= m; j0 += 16) {
    if constexpr (kRows == 4) {
      simd::GemmTile4x16(arows, k, pb + j0, m, orows + j0, m, k);
    } else {
      for (int r = 0; r < kRows; ++r) {
        simd::GemmTile1x16(arows + r * k, pb + j0, m, orows + r * m + j0, k);
      }
    }
  }
  if (j0 + 8 <= m) {
    GemmTile<8, kRows>(arows, k, pb + j0, m, orows + j0, m, k);
    j0 += 8;
  }
  if (j0 + 4 <= m) {
    GemmTile<4, kRows>(arows, k, pb + j0, m, orows + j0, m, k);
    j0 += 4;
  }
  if (j0 + 2 <= m) {
    GemmTile<2, kRows>(arows, k, pb + j0, m, orows + j0, m, k);
    j0 += 2;
  }
  if (j0 < m) {
    GemmTile<1, kRows>(arows, k, pb + j0, m, orows + j0, m, k);
  }
}

void GemmRowMajor(const float* pa, const float* pb, float* po, int64_t k, int64_t m,
                  int64_t row_begin, int64_t row_end) {
  int64_t i = row_begin;
  for (; i + 4 <= row_end; i += 4) {
    GemmRowBlock<4>(pa + i * k, pb, po + i * m, k, m);
  }
  if (i + 2 <= row_end) {
    GemmRowBlock<2>(pa + i * k, pb, po + i * m, k, m);
    i += 2;
  }
  if (i < row_end) {
    GemmRowBlock<1>(pa + i * k, pb, po + i * m, k, m);
  }
}

}  // namespace

Tensor Matmul(const Tensor& a, const Tensor& b) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  SEASTAR_CHECK_EQ(b.ndim(), 2);
  SEASTAR_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t n = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t m = b.dim(1);
  Tensor out({n, m});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(
      n,
      [&](int64_t row_begin, int64_t row_end) { GemmRowMajor(pa, pb, po, k, m, row_begin, row_end); },
      /*min_chunk=*/std::max<int64_t>(1, 16384 / std::max<int64_t>(1, k * m)));
  return out;
}

Tensor MatmulTransposeB(const Tensor& a, const Tensor& b) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  SEASTAR_CHECK_EQ(b.ndim(), 2);
  SEASTAR_CHECK_EQ(a.dim(1), b.dim(1));
  const int64_t n = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t m = b.dim(0);
  // b is streamed n times; transposing it once (a pooled allocation) turns
  // every pass into the contiguous ikj kernel instead of k-strided dots.
  Tensor bt = Transpose(b);
  Tensor out({n, m});
  const float* pa = a.data();
  const float* pb = bt.data();
  float* po = out.data();
  ParallelFor(
      n,
      [&](int64_t row_begin, int64_t row_end) { GemmRowMajor(pa, pb, po, k, m, row_begin, row_end); },
      /*min_chunk=*/std::max<int64_t>(1, 16384 / std::max<int64_t>(1, k * m)));
  return out;
}

Tensor MatmulTransposeA(const Tensor& a, const Tensor& b) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  SEASTAR_CHECK_EQ(b.ndim(), 2);
  SEASTAR_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t n = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t m = b.dim(1);
  Tensor out = Tensor::Zeros({k, m});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Serial over n to avoid write contention on the [k, m] accumulator (which
  // stays L1-resident at GNN sizes); the inner loops stream contiguously.
  for (int64_t i = 0; i < n; ++i) {
    const float* __restrict__ arow = pa + i * k;
    const float* __restrict__ brow = pb + i * m;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      float* __restrict__ orow = po + kk * m;
      for (int64_t j = 0; j < m; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0);
  const int64_t m = a.dim(1);
  Tensor out({m, n});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      po[j * n + i] = pa[i * m + j];
    }
  }
  return out;
}

Tensor BatchedMatmul(const Tensor& a, const Tensor& b) {
  SEASTAR_CHECK_EQ(a.ndim(), 3);
  SEASTAR_CHECK_EQ(b.ndim(), 3);
  SEASTAR_CHECK_EQ(a.dim(0), b.dim(0));
  SEASTAR_CHECK_EQ(a.dim(2), b.dim(1));
  const int64_t batch = a.dim(0);
  const int64_t n = a.dim(1);
  const int64_t k = a.dim(2);
  const int64_t m = b.dim(2);
  Tensor out = Tensor::Zeros({batch, n, m});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(
      batch * n,
      [&](int64_t begin, int64_t end) {
        for (int64_t idx = begin; idx < end; ++idx) {
          const int64_t bi = idx / n;
          const int64_t i = idx % n;
          const float* arow = pa + bi * n * k + i * k;
          const float* bmat = pb + bi * k * m;
          float* orow = po + bi * n * m + i * m;
          for (int64_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) {
              continue;
            }
            const float* brow = bmat + kk * m;
            for (int64_t j = 0; j < m; ++j) {
              orow[j] += av * brow[j];
            }
          }
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 16384 / std::max<int64_t>(1, k * m)));
  return out;
}

// ---- Reductions -----------------------------------------------------------------------------------

float SumAll(const Tensor& a) {
  const float* p = a.data();
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    acc += p[i];
  }
  return static_cast<float>(acc);
}

float MeanAll(const Tensor& a) {
  SEASTAR_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<float>(a.numel());
}

float MaxAll(const Tensor& a) {
  SEASTAR_CHECK_GT(a.numel(), 0);
  const float* p = a.data();
  float best = p[0];
  for (int64_t i = 1; i < a.numel(); ++i) {
    best = std::max(best, p[i]);
  }
  return best;
}

Tensor RowSum(const Tensor& a) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0);
  const int64_t d = a.dim(1);
  Tensor out({n, 1});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      acc += pa[i * d + j];
    }
    po[i] = static_cast<float>(acc);
  }
  return out;
}

Tensor RowMax(const Tensor& a) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  SEASTAR_CHECK_GT(a.dim(1), 0);
  const int64_t n = a.dim(0);
  const int64_t d = a.dim(1);
  Tensor out({n, 1});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    float best = pa[i * d];
    for (int64_t j = 1; j < d; ++j) {
      best = std::max(best, pa[i * d + j]);
    }
    po[i] = best;
  }
  return out;
}

Tensor ColSum(const Tensor& a) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0);
  const int64_t d = a.dim(1);
  Tensor out = Tensor::Zeros({d});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      po[j] += pa[i * d + j];
    }
  }
  return out;
}

std::vector<int32_t> RowArgmax(const Tensor& a) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  SEASTAR_CHECK_GT(a.dim(1), 0);
  const int64_t n = a.dim(0);
  const int64_t d = a.dim(1);
  std::vector<int32_t> result(static_cast<size_t>(n));
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) {
    int32_t best_j = 0;
    float best = pa[i * d];
    for (int64_t j = 1; j < d; ++j) {
      if (pa[i * d + j] > best) {
        best = pa[i * d + j];
        best_j = static_cast<int32_t>(j);
      }
    }
    result[static_cast<size_t>(i)] = best_j;
  }
  return result;
}

// ---- Softmax / losses -------------------------------------------------------------------------------

namespace {

// Shared stabilization for Softmax / LogSoftmax: logits are computed by
// arbitrary models and can reach the edge of float range (or ±inf after an
// upstream overflow), where the textbook log-sum-exp still breaks: ±inf
// poisons the row max (inf - inf = NaN), and even for finite inputs the
// float subtraction `x - log_denom` can overflow to -inf, which NllLoss then
// turns into an infinite loss. Clamping every logit into the finite float
// range keeps the max-subtracted exponent in (-inf, 0] and every log-prob
// finite; NaN inputs stay NaN by design (the training health monitor is the
// layer that reacts to those).
inline double ClampLogit(float x) {
  constexpr double kMaxMagnitude = 3.0e38;  // Just inside float range.
  return std::min(kMaxMagnitude, std::max(-kMaxMagnitude, static_cast<double>(x)));
}

}  // namespace

Tensor Softmax(const Tensor& a) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0);
  const int64_t d = a.dim(1);
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  // Rows are independent (the reduction is within a row), so chunking over
  // rows is bitwise identical to the serial loop.
  ParallelRowwise(n, d, [=](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      double row_max = ClampLogit(pa[i * d]);
      for (int64_t j = 1; j < d; ++j) {
        row_max = std::max(row_max, ClampLogit(pa[i * d + j]));
      }
      double denom = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        const float e = static_cast<float>(std::exp(ClampLogit(pa[i * d + j]) - row_max));
        po[i * d + j] = e;
        denom += e;
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (int64_t j = 0; j < d; ++j) {
        po[i * d + j] *= inv;
      }
    }
  });
  return out;
}

Tensor LogSoftmax(const Tensor& a) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0);
  const int64_t d = a.dim(1);
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelRowwise(n, d, [=](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      double row_max = ClampLogit(pa[i * d]);
      for (int64_t j = 1; j < d; ++j) {
        row_max = std::max(row_max, ClampLogit(pa[i * d + j]));
      }
      double denom = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        denom += std::exp(ClampLogit(pa[i * d + j]) - row_max);
      }
      // denom >= 1 (the max element contributes exp(0)), so the log is safe.
      // Keep (x - row_max) and log(denom) separate: folding row_max into the
      // log term would absorb log(denom) entirely when |row_max| ~ 1e38.
      const double log_sum = std::log(denom);
      constexpr double kFloatLowest = -3.4e38;  // Keep the cast back to float finite.
      for (int64_t j = 0; j < d; ++j) {
        po[i * d + j] = static_cast<float>(
            std::max(kFloatLowest, (ClampLogit(pa[i * d + j]) - row_max) - log_sum));
      }
    }
  });
  return out;
}

float NllLoss(const Tensor& log_probs, const std::vector<int32_t>& labels,
              const std::vector<int32_t>& mask_rows) {
  SEASTAR_CHECK_EQ(log_probs.ndim(), 2);
  SEASTAR_CHECK_EQ(log_probs.dim(0), static_cast<int64_t>(labels.size()));
  double acc = 0.0;
  if (mask_rows.empty()) {
    for (int64_t i = 0; i < log_probs.dim(0); ++i) {
      acc -= log_probs.at(i, labels[static_cast<size_t>(i)]);
    }
    return static_cast<float>(acc / static_cast<double>(log_probs.dim(0)));
  }
  for (int32_t row : mask_rows) {
    acc -= log_probs.at(row, labels[static_cast<size_t>(row)]);
  }
  return static_cast<float>(acc / static_cast<double>(mask_rows.size()));
}

Tensor CrossEntropyGrad(const Tensor& log_probs, const std::vector<int32_t>& labels,
                        const std::vector<int32_t>& mask_rows) {
  SEASTAR_CHECK_EQ(log_probs.ndim(), 2);
  const int64_t n = log_probs.dim(0);
  const int64_t c = log_probs.dim(1);
  Tensor grad = Tensor::Zeros({n, c});
  const float* lp = log_probs.data();
  float* pg = grad.data();
  const auto fill_row = [&](int64_t i, float scale) {
    for (int64_t j = 0; j < c; ++j) {
      pg[i * c + j] = std::exp(lp[i * c + j]) * scale;  // softmax * scale
    }
    pg[i * c + labels[static_cast<size_t>(i)]] -= scale;
  };
  if (mask_rows.empty()) {
    const float scale = 1.0f / static_cast<float>(n);
    ParallelRowwise(n, c, [&](int64_t row_begin, int64_t row_end) {
      for (int64_t i = row_begin; i < row_end; ++i) {
        fill_row(i, scale);
      }
    });
  } else {
    // Mask rows are distinct training nodes, so the filled rows are disjoint.
    const float scale = 1.0f / static_cast<float>(mask_rows.size());
    ParallelRowwise(static_cast<int64_t>(mask_rows.size()), c,
                    [&](int64_t begin, int64_t end) {
                      for (int64_t k = begin; k < end; ++k) {
                        fill_row(mask_rows[static_cast<size_t>(k)], scale);
                      }
                    });
  }
  return grad;
}

// ---- Dropout ----------------------------------------------------------------------------------------

DropoutResult Dropout(const Tensor& a, float p, Rng& rng) {
  SEASTAR_CHECK_GE(p, 0.0f);
  SEASTAR_CHECK_LT(p, 1.0f);
  DropoutResult result{Tensor(a.shape()), Tensor(a.shape())};
  const float keep_scale = 1.0f / (1.0f - p);
  const float* pa = a.data();
  float* po = result.output.data();
  float* pm = result.mask.data();
  // Mask generation is sequential (one RNG stream); the apply step is not.
  rng.FillDropoutMask(pm, a.numel(), p, keep_scale);
  ParallelPointwise(a.numel(), [=](int64_t begin, int64_t end) {
    const float* __restrict__ x = pa;
    const float* __restrict__ m = pm;
    float* __restrict__ o = po;
    for (int64_t i = begin; i < end; ++i) {
      o[i] = x[i] * m[i];
    }
  });
  return result;
}

// ---- Row gather / scatter ------------------------------------------------------------------------------

Tensor GatherRows(const Tensor& a, const std::vector<int32_t>& index) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  const int64_t d = a.dim(1);
  Tensor out({static_cast<int64_t>(index.size()), d});
  const float* pa = a.data();
  float* po = out.data();
  for (size_t i = 0; i < index.size(); ++i) {
    SEASTAR_CHECK_GE(index[i], 0);
    SEASTAR_CHECK_LT(index[i], a.dim(0));
    std::memcpy(po + static_cast<int64_t>(i) * d, pa + static_cast<int64_t>(index[i]) * d,
                static_cast<size_t>(d) * sizeof(float));
  }
  return out;
}

Tensor ScatterAddRows(const Tensor& a, const std::vector<int32_t>& index, int64_t num_rows) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  SEASTAR_CHECK_EQ(a.dim(0), static_cast<int64_t>(index.size()));
  const int64_t d = a.dim(1);
  Tensor out = Tensor::Zeros({num_rows, d});
  const float* pa = a.data();
  float* po = out.data();
  for (size_t i = 0; i < index.size(); ++i) {
    SEASTAR_CHECK_GE(index[i], 0);
    SEASTAR_CHECK_LT(index[i], num_rows);
    const float* src = pa + static_cast<int64_t>(i) * d;
    float* dst = po + static_cast<int64_t>(index[i]) * d;
    for (int64_t j = 0; j < d; ++j) {
      dst[j] += src[j];
    }
  }
  return out;
}

Tensor SegmentSum(const Tensor& a, const std::vector<int64_t>& offsets) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  SEASTAR_CHECK_GE(offsets.size(), 1u);
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  const int64_t d = a.dim(1);
  SEASTAR_CHECK_EQ(offsets.back(), a.dim(0));
  Tensor out = Tensor::Zeros({num_segments, d});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t s = 0; s < num_segments; ++s) {
    float* dst = po + s * d;
    for (int64_t r = offsets[static_cast<size_t>(s)]; r < offsets[static_cast<size_t>(s) + 1];
         ++r) {
      const float* src = pa + r * d;
      for (int64_t j = 0; j < d; ++j) {
        dst[j] += src[j];
      }
    }
  }
  return out;
}

// ---- Misc -------------------------------------------------------------------------------------------

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  SEASTAR_CHECK(!parts.empty());
  const int64_t n = parts[0].dim(0);
  int64_t total_cols = 0;
  for (const Tensor& part : parts) {
    SEASTAR_CHECK_EQ(part.ndim(), 2);
    SEASTAR_CHECK_EQ(part.dim(0), n);
    total_cols += part.dim(1);
  }
  Tensor out({n, total_cols});
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    int64_t col = 0;
    for (const Tensor& part : parts) {
      const int64_t d = part.dim(1);
      std::memcpy(po + i * total_cols + col, part.data() + i * d,
                  static_cast<size_t>(d) * sizeof(float));
      col += d;
    }
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int64_t begin, int64_t end) {
  SEASTAR_CHECK_EQ(a.ndim(), 2);
  SEASTAR_CHECK_GE(begin, 0);
  SEASTAR_CHECK_LE(begin, end);
  SEASTAR_CHECK_LE(end, a.dim(0));
  const int64_t d = a.dim(1);
  Tensor out({end - begin, d});
  std::memcpy(out.data(), a.data() + begin * d,
              static_cast<size_t>((end - begin) * d) * sizeof(float));
  return out;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  return UnaryElementwise(a, fn, "Map");
}

}  // namespace ops
}  // namespace seastar
