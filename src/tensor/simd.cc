#include "src/tensor/simd.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SEASTAR_SIMD_X86 1
#include <immintrin.h>
#endif

namespace seastar {
namespace simd {
namespace {

// ---- Scalar fallbacks ---------------------------------------------------------------------------
// Compiled at the translation unit's baseline ISA. With SEASTAR_NATIVE_ARCH=ON
// the autovectorizer still widens these; the point of the explicit AVX2
// variants below is the SEASTAR_NATIVE_ARCH=OFF binary, where the baseline is
// SSE2 and the 8-wide FMA forms are only reachable via runtime dispatch.

void AddRowScalar(float* __restrict__ acc, const float* __restrict__ x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    acc[i] += x[i];
  }
}

void AddScalarRowScalar(float* __restrict__ acc, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    acc[i] += s;
  }
}

void AxpyRowScalar(float* __restrict__ acc, const float* __restrict__ x, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    acc[i] += x[i] * s;
  }
}

void MulAddRowScalar(float* __restrict__ acc, const float* __restrict__ x,
                     const float* __restrict__ y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    acc[i] += x[i] * y[i];
  }
}

void ScaleRowScalar(float* __restrict__ x, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    x[i] *= s;
  }
}

void GemmTile4x16Scalar(const float* __restrict__ pa, int64_t lda, const float* __restrict__ pb,
                        int64_t ldb, float* __restrict__ po, int64_t ldo, int64_t k) {
  float acc[4][16] = {};
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* __restrict__ brow = pb + kk * ldb;
    for (int r = 0; r < 4; ++r) {
      const float av = pa[r * lda + kk];
      for (int j = 0; j < 16; ++j) {
        acc[r][j] += av * brow[j];
      }
    }
  }
  for (int r = 0; r < 4; ++r) {
    for (int j = 0; j < 16; ++j) {
      po[r * ldo + j] = acc[r][j];
    }
  }
}

void GemmTile1x16Scalar(const float* __restrict__ pa, const float* __restrict__ pb, int64_t ldb,
                        float* __restrict__ po, int64_t k) {
  float acc[16] = {};
  for (int64_t kk = 0; kk < k; ++kk) {
    const float av = pa[kk];
    const float* __restrict__ brow = pb + kk * ldb;
    for (int j = 0; j < 16; ++j) {
      acc[j] += av * brow[j];
    }
  }
  for (int j = 0; j < 16; ++j) {
    po[j] = acc[j];
  }
}

#if defined(SEASTAR_SIMD_X86)

// ---- AVX2 + FMA variants ------------------------------------------------------------------------
// Each is the scalar loop with the body lifted to 8 lanes; every column is
// still exactly one fused multiply-add (or add), so results are bitwise
// independent of how the caller slices n into tiles. Tails run the scalar
// body — same contraction (fmaf lowers to vfmadd
// when the target has it, which these functions always do).

__attribute__((target("avx2,fma"))) void AddRowAvx2(float* __restrict__ acc,
                                                    const float* __restrict__ x, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) {
    acc[i] += x[i];
  }
}

__attribute__((target("avx2,fma"))) void AddScalarRowAvx2(float* __restrict__ acc, float s,
                                                          int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i), vs));
  }
  for (; i < n; ++i) {
    acc[i] += s;
  }
}

__attribute__((target("avx2,fma"))) void AxpyRowAvx2(float* __restrict__ acc,
                                                     const float* __restrict__ x, float s,
                                                     int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(acc + i,
                     _mm256_fmadd_ps(_mm256_loadu_ps(x + i), vs, _mm256_loadu_ps(acc + i)));
  }
  for (; i < n; ++i) {
    acc[i] = __builtin_fmaf(x[i], s, acc[i]);
  }
}

__attribute__((target("avx2,fma"))) void MulAddRowAvx2(float* __restrict__ acc,
                                                       const float* __restrict__ x,
                                                       const float* __restrict__ y, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(acc + i, _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i),
                                              _mm256_loadu_ps(acc + i)));
  }
  for (; i < n; ++i) {
    acc[i] = __builtin_fmaf(x[i], y[i], acc[i]);
  }
}

__attribute__((target("avx2,fma"))) void ScaleRowAvx2(float* __restrict__ x, float s, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (; i < n; ++i) {
    x[i] *= s;
  }
}

// 4×16 GEMM micro-kernel: 8 ymm accumulators stay resident across the whole
// k loop; each 16-float B row costs two loads and is reused by all four A
// rows (one broadcast + two fmadds each) — 8 fma per 2 loads, enough
// arithmetic density to run at port throughput instead of load throughput.
__attribute__((target("avx2,fma"))) void GemmTile4x16Avx2(const float* __restrict__ pa,
                                                          int64_t lda,
                                                          const float* __restrict__ pb,
                                                          int64_t ldb, float* __restrict__ po,
                                                          int64_t ldo, int64_t k) {
  __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
  __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
  __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
  __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
  const float* a0 = pa;
  const float* a1 = pa + lda;
  const float* a2 = pa + 2 * lda;
  const float* a3 = pa + 3 * lda;
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* brow = pb + kk * ldb;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    __m256 va = _mm256_set1_ps(a0[kk]);
    acc00 = _mm256_fmadd_ps(va, b0, acc00);
    acc01 = _mm256_fmadd_ps(va, b1, acc01);
    va = _mm256_set1_ps(a1[kk]);
    acc10 = _mm256_fmadd_ps(va, b0, acc10);
    acc11 = _mm256_fmadd_ps(va, b1, acc11);
    va = _mm256_set1_ps(a2[kk]);
    acc20 = _mm256_fmadd_ps(va, b0, acc20);
    acc21 = _mm256_fmadd_ps(va, b1, acc21);
    va = _mm256_set1_ps(a3[kk]);
    acc30 = _mm256_fmadd_ps(va, b0, acc30);
    acc31 = _mm256_fmadd_ps(va, b1, acc31);
  }
  _mm256_storeu_ps(po, acc00);
  _mm256_storeu_ps(po + 8, acc01);
  _mm256_storeu_ps(po + ldo, acc10);
  _mm256_storeu_ps(po + ldo + 8, acc11);
  _mm256_storeu_ps(po + 2 * ldo, acc20);
  _mm256_storeu_ps(po + 2 * ldo + 8, acc21);
  _mm256_storeu_ps(po + 3 * ldo, acc30);
  _mm256_storeu_ps(po + 3 * ldo + 8, acc31);
}

__attribute__((target("avx2,fma"))) void GemmTile1x16Avx2(const float* __restrict__ pa,
                                                          const float* __restrict__ pb,
                                                          int64_t ldb, float* __restrict__ po,
                                                          int64_t k) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* brow = pb + kk * ldb;
    const __m256 va = _mm256_set1_ps(pa[kk]);
    acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow), acc0);
    acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + 8), acc1);
  }
  _mm256_storeu_ps(po, acc0);
  _mm256_storeu_ps(po + 8, acc1);
}

bool CpuHasAvx2Fma() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // SEASTAR_SIMD_X86

struct Dispatch {
  const char* isa;
  int lanes;
};

Dispatch ResolveDispatch() {
#if defined(SEASTAR_SIMD_X86)
  if (CpuHasAvx2Fma()) {
    AddRow = AddRowAvx2;
    AddScalarRow = AddScalarRowAvx2;
    AxpyRow = AxpyRowAvx2;
    MulAddRow = MulAddRowAvx2;
    ScaleRow = ScaleRowAvx2;
    GemmTile4x16 = GemmTile4x16Avx2;
    GemmTile1x16 = GemmTile1x16Avx2;
    return {"avx2", 8};
  }
#endif
  return {"scalar", 1};
}

// Static-init dispatch: the function pointers default to the scalar bodies
// (so a call during another TU's static init is always safe), then resolve
// to the widest supported ISA exactly once.
const Dispatch g_dispatch = ResolveDispatch();

}  // namespace

void (*AddRow)(float*, const float*, int64_t) = AddRowScalar;
void (*AddScalarRow)(float*, float, int64_t) = AddScalarRowScalar;
void (*AxpyRow)(float*, const float*, float, int64_t) = AxpyRowScalar;
void (*MulAddRow)(float*, const float*, const float*, int64_t) = MulAddRowScalar;
void (*ScaleRow)(float*, float, int64_t) = ScaleRowScalar;
void (*GemmTile4x16)(const float*, int64_t, const float*, int64_t, float*, int64_t, int64_t) =
    GemmTile4x16Scalar;
void (*GemmTile1x16)(const float*, const float*, int64_t, float*, int64_t) = GemmTile1x16Scalar;

const char* SimdIsaName() { return g_dispatch.isa; }
int SimdLanes() { return g_dispatch.lanes; }

}  // namespace simd
}  // namespace seastar
