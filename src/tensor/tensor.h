// Dense float32 tensor with contiguous row-major storage.
//
// This is the repo's substitute for the paper's PyTorch backend tensors:
// vertex/edge feature matrices are 2-D tensors whose first dimension is
// indexed by vertex/edge id (paper §6.1). Storage is reference-counted and
// accounted by TensorAllocator so benchmarks can report peak memory.
#ifndef SRC_TENSOR_TENSOR_H_
#define SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace seastar {

// Shape helper: number of elements of a shape.
int64_t NumElements(const std::vector<int64_t>& shape);

class Tensor {
 public:
  // A default-constructed tensor is "null": no storage, empty shape.
  Tensor() = default;

  // Allocates uninitialized storage for `shape`.
  explicit Tensor(std::vector<int64_t> shape);

  // Builds from explicit values (row-major). values.size() must match shape.
  Tensor(std::vector<int64_t> shape, std::vector<float> values);

  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor FromScalar(float value);  // shape {1}

  bool defined() const { return storage_ != nullptr; }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(size_t axis) const;
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t numel() const { return numel_; }
  uint64_t nbytes() const { return static_cast<uint64_t>(numel_) * sizeof(float); }

  float* data();
  const float* data() const;

  // Element access for 1-D/2-D tensors (bounds-checked in debug via CHECK).
  float& at(int64_t i);
  float at(int64_t i) const;
  float& at(int64_t i, int64_t j);
  float at(int64_t i, int64_t j) const;

  // Deep copy.
  Tensor Clone() const;

  // Returns a tensor sharing storage but with a new shape of equal numel.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  // Fills all elements with `value`.
  void Fill(float value);

  // Row view helpers for 2-D tensors: pointer to row `i` (row length = dim(1)).
  float* Row(int64_t i);
  const float* Row(int64_t i) const;

  // Human-readable summary like "Tensor[3x4]".
  std::string ShapeString() const;

  // True when shapes and all elements match within `tol`.
  bool AllClose(const Tensor& other, float tol = 1e-5f) const;

 private:
  struct Storage;  // Accounted block of floats.

  std::shared_ptr<Storage> storage_;
  std::vector<int64_t> shape_;
  int64_t numel_ = 0;
};

}  // namespace seastar

#endif  // SRC_TENSOR_TENSOR_H_
