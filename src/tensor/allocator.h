// Process-wide tensor allocator with live/peak byte accounting and a
// caching block pool.
//
// Every Tensor's storage is obtained here, which lets the benchmark harnesses
// reproduce the paper's peak-memory comparison (Fig. 11, Table 4): the paper
// measures GPU device memory, we measure bytes of tensor storage. A soft
// budget can be armed so that backends which over-materialize (the PyG-like
// executor on reddit-scale graphs) report "OOM" exactly as in the paper,
// without actually exhausting host RAM.
//
// Pooling (the steady-state optimization, in the spirit of PyTorch's caching
// CUDA allocator): freed blocks are kept on per-size-class free lists and
// handed back to later allocations of the same class, so a training loop
// that allocates the same tensor shapes every epoch performs ~zero malloc
// calls after the first (warm-up) epoch. Large blocks would otherwise
// round-trip through mmap/munmap each epoch and re-fault every page on first
// touch, which dominates allocation cost for feature-sized tensors.
//
// Accounting semantics are unchanged by pooling: live/peak track *requested*
// bytes of live tensors; cached (pooled) blocks are not live and are
// reported separately via pooled_bytes(). The soft budget latches only on
// live bytes, but cached blocks count toward the pressure check first: when
// live + pooled crosses the budget while live alone has not, the free lists
// are trimmed and the allocation is re-judged, so a long-running server
// whose pool fragments across size classes does not die on phantom OOM (see
// budget_trims()). Set SEASTAR_POOL=0 in the environment to disable pooling
// (e.g. when hunting use-after-free with ASan, which cannot see reuse inside
// the pool).
#ifndef SRC_TENSOR_ALLOCATOR_H_
#define SRC_TENSOR_ALLOCATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace seastar {

// Thrown-free: allocation failure against the soft budget is recorded as a
// flag that callers poll (GNN training code checks it per epoch), because the
// os-systems style here avoids exceptions on hot paths.
class TensorAllocator {
 public:
  static TensorAllocator& Get();

  // Allocates `bytes` of float-aligned storage. Never returns nullptr
  // (hard OOM aborts); soft-budget violations only set budget_exceeded().
  void* Allocate(size_t bytes);
  void Deallocate(void* ptr, size_t bytes);

  uint64_t live_bytes() const { return live_bytes_.load(std::memory_order_relaxed); }
  uint64_t peak_bytes() const { return peak_bytes_.load(std::memory_order_relaxed); }
  // Allocation *requests* (pool hits included).
  uint64_t total_allocations() const { return total_allocs_.load(std::memory_order_relaxed); }

  // ---- Pool -----------------------------------------------------------------

  // Rounds a request up to its size class. Classes are 64 B, powers of two up
  // to 4 KiB, then 4 KiB multiples — waste is bounded and repeated shapes
  // (the steady-state training case) always map to the same class.
  static size_t SizeClassBytes(size_t bytes);

  // malloc calls that actually went to the OS (pool misses + pool disabled).
  uint64_t fresh_mallocs() const { return fresh_mallocs_.load(std::memory_order_relaxed); }
  // Requests served from / missed by the free lists.
  uint64_t pool_hits() const { return pool_hits_.load(std::memory_order_relaxed); }
  uint64_t pool_misses() const { return pool_misses_.load(std::memory_order_relaxed); }
  // Total bytes (size-class bytes) served from the pool since process start.
  uint64_t pool_reuse_bytes() const { return pool_reuse_bytes_.load(std::memory_order_relaxed); }
  // Bytes currently cached on the free lists (not live).
  uint64_t pooled_bytes() const { return pooled_bytes_.load(std::memory_order_relaxed); }
  uint64_t trims() const { return trims_.load(std::memory_order_relaxed); }
  // Trims forced by the soft budget: allocations where live + pooled crossed
  // the budget but live alone had not, so releasing the free lists (pool
  // fragmentation, not real memory pressure) resolved the breach.
  uint64_t budget_trims() const { return budget_trims_.load(std::memory_order_relaxed); }

  bool pooling_enabled() const { return pooling_enabled_.load(std::memory_order_relaxed); }
  // Tests toggle this; disabling does not release already-cached blocks
  // (call Trim() for that).
  void SetPoolingEnabled(bool enabled) {
    pooling_enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Releases every cached block back to the OS and returns the bytes freed.
  // The checkpoint/recovery path calls this before snapshotting so process
  // footprint at snapshot time reflects live tensors only.
  uint64_t Trim();

  // Starts a fresh peak-measurement window: peak := live.
  void ResetPeak();

  // Arms/disarms the soft budget. 0 disarms. Arming clears budget_exceeded.
  void SetSoftBudgetBytes(uint64_t bytes);
  uint64_t soft_budget_bytes() const { return soft_budget_.load(std::memory_order_relaxed); }
  bool budget_exceeded() const { return budget_exceeded_.load(std::memory_order_relaxed); }
  void ClearBudgetExceeded() { budget_exceeded_.store(false, std::memory_order_relaxed); }

  // Set when FaultInjector fired on FaultSite::kTensorAlloc: the allocation
  // itself still succeeds (callers never see nullptr) but the failure is
  // latched here, exactly like a soft-budget breach, and handled at the next
  // epoch boundary. Distinct from budget_exceeded() so the training loop can
  // treat it as transient (rollback + retry) rather than as OOM.
  bool failure_injected() const { return failure_injected_.load(std::memory_order_relaxed); }
  void ClearInjectedFailure() { failure_injected_.store(false, std::memory_order_relaxed); }

 private:
  TensorAllocator();

  std::atomic<uint64_t> live_bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<uint64_t> total_allocs_{0};
  std::atomic<uint64_t> fresh_mallocs_{0};
  std::atomic<uint64_t> pool_hits_{0};
  std::atomic<uint64_t> pool_misses_{0};
  std::atomic<uint64_t> pool_reuse_bytes_{0};
  std::atomic<uint64_t> pooled_bytes_{0};
  std::atomic<uint64_t> trims_{0};
  std::atomic<uint64_t> budget_trims_{0};
  std::atomic<uint64_t> soft_budget_{0};
  std::atomic<bool> budget_exceeded_{false};
  std::atomic<bool> failure_injected_{false};
  std::atomic<bool> pooling_enabled_{true};

  // Free lists keyed by size class. Tensor construction happens on whichever
  // thread runs the orchestration code, and worker threads free temporaries,
  // so the lists are mutex-guarded; the lock covers a vector push/pop only.
  std::mutex pool_mutex_;
  std::unordered_map<size_t, std::vector<void*>> pool_;
};

// RAII window for peak-memory measurement around one training epoch/run.
class PeakMemoryScope {
 public:
  PeakMemoryScope() { TensorAllocator::Get().ResetPeak(); }

  uint64_t PeakBytes() const { return TensorAllocator::Get().peak_bytes(); }
};

}  // namespace seastar

#endif  // SRC_TENSOR_ALLOCATOR_H_
