// Process-wide tensor allocator with live/peak byte accounting.
//
// Every Tensor's storage is obtained here, which lets the benchmark harnesses
// reproduce the paper's peak-memory comparison (Fig. 11, Table 4): the paper
// measures GPU device memory, we measure bytes of tensor storage. A soft
// budget can be armed so that backends which over-materialize (the PyG-like
// executor on reddit-scale graphs) report "OOM" exactly as in the paper,
// without actually exhausting host RAM.
#ifndef SRC_TENSOR_ALLOCATOR_H_
#define SRC_TENSOR_ALLOCATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace seastar {

// Thrown-free: allocation failure against the soft budget is recorded as a
// flag that callers poll (GNN training code checks it per epoch), because the
// os-systems style here avoids exceptions on hot paths.
class TensorAllocator {
 public:
  static TensorAllocator& Get();

  // Allocates `bytes` of float-aligned storage. Never returns nullptr
  // (hard OOM aborts); soft-budget violations only set budget_exceeded().
  void* Allocate(size_t bytes);
  void Deallocate(void* ptr, size_t bytes);

  uint64_t live_bytes() const { return live_bytes_.load(std::memory_order_relaxed); }
  uint64_t peak_bytes() const { return peak_bytes_.load(std::memory_order_relaxed); }
  uint64_t total_allocations() const { return total_allocs_.load(std::memory_order_relaxed); }

  // Starts a fresh peak-measurement window: peak := live.
  void ResetPeak();

  // Arms/disarms the soft budget. 0 disarms. Arming clears budget_exceeded.
  void SetSoftBudgetBytes(uint64_t bytes);
  uint64_t soft_budget_bytes() const { return soft_budget_.load(std::memory_order_relaxed); }
  bool budget_exceeded() const { return budget_exceeded_.load(std::memory_order_relaxed); }
  void ClearBudgetExceeded() { budget_exceeded_.store(false, std::memory_order_relaxed); }

  // Set when FaultInjector fired on FaultSite::kTensorAlloc: the allocation
  // itself still succeeds (callers never see nullptr) but the failure is
  // latched here, exactly like a soft-budget breach, and handled at the next
  // epoch boundary. Distinct from budget_exceeded() so the training loop can
  // treat it as transient (rollback + retry) rather than as OOM.
  bool failure_injected() const { return failure_injected_.load(std::memory_order_relaxed); }
  void ClearInjectedFailure() { failure_injected_.store(false, std::memory_order_relaxed); }

 private:
  TensorAllocator() = default;

  std::atomic<uint64_t> live_bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<uint64_t> total_allocs_{0};
  std::atomic<uint64_t> soft_budget_{0};
  std::atomic<bool> budget_exceeded_{false};
  std::atomic<bool> failure_injected_{false};
};

// RAII window for peak-memory measurement around one training epoch/run.
class PeakMemoryScope {
 public:
  PeakMemoryScope() { TensorAllocator::Get().ResetPeak(); }

  uint64_t PeakBytes() const { return TensorAllocator::Get().peak_bytes(); }
};

}  // namespace seastar

#endif  // SRC_TENSOR_ALLOCATOR_H_
