// Dense tensor kernels. These are the "DL backend" operators that the paper
// delegates to PyTorch: GEMM for the per-vertex linear transforms, elementwise
// math, row reductions, softmax/log-softmax for the classifier head, and the
// row gather/scatter primitives that the baseline (DGL-like / PyG-like)
// executors use to materialize edge tensors.
//
// All kernels are single-threaded except Matmul, which parallelizes over rows
// via the shared thread pool — mirroring how cuBLAS/cuDNN calls dominate both
// the paper's systems equally and are not the differentiating factor.
#ifndef SRC_TENSOR_OPS_H_
#define SRC_TENSOR_OPS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace seastar {
namespace ops {

// ---- Construction -----------------------------------------------------------------------------

// Uniform in [lo, hi).
Tensor RandomUniform(std::vector<int64_t> shape, float lo, float hi, Rng& rng);
// Gaussian with the given mean/stddev.
Tensor RandomNormal(std::vector<int64_t> shape, float mean, float stddev, Rng& rng);
// Glorot/Xavier-uniform initialization for a [fan_in, fan_out] weight matrix.
Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng);
// Identity-like one-hot rows: shape [n, num_classes], row i has 1 at labels[i].
Tensor OneHot(const std::vector<int32_t>& labels, int64_t num_classes);
// [n] iota as float.
Tensor Arange(int64_t n);

// ---- Elementwise (same shape, or rhs a scalar tensor of shape {1}) -----------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float slope);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
// ELU: x > 0 ? x : alpha * (exp(x) - 1).
Tensor Elu(const Tensor& a, float alpha = 1.0f);
// Gradient helpers.
Tensor ReluGrad(const Tensor& grad_out, const Tensor& input);
Tensor LeakyReluGrad(const Tensor& grad_out, const Tensor& input, float slope);
Tensor SigmoidGradFromOutput(const Tensor& grad_out, const Tensor& output);
Tensor EluGradFromOutput(const Tensor& grad_out, const Tensor& output, float alpha = 1.0f);
Tensor TanhGradFromOutput(const Tensor& grad_out, const Tensor& output);

// Broadcast a [D] (or {1}) tensor across the rows of a [N, D] tensor.
Tensor AddRowBroadcast(const Tensor& matrix, const Tensor& row);
Tensor MulRowBroadcast(const Tensor& matrix, const Tensor& row);
// Broadcast a [N, 1] column across the columns of a [N, D] tensor.
Tensor MulColBroadcast(const Tensor& matrix, const Tensor& col);

// ---- Linear algebra ----------------------------------------------------------------------------

// [N, K] x [K, M] -> [N, M]. Parallel over N.
Tensor Matmul(const Tensor& a, const Tensor& b);
// [N, K] x [M, K]^T -> [N, M].
Tensor MatmulTransposeB(const Tensor& a, const Tensor& b);
// [N, K]^T x [N, M] -> [K, M] (used for weight gradients).
Tensor MatmulTransposeA(const Tensor& a, const Tensor& b);
// 2-D transpose.
Tensor Transpose(const Tensor& a);
// Batched matmul: [B, N, K] x [B, K, M] -> [B, N, M]. This is the kernel the
// paper's "DGL-bmm / PyG-bmm" R-GCN baselines are built on.
Tensor BatchedMatmul(const Tensor& a, const Tensor& b);

// ---- Reductions --------------------------------------------------------------------------------

float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
// [N, D] -> [N, 1]: per-row sum / max.
Tensor RowSum(const Tensor& a);
Tensor RowMax(const Tensor& a);
// [N, D] -> [D]: column sum (bias gradients).
Tensor ColSum(const Tensor& a);
// Per-row argmax of a [N, D] tensor.
std::vector<int32_t> RowArgmax(const Tensor& a);

// ---- Softmax / losses ---------------------------------------------------------------------------

// Numerically stable row softmax / log-softmax of a [N, D] tensor.
Tensor Softmax(const Tensor& a);
Tensor LogSoftmax(const Tensor& a);
// Mean negative log-likelihood over rows listed in `mask_rows` (all rows when
// empty), given log-probabilities [N, C] and labels [N].
float NllLoss(const Tensor& log_probs, const std::vector<int32_t>& labels,
              const std::vector<int32_t>& mask_rows);
// Gradient of the masked-mean NLL w.r.t. the *logits* when combined with
// LogSoftmax (the fused cross-entropy backward).
Tensor CrossEntropyGrad(const Tensor& log_probs, const std::vector<int32_t>& labels,
                        const std::vector<int32_t>& mask_rows);

// ---- Dropout ------------------------------------------------------------------------------------

// Inverted dropout: zeroes with prob p, scales survivors by 1/(1-p). The
// returned mask (same shape, values 0 or 1/(1-p)) is needed for backward.
struct DropoutResult {
  Tensor output;
  Tensor mask;
};
DropoutResult Dropout(const Tensor& a, float p, Rng& rng);

// ---- Row gather / scatter (graph materialization primitives) ------------------------------------

// out[i, :] = a[index[i], :]. `a` is [N, D]; result is [index.size(), D].
Tensor GatherRows(const Tensor& a, const std::vector<int32_t>& index);
// out[index[i], :] += a[i, :]. out has `num_rows` rows.
Tensor ScatterAddRows(const Tensor& a, const std::vector<int32_t>& index, int64_t num_rows);
// Segment sum: rows of `a` grouped by contiguous segments given by offsets
// (size num_segments + 1); out[s, :] = sum of rows in [offsets[s], offsets[s+1]).
Tensor SegmentSum(const Tensor& a, const std::vector<int64_t>& offsets);

// ---- Misc ---------------------------------------------------------------------------------------

// Concatenate 2-D tensors along columns.
Tensor ConcatCols(const std::vector<Tensor>& parts);
// Select a contiguous row range [begin, end).
Tensor SliceRows(const Tensor& a, int64_t begin, int64_t end);
// Elementwise map (test helper; not used on hot paths).
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);

}  // namespace ops
}  // namespace seastar

#endif  // SRC_TENSOR_OPS_H_
