// Shared SIMD row kernels for the aggregation fast paths and the dense ops.
//
// These are the 8/16-wide inner loops behind kCopySum / kMulSum (see
// src/exec/seastar_executor.cc) and the gather/scatter row accumulations the
// baseline executors are built on. They exist as out-of-line, runtime-
// dispatched functions for two reasons:
//
//  * Bit-reproducibility across loop *partitionings*. The tiled executor
//    runs the same per-edge accumulation as the untiled one, just restricted
//    to a column range [c0, c1) of the feature row. Because both paths call
//    the same kernel — and every kernel here is elementwise-independent
//    across columns (one fma / add per column, no horizontal operations) —
//    splitting a row into tiles cannot change a single bit of the result.
//    Inlining the loops separately at each call site would instead leave the
//    rounding behaviour (FMA contraction, vector tails) to whatever the
//    optimizer chose per site.
//
//  * Portable builds stay fast. With SEASTAR_NATIVE_ARCH=OFF the translation
//    units compile for baseline x86-64 (SSE2), but the AVX2+FMA variants are
//    compiled via `__attribute__((target(...)))` and selected at process
//    start with __builtin_cpu_supports — a portable binary still runs the
//    wide kernels on machines that have them, and falls back to the scalar
//    loops (correct, just slower) everywhere else.
//
// Dispatch is resolved once into function pointers at static-init time;
// callers pay an indirect call per *row segment*, never per element. The
// chosen ISA is queryable (SimdIsaName) so executors can attribute kernel
// time to the dispatch that actually ran.
#ifndef SRC_TENSOR_SIMD_H_
#define SRC_TENSOR_SIMD_H_

#include <cstdint>

namespace seastar {
namespace simd {

// Name of the dispatched implementation: "avx2" or "scalar".
const char* SimdIsaName();
// Preferred vector width in floats (8 for AVX2, 1 for scalar). Benchmarks
// and the tile-size heuristic use it to align tile widths to full vectors.
int SimdLanes();

// acc[i] += x[i]                       (CopySum body)
extern void (*AddRow)(float* acc, const float* x, int64_t n);
// acc[i] += s                          (CopySum, width-1 -> w broadcast)
extern void (*AddScalarRow)(float* acc, float s, int64_t n);
// acc[i] += x[i] * s                   (MulSum, one side width-1)
extern void (*AxpyRow)(float* acc, const float* x, float s, int64_t n);
// acc[i] += x[i] * y[i]                (MulSum, both sides width-w)
extern void (*MulAddRow)(float* acc, const float* x, const float* y, int64_t n);
// x[i] *= s                            (AggMean finalization)
extern void (*ScaleRow)(float* x, float s, int64_t n);

// Dense-GEMM micro-kernels (the 16-column panels of ops.cc's GemmRowMajor).
// C[rows][16] = A[rows][k] @ B[k][16], row-major; A rows strided by lda, B
// rows by ldb, C rows by ldo. Written as explicit intrinsics because the
// shape that makes a GEMM fast — a 4-row × 16-column block of accumulators
// living in 8 vector registers while each streamed B row is reused 4 times —
// is exactly the shape autovectorizers lose when the strides are runtime
// values. Every output element is one k-ascending fma chain, so results are
// deterministic across row counts and panel splits.
extern void (*GemmTile4x16)(const float* pa, int64_t lda, const float* pb, int64_t ldb,
                            float* po, int64_t ldo, int64_t k);
extern void (*GemmTile1x16)(const float* pa, const float* pb, int64_t ldb, float* po, int64_t k);

}  // namespace simd
}  // namespace seastar

#endif  // SRC_TENSOR_SIMD_H_
