#include "src/tensor/allocator.h"

#include <cstdlib>

#include "src/common/fault.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace seastar {

TensorAllocator& TensorAllocator::Get() {
  static TensorAllocator* instance = new TensorAllocator();
  return *instance;
}

TensorAllocator::TensorAllocator() {
  const char* env = std::getenv("SEASTAR_POOL");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') {
    pooling_enabled_.store(false, std::memory_order_relaxed);
  }
  // Always-on metrics are *pulled* from the existing atomics at export time;
  // Allocate/Deallocate pay nothing beyond the counters they already keep.
  // `this` is the leaked process singleton, so the captures never dangle.
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Get();
  using metrics::CallbackKind;
  registry.RegisterCallback("seastar_alloc_requests_total", CallbackKind::kCounter,
                            [this] { return static_cast<double>(total_allocations()); });
  registry.RegisterCallback("seastar_alloc_fresh_mallocs_total", CallbackKind::kCounter,
                            [this] { return static_cast<double>(fresh_mallocs()); });
  registry.RegisterCallback("seastar_alloc_pool_hits_total", CallbackKind::kCounter,
                            [this] { return static_cast<double>(pool_hits()); });
  registry.RegisterCallback("seastar_alloc_pool_misses_total", CallbackKind::kCounter,
                            [this] { return static_cast<double>(pool_misses()); });
  registry.RegisterCallback("seastar_alloc_trims_total", CallbackKind::kCounter,
                            [this] { return static_cast<double>(trims()); });
  registry.RegisterCallback("seastar_alloc_budget_trims_total", CallbackKind::kCounter,
                            [this] { return static_cast<double>(budget_trims()); });
  registry.RegisterCallback("seastar_alloc_live_bytes", CallbackKind::kGauge,
                            [this] { return static_cast<double>(live_bytes()); });
  registry.RegisterCallback("seastar_alloc_peak_bytes", CallbackKind::kGauge,
                            [this] { return static_cast<double>(peak_bytes()); });
  registry.RegisterCallback("seastar_alloc_pooled_bytes", CallbackKind::kGauge,
                            [this] { return static_cast<double>(pooled_bytes()); });
}

size_t TensorAllocator::SizeClassBytes(size_t bytes) {
  constexpr size_t kMinClass = 64;
  constexpr size_t kPageClass = 4096;
  if (bytes <= kMinClass) {
    return kMinClass;
  }
  if (bytes < kPageClass) {
    size_t cls = kMinClass;
    while (cls < bytes) {
      cls <<= 1;
    }
    return cls;
  }
  return (bytes + kPageClass - 1) & ~(kPageClass - 1);
}

void* TensorAllocator::Allocate(size_t bytes) {
  FaultInjector& faults = FaultInjector::Get();
  if (faults.enabled() && faults.ShouldFail(FaultSite::kTensorAlloc)) {
    failure_injected_.store(true, std::memory_order_relaxed);
  }
  total_allocs_.fetch_add(1, std::memory_order_relaxed);

  void* ptr = nullptr;
  const size_t cls = SizeClassBytes(bytes);
  if (pooling_enabled_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      auto it = pool_.find(cls);
      if (it != pool_.end() && !it->second.empty()) {
        ptr = it->second.back();
        it->second.pop_back();
      }
    }
    if (ptr != nullptr) {
      pool_hits_.fetch_add(1, std::memory_order_relaxed);
      pool_reuse_bytes_.fetch_add(cls, std::memory_order_relaxed);
      pooled_bytes_.fetch_sub(cls, std::memory_order_relaxed);
    } else {
      pool_misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (ptr == nullptr) {
    ptr = std::malloc(cls);
    SEASTAR_CHECK(ptr != nullptr) << "host OOM allocating " << bytes << " bytes";
    fresh_mallocs_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t live = live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;

  // Monotonic max update for the peak.
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_bytes_.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }

  uint64_t budget = soft_budget_.load(std::memory_order_relaxed);
  if (budget != 0) {
    // The budget bounds the process's tensor footprint: live bytes plus the
    // blocks cached on the free lists. A long-running server whose request
    // mix shifts (different batch sizes -> different size classes) strands
    // blocks in classes it no longer allocates from; before declaring a
    // breach, release that cache and re-judge against live bytes alone, so
    // pool fragmentation never reads as OOM.
    if (live + pooled_bytes_.load(std::memory_order_relaxed) > budget && live <= budget &&
        pooling_enabled_.load(std::memory_order_relaxed)) {
      Trim();
      budget_trims_.fetch_add(1, std::memory_order_relaxed);
    }
    if (live > budget) {
      budget_exceeded_.store(true, std::memory_order_relaxed);
    }
  }
  return ptr;
}

void TensorAllocator::Deallocate(void* ptr, size_t bytes) {
  if (ptr == nullptr) {
    return;
  }
  live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  if (pooling_enabled_.load(std::memory_order_relaxed)) {
    const size_t cls = SizeClassBytes(bytes);
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      pool_[cls].push_back(ptr);
    }
    pooled_bytes_.fetch_add(cls, std::memory_order_relaxed);
    return;
  }
  std::free(ptr);
}

uint64_t TensorAllocator::Trim() {
  std::unordered_map<size_t, std::vector<void*>> drained;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    drained.swap(pool_);
  }
  uint64_t freed = 0;
  for (auto& [cls, blocks] : drained) {
    freed += cls * blocks.size();
    for (void* block : blocks) {
      std::free(block);
    }
  }
  pooled_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  trims_.fetch_add(1, std::memory_order_relaxed);
  return freed;
}

void TensorAllocator::ResetPeak() {
  peak_bytes_.store(live_bytes_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

void TensorAllocator::SetSoftBudgetBytes(uint64_t bytes) {
  soft_budget_.store(bytes, std::memory_order_relaxed);
  budget_exceeded_.store(false, std::memory_order_relaxed);
}

}  // namespace seastar
