#include "src/tensor/allocator.h"

#include <cstdlib>

#include "src/common/fault.h"
#include "src/common/logging.h"

namespace seastar {

TensorAllocator& TensorAllocator::Get() {
  static TensorAllocator* instance = new TensorAllocator();
  return *instance;
}

void* TensorAllocator::Allocate(size_t bytes) {
  FaultInjector& faults = FaultInjector::Get();
  if (faults.enabled() && faults.ShouldFail(FaultSite::kTensorAlloc)) {
    failure_injected_.store(true, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(bytes > 0 ? bytes : 1);
  SEASTAR_CHECK(ptr != nullptr) << "host OOM allocating " << bytes << " bytes";
  uint64_t live = live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  total_allocs_.fetch_add(1, std::memory_order_relaxed);

  // Monotonic max update for the peak.
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_bytes_.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }

  uint64_t budget = soft_budget_.load(std::memory_order_relaxed);
  if (budget != 0 && live > budget) {
    budget_exceeded_.store(true, std::memory_order_relaxed);
  }
  return ptr;
}

void TensorAllocator::Deallocate(void* ptr, size_t bytes) {
  if (ptr == nullptr) {
    return;
  }
  std::free(ptr);
  live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

void TensorAllocator::ResetPeak() {
  peak_bytes_.store(live_bytes_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

void TensorAllocator::SetSoftBudgetBytes(uint64_t bytes) {
  soft_budget_.store(bytes, std::memory_order_relaxed);
  budget_exceeded_.store(false, std::memory_order_relaxed);
}

}  // namespace seastar
