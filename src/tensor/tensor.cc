#include "src/tensor/tensor.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "src/common/logging.h"
#include "src/tensor/allocator.h"

namespace seastar {

int64_t NumElements(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    SEASTAR_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

struct Tensor::Storage {
  explicit Storage(size_t num_floats)
      : bytes(num_floats * sizeof(float)),
        data(static_cast<float*>(TensorAllocator::Get().Allocate(num_floats * sizeof(float)))) {}

  ~Storage() { TensorAllocator::Get().Deallocate(data, bytes); }

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  size_t bytes;
  float* data;
};

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), numel_(NumElements(shape_)) {
  storage_ = std::make_shared<Storage>(static_cast<size_t>(numel_));
}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> values) : Tensor(std::move(shape)) {
  SEASTAR_CHECK_EQ(static_cast<int64_t>(values.size()), numel_);
  if (!values.empty()) {  // An empty vector's data() may be null (UB for memcpy).
    std::memcpy(storage_->data, values.data(), values.size() * sizeof(float));
  }
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  Tensor t(std::move(shape));
  t.Fill(0.0f);
  return t;
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  Tensor t(std::move(shape));
  t.Fill(1.0f);
  return t;
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromScalar(float value) { return Tensor({1}, {value}); }

int64_t Tensor::dim(size_t axis) const {
  SEASTAR_CHECK_LT(axis, shape_.size());
  return shape_[axis];
}

float* Tensor::data() {
  SEASTAR_CHECK(defined());
  return storage_->data;
}

const float* Tensor::data() const {
  SEASTAR_CHECK(defined());
  return storage_->data;
}

float& Tensor::at(int64_t i) {
  SEASTAR_CHECK_GE(i, 0);
  SEASTAR_CHECK_LT(i, numel_);
  return storage_->data[i];
}

float Tensor::at(int64_t i) const {
  SEASTAR_CHECK_GE(i, 0);
  SEASTAR_CHECK_LT(i, numel_);
  return storage_->data[i];
}

float& Tensor::at(int64_t i, int64_t j) {
  SEASTAR_CHECK_EQ(ndim(), 2);
  SEASTAR_CHECK_GE(i, 0);
  SEASTAR_CHECK_LT(i, shape_[0]);
  SEASTAR_CHECK_GE(j, 0);
  SEASTAR_CHECK_LT(j, shape_[1]);
  return storage_->data[i * shape_[1] + j];
}

float Tensor::at(int64_t i, int64_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

Tensor Tensor::Clone() const {
  if (!defined()) {
    return Tensor();
  }
  Tensor copy(shape_);
  std::memcpy(copy.storage_->data, storage_->data, static_cast<size_t>(numel_) * sizeof(float));
  return copy;
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  SEASTAR_CHECK(defined());
  SEASTAR_CHECK_EQ(NumElements(new_shape), numel_);
  Tensor view;
  view.storage_ = storage_;
  view.shape_ = std::move(new_shape);
  view.numel_ = numel_;
  return view;
}

void Tensor::Fill(float value) {
  SEASTAR_CHECK(defined());
  float* p = storage_->data;
  for (int64_t i = 0; i < numel_; ++i) {
    p[i] = value;
  }
}

float* Tensor::Row(int64_t i) {
  SEASTAR_CHECK_EQ(ndim(), 2);
  SEASTAR_CHECK_GE(i, 0);
  SEASTAR_CHECK_LT(i, shape_[0]);
  return storage_->data + i * shape_[1];
}

const float* Tensor::Row(int64_t i) const { return const_cast<Tensor*>(this)->Row(i); }

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "Tensor[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) {
      os << "x";
    }
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

bool Tensor::AllClose(const Tensor& other, float tol) const {
  if (!defined() || !other.defined() || shape_ != other.shape()) {
    return false;
  }
  const float* a = data();
  const float* b = other.data();
  for (int64_t i = 0; i < numel_; ++i) {
    float diff = std::fabs(a[i] - b[i]);
    float scale = std::max(1.0f, std::max(std::fabs(a[i]), std::fabs(b[i])));
    if (diff > tol * scale || std::isnan(diff)) {
      return false;
    }
  }
  return true;
}

}  // namespace seastar
