#include "src/tensor/autograd.h"

#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace seastar {

namespace autograd_internal {

void VarNode::AccumulateGrad(const Tensor& g) {
  if (!grad.defined()) {
    // Share the incoming tensor rather than cloning: every backward_fn in
    // this codebase returns exclusively owned (or freshly cloned) tensors,
    // and for wide gradients (R-GCN's [R, N, d] stacks) the extra copy is
    // the difference between fitting the memory budget and OOM.
    grad = g;
    return;
  }
  SEASTAR_CHECK(grad.shape() == g.shape());
  float* pd = grad.data();
  const float* ps = g.data();
  for (int64_t i = 0; i < grad.numel(); ++i) {
    pd[i] += ps[i];
  }
}

}  // namespace autograd_internal

using autograd_internal::VarNode;

Var Var::Leaf(Tensor value, bool requires_grad) {
  Var v;
  v.node_ = std::make_shared<VarNode>();
  v.node_->value = std::move(value);
  v.node_->requires_grad = requires_grad;
  return v;
}

const Tensor& Var::value() const {
  SEASTAR_CHECK(defined());
  return node_->value;
}

Tensor& Var::mutable_value() {
  SEASTAR_CHECK(defined());
  return node_->value;
}

const Tensor& Var::grad() const {
  SEASTAR_CHECK(defined());
  return node_->grad;
}

bool Var::requires_grad() const { return defined() && node_->requires_grad; }

const std::string& Var::op_name() const {
  SEASTAR_CHECK(defined());
  return node_->op_name;
}

void Var::ClearGrad() {
  SEASTAR_CHECK(defined());
  node_->grad = Tensor();
}

Var Var::MakeNode(Tensor value, std::vector<Var> inputs,
                  std::function<std::vector<Tensor>(const Tensor&)> backward_fn,
                  std::string op_name) {
  Var v;
  v.node_ = std::make_shared<VarNode>();
  v.node_->value = std::move(value);
  v.node_->op_name = std::move(op_name);
  bool any_grad = false;
  v.node_->inputs.reserve(inputs.size());
  for (const Var& input : inputs) {
    SEASTAR_CHECK(input.defined());
    any_grad = any_grad || input.requires_grad();
    v.node_->inputs.push_back(input.node());
  }
  v.node_->requires_grad = any_grad;
  if (any_grad) {
    v.node_->backward_fn = std::move(backward_fn);
  }
  return v;
}

void Backward(const Var& root, const Tensor& seed) {
  SEASTAR_CHECK(root.defined());
  SEASTAR_CHECK(root.requires_grad()) << "Backward on a graph with no requires-grad leaves";
  SEASTAR_CHECK(seed.shape() == root.value().shape());

  // Iterative post-order DFS to get a topological order of the tape.
  std::vector<VarNode*> topo;
  std::unordered_set<VarNode*> visited;
  std::vector<std::pair<VarNode*, size_t>> stack;
  std::unordered_map<VarNode*, std::shared_ptr<VarNode>> keep_alive;

  auto push = [&](const std::shared_ptr<VarNode>& node) {
    if (node->requires_grad && visited.insert(node.get()).second) {
      stack.emplace_back(node.get(), 0);
      keep_alive.emplace(node.get(), node);
    }
  };
  push(root.node());
  while (!stack.empty()) {
    auto& [node, child_index] = stack.back();
    if (child_index < node->inputs.size()) {
      const auto& child = node->inputs[child_index++];
      if (child->requires_grad && visited.find(child.get()) == visited.end()) {
        visited.insert(child.get());
        keep_alive.emplace(child.get(), child);
        stack.emplace_back(child.get(), 0);
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }

  root.node()->AccumulateGrad(seed);

  // topo is post-order (children before parents), so iterate in reverse:
  // every node's grad is complete before it propagates to its inputs —
  // the same "all downstream operators differentiated first" invariant the
  // paper maintains for GIR autodiff (§5.2).
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    VarNode* node = *it;
    if (!node->backward_fn) {
      continue;  // Leaf.
    }
    SEASTAR_CHECK(node->grad.defined())
        << "node '" << node->op_name << "' reached without gradient";
    std::vector<Tensor> input_grads = node->backward_fn(node->grad);
    SEASTAR_CHECK_EQ(input_grads.size(), node->inputs.size())
        << "op '" << node->op_name << "' returned wrong grad count";
    for (size_t i = 0; i < input_grads.size(); ++i) {
      if (node->inputs[i]->requires_grad) {
        SEASTAR_CHECK(input_grads[i].defined())
            << "op '" << node->op_name << "' missing grad for requires-grad input " << i;
        node->inputs[i]->AccumulateGrad(input_grads[i]);
      }
    }
    // Free the interior gradient eagerly (the paper clears its tensor map
    // entries once no dependency remains, §5.3).
    node->grad = Tensor();
  }
}

namespace ag {

Var Add(const Var& a, const Var& b) {
  Tensor out = ops::Add(a.value(), b.value());
  return Var::MakeNode(
      std::move(out), {a, b},
      [](const Tensor& g) { return std::vector<Tensor>{g.Clone(), g.Clone()}; }, "add");
}

Var Sub(const Var& a, const Var& b) {
  Tensor out = ops::Sub(a.value(), b.value());
  return Var::MakeNode(
      std::move(out), {a, b},
      [](const Tensor& g) { return std::vector<Tensor>{g.Clone(), ops::Neg(g)}; }, "sub");
}

Var Mul(const Var& a, const Var& b) {
  Tensor out = ops::Mul(a.value(), b.value());
  Tensor av = a.value();
  Tensor bv = b.value();
  return Var::MakeNode(
      std::move(out), {a, b},
      [av, bv](const Tensor& g) {
        return std::vector<Tensor>{ops::Mul(g, bv), ops::Mul(g, av)};
      },
      "mul");
}

Var AddRowBroadcast(const Var& matrix, const Var& row) {
  Tensor out = ops::AddRowBroadcast(matrix.value(), row.value());
  const bool scalar_row = row.value().numel() == 1;
  return Var::MakeNode(
      std::move(out), {matrix, row},
      [scalar_row](const Tensor& g) {
        Tensor row_grad = scalar_row ? Tensor::FromScalar(ops::SumAll(g)) : ops::ColSum(g);
        return std::vector<Tensor>{g.Clone(), std::move(row_grad)};
      },
      "add_row_broadcast");
}

Var Matmul(const Var& a, const Var& b) {
  Tensor out = ops::Matmul(a.value(), b.value());
  Tensor av = a.value();
  Tensor bv = b.value();
  return Var::MakeNode(
      std::move(out), {a, b},
      [av, bv](const Tensor& g) {
        // dA = g @ B^T ; dB = A^T @ g.
        return std::vector<Tensor>{ops::MatmulTransposeB(g, bv), ops::MatmulTransposeA(av, g)};
      },
      "matmul");
}

Var Relu(const Var& a) {
  Tensor out = ops::Relu(a.value());
  Tensor av = a.value();
  return Var::MakeNode(
      std::move(out), {a},
      [av](const Tensor& g) { return std::vector<Tensor>{ops::ReluGrad(g, av)}; }, "relu");
}

Var LeakyRelu(const Var& a, float slope) {
  Tensor out = ops::LeakyRelu(a.value(), slope);
  Tensor av = a.value();
  return Var::MakeNode(
      std::move(out), {a},
      [av, slope](const Tensor& g) {
        return std::vector<Tensor>{ops::LeakyReluGrad(g, av, slope)};
      },
      "leaky_relu");
}

Var Sigmoid(const Var& a) {
  Tensor out = ops::Sigmoid(a.value());
  Tensor saved = out;
  return Var::MakeNode(
      std::move(out), {a},
      [saved](const Tensor& g) {
        return std::vector<Tensor>{ops::SigmoidGradFromOutput(g, saved)};
      },
      "sigmoid");
}

Var Tanh(const Var& a) {
  Tensor out = ops::Tanh(a.value());
  Tensor saved = out;
  return Var::MakeNode(
      std::move(out), {a},
      [saved](const Tensor& g) {
        return std::vector<Tensor>{ops::TanhGradFromOutput(g, saved)};
      },
      "tanh");
}

Var Elu(const Var& a, float alpha) {
  Tensor out = ops::Elu(a.value(), alpha);
  Tensor saved = out;
  return Var::MakeNode(
      std::move(out), {a},
      [saved, alpha](const Tensor& g) {
        return std::vector<Tensor>{ops::EluGradFromOutput(g, saved, alpha)};
      },
      "elu");
}

Var Exp(const Var& a) {
  Tensor out = ops::Exp(a.value());
  Tensor saved = out;
  return Var::MakeNode(
      std::move(out), {a},
      [saved](const Tensor& g) { return std::vector<Tensor>{ops::Mul(g, saved)}; }, "exp");
}

Var MulScalar(const Var& a, float s) {
  Tensor out = ops::MulScalar(a.value(), s);
  return Var::MakeNode(
      std::move(out), {a},
      [s](const Tensor& g) { return std::vector<Tensor>{ops::MulScalar(g, s)}; }, "mul_scalar");
}

Var LogSoftmax(const Var& a) {
  Tensor out = ops::LogSoftmax(a.value());
  Tensor saved = out;
  return Var::MakeNode(
      std::move(out), {a},
      [saved](const Tensor& g) {
        // d/dx log_softmax: g - softmax * rowsum(g).
        Tensor softmax = ops::Exp(saved);
        Tensor row_totals = ops::RowSum(g);
        Tensor correction = ops::MulColBroadcast(softmax, row_totals);
        return std::vector<Tensor>{ops::Sub(g, correction)};
      },
      "log_softmax");
}

Var Dropout(const Var& a, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0f) {
    return a;
  }
  ops::DropoutResult result = ops::Dropout(a.value(), p, rng);
  Tensor mask = result.mask;
  return Var::MakeNode(
      std::move(result.output), {a},
      [mask](const Tensor& g) { return std::vector<Tensor>{ops::Mul(g, mask)}; }, "dropout");
}

Var ConcatCols(const std::vector<Var>& parts) {
  SEASTAR_CHECK(!parts.empty());
  std::vector<Tensor> values;
  std::vector<int64_t> widths;
  values.reserve(parts.size());
  for (const Var& part : parts) {
    values.push_back(part.value());
    widths.push_back(part.value().dim(1));
  }
  Tensor out = ops::ConcatCols(values);
  return Var::MakeNode(
      std::move(out), parts,
      [widths](const Tensor& g) {
        std::vector<Tensor> grads;
        grads.reserve(widths.size());
        const int64_t n = g.dim(0);
        const int64_t total = g.dim(1);
        int64_t col = 0;
        for (int64_t w : widths) {
          Tensor piece({n, w});
          for (int64_t i = 0; i < n; ++i) {
            const float* src = g.data() + i * total + col;
            float* dst = piece.data() + i * w;
            for (int64_t j = 0; j < w; ++j) {
              dst[j] = src[j];
            }
          }
          grads.push_back(std::move(piece));
          col += w;
        }
        return grads;
      },
      "concat_cols");
}

Var NllLoss(const Var& log_probs, std::vector<int32_t> labels, std::vector<int32_t> mask_rows) {
  const float loss = ops::NllLoss(log_probs.value(), labels, mask_rows);
  Tensor lp = log_probs.value();
  return Var::MakeNode(
      Tensor::FromScalar(loss), {log_probs},
      [lp, labels = std::move(labels), mask_rows = std::move(mask_rows)](const Tensor& g) {
        Tensor grad = ops::CrossEntropyGrad(lp, labels, mask_rows);
        return std::vector<Tensor>{ops::MulScalar(grad, g.at(0))};
      },
      "nll_loss");
}

Var CustomOp(std::vector<Var> inputs, Tensor output,
             std::function<std::vector<Tensor>(const Tensor&)> backward_fn, std::string op_name) {
  return Var::MakeNode(std::move(output), std::move(inputs), std::move(backward_fn),
                       std::move(op_name));
}

}  // namespace ag
}  // namespace seastar
