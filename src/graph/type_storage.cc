#include "src/graph/type_storage.h"

#include <algorithm>

#include "src/common/logging.h"

namespace seastar {

TypeOffsetIndex BuildTypeOffsetIndex(const Csr& csr) {
  SEASTAR_CHECK(!csr.edge_types.empty()) << "graph has no edge types";
  TypeOffsetIndex index;
  index.run_bounds.reserve(static_cast<size_t>(csr.num_vertices) + 1);
  index.run_bounds.push_back(0);
  for (int64_t k = 0; k < csr.num_vertices; ++k) {
    const int64_t begin = csr.offsets[static_cast<size_t>(k)];
    const int64_t end = csr.offsets[static_cast<size_t>(k) + 1];
    int32_t previous_type = -1;
    for (int64_t slot = begin; slot < end; ++slot) {
      const int32_t type = csr.edge_types[static_cast<size_t>(slot)];
      SEASTAR_CHECK_GE(type, previous_type) << "slots must be type-sorted";
      if (type != previous_type) {
        index.run_start_slot.push_back(slot);
        index.run_type.push_back(type);
        previous_type = type;
      }
    }
    index.run_bounds.push_back(static_cast<int64_t>(index.run_start_slot.size()));
  }
  return index;
}

uint64_t TypeOffsetIndexBytes(const TypeOffsetIndex& index) {
  return index.run_bounds.size() * sizeof(int64_t) +
         index.run_start_slot.size() * sizeof(int64_t) +
         index.run_type.size() * sizeof(int32_t);
}

uint64_t FlatTypeArrayBytes(const Csr& csr) { return csr.edge_types.size() * sizeof(int32_t); }

int64_t UniqueTypePairs(const Csr& csr) {
  int64_t total = 0;
  for (int64_t k = 0; k < csr.num_vertices; ++k) {
    const int64_t begin = csr.offsets[static_cast<size_t>(k)];
    const int64_t end = csr.offsets[static_cast<size_t>(k) + 1];
    int32_t previous_type = -1;
    for (int64_t slot = begin; slot < end; ++slot) {
      const int32_t type = csr.edge_types[static_cast<size_t>(slot)];
      if (type != previous_type) {
        ++total;
        previous_type = type;
      }
    }
  }
  return total;
}

TypeStorageDecision AnalyzeTypeStorage(const Graph& graph) {
  SEASTAR_CHECK(graph.is_heterogeneous());
  TypeStorageDecision decision;
  decision.num_edges = graph.num_edges();
  decision.unique_pairs_in = UniqueTypePairs(graph.in_csr());
  decision.unique_pairs_out = UniqueTypePairs(graph.out_csr());
  const int64_t worst_pairs = std::max(decision.unique_pairs_in, decision.unique_pairs_out);
  decision.ratio =
      worst_pairs > 0 ? static_cast<double>(decision.num_edges) / worst_pairs : 0.0;

  // The flat array is stored once and indexed through edge ids by both
  // passes; the compressed index must exist per CSR orientation (§6.3.5).
  decision.flat_bytes = FlatTypeArrayBytes(graph.in_csr());
  decision.compressed_bytes = TypeOffsetIndexBytes(BuildTypeOffsetIndex(graph.in_csr())) +
                              TypeOffsetIndexBytes(BuildTypeOffsetIndex(graph.out_csr()));
  decision.flat_wins = decision.flat_bytes <= decision.compressed_bytes;
  return decision;
}

}  // namespace seastar
