#include "src/graph/datasets.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {

const std::vector<DatasetSpec>& DatasetCatalog() {
  // Counts are Table 2 of the paper; class counts follow the standard
  // benchmark versions of each dataset.
  static const std::vector<DatasetSpec>* catalog = new std::vector<DatasetSpec>{
      {"cora", 2709, 10556, 1433, 1, 7, DegreeProfile::kUniform, 1.0},
      {"citeseer", 3328, 9228, 3703, 1, 6, DegreeProfile::kUniform, 1.0},
      {"pubmed", 19718, 88651, 500, 1, 3, DegreeProfile::kUniform, 1.0},
      {"corafull", 19794, 130622, 8710, 1, 70, DegreeProfile::kUniform, 1.0},
      {"ca_cs", 18334, 327576, 6805, 1, 15, DegreeProfile::kUniform, 1.0},
      {"ca_physics", 34494, 991848, 8415, 1, 5, DegreeProfile::kUniform, 0.5},
      {"amz_photo", 7651, 287326, 745, 1, 8, DegreeProfile::kPowerLaw, 1.0},
      {"amz_comp", 13753, 574418, 767, 1, 10, DegreeProfile::kPowerLaw, 1.0},
      {"reddit", 198021, 84120742, 602, 1, 41, DegreeProfile::kPowerLaw, 0.02},
      {"aifb", 8285, 58086, 0, 90, 4, DegreeProfile::kUniform, 1.0},
      {"mutag", 23644, 148454, 0, 46, 2, DegreeProfile::kUniform, 1.0},
      {"bgs", 333845, 1832398, 0, 206, 2, DegreeProfile::kPowerLaw, 0.2},
  };
  return *catalog;
}

const DatasetSpec* FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : DatasetCatalog()) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

std::vector<DatasetSpec> HomogeneousDatasets() {
  std::vector<DatasetSpec> result;
  for (const DatasetSpec& spec : DatasetCatalog()) {
    if (spec.num_relations == 1) {
      result.push_back(spec);
    }
  }
  return result;
}

std::vector<DatasetSpec> HeterogeneousDatasets() {
  std::vector<DatasetSpec> result;
  for (const DatasetSpec& spec : DatasetCatalog()) {
    if (spec.num_relations > 1) {
      result.push_back(spec);
    }
  }
  return result;
}

Dataset MakeDataset(const DatasetSpec& spec, const DatasetOptions& options) {
  SEASTAR_CHECK_GT(options.scale, 0.0);
  DatasetSpec scaled = spec;
  scaled.num_vertices =
      std::max<int64_t>(8, static_cast<int64_t>(std::llround(spec.num_vertices * options.scale)));
  scaled.num_edges =
      std::max<int64_t>(8, static_cast<int64_t>(std::llround(spec.num_edges * options.scale)));
  if (options.max_feature_dim > 0 && scaled.feature_dim > options.max_feature_dim) {
    scaled.feature_dim = options.max_feature_dim;
  }

  Rng rng(options.seed * 0x9e3779b97f4a7c15ull + std::hash<std::string>{}(spec.name));

  CooEdges edges;
  switch (spec.profile) {
    case DegreeProfile::kUniform:
      edges = ErdosRenyi(scaled.num_vertices, scaled.num_edges, rng);
      break;
    case DegreeProfile::kPowerLaw:
      edges = Rmat(scaled.num_vertices, scaled.num_edges, rng);
      break;
  }

  std::vector<int32_t> edge_types;
  const bool hetero = scaled.num_relations > 1;
  if (options.add_self_loops && !hetero) {
    AddSelfLoops(edges);
    scaled.num_edges = static_cast<int64_t>(edges.src.size());
  }
  if (hetero) {
    edge_types = RandomEdgeTypes(static_cast<int64_t>(edges.src.size()), scaled.num_relations, rng);
  }

  Dataset dataset;
  dataset.spec = scaled;
  GraphOptions graph_options;
  graph_options.sort_by_degree = options.sort_by_degree;
  dataset.graph = Graph::FromCoo(edges.num_vertices, std::move(edges.src), std::move(edges.dst),
                                 std::move(edge_types), scaled.num_relations, graph_options);

  if (scaled.feature_dim > 0) {
    dataset.features =
        ops::RandomNormal({scaled.num_vertices, scaled.feature_dim}, 0.0f, 1.0f, rng);
  }

  dataset.gcn_norm = Tensor({scaled.num_vertices, 1});
  for (int64_t v = 0; v < scaled.num_vertices; ++v) {
    const int64_t deg = dataset.graph.InDegree(static_cast<int32_t>(v));
    dataset.gcn_norm.at(v, 0) = 1.0f / std::sqrt(static_cast<float>(std::max<int64_t>(1, deg)));
  }

  dataset.labels.resize(static_cast<size_t>(scaled.num_vertices));
  for (int64_t v = 0; v < scaled.num_vertices; ++v) {
    dataset.labels[static_cast<size_t>(v)] =
        static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(scaled.num_classes)));
  }

  for (int64_t v = 0; v < scaled.num_vertices; ++v) {
    if (rng.NextBernoulli(options.train_fraction)) {
      dataset.train_mask.push_back(static_cast<int32_t>(v));
    }
  }
  if (dataset.train_mask.empty()) {
    dataset.train_mask.push_back(0);
  }
  return dataset;
}

Dataset MakeDatasetByName(const std::string& name, const DatasetOptions& options) {
  StatusOr<Dataset> data = TryMakeDatasetByName(name, options);
  SEASTAR_CHECK(data.has_value()) << data.status().ToString();
  return *std::move(data);
}

StatusOr<Dataset> TryMakeDatasetByName(const std::string& name, const DatasetOptions& options) {
  const DatasetSpec* spec = FindDataset(name);
  if (spec == nullptr) {
    ErrorStatus error(StatusCode::kNotFound);
    error << "unknown dataset '" << name << "' (valid choices:";
    for (const DatasetSpec& entry : DatasetCatalog()) {
      error << " " << entry.name;
    }
    error << ")";
    return error;
  }
  return MakeDataset(*spec, options);
}

}  // namespace seastar
