#include "src/graph/sampling.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/logging.h"

namespace seastar {

SampledSubgraph SampleNeighborhood(const Graph& graph, const std::vector<int32_t>& seeds,
                                   const std::vector<int>& fanouts, Rng& rng) {
  SampledSubgraph result;
  result.num_seeds = static_cast<int64_t>(seeds.size());

  std::unordered_map<int32_t, int32_t> global_to_local;
  const auto local_id = [&](int32_t global) {
    auto [it, inserted] =
        global_to_local.emplace(global, static_cast<int32_t>(result.local_to_global.size()));
    if (inserted) {
      result.local_to_global.push_back(global);
    }
    return it->second;
  };
  for (int32_t seed : seeds) {
    SEASTAR_CHECK_GE(seed, 0);
    SEASTAR_CHECK_LT(seed, graph.num_vertices());
    local_id(seed);
  }

  std::vector<int32_t> sub_src;
  std::vector<int32_t> sub_dst;
  std::vector<int32_t> sub_type;
  const bool typed = graph.is_heterogeneous();

  const Csr& csr = graph.in_csr();
  std::vector<int32_t> frontier = seeds;
  std::vector<int64_t> slot_pool;
  for (int fanout : fanouts) {
    std::vector<int32_t> next_frontier;
    for (int32_t v : frontier) {
      const int64_t position = csr.vertex_position[static_cast<size_t>(v)];
      const int64_t begin = csr.offsets[static_cast<size_t>(position)];
      const int64_t end = csr.offsets[static_cast<size_t>(position) + 1];
      const int64_t degree = end - begin;
      slot_pool.clear();
      if (fanout <= 0 || degree <= fanout) {
        for (int64_t slot = begin; slot < end; ++slot) {
          slot_pool.push_back(slot);
        }
      } else {
        // Partial Fisher-Yates: draw `fanout` distinct slots.
        slot_pool.resize(static_cast<size_t>(degree));
        for (int64_t i = 0; i < degree; ++i) {
          slot_pool[static_cast<size_t>(i)] = begin + i;
        }
        for (int i = 0; i < fanout; ++i) {
          const size_t j =
              static_cast<size_t>(i) +
              static_cast<size_t>(rng.NextBounded(static_cast<uint64_t>(degree - i)));
          std::swap(slot_pool[static_cast<size_t>(i)], slot_pool[j]);
        }
        slot_pool.resize(static_cast<size_t>(fanout));
      }
      const int32_t local_dst = local_id(v);
      for (int64_t slot : slot_pool) {
        const int32_t u = csr.nbr_ids[static_cast<size_t>(slot)];
        const bool is_new = global_to_local.find(u) == global_to_local.end();
        const int32_t local_src = local_id(u);
        sub_src.push_back(local_src);
        sub_dst.push_back(local_dst);
        if (typed) {
          const int32_t eid = csr.edge_ids[static_cast<size_t>(slot)];
          sub_type.push_back(graph.edge_type()[static_cast<size_t>(eid)]);
        }
        if (is_new) {
          next_frontier.push_back(u);
        }
      }
    }
    frontier = std::move(next_frontier);
  }

  result.graph = Graph::FromCoo(static_cast<int64_t>(result.local_to_global.size()),
                                std::move(sub_src), std::move(sub_dst), std::move(sub_type),
                                typed ? graph.num_edge_types() : 1);
  return result;
}

Tensor GatherLocalFeatures(const SampledSubgraph& subgraph, const Tensor& global_features) {
  SEASTAR_CHECK_EQ(global_features.ndim(), 2);
  const int64_t width = global_features.dim(1);
  Tensor local({static_cast<int64_t>(subgraph.local_to_global.size()), width});
  for (size_t i = 0; i < subgraph.local_to_global.size(); ++i) {
    const int32_t global = subgraph.local_to_global[i];
    std::copy(global_features.Row(global), global_features.Row(global) + width,
              local.Row(static_cast<int64_t>(i)));
  }
  return local;
}

std::vector<int32_t> GatherLocalLabels(const SampledSubgraph& subgraph,
                                       const std::vector<int32_t>& global_labels) {
  std::vector<int32_t> local(subgraph.local_to_global.size());
  for (size_t i = 0; i < subgraph.local_to_global.size(); ++i) {
    local[i] = global_labels[static_cast<size_t>(subgraph.local_to_global[i])];
  }
  return local;
}

std::vector<std::vector<int32_t>> MakeSeedBatches(int64_t num_vertices, int64_t batch_size,
                                                  Rng& rng) {
  SEASTAR_CHECK_GT(batch_size, 0);
  std::vector<int32_t> order(static_cast<size_t>(num_vertices));
  for (int64_t v = 0; v < num_vertices; ++v) {
    order[static_cast<size_t>(v)] = static_cast<int32_t>(v);
  }
  rng.Shuffle(order);
  std::vector<std::vector<int32_t>> batches;
  for (int64_t begin = 0; begin < num_vertices; begin += batch_size) {
    const int64_t end = std::min(begin + batch_size, num_vertices);
    batches.emplace_back(order.begin() + begin, order.begin() + end);
  }
  return batches;
}

}  // namespace seastar
