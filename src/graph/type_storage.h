// The edge-type storage design study of paper §6.3.5.
//
// Seastar stores edge types in a per-slot array alongside the edge ids. The
// paper *considered* a compressed alternative — one more level of
// indirection between the vertex offset array and the slots, a "type offset
// array" that stores each (vertex, type) run once — and rejected it with a
// size argument: the compressed form must be built for both the forward and
// the backward CSR, while the flat array is shared, so it only wins when
// N_e / N_t > 2, where N_e is the edge count and N_t the total number of
// unique (vertex, type) pairs. For the paper's datasets the ratio is between
// 1.385 and 1.923, so the flat array wins.
//
// This module implements both representations' accounting so the decision
// can be reproduced on any graph (bench/bench_edge_type_storage).
#ifndef SRC_GRAPH_TYPE_STORAGE_H_
#define SRC_GRAPH_TYPE_STORAGE_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace seastar {

// The rejected compressed representation: per vertex position, the list of
// contiguous same-type runs in its (type-sorted) slot range.
struct TypeOffsetIndex {
  // run_bounds[k] .. run_bounds[k+1] delimit vertex position k's runs.
  std::vector<int64_t> run_bounds;  // size: num_vertices + 1
  // Slot index where each run starts (its end is the next run's start, or
  // the vertex's slot range end). Size: total runs.
  std::vector<int64_t> run_start_slot;
  // The type shared by every edge of the run. Size: total runs.
  std::vector<int32_t> run_type;
};

// Requires a CSR with type-sorted slots (hetero graphs are built that way).
TypeOffsetIndex BuildTypeOffsetIndex(const Csr& csr);

// Bytes of the compressed index (run_start_slot as int64 + run_type as
// int32 + run_bounds as int64).
uint64_t TypeOffsetIndexBytes(const TypeOffsetIndex& index);

// Bytes of the flat per-slot type array for one CSR.
uint64_t FlatTypeArrayBytes(const Csr& csr);

// N_t: total unique (vertex, type) pairs over destination vertices and
// their in-edges plus source vertices and their out-edges... the paper
// defines N_t as "the summation of the unique types of all vertices"; we
// compute it for the aggregation side of each CSR and report both.
int64_t UniqueTypePairs(const Csr& csr);

struct TypeStorageDecision {
  int64_t num_edges = 0;
  int64_t unique_pairs_in = 0;    // N_t over the in-CSR.
  int64_t unique_pairs_out = 0;   // N_t over the out-CSR.
  double ratio = 0.0;             // N_e / max(N_t_in, N_t_out).
  uint64_t flat_bytes = 0;        // One array, shared by both passes.
  uint64_t compressed_bytes = 0;  // Two indexes (forward + backward).
  bool flat_wins = false;
};

// Reproduces the paper's decision computation for `graph`.
TypeStorageDecision AnalyzeTypeStorage(const Graph& graph);

}  // namespace seastar

#endif  // SRC_GRAPH_TYPE_STORAGE_H_
